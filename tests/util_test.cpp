// Unit tests for the util module: RNG determinism and distribution sanity,
// Luby sequence values, integer helpers, stopwatch formatting.

#include <gtest/gtest.h>

#include <set>

#include "util/intmath.hpp"
#include "util/luby.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace optalloc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformCoversFullRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(9, 9), 9);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, IndexWithinBound) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(10), 10u);
}

TEST(Luby, FirstSixteenValues) {
  // The canonical sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 1 ...
  const std::uint64_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1,
                                    1, 2, 1, 1, 2, 4, 8, 1};
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(luby(i), expected[i]) << "at index " << i;
  }
}

TEST(Luby, PowersAppearAtBlockEnds) {
  // Element at index 2^k - 2 is 2^(k-1).
  EXPECT_EQ(luby((1u << 5) - 2), 1u << 4);
  EXPECT_EQ(luby((1u << 10) - 2), 1u << 9);
}

TEST(IntMath, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_EQ(ceil_div(10, 3), 4);
}

TEST(IntMath, BitsFor) {
  EXPECT_EQ(bits_for(0), 1);
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 2);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 3);
  EXPECT_EQ(bits_for(255), 8);
  EXPECT_EQ(bits_for(256), 9);
}

TEST(IntMath, MulFits) {
  EXPECT_TRUE(mul_fits(0, 123456789));
  EXPECT_TRUE(mul_fits(1 << 30, 1 << 30));
  EXPECT_FALSE(mul_fits(std::int64_t{1} << 40, std::int64_t{1} << 40));
}

TEST(Stopwatch, FormatsSubMinute) {
  EXPECT_EQ(Stopwatch::pretty_seconds(1.5), "1.500 s");
}

TEST(Stopwatch, FormatsHours) {
  EXPECT_EQ(Stopwatch::pretty_seconds(3 * 3600 + 25 * 60 + 7), "3:25:07");
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace optalloc

// Unit tests for the inprocessing engine (sat/inprocess.hpp): the
// subsumption matrix, self-subsuming resolution, vivification shrinking,
// bounded variable elimination with model reconstruction, the
// frozen-variable contract, proof certification of inprocessed UNSAT
// runs, and the arena's shrink/wasted/GC accounting the engine relies on.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "check/drat.hpp"
#include "sat/clause.hpp"
#include "sat/inprocess.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace optalloc::sat {
namespace {

/// True iff the solver's (reconstructed) model satisfies the clause.
bool model_satisfies(const Solver& s, const std::vector<Lit>& c) {
  for (const Lit l : c) {
    if (s.model_value(l) == LBool::kTrue) return true;
  }
  return false;
}

TEST(Inprocess, BackwardSubsumptionRemovesSuperset) {
  // (a|b) subsumes (a|b|c): one clause disappears, satisfiability and
  // models are untouched.
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(b)));
  ASSERT_TRUE(s.add_ternary(pos(a), pos(b), pos(c)));

  Inprocessor pass(s);
  ASSERT_TRUE(pass.run());
  EXPECT_EQ(s.stats().subsumed_clauses, 1u);
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(model_satisfies(s, {pos(a), pos(b)}));
}

TEST(Inprocess, SelfSubsumingResolutionStrengthens) {
  // (a|b) self-subsumes (~a|b|c): resolving on `a` yields (b|c), which
  // subsumes the original — so (~a|b|c) is strengthened in place.
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(b)));
  ASSERT_TRUE(s.add_ternary(neg(a), pos(b), pos(c)));

  Inprocessor pass(s);
  ASSERT_TRUE(pass.run());
  EXPECT_GE(s.stats().strengthened_clauses, 1u);
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(model_satisfies(s, {pos(a), pos(b)}));
  EXPECT_TRUE(model_satisfies(s, {neg(a), pos(b), pos(c)}));
}

TEST(Inprocess, SubsumptionMatrix) {
  // The pairwise cases subsumption must and must not fire on. Each row:
  // {C, D, expected subsumed count, expected strengthened count}.
  struct Case {
    const char* name;
    std::vector<std::vector<int>> clauses;  ///< DIMACS-style, 1-based
    std::uint64_t subsumed;
    std::uint64_t strengthened;
  };
  const std::vector<Case> cases = {
      {"duplicate", {{1, 2}, {1, 2}}, 1, 0},
      {"strict superset", {{1, 2}, {1, 2, 3}}, 1, 0},
      {"one flipped literal", {{1, 2}, {-1, 2, 3}}, 0, 1},
      {"two flipped literals", {{1, 2}, {-1, -2, 3}}, 0, 0},
      {"disjoint", {{1, 2}, {3, 4}}, 0, 0},
      {"overlap but no subsumption", {{1, 2, 3}, {1, 2, 4}}, 0, 0},
  };
  for (const Case& tc : cases) {
    Solver s;
    int max_var = 0;
    for (const auto& c : tc.clauses) {
      for (const int l : c) max_var = std::max(max_var, std::abs(l));
    }
    for (int v = 0; v < max_var; ++v) s.new_var();
    for (const auto& c : tc.clauses) {
      std::vector<Lit> lits;
      for (const int l : c) {
        lits.push_back(Lit(static_cast<Var>(std::abs(l) - 1), l < 0));
      }
      ASSERT_TRUE(s.add_clause(lits)) << tc.name;
    }
    // Subsumption only: no vivification effect at level 0 anyway, but
    // keep BVE from eliminating the instance out from under the check.
    InprocessLimits limits;
    limits.bve_occ_max = 0;
    Inprocessor pass(s, limits);
    ASSERT_TRUE(pass.run()) << tc.name;
    EXPECT_EQ(s.stats().subsumed_clauses, tc.subsumed) << tc.name;
    EXPECT_EQ(s.stats().strengthened_clauses, tc.strengthened) << tc.name;
    EXPECT_EQ(s.solve(), LBool::kTrue) << tc.name;
  }
}

TEST(Inprocess, VivificationShrinksClause) {
  // Vivifying (a|b|c) under F = {(a|~b)}: asserting ~a propagates ~b
  // through (a|~b), so `b` is false in every extension — the clause
  // strengthens to (a|c). Subsumption is disabled to isolate the stage
  // (it would reach the same clause via self-subsuming resolution).
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), neg(b)));
  ASSERT_TRUE(s.add_ternary(pos(a), pos(b), pos(c)));

  InprocessLimits limits;
  limits.subsume_clause_max = 0;  // disable subsumption
  limits.bve_occ_max = 0;         // disable elimination
  limits.vivify_irredundant = true;
  Inprocessor pass(s, limits);
  ASSERT_TRUE(pass.run());
  EXPECT_EQ(s.stats().strengthened_clauses, 1u);
  EXPECT_EQ(s.stats().subsumed_clauses, 0u);
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(model_satisfies(s, {pos(a), neg(b)}));
  EXPECT_TRUE(model_satisfies(s, {pos(a), pos(b), pos(c)}));
}

TEST(Inprocess, BveEliminatesAndReconstructsModel) {
  // F = {(a|v), (~v|b)}: eliminating v produces the single resolvent
  // (a|b). The reduced formula knows nothing about v — the model the
  // caller sees must still satisfy the ORIGINAL clauses, which is the
  // reconstruction stack's job.
  Solver s;
  const Var a = s.new_var(), v = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(v)));
  ASSERT_TRUE(s.add_binary(neg(v), pos(b)));

  Inprocessor pass(s);
  ASSERT_TRUE(pass.run());
  EXPECT_GE(s.stats().eliminated_vars, 1u);
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(model_satisfies(s, {pos(a), pos(v)}));
  EXPECT_TRUE(model_satisfies(s, {neg(v), pos(b)}));
}

TEST(Inprocess, BveGrowthCapVetoesElimination) {
  // `v` has 2 positive and 2 negative occurrences and all 4 resolvents
  // are non-tautological: eliminating it would grow the database (4 > 4
  // is false — so allow it with grow 0; tighten the cap by occurrence
  // limit instead). With bve_occ_max = 1 the variable is not even a
  // candidate and must survive.
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), v = s.new_var(),
            x = s.new_var(), y = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(v)));
  ASSERT_TRUE(s.add_binary(pos(b), pos(v)));
  ASSERT_TRUE(s.add_binary(neg(v), pos(x)));
  ASSERT_TRUE(s.add_binary(neg(v), pos(y)));

  InprocessLimits limits;
  limits.bve_occ_max = 1;
  Inprocessor pass(s, limits);
  ASSERT_TRUE(pass.run());
  EXPECT_FALSE(s.is_eliminated(v));
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Inprocess, FrozenVariablesAreNeverEliminated) {
  // Same instance as the elimination test, but everything is frozen —
  // the pass must leave all variables in place.
  Solver s;
  const Var a = s.new_var(), v = s.new_var(), b = s.new_var();
  s.set_frozen(a);
  s.set_frozen(v);
  s.set_frozen(b);
  ASSERT_TRUE(s.add_binary(pos(a), pos(v)));
  ASSERT_TRUE(s.add_binary(neg(v), pos(b)));

  Inprocessor pass(s);
  ASSERT_TRUE(pass.run());
  EXPECT_EQ(s.stats().eliminated_vars, 0u);
  EXPECT_FALSE(s.is_eliminated(a));
  EXPECT_FALSE(s.is_eliminated(v));
  EXPECT_FALSE(s.is_eliminated(b));
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Inprocess, AssumptionOverEliminatedVariableRestores) {
  // Incremental inprocessing: assuming a literal of an eliminated
  // variable restores it — the removed clauses come back, the
  // reconstruction entries go away, and both polarities answer
  // correctly ever after.
  Solver s;
  const Var a = s.new_var(), v = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(v)));
  ASSERT_TRUE(s.add_binary(neg(v), pos(b)));

  Inprocessor pass(s);
  ASSERT_TRUE(pass.run());
  ASSERT_TRUE(s.is_eliminated(v));

  ASSERT_EQ(s.solve({pos(v)}), LBool::kTrue);
  EXPECT_FALSE(s.is_eliminated(v));
  EXPECT_TRUE(s.is_frozen(v));  // reused -> never eliminated again
  EXPECT_EQ(s.stats().restored_vars, 1u);
  EXPECT_EQ(s.model_value(v), LBool::kTrue);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);  // (~v | b) is back

  ASSERT_EQ(s.solve({neg(v)}), LBool::kTrue);
  EXPECT_EQ(s.model_value(v), LBool::kFalse);
  // a itself was never reused, so it stays eliminated and model
  // reconstruction must still satisfy its removed clause (a | v).
  EXPECT_EQ(s.model_value(a), LBool::kTrue);
}

TEST(Inprocess, IncrementalClauseOverEliminatedVariableRestores) {
  // The add_clause direction, with a proof riding along: after v is
  // eliminated, new clauses force ~v and ~a, which together with the
  // restored original (a | v) are unsatisfiable. Without restoration the
  // solver would answer SAT from the reduced formula. The proof stays
  // checkable because elimination never logged the removed clauses'
  // deletions.
  Solver s;
  ProofLog log;
  s.set_proof(&log);
  // v is created first so the elimination sweep reaches it while it still
  // has its occurrence: v is pure, so elimination removes (a | v) with
  // zero resolvents and the reduced formula forgets about a entirely.
  const Var v = s.new_var(), a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(v)));

  Inprocessor pass(s);
  ASSERT_TRUE(pass.run());
  ASSERT_TRUE(s.is_eliminated(v));

  ASSERT_TRUE(s.add_binary(neg(v), pos(b)));  // mentions v: restores it
  EXPECT_FALSE(s.is_eliminated(v));
  EXPECT_GE(s.stats().restored_vars, 1u);
  ASSERT_EQ(s.solve(), LBool::kTrue);

  // ~b forces ~v, and with (a | v) restored, ~a closes the formula.
  // Without restoration the solver would answer SAT here.
  ASSERT_TRUE(s.add_clause(std::vector<Lit>{neg(b)}));
  s.add_clause(std::vector<Lit>{neg(a)});  // may already derive UNSAT
  EXPECT_EQ(s.solve(), LBool::kFalse);
  const check::DratResult res = check::check_proof_all(log);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Inprocess, FirstSolveAutoFreezesAssumptions) {
  // The other direction of the contract: assumptions passed to solve()
  // are frozen on entry, so the preprocessing pass inside that very
  // call cannot eliminate them, and later queries still work.
  Solver s;
  const Var a = s.new_var(), v = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(v)));
  ASSERT_TRUE(s.add_binary(neg(v), pos(b)));

  ASSERT_EQ(s.solve({pos(v)}), LBool::kTrue);
  EXPECT_FALSE(s.is_eliminated(v));
  EXPECT_TRUE(s.is_frozen(v));
  EXPECT_EQ(s.model_value(v), LBool::kTrue);
  EXPECT_EQ(s.solve({neg(v)}), LBool::kTrue);
  EXPECT_EQ(s.model_value(v), LBool::kFalse);
}

TEST(Inprocess, UnsatWithInprocessingProducesCheckableProof) {
  // Pigeonhole PHP(4,3) — 4 pigeons, 3 holes — forced through a pass at
  // every restart: subsumption/strengthening/elimination lemmas land in
  // the same DRAT stream as search lemmas, and the independent checker
  // must accept the whole thing.
  Solver s;
  ProofLog log;
  s.set_proof(&log);
  s.inprocess_interval = 1;
  const int pigeons = 4, holes = 3;
  std::vector<std::vector<Var>> in(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) in[p][h] = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(in[p][h]));
    ASSERT_TRUE(s.add_clause(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(s.add_binary(neg(in[p1][h]), neg(in[p2][h])));
      }
    }
  }
  ASSERT_EQ(s.solve(), LBool::kFalse);
  EXPECT_GE(s.stats().inprocess_passes, 1u);
  const check::DratResult res = check::check_proof_all(log);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Inprocess, PassCountersAndBackoffAdvance) {
  // A satisfiable instance big enough to conflict a few times, interval
  // 1: at least one pass must fire and the words-reclaimed counter must
  // be consistent (reclaimed only grows).
  Solver s;
  s.inprocess_interval = 1;
  const int n = 12;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  for (int i = 0; i + 2 < n; ++i) {
    ASSERT_TRUE(s.add_ternary(pos(vars[i]), neg(vars[i + 1]),
                              pos(vars[i + 2])));
    ASSERT_TRUE(s.add_ternary(neg(vars[i]), pos(vars[i + 1]),
                              neg(vars[i + 2])));
  }
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_GE(s.stats().inprocess_passes, 1u);
}

// -- Arena accounting -----------------------------------------------------

TEST(ClauseArena, ShrinkCreditsWastedAndSurvivesReloc) {
  // The accounting bug the GC trigger depends on: shrinking a clause must
  // credit the dropped words to wasted() (Clause::shrink alone does not),
  // and a subsequent relocation GC must compact them away while keeping
  // the surviving literals intact.
  ClauseArena arena;
  const std::vector<Lit> wide = {Lit(0, false), Lit(1, false), Lit(2, false),
                                 Lit(3, false)};
  const std::vector<Lit> other = {Lit(4, false), Lit(5, true)};
  const CRef r1 = arena.alloc(wide, /*learnt=*/false);
  const CRef r2 = arena.alloc(other, /*learnt=*/true);
  EXPECT_EQ(arena.wasted(), 0u);
  EXPECT_EQ(arena.size(), (3u + 4u) + (3u + 2u));

  // Strengthen r1 from 4 literals to 2: two words become garbage.
  arena.shrink_clause(r1, 2);
  EXPECT_EQ(arena.deref(r1).size(), 2u);
  EXPECT_EQ(arena.wasted(), 2u);

  // Free r2 entirely: header (3 words) + 2 literals join the garbage.
  arena.free_clause(r2);
  EXPECT_EQ(arena.wasted(), 2u + 5u);

  // Compaction: relocate the live clause into a fresh arena. The new
  // arena holds exactly the shrunk clause, no wasted words.
  ClauseArena to;
  const CRef nr1 = arena.reloc(r1, to);
  EXPECT_EQ(to.size(), 3u + 2u);
  EXPECT_EQ(to.wasted(), 0u);
  const Clause& moved = to.deref(nr1);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], wide[0]);
  EXPECT_EQ(moved[1], wide[1]);
  // Idempotent forwarding for already-moved clauses.
  EXPECT_EQ(arena.reloc(r1, to), nr1);
}

TEST(ClauseArena, SolverGcCompactsShrunkClauses) {
  // End to end through the solver: strengthen via inprocessing, then
  // check a garbage collection reclaims the arena words (the pass GCs
  // itself when wasted*2 > size; force comparison via stats).
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(b)));
  ASSERT_TRUE(s.add_ternary(neg(a), pos(b), pos(c)));
  InprocessLimits limits;
  limits.bve_occ_max = 0;  // keep the strengthened clause around
  Inprocessor pass(s, limits);
  ASSERT_TRUE(pass.run());
  ASSERT_GE(s.stats().strengthened_clauses, 1u);
  EXPECT_GE(s.stats().inprocess_reclaimed_words, 1u);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

}  // namespace
}  // namespace optalloc::sat

// Property-based tests for the CDCL solver: random 3-SAT instances are
// cross-checked against a brute-force truth-table enumerator. This is the
// primary correctness oracle for the solver core — every satisfiability
// verdict and every model must agree with exhaustive enumeration.
//
// The differential section at the bottom extends the oracle across the
// stack: random pseudo-Boolean instances are solved twice — once with the
// native counting propagator, once through the BDD clausal encoding — and
// the two verdicts must agree; SAT models are replayed against the
// constraints, and every UNSAT run's proof log is fed to the independent
// DRAT checker (the same engine behind tools/drat_check).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "alloc/optimizer.hpp"
#include "check/drat.hpp"
#include "pb/encodings.hpp"
#include "pb/propagator.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace optalloc::sat {
namespace {

using Clauses = std::vector<std::vector<Lit>>;

/// Brute-force satisfiability over <= 20 variables.
std::optional<std::uint32_t> brute_force(int num_vars, const Clauses& cs) {
  for (std::uint32_t assignment = 0; assignment < (1u << num_vars);
       ++assignment) {
    bool all = true;
    for (const auto& c : cs) {
      bool sat = false;
      for (const Lit l : c) {
        const bool val = (assignment >> l.var()) & 1u;
        if (val != l.sign()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return assignment;
  }
  return std::nullopt;
}

Clauses random_clauses(Rng& rng, int num_vars, int num_clauses,
                       int max_width) {
  Clauses cs;
  for (int i = 0; i < num_clauses; ++i) {
    // Units appear rarely (5%) so instances are not dominated by
    // trivially contradictory unit pairs; variables within a clause are
    // distinct so the effective width is the drawn width.
    const int width =
        (max_width > 1 && !rng.chance(0.05))
            ? static_cast<int>(rng.uniform(2, max_width))
            : 1;
    std::vector<Var> pool;
    for (int v = 0; v < num_vars; ++v) pool.push_back(v);
    std::vector<Lit> c;
    for (int j = 0; j < width; ++j) {
      const std::size_t k = rng.index(pool.size());
      c.push_back(Lit(pool[k], rng.chance(0.5)));
      pool[k] = pool.back();
      pool.pop_back();
    }
    cs.push_back(c);
  }
  return cs;
}

struct FuzzParams {
  int num_vars;
  int num_clauses;
  int max_width;
  int rounds;
};

class SatFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(SatFuzz, AgreesWithBruteForce) {
  const FuzzParams p = GetParam();
  Rng rng(0xC0FFEE + p.num_vars * 1000 + p.num_clauses);
  int sat_count = 0, unsat_count = 0;
  for (int round = 0; round < p.rounds; ++round) {
    const Clauses cs =
        random_clauses(rng, p.num_vars, p.num_clauses, p.max_width);
    Solver s;
    for (int v = 0; v < p.num_vars; ++v) s.new_var();
    bool trivially_unsat = false;
    for (const auto& c : cs) {
      if (!s.add_clause(c)) trivially_unsat = true;
    }
    const auto reference = brute_force(p.num_vars, cs);
    if (trivially_unsat) {
      EXPECT_FALSE(reference.has_value()) << "round " << round;
      continue;
    }
    const LBool verdict = s.solve();
    if (reference.has_value()) {
      ASSERT_EQ(verdict, LBool::kTrue) << "round " << round;
      // The solver's model must satisfy every clause.
      for (const auto& c : cs) {
        bool sat = false;
        for (const Lit l : c) sat |= (s.model_value(l) == LBool::kTrue);
        ASSERT_TRUE(sat) << "model violates a clause in round " << round;
      }
      ++sat_count;
    } else {
      ASSERT_EQ(verdict, LBool::kFalse) << "round " << round;
      ++unsat_count;
    }
  }
  // The parameter grid is chosen so both outcomes occur; a fuzz sweep that
  // only ever saw one verdict would not be testing much.
  EXPECT_GT(sat_count + unsat_count, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SatFuzz,
    ::testing::Values(
        FuzzParams{4, 10, 3, 200},    // tiny, dense -> mix of SAT/UNSAT
        FuzzParams{6, 18, 3, 200},    // near phase transition for 3-SAT
        FuzzParams{8, 34, 3, 150},    // at ~4.25 ratio
        FuzzParams{10, 43, 3, 100},   // larger, mostly UNSAT
        FuzzParams{10, 20, 2, 100},   // 2-SAT heavy (implication chains)
        FuzzParams{12, 30, 4, 60},    // wider clauses
        FuzzParams{5, 6, 1, 60},      // pure unit instances
        FuzzParams{14, 59, 3, 40}));  // stress

TEST(SatFuzzIncremental, AssumptionsMatchConditionedBruteForce) {
  // Random instance solved under random assumptions must agree with the
  // brute force of (clauses + assumption units).
  Rng rng(0xDEAD);
  for (int round = 0; round < 150; ++round) {
    const int num_vars = 8;
    Clauses cs = random_clauses(rng, num_vars, 20, 3);
    Solver s;
    // Deliberately no set_frozen here: assumptions over variables the
    // preprocessing pass eliminated must trigger restoration, so this
    // doubles as a fuzz of the restore path.
    for (int v = 0; v < num_vars; ++v) s.new_var();
    bool trivially_unsat = false;
    for (const auto& c : cs) {
      if (!s.add_clause(c)) trivially_unsat = true;
    }
    if (trivially_unsat) continue;
    // One solver instance, several assumption sets: exercises incremental
    // reuse of learnt clauses across calls.
    for (int q = 0; q < 4; ++q) {
      std::vector<Lit> assumptions;
      for (int v = 0; v < num_vars; ++v) {
        if (rng.chance(0.3)) {
          assumptions.push_back(Lit(static_cast<Var>(v), rng.chance(0.5)));
        }
      }
      Clauses conditioned = cs;
      for (const Lit a : assumptions) conditioned.push_back({a});
      const auto reference = brute_force(num_vars, conditioned);
      const LBool verdict = s.solve(assumptions);
      ASSERT_EQ(verdict == LBool::kTrue, reference.has_value())
          << "round " << round << " query " << q;
      if (verdict == LBool::kFalse) {
        // The conflict core, negated, must be entailed: adding all core
        // literals as units must be UNSAT by brute force.
        Clauses with_core = cs;
        for (const Lit l : s.conflict_core()) with_core.push_back({~l});
        EXPECT_FALSE(brute_force(num_vars, with_core).has_value());
      }
    }
  }
}

// -- Differential PB fuzzing ----------------------------------------------

/// Random normalized >= constraint over distinct variables.
pb::Constraint random_pb(Rng& rng, int num_vars) {
  std::vector<pb::Term> terms;
  std::vector<Var> pool;
  for (int v = 0; v < num_vars; ++v) pool.push_back(v);
  const int width = static_cast<int>(rng.uniform(2, 5));
  std::int64_t total = 0;
  for (int j = 0; j < width && !pool.empty(); ++j) {
    const std::size_t k = rng.index(pool.size());
    const std::int64_t coef = rng.uniform(1, 4);
    terms.push_back({coef, Lit(pool[k], rng.chance(0.5))});
    total += coef;
    pool[k] = pool.back();
    pool.pop_back();
  }
  // rhs drawn up to slightly past the total so trivially-false
  // constraints (and thus encode-time conflicts) occur too.
  const std::int64_t rhs = rng.uniform(1, total + 1);
  return pb::normalize_ge(terms, rhs);
}

TEST(PbDifferentialFuzz, PropagatorAgreesWithBddEncodingAndProofsCheck) {
  Rng rng(0x9B5EED);
  int sat_count = 0, unsat_count = 0, proofs_checked = 0;
  for (int round = 0; round < 250; ++round) {
    const int num_vars = static_cast<int>(rng.uniform(4, 8));
    const int num_constraints = static_cast<int>(rng.uniform(2, 6));
    std::vector<pb::Constraint> cs;
    for (int i = 0; i < num_constraints; ++i) {
      cs.push_back(random_pb(rng, num_vars));
    }

    // Native counting propagator, with proof logging.
    Solver native;
    ProofLog log;
    native.set_proof(&log);
    pb::PbPropagator prop(native);
    for (int v = 0; v < num_vars; ++v) native.new_var();
    bool native_ok = true;
    for (const auto& c : cs) native_ok = prop.add(c) && native_ok;
    const LBool native_verdict =
        native_ok ? native.solve() : LBool::kFalse;

    // Independent clausal oracle: BDD encoding of the same constraints.
    Solver oracle;
    for (int v = 0; v < num_vars; ++v) oracle.new_var();
    bool oracle_ok = true;
    for (const auto& c : cs) oracle_ok = encode_pb_bdd(oracle, c) && oracle_ok;
    const LBool oracle_verdict =
        oracle_ok ? oracle.solve() : LBool::kFalse;

    ASSERT_EQ(native_verdict, oracle_verdict) << "round " << round;
    if (native_verdict == LBool::kTrue) {
      // The native model must satisfy every constraint as stated.
      for (const auto& c : cs) {
        ASSERT_TRUE(pb::satisfied(c, [&](Lit l) {
          return native.model_value(l) == LBool::kTrue;
        })) << "model violates a PB constraint in round " << round;
      }
      ++sat_count;
    } else {
      // Every UNSAT answer must come with a machine-checkable proof; the
      // strict check also re-validates each theory lemma as a weakening
      // of its PB axiom.
      const check::DratResult res = check::check_proof_all(log);
      ASSERT_TRUE(res.ok) << "round " << round << ": " << res.error;
      ++proofs_checked;
      ++unsat_count;
    }
  }
  // The generator is tuned so both verdicts occur in bulk.
  EXPECT_GT(sat_count, 20);
  EXPECT_GT(unsat_count, 20);
  EXPECT_EQ(proofs_checked, unsat_count);
}

// -- Differential inprocessing fuzzing ------------------------------------

TEST(InprocessDifferentialFuzz, OnOffVerdictsAgreeAndProofsCheck) {
  // The same random instance solved twice: once with inprocessing forced
  // to run before every conflict batch (interval 1, so every restart
  // boundary fires a pass), once with it off entirely. Verdicts must
  // agree, the inprocessed model — reconstructed over eliminated
  // variables — must satisfy the ORIGINAL clauses, and every UNSAT run
  // with inprocessing on must leave a DRAT log the independent checker
  // accepts (subsumption, strengthening and elimination emit lemmas and
  // deletions into the same stream as search).
  Rng rng(0x1297);
  int sat_count = 0, unsat_count = 0, eliminated_total = 0;
  for (int round = 0; round < 200; ++round) {
    const int num_vars = static_cast<int>(rng.uniform(5, 12));
    const int num_clauses = static_cast<int>(rng.uniform(8, 4 * num_vars));
    const Clauses cs = random_clauses(rng, num_vars, num_clauses, 3);

    Solver on;
    ProofLog log;
    on.set_proof(&log);
    on.inprocess_interval = 1;
    Solver off;
    off.inprocess = false;
    for (int v = 0; v < num_vars; ++v) {
      on.new_var();
      off.new_var();
    }
    bool on_ok = true, off_ok = true;
    for (const auto& c : cs) {
      on_ok = on.add_clause(c) && on_ok;
      off_ok = off.add_clause(c) && off_ok;
    }
    ASSERT_EQ(on_ok, off_ok) << "round " << round;
    const LBool v_on = on_ok ? on.solve() : LBool::kFalse;
    const LBool v_off = off_ok ? off.solve() : LBool::kFalse;
    ASSERT_EQ(v_on, v_off) << "round " << round;
    if (v_on == LBool::kTrue) {
      for (const auto& c : cs) {
        bool sat = false;
        for (const Lit l : c) sat |= (on.model_value(l) == LBool::kTrue);
        ASSERT_TRUE(sat)
            << "reconstructed model violates a clause in round " << round;
      }
      ++sat_count;
    } else {
      const check::DratResult res = check::check_proof_all(log);
      ASSERT_TRUE(res.ok) << "round " << round << ": " << res.error;
      ++unsat_count;
    }
    eliminated_total +=
        static_cast<int>(on.stats().eliminated_vars);
  }
  EXPECT_GT(sat_count, 20);
  EXPECT_GT(unsat_count, 20);
  // The sweep must actually exercise elimination + reconstruction, not
  // just pass vacuously because no pass ever fired.
  EXPECT_GT(eliminated_total, 0);
}

TEST(InprocessDifferentialFuzz, OptimizerOptimaAgree) {
  // End-to-end differential: the full optimizer (encode + BIN_SEARCH)
  // must report the same optimum with inprocessing on and off. This is
  // the check that the frozen-variable contract — PB terms, comparator
  // assumptions, bit-blasted leaves — actually protects everything the
  // upper layers reference across SOLVE calls.
  for (const std::uint64_t seed : {0xA11Cu, 0xBEEFu, 0x5EEDu}) {
    workload::GenOptions gen;
    gen.num_tasks = 8;
    gen.num_chains = 3;
    gen.num_ecus = 3;
    gen.seed = seed;
    const alloc::Problem problem = workload::generate(gen);
    const alloc::Objective objective = alloc::Objective::sum_trt();

    alloc::OptimizeOptions on;
    on.inprocess_interval = 1;  // fire a pass at every restart boundary
    alloc::OptimizeOptions off;
    off.inprocess = false;
    const alloc::OptimizeResult r_on = alloc::optimize(problem, objective, on);
    const alloc::OptimizeResult r_off =
        alloc::optimize(problem, objective, off);
    ASSERT_EQ(r_on.status, r_off.status) << "seed " << seed;
    if (r_on.status == alloc::OptimizeResult::Status::kOptimal) {
      EXPECT_EQ(r_on.cost, r_off.cost) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace optalloc::sat

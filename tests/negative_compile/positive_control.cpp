// Positive control for the thread-safety negative-compile harness:
// the same shapes as the violation TUs, locked correctly. Must compile
// clean under -Werror=thread-safety — if it doesn't, the harness would
// be "proving" rejection with a broken baseline.
#include "util/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int v) {
    optalloc::util::MutexLock lock(mu_);
    balance_ += v;
  }
  int balance() {
    optalloc::util::MutexLock lock(mu_);
    return balance_;
  }

 private:
  optalloc::util::Mutex mu_;
  int balance_ OPTALLOC_GUARDED_BY(mu_) = 0;
};

class Counter {
 public:
  void bump() {
    optalloc::util::MutexLock lock(mu_);
    bump_locked();
  }

 private:
  void bump_locked() OPTALLOC_REQUIRES(mu_) { ++n_; }
  optalloc::util::Mutex mu_;
  int n_ OPTALLOC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int negative_compile_positive_control() {
  Account a;
  a.deposit(1);
  Counter c;
  c.bump();
  return a.balance();
}

// MUST NOT COMPILE under -Werror=thread-safety: calls a
// REQUIRES-annotated function without holding the capability. The
// negative-compile harness asserts clang rejects this TU.
#include "util/mutex.hpp"

namespace {

class Counter {
 public:
  void bump() {
    bump_locked();  // mu_ not held: -Wthread-safety must fire here
  }

 private:
  void bump_locked() OPTALLOC_REQUIRES(mu_) { ++n_; }
  optalloc::util::Mutex mu_;
  int n_ OPTALLOC_GUARDED_BY(mu_) = 0;
};

}  // namespace

void negative_compile_missing_requires() {
  Counter c;
  c.bump();
}

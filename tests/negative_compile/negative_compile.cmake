# Negative-compile harness for the thread-safety annotations
# (run via `cmake -P`, registered as the `negative_compile_thread_safety`
# ctest in tests/CMakeLists.txt).
#
# Proves the capability annotations in src/util/thread_annotations.hpp
# are live under clang: the positive control must compile clean with
# -Werror=thread-safety, and each violation TU must be REJECTED with a
# thread-safety diagnostic (any other failure mode — missing header,
# syntax error — still fails the harness, so a broken include path can't
# masquerade as a passing rejection).
#
# Inputs: -DCLANGXX=<clang++ or NOTFOUND> -DSRC_DIR=<repo>/src
#         -DCASE_DIR=<this directory>
# clang++ absent (the g++-only dev container): prints the skip token
# matched by the test's SKIP_REGULAR_EXPRESSION. CI installs clang, so
# the harness always runs there.

if(NOT CLANGXX OR CLANGXX STREQUAL "CLANGXX-NOTFOUND")
  message(STATUS "NEGATIVE_COMPILE_SKIP: clang++ not found on this host")
  return()
endif()

set(flags -std=c++20 -fsyntax-only -I${SRC_DIR}
          -Wthread-safety -Wthread-safety-beta -Werror=thread-safety)

function(try_case tu expect_failure)
  execute_process(
      COMMAND ${CLANGXX} ${flags} ${CASE_DIR}/${tu}
      RESULT_VARIABLE rc
      ERROR_VARIABLE err
      OUTPUT_VARIABLE out)
  if(NOT expect_failure)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
          "positive control ${tu} failed to compile (rc=${rc}):\n${err}")
    endif()
    message(STATUS "${tu}: compiles clean (positive control)")
    return()
  endif()
  if(rc EQUAL 0)
    message(FATAL_ERROR
        "${tu} compiled successfully but must be rejected — the "
        "thread-safety annotations are inert")
  endif()
  if(NOT err MATCHES "thread-safety")
    message(FATAL_ERROR
        "${tu} failed for the wrong reason (no thread-safety "
        "diagnostic, rc=${rc}):\n${err}")
  endif()
  message(STATUS "${tu}: rejected with a thread-safety diagnostic, as required")
endfunction()

try_case(positive_control.cpp FALSE)
try_case(guarded_by_violation.cpp TRUE)
try_case(missing_requires.cpp TRUE)

// MUST NOT COMPILE under -Werror=thread-safety: writes a GUARDED_BY
// field without holding its mutex. The negative-compile harness asserts
// clang rejects this TU — proving the annotations in util/mutex.hpp are
// live, not inert macros.
#include "util/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int v) {
    balance_ += v;  // no lock held: -Wthread-safety must fire here
  }

 private:
  optalloc::util::Mutex mu_;
  int balance_ OPTALLOC_GUARDED_BY(mu_) = 0;
};

}  // namespace

void negative_compile_guarded_by_violation() {
  Account a;
  a.deposit(1);
}

// Tests for the parallel portfolio optimizer: correctness of the winning
// result, agreement with single-configuration runs, cooperative
// cancellation, and infeasibility propagation.

#include <gtest/gtest.h>

#include <atomic>

#include "alloc/portfolio.hpp"
#include "rt/verify.hpp"
#include "workload/tindell.hpp"

namespace optalloc::alloc {
namespace {

using rt::Ticks;

Problem small_problem() {
  Problem p;
  rt::Task a;
  a.name = "A";
  a.period = 100;
  a.deadline = 50;
  a.wcet = {10, 12};
  a.messages.push_back({1, 4, 60, 0});
  a.separated_from = {1};
  rt::Task b;
  b.name = "B";
  b.period = 100;
  b.deadline = 100;
  b.wcet = {20, 25};
  b.separated_from = {0};
  p.tasks.tasks = {a, b};
  p.arch.num_ecus = 2;
  rt::Medium ring;
  ring.name = "ring";
  ring.type = rt::MediumType::kTokenRing;
  ring.ecus = {0, 1};
  ring.slot_max = 8;
  p.arch.media = {ring};
  return p;
}

TEST(Portfolio, DefaultConfigsFindTheOptimum) {
  const Problem p = small_problem();
  const PortfolioResult res =
      optimize_portfolio(p, Objective::ring_trt(0));
  ASSERT_EQ(res.best.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.best.cost, 5);
  EXPECT_GE(res.winner, 0);
  const auto report = rt::verify(p.tasks, p.arch, res.best.allocation);
  EXPECT_TRUE(report.feasible);
}

TEST(Portfolio, AgreesWithSingleRun) {
  const Problem p = workload::tindell_prefix(12);
  const OptimizeResult single = optimize(p, Objective::ring_trt(0));
  const PortfolioResult multi =
      optimize_portfolio(p, Objective::ring_trt(0));
  ASSERT_EQ(single.status, OptimizeResult::Status::kOptimal);
  ASSERT_EQ(multi.best.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(multi.best.cost, single.cost);
}

TEST(Portfolio, PropagatesInfeasibility) {
  Problem p = small_problem();
  p.tasks.tasks[0].wcet = {10, rt::kForbidden};
  p.tasks.tasks[1].wcet = {20, rt::kForbidden};  // both pinned + separated
  const PortfolioResult res =
      optimize_portfolio(p, Objective::feasibility());
  EXPECT_EQ(res.best.status, OptimizeResult::Status::kInfeasible);
}

TEST(Portfolio, CustomConfigListRespected) {
  PortfolioOptions opts;
  OptimizeOptions only;
  only.strategy = SearchStrategy::kDescending;
  opts.configs = {only};
  const Problem p = small_problem();
  const PortfolioResult res =
      optimize_portfolio(p, Objective::ring_trt(0), opts);
  ASSERT_EQ(res.best.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.winner, 0);
  EXPECT_EQ(res.per_config.size(), 1u);
}

TEST(Portfolio, StopFlagCancelsOptimizer) {
  // A pre-set stop flag must make a single optimize() return promptly
  // with budget-exhausted (anytime semantics).
  std::atomic<bool> stop{true};
  OptimizeOptions opts;
  opts.stop = &stop;
  const Problem p = workload::tindell_prefix(20);
  const OptimizeResult res = optimize(p, Objective::ring_trt(0), opts);
  EXPECT_EQ(res.status, OptimizeResult::Status::kBudgetExhausted);
}

TEST(Portfolio, TimeLimitYieldsAnytimeBest) {
  PortfolioOptions opts;
  opts.time_limit_s = 0.05;
  const Problem p = workload::tindell_prefix(30);
  const PortfolioResult res =
      optimize_portfolio(p, Objective::ring_trt(0), opts);
  // Any status is acceptable under a tiny budget, but the call must
  // return (join all threads) and report per-config statuses.
  EXPECT_EQ(res.per_config.size(), 3u);
}

}  // namespace
}  // namespace optalloc::alloc

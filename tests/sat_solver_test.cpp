// Unit tests for the CDCL solver: basic satisfiability, unit propagation,
// conflict handling, incremental solving under assumptions, unsat cores,
// model correctness, pigeonhole instances, and DIMACS round-tripping.

#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

namespace optalloc::sat {
namespace {

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_unit(pos(v)));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(v), LBool::kTrue);
}

TEST(Solver, ContradictoryUnits) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_unit(pos(v)));
  EXPECT_FALSE(s.add_unit(neg(v)));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Solver, BinaryImplicationChain) {
  // x0 -> x1 -> ... -> x9, with x0 forced true: all must be true.
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(s.add_binary(neg(vars[i]), pos(vars[i + 1])));
  }
  ASSERT_TRUE(s.add_unit(pos(vars[0])));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s.model_value(vars[i]), LBool::kTrue) << "var " << i;
  }
}

TEST(Solver, SimpleUnsatTriangle) {
  // (a|b) & (~a|b) & (a|~b) & (~a|~b) is unsatisfiable.
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(b)));
  ASSERT_TRUE(s.add_binary(neg(a), pos(b)));
  ASSERT_TRUE(s.add_binary(pos(a), neg(b)));
  s.add_binary(neg(a), neg(b));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Solver, ModelSatisfiesAllClauses) {
  // A moderately sized satisfiable instance; verify the model by hand.
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
  std::vector<std::vector<Lit>> clauses;
  for (int i = 0; i < 20; ++i) {
    clauses.push_back({pos(v[i]), pos(v[(i + 3) % 20]), neg(v[(i + 7) % 20])});
  }
  for (const auto& c : clauses) ASSERT_TRUE(s.add_clause(c));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  for (const auto& c : clauses) {
    bool satisfied = false;
    for (const Lit l : c) satisfied |= (s.model_value(l) == LBool::kTrue);
    EXPECT_TRUE(satisfied);
  }
}

TEST(Solver, AssumptionsRestrictModels) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(b)));
  ASSERT_EQ(s.solve({neg(a)}), LBool::kTrue);
  EXPECT_EQ(s.model_value(a), LBool::kFalse);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);
  // Solver stays reusable with different assumptions.
  ASSERT_EQ(s.solve({neg(b)}), LBool::kTrue);
  EXPECT_EQ(s.model_value(a), LBool::kTrue);
  ASSERT_EQ(s.solve({neg(a), neg(b)}), LBool::kFalse);
  // And without assumptions it is still satisfiable.
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, ConflictCoreMentionsOnlyRelevantAssumptions) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_binary(neg(a), pos(b)));  // a -> b
  ASSERT_EQ(s.solve({pos(a), neg(b), pos(c)}), LBool::kFalse);
  // The core must not mention c.
  for (const Lit l : s.conflict_core()) EXPECT_NE(l.var(), c);
  EXPECT_FALSE(s.conflict_core().empty());
}

TEST(Solver, IncrementalAddClausesBetweenSolves) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), pos(b)));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  ASSERT_TRUE(s.add_unit(neg(a)));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);
  s.add_unit(neg(b));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes, UNSAT.
// Classic hard instance for resolution; n=6 stays fast but forces real
// conflict analysis, learning, restarts and clause deletion to kick in.
void add_pigeonhole(Solver& s, int pigeons, int holes,
                    std::vector<std::vector<Var>>& grid) {
  grid.assign(pigeons, std::vector<Var>(holes));
  for (auto& row : grid) {
    for (auto& var : row) var = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> at_least_one;
    for (int h = 0; h < holes; ++h) at_least_one.push_back(pos(grid[p][h]));
    ASSERT_TRUE(s.add_clause(at_least_one));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_binary(neg(grid[p1][h]), neg(grid[p2][h]));
      }
    }
  }
}

TEST(Solver, PigeonholeUnsat) {
  Solver s;
  std::vector<std::vector<Var>> grid;
  add_pigeonhole(s, 7, 6, grid);
  EXPECT_EQ(s.solve(), LBool::kFalse);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, PigeonholeSatWhenEnoughHoles) {
  Solver s;
  std::vector<std::vector<Var>> grid;
  add_pigeonhole(s, 6, 6, grid);
  ASSERT_EQ(s.solve(), LBool::kTrue);
  // Verify it is a valid assignment: each pigeon in >=1 hole, no sharing.
  for (int h = 0; h < 6; ++h) {
    int occupants = 0;
    for (int p = 0; p < 6; ++p) {
      occupants += (s.model_value(grid[p][h]) == LBool::kTrue);
    }
    EXPECT_LE(occupants, 1);
  }
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  Solver s;
  std::vector<std::vector<Var>> grid;
  add_pigeonhole(s, 10, 9, grid);
  const LBool r = s.solve({}, Budget{.conflicts = 5});
  EXPECT_EQ(r, LBool::kUndef);
}

TEST(Solver, TimeBudgetReturnsUndefOnHardInstance) {
  Solver s;
  std::vector<std::vector<Var>> grid;
  add_pigeonhole(s, 13, 12, grid);  // way beyond a 10ms budget
  const LBool r = s.solve({}, Budget{.seconds = 0.01});
  EXPECT_EQ(r, LBool::kUndef);
}

TEST(Solver, TautologicalClauseIgnored) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(a), neg(a)));
  EXPECT_EQ(s.num_clauses(), 0);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, DuplicateLiteralsDeduplicated) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(a), pos(b)}));
  ASSERT_TRUE(s.add_unit(neg(b)));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(a), LBool::kTrue);
}

TEST(Solver, NonDecisionVarNeverBranchedOn) {
  // A variable marked non-decision with no constraints stays unassigned;
  // the solver must still report SAT (it only branches on decision vars).
  Solver s;
  const Var a = s.new_var(/*decision=*/false);
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_binary(pos(b), pos(a)));
  // b picks up the clause; solver can satisfy with b=true without touching a.
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(Solver, StatsAccumulate) {
  Solver s;
  std::vector<std::vector<Var>> grid;
  add_pigeonhole(s, 7, 6, grid);
  ASSERT_EQ(s.solve(), LBool::kFalse);
  const auto& st = s.stats();
  EXPECT_GT(st.decisions, 0u);
  EXPECT_GT(st.propagations, 0u);
  EXPECT_GT(st.conflicts, 0u);
}

TEST(Dimacs, ParseAndSolve) {
  std::istringstream in(
      "c a comment\n"
      "p cnf 3 4\n"
      "1 2 0\n"
      "-1 2 0\n"
      "1 -2 0\n"
      "3 0\n");
  const DimacsProblem p = parse_dimacs(in);
  EXPECT_EQ(p.num_vars, 3);
  EXPECT_EQ(p.clauses.size(), 4u);
  Solver s;
  ASSERT_TRUE(load_into(p, s));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(Var{0}), LBool::kTrue);
  EXPECT_EQ(s.model_value(Var{1}), LBool::kTrue);
  EXPECT_EQ(s.model_value(Var{2}), LBool::kTrue);
}

TEST(Dimacs, RoundTrip) {
  DimacsProblem p;
  p.num_vars = 4;
  p.clauses = {{pos(0), neg(1)}, {pos(2), pos(3), neg(0)}};
  std::ostringstream out;
  write_dimacs(out, p);
  std::istringstream in(out.str());
  const DimacsProblem q = parse_dimacs(in);
  EXPECT_EQ(q.num_vars, p.num_vars);
  ASSERT_EQ(q.clauses.size(), p.clauses.size());
  for (std::size_t i = 0; i < p.clauses.size(); ++i) {
    EXPECT_EQ(q.clauses[i], p.clauses[i]);
  }
}

TEST(Dimacs, RejectsMalformedHeader) {
  std::istringstream in("p dnf 3 1\n1 0\n");
  EXPECT_THROW(parse_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsOutOfRangeLiteral) {
  std::istringstream in("p cnf 2 1\n3 0\n");
  EXPECT_THROW(parse_dimacs(in), std::runtime_error);
}

TEST(Lit, EncodingInvariants) {
  const Lit l = pos(5);
  EXPECT_EQ(l.var(), 5);
  EXPECT_FALSE(l.sign());
  EXPECT_TRUE((~l).sign());
  EXPECT_EQ((~l).var(), 5);
  EXPECT_EQ(~~l, l);
  EXPECT_EQ(l ^ true, ~l);
  EXPECT_EQ(l ^ false, l);
  EXPECT_EQ(neg(3), ~pos(3));
}

TEST(LBoolOps, NegationTable) {
  EXPECT_EQ(~LBool::kTrue, LBool::kFalse);
  EXPECT_EQ(~LBool::kFalse, LBool::kTrue);
  EXPECT_EQ(~LBool::kUndef, LBool::kUndef);
  EXPECT_EQ(xor_sign(LBool::kTrue, true), LBool::kFalse);
  EXPECT_EQ(xor_sign(LBool::kUndef, true), LBool::kUndef);
}

}  // namespace
}  // namespace optalloc::sat

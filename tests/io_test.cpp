// Tests for the problem-file format: parsing, validation diagnostics,
// round-tripping, objective specs, and an end-to-end parse -> optimize ->
// verify flow.

#include <gtest/gtest.h>

#include <sstream>

#include "alloc/io.hpp"
#include "alloc/optimizer.hpp"
#include "rt/verify.hpp"

namespace optalloc::alloc {
namespace {

constexpr const char* kSample = R"(# two-ECU ring system
system 2
memory 0 100
medium ring0 token_ring ecus=0,1 slot_min=1 slot_max=16 byte_ticks=1
task sensor period=100 deadline=40 memory=10 wcet=8,10
task control period=100 deadline=80 wcet=25,30
task actuator period=100 deadline=100 jitter=2 wcet=5,-
message sensor -> control bytes=4 deadline=50
message control -> actuator bytes=2 deadline=60 jitter=1
separate control actuator
)";

Problem parse(const std::string& text) {
  std::istringstream in(text);
  return parse_problem(in);
}

TEST(ProblemIo, ParsesSample) {
  const Problem p = parse(kSample);
  EXPECT_EQ(p.arch.num_ecus, 2);
  EXPECT_EQ(p.arch.ecu_memory[0], 100);
  ASSERT_EQ(p.arch.media.size(), 1u);
  EXPECT_EQ(p.arch.media[0].type, rt::MediumType::kTokenRing);
  EXPECT_EQ(p.arch.media[0].slot_max, 16);
  ASSERT_EQ(p.tasks.tasks.size(), 3u);
  EXPECT_EQ(p.tasks.tasks[0].name, "sensor");
  EXPECT_EQ(p.tasks.tasks[0].memory, 10);
  EXPECT_EQ(p.tasks.tasks[2].release_jitter, 2);
  EXPECT_EQ(p.tasks.tasks[2].wcet[1], rt::kForbidden);
  ASSERT_EQ(p.tasks.tasks[0].messages.size(), 1u);
  EXPECT_EQ(p.tasks.tasks[0].messages[0].target_task, 1);
  EXPECT_EQ(p.tasks.tasks[1].messages[0].release_jitter, 1);
  EXPECT_EQ(p.tasks.tasks[1].separated_from, std::vector<int>{2});
  EXPECT_EQ(p.tasks.tasks[2].separated_from, std::vector<int>{1});
}

TEST(ProblemIo, RoundTrips) {
  const Problem p = parse(kSample);
  std::ostringstream out;
  write_problem(out, p);
  const Problem q = parse(out.str());
  ASSERT_EQ(q.tasks.tasks.size(), p.tasks.tasks.size());
  for (std::size_t i = 0; i < p.tasks.tasks.size(); ++i) {
    EXPECT_EQ(q.tasks.tasks[i].name, p.tasks.tasks[i].name);
    EXPECT_EQ(q.tasks.tasks[i].period, p.tasks.tasks[i].period);
    EXPECT_EQ(q.tasks.tasks[i].deadline, p.tasks.tasks[i].deadline);
    EXPECT_EQ(q.tasks.tasks[i].release_jitter,
              p.tasks.tasks[i].release_jitter);
    EXPECT_EQ(q.tasks.tasks[i].wcet, p.tasks.tasks[i].wcet);
    EXPECT_EQ(q.tasks.tasks[i].messages.size(),
              p.tasks.tasks[i].messages.size());
    EXPECT_EQ(q.tasks.tasks[i].separated_from,
              p.tasks.tasks[i].separated_from);
  }
  EXPECT_EQ(q.arch.num_ecus, p.arch.num_ecus);
  EXPECT_EQ(q.arch.ecu_memory, p.arch.ecu_memory);
}

TEST(ProblemIo, GatewayOnlyAndCan) {
  const Problem p = parse(
      "system 3\n"
      "gateway_only 2\n"
      "medium can0 can ecus=0,1,2 bit_ticks=1 bits_per_tick=25\n"
      "task a period=10 deadline=10 wcet=1,1,1\n");
  EXPECT_TRUE(p.arch.gateway_only[2]);
  EXPECT_FALSE(p.arch.can_host_tasks(2));
  EXPECT_EQ(p.arch.media[0].type, rt::MediumType::kCan);
  EXPECT_EQ(p.arch.media[0].can_bits_per_tick, 25);
}

TEST(ProblemIo, DiagnosticsCarryLineNumbers) {
  try {
    parse("system 2\ntask broken period=10 wcet=1,1\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(ProblemIo, DiagnosticsNameTheSource) {
  std::istringstream in("system 2\nmedium ring0 token_ring\n");
  try {
    parse_problem(in, "fleet/gateway.prob");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fleet/gateway.prob"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
  // Default source name when the caller has nothing better.
  std::istringstream anon("nonsense\n");
  try {
    parse_problem(anon);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("problem file"), std::string::npos)
        << e.what();
  }
}

TEST(ProblemIo, RejectsMissingSystemLine) {
  EXPECT_THROW(parse("task a period=1 deadline=1 wcet=1\n"),
               std::runtime_error);
}

TEST(ProblemIo, RejectsUnknownKeyword) {
  EXPECT_THROW(parse("system 1\nfrobnicate 3\n"), std::runtime_error);
}

TEST(ProblemIo, RejectsWcetArityMismatch) {
  EXPECT_THROW(parse("system 3\ntask a period=1 deadline=1 wcet=1,2\n"),
               std::runtime_error);
}

TEST(ProblemIo, RejectsUnknownTaskInMessage) {
  EXPECT_THROW(
      parse("system 1\n"
            "task a period=10 deadline=10 wcet=1\n"
            "message a -> ghost bytes=1 deadline=5\n"),
      std::runtime_error);
}

TEST(ProblemIo, RejectsDuplicateTask) {
  EXPECT_THROW(parse("system 1\n"
                     "task a period=10 deadline=10 wcet=1\n"
                     "task a period=20 deadline=20 wcet=2\n"),
               std::runtime_error);
}

TEST(ProblemIo, ObjectiveSpecs) {
  EXPECT_EQ(parse_objective("feasibility").kind, ObjectiveKind::kFeasibility);
  EXPECT_EQ(parse_objective("trt:3").kind, ObjectiveKind::kTokenRingTrt);
  EXPECT_EQ(parse_objective("trt:3").medium, 3);
  EXPECT_EQ(parse_objective("sum-trt").kind, ObjectiveKind::kSumTrt);
  EXPECT_EQ(parse_objective("can-load:1").medium, 1);
  EXPECT_EQ(parse_objective("max-util").kind,
            ObjectiveKind::kMaxUtilization);
  EXPECT_THROW(parse_objective("nonsense"), std::runtime_error);
}

TEST(ProblemIo, ParsedProblemOptimizesEndToEnd) {
  const Problem p = parse(kSample);
  const OptimizeResult res = optimize(p, Objective::ring_trt(0));
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  const auto report = rt::verify(p.tasks, p.arch, res.allocation);
  EXPECT_TRUE(report.feasible);
  // control and actuator are separated; actuator is pinned to ECU 0.
  EXPECT_EQ(res.allocation.task_ecu[2], 0);
  EXPECT_NE(res.allocation.task_ecu[1], res.allocation.task_ecu[2]);
}

}  // namespace
}  // namespace optalloc::alloc

#!/usr/bin/env bash
# End-to-end smoke test for incremental re-solve sessions: start
# alloc_serve with tracing, open a session on the gateway problem (the
# opening solve must prove an optimum and seed the canonical result
# cache), issue a feasible what-if revise (warm solve, unchanged
# constraint groups reused), an infeasible revise (proven, with a named
# constraint-level unsat core), revise back to the base instance (the
# original optimum must return), exercise the @file edits form and the
# structured errors (bad patch / unknown session -> exit 3 with a code),
# confirm a cold submit of the base instance is served from the cache the
# session populated, close the session (second close must fail), check
# the stats counters, probe connect() retry (--retry N against a dead
# socket exits 1 after N attempts), shut down gracefully, and validate
# the emitted trace with the schema checker (session census rules:
# revise >= session_open, session_close <= session_open).
#
# usage: svc_session_smoke.sh ALLOC_SERVE ALLOC_CLIENT SCHEMA_CHECK PROBLEM WORKDIR
set -u

SERVE="$1"
CLIENT="$2"
SCHEMA_CHECK="$3"
PROBLEM="$4"
WORKDIR="$5"

fail() { echo "svc_session_smoke: FAIL: $*" >&2; exit 1; }

mkdir -p "$WORKDIR" || fail "cannot create $WORKDIR"
SOCK="$WORKDIR/svc_session_smoke.sock"
TRACE="$WORKDIR/svc_session_smoke_trace.jsonl"
LOG="$WORKDIR/svc_session_smoke_server.log"
rm -f "$SOCK" "$TRACE" "$LOG"

# --- Connect retry against a socket nobody listens on -------------------

RETRY_ERR=$("$CLIENT" --socket "$WORKDIR/nobody-home.sock" --retry 2 stats 2>&1)
RC=$?
[ $RC -eq 1 ] || fail "--retry against dead socket exited $RC (want 1)"
case "$RETRY_ERR" in
  *'2 attempts'*) ;;
  *) fail "retry failure message does not mention the attempt count: $RETRY_ERR" ;;
esac

"$SERVE" --socket "$SOCK" --workers 2 --trace "$TRACE" >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null' EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; fail "server died during startup"; }
  sleep 0.1
done
[ -S "$SOCK" ] || fail "socket $SOCK never appeared"

# --- Open: cold solve inside the session, optimum proven ----------------

OPEN=$("$CLIENT" --socket "$SOCK" --retry 3 session-open "$PROBLEM" sum-trt)
RC=$?
echo "open:     $OPEN"
[ $RC -eq 0 ] || fail "session-open exited $RC"
case "$OPEN" in
  *'"ok":true'*'"status":"optimal"'*'"proven_optimal":true'*) ;;
  *) fail "opening solve not a proven optimum: $OPEN" ;;
esac
case "$OPEN" in
  *'"cache_stored":true'*) ;;
  *) fail "opening solve did not seed the result cache: $OPEN" ;;
esac
case "$OPEN" in
  *'"task_ecu":['*) ;;
  *) fail "opening answer lacks the allocation: $OPEN" ;;
esac
SESSION=$(printf '%s\n' "$OPEN" | sed -n 's/.*"session":"\([^"]*\)".*/\1/p')
[ -n "$SESSION" ] || fail "cannot extract session id from $OPEN"
BASE_COST=$(printf '%s\n' "$OPEN" | sed -n 's/.*"cost":\(-\{0,1\}[0-9]*\).*/\1/p')
[ -n "$BASE_COST" ] || fail "cannot extract cost from $OPEN"

# --- Feasible what-if: warm solve reuses unchanged groups ---------------

WHATIF=$("$CLIENT" --socket "$SOCK" revise "$SESSION" \
         '[{"op":"set_deadline","task":"monitor","deadline":140}]')
RC=$?
echo "what-if:  $WHATIF"
[ $RC -eq 0 ] || fail "feasible revise exited $RC"
case "$WHATIF" in
  *'"status":"optimal"'*'"proven_optimal":true'*) ;;
  *) fail "feasible revise not proven optimal: $WHATIF" ;;
esac
case "$WHATIF" in
  *'"groups_unchanged":0,'*) fail "warm revise re-encoded everything: $WHATIF" ;;
esac

# --- Infeasible what-if: proven, with a constraint-level core -----------

INFEAS=$("$CLIENT" --socket "$SOCK" revise "$SESSION" \
         '[{"op":"set_deadline","task":"control","deadline":10}]')
RC=$?
echo "infeas:   $INFEAS"
[ $RC -eq 0 ] || fail "proven-infeasible revise exited $RC (want 0)"
case "$INFEAS" in
  *'"status":"infeasible"'*'"proven_optimal":true'*) ;;
  *) fail "infeasible revise not proven: $INFEAS" ;;
esac
case "$INFEAS" in
  *'"unsat_core":["'*) ;;
  *) fail "infeasible revise lacks a named unsat core: $INFEAS" ;;
esac

# --- Revise back (edits from @file): the base optimum returns -----------

EDITS="$WORKDIR/revert.edits.json"
cat >"$EDITS" <<'JSON'
[{"op":"set_deadline","task":"control","deadline":60},
 {"op":"set_deadline","task":"monitor","deadline":150}]
JSON
BACK=$("$CLIENT" --socket "$SOCK" revise "$SESSION" "@$EDITS")
RC=$?
echo "back:     $BACK"
[ $RC -eq 0 ] || fail "revise back exited $RC"
case "$BACK" in
  *'"status":"optimal"'*"\"cost\":$BASE_COST,"*) ;;
  *) fail "revise back did not restore the base optimum $BASE_COST: $BACK" ;;
esac

# --- Structured errors: bad patch, unknown session ----------------------

BAD=$("$CLIENT" --socket "$SOCK" revise "$SESSION" '[{"op":"frobnicate","task":"x"}]')
RC=$?
[ $RC -eq 3 ] || fail "bad patch exited $RC (want 3): $BAD"
case "$BAD" in
  *'"code":"bad_patch"'*) ;;
  *) fail "bad-patch reply lacks the machine-readable code: $BAD" ;;
esac

NOSESH=$("$CLIENT" --socket "$SOCK" revise nosuchsession '[]')
RC=$?
[ $RC -eq 3 ] || fail "unknown session exited $RC (want 3): $NOSESH"
case "$NOSESH" in
  *'"code":"unknown_session"'*) ;;
  *) fail "unknown-session reply lacks the code: $NOSESH" ;;
esac

# --- The session's answers feed the canonical result cache --------------

# The session solved the base instance as-submitted; a cold submit of the
# identical file must be answered from the cache without a solve.
COLD=$("$CLIENT" --socket "$SOCK" submit "$PROBLEM" sum-trt --wait)
RC=$?
echo "cold:     $COLD"
[ $RC -eq 0 ] || fail "cold submit exited $RC"
case "$COLD" in
  *'"cached":true'*) ;;
  *) fail "cold submit of the session's base instance missed the cache: $COLD" ;;
esac
case "$COLD" in
  *"\"cost\":$BASE_COST,"*) ;;
  *) fail "cached cold answer disagrees with the session optimum: $COLD" ;;
esac

STATS=$("$CLIENT" --socket "$SOCK" stats) || fail "stats verb failed"
echo "stats:    $STATS"
case "$STATS" in
  *'"sessions_opened":1'*) ;;
  *) fail "stats lack the session-open count: $STATS" ;;
esac
# Only revises that reached a live session count: the bad patch was
# rejected at parse and the unknown session never resolved.
case "$STATS" in
  *'"revises":3'*) ;;
  *) fail "stats revise count wrong (want 3): $STATS" ;;
esac
case "$STATS" in
  *'"active_sessions":1'*) ;;
  *) fail "stats lack the live session: $STATS" ;;
esac

# --- Close: idempotence is an error, not a silent success ---------------

CLOSED=$("$CLIENT" --socket "$SOCK" session-close "$SESSION")
RC=$?
[ $RC -eq 0 ] || fail "session-close exited $RC: $CLOSED"
case "$CLOSED" in
  *'"closed":true'*) ;;
  *) fail "close reply malformed: $CLOSED" ;;
esac
RECLOSE=$("$CLIENT" --socket "$SOCK" session-close "$SESSION")
RC=$?
[ $RC -eq 3 ] || fail "double close exited $RC (want 3): $RECLOSE"
case "$RECLOSE" in
  *'"code":"unknown_session"'*) ;;
  *) fail "double-close reply lacks the code: $RECLOSE" ;;
esac

# --- Drain, then validate the trace against the schema ------------------

"$CLIENT" --socket "$SOCK" shutdown >/dev/null || fail "shutdown verb failed"
SERVER_RC=1
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID"
    SERVER_RC=$?
    break
  fi
  sleep 0.1
done
trap - EXIT
[ $SERVER_RC -eq 0 ] || { cat "$LOG" >&2; fail "server exited $SERVER_RC"; }

"$SCHEMA_CHECK" "$TRACE" || fail "trace schema validation failed"
grep -q '"type":"session_open"' "$TRACE" || fail "no session_open event in trace"
grep -q '"type":"unsat_core"' "$TRACE" || fail "no unsat_core event in trace"
grep -q '"type":"session_close"' "$TRACE" || fail "no session_close event in trace"
# One revise event per session solve: the opening solve (edits=0) plus
# the three accepted revises.
REVISES=$(grep -c '"type":"revise"' "$TRACE")
[ "$REVISES" -eq 4 ] || fail "expected 4 revise trace events, got $REVISES"

echo "svc_session_smoke: OK"

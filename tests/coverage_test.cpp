// Additional coverage over thinner corners: IR printing/evaluation of all
// operators, bit-blaster gate folding identities, PB propagator counters,
// simulator options (fixed jitter, silent rings), verifier report fields,
// and the solver's statistics surface.

#include <gtest/gtest.h>

#include "encode/bitblast.hpp"
#include "ir/expr.hpp"
#include "pb/propagator.hpp"
#include "rt/sim.hpp"
#include "sat/solver.hpp"

namespace optalloc {
namespace {

TEST(IrPrinter, AllOperatorsRender) {
  ir::Context ctx;
  const auto x = ctx.int_var("x", 0, 7);
  const auto y = ctx.int_var("y", 0, 7);
  const auto p = ctx.bool_var("p");
  EXPECT_EQ(ctx.to_string(ctx.sub(x, y)), "(- x y)");
  EXPECT_EQ(ctx.to_string(ctx.mul(x, y)), "(* x y)");
  EXPECT_EQ(ctx.to_string(ctx.ite(p, x, y)), "(ite p x y)");
  EXPECT_EQ(ctx.to_string(ctx.land(p, ctx.eq(x, y))),
            "(and p (= x y))");
  EXPECT_EQ(ctx.to_string(ctx.lnot(p)), "(not p)");
  EXPECT_EQ(ctx.to_string(ctx.bool_const(true)), "true");
  // lt/gt/ne desugar to not/le/eq.
  EXPECT_EQ(ctx.to_string(ctx.lt(x, y)), "(not (<= y x))");
  EXPECT_EQ(ctx.to_string(ctx.ne(x, y)), "(not (= x y))");
}

TEST(IrEvaluator, DesugaredComparisons) {
  ir::Context ctx;
  const auto x = ctx.int_var("x", -10, 10);
  const auto y = ctx.int_var("y", -10, 10);
  ir::Evaluator ev(ctx);
  ev.set_int(x, 3);
  ev.set_int(y, -2);
  EXPECT_TRUE(ev.eval_bool(ctx.gt(x, y)));
  EXPECT_FALSE(ev.eval_bool(ctx.lt(x, y)));
  EXPECT_TRUE(ev.eval_bool(ctx.ne(x, y)));
  EXPECT_TRUE(ev.eval_bool(ctx.ge(x, x)));
  EXPECT_TRUE(ev.eval_bool(ctx.iff(ctx.le(y, x), ctx.bool_const(true))));
}

TEST(IrRanges, IteAndSumCompose) {
  ir::Context ctx;
  const auto p = ctx.bool_var("p");
  const auto a = ctx.int_var("a", 1, 3);
  const auto b = ctx.int_var("b", 10, 20);
  const auto pick = ctx.ite(p, a, b);
  EXPECT_EQ(ctx.range(pick).lo, 1);
  EXPECT_EQ(ctx.range(pick).hi, 20);
  const std::vector<ir::NodeId> xs = {a, b, pick};
  EXPECT_EQ(ctx.range(ctx.sum(xs)).lo, 12);
  EXPECT_EQ(ctx.range(ctx.sum(xs)).hi, 43);
}

TEST(BitBlast, SubtractionAndComparisonOfNegatives) {
  ir::Context ctx;
  sat::Solver s;
  encode::BitBlaster bb(ctx, s);
  const auto x = ctx.int_var("x", -20, 20);
  ASSERT_TRUE(bb.assert_true(ctx.eq(ctx.sub(ctx.constant(-5), x),
                                    ctx.constant(-17))));
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  EXPECT_EQ(bb.int_value(x), 12);
  // Comparators over negative constants fold/encode correctly.
  ASSERT_TRUE(bb.assert_true(ctx.ge(x, ctx.constant(-20))));
  ASSERT_TRUE(bb.assert_true(ctx.gt(x, ctx.constant(-1))));
  EXPECT_EQ(s.solve(), sat::LBool::kTrue);
}

TEST(BitBlast, MulByPowerOfTwoStaysCompact) {
  // Constant power-of-two multiplication is a pure shift: no clauses
  // should be emitted for the product itself (only the equality).
  ir::Context ctx;
  sat::Solver s;
  encode::BitBlaster bb(ctx, s);
  const auto x = ctx.int_var("x", 0, 15);
  bb.touch(x);
  const auto before = s.num_clauses();
  const auto y = ctx.mul(x, ctx.constant(8));
  bb.touch(y);
  // A shift introduces no gates at all.
  EXPECT_EQ(s.num_clauses(), before);
  ASSERT_TRUE(bb.assert_true(ctx.eq(y, ctx.constant(40))));
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  EXPECT_EQ(bb.int_value(x), 5);
}

TEST(BitBlast, FormulaLitOfConstants) {
  ir::Context ctx;
  sat::Solver s;
  encode::BitBlaster bb(ctx, s);
  const sat::Lit t = bb.formula_lit(ctx.bool_const(true));
  const sat::Lit f = bb.formula_lit(ctx.bool_const(false));
  EXPECT_EQ(t, ~f);
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  EXPECT_EQ(s.model_value(t), sat::LBool::kTrue);
  EXPECT_EQ(s.model_value(f), sat::LBool::kFalse);
}

TEST(PbStats, CountersAdvance) {
  sat::Solver s;
  pb::PbPropagator pbp(s);
  std::vector<pb::Term> terms;
  for (int i = 0; i < 6; ++i) terms.push_back({1, sat::pos(s.new_var())});
  ASSERT_TRUE(pbp.add_ge(terms, 3));
  ASSERT_TRUE(pbp.add_le(terms, 3));
  EXPECT_EQ(pbp.stats().constraints, 2u);
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  EXPECT_GT(pbp.stats().propagations + s.stats().propagations, 0u);
}

TEST(SolverStats, SurfaceIsPopulated) {
  sat::Solver s;
  const sat::Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_ternary(sat::pos(a), sat::pos(b), sat::pos(c));
  s.add_binary(sat::neg(a), sat::neg(b));
  EXPECT_EQ(s.stats().added_literals, 5u);
  EXPECT_EQ(s.num_clauses(), 2);
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  EXPECT_GE(s.stats().decisions, 1u);
}

TEST(Sim, FixedJitterMode) {
  rt::TaskSet ts;
  rt::Task t;
  t.name = "J";
  t.period = 20;
  t.deadline = 20;
  t.release_jitter = 5;
  t.wcet = {4};
  ts.tasks = {t};
  rt::Architecture arch;
  arch.num_ecus = 1;
  rt::Medium ring;
  ring.ecus = {0};
  arch.media = {ring};
  rt::Allocation alloc;
  alloc.task_ecu = {0};
  alloc.slots = {{1}};
  rt::SimOptions opts;
  opts.horizon = 200;
  opts.randomize_jitter = false;  // always the full jitter offset
  const rt::SimReport rep = simulate(ts, arch, alloc, opts);
  EXPECT_FALSE(rep.any_deadline_miss);
  EXPECT_EQ(rep.task_response[0], 4);  // response measured from release
  EXPECT_GT(rep.jobs_finished[0], 5);
}

TEST(Sim, SilentRingCarriesNothing) {
  // A ring whose slot table is all zeros is simply inert; tasks that do
  // not communicate over it are unaffected.
  rt::TaskSet ts;
  rt::Task t;
  t.name = "A";
  t.period = 10;
  t.deadline = 10;
  t.wcet = {2};
  ts.tasks = {t};
  rt::Architecture arch;
  arch.num_ecus = 1;
  rt::Medium ring;
  ring.ecus = {0};
  ring.slot_min = 0;
  arch.media = {ring};
  rt::Allocation alloc;
  alloc.task_ecu = {0};
  alloc.slots = {{0}};
  rt::SimOptions opts;
  opts.horizon = 50;
  const rt::SimReport rep = simulate(ts, arch, alloc, opts);
  EXPECT_FALSE(rep.any_deadline_miss);
  EXPECT_EQ(rep.task_response[0], 2);
}

TEST(Sim, HorizonDerivationCapped) {
  rt::TaskSet ts;
  for (int i = 0; i < 3; ++i) {
    rt::Task t;
    t.name = "P" + std::to_string(i);
    t.period = 997 + i;  // near-coprime periods: huge hyperperiod
    t.deadline = t.period;
    t.wcet = {1};
    ts.tasks.push_back(t);
  }
  rt::Architecture arch;
  arch.num_ecus = 1;
  rt::Medium ring;
  ring.ecus = {0};
  arch.media = {ring};
  rt::Allocation alloc;
  alloc.task_ecu = {0, 0, 0};
  alloc.slots = {{1}};
  rt::SimOptions opts;
  opts.max_horizon = 5000;
  const rt::SimReport rep = simulate(ts, arch, alloc, opts);
  EXPECT_EQ(rep.horizon, 5000);
  EXPECT_FALSE(rep.any_deadline_miss);
}

}  // namespace
}  // namespace optalloc

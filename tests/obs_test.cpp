// Observability layer: JSON round-trips, metrics registry merge semantics
// under concurrent writers, JSONL trace schema, the anytime progress
// callback's interval monotonicity on a real optimization run, the flight
// recorder's ring/overwrite/dump semantics (including the dump-while-
// writing race the seqlock exists for), and the perf-counter stubs.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alloc/optimizer.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perfctr.hpp"
#include "obs/resource.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "workload/tindell.hpp"

namespace optalloc {
namespace {

// --- JSON --------------------------------------------------------------

TEST(Json, EscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01 f";
  const std::string doc = obs::JsonObject().str("k", nasty).build();
  const auto parsed = obs::json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("k"), nasty);
}

TEST(Json, BuilderTypesParseBack) {
  obs::JsonArray arr;
  arr.push("1");
  arr.push("\"two\"");
  const std::string doc = obs::JsonObject()
                              .str("s", "hi")
                              .num("i", std::int64_t{-42})
                              .num("d", 2.5)
                              .boolean("b", true)
                              .raw("a", arr.build())
                              .build();
  const auto parsed = obs::json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("s"), "hi");
  EXPECT_EQ(parsed->get_number("i"), -42.0);
  EXPECT_EQ(parsed->get_number("d"), 2.5);
  const obs::JsonValue* b = parsed->get("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->b);
  const obs::JsonValue* a = parsed->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].string, "two");
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(obs::json_parse("").has_value());
  EXPECT_FALSE(obs::json_parse("{").has_value());
  EXPECT_FALSE(obs::json_parse("{}x").has_value());
  EXPECT_FALSE(obs::json_parse("{\"k\":}").has_value());
  EXPECT_FALSE(obs::json_parse("[1,]").has_value());
  EXPECT_TRUE(obs::json_parse(" { \"k\" : [ 1 , null ] } ").has_value());
}

TEST(Json, UnicodeEscapes) {
  const auto parsed = obs::json_parse("{\"k\":\"\\u00e9\\u0041\"}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("k"), "\xc3\xa9" "A");
}

// --- Metrics registry --------------------------------------------------

std::int64_t lookup(const std::vector<obs::MetricValue>& snap,
                    const std::string& name) {
  for (const auto& m : snap) {
    if (m.name == name) return m.value;
  }
  return -1;
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  const obs::Metric a = obs::counter("test.reg");
  const obs::Metric b = obs::counter("test.reg");
  EXPECT_EQ(a.id, b.id);
  EXPECT_THROW(obs::gauge("test.reg"), std::logic_error);
}

TEST(Metrics, ConcurrentWritersMergeExactly) {
  obs::reset_metrics();
  const obs::Metric c = obs::counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) obs::add(c, 1);
    });
  }
  for (auto& w : workers) w.join();
  // All writer threads have exited: the sum must include retired shards.
  EXPECT_EQ(lookup(obs::snapshot(), "test.concurrent"),
            std::int64_t{kThreads} * kAdds);

  // A second wave after the snapshot keeps accumulating on top.
  std::thread extra([c] { obs::add(c, 5); });
  extra.join();
  EXPECT_EQ(lookup(obs::snapshot(), "test.concurrent"),
            std::int64_t{kThreads} * kAdds + 5);
}

TEST(Metrics, SnapshotWhileWritersLive) {
  obs::reset_metrics();
  const obs::Metric c = obs::counter("test.live");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) obs::add(c, 1);
  });
  // Merge-on-read must be safe against a concurrently writing shard.
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = lookup(obs::snapshot(), "test.live");
    EXPECT_GE(v, 0);
  }
  stop.store(true);
  writer.join();
}

TEST(Metrics, GaugeAndTimerSemantics) {
  obs::reset_metrics();
  const obs::Metric g = obs::gauge("test.gauge");
  obs::set(g, 7);
  obs::set(g, 3);
  EXPECT_EQ(lookup(obs::snapshot(), "test.gauge"), 3);

  const obs::Metric t = obs::timer("test.timer");
  obs::record(t, 0.25);
  obs::record(t, 0.5);
  for (const auto& m : obs::snapshot()) {
    if (m.name != "test.timer") continue;
    EXPECT_EQ(m.kind, obs::MetricKind::kTimer);
    EXPECT_EQ(m.value, 2);  // invocation count
    EXPECT_DOUBLE_EQ(m.seconds, 0.75);
  }

  const auto doc = obs::json_parse(obs::metrics_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_number("test.gauge"), 3.0);
  const obs::JsonValue* timer = doc->get("test.timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->get_number("count"), 2.0);
}

// --- Histograms ---------------------------------------------------------

TEST(Metrics, HistogramBucketSchemeIsSoundAndTight) {
  // In-range positive values land in a bucket that contains them and whose
  // width is at most value / kHistSubBuckets — the documented 6.25%
  // relative-error bound for every quantile.
  const double values[] = {1e-9,     3.7e-6, 0.001,  0.0625, 1.0,
                           1.5,      2.0,    123.456, 8191.0, 1e9};
  int prev_idx = 0;
  for (const double v : values) {
    const int idx = obs::histogram_bucket_index(v);
    ASSERT_GT(idx, 0) << v;
    ASSERT_LT(idx, obs::kHistBuckets - 1) << v;
    EXPECT_GE(idx, prev_idx) << v;  // index monotone in the value
    prev_idx = idx;
    const auto [lo, hi] = obs::histogram_bucket_bounds(idx);
    EXPECT_LE(lo, v);
    EXPECT_GT(hi, v);
    EXPECT_LE(hi - lo, v / obs::kHistSubBuckets * (1 + 1e-12)) << v;
  }
  // Zero, negatives and too-small values underflow; huge ones overflow
  // into the open-ended top bucket.
  EXPECT_EQ(obs::histogram_bucket_index(0.0), 0);
  EXPECT_EQ(obs::histogram_bucket_index(-3.0), 0);
  EXPECT_EQ(obs::histogram_bucket_index(1e-12), 0);
  EXPECT_EQ(obs::histogram_bucket_index(1e30), obs::kHistBuckets - 1);
  EXPECT_TRUE(
      std::isinf(obs::histogram_bucket_bounds(obs::kHistBuckets - 1).second));
}

TEST(Metrics, LocalHistogramQuantilesWithinErrorBound) {
  obs::LocalHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram
  for (int i = 1; i <= 1000; ++i) h.observe(i * 0.001);  // uniform (0, 1]
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), 500.5, 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);  // max is exact, not bucketed
  for (const double q : {0.50, 0.90, 0.95, 0.99}) {
    // The q-quantile of this sample is ≈ q itself; the estimate must stay
    // within one bucket width (≤ q/16) plus the sample's 1e-3 grid.
    EXPECT_NEAR(h.quantile(q), q, q / obs::kHistSubBuckets + 2e-3) << q;
  }
}

TEST(Metrics, HistogramShardsMergeAcrossThreads) {
  obs::reset_metrics();
  const obs::Metric h = obs::histogram("test.hist");
  constexpr int kThreads = 4;
  constexpr int kObs = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([h] {
      for (int i = 1; i <= kObs; ++i) {
        obs::observe(h, static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();

  bool found = false;
  for (const auto& m : obs::snapshot()) {
    if (m.name != "test.hist") continue;
    found = true;
    EXPECT_EQ(m.kind, obs::MetricKind::kHistogram);
    EXPECT_EQ(m.value, std::int64_t{kThreads} * kObs);  // merged count
    EXPECT_NEAR(m.sum, kThreads * (kObs * (kObs + 1) / 2.0), 1e-6);
    std::uint64_t bucket_total = 0;
    for (const auto& b : m.buckets) {
      EXPECT_GT(b.count, 0u);  // snapshot carries only non-empty buckets
      bucket_total += b.count;
    }
    EXPECT_EQ(bucket_total, static_cast<std::uint64_t>(kThreads) * kObs);
    const double p50 = obs::histogram_quantile(m.buckets, 0.50);
    EXPECT_NEAR(p50, 500.0, 500.0 / obs::kHistSubBuckets + 1.0);
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, HistogramGateSuppressesObservations) {
  obs::reset_metrics();
  const obs::Metric h = obs::histogram("test.gated");
  ASSERT_TRUE(obs::histograms_enabled());
  obs::set_histograms(false);
  obs::observe(h, 1.0);  // dropped: the gate is the bench's "off" config
  obs::set_histograms(true);
  obs::observe(h, 2.0);
  EXPECT_EQ(lookup(obs::snapshot(), "test.gated"), 1);
}

TEST(Metrics, FullJsonRoundTripsAndRendersPrometheus) {
  obs::reset_metrics();
  obs::add(obs::counter("test.rt.count"), 3);
  obs::set(obs::gauge("test.rt.gauge"), -2);
  obs::record(obs::timer("test.rt.timer"), 0.5);
  const obs::Metric h = obs::histogram("test.rt.hist");
  for (int i = 1; i <= 100; ++i) obs::observe(h, static_cast<double>(i));

  // Wire round-trip: the typed JSON document decodes back into the exact
  // snapshot (bucket quantization already happened at observe time).
  const auto doc = obs::json_parse(obs::metrics_full_json());
  ASSERT_TRUE(doc.has_value());
  const auto decoded = obs::metrics_from_json(*doc);
  const auto snap = obs::snapshot();
  ASSERT_EQ(decoded.size(), snap.size());
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(decoded[i].name, snap[i].name);
    EXPECT_EQ(decoded[i].kind, snap[i].kind);
    EXPECT_EQ(decoded[i].value, snap[i].value);
    ASSERT_EQ(decoded[i].buckets.size(), snap[i].buckets.size());
    for (std::size_t b = 0; b < snap[i].buckets.size(); ++b) {
      EXPECT_EQ(decoded[i].buckets[b].count, snap[i].buckets[b].count);
      EXPECT_DOUBLE_EQ(decoded[i].buckets[b].hi, snap[i].buckets[b].hi);
    }
  }

  // The decoded snapshot renders through the same Prometheus writer the
  // server uses locally: names sanitized, cumulative buckets, quantiles.
  const std::string prom = obs::prometheus_from_snapshot(decoded);
  EXPECT_NE(prom.find("# TYPE test_rt_count counter"), std::string::npos);
  EXPECT_NE(prom.find("test_rt_count 3"), std::string::npos);
  EXPECT_NE(prom.find("test_rt_gauge -2"), std::string::npos);
  EXPECT_NE(prom.find("test_rt_timer_count 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_rt_hist histogram"), std::string::npos);
  EXPECT_NE(prom.find("test_rt_hist_bucket{le=\"+Inf\"} 100"),
            std::string::npos);
  EXPECT_NE(prom.find("test_rt_hist_count 100"), std::string::npos);
  EXPECT_NE(prom.find("test_rt_hist_p95 "), std::string::npos);

  // Cumulative bucket counts must be non-decreasing and end at the total.
  std::uint64_t last_cum = 0;
  std::size_t pos = 0;
  while ((pos = prom.find("test_rt_hist_bucket{le=", pos)) !=
         std::string::npos) {
    const std::size_t space = prom.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t cum = std::strtoull(
        prom.c_str() + space + 2, nullptr, 10);
    EXPECT_GE(cum, last_cum);
    last_cum = cum;
    pos = space;
  }
  EXPECT_EQ(last_cum, 100u);
}

// --- Trace sink + progress callback ------------------------------------

struct TraceRun {
  alloc::OptimizeResult result;
  std::vector<obs::JsonValue> events;
  std::vector<alloc::Progress> progress;
};

/// Optimize a small Tindell prefix with the trace sink routed to a string
/// stream; returns the parsed events and the progress-callback samples.
TraceRun traced_run() {
  TraceRun run;
  std::ostringstream sink;
  obs::trace_to_stream(&sink);
  alloc::OptimizeOptions opts;
  opts.on_progress = [&run](const alloc::Progress& p) {
    run.progress.push_back(p);
  };
  run.result = alloc::optimize(workload::tindell_prefix(10),
                               alloc::Objective::ring_trt(0), opts);
  obs::trace_close();

  std::istringstream lines(sink.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto parsed = obs::json_parse(line);
    EXPECT_TRUE(parsed.has_value()) << "unparseable trace line: " << line;
    if (parsed) run.events.push_back(std::move(*parsed));
  }
  return run;
}

TEST(Trace, JsonlSchemaAndEventVocabulary) {
  const TraceRun run = traced_run();
  ASSERT_EQ(run.result.status, alloc::OptimizeResult::Status::kOptimal);
  ASSERT_FALSE(run.events.empty());

  int solves = 0, intervals = 0, optimums = 0;
  double last_ts = 0.0;
  for (const auto& ev : run.events) {
    ASSERT_TRUE(ev.is_object());
    const auto type = ev.get_string("type");
    ASSERT_TRUE(type.has_value());
    const auto ts = ev.get_number("ts");
    ASSERT_TRUE(ts.has_value());
    EXPECT_GE(*ts, last_ts);  // single-threaded run: timestamps ordered
    last_ts = *ts;
    ASSERT_TRUE(ev.get_number("tid").has_value());

    if (*type == "solve") {
      ++solves;
      const auto result = ev.get_string("result");
      ASSERT_TRUE(result.has_value());
      EXPECT_TRUE(*result == "sat" || *result == "unsat" ||
                  *result == "undef");
      EXPECT_TRUE(ev.get_number("call").has_value());
      EXPECT_TRUE(ev.get_number("conflicts").has_value());
      EXPECT_TRUE(ev.get_number("seconds").has_value());
    } else if (*type == "interval") {
      ++intervals;
      const auto lower = ev.get_number("lower");
      const auto upper = ev.get_number("upper");
      ASSERT_TRUE(lower.has_value());
      ASSERT_TRUE(upper.has_value());
      EXPECT_LE(*lower, *upper);
    } else if (*type == "optimum") {
      ++optimums;
      EXPECT_EQ(ev.get_string("status"), "optimal");
      EXPECT_EQ(ev.get_number("cost"),
                static_cast<double>(run.result.cost));
    }
  }
  EXPECT_GE(solves, 1);
  EXPECT_GE(intervals, 1);
  EXPECT_EQ(optimums, 1);
  EXPECT_EQ(solves, run.result.stats.sat_calls);
}

TEST(Trace, ProgressIntervalsShrinkMonotonically) {
  const TraceRun run = traced_run();
  ASSERT_EQ(run.result.status, alloc::OptimizeResult::Status::kOptimal);
  ASSERT_FALSE(run.progress.empty());

  const alloc::Progress* prev = nullptr;
  for (const alloc::Progress& p : run.progress) {
    EXPECT_LE(p.lower, p.upper);
    EXPECT_GE(p.seconds, 0.0);
    if (prev) {
      EXPECT_GE(p.lower, prev->lower);   // lower bound never retreats
      EXPECT_LE(p.upper, prev->upper);   // incumbent never worsens
      EXPECT_GE(p.sat_calls, prev->sat_calls);
    }
    if (p.has_incumbent) {
      EXPECT_EQ(p.incumbent_cost, p.upper);
    }
    prev = &p;
  }
  // Final sample: the interval has collapsed onto the optimum.
  const alloc::Progress& last = run.progress.back();
  EXPECT_EQ(last.lower, last.upper);
  EXPECT_EQ(last.upper, run.result.cost);
}

TEST(Trace, DisabledSinkEmitsNothing) {
  std::ostringstream sink;
  obs::trace_to_stream(&sink);
  obs::trace_close();
  EXPECT_FALSE(obs::trace_enabled());
  { obs::TraceEvent ev("ignored"); }
  EXPECT_TRUE(sink.str().empty());
}

// --- Request correlation ------------------------------------------------

TEST(Trace, SpansAndContextCorrelateEvents) {
  std::ostringstream sink;
  obs::trace_to_stream(&sink);

  obs::SpanContext req_ctx;
  req_ctx.req = obs::next_span_id();
  std::uint64_t queue_span = 0;
  {
    obs::ContextScope scope(req_ctx);
    {
      obs::Span phase("phase");
      obs::TraceEvent("inner").num("x", 1);
    }
    // Cross-thread halves: begin here, end on another thread — the pattern
    // the scheduler uses for queue-wait spans.
    queue_span = obs::span_begin_event("queue_wait", req_ctx);
    std::thread worker([&] {
      obs::span_end_event("queue_wait", req_ctx, queue_span, 0.25);
    });
    worker.join();
  }
  obs::TraceEvent("outside").num("x", 2);  // context restored: no req field
  obs::trace_close();

  std::map<std::string, std::vector<obs::JsonValue>> by_type;
  std::istringstream lines(sink.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto parsed = obs::json_parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    by_type[*parsed->get_string("type")].push_back(std::move(*parsed));
  }
  ASSERT_EQ(by_type["span_begin"].size(), 2u);
  ASSERT_EQ(by_type["span_end"].size(), 2u);
  ASSERT_EQ(by_type["inner"].size(), 1u);
  ASSERT_EQ(by_type["outside"].size(), 1u);

  const double req = static_cast<double>(req_ctx.req);
  const obs::JsonValue& begin = by_type["span_begin"][0];
  EXPECT_EQ(begin.get_string("name"), "phase");
  EXPECT_EQ(begin.get_number("req"), req);
  EXPECT_EQ(begin.get_number("parent"), 0.0);  // request root
  const auto phase_span = begin.get_number("span");
  ASSERT_TRUE(phase_span.has_value());
  EXPECT_GT(*phase_span, 0.0);

  // The event emitted inside the Span inherits req AND the span id — this
  // is what lets trace_report hang solver events off their phase.
  const obs::JsonValue& inner = by_type["inner"][0];
  EXPECT_EQ(inner.get_number("req"), req);
  EXPECT_EQ(inner.get_number("span"), *phase_span);

  const obs::JsonValue& end = by_type["span_end"][0];
  EXPECT_EQ(end.get_string("name"), "phase");
  EXPECT_EQ(end.get_number("span"), *phase_span);
  const auto seconds = end.get_number("seconds");
  ASSERT_TRUE(seconds.has_value());
  EXPECT_GE(*seconds, 0.0);

  // The queue_wait halves match by (req, span) even though span_end ran on
  // a different thread, and carry the externally measured duration.
  const obs::JsonValue& qbegin = by_type["span_begin"][1];
  const obs::JsonValue& qend = by_type["span_end"][1];
  EXPECT_EQ(qbegin.get_string("name"), "queue_wait");
  EXPECT_EQ(qbegin.get_number("span"), static_cast<double>(queue_span));
  EXPECT_EQ(qend.get_number("span"), static_cast<double>(queue_span));
  EXPECT_EQ(qend.get_number("req"), req);
  EXPECT_EQ(qend.get_number("seconds"), 0.25);
  EXPECT_NE(qbegin.get_number("tid"), qend.get_number("tid"));

  // Outside any context: no correlation fields at all.
  EXPECT_EQ(by_type["outside"][0].get("req"), nullptr);
  EXPECT_EQ(by_type["outside"][0].get("span"), nullptr);
}

TEST(Trace, SpanIsInertWhenTracingOff) {
  ASSERT_FALSE(obs::trace_enabled());
  const obs::SpanContext before = obs::current_context();
  {
    obs::Span span("dark");
    // No sink: the span must not leak a context onto the thread...
    EXPECT_EQ(obs::current_context().req, before.req);
  }
  // ...and the thread's context is untouched afterwards.
  EXPECT_EQ(obs::current_context().span, before.span);
}

// --- Flight recorder ----------------------------------------------------

/// Parse a flight_dump_events() array and keep only events of `type` —
/// other tests (and the optimizer) leave their own records in the rings.
std::vector<obs::JsonValue> dumped_events(const std::string& type,
                                          std::uint64_t req = 0) {
  std::size_t count = 0;
  const auto parsed = obs::json_parse(obs::flight_dump_events(req, &count));
  EXPECT_TRUE(parsed.has_value());
  std::vector<obs::JsonValue> out;
  if (!parsed) return out;
  EXPECT_EQ(parsed->array.size(), count);
  for (const auto& ev : parsed->array) {
    EXPECT_TRUE(ev.is_object());
    EXPECT_TRUE(ev.get_string("type").has_value());
    const auto ts = ev.get_number("ts");
    EXPECT_TRUE(ts.has_value());
    if (ts) {
      EXPECT_GE(*ts, 0.0);
    }
    EXPECT_TRUE(ev.get_number("tid").has_value());
    if (ev.get_string("type") == type) out.push_back(ev);
  }
  return out;
}

TEST(Flight, RingOverwritesOldestOnWraparound) {
  obs::flight_reset();
  constexpr int kExtra = 17;
  const int total = static_cast<int>(obs::kFlightCapacity) + kExtra;
  for (int i = 0; i < total; ++i) {
    obs::FlightNote("wrap_probe").num("i", i);
  }
  const auto events = dumped_events("wrap_probe");
  // Exactly the ring capacity survives; the oldest kExtra were overwritten
  // and the survivors are the *last* kFlightCapacity notes, oldest first.
  ASSERT_EQ(events.size(), obs::kFlightCapacity);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].get_number("i"),
              static_cast<double>(kExtra + static_cast<int>(k)));
  }
}

TEST(Flight, RequestFilterSelectsOnlyThatRequest) {
  obs::flight_reset();
  obs::SpanContext ctx;
  ctx.req = obs::next_span_id();
  {
    obs::ContextScope scope(ctx);
    obs::FlightNote("attributed").num("x", 1);
  }
  obs::FlightNote("unattributed").num("x", 2);

  const auto mine = dumped_events("attributed", ctx.req);
  ASSERT_EQ(mine.size(), 1u);
  EXPECT_EQ(mine[0].get_number("req"), static_cast<double>(ctx.req));
  EXPECT_EQ(mine[0].get_number("x"), 1.0);
  // The filtered dump holds nothing but that request's records...
  EXPECT_TRUE(dumped_events("unattributed", ctx.req).empty());
  // ...while the unfiltered dump still has both, without a "req" field on
  // the context-free record.
  const auto loose = dumped_events("unattributed");
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_EQ(loose[0].get("req"), nullptr);
}

TEST(Flight, GateSuppressesRecordingButKeepsTail) {
  obs::flight_reset();
  ASSERT_TRUE(obs::flight_enabled());
  { obs::FlightNote("kept").num("x", 1); }
  obs::set_flight(false);
  { obs::FlightNote("dropped").num("x", 2); }
  obs::set_flight(true);
  // Disabling drops new records but the already-recorded tail survives.
  EXPECT_EQ(dumped_events("kept").size(), 1u);
  EXPECT_TRUE(dumped_events("dropped").empty());
}

TEST(Flight, FieldOverflowDropsExtras) {
  obs::flight_reset();
  static_assert(obs::kFlightFields == 8);
  {
    obs::FlightNote n("overflow");
    n.num("f0", 0).num("f1", 1).num("f2", 2).num("f3", 3).num("f4", 4);
    n.num("f5", 5).num("f6", 6).num("f7", 7).num("f8", 8).num("f9", 9);
  }
  const auto events = dumped_events("overflow");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].get_number("f0"), 0.0);
  EXPECT_EQ(events[0].get_number("f7"), 7.0);
  EXPECT_EQ(events[0].get("f8"), nullptr);
  EXPECT_EQ(events[0].get("f9"), nullptr);
}

TEST(Flight, SignalSafeFdDumpMatchesAllocatingDump) {
  obs::flight_reset();
  // Values chosen to exercise the handler's hand-rolled double formatting:
  // sign, pure integer, fraction with trailing-zero trimming, sub-integer.
  obs::FlightNote("fmt_probe")
      .num("neg", -2.5)
      .num("whole", 3.0)
      .num("frac", 0.125)
      .num("big", 1e12);

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  const std::size_t written = obs::flight_dump_fd(fileno(tmp));
  ASSERT_GT(written, 0u);
  std::rewind(tmp);
  std::string contents(written, '\0');
  ASSERT_EQ(std::fread(contents.data(), 1, written, tmp), written);
  std::fclose(tmp);

  // Every line of the signal-safe JSONL must parse; our record must carry
  // the exact values (all are exactly representable at 1e-6 precision).
  std::istringstream lines(contents);
  std::string line;
  int fmt_probes = 0;
  int total = 0;
  while (std::getline(lines, line)) {
    const auto parsed = obs::json_parse(line);
    ASSERT_TRUE(parsed.has_value()) << "unparseable fd-dump line: " << line;
    ++total;
    if (parsed->get_string("type") != "fmt_probe") continue;
    ++fmt_probes;
    EXPECT_EQ(parsed->get_number("neg"), -2.5);
    EXPECT_EQ(parsed->get_number("whole"), 3.0);
    EXPECT_EQ(parsed->get_number("frac"), 0.125);
    EXPECT_EQ(parsed->get_number("big"), 1e12);
  }
  EXPECT_EQ(fmt_probes, 1);

  // The allocating JSONL form sees the same record set.
  int jsonl_lines = 0;
  std::istringstream jsonl(obs::flight_dump_jsonl());
  while (std::getline(jsonl, line)) {
    EXPECT_TRUE(obs::json_parse(line).has_value()) << line;
    ++jsonl_lines;
  }
  EXPECT_EQ(jsonl_lines, total);
}

TEST(Flight, DumpWhileWritingNeverYieldsTornRecords) {
  obs::flight_reset();
  // A writer hammers its ring while this thread dumps concurrently: the
  // per-slot seqlock must make every dumped record either complete or
  // absent — a record pairing "i" with the wrong "twice_i" would be torn.
  // (This is the race the tsan ctest variant is after.)
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      obs::FlightNote("race_probe").num("i", i).num("twice_i", 2 * i);
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    for (const auto& ev : dumped_events("race_probe")) {
      const auto i = ev.get_number("i");
      const auto twice = ev.get_number("twice_i");
      ASSERT_TRUE(i.has_value());
      ASSERT_TRUE(twice.has_value());
      EXPECT_EQ(*twice, 2 * *i);
    }
  }
  stop.store(true);
  writer.join();
}

// --- Perf counters ------------------------------------------------------

TEST(PerfCtr, UnavailableCountersRenderWellFormedNulls) {
  const obs::PerfCounts none;  // available == false, all counters -1
  const auto doc = obs::json_parse(obs::perf_json(none));
  ASSERT_TRUE(doc.has_value());
  for (const char* key : {"cycles", "instructions", "cache_references",
                          "cache_misses", "branch_misses"}) {
    const obs::JsonValue* v = doc->get(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_EQ(v->kind, obs::JsonValue::Kind::kNull) << key;
  }
}

TEST(PerfCtr, DeltaPropagatesAbsentSiblings) {
  obs::PerfCounts a;
  a.available = true;
  a.cycles = 100;
  a.cache_misses = 7;  // instructions etc. stay -1 (absent)
  obs::PerfCounts b;
  b.available = true;
  b.cycles = 40;
  b.cache_misses = 9;  // counter went "backwards" (group reopened)
  const obs::PerfCounts d = obs::perf_delta(a, b);
  EXPECT_TRUE(d.available);
  EXPECT_EQ(d.cycles, 60);
  EXPECT_EQ(d.instructions, -1);   // absent on both sides stays absent
  EXPECT_EQ(d.cache_misses, 0);    // never negative
  EXPECT_FALSE(obs::perf_delta(a, obs::PerfCounts{}).available);
}

TEST(PerfCtr, ReadsAreSafeWhetherHardwareExistsOrNot) {
  // Must hold both on perf-capable hosts and in containers that mask the
  // syscall: reads never fail, JSON always parses.
  const obs::PerfCounts c = obs::perf_read();
  EXPECT_EQ(c.available, obs::perf_available());
  if (!c.available) {
    EXPECT_EQ(c.cycles, -1);
  }
  EXPECT_TRUE(obs::json_parse(obs::perf_json(c)).has_value());
  { obs::PerfSpan span("probe"); }  // destructor must be a no-op sans trace
}

TEST(PerfCtr, KillSwitchDisablesFreshThreads) {
  // OPTALLOC_NO_PERFCTR is honored at each thread's lazy group open; a
  // thread started under the kill switch must report unavailable even on
  // perf-capable hosts.
  ASSERT_EQ(setenv("OPTALLOC_NO_PERFCTR", "1", /*overwrite=*/1), 0);
  bool available = true;
  obs::PerfCounts counts;
  std::thread probe([&] {
    available = obs::perf_available();
    counts = obs::perf_read();
  });
  probe.join();
  unsetenv("OPTALLOC_NO_PERFCTR");
  EXPECT_FALSE(available);
  EXPECT_FALSE(counts.available);
  EXPECT_EQ(counts.cycles, -1);
}

// --- Resource registry -------------------------------------------------

/// Snapshot lookup helper; (0,0) when the resource is absent.
obs::ResourceValue res_lookup(const char* name) {
  for (const auto& r : obs::resource_snapshot()) {
    if (r.name == name) return r;
  }
  return {};
}

TEST(ResourceRegistry, DeltasMergeAcrossThreads) {
  obs::reset_resources();
  const obs::Resource r = obs::resource("test.res.merge");
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([r] {
      for (int i = 0; i < kIters; ++i) {
        obs::res_add(r, 64, 1);
        if (i % 2 == 0) obs::res_add(r, -16, 0);
      }
    });
  }
  // Every writer exits before the snapshot: their totals must fold into
  // the retired accumulator, not vanish with the threads.
  for (auto& w : workers) w.join();
  const auto v = res_lookup("test.res.merge");
  EXPECT_EQ(v.bytes, kThreads * (kIters * 64 - (kIters / 2) * 16));
  EXPECT_EQ(v.items, kThreads * kIters);
}

TEST(ResourceRegistry, TrackerDiffsAndRetractsOnDestruction) {
  obs::reset_resources();
  {
    obs::ResourceTracker tracker(obs::resource("test.res.tracker"));
    tracker.set(1000, 5);
    auto v = res_lookup("test.res.tracker");
    EXPECT_EQ(v.bytes, 1000);
    EXPECT_EQ(v.items, 5);
    tracker.set(400, 2);  // shrink: only the delta is published
    v = res_lookup("test.res.tracker");
    EXPECT_EQ(v.bytes, 400);
    EXPECT_EQ(v.items, 2);
  }
  const auto v = res_lookup("test.res.tracker");
  EXPECT_EQ(v.bytes, 0);
  EXPECT_EQ(v.items, 0);
}

TEST(ResourceRegistry, DisabledGateDropsWrites) {
  obs::reset_resources();
  const obs::Resource r = obs::resource("test.res.gate");
  obs::set_resources(false);
  obs::res_add(r, 4096, 7);
  obs::set_resources(true);
  const auto v = res_lookup("test.res.gate");
  EXPECT_EQ(v.bytes, 0);
  EXPECT_EQ(v.items, 0);
}

TEST(ResourceRegistry, WatermarkEmitsOnCrossingWithHysteresis) {
  obs::reset_resources();
  const obs::Resource r = obs::resource("test.res.wm");
  obs::set_resource_watermark("test.res.wm", 1000, 500);
  std::ostringstream sink;
  obs::trace_to_stream(&sink);

  obs::res_add(r, 1500, 1);
  obs::check_resource_watermarks();  // 1500 > 1000: "high"
  obs::res_add(r, -600, 0);
  obs::check_resource_watermarks();  // 900: inside the hysteresis band
  obs::res_add(r, -500, 0);
  obs::check_resource_watermarks();  // 400 <= 500: "normal"
  obs::res_add(r, 800, 0);
  obs::check_resource_watermarks();  // 1200: "high" again
  obs::trace_close();
  obs::set_resource_watermark("test.res.wm", 0);  // disarm

  std::vector<std::pair<std::string, double>> crossings;  // level, bytes
  std::istringstream lines(sink.str());
  std::string line;
  while (std::getline(lines, line)) {
    const auto ev = obs::json_parse(line);
    ASSERT_TRUE(ev.has_value()) << line;
    if (ev->get_string("type") != "resource_watermark") continue;
    EXPECT_EQ(ev->get_string("resource"), "test.res.wm");
    ASSERT_TRUE(ev->get_number("threshold").has_value());
    crossings.emplace_back(*ev->get_string("level"),
                           *ev->get_number("bytes"));
  }
  ASSERT_EQ(crossings.size(), 3u);
  EXPECT_EQ(crossings[0].first, "high");
  EXPECT_EQ(crossings[0].second, 1500);
  EXPECT_EQ(crossings[1].first, "normal");
  EXPECT_EQ(crossings[1].second, 400);
  EXPECT_EQ(crossings[2].first, "high");
  EXPECT_EQ(crossings[2].second, 1200);
}

TEST(ResourceRegistry, ConcurrentAddWhileSnapshot) {
  obs::reset_resources();
  const obs::Resource r = obs::resource("test.res.race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      obs::res_add(r, 128, 1);
      obs::res_add(r, -128, -1);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const auto v = res_lookup("test.res.race");
    // The writer adds then retracts; any interleaving of the two relaxed
    // adds yields a level of 0 or 128 bytes, never garbage.
    EXPECT_TRUE(v.bytes == 0 || v.bytes == 128) << v.bytes;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  const auto v = res_lookup("test.res.race");
  EXPECT_EQ(v.bytes, 0);
  EXPECT_EQ(v.items, 0);
}

// --- Time-series rings -------------------------------------------------

TEST(TimeSeries, WraparoundKeepsLatestSamples) {
  obs::reset_timeseries();
  const std::size_t total = obs::kTimeSeriesCapacity + 50;
  for (std::size_t i = 0; i < total; ++i) {
    obs::timeseries_record("test.ts.wrap", static_cast<std::int64_t>(i),
                           static_cast<double>(i));
  }
  const auto samples = obs::timeseries_query("test.ts.wrap");
  ASSERT_EQ(samples.size(), obs::kTimeSeriesCapacity);
  EXPECT_EQ(samples.front().unix_ms,
            static_cast<std::int64_t>(total - obs::kTimeSeriesCapacity));
  EXPECT_EQ(samples.back().unix_ms, static_cast<std::int64_t>(total - 1));
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].unix_ms, samples[i].unix_ms);
  }
}

TEST(TimeSeries, DownsamplingKeepsNewestSample) {
  obs::reset_timeseries();
  for (int i = 0; i < 100; ++i) {
    obs::timeseries_record("test.ts.down", i, i);
  }
  const auto samples = obs::timeseries_query("test.ts.down", 0.0, 10);
  ASSERT_FALSE(samples.empty());
  EXPECT_LE(samples.size(), 10u);
  EXPECT_EQ(samples.back().unix_ms, 99);  // latest always survives
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].unix_ms, samples[i].unix_ms);
  }
}

TEST(TimeSeries, EmptyAndUnknownQueries) {
  obs::reset_timeseries();
  EXPECT_TRUE(obs::timeseries_query("no.such.series").empty());
  EXPECT_TRUE(obs::timeseries_list().empty());
  obs::timeseries_record("test.ts.one", 1, 1.0);
  EXPECT_TRUE(obs::timeseries_query("still.not.there").empty());
  EXPECT_EQ(obs::timeseries_list().size(), 1u);
}

TEST(TimeSeries, WindowFilterDropsOldSamples) {
  obs::reset_timeseries();
  const std::int64_t now = obs::wall_unix_ms();
  obs::timeseries_record("test.ts.window", now - 9000, 1.0);
  obs::timeseries_record("test.ts.window", now - 200, 2.0);
  const auto samples = obs::timeseries_query("test.ts.window", 5.0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, 2.0);
}

TEST(TimeSeries, SampleNowDerivesQuantilesAndResources) {
  obs::reset_timeseries();
  obs::reset_resources();
  const obs::Metric h = obs::histogram("test.ts.hist_ms");
  obs::observe(h, 5.0);
  obs::observe(h, 50.0);
  const obs::Resource r = obs::resource("test.ts.res");
  obs::res_add(r, 4096, 3);
  obs::timeseries_sample_now();

  const auto p99 = obs::timeseries_query("test.ts.hist_ms.p99");
  ASSERT_EQ(p99.size(), 1u);
  EXPECT_GE(p99[0].value, 5.0);
  const auto count = obs::timeseries_query("test.ts.hist_ms.count");
  ASSERT_EQ(count.size(), 1u);
  EXPECT_EQ(count[0].value, 2.0);
  const auto bytes = obs::timeseries_query("res.test.ts.res.bytes");
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0].value, 4096.0);
  const auto items = obs::timeseries_query("res.test.ts.res.items");
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value, 3.0);

  obs::timeseries_sample_now();
  EXPECT_EQ(obs::timeseries_query("test.ts.hist_ms.p99").size(), 2u);
}

TEST(TimeSeries, ConcurrentWriteWhileQuery) {
  obs::reset_timeseries();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::int64_t ts = 0;
    do {  // at least one record even if stop wins the thread-start race
      obs::timeseries_record("test.ts.race", ++ts, 1.0);
      obs::timeseries_sample_now();
    } while (!stop.load(std::memory_order_relaxed));
  });
  // On a single-CPU box the writer may not be scheduled yet; make the
  // queries actually overlap with live writes before racing them.
  while (obs::timeseries_query("test.ts.race").empty()) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 100; ++i) {
    const auto samples = obs::timeseries_query("test.ts.race", 0.0, 16);
    EXPECT_LE(samples.size(), 16u);
    for (std::size_t k = 1; k < samples.size(); ++k) {
      EXPECT_LE(samples[k - 1].unix_ms, samples[k].unix_ms);
    }
    (void)obs::timeseries_list();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_FALSE(obs::timeseries_query("test.ts.race").empty());
}

TEST(Metrics, OptimizerFlushesRegistry) {
  obs::reset_metrics();
  const auto res = alloc::optimize(workload::tindell_prefix(8),
                                   alloc::Objective::ring_trt(0), {});
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal);
  const auto snap = obs::snapshot();
  EXPECT_EQ(lookup(snap, "opt.runs"), 1);
  EXPECT_EQ(lookup(snap, "opt.sat_calls"),
            static_cast<std::int64_t>(res.stats.sat_calls));
  EXPECT_EQ(lookup(snap, "sat.solve_calls"),
            static_cast<std::int64_t>(res.stats.sat_calls));
  EXPECT_GT(lookup(snap, "sat.decisions"), 0);
}

}  // namespace
}  // namespace optalloc

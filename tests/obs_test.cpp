// Observability layer: JSON round-trips, metrics registry merge semantics
// under concurrent writers, JSONL trace schema, and the anytime progress
// callback's interval monotonicity on a real optimization run.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alloc/optimizer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/tindell.hpp"

namespace optalloc {
namespace {

// --- JSON --------------------------------------------------------------

TEST(Json, EscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01 f";
  const std::string doc = obs::JsonObject().str("k", nasty).build();
  const auto parsed = obs::json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("k"), nasty);
}

TEST(Json, BuilderTypesParseBack) {
  obs::JsonArray arr;
  arr.push("1");
  arr.push("\"two\"");
  const std::string doc = obs::JsonObject()
                              .str("s", "hi")
                              .num("i", std::int64_t{-42})
                              .num("d", 2.5)
                              .boolean("b", true)
                              .raw("a", arr.build())
                              .build();
  const auto parsed = obs::json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("s"), "hi");
  EXPECT_EQ(parsed->get_number("i"), -42.0);
  EXPECT_EQ(parsed->get_number("d"), 2.5);
  const obs::JsonValue* b = parsed->get("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->b);
  const obs::JsonValue* a = parsed->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].string, "two");
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(obs::json_parse("").has_value());
  EXPECT_FALSE(obs::json_parse("{").has_value());
  EXPECT_FALSE(obs::json_parse("{}x").has_value());
  EXPECT_FALSE(obs::json_parse("{\"k\":}").has_value());
  EXPECT_FALSE(obs::json_parse("[1,]").has_value());
  EXPECT_TRUE(obs::json_parse(" { \"k\" : [ 1 , null ] } ").has_value());
}

TEST(Json, UnicodeEscapes) {
  const auto parsed = obs::json_parse("{\"k\":\"\\u00e9\\u0041\"}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("k"), "\xc3\xa9" "A");
}

// --- Metrics registry --------------------------------------------------

std::int64_t lookup(const std::vector<obs::MetricValue>& snap,
                    const std::string& name) {
  for (const auto& m : snap) {
    if (m.name == name) return m.value;
  }
  return -1;
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  const obs::Metric a = obs::counter("test.reg");
  const obs::Metric b = obs::counter("test.reg");
  EXPECT_EQ(a.id, b.id);
  EXPECT_THROW(obs::gauge("test.reg"), std::logic_error);
}

TEST(Metrics, ConcurrentWritersMergeExactly) {
  obs::reset_metrics();
  const obs::Metric c = obs::counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) obs::add(c, 1);
    });
  }
  for (auto& w : workers) w.join();
  // All writer threads have exited: the sum must include retired shards.
  EXPECT_EQ(lookup(obs::snapshot(), "test.concurrent"),
            std::int64_t{kThreads} * kAdds);

  // A second wave after the snapshot keeps accumulating on top.
  std::thread extra([c] { obs::add(c, 5); });
  extra.join();
  EXPECT_EQ(lookup(obs::snapshot(), "test.concurrent"),
            std::int64_t{kThreads} * kAdds + 5);
}

TEST(Metrics, SnapshotWhileWritersLive) {
  obs::reset_metrics();
  const obs::Metric c = obs::counter("test.live");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) obs::add(c, 1);
  });
  // Merge-on-read must be safe against a concurrently writing shard.
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = lookup(obs::snapshot(), "test.live");
    EXPECT_GE(v, 0);
  }
  stop.store(true);
  writer.join();
}

TEST(Metrics, GaugeAndTimerSemantics) {
  obs::reset_metrics();
  const obs::Metric g = obs::gauge("test.gauge");
  obs::set(g, 7);
  obs::set(g, 3);
  EXPECT_EQ(lookup(obs::snapshot(), "test.gauge"), 3);

  const obs::Metric t = obs::timer("test.timer");
  obs::record(t, 0.25);
  obs::record(t, 0.5);
  for (const auto& m : obs::snapshot()) {
    if (m.name != "test.timer") continue;
    EXPECT_EQ(m.kind, obs::MetricKind::kTimer);
    EXPECT_EQ(m.value, 2);  // invocation count
    EXPECT_DOUBLE_EQ(m.seconds, 0.75);
  }

  const auto doc = obs::json_parse(obs::metrics_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_number("test.gauge"), 3.0);
  const obs::JsonValue* timer = doc->get("test.timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->get_number("count"), 2.0);
}

// --- Trace sink + progress callback ------------------------------------

struct TraceRun {
  alloc::OptimizeResult result;
  std::vector<obs::JsonValue> events;
  std::vector<alloc::Progress> progress;
};

/// Optimize a small Tindell prefix with the trace sink routed to a string
/// stream; returns the parsed events and the progress-callback samples.
TraceRun traced_run() {
  TraceRun run;
  std::ostringstream sink;
  obs::trace_to_stream(&sink);
  alloc::OptimizeOptions opts;
  opts.on_progress = [&run](const alloc::Progress& p) {
    run.progress.push_back(p);
  };
  run.result = alloc::optimize(workload::tindell_prefix(10),
                               alloc::Objective::ring_trt(0), opts);
  obs::trace_close();

  std::istringstream lines(sink.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto parsed = obs::json_parse(line);
    EXPECT_TRUE(parsed.has_value()) << "unparseable trace line: " << line;
    if (parsed) run.events.push_back(std::move(*parsed));
  }
  return run;
}

TEST(Trace, JsonlSchemaAndEventVocabulary) {
  const TraceRun run = traced_run();
  ASSERT_EQ(run.result.status, alloc::OptimizeResult::Status::kOptimal);
  ASSERT_FALSE(run.events.empty());

  int solves = 0, intervals = 0, optimums = 0;
  double last_ts = 0.0;
  for (const auto& ev : run.events) {
    ASSERT_TRUE(ev.is_object());
    const auto type = ev.get_string("type");
    ASSERT_TRUE(type.has_value());
    const auto ts = ev.get_number("ts");
    ASSERT_TRUE(ts.has_value());
    EXPECT_GE(*ts, last_ts);  // single-threaded run: timestamps ordered
    last_ts = *ts;
    ASSERT_TRUE(ev.get_number("tid").has_value());

    if (*type == "solve") {
      ++solves;
      const auto result = ev.get_string("result");
      ASSERT_TRUE(result.has_value());
      EXPECT_TRUE(*result == "sat" || *result == "unsat" ||
                  *result == "undef");
      EXPECT_TRUE(ev.get_number("call").has_value());
      EXPECT_TRUE(ev.get_number("conflicts").has_value());
      EXPECT_TRUE(ev.get_number("seconds").has_value());
    } else if (*type == "interval") {
      ++intervals;
      const auto lower = ev.get_number("lower");
      const auto upper = ev.get_number("upper");
      ASSERT_TRUE(lower.has_value());
      ASSERT_TRUE(upper.has_value());
      EXPECT_LE(*lower, *upper);
    } else if (*type == "optimum") {
      ++optimums;
      EXPECT_EQ(ev.get_string("status"), "optimal");
      EXPECT_EQ(ev.get_number("cost"),
                static_cast<double>(run.result.cost));
    }
  }
  EXPECT_GE(solves, 1);
  EXPECT_GE(intervals, 1);
  EXPECT_EQ(optimums, 1);
  EXPECT_EQ(solves, run.result.stats.sat_calls);
}

TEST(Trace, ProgressIntervalsShrinkMonotonically) {
  const TraceRun run = traced_run();
  ASSERT_EQ(run.result.status, alloc::OptimizeResult::Status::kOptimal);
  ASSERT_FALSE(run.progress.empty());

  const alloc::Progress* prev = nullptr;
  for (const alloc::Progress& p : run.progress) {
    EXPECT_LE(p.lower, p.upper);
    EXPECT_GE(p.seconds, 0.0);
    if (prev) {
      EXPECT_GE(p.lower, prev->lower);   // lower bound never retreats
      EXPECT_LE(p.upper, prev->upper);   // incumbent never worsens
      EXPECT_GE(p.sat_calls, prev->sat_calls);
    }
    if (p.has_incumbent) {
      EXPECT_EQ(p.incumbent_cost, p.upper);
    }
    prev = &p;
  }
  // Final sample: the interval has collapsed onto the optimum.
  const alloc::Progress& last = run.progress.back();
  EXPECT_EQ(last.lower, last.upper);
  EXPECT_EQ(last.upper, run.result.cost);
}

TEST(Trace, DisabledSinkEmitsNothing) {
  std::ostringstream sink;
  obs::trace_to_stream(&sink);
  obs::trace_close();
  EXPECT_FALSE(obs::trace_enabled());
  { obs::TraceEvent ev("ignored"); }
  EXPECT_TRUE(sink.str().empty());
}

TEST(Metrics, OptimizerFlushesRegistry) {
  obs::reset_metrics();
  const auto res = alloc::optimize(workload::tindell_prefix(8),
                                   alloc::Objective::ring_trt(0), {});
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal);
  const auto snap = obs::snapshot();
  EXPECT_EQ(lookup(snap, "opt.runs"), 1);
  EXPECT_EQ(lookup(snap, "opt.sat_calls"),
            static_cast<std::int64_t>(res.stats.sat_calls));
  EXPECT_EQ(lookup(snap, "sat.solve_calls"),
            static_cast<std::int64_t>(res.stats.sat_calls));
  EXPECT_GT(lookup(snap, "sat.decisions"), 0);
}

}  // namespace
}  // namespace optalloc

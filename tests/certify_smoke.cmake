# End-to-end certification smoke test (driven by ctest, see
# tests/CMakeLists): run allocate_file with --certify on the bundled
# gateway problem, require a certified optimum, then re-verify the dumped
# proof log with the standalone drat_check tool in strict mode.
#
# Expects: -DALLOCATE_FILE=<path> -DDRAT_CHECK=<path> -DPROBLEM=<path>
#          -DWORK_DIR=<scratch dir>

file(MAKE_DIRECTORY "${WORK_DIR}")
set(proof_file "${WORK_DIR}/certify_smoke.drat")

execute_process(
  COMMAND "${ALLOCATE_FILE}" --certify --proof "${proof_file}" "${PROBLEM}"
  RESULT_VARIABLE allocate_status
  OUTPUT_VARIABLE allocate_output
  ERROR_VARIABLE allocate_output)
if(NOT allocate_status EQUAL 0)
  message(FATAL_ERROR
          "allocate_file --certify failed (${allocate_status}):\n"
          "${allocate_output}")
endif()
if(NOT allocate_output MATCHES "status:[ ]+optimal")
  message(FATAL_ERROR "expected an optimal answer:\n${allocate_output}")
endif()
if(NOT allocate_output MATCHES "certified: true")
  message(FATAL_ERROR "optimum is not certified:\n${allocate_output}")
endif()

execute_process(
  COMMAND "${DRAT_CHECK}" "${proof_file}"
  RESULT_VARIABLE check_status
  OUTPUT_VARIABLE check_output
  ERROR_VARIABLE check_output)
if(NOT check_status EQUAL 0)
  message(FATAL_ERROR
          "drat_check rejected the dumped proof (${check_status}):\n"
          "${check_output}")
endif()
if(NOT check_output MATCHES "VERIFIED")
  message(FATAL_ERROR "drat_check did not verify:\n${check_output}")
endif()
message(STATUS "certified optimum + proof ok:\n${allocate_output}")

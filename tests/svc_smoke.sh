#!/usr/bin/env bash
# End-to-end smoke test for the allocation service: start alloc_serve on a
# Unix socket, submit the same problem twice through alloc_client (the
# second submission must be served from the canonical-instance cache),
# check the stats counters, shut the daemon down gracefully, and validate
# the emitted trace with the schema checker.
#
# usage: svc_smoke.sh ALLOC_SERVE ALLOC_CLIENT SCHEMA_CHECK PROBLEM WORKDIR
set -u

SERVE="$1"
CLIENT="$2"
SCHEMA_CHECK="$3"
PROBLEM="$4"
WORKDIR="$5"

fail() { echo "svc_smoke: FAIL: $*" >&2; exit 1; }

mkdir -p "$WORKDIR" || fail "cannot create $WORKDIR"
SOCK="$WORKDIR/svc_smoke.sock"
TRACE="$WORKDIR/svc_smoke_trace.jsonl"
LOG="$WORKDIR/svc_smoke_server.log"
rm -f "$SOCK" "$TRACE" "$LOG"

"$SERVE" --socket "$SOCK" --workers 2 --trace "$TRACE" >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null' EXIT

# Wait for the listening socket to appear.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; fail "server died during startup"; }
  sleep 0.1
done
[ -S "$SOCK" ] || fail "socket $SOCK never appeared"

# First submission: solved fresh, must end proven optimal.
FIRST=$("$CLIENT" --socket "$SOCK" submit "$PROBLEM" sum-trt --wait)
RC=$?
echo "first:  $FIRST"
[ $RC -eq 0 ] || fail "first submit exited $RC"
case "$FIRST" in
  *'"ok":true'*'"state":"done"'*'"status":"optimal"'*) ;;
  *) fail "first response not a proven optimum: $FIRST" ;;
esac
case "$FIRST" in
  *'"cached":false'*) ;;
  *) fail "first response unexpectedly cached: $FIRST" ;;
esac

# Second submission of the identical instance: canonical cache hit.
SECOND=$("$CLIENT" --socket "$SOCK" submit "$PROBLEM" sum-trt --wait)
RC=$?
echo "second: $SECOND"
[ $RC -eq 0 ] || fail "second submit exited $RC"
case "$SECOND" in
  *'"cached":true'*) ;;
  *) fail "second response was not served from the cache: $SECOND" ;;
esac

STATS=$("$CLIENT" --socket "$SOCK" stats) || fail "stats verb failed"
echo "stats:  $STATS"
case "$STATS" in
  *'"cache_hits":1'*) ;;
  *) fail "expected exactly one cache hit in $STATS" ;;
esac

# Graceful shutdown: daemon acknowledges, drains, exits 0, unlinks socket.
"$CLIENT" --socket "$SOCK" shutdown >/dev/null || fail "shutdown verb failed"
SERVER_RC=1
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID"
    SERVER_RC=$?
    break
  fi
  sleep 0.1
done
trap - EXIT
[ $SERVER_RC -eq 0 ] || { cat "$LOG" >&2; fail "server exited $SERVER_RC"; }
[ ! -e "$SOCK" ] || fail "socket file not cleaned up"

# The trace must validate against the event schema (service census rules).
"$SCHEMA_CHECK" "$TRACE" || fail "trace schema validation failed"

echo "svc_smoke: OK"

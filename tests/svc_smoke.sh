#!/usr/bin/env bash
# End-to-end smoke test for the allocation service: start alloc_serve on a
# Unix socket with tracing and periodic metrics snapshots, submit the same
# problem twice through alloc_client (the second submission must be served
# from the canonical-instance cache), check the stats counters, scrape the
# metrics verb in Prometheus text format, inspect a finished request and
# replay its flight-recorder records through the dump verb, probe the
# structured error answers (unknown verb / unknown id -> exit 3 with a
# machine-readable "code"), force a deadline miss on a slow instance and
# check its post-mortem flight dump, shut the daemon down gracefully,
# validate the emitted trace with the schema checker, and reconstruct the
# requests with trace_report (spans must balance; the trace must not be
# truncated — its last event must be the shutdown's "service_stop"; the
# deadline miss must have left a flight_dump with the final search_sample).
#
# On top of that: open an incremental session and revise it (so guard and
# dead-guard gauges are live), let the sampler feed the time-series rings,
# pull a latency quantile series back through the query verb, and render
# one alloc_top dashboard frame whose arena / cache / dead-guard readings
# must be non-zero while the session is still open.
#
# usage: svc_smoke.sh ALLOC_SERVE ALLOC_CLIENT SCHEMA_CHECK TRACE_REPORT PROBLEM WORKDIR EXPORT_WORKLOAD ALLOC_TOP
set -u

SERVE="$1"
CLIENT="$2"
SCHEMA_CHECK="$3"
TRACE_REPORT="$4"
PROBLEM="$5"
WORKDIR="$6"
EXPORT="$7"
TOP="$8"

fail() { echo "svc_smoke: FAIL: $*" >&2; exit 1; }

mkdir -p "$WORKDIR" || fail "cannot create $WORKDIR"
SOCK="$WORKDIR/svc_smoke.sock"
TRACE="$WORKDIR/svc_smoke_trace.jsonl"
LOG="$WORKDIR/svc_smoke_server.log"
rm -f "$SOCK" "$TRACE" "$LOG"

"$SERVE" --socket "$SOCK" --workers 2 --trace "$TRACE" \
         --metrics-interval 0.2 >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null' EXIT

# Wait for the listening socket to appear.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; fail "server died during startup"; }
  sleep 0.1
done
[ -S "$SOCK" ] || fail "socket $SOCK never appeared"

# First submission: solved fresh, must end proven optimal.
FIRST=$("$CLIENT" --socket "$SOCK" submit "$PROBLEM" sum-trt --wait)
RC=$?
echo "first:  $FIRST"
[ $RC -eq 0 ] || fail "first submit exited $RC"
case "$FIRST" in
  *'"ok":true'*'"state":"done"'*'"status":"optimal"'*) ;;
  *) fail "first response not a proven optimum: $FIRST" ;;
esac
case "$FIRST" in
  *'"cached":false'*) ;;
  *) fail "first response unexpectedly cached: $FIRST" ;;
esac

# Second submission of the identical instance: canonical cache hit.
SECOND=$("$CLIENT" --socket "$SOCK" submit "$PROBLEM" sum-trt --wait)
RC=$?
echo "second: $SECOND"
[ $RC -eq 0 ] || fail "second submit exited $RC"
case "$SECOND" in
  *'"cached":true'*) ;;
  *) fail "second response was not served from the cache: $SECOND" ;;
esac

STATS=$("$CLIENT" --socket "$SOCK" stats) || fail "stats verb failed"
echo "stats:  $STATS"
case "$STATS" in
  *'"cache_hits":1'*) ;;
  *) fail "expected exactly one cache hit in $STATS" ;;
esac

# Metrics verb: the raw snapshot must be well-formed JSON with histogram
# entries, and --prom must render scrapeable Prometheus text exposition.
METRICS=$("$CLIENT" --socket "$SOCK" metrics) || fail "metrics verb failed"
case "$METRICS" in
  *'"ok":true'*'"svc.request_ms"'*'"kind":"histogram"'*) ;;
  *) fail "metrics response lacks the request-latency histogram: $METRICS" ;;
esac
PROM=$("$CLIENT" --socket "$SOCK" metrics --prom) || fail "metrics --prom failed"
case "$PROM" in
  *'# TYPE svc_request_ms histogram'*) ;;
  *) fail "prometheus output lacks the svc_request_ms histogram" ;;
esac
case "$PROM" in
  *'svc_request_ms_bucket{le="+Inf"} 2'*) ;;
  *) fail "prometheus request histogram does not count both requests" ;;
esac
case "$PROM" in
  *'svc_request_ms_p95 '*) ;;
  *) fail "prometheus output lacks histogram quantile gauges" ;;
esac

# --- Live introspection + flight-recorder replay ------------------------

FIRST_ID=$(printf '%s\n' "$FIRST" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$FIRST_ID" ] || fail "cannot extract request id from $FIRST"

# inspect: the finished job reports its terminal phase plus the answer.
INSPECT=$("$CLIENT" --socket "$SOCK" inspect "$FIRST_ID") \
  || fail "inspect verb failed"
echo "inspect: $INSPECT"
case "$INSPECT" in
  *'"ok":true'*'"phase":"finished"'*'"status":"optimal"'*) ;;
  *) fail "inspect response malformed: $INSPECT" ;;
esac

# dump ID: the flight recorder replays that request's solve records even
# though nothing crashed.
DUMP=$("$CLIENT" --socket "$SOCK" dump "$FIRST_ID") || fail "dump verb failed"
case "$DUMP" in
  *'"ok":true'*'"events":['*'"type":"solve"'*) ;;
  *) fail "flight dump lacks the request's solve records: $DUMP" ;;
esac

# --- Structured protocol errors -----------------------------------------

# Unknown verb: {"ok":false,...,"code":"unknown_verb"}, client exit 3.
RAW=$("$CLIENT" --socket "$SOCK" raw '{"verb":"frobnicate"}')
RC=$?
[ $RC -eq 3 ] || fail "unknown verb exited $RC (want 3): $RAW"
case "$RAW" in
  *'"code":"unknown_verb"'*) ;;
  *) fail "unknown-verb reply lacks the machine-readable code: $RAW" ;;
esac

# Unknown request id on dump: same contract, code "unknown_id".
BADID=$("$CLIENT" --socket "$SOCK" dump nosuchid)
RC=$?
[ $RC -eq 3 ] || fail "dump of unknown id exited $RC (want 3): $BADID"
case "$BADID" in
  *'"code":"unknown_id"'*) ;;
  *) fail "unknown-id reply lacks the machine-readable code: $BADID" ;;
esac

# --- Forced deadline miss: anytime answer + post-mortem flight dump -----

"$EXPORT" tindell:30 >"$WORKDIR/slow.prob" || fail "export_workload failed"
MISS=$("$CLIENT" --socket "$SOCK" submit "$WORKDIR/slow.prob" trt:0 \
       --deadline 1500 --wait)
RC=$?
echo "miss:   $MISS"
# Exit 4 = terminal answer that is feasible but not proven optimal.
[ $RC -eq 4 ] || fail "deadline-missed submit exited $RC (want 4): $MISS"
case "$MISS" in
  *'"deadline_expired":true'*) ;;
  *) fail "deadline-missed answer not flagged: $MISS" ;;
esac
MISS_ID=$(printf '%s\n' "$MISS" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$MISS_ID" ] || fail "cannot extract request id from $MISS"
MISS_DUMP=$("$CLIENT" --socket "$SOCK" dump "$MISS_ID") \
  || fail "dump after deadline miss failed"
case "$MISS_DUMP" in
  *'"type":"search_sample"'*) ;;
  *) fail "post-mortem dump lacks the final search_sample: $MISS_DUMP" ;;
esac

# --- Capacity telemetry: query verb + alloc_top dashboard ---------------

# Open a session and run a feasible revise: the warm solver keeps its
# clause arena alive (res.sat.arena.bytes) and the revise retires at
# least one constraint guard (res.inc.dead_guards.items).
OPEN=$("$CLIENT" --socket "$SOCK" session-open "$PROBLEM" sum-trt) \
  || fail "session-open failed"
SESSION=$(printf '%s\n' "$OPEN" | sed -n 's/.*"session":"\([^"]*\)".*/\1/p')
[ -n "$SESSION" ] || fail "cannot extract session id from $OPEN"
"$CLIENT" --socket "$SOCK" revise "$SESSION" \
  '[{"op":"set_deadline","task":"monitor","deadline":140}]' >/dev/null \
  || fail "revise failed"

# Give the 0.2 s sampler time to take at least two ticks.
sleep 0.6

# Catalogue mode: the rings must include resource series.
CATALOGUE=$("$CLIENT" --socket "$SOCK" query) || fail "query verb failed"
case "$CATALOGUE" in
  *'"metric":"res.sat.arena.bytes"'*) ;;
  *) fail "query catalogue lacks res.sat.arena.bytes: $CATALOGUE" ;;
esac

# Series mode: the revise-latency p99 must have >= 2 samples, each a
# [unix_ms, value] pair stamped within the last minute.
SERIES=$("$CLIENT" --socket "$SOCK" query svc.revise_ms.p99 --last 60) \
  || fail "query series failed"
echo "series: $SERIES"
COUNT=$(printf '%s\n' "$SERIES" | sed -n 's/.*"count":\([0-9]*\).*/\1/p')
[ -n "$COUNT" ] && [ "$COUNT" -ge 2 ] \
  || fail "expected >= 2 samples of svc.revise_ms.p99, got: $SERIES"
NOW_MS=$(($(date +%s) * 1000))
FIRST_TS=$(printf '%s\n' "$SERIES" | sed -n 's/.*"samples":\[\[\([0-9]*\),.*/\1/p')
[ -n "$FIRST_TS" ] || fail "cannot extract sample timestamp from $SERIES"
[ $((NOW_MS - FIRST_TS)) -lt 60000 ] && [ "$FIRST_TS" -le $((NOW_MS + 5000)) ] \
  || fail "sample timestamp $FIRST_TS not within a minute of now $NOW_MS"

# One dashboard frame while the session (and its warm solver) is live:
# arena bytes, cache occupancy and the dead-guard count must be non-zero.
FRAME=$("$TOP" --once --socket "$SOCK") || fail "alloc_top --once failed"
printf '%s\n' "$FRAME"
ARENA=$(printf '%s\n' "$FRAME" | sed -n 's/^arena *bytes=\([0-9]*\).*/\1/p')
[ -n "$ARENA" ] && [ "$ARENA" -gt 0 ] \
  || fail "alloc_top reports no arena bytes: $FRAME"
CACHEB=$(printf '%s\n' "$FRAME" | sed -n 's/^cache .*bytes=\([0-9]*\).*/\1/p')
[ -n "$CACHEB" ] && [ "$CACHEB" -gt 0 ] \
  || fail "alloc_top reports no cache bytes: $FRAME"
DEAD=$(printf '%s\n' "$FRAME" | sed -n 's/.*dead=\([0-9]*\) .*/\1/p')
[ -n "$DEAD" ] && [ "$DEAD" -ge 1 ] \
  || fail "alloc_top reports no dead guards: $FRAME"
printf '%s\n' "$FRAME" | grep -q '^p99_ms' \
  || fail "alloc_top frame lacks the p99 series row: $FRAME"
printf '%s\n' "$FRAME" | grep -q 'uptime=' \
  || fail "alloc_top frame lacks uptime: $FRAME"

"$CLIENT" --socket "$SOCK" session-close "$SESSION" >/dev/null \
  || fail "session-close failed"

# Let at least one periodic metrics_snapshot trace event fire.
sleep 0.4

# Graceful shutdown: daemon acknowledges, drains, exits 0, unlinks socket.
"$CLIENT" --socket "$SOCK" shutdown >/dev/null || fail "shutdown verb failed"
SERVER_RC=1
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID"
    SERVER_RC=$?
    break
  fi
  sleep 0.1
done
trap - EXIT
[ $SERVER_RC -eq 0 ] || { cat "$LOG" >&2; fail "server exited $SERVER_RC"; }
[ ! -e "$SOCK" ] || fail "socket file not cleaned up"

# The trace must validate against the event schema (service census rules,
# span balance, request attribution of solver events).
"$SCHEMA_CHECK" "$TRACE" || fail "trace schema validation failed"

# trace_truncated guard: a graceful drain flushes and closes the sink, so
# the file must end with the scheduler's final "service_stop" event — a
# truncated tail (lost ofstream buffer) cannot contain it.
tail -n 1 "$TRACE" | grep -q '"type":"service_stop"' \
  || fail "trace truncated: last event is not service_stop"
grep -q '"type":"metrics_snapshot"' "$TRACE" \
  || fail "no periodic metrics_snapshot event in trace"

# The deadline miss must have emitted a flight-recorder post-mortem into
# the trace, embedding the request's ring contents.
grep -q '"type":"flight_dump"' "$TRACE" \
  || fail "no flight_dump post-mortem event in trace"

# trace_report must reconstruct every completed request into a balanced
# span tree with phase timings.
REPORT=$("$TRACE_REPORT" --json "$TRACE") || fail "trace_report found unbalanced spans"
echo "report: $REPORT"
case "$REPORT" in
  *'"balanced":true'*) ;;
  *) fail "trace_report did not balance spans: $REPORT" ;;
esac
case "$REPORT" in
  *'"reconstructed_fraction":1'*) ;;
  *) fail "trace_report failed to reconstruct all requests: $REPORT" ;;
esac

# The deadline-miss flight dump must be surfaced with the request's final
# search-trajectory sample — the "why was it still searching" post-mortem.
case "$REPORT" in
  *'"flight_dumps":['*'"reason":"deadline_expired"'*'"has_search_sample":true'*) ;;
  *) fail "trace_report did not surface the deadline-miss flight dump: $REPORT" ;;
esac

echo "svc_smoke: OK"

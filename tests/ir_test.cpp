// Tests for the integer-expression IR: hash-consing, constant folding,
// range inference, evaluator semantics, and printing.

#include <gtest/gtest.h>

#include "ir/expr.hpp"

namespace optalloc::ir {
namespace {

TEST(Context, HashConsingSharesStructure) {
  Context ctx;
  const NodeId x = ctx.int_var("x", 0, 10);
  const NodeId y = ctx.int_var("y", 0, 10);
  const NodeId a = ctx.add(x, y);
  const NodeId b = ctx.add(x, y);
  EXPECT_EQ(a, b);
  const NodeId c = ctx.add(y, x);  // commutative canonicalization
  EXPECT_EQ(a, c);
}

TEST(Context, FreshVariablesAreDistinct) {
  Context ctx;
  const NodeId x1 = ctx.int_var("x", 0, 1);
  const NodeId x2 = ctx.int_var("x", 0, 1);
  EXPECT_NE(x1, x2);
}

TEST(Context, ConstantFolding) {
  Context ctx;
  const NodeId five = ctx.constant(5);
  const NodeId three = ctx.constant(3);
  EXPECT_EQ(ctx.add(five, three), ctx.constant(8));
  EXPECT_EQ(ctx.sub(five, three), ctx.constant(2));
  EXPECT_EQ(ctx.mul(five, three), ctx.constant(15));
}

TEST(Context, IdentityFolding) {
  Context ctx;
  const NodeId x = ctx.int_var("x", -4, 9);
  EXPECT_EQ(ctx.add(x, ctx.constant(0)), x);
  EXPECT_EQ(ctx.mul(x, ctx.constant(1)), x);
  EXPECT_EQ(ctx.mul(x, ctx.constant(0)), ctx.constant(0));
  EXPECT_EQ(ctx.sub(x, x), ctx.constant(0));
}

TEST(Context, RangeInference) {
  Context ctx;
  const NodeId x = ctx.int_var("x", 2, 5);
  const NodeId y = ctx.int_var("y", -3, 4);
  EXPECT_EQ(ctx.range(ctx.add(x, y)), (Range{-1, 9}));
  EXPECT_EQ(ctx.range(ctx.sub(x, y)), (Range{-2, 8}));
  EXPECT_EQ(ctx.range(ctx.mul(x, y)), (Range{-15, 20}));
}

TEST(Context, MulRangeWithNegatives) {
  Context ctx;
  const NodeId x = ctx.int_var("x", -5, -2);
  const NodeId y = ctx.int_var("y", -7, -1);
  EXPECT_EQ(ctx.range(ctx.mul(x, y)), (Range{2, 35}));
}

TEST(Context, ComparisonConstantFoldingViaRanges) {
  Context ctx;
  const NodeId small = ctx.int_var("s", 0, 3);
  const NodeId big = ctx.int_var("b", 10, 20);
  EXPECT_EQ(ctx.le(small, big), ctx.bool_const(true));
  EXPECT_EQ(ctx.gt(small, big), ctx.bool_const(false));
  EXPECT_EQ(ctx.eq(small, big), ctx.bool_const(false));
}

TEST(Context, BooleanShortCircuits) {
  Context ctx;
  const NodeId p = ctx.bool_var("p");
  const NodeId t = ctx.bool_const(true);
  const NodeId f = ctx.bool_const(false);
  EXPECT_EQ(ctx.land(p, t), p);
  EXPECT_EQ(ctx.land(p, f), f);
  EXPECT_EQ(ctx.lor(p, f), p);
  EXPECT_EQ(ctx.lor(p, t), t);
  EXPECT_EQ(ctx.lnot(ctx.lnot(p)), p);
  EXPECT_EQ(ctx.implies(f, p), t);
  EXPECT_EQ(ctx.iff(p, p), t);
}

TEST(Context, IteFolding) {
  Context ctx;
  const NodeId x = ctx.int_var("x", 0, 7);
  const NodeId y = ctx.int_var("y", 0, 7);
  EXPECT_EQ(ctx.ite(ctx.bool_const(true), x, y), x);
  EXPECT_EQ(ctx.ite(ctx.bool_const(false), x, y), y);
  const NodeId p = ctx.bool_var("p");
  EXPECT_EQ(ctx.ite(p, x, x), x);
  EXPECT_EQ(ctx.range(ctx.ite(p, x, ctx.constant(12))), (Range{0, 12}));
}

TEST(Context, SumHelper) {
  Context ctx;
  std::vector<NodeId> xs;
  for (int i = 1; i <= 4; ++i) xs.push_back(ctx.constant(i));
  EXPECT_EQ(ctx.sum(xs), ctx.constant(10));
  EXPECT_EQ(ctx.sum({}), ctx.constant(0));
}

TEST(Context, EmptyRangeThrows) {
  Context ctx;
  EXPECT_THROW(ctx.int_var("bad", 5, 4), std::invalid_argument);
}

TEST(Context, MulOverflowThrows) {
  Context ctx;
  const NodeId big = ctx.int_var("b", 0, std::int64_t{1} << 40);
  EXPECT_THROW(ctx.mul(big, big), std::overflow_error);
}

TEST(Evaluator, ArithmeticAndLogic) {
  Context ctx;
  const NodeId x = ctx.int_var("x", 0, 100);
  const NodeId y = ctx.int_var("y", -50, 50);
  const NodeId p = ctx.bool_var("p");
  Evaluator ev(ctx);
  ev.set_int(x, 7);
  ev.set_int(y, -3);
  ev.set_bool(p, true);
  EXPECT_EQ(ev.eval_int(ctx.add(x, y)), 4);
  EXPECT_EQ(ev.eval_int(ctx.sub(x, y)), 10);
  EXPECT_EQ(ev.eval_int(ctx.mul(x, y)), -21);
  EXPECT_EQ(ev.eval_int(ctx.ite(p, x, y)), 7);
  EXPECT_TRUE(ev.eval_bool(ctx.gt(x, y)));
  EXPECT_FALSE(ev.eval_bool(ctx.eq(x, y)));
  EXPECT_TRUE(ev.eval_bool(ctx.land(p, ctx.le(y, x))));
  EXPECT_TRUE(ev.eval_bool(ctx.implies(ctx.lnot(p), ctx.eq(x, y))));
}

TEST(Evaluator, ThrowsOnUnassignedVariable) {
  Context ctx;
  const NodeId x = ctx.int_var("x", 0, 5);
  Evaluator ev(ctx);
  EXPECT_THROW(ev.eval_int(x), std::logic_error);
}

TEST(Printer, RendersSExpressions) {
  Context ctx;
  const NodeId x = ctx.int_var("x", 0, 9);
  const NodeId e = ctx.le(ctx.add(x, ctx.constant(2)), ctx.constant(7));
  EXPECT_EQ(ctx.to_string(e), "(<= (+ x 2) 7)");
}

TEST(Printer, VariableNames) {
  Context ctx;
  const NodeId r = ctx.int_var("r_3", 0, 50);
  EXPECT_EQ(ctx.name(r), "r_3");
  EXPECT_EQ(ctx.to_string(r), "r_3");
}

}  // namespace
}  // namespace optalloc::ir

// Tests for the allocation service: canonical instance fingerprinting
// (permutation invariance + allocation restoration), the sharded LRU
// result cache, the scheduler's solve/cache/deadline/cancel semantics,
// the NDJSON protocol, and the server's request handling end to end
// (driven through handle_line, no sockets).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alloc/cost.hpp"
#include "alloc/io.hpp"
#include "alloc/optimizer.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "rt/verify.hpp"
#include "inc/patch.hpp"
#include "svc/cache.hpp"
#include "svc/fingerprint.hpp"
#include "svc/protocol.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "workload/tindell.hpp"

namespace optalloc::svc {
namespace {

// A small 2-ECU ring system that optimizes in milliseconds...
constexpr const char* kSystem = R"(system 2
memory 0 100
medium ring0 token_ring ecus=0,1 slot_min=1 slot_max=16 byte_ticks=1
task sensor period=100 deadline=40 memory=10 wcet=8,10
task control period=100 deadline=80 wcet=25,30
task actuator period=100 deadline=100 jitter=2 wcet=5,-
message sensor -> control bytes=4 deadline=50
message control -> actuator bytes=2 deadline=60 jitter=1
separate control actuator
)";

// ...and the same system with every reorderable declaration reordered:
// tasks reversed, the ring's ECU list flipped, messages swapped, the
// memory line moved. Canonicalization must see through all of it.
constexpr const char* kSystemPermuted = R"(system 2
task actuator period=100 deadline=100 jitter=2 wcet=5,-
task control period=100 deadline=80 wcet=25,30
task sensor period=100 deadline=40 memory=10 wcet=8,10
medium ring0 token_ring ecus=1,0 slot_min=1 slot_max=16 byte_ticks=1
message control -> actuator bytes=2 deadline=60 jitter=1
message sensor -> control bytes=4 deadline=50
separate control actuator
memory 0 100
)";

alloc::Problem parse(const std::string& text) {
  std::istringstream in(text);
  return alloc::parse_problem(in);
}

// --- Fingerprinting ----------------------------------------------------

TEST(Fingerprint, PermutationInvariant) {
  const Canonical a = canonicalize(parse(kSystem), alloc::Objective::sum_trt());
  const Canonical b =
      canonicalize(parse(kSystemPermuted), alloc::Objective::sum_trt());
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.key, b.key);
  EXPECT_FALSE(a.key.hex().empty());
}

TEST(Fingerprint, MediumIndexObjectiveIsRemapped) {
  // Same two-ring system declared with the media swapped: a medium-indexed
  // objective must land on the same canonical key when it names the same
  // physical ring.
  const char* kTwoRings = R"(system 3
medium ringA token_ring ecus=0,1 slot_min=1 slot_max=16 byte_ticks=1
medium ringB token_ring ecus=1,2 slot_min=1 slot_max=8 byte_ticks=1
task a period=100 deadline=90 wcet=5,6,7
task b period=100 deadline=80 wcet=8,9,10
message a -> b bytes=4 deadline=40
)";
  const char* kTwoRingsSwapped = R"(system 3
medium ringB token_ring ecus=2,1 slot_min=1 slot_max=8 byte_ticks=1
medium ringA token_ring ecus=0,1 slot_min=1 slot_max=16 byte_ticks=1
task a period=100 deadline=90 wcet=5,6,7
task b period=100 deadline=80 wcet=8,9,10
message a -> b bytes=4 deadline=40
)";
  const Canonical ring_b_first =
      canonicalize(parse(kTwoRings), alloc::Objective::ring_trt(1));
  const Canonical ring_b_second =
      canonicalize(parse(kTwoRingsSwapped), alloc::Objective::ring_trt(0));
  EXPECT_EQ(ring_b_first.key, ring_b_second.key);
  // ...but a different ring is a different instance.
  const Canonical ring_a =
      canonicalize(parse(kTwoRings), alloc::Objective::ring_trt(0));
  EXPECT_NE(ring_b_first.key, ring_a.key);
}

TEST(Fingerprint, DistinguishesInstancesAndObjectives) {
  const alloc::Problem p = parse(kSystem);
  const Canonical base = canonicalize(p, alloc::Objective::sum_trt());
  EXPECT_NE(base.key,
            canonicalize(p, alloc::Objective::feasibility()).key);

  alloc::Problem tweaked = p;
  tweaked.tasks.tasks[0].deadline += 1;
  EXPECT_NE(base.key, canonicalize(tweaked, alloc::Objective::sum_trt()).key);
}

TEST(Fingerprint, RestoreAllocationRoundTrips) {
  // Solve the *canonical* form of the permuted instance, translate the
  // allocation back, and check it against the permuted instance itself.
  const alloc::Problem original = parse(kSystemPermuted);
  const alloc::Objective objective = alloc::Objective::sum_trt();
  const Canonical canon = canonicalize(original, objective);

  const alloc::OptimizeResult res =
      alloc::optimize(canon.problem, canon.objective);
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal);
  ASSERT_TRUE(res.has_allocation);

  const rt::Allocation restored = restore_allocation(canon, res.allocation);
  EXPECT_TRUE(rt::verify(original.tasks, original.arch, restored).feasible);
  const auto cost = alloc::evaluate_allocation(original, objective, restored);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, res.cost);
}

// --- Result cache ------------------------------------------------------

TEST(Fingerprint, CanonicalAllocationInvertsRestore) {
  // The permuted declaration gives nontrivial task/media/slot perms.
  const alloc::Problem permuted = parse(kSystemPermuted);
  const Canonical canon = canonicalize(permuted, alloc::Objective::sum_trt());

  rt::Allocation original;
  original.task_ecu = {1, 0, 0};        // actuator, control, sensor
  original.task_prio = {2, 1, 0};
  original.msg_route = {{0}, {}};       // msg 0 crosses ring0, msg 1 local
  original.msg_local_deadline = {{60}, {}};
  original.slots = {{4, 7}};            // ring0 declared ecus=1,0

  const rt::Allocation canonical = canonical_allocation(canon, original);
  const rt::Allocation back = restore_allocation(canon, canonical);
  EXPECT_EQ(back.task_ecu, original.task_ecu);
  EXPECT_EQ(back.task_prio, original.task_prio);
  EXPECT_EQ(back.msg_route, original.msg_route);
  EXPECT_EQ(back.msg_local_deadline, original.msg_local_deadline);
  EXPECT_EQ(back.slots, original.slots);
}

TEST(ResultCache, HitMissAndLruEviction) {
  ResultCache cache(/*capacity=*/2, /*shards=*/1);
  CachedAnswer a;
  a.cost = 1;
  cache.put({1, 1}, "one", a);
  a.cost = 2;
  cache.put({2, 2}, "two", a);

  const auto hit = cache.get({1, 1}, "one");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cost, 1);

  // {2,2} is now the LRU tail; a third insert evicts it.
  a.cost = 3;
  cache.put({3, 3}, "three", a);
  EXPECT_FALSE(cache.get({2, 2}, "two").has_value());
  EXPECT_TRUE(cache.get({1, 1}, "one").has_value());
  EXPECT_TRUE(cache.get({3, 3}, "three").has_value());
  EXPECT_EQ(cache.size(), 2u);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCache, CollisionDegradesToMiss) {
  ResultCache cache(4, 1);
  CachedAnswer a;
  a.cost = 7;
  cache.put({42, 1}, "text-a", a);
  // Same 64-bit shard key, different second word / different text: miss.
  EXPECT_FALSE(cache.get({42, 2}, "text-a").has_value());
  EXPECT_FALSE(cache.get({42, 1}, "text-b").has_value());
  EXPECT_TRUE(cache.get({42, 1}, "text-a").has_value());
}

/// Current registry level of the "svc.cache" resource.
obs::ResourceValue cache_resource() {
  for (const auto& r : obs::resource_snapshot()) {
    if (r.name == "svc.cache") return r;
  }
  return {};
}

TEST(ResultCache, AccountsBytesAndShardOccupancy) {
  const obs::ResourceValue before = cache_resource();
  {
    ResultCache cache(/*capacity=*/2, /*shards=*/1);
    EXPECT_EQ(cache.bytes(), 0u);
    CachedAnswer a;
    a.cost = 1;
    a.allocation.task_ecu = {0, 1, 0};
    cache.put({1, 1}, "one", a);
    cache.put({2, 2}, "twotwo", a);
    EXPECT_GT(cache.bytes(), 0u);
    const auto occupancy = cache.shard_occupancy();
    ASSERT_EQ(occupancy.size(), 1u);
    EXPECT_EQ(occupancy[0].entries, 2u);
    EXPECT_EQ(occupancy[0].capacity, 2u);
    EXPECT_EQ(occupancy[0].bytes, cache.bytes());

    // Eviction keeps bytes in step with entries: the byte count after
    // insert+evict equals the two survivors' footprints.
    const std::size_t before_evict = cache.bytes();
    cache.put({3, 3}, "three", a);
    EXPECT_EQ(cache.shard_occupancy()[0].entries, 2u);
    EXPECT_NE(cache.bytes(), 0u);
    EXPECT_LE(cache.bytes(), before_evict + 1024);

    const obs::ResourceValue during = cache_resource();
    EXPECT_EQ(during.bytes - before.bytes,
              static_cast<std::int64_t>(cache.bytes()));
    EXPECT_EQ(during.items - before.items, 2);
  }
  // Destruction retracts the cache's whole footprint from the registry.
  const obs::ResourceValue after = cache_resource();
  EXPECT_EQ(after.bytes, before.bytes);
  EXPECT_EQ(after.items, before.items);
}

// --- Scheduler ---------------------------------------------------------

SchedulerOptions quick_options(int workers = 2) {
  SchedulerOptions o;
  o.workers = workers;
  o.anneal_iterations = 500;
  return o;
}

TEST(Scheduler, SolvesAndServesPermutedResubmitFromCache) {
  Scheduler scheduler(quick_options());

  JobRequest first;
  first.problem = parse(kSystem);
  first.objective = alloc::Objective::sum_trt();
  const auto id1 = scheduler.submit(first);
  ASSERT_TRUE(id1.has_value());
  const auto snap1 = scheduler.wait(*id1, 60.0);
  ASSERT_TRUE(snap1.has_value());
  EXPECT_EQ(snap1->state, JobState::kDone);
  EXPECT_EQ(snap1->answer.status, "optimal");
  EXPECT_TRUE(snap1->answer.proven_optimal);
  EXPECT_FALSE(snap1->answer.cached);
  ASSERT_TRUE(snap1->answer.has_allocation);

  // The permuted twin must be served from the cache, with the allocation
  // translated into *its* indexing.
  JobRequest second;
  second.problem = parse(kSystemPermuted);
  second.objective = alloc::Objective::sum_trt();
  const auto id2 = scheduler.submit(second);
  ASSERT_TRUE(id2.has_value());
  const auto snap2 = scheduler.wait(*id2, 60.0);
  ASSERT_TRUE(snap2.has_value());
  EXPECT_EQ(snap2->state, JobState::kDone);
  EXPECT_TRUE(snap2->answer.cached);
  EXPECT_EQ(snap2->answer.cost, snap1->answer.cost);
  ASSERT_TRUE(snap2->answer.has_allocation);
  const alloc::Problem permuted = parse(kSystemPermuted);
  EXPECT_TRUE(rt::verify(permuted.tasks, permuted.arch,
                         snap2->answer.allocation)
                  .feasible);
  const auto cost = alloc::evaluate_allocation(
      permuted, second.objective, snap2->answer.allocation);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, snap2->answer.cost);

  const ServiceStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache.hits, 1u);
  scheduler.shutdown(/*drain=*/true);
}

TEST(Scheduler, DeadlineExpiryReturnsIncumbentWithLowerBound) {
  SchedulerOptions options = quick_options(1);
  options.anneal_iterations = 20000;  // make sure there IS an incumbent
  Scheduler scheduler(options);

  JobRequest request;
  request.problem = workload::tindell_prefix(30);  // seconds-scale solve
  request.objective = alloc::Objective::ring_trt(0);
  request.deadline_s = 0.25;
  const auto id = scheduler.submit(request);
  ASSERT_TRUE(id.has_value());
  const auto snap = scheduler.wait(*id, 60.0);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kDone);
  EXPECT_FALSE(snap->answer.proven_optimal);
  EXPECT_TRUE(snap->answer.deadline_expired);
  ASSERT_TRUE(snap->answer.has_allocation);  // the anytime incumbent
  EXPECT_EQ(snap->answer.status, "feasible");
  EXPECT_LE(snap->answer.lower_bound, snap->answer.cost);
  // Feasible against the original instance, not just claimed.
  EXPECT_TRUE(rt::verify(request.problem.tasks, request.problem.arch,
                         snap->answer.allocation)
                  .feasible);
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);
  scheduler.shutdown(true);
}

TEST(Scheduler, CancelMidSolveFreesTheWorker) {
  Scheduler scheduler(quick_options(1));  // single worker: it must free up

  JobRequest slow;
  slow.problem = workload::tindell_prefix(30);
  slow.objective = alloc::Objective::ring_trt(0);
  const auto slow_id = scheduler.submit(slow);
  ASSERT_TRUE(slow_id.has_value());
  // Let it get picked up, then cancel mid-solve.
  for (int i = 0; i < 2000; ++i) {
    const auto s = scheduler.status(*slow_id);
    ASSERT_TRUE(s.has_value());
    if (s->state != JobState::kQueued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(scheduler.cancel(*slow_id));
  const auto cancelled = scheduler.wait(*slow_id, 60.0);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, JobState::kCancelled);
  EXPECT_FALSE(scheduler.cancel(*slow_id));  // already terminal

  // The (sole) worker must now pick up and finish new work.
  JobRequest quick;
  quick.problem = parse(kSystem);
  quick.objective = alloc::Objective::sum_trt();
  const auto quick_id = scheduler.submit(quick);
  ASSERT_TRUE(quick_id.has_value());
  const auto done = scheduler.wait(*quick_id, 60.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kDone);
  EXPECT_EQ(done->answer.status, "optimal");
  scheduler.shutdown(true);
}

TEST(Scheduler, BoundedQueueRejectsOverflow) {
  SchedulerOptions options = quick_options(1);
  options.queue_capacity = 1;
  Scheduler scheduler(options);

  JobRequest busy;
  busy.problem = workload::tindell_prefix(30);
  busy.objective = alloc::Objective::ring_trt(0);
  const auto running = scheduler.submit(busy);
  ASSERT_TRUE(running.has_value());
  for (int i = 0; i < 2000; ++i) {
    if (scheduler.status(*running)->state == JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  JobRequest queued;
  queued.problem = workload::tindell_prefix(29);
  queued.objective = alloc::Objective::ring_trt(0);
  const auto waiting = scheduler.submit(queued);
  ASSERT_TRUE(waiting.has_value());

  JobRequest bounced;
  bounced.problem = workload::tindell_prefix(28);
  bounced.objective = alloc::Objective::ring_trt(0);
  EXPECT_FALSE(scheduler.submit(bounced).has_value());
  EXPECT_EQ(scheduler.stats().rejected, 1u);

  scheduler.cancel(*running);
  scheduler.cancel(*waiting);
  scheduler.shutdown(/*drain=*/false);
}

// --- Protocol ----------------------------------------------------------

// --- Lock-discipline regressions ---------------------------------------
//
// Each test pins a race the thread-safety annotation sweep surfaced.
// They are functional here and data-race detectors in the TSan CI job
// (which runs this suite via -R SchedulerRace): with the fixes reverted,
// TSan reports the racing pair; without TSan the shutdown test still
// crashes on the double-join.

// submit() used to publish the job (jobs_.emplace / queue_.push_back)
// and only then assign ctx.req and queue_span — so a worker claiming the
// job immediately, or a concurrent inspect(), read those fields while
// submit() was still writing them. Both are now assigned before the job
// is reachable by anyone else. Distinct instances per submission keep
// the cache out of the way (a hit would complete the job inline and
// never touch a worker).
TEST(SchedulerRace, SubmitVsWorkerAndInspectAssignsBeforePublication) {
  Scheduler scheduler(quick_options(4));

  std::vector<std::string> ids;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> known{0};
  // Two readers hammer inspect/status/request_trace_id on every id the
  // submitter has published so far, racing the workers and finalize().
  std::vector<std::string> shared_ids(64);
  auto reader = [&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t n = known.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        const auto live = scheduler.inspect(shared_ids[i]);
        ASSERT_TRUE(live.has_value());
        EXPECT_NE(live->req, 0u);  // assigned before publication
        const auto req = scheduler.request_trace_id(shared_ids[i]);
        ASSERT_TRUE(req.has_value());
        EXPECT_NE(*req, 0u);
        scheduler.status(shared_ids[i]);
      }
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);

  for (int i = 0; i < 24; ++i) {
    JobRequest request;
    // Vary the memory budget so every instance fingerprints differently.
    std::string text(kSystem);
    const auto pos = text.find("memory 0 100");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 12, "memory 0 " + std::to_string(100 + i));
    request.problem = parse(text);
    request.objective = alloc::Objective::sum_trt();
    const auto id = scheduler.submit(request);
    ASSERT_TRUE(id.has_value());
    shared_ids[static_cast<std::size_t>(i)] = *id;
    known.store(static_cast<std::size_t>(i) + 1, std::memory_order_release);
    ids.push_back(*id);
  }
  for (const auto& id : ids) {
    const auto snap = scheduler.wait(id, 120.0);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, JobState::kDone);
    EXPECT_TRUE(snap->answer.proven_optimal);
  }
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  scheduler.shutdown(/*drain=*/true);
}

// shutdown() used to let two concurrent callers both reach t.join() on
// the same std::thread (joined_ flipped only after the joins) — UB that
// typically terminates. It is now serialized by a dedicated shutdown
// mutex held across the drain + join, with mu_ free so workers progress.
TEST(SchedulerRace, ConcurrentShutdownJoinsWorkersExactlyOnce) {
  Scheduler scheduler(quick_options(2));
  for (int i = 0; i < 4; ++i) {
    JobRequest request;
    request.problem = parse(kSystem);
    request.objective = alloc::Objective::sum_trt();
    scheduler.submit(request);
  }
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&scheduler]() { scheduler.shutdown(true); });
  }
  for (auto& t : stoppers) t.join();
  scheduler.shutdown(true);  // still idempotent afterwards
  const ServiceStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed + stats.cancelled, stats.submitted);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// --- Incremental sessions ----------------------------------------------

inc::InstancePatch ops_from_json(const std::string& json) {
  std::string error;
  auto patch = inc::parse_patch(*obs::json_parse(json), &error);
  EXPECT_TRUE(patch.has_value()) << error;
  return patch.value_or(inc::InstancePatch{});
}

TEST(SchedulerSession, OpenReviseCloseLifecycle) {
  Scheduler scheduler(quick_options(1));

  JobRequest open;
  open.problem = parse(kSystem);
  open.objective = alloc::Objective::sum_trt();
  const auto opened = scheduler.session_open(std::move(open));
  ASSERT_TRUE(opened.has_value());
  const std::string sid = opened->first;
  EXPECT_EQ(opened->second.status, "optimal");
  EXPECT_TRUE(opened->second.proven_optimal);
  EXPECT_TRUE(opened->second.cache_stored);
  EXPECT_GT(opened->second.groups_added, 0);
  const std::int64_t base_cost = opened->second.cost;

  const auto revised = scheduler.session_revise(
      sid,
      ops_from_json(
          R"([{"op":"set_wcet","task":"control","ecu":0,"wcet":35}])"),
      0.0, 0);
  ASSERT_TRUE(revised.has_value());
  EXPECT_EQ(revised->status, "optimal");
  EXPECT_GT(revised->groups_unchanged, 0u);
  EXPECT_GT(revised->groups_retired, 0);

  const auto back = scheduler.session_revise(
      sid,
      ops_from_json(
          R"([{"op":"set_wcet","task":"control","ecu":0,"wcet":25}])"),
      0.0, 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cost, base_cost);

  // A structurally invalid patch reports status "error", not nullopt.
  const auto bad = scheduler.session_revise(
      sid, ops_from_json(R"([{"op":"remove_task","task":"ghost"}])"), 0.0,
      0);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, "error");
  EXPECT_FALSE(bad->error.empty());

  const ServiceStats mid = scheduler.stats();
  EXPECT_EQ(mid.sessions_opened, 1u);
  EXPECT_EQ(mid.active_sessions, 1u);
  EXPECT_EQ(mid.revises, 3u);

  EXPECT_TRUE(scheduler.session_close(sid));
  EXPECT_FALSE(scheduler.session_close(sid));
  EXPECT_FALSE(scheduler.session_revise(sid, inc::InstancePatch{}, 0.0, 0)
                   .has_value());
  const ServiceStats end = scheduler.stats();
  EXPECT_EQ(end.sessions_closed, 1u);
  EXPECT_EQ(end.active_sessions, 0u);
  scheduler.shutdown(/*drain=*/true);
}

TEST(SchedulerSession, ReviseDoesNotPoisonBaseCacheEntry) {
  // The satellite regression: a session's post-edit answers must land
  // under the *edited* instance's fingerprint. Storing them under the
  // base fingerprint would make a later cold submit of the base instance
  // replay the edited verdict — here, a false "infeasible".
  Scheduler scheduler(quick_options(1));

  JobRequest open;
  open.problem = parse(kSystem);
  open.objective = alloc::Objective::sum_trt();
  const auto opened = scheduler.session_open(std::move(open));
  ASSERT_TRUE(opened.has_value());
  const std::int64_t base_cost = opened->second.cost;

  // Infeasible edit (control forced onto ECU 1 with a deadline-busting
  // WCET): the session proves it and caches the verdict.
  const std::string kill =
      R"([{"op":"set_wcet","task":"control","ecu":0,"wcet":-1},)"
      R"({"op":"set_wcet","task":"control","ecu":1,"wcet":90}])";
  const auto revised =
      scheduler.session_revise(opened->first, ops_from_json(kill), 0.0, 0);
  ASSERT_TRUE(revised.has_value());
  EXPECT_EQ(revised->status, "infeasible");
  EXPECT_TRUE(revised->proven_optimal);
  EXPECT_TRUE(revised->cache_stored);
  EXPECT_FALSE(revised->core.empty());

  // Cold submit of the *base* instance: must be the base optimum, served
  // from the entry the opening solve stored.
  JobRequest cold_base;
  cold_base.problem = parse(kSystem);
  cold_base.objective = alloc::Objective::sum_trt();
  const auto id1 = scheduler.submit(std::move(cold_base));
  ASSERT_TRUE(id1.has_value());
  const auto snap1 = scheduler.wait(*id1, 60.0);
  ASSERT_TRUE(snap1.has_value());
  EXPECT_EQ(snap1->answer.status, "optimal");
  EXPECT_TRUE(snap1->answer.cached);
  EXPECT_EQ(snap1->answer.cost, base_cost);

  // Cold submit of the *edited* instance: served from the revise's entry.
  alloc::Problem edited = parse(kSystem);
  ASSERT_FALSE(inc::apply_patch(ops_from_json(kill), edited).has_value());
  JobRequest cold_edited;
  cold_edited.problem = std::move(edited);
  cold_edited.objective = alloc::Objective::sum_trt();
  const auto id2 = scheduler.submit(std::move(cold_edited));
  ASSERT_TRUE(id2.has_value());
  const auto snap2 = scheduler.wait(*id2, 60.0);
  ASSERT_TRUE(snap2.has_value());
  EXPECT_EQ(snap2->answer.status, "infeasible");
  EXPECT_TRUE(snap2->answer.cached);
  scheduler.shutdown(/*drain=*/true);
}

TEST(SchedulerSession, CachedSessionAnswerServesPermutedColdSubmit) {
  // A feasible revise's allocation is stored in canonical indexing
  // (canonical_allocation), so a cold submit of a *permuted* declaration
  // of the edited system gets a cache hit with a valid allocation in its
  // own indexing.
  Scheduler scheduler(quick_options(1));

  JobRequest open;
  open.problem = parse(kSystem);
  open.objective = alloc::Objective::sum_trt();
  const auto opened = scheduler.session_open(std::move(open));
  ASSERT_TRUE(opened.has_value());

  const std::string edit =
      R"([{"op":"set_deadline","task":"sensor","deadline":35}])";
  const auto revised =
      scheduler.session_revise(opened->first, ops_from_json(edit), 0.0, 0);
  ASSERT_TRUE(revised.has_value());
  ASSERT_EQ(revised->status, "optimal");
  ASSERT_TRUE(revised->cache_stored);

  alloc::Problem permuted = parse(kSystemPermuted);
  ASSERT_FALSE(inc::apply_patch(ops_from_json(edit), permuted).has_value());
  JobRequest cold;
  cold.problem = permuted;
  cold.objective = alloc::Objective::sum_trt();
  const auto id = scheduler.submit(std::move(cold));
  ASSERT_TRUE(id.has_value());
  const auto snap = scheduler.wait(*id, 60.0);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->answer.status, "optimal");
  EXPECT_TRUE(snap->answer.cached);
  EXPECT_EQ(snap->answer.cost, revised->cost);
  ASSERT_TRUE(snap->answer.has_allocation);
  EXPECT_TRUE(
      rt::verify(permuted.tasks, permuted.arch, snap->answer.allocation)
          .feasible);
  const auto cost = alloc::evaluate_allocation(
      permuted, alloc::Objective::sum_trt(), snap->answer.allocation);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, snap->answer.cost);
  scheduler.shutdown(/*drain=*/true);
}

TEST(Protocol, ParsesRequestsAndRejectsGarbage) {
  std::string error;
  const auto submit = parse_request(
      R"({"verb":"submit","problem":"system 1","objective":"feasibility",)"
      R"("deadline_ms":250,"conflicts":5000,"threads":2,"wait":true})",
      &error);
  ASSERT_TRUE(submit.has_value()) << error;
  EXPECT_EQ(submit->verb, Request::Verb::kSubmit);
  EXPECT_EQ(submit->problem_text, "system 1");
  EXPECT_EQ(submit->objective, "feasibility");
  EXPECT_DOUBLE_EQ(submit->deadline_ms, 250.0);
  EXPECT_EQ(submit->conflicts, 5000);
  EXPECT_EQ(submit->threads, 2);
  EXPECT_TRUE(submit->wait);

  const auto cancel =
      parse_request(R"({"verb":"cancel","id":"r7"})", &error);
  ASSERT_TRUE(cancel.has_value());
  EXPECT_EQ(cancel->verb, Request::Verb::kCancel);
  EXPECT_EQ(cancel->id, "r7");

  const auto metrics = parse_request(R"({"verb":"metrics"})", &error);
  ASSERT_TRUE(metrics.has_value()) << error;
  EXPECT_EQ(metrics->verb, Request::Verb::kMetrics);

  EXPECT_FALSE(parse_request("not json", &error).has_value());
  EXPECT_FALSE(parse_request(R"({"no":"verb"})", &error).has_value());
  EXPECT_FALSE(parse_request(R"({"verb":"frobnicate"})", &error).has_value());
  EXPECT_FALSE(parse_request(R"({"verb":"status"})", &error).has_value());
  EXPECT_FALSE(parse_request(R"({"verb":"submit"})", &error).has_value());
}

TEST(Protocol, ResponseLinesAreWellFormedJson) {
  JobSnapshot snap;
  snap.id = "r1";
  snap.state = JobState::kDone;
  snap.answer.status = "feasible";
  snap.answer.deadline_expired = true;
  snap.answer.cost = 42;
  snap.answer.lower_bound = 17;
  snap.answer.has_allocation = true;
  snap.answer.allocation.task_ecu = {0, 1, 0};
  const auto doc = obs::json_parse(snapshot_line(snap));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("state"), "done");
  EXPECT_EQ(doc->get_number("cost"), 42.0);
  EXPECT_EQ(doc->get_number("lower_bound"), 17.0);
  const obs::JsonValue* proven = doc->get("proven_optimal");
  ASSERT_NE(proven, nullptr);
  EXPECT_FALSE(proven->b);
  const obs::JsonValue* ecus = doc->get("task_ecu");
  ASSERT_NE(ecus, nullptr);
  EXPECT_EQ(ecus->array.size(), 3u);

  EXPECT_TRUE(obs::json_parse(error_line(R"(bad "quoted" input)")).has_value());
  EXPECT_TRUE(obs::json_parse(stats_line(ServiceStats{})).has_value());

  // The metrics verb's response wraps the full typed registry snapshot.
  const auto metrics = obs::json_parse(metrics_line());
  ASSERT_TRUE(metrics.has_value());
  EXPECT_TRUE(metrics->get("ok")->b);
  ASSERT_NE(metrics->get("metrics"), nullptr);
  EXPECT_TRUE(metrics->get("metrics")->is_object());
}

TEST(Protocol, ErrorCodesClassifyParseFailures) {
  // Every rejection carries a machine-readable code alongside the human
  // message: bad_json (unparseable line), bad_request (well-formed but
  // incomplete), unknown_verb (verb outside the vocabulary).
  std::string error, code;
  EXPECT_FALSE(parse_request("not json", &error, &code).has_value());
  EXPECT_EQ(code, "bad_json");
  EXPECT_FALSE(parse_request(R"({"no":"verb"})", &error, &code).has_value());
  EXPECT_EQ(code, "bad_request");
  EXPECT_FALSE(
      parse_request(R"({"verb":"frobnicate"})", &error, &code).has_value());
  EXPECT_EQ(code, "unknown_verb");
  EXPECT_FALSE(
      parse_request(R"({"verb":"status"})", &error, &code).has_value());
  EXPECT_EQ(code, "bad_request");  // id-verbs without an id
  EXPECT_FALSE(
      parse_request(R"({"verb":"inspect"})", &error, &code).has_value());
  EXPECT_EQ(code, "bad_request");
  EXPECT_FALSE(
      parse_request(R"({"verb":"submit"})", &error, &code).has_value());
  EXPECT_EQ(code, "bad_request");

  // inspect with an id parses; dump's id is optional (absent = all rings).
  const auto inspect =
      parse_request(R"({"verb":"inspect","id":"r1"})", &error, &code);
  ASSERT_TRUE(inspect.has_value()) << error;
  EXPECT_EQ(inspect->verb, Request::Verb::kInspect);
  EXPECT_EQ(inspect->id, "r1");
  const auto dump = parse_request(R"({"verb":"dump"})", &error, &code);
  ASSERT_TRUE(dump.has_value()) << error;
  EXPECT_EQ(dump->verb, Request::Verb::kDump);
  EXPECT_TRUE(dump->id.empty());

  // The error reply line carries the code; callers that don't pick one
  // get the generic "error".
  const auto reply = obs::json_parse(error_line("nope", "unknown_id"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->get("ok")->b);
  EXPECT_EQ(reply->get_string("error"), "nope");
  EXPECT_EQ(reply->get_string("code"), "unknown_id");
  EXPECT_EQ(obs::json_parse(error_line("x"))->get_string("code"), "error");
}

// --- Server (protocol dispatch without sockets) ------------------------

std::string submit_line(const std::string& problem, const std::string& obj,
                        bool wait) {
  obs::JsonObject o;
  o.str("verb", "submit").str("problem", problem).str("objective", obj);
  if (wait) o.boolean("wait", true);
  return o.build();
}

TEST(Server, HandlesFullRequestLifecycle) {
  ServerOptions options;
  options.scheduler = quick_options(1);
  Server server(options);

  // Submit + wait: terminal snapshot straight away.
  const auto first =
      obs::json_parse(server.handle_line(submit_line(kSystem, "sum-trt",
                                                     /*wait=*/true)));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->get_string("state"), "done");
  EXPECT_EQ(first->get_string("status"), "optimal");

  // Permuted twin: cache hit.
  const auto second = obs::json_parse(
      server.handle_line(submit_line(kSystemPermuted, "sum-trt", true)));
  ASSERT_TRUE(second.has_value());
  const obs::JsonValue* cached = second->get("cached");
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->b);
  EXPECT_EQ(second->get_number("cost"), first->get_number("cost"));

  // Async submit + status + result.
  const auto ack = obs::json_parse(
      server.handle_line(submit_line(kSystem, "feasibility", false)));
  ASSERT_TRUE(ack.has_value());
  const auto ack_id = ack->get_string("id");
  ASSERT_TRUE(ack_id.has_value());
  const auto result = obs::json_parse(server.handle_line(
      obs::JsonObject().str("verb", "result").str("id", *ack_id).build()));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->get_string("state"), "done");

  // Errors: malformed problem, unknown id, junk line.
  const auto bad_problem = obs::json_parse(
      server.handle_line(submit_line("system 1\nbogus line", "sum-trt", false)));
  ASSERT_TRUE(bad_problem.has_value());
  EXPECT_FALSE(bad_problem->get("ok")->b);
  EXPECT_NE(bad_problem->get_string("error")->find("line 2"),
            std::string::npos);
  const auto unknown = obs::json_parse(server.handle_line(
      R"({"verb":"status","id":"r999"})"));
  EXPECT_FALSE(unknown->get("ok")->b);
  EXPECT_FALSE(obs::json_parse(server.handle_line("][nonsense"))->get("ok")->b);

  // Stats reflect the cache hit.
  const auto stats = obs::json_parse(
      server.handle_line(R"({"verb":"stats"})"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(*stats->get_number("cache_hits"), 1.0);

  // Shutdown verb acknowledges and flips the stop flag.
  EXPECT_FALSE(server.stop_requested());
  const auto bye = obs::json_parse(
      server.handle_line(R"({"verb":"shutdown","drain":true})"));
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(bye->get("ok")->b);
  EXPECT_TRUE(server.stop_requested());
}

TEST(Server, UnknownVerbRepliesWithStructuredCode) {
  ServerOptions options;
  options.scheduler = quick_options(1);
  Server server(options);
  const auto bad =
      obs::json_parse(server.handle_line(R"({"verb":"frobnicate"})"));
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->get("ok")->b);
  EXPECT_EQ(bad->get_string("code"), "unknown_verb");
  EXPECT_TRUE(bad->get_string("error").has_value());

  const auto junk = obs::json_parse(server.handle_line("][nonsense"));
  EXPECT_EQ(junk->get_string("code"), "bad_json");
  const auto incomplete =
      obs::json_parse(server.handle_line(R"({"verb":"status"})"));
  EXPECT_EQ(incomplete->get_string("code"), "bad_request");
}

TEST(Server, SessionVerbsLifecycle) {
  ServerOptions options;
  options.scheduler = quick_options(1);
  Server server(options);

  const auto opened = obs::json_parse(server.handle_line(
      obs::JsonObject()
          .str("verb", "session_open")
          .str("problem", kSystem)
          .str("objective", "sum-trt")
          .build()));
  ASSERT_TRUE(opened.has_value());
  ASSERT_TRUE(opened->get("ok")->b);
  const auto sid = opened->get_string("session");
  ASSERT_TRUE(sid.has_value());
  EXPECT_EQ(opened->get_string("status"), "optimal");
  ASSERT_NE(opened->get("task_ecu"), nullptr);
  const double base_cost = *opened->get_number("cost");

  // Feasible edit, then the inverse edit: optimum must come back.
  const auto worse = obs::json_parse(server.handle_line(
      R"({"verb":"revise","session":")" + *sid +
      R"(","edits":[{"op":"set_wcet","task":"sensor","ecu":0,"wcet":30}]})"));
  ASSERT_TRUE(worse.has_value());
  ASSERT_TRUE(worse->get("ok")->b);
  EXPECT_EQ(worse->get_string("status"), "optimal");
  const auto back = obs::json_parse(server.handle_line(
      R"({"verb":"revise","session":")" + *sid +
      R"(","edits":[{"op":"set_wcet","task":"sensor","ecu":0,"wcet":8}]})"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back->get_number("cost"), base_cost);

  // Infeasible edit: unsat_core names the conflicting constraint groups.
  const auto dead = obs::json_parse(server.handle_line(
      R"({"verb":"revise","session":")" + *sid +
      R"(","edits":[{"op":"set_wcet","task":"control","ecu":0,"wcet":-1},)" +
      R"({"op":"set_wcet","task":"control","ecu":1,"wcet":90}]})"));
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->get_string("status"), "infeasible");
  const obs::JsonValue* core = dead->get("unsat_core");
  ASSERT_NE(core, nullptr);
  ASSERT_EQ(core->kind, obs::JsonValue::Kind::kArray);
  EXPECT_FALSE(core->array.empty());

  // Error codes: malformed edits, unknown session, missing fields.
  const auto bad_patch = obs::json_parse(server.handle_line(
      R"({"verb":"revise","session":")" + *sid +
      R"(","edits":[{"op":"transmogrify"}]})"));
  EXPECT_EQ(bad_patch->get_string("code"), "bad_patch");
  const auto unknown = obs::json_parse(server.handle_line(
      R"({"verb":"revise","session":"s999","edits":[]})"));
  EXPECT_EQ(unknown->get_string("code"), "unknown_session");
  const auto missing = obs::json_parse(
      server.handle_line(R"({"verb":"revise","session":"s1"})"));
  EXPECT_EQ(missing->get_string("code"), "bad_request");

  const auto closed = obs::json_parse(server.handle_line(
      R"({"verb":"session_close","session":")" + *sid + R"("})"));
  ASSERT_TRUE(closed.has_value());
  EXPECT_TRUE(closed->get("ok")->b);
  const auto closed_again = obs::json_parse(server.handle_line(
      R"({"verb":"session_close","session":")" + *sid + R"("})"));
  EXPECT_EQ(closed_again->get_string("code"), "unknown_session");
}

TEST(Server, InspectAndDumpVerbs) {
  obs::flight_reset();
  ServerOptions options;
  options.scheduler = quick_options(1);
  Server server(options);

  // Both verbs reject ids the scheduler has never seen.
  const auto missing = obs::json_parse(
      server.handle_line(R"({"verb":"inspect","id":"r999"})"));
  EXPECT_FALSE(missing->get("ok")->b);
  EXPECT_EQ(missing->get_string("code"), "unknown_id");
  const auto no_dump =
      obs::json_parse(server.handle_line(R"({"verb":"dump","id":"r999"})"));
  EXPECT_FALSE(no_dump->get("ok")->b);
  EXPECT_EQ(no_dump->get_string("code"), "unknown_id");

  const auto done = obs::json_parse(
      server.handle_line(submit_line(kSystem, "sum-trt", /*wait=*/true)));
  ASSERT_TRUE(done.has_value());
  const auto id = done->get_string("id");
  ASSERT_TRUE(id.has_value());

  // inspect on a finished job: terminal phase, the proven interval has
  // collapsed, and the answer's status fields ride along.
  const auto insp = obs::json_parse(server.handle_line(
      obs::JsonObject().str("verb", "inspect").str("id", *id).build()));
  ASSERT_TRUE(insp.has_value());
  EXPECT_TRUE(insp->get("ok")->b);
  EXPECT_EQ(insp->get_string("id"), *id);
  EXPECT_EQ(insp->get_string("state"), "done");
  EXPECT_EQ(insp->get_string("phase"), "finished");
  EXPECT_GE(*insp->get_number("elapsed_ms"), 0.0);
  EXPECT_EQ(insp->get_string("status"), "optimal");
  EXPECT_TRUE(insp->get("proven_optimal")->b);
  EXPECT_EQ(insp->get_number("upper"), insp->get_number("cost"));
  const auto req_field = insp->get_number("req");
  ASSERT_TRUE(req_field.has_value());
  EXPECT_GT(*req_field, 0.0);

  // dump filtered to that request: the flight ring replays the solve's
  // records (interval / solve notes at minimum), count matching.
  const auto dump = obs::json_parse(server.handle_line(
      obs::JsonObject().str("verb", "dump").str("id", *id).build()));
  ASSERT_TRUE(dump.has_value());
  EXPECT_TRUE(dump->get("ok")->b);
  const obs::JsonValue* events = dump->get("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(dump->get_number("count"),
            static_cast<double>(events->array.size()));
  ASSERT_FALSE(events->array.empty());
  bool saw_solve = false;
  for (const auto& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    EXPECT_EQ(ev.get_number("req"), *req_field);  // filter honored
    if (ev.get_string("type") == "solve") saw_solve = true;
  }
  EXPECT_TRUE(saw_solve);

  // Unfiltered dump (no id): a superset of the filtered one.
  const auto all = obs::json_parse(server.handle_line(R"({"verb":"dump"})"));
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(all->get("ok")->b);
  EXPECT_GE(*all->get_number("count"), *dump->get_number("count"));
}

TEST(Scheduler, InspectTracksLifecyclePhases) {
  Scheduler scheduler(quick_options(1));
  JobRequest request;
  request.problem = workload::tindell_prefix(30);  // long enough to observe
  request.objective = alloc::Objective::ring_trt(0);
  const auto id = scheduler.submit(request);
  ASSERT_TRUE(id.has_value());

  // Before the worker finishes, inspect must answer lock-free with a
  // non-terminal phase and a widening-at-worst interval.
  std::set<std::string> phases;
  for (int i = 0; i < 4000; ++i) {
    const auto ins = scheduler.inspect(*id);
    ASSERT_TRUE(ins.has_value());
    phases.insert(job_phase_name(ins->phase));
    if (ins->phase == JobPhase::kSolving && ins->sat_calls > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(phases.count("solving") > 0 || phases.count("finished") > 0)
      << "never saw the job leave the queue";

  EXPECT_TRUE(scheduler.cancel(*id));
  const auto final_snap = scheduler.wait(*id, 60.0);
  ASSERT_TRUE(final_snap.has_value());
  const auto ins = scheduler.inspect(*id);
  ASSERT_TRUE(ins.has_value());
  EXPECT_EQ(ins->phase, JobPhase::kFinished);
  EXPECT_EQ(ins->state, JobState::kCancelled);
  EXPECT_FALSE(scheduler.inspect("bogus").has_value());
  EXPECT_FALSE(scheduler.request_trace_id("bogus").has_value());
  EXPECT_EQ(scheduler.request_trace_id(*id).value_or(0), ins->req);
  scheduler.shutdown(true);
}

TEST(Server, MetricsVerbExposesRequestHistograms) {
  obs::reset_metrics();
  ServerOptions options;
  options.scheduler = quick_options(1);
  Server server(options);
  ASSERT_TRUE(
      obs::json_parse(server.handle_line(submit_line(kSystem, "sum-trt",
                                                     /*wait=*/true)))
          ->get("ok")
          ->b);

  const auto doc =
      obs::json_parse(server.handle_line(R"({"verb":"metrics"})"));
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->get("ok")->b);
  const obs::JsonValue* metrics = doc->get("metrics");
  ASSERT_NE(metrics, nullptr);

  // The wire document decodes into snapshot form; the request-latency
  // histogram must carry the completed request, with the p95 inside one
  // of its (non-empty) buckets.
  const auto decoded = obs::metrics_from_json(*metrics);
  bool found = false;
  for (const auto& m : decoded) {
    if (m.name != "svc.request_ms") continue;
    found = true;
    EXPECT_EQ(m.kind, obs::MetricKind::kHistogram);
    EXPECT_GE(m.value, 1);
    ASSERT_FALSE(m.buckets.empty());
    const double p95 = obs::histogram_quantile(m.buckets, 0.95);
    bool inside = false;
    for (const auto& b : m.buckets) {
      if (p95 >= b.lo && p95 < b.hi) inside = true;
    }
    EXPECT_TRUE(inside);
  }
  EXPECT_TRUE(found);

  // The decoded snapshot renders to Prometheus text like a local one.
  const std::string prom = obs::prometheus_from_snapshot(decoded);
  EXPECT_NE(prom.find("# TYPE svc_request_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find("svc_request_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
}

// --- Trace events ------------------------------------------------------

TEST(Trace, ServiceLifecycleEventsAreEmitted) {
  std::ostringstream trace;
  obs::trace_to_stream(&trace);

  {
    Scheduler scheduler(quick_options(1));
    JobRequest request;
    request.problem = parse(kSystem);
    request.objective = alloc::Objective::sum_trt();
    const auto id = scheduler.submit(request);
    ASSERT_TRUE(id.has_value());
    ASSERT_TRUE(scheduler.wait(*id, 60.0).has_value());
    const auto rerun = scheduler.submit(request);  // identical: cache hit
    ASSERT_TRUE(rerun.has_value());
    ASSERT_TRUE(scheduler.wait(*rerun, 60.0).has_value());

    JobRequest hopeless;
    hopeless.problem = workload::tindell_prefix(30);
    hopeless.objective = alloc::Objective::ring_trt(0);
    hopeless.deadline_s = 0.15;
    const auto late = scheduler.submit(hopeless);
    ASSERT_TRUE(late.has_value());
    const auto snap = scheduler.wait(*late, 60.0);
    ASSERT_TRUE(snap.has_value());
    EXPECT_TRUE(snap->answer.deadline_expired);
    scheduler.shutdown(true);
  }
  obs::trace_to_stream(nullptr);

  std::map<std::string, int> census;
  std::map<std::uint64_t, std::uint64_t> open_spans;  // span id -> req
  int solver_events = 0, solver_events_without_req = 0;
  std::set<std::uint64_t> reqs;
  std::istringstream lines(trace.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto doc = obs::json_parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const std::string type = *doc->get_string("type");
    ++census[type];
    const auto req = doc->get_number("req");
    if (req) reqs.insert(static_cast<std::uint64_t>(*req));
    if (type == "span_begin" || type == "span_end") {
      ASSERT_TRUE(req.has_value()) << line;  // all service spans belong
      const auto span = doc->get_number("span");
      ASSERT_TRUE(span.has_value()) << line;
      const auto id = static_cast<std::uint64_t>(*span);
      if (type == "span_begin") {
        EXPECT_EQ(open_spans.count(id), 0u) << "duplicate span " << line;
        open_spans[id] = static_cast<std::uint64_t>(*req);
      } else {
        // Every span_end matches an open span_begin of the same request.
        auto it = open_spans.find(id);
        ASSERT_NE(it, open_spans.end()) << "unmatched span_end " << line;
        EXPECT_EQ(it->second, static_cast<std::uint64_t>(*req));
        EXPECT_GE(*doc->get_number("seconds"), 0.0);
        open_spans.erase(it);
      }
    } else if (type == "solve" || type == "interval" || type == "optimum" ||
               type == "solver_restart") {
      ++solver_events;
      if (!req) ++solver_events_without_req;
    }
  }
  EXPECT_EQ(census["request_received"], 3);
  EXPECT_EQ(census["request_done"], 3);
  EXPECT_EQ(census["cache_hit"], 1);
  EXPECT_GE(census["deadline_expired"], 1);

  // Request correlation: spans balance, every solver-side event inherits
  // the request id from the worker's installed context, and the three
  // submissions got three distinct request ids.
  EXPECT_TRUE(open_spans.empty()) << open_spans.size() << " unclosed spans";
  EXPECT_EQ(census["span_begin"], census["span_end"]);
  EXPECT_GT(census["span_begin"], 0);
  EXPECT_GT(solver_events, 0);
  EXPECT_EQ(solver_events_without_req, 0);
  EXPECT_EQ(reqs.size(), 3u);
}

// --- Uptime + time-series query verb -----------------------------------

TEST(Scheduler, StatsReportUptimeAndStartTime) {
  const std::int64_t t0 = obs::wall_unix_ms();
  Scheduler scheduler(quick_options(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const ServiceStats stats = scheduler.stats();
  EXPECT_GT(stats.uptime_s, 0.0);
  EXPECT_LT(stats.uptime_s, 60.0);
  EXPECT_GE(stats.start_time_unix_ms, t0 - 1000);
  EXPECT_LE(stats.start_time_unix_ms, obs::wall_unix_ms() + 1000);

  const double first = stats.uptime_s;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const ServiceStats later = scheduler.stats();
  EXPECT_GT(later.uptime_s, first);
  EXPECT_EQ(later.start_time_unix_ms, stats.start_time_unix_ms);
  scheduler.shutdown(/*drain=*/true);
}

TEST(Protocol, StatsLineCarriesUptimeFields) {
  ServiceStats stats;
  stats.uptime_s = 12.5;
  stats.start_time_unix_ms = 1700000000123;
  const auto doc = obs::json_parse(stats_line(stats));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_number("uptime_s"), 12.5);
  EXPECT_EQ(doc->get_number("start_time_unix_ms"), 1700000000123.0);
}

TEST(Protocol, QueryVerbParsesAndSerializes) {
  std::string error, code;
  const auto catalogue =
      parse_request("{\"verb\":\"query\"}", &error, &code);
  ASSERT_TRUE(catalogue.has_value()) << error;
  EXPECT_EQ(catalogue->verb, Request::Verb::kQuery);
  EXPECT_TRUE(catalogue->metric.empty());

  const auto series = parse_request(
      "{\"verb\":\"query\",\"metric\":\"svc.request_ms.p99\","
      "\"last_s\":60,\"max_samples\":32}",
      &error, &code);
  ASSERT_TRUE(series.has_value()) << error;
  EXPECT_EQ(series->metric, "svc.request_ms.p99");
  EXPECT_EQ(series->last_s, 60.0);
  EXPECT_EQ(series->max_samples, 32);

  obs::reset_timeseries();
  obs::timeseries_record("test.proto.series", 1000, 1.5);
  obs::timeseries_record("test.proto.series", 2000, 2.5);

  // Catalogue mode: one row per series with count + latest sample.
  const auto list_doc = obs::json_parse(query_line(*catalogue));
  ASSERT_TRUE(list_doc.has_value());
  EXPECT_EQ(list_doc->get_number("count"), 1.0);
  const obs::JsonValue* rows = list_doc->get("series");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 1u);
  EXPECT_EQ(rows->array[0].get_string("metric"), "test.proto.series");
  EXPECT_EQ(rows->array[0].get_number("count"), 2.0);
  EXPECT_EQ(rows->array[0].get_number("last"), 2.5);
  EXPECT_EQ(rows->array[0].get_number("last_unix_ms"), 2000.0);

  // Series mode: chronological [unix_ms, value] pairs.
  Request q;
  q.verb = Request::Verb::kQuery;
  q.metric = "test.proto.series";
  const auto doc = obs::json_parse(query_line(q));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("metric"), "test.proto.series");
  EXPECT_EQ(doc->get_number("count"), 2.0);
  const obs::JsonValue* samples = doc->get("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->array.size(), 2u);
  ASSERT_EQ(samples->array[1].array.size(), 2u);
  EXPECT_EQ(samples->array[0].array[0].number, 1000.0);
  EXPECT_EQ(samples->array[0].array[1].number, 1.5);
  EXPECT_EQ(samples->array[1].array[0].number, 2000.0);
  EXPECT_EQ(samples->array[1].array[1].number, 2.5);

  // Unknown series: ok with an empty sample list, not an error.
  q.metric = "no.such.series";
  const auto empty_doc = obs::json_parse(query_line(q));
  ASSERT_TRUE(empty_doc.has_value());
  EXPECT_EQ(empty_doc->get_number("count"), 0.0);
}

TEST(Server, QueryVerbServesSeriesEndToEnd) {
  obs::reset_timeseries();
  ServerOptions options;
  options.scheduler = quick_options(1);
  Server server(options);

  JobRequest job;
  job.problem = parse(kSystem);
  job.objective = alloc::Objective::sum_trt();
  // Drive traffic through the scheduler, then sample twice so quantile
  // series exist with >= 2 points (what alloc_top draws).
  const auto id = server.scheduler().submit(job);
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(server.scheduler().wait(*id, 60.0).has_value());
  obs::timeseries_sample_now();
  obs::timeseries_sample_now();

  const auto catalogue = obs::json_parse(
      server.handle_line("{\"verb\":\"query\"}"));
  ASSERT_TRUE(catalogue.has_value());
  ASSERT_NE(catalogue->get("series"), nullptr);
  std::set<std::string> names;
  for (const auto& row : catalogue->get("series")->array) {
    names.insert(*row.get_string("metric"));
  }
  EXPECT_EQ(names.count("svc.request_ms.p99"), 1u);
  EXPECT_EQ(names.count("res.svc.cache.bytes"), 1u);
  EXPECT_EQ(names.count("res.sat.arena.bytes"), 1u);

  const auto doc = obs::json_parse(server.handle_line(
      "{\"verb\":\"query\",\"metric\":\"svc.request_ms.p99\","
      "\"last_s\":600}"));
  ASSERT_TRUE(doc.has_value());
  ASSERT_GE(*doc->get_number("count"), 2.0);
  const obs::JsonValue* samples = doc->get("samples");
  ASSERT_NE(samples, nullptr);
  std::int64_t prev = 0;
  for (const auto& pair : samples->array) {
    ASSERT_EQ(pair.array.size(), 2u);
    const auto ms = static_cast<std::int64_t>(pair.array[0].number);
    EXPECT_GE(ms, prev);  // correctly timestamped: chronological
    prev = ms;
  }
  // Timestamps are wall-clock: within ten minutes of "now".
  EXPECT_GT(prev, obs::wall_unix_ms() - 600 * 1000);
}

}  // namespace
}  // namespace optalloc::svc

// Tests for the certification subsystem (src/check): proof-log round
// trips, the backward RUP checker on hand-built and solver-produced
// proofs, fault injection (corrupted learnt clauses must be rejected),
// theory-lemma weakening checks, solver-state invariant auditing, and
// end-to-end certified optimization through alloc::optimize.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "alloc/optimizer.hpp"
#include "check/drat.hpp"
#include "check/invariants.hpp"
#include "check/model.hpp"
#include "pb/propagator.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace optalloc {
namespace {

using sat::Lit;
using sat::neg;
using sat::pos;
using sat::ProofLog;
using sat::Var;

using LitVec = std::vector<Lit>;

// -- Proof log serialization ----------------------------------------------

TEST(ProofLog, TextRoundTrip) {
  ProofLog log;
  const std::vector<sat::ProofPbTerm> axiom = {{2, pos(0)}, {1, pos(1)},
                                               {1, neg(2)}};
  log.add_pb_ge(axiom, 2);
  log.add_input(LitVec{pos(0), neg(1)});
  log.add_theory(LitVec{pos(0), pos(1)});
  log.add_lemma(LitVec{pos(0)});
  log.add_delete(LitVec{pos(0), neg(1)});
  log.add_lemma(LitVec{});  // empty clause

  std::ostringstream os;
  log.write_text(os);

  ProofLog parsed;
  std::string error;
  std::istringstream is(os.str());
  ASSERT_TRUE(parsed.parse_text(is, &error)) << error;

  ASSERT_EQ(parsed.num_steps(), log.num_steps());
  for (std::size_t s = 0; s < log.num_steps(); ++s) {
    EXPECT_EQ(parsed.step(s).kind, log.step(s).kind) << "step " << s;
    const auto a = log.lits(log.step(s));
    const auto b = parsed.lits(parsed.step(s));
    ASSERT_EQ(a.size(), b.size()) << "step " << s;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  ASSERT_EQ(parsed.pb_constraints().size(), 1u);
  EXPECT_EQ(parsed.pb_constraints()[0].rhs, 2);
  ASSERT_EQ(parsed.pb_constraints()[0].terms.size(), 3u);
  EXPECT_EQ(parsed.pb_constraints()[0].terms[0].coef, 2);
  EXPECT_EQ(parsed.pb_constraints()[0].terms[2].lit, neg(2));
  EXPECT_EQ(parsed.num_lemmas(), 2u);
}

TEST(ProofLog, ParseRejectsGarbage) {
  ProofLog log;
  std::string error;
  std::istringstream is("1 2 frog 0\n");
  EXPECT_FALSE(log.parse_text(is, &error));
  EXPECT_FALSE(error.empty());
}

// -- RUP checker on hand-built proofs -------------------------------------

TEST(DratCheck, AcceptsResolutionChain) {
  // (x|y)(~x|y)(x|~y)(~x|~y) |- y |- {} : the classic 2-variable core.
  ProofLog log;
  log.add_input(LitVec{pos(0), pos(1)});
  log.add_input(LitVec{neg(0), pos(1)});
  log.add_input(LitVec{pos(0), neg(1)});
  log.add_input(LitVec{neg(0), neg(1)});
  log.add_lemma(LitVec{pos(1)});
  log.add_lemma(LitVec{});

  const check::DratResult res = check::check_proof(log);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_GE(res.lemmas_checked, 2u);
  const check::DratResult strict = check::check_proof_all(log);
  EXPECT_TRUE(strict.ok) << strict.error;
}

TEST(DratCheck, RejectsUnsupportedLemma) {
  // (x|y) does not entail x: asserting ~x propagates y and halts.
  ProofLog log;
  log.add_input(LitVec{pos(0), pos(1)});
  log.add_lemma(LitVec{pos(0)});
  const check::DratResult res = check::check_proof(log);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("not RUP"), std::string::npos) << res.error;
}

TEST(DratCheck, DefaultTargetIsLastLemmaWhenNoneEmpty) {
  ProofLog log;
  log.add_input(LitVec{pos(0)});
  log.add_input(LitVec{neg(0), pos(1)});
  log.add_lemma(LitVec{pos(1)});  // last (and only) lemma, RUP
  const check::DratResult res = check::check_proof(log);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.lemmas_checked, 1u);
}

TEST(DratCheck, DeletionRemovesClauseFromLaterChecks) {
  // The lemma is RUP only through the input deleted before it: backward
  // checking must respect the [add, delete) liveness window and fail.
  ProofLog log;
  log.add_input(LitVec{pos(0)});
  log.add_input(LitVec{neg(0), pos(1)});
  log.add_delete(LitVec{pos(0)});
  log.add_lemma(LitVec{pos(1)});
  const check::DratResult res = check::check_proof(log);
  EXPECT_FALSE(res.ok);
}

TEST(DratCheck, TheoryLemmaWeakening) {
  // Axiom 2a + b + c >= 2: falsifying {a, b} caps the LHS at 1 < 2, so
  // (a|b) is a valid clausal weakening; (b) alone is not (2a + c = 3 >= 2).
  ProofLog good;
  const std::vector<sat::ProofPbTerm> axiom = {{2, pos(0)}, {1, pos(1)},
                                               {1, pos(2)}};
  good.add_pb_ge(axiom, 2);
  good.add_theory(LitVec{pos(0), pos(1)});
  EXPECT_TRUE(check::check_proof_all(good).ok)
      << check::check_proof_all(good).error;

  ProofLog bad;
  bad.add_pb_ge(axiom, 2);
  bad.add_theory(LitVec{pos(1)});
  const check::DratResult res = check::check_proof_all(bad);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("weakening"), std::string::npos) << res.error;
}

// -- Solver-produced proofs -----------------------------------------------

/// Pigeonhole PHP(p, h): p pigeons into h holes, UNSAT when p > h. Small
/// but requires genuine clause learning.
void add_pigeonhole(sat::Solver& s, int pigeons, int holes) {
  auto var = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int i = 0; i < pigeons * holes; ++i) s.new_var();
  for (int p = 0; p < pigeons; ++p) {
    LitVec some;
    for (int h = 0; h < holes; ++h) some.push_back(pos(var(p, h)));
    s.add_clause(some);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        s.add_clause(LitVec{neg(var(p, h)), neg(var(q, h))});
      }
    }
  }
}

TEST(DratCheck, SolverProofOnPigeonholeVerifies) {
  sat::Solver s;
  ProofLog log;
  s.set_proof(&log);
  add_pigeonhole(s, 4, 3);
  ASSERT_EQ(s.solve(), sat::LBool::kFalse);
  ASSERT_GT(log.num_lemmas(), 0u);

  const check::DratResult res = check::check_proof(log);
  EXPECT_TRUE(res.ok) << res.error;
  // Strict mode: every learnt clause the solver ever derived is RUP at its
  // derivation point, so the full log passes too.
  const check::DratResult strict = check::check_proof_all(log);
  EXPECT_TRUE(strict.ok) << strict.error;
  EXPECT_GE(strict.lemmas_checked, res.lemmas_checked);
}

TEST(DratCheck, CorruptedLearntClauseIsRejected) {
  // Fault injection: drop the last literal of the N-th learnt clause (in
  // both the solver's database and the log). The strengthened clause is in
  // general no longer implied by the formula, so strict checking must
  // refuse the proof — even though the final verdict may not depend on it.
  // Random 3-SAT near the phase transition gives instances loose enough
  // that the injected clause excludes actual models; on this fixed seed
  // the checker catches several of the 128 injected corruptions, while
  // every healthy log verifies.
  Rng rng(0xBADC0DE);
  int rejected = 0;
  for (int round = 0; round < 40; ++round) {
    std::vector<LitVec> cs;
    for (int i = 0; i < 34; ++i) {
      std::vector<Var> pool;
      for (Var v = 0; v < 8; ++v) pool.push_back(v);
      LitVec c;
      for (int j = 0; j < 3; ++j) {
        const std::size_t k = rng.index(pool.size());
        c.push_back(Lit(pool[k], rng.chance(0.5)));
        pool[k] = pool.back();
        pool.pop_back();
      }
      cs.push_back(c);
    }
    auto run = [&cs](std::uint64_t corrupt, ProofLog& log) {
      sat::Solver s;
      s.set_proof(&log);
      s.test_corrupt_learnt = corrupt;
      for (int v = 0; v < 8; ++v) s.new_var();
      bool ok = true;
      for (const auto& c : cs) ok = s.add_clause(c) && ok;
      if (ok) (void)s.solve();
    };
    ProofLog healthy;
    run(0, healthy);
    const check::DratResult base = check::check_proof_all(healthy);
    ASSERT_TRUE(base.ok) << "healthy log rejected in round " << round << ": "
                         << base.error;
    for (std::uint64_t n = 1; n <= healthy.num_lemmas(); ++n) {
      ProofLog corrupted;
      run(n, corrupted);  // verdict itself is untrusted under injection
      if (!check::check_proof_all(corrupted).ok) ++rejected;
    }
  }
  EXPECT_GT(rejected, 0)
      << "no injected corruption was caught by the strict checker";
}

// -- Invariant auditing ---------------------------------------------------

TEST(Audit, CleanSolverPasses) {
  sat::Solver s;
  add_pigeonhole(s, 3, 3);  // SAT variant: leaves a populated trail
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  std::vector<std::string> violations;
  EXPECT_TRUE(s.audit(&violations));
  EXPECT_TRUE(violations.empty());
}

TEST(Audit, PeriodicHookRunsCleanThroughSearch) {
  // audit_period=1 re-audits at every conflict; a healthy solver must
  // never trip it (the hook throws std::logic_error on violation).
  sat::Solver s;
  s.audit_period = 1;
  add_pigeonhole(s, 4, 3);
  EXPECT_NO_THROW({ EXPECT_EQ(s.solve(), sat::LBool::kFalse); });
}

TEST(Audit, AggregateReportCoversPbPropagator) {
  sat::Solver s;
  pb::PbPropagator pb(s);
  for (int i = 0; i < 4; ++i) s.new_var();
  ASSERT_TRUE(pb.add_ge(
      std::vector<pb::Term>{{2, pos(0)}, {1, pos(1)}, {1, pos(2)}}, 2));
  ASSERT_TRUE(pb.add_le(
      std::vector<pb::Term>{{1, pos(0)}, {1, pos(3)}}, 1));
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  const check::AuditReport report = check::audit_solver_state(s, &pb);
  EXPECT_TRUE(report.ok) << report.summary();
}

// -- End-to-end certified optimization ------------------------------------

alloc::Problem tiny_problem() {
  alloc::Problem p;
  p.arch.num_ecus = 2;
  rt::Medium m;
  m.name = "ring";
  m.type = rt::MediumType::kTokenRing;
  m.ecus = {0, 1};
  m.ring_byte_ticks = 1;
  m.slot_min = 1;
  m.slot_max = 8;
  p.arch.media = {m};
  auto task = [](const char* name, rt::Ticks period,
                 std::vector<rt::Ticks> wcet) {
    rt::Task t;
    t.name = name;
    t.period = period;
    t.deadline = period;
    t.wcet = std::move(wcet);
    return t;
  };
  p.tasks.tasks = {task("a", 100, {10, 14}), task("b", 100, {12, 8}),
                   task("c", 200, {20, 30})};
  p.tasks.tasks[0].messages.push_back({1, 2, 60, 0});
  return p;
}

/// tiny_problem with the communicating pair forced apart: the message must
/// cross the ring, which pushes the optimum above the interval's naive
/// lower bound — so the binary search must answer at least one UNSAT
/// query, exercising the proof-checking path.
alloc::Problem separated_problem() {
  alloc::Problem p = tiny_problem();
  p.tasks.tasks[0].separated_from = {1};
  p.tasks.tasks[1].separated_from = {0};
  return p;
}

TEST(CertifiedOptimize, IncrementalOptimumIsCertified) {
  alloc::OptimizeOptions opts;
  opts.certify = true;
  const alloc::OptimizeResult res =
      alloc::optimize(separated_problem(), alloc::Objective::sum_trt(), opts);
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal);
  EXPECT_TRUE(res.certified) << res.certify_error;
  EXPECT_TRUE(res.certify_error.empty()) << res.certify_error;
  EXPECT_GT(res.stats.sat_calls_unsat, 0);
  EXPECT_GT(res.stats.models_certified, 0);
  EXPECT_GT(res.stats.proofs_certified, 0);
  EXPECT_GT(res.stats.proof_lemmas_checked, 0u);
}

TEST(CertifiedOptimize, ScratchModeIsCertified) {
  alloc::OptimizeOptions opts;
  opts.certify = true;
  opts.incremental = false;
  const alloc::OptimizeResult res =
      alloc::optimize(separated_problem(), alloc::Objective::sum_trt(), opts);
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal);
  EXPECT_TRUE(res.certified) << res.certify_error;
  EXPECT_GT(res.stats.models_certified, 0);
  EXPECT_GT(res.stats.proofs_certified, 0);
}

TEST(CertifiedOptimize, CertifiedCostMatchesUncertified) {
  const alloc::Problem p = tiny_problem();
  alloc::OptimizeOptions plain;
  alloc::OptimizeOptions certifying;
  certifying.certify = true;
  const auto a = alloc::optimize(p, alloc::Objective::sum_trt(), plain);
  const auto b = alloc::optimize(p, alloc::Objective::sum_trt(), certifying);
  ASSERT_EQ(a.status, alloc::OptimizeResult::Status::kOptimal);
  ASSERT_EQ(b.status, alloc::OptimizeResult::Status::kOptimal);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_FALSE(a.certified);  // certification is opt-in
  EXPECT_TRUE(b.certified) << b.certify_error;
}

TEST(CertifiedOptimize, InfeasibleAnswerIsCertified) {
  alloc::Problem p = tiny_problem();
  // Mutual separation across three tasks on two ECUs is impossible.
  p.tasks.tasks[0].separated_from = {1, 2};
  p.tasks.tasks[1].separated_from = {0, 2};
  p.tasks.tasks[2].separated_from = {0, 1};
  alloc::OptimizeOptions opts;
  opts.certify = true;
  const alloc::OptimizeResult res =
      alloc::optimize(p, alloc::Objective::sum_trt(), opts);
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kInfeasible);
  EXPECT_TRUE(res.certified) << res.certify_error;
}

TEST(CertifiedOptimize, ExternalProofLogIsPopulated) {
  sat::ProofLog log;
  alloc::OptimizeOptions opts;
  opts.proof = &log;  // proof capture without certification
  const alloc::OptimizeResult res =
      alloc::optimize(tiny_problem(), alloc::Objective::sum_trt(), opts);
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal);
  EXPECT_FALSE(res.certified);
  EXPECT_GT(log.num_steps(), 0u);
  // The captured log must hold up under the standalone strict checker.
  const check::DratResult strict = check::check_proof_all(log);
  EXPECT_TRUE(strict.ok) << strict.error;
}

}  // namespace
}  // namespace optalloc

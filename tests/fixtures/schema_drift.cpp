// Drift fixture for the schema_audit ctest (never compiled or linked —
// schema_audit scans it as text via --also). It emits an event kind that
// has no rule in trace_schema_check.cpp and no README row, so the audit
// must exit non-zero; the `schema_audit_detects_drift` test is WILL_FAIL
// and turns that into a pass. If schema_audit ever stops noticing this
// site, the suite fails.
#include "obs/trace.hpp"

void schema_drift_fixture() {
  optalloc::obs::TraceEvent("rogue_undocumented_event").num("x", 1);
}

// Drift fixture for schema_audit's metric-namespace half (never compiled
// or linked — schema_audit scans it as text via --also). It registers a
// metric and a resource that have no row in README.md's "Metrics
// reference" table, so the audit must exit non-zero; the
// `schema_audit_detects_metric_drift` test is WILL_FAIL and turns that
// into a pass. If the metric scanner ever stops noticing these sites,
// the suite fails.
#include "obs/metrics.hpp"
#include "obs/resource.hpp"

void metric_drift_fixture() {
  (void)optalloc::obs::counter("rogue.undocumented_counter");
  (void)optalloc::obs::resource("rogue.undocumented_resource");
}

// Tests for the incremental re-solve subsystem: the patch language
// (parse + apply semantics), the group delta computation, session
// solve/revise behaviour against the batch optimizer, unsat-core
// explanations for infeasible edits, and a randomized edit-chain
// differential — the incremental session and a certified cold solve must
// agree on verdict and optimum after every edit.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/cost.hpp"
#include "alloc/io.hpp"
#include "alloc/optimizer.hpp"
#include "inc/delta.hpp"
#include "inc/patch.hpp"
#include "inc/session.hpp"
#include "obs/json.hpp"
#include "obs/resource.hpp"

namespace optalloc::inc {
namespace {

// The svc_test ring system: 2 ECUs, 3 tasks, 2 messages, one separation.
// Small enough that a cold certified solve takes milliseconds.
constexpr const char* kSystem = R"(system 2
memory 0 100
medium ring0 token_ring ecus=0,1 slot_min=1 slot_max=16 byte_ticks=1
task sensor period=100 deadline=40 memory=10 wcet=8,10
task control period=100 deadline=80 wcet=25,30
task actuator period=100 deadline=100 jitter=2 wcet=5,-
message sensor -> control bytes=4 deadline=50
message control -> actuator bytes=2 deadline=60 jitter=1
separate control actuator
)";

alloc::Problem parse(const std::string& text) {
  std::istringstream in(text);
  return alloc::parse_problem(in);
}

InstancePatch parse_ops(const std::string& json) {
  const auto v = obs::json_parse(json);
  EXPECT_TRUE(v.has_value()) << json;
  if (!v) return {};
  std::string error;
  auto patch = parse_patch(*v, &error);
  EXPECT_TRUE(patch.has_value()) << error;
  return patch.value_or(InstancePatch{});
}

// --- Patch parsing -----------------------------------------------------

TEST(IncPatch, ParsesWireForm) {
  const InstancePatch patch = parse_ops(
      R"([{"op":"set_wcet","task":"sensor","ecu":1,"wcet":12},)"
      R"({"op":"set_deadline","task":"control","deadline":70},)"
      R"({"op":"add_task","task":"logger","period":200,"deadline":150,)"
      R"("wcet":[9,-1],"memory":5},)"
      R"({"op":"remove_message","task":"sensor","index":0},)"
      R"({"op":"separate","task":"sensor","target":"control"}])");
  ASSERT_EQ(patch.ops.size(), 5u);
  EXPECT_EQ(patch.ops[0].kind, PatchOp::Kind::kSetWcet);
  EXPECT_EQ(patch.ops[0].task, "sensor");
  EXPECT_EQ(patch.ops[0].ecu, 1);
  EXPECT_EQ(patch.ops[0].value, 12);
  EXPECT_EQ(patch.ops[1].kind, PatchOp::Kind::kSetDeadline);
  EXPECT_EQ(patch.ops[1].value, 70);
  EXPECT_EQ(patch.ops[2].kind, PatchOp::Kind::kAddTask);
  EXPECT_EQ(patch.ops[2].wcet, (std::vector<std::int64_t>{9, -1}));
  EXPECT_EQ(patch.ops[2].memory, 5);
  EXPECT_EQ(patch.ops[3].kind, PatchOp::Kind::kRemoveMessage);
  EXPECT_EQ(patch.ops[4].kind, PatchOp::Kind::kSeparate);
  EXPECT_EQ(patch.ops[4].target, "control");
  EXPECT_FALSE(patch.ops[0].describe().empty());
}

TEST(IncPatch, ParseRejectsMalformed) {
  std::string error;
  // Not an array.
  EXPECT_FALSE(parse_patch(*obs::json_parse(R"({"op":"set_wcet"})"), &error));
  EXPECT_FALSE(error.empty());
  // Unknown op.
  EXPECT_FALSE(parse_patch(
      *obs::json_parse(R"([{"op":"transmogrify","task":"x"}])"), &error));
  // Missing required field.
  EXPECT_FALSE(parse_patch(
      *obs::json_parse(R"([{"op":"set_wcet","task":"sensor"}])"), &error));
  EXPECT_FALSE(parse_patch(
      *obs::json_parse(R"([{"op":"set_deadline","deadline":10}])"), &error));
}

// --- Patch application -------------------------------------------------

TEST(IncPatch, ApplyEditsInOrder) {
  alloc::Problem p = parse(kSystem);
  const InstancePatch patch = parse_ops(
      R"([{"op":"set_wcet","task":"sensor","ecu":0,"wcet":11},)"
      R"({"op":"set_deadline","task":"sensor","deadline":35},)"
      R"({"op":"set_jitter","task":"actuator","jitter":3},)"
      R"({"op":"set_message_deadline","task":"sensor","index":0,)"
      R"("deadline":45}])");
  ASSERT_FALSE(apply_patch(patch, p).has_value());
  EXPECT_EQ(p.tasks.tasks[0].wcet[0], 11);
  EXPECT_EQ(p.tasks.tasks[0].deadline, 35);
  EXPECT_EQ(p.tasks.tasks[2].release_jitter, 3);
  EXPECT_EQ(p.tasks.tasks[0].messages[0].deadline, 45);
}

TEST(IncPatch, ApplyRejectsInvalidOps) {
  const auto reject = [](const std::string& json) {
    alloc::Problem p = parse(kSystem);
    const auto error = apply_patch(parse_ops(json), p);
    EXPECT_TRUE(error.has_value()) << json;
  };
  reject(R"([{"op":"set_wcet","task":"ghost","ecu":0,"wcet":5}])");
  reject(R"([{"op":"set_wcet","task":"sensor","ecu":7,"wcet":5}])");
  reject(R"([{"op":"set_deadline","task":"sensor","deadline":0}])");
  // Deadline above the period is rejected (d <= T model).
  reject(R"([{"op":"set_deadline","task":"sensor","deadline":101}])");
  // Duplicate task name.
  reject(R"([{"op":"add_task","task":"sensor","period":10,"deadline":10,)"
         R"("wcet":[1,1]}])");
  // WCET vector must cover every ECU.
  reject(R"([{"op":"add_task","task":"t9","period":10,"deadline":10,)"
         R"("wcet":[1]}])");
  reject(R"([{"op":"remove_message","task":"sensor","index":3}])");
  reject(R"([{"op":"unseparate","task":"sensor","target":"control"}])");
}

TEST(IncPatch, RemoveTaskDropsMessagesAndReindexes) {
  alloc::Problem p = parse(kSystem);
  const InstancePatch patch =
      parse_ops(R"([{"op":"remove_task","task":"control"}])");
  ASSERT_FALSE(apply_patch(patch, p).has_value());
  ASSERT_EQ(p.tasks.tasks.size(), 2u);
  EXPECT_EQ(p.tasks.tasks[0].name, "sensor");
  EXPECT_EQ(p.tasks.tasks[1].name, "actuator");
  // sensor -> control and control -> actuator both die with control.
  EXPECT_TRUE(p.tasks.tasks[0].messages.empty());
  EXPECT_TRUE(p.tasks.tasks[1].messages.empty());
  // The control/actuator separation dies too; actuator's index moved.
  for (const auto& t : p.tasks.tasks) {
    EXPECT_TRUE(t.separated_from.empty());
  }
}

// --- Group deltas ------------------------------------------------------

TEST(IncDelta, FreshBuildAddsEverything) {
  const std::vector<alloc::GroupedFormula> build = {
      {"task:a", ir::NodeId{1}}, {"task:a", ir::NodeId{2}},
      {"task:b", ir::NodeId{3}}};
  const EncodingDelta d = diff_groups(GroupMap{}, build);
  EXPECT_EQ(d.added, (std::vector<std::string>{"task:a", "task:b"}));
  EXPECT_TRUE(d.retired.empty());
  EXPECT_EQ(d.unchanged, 0u);
}

TEST(IncDelta, UnchangedGroupsAreLeftAlone) {
  GroupMap live;
  live["task:a"].formulas = {ir::NodeId{1}, ir::NodeId{2}};
  live["task:b"].formulas = {ir::NodeId{3}};
  const std::vector<alloc::GroupedFormula> build = {
      {"task:a", ir::NodeId{2}}, {"task:a", ir::NodeId{1}},
      {"task:b", ir::NodeId{3}}};
  const EncodingDelta d = diff_groups(live, build);
  EXPECT_TRUE(d.added.empty());
  EXPECT_TRUE(d.retired.empty());
  EXPECT_EQ(d.unchanged, 2u);
}

TEST(IncDelta, ChangedGroupIsRetiredAndReAdded) {
  GroupMap live;
  live["task:a"].formulas = {ir::NodeId{1}};
  live["task:b"].formulas = {ir::NodeId{3}};
  live["task:gone"].formulas = {ir::NodeId{9}};
  const std::vector<alloc::GroupedFormula> build = {
      {"task:a", ir::NodeId{4}},   // changed
      {"task:b", ir::NodeId{3}},   // unchanged
      {"task:new", ir::NodeId{5}}  // added
  };
  const EncodingDelta d = diff_groups(live, build);
  EXPECT_EQ(d.added, (std::vector<std::string>{"task:a", "task:new"}));
  EXPECT_EQ(d.retired, (std::vector<std::string>{"task:a", "task:gone"}));
  EXPECT_EQ(d.unchanged, 1u);
}

// --- Sessions ----------------------------------------------------------

alloc::OptimizeOptions cold_options() {
  alloc::OptimizeOptions opt;
  opt.certify = true;
  return opt;
}

TEST(IncSession, BaseSolveMatchesColdOptimum) {
  Session session(parse(kSystem), alloc::Objective::sum_trt());
  const SessionResult inc = session.solve();
  const alloc::OptimizeResult cold =
      alloc::optimize(parse(kSystem), alloc::Objective::sum_trt(),
                      cold_options());
  ASSERT_EQ(inc.status, SessionResult::Status::kOptimal);
  ASSERT_EQ(cold.status, alloc::OptimizeResult::Status::kOptimal);
  EXPECT_TRUE(cold.certified) << cold.certify_error;
  EXPECT_EQ(inc.cost, cold.cost);
  EXPECT_TRUE(inc.proven_optimal);
  ASSERT_TRUE(inc.has_allocation);
  // The decoded allocation must actually achieve the claimed optimum.
  const auto value = alloc::evaluate_allocation(
      session.problem(), session.objective(), inc.allocation);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, inc.cost);
  EXPECT_GT(inc.groups_added, 0);
  EXPECT_EQ(inc.groups_retired, 0);
}

TEST(IncSession, ReviseMatchesColdOnEditedInstance) {
  Session session(parse(kSystem), alloc::Objective::sum_trt());
  ASSERT_EQ(session.solve().status, SessionResult::Status::kOptimal);

  const InstancePatch patch = parse_ops(
      R"([{"op":"set_wcet","task":"control","ecu":0,"wcet":35},)"
      R"({"op":"set_deadline","task":"sensor","deadline":30}])");
  const SessionResult inc = session.revise(patch);
  ASSERT_EQ(inc.status, SessionResult::Status::kOptimal);
  // Only the touched constraint groups were re-encoded.
  EXPECT_GT(inc.groups_unchanged, 0u);
  EXPECT_GT(inc.groups_retired, 0);

  alloc::Problem edited = parse(kSystem);
  ASSERT_FALSE(apply_patch(patch, edited).has_value());
  const alloc::OptimizeResult cold =
      alloc::optimize(edited, alloc::Objective::sum_trt(), cold_options());
  ASSERT_EQ(cold.status, alloc::OptimizeResult::Status::kOptimal);
  EXPECT_TRUE(cold.certified) << cold.certify_error;
  EXPECT_EQ(inc.cost, cold.cost);
  const auto value = alloc::evaluate_allocation(
      session.problem(), session.objective(), inc.allocation);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, inc.cost);
}

TEST(IncSession, DeadGuardAccountingTracksRetirement) {
  const auto guard_level = [](const char* name) {
    for (const auto& r : obs::resource_snapshot()) {
      if (r.name == name) return r.items;
    }
    return std::int64_t{0};
  };
  const std::int64_t live_before = guard_level("inc.guards");
  const std::int64_t dead_before = guard_level("inc.dead_guards");
  {
    Session session(parse(kSystem), alloc::Objective::sum_trt());
    ASSERT_EQ(session.solve().status, SessionResult::Status::kOptimal);
    EXPECT_GT(session.live_guards(), 0u);
    EXPECT_EQ(session.retired_guards(), 0);
    EXPECT_EQ(session.dead_guard_fraction(), 0.0);
    EXPECT_EQ(guard_level("inc.guards") - live_before,
              static_cast<std::int64_t>(session.live_guards()));

    const InstancePatch patch = parse_ops(
        R"([{"op":"set_wcet","task":"control","ecu":0,"wcet":35}])");
    ASSERT_EQ(session.revise(patch).status, SessionResult::Status::kOptimal);
    EXPECT_GT(session.retired_guards(), 0);
    const double fraction = session.dead_guard_fraction();
    EXPECT_GT(fraction, 0.0);
    EXPECT_LT(fraction, 1.0);
    EXPECT_EQ(guard_level("inc.dead_guards") - dead_before,
              session.retired_guards());
  }
  // Session destruction retracts both gauges.
  EXPECT_EQ(guard_level("inc.guards"), live_before);
  EXPECT_EQ(guard_level("inc.dead_guards"), dead_before);
}

TEST(IncSession, InfeasibleEditYieldsConflictingCore) {
  Session session(parse(kSystem), alloc::Objective::sum_trt());
  ASSERT_EQ(session.solve().status, SessionResult::Status::kOptimal);

  // control can only run on ECU 1 at WCET 90; sensor is pinned by memory
  // to ECU 0's budget but a 95-tick deadline-39 victim makes every
  // placement of control miss its deadline.
  const InstancePatch patch = parse_ops(
      R"([{"op":"set_wcet","task":"control","ecu":0,"wcet":-1},)"
      R"({"op":"set_wcet","task":"control","ecu":1,"wcet":90}])");
  const SessionResult inc = session.revise(patch);
  ASSERT_EQ(inc.status, SessionResult::Status::kInfeasible);
  EXPECT_TRUE(inc.proven_optimal);
  ASSERT_FALSE(inc.core.empty());
  // The named groups must genuinely conflict on their own.
  EXPECT_TRUE(session.core_is_conflicting(inc.core));
  // ...and the cold solver must agree the instance is infeasible.
  alloc::Problem edited = parse(kSystem);
  ASSERT_FALSE(apply_patch(patch, edited).has_value());
  const alloc::OptimizeResult cold =
      alloc::optimize(edited, alloc::Objective::sum_trt(), cold_options());
  EXPECT_EQ(cold.status, alloc::OptimizeResult::Status::kInfeasible);
  EXPECT_TRUE(cold.certified) << cold.certify_error;
}

TEST(IncSession, ReviseBackRestoresTheOriginalOptimum) {
  Session session(parse(kSystem), alloc::Objective::sum_trt());
  const SessionResult base = session.solve();
  ASSERT_EQ(base.status, SessionResult::Status::kOptimal);

  const SessionResult worse = session.revise(parse_ops(
      R"([{"op":"set_wcet","task":"sensor","ecu":0,"wcet":30}])"));
  ASSERT_EQ(worse.status, SessionResult::Status::kOptimal);

  const SessionResult back = session.revise(parse_ops(
      R"([{"op":"set_wcet","task":"sensor","ecu":0,"wcet":8}])"));
  ASSERT_EQ(back.status, SessionResult::Status::kOptimal);
  EXPECT_EQ(back.cost, base.cost);
}

TEST(IncSession, RejectedPatchLeavesInstanceUntouched) {
  Session session(parse(kSystem), alloc::Objective::sum_trt());
  const SessionResult base = session.solve();
  ASSERT_EQ(base.status, SessionResult::Status::kOptimal);

  const SessionResult bad = session.revise(
      parse_ops(R"([{"op":"set_deadline","task":"ghost","deadline":10}])"));
  EXPECT_EQ(bad.status, SessionResult::Status::kError);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_EQ(session.problem().tasks.tasks.size(), 3u);

  const SessionResult again = session.solve();
  ASSERT_EQ(again.status, SessionResult::Status::kOptimal);
  EXPECT_EQ(again.cost, base.cost);
}

// --- Randomized edit-chain differential --------------------------------

// Draw a random (always structurally valid) patch against `p`.
InstancePatch random_patch(std::mt19937& rng, const alloc::Problem& p) {
  const auto pick_task = [&]() -> const rt::Task& {
    std::uniform_int_distribution<std::size_t> d(0, p.tasks.tasks.size() - 1);
    return p.tasks.tasks[d(rng)];
  };
  InstancePatch patch;
  PatchOp op;
  std::uniform_int_distribution<int> kind(0, 3);
  switch (kind(rng)) {
    case 0: {  // nudge a WCET on an ECU where the task is runnable
      const rt::Task& t = pick_task();
      std::vector<int> runnable;
      for (int e = 0; e < static_cast<int>(t.wcet.size()); ++e) {
        if (t.wcet[e] >= 0) runnable.push_back(e);
      }
      if (runnable.empty()) break;
      std::uniform_int_distribution<std::size_t> d(0, runnable.size() - 1);
      const int ecu = runnable[d(rng)];
      std::uniform_int_distribution<std::int64_t> w(1, 40);
      op.kind = PatchOp::Kind::kSetWcet;
      op.task = t.name;
      op.ecu = ecu;
      op.value = w(rng);
      patch.ops.push_back(op);
      break;
    }
    case 1: {  // retighten or relax a deadline within (0, period]
      const rt::Task& t = pick_task();
      std::uniform_int_distribution<std::int64_t> d(1, t.period);
      op.kind = PatchOp::Kind::kSetDeadline;
      op.task = t.name;
      op.value = d(rng);
      patch.ops.push_back(op);
      break;
    }
    case 2: {  // jitter wiggle
      const rt::Task& t = pick_task();
      std::uniform_int_distribution<std::int64_t> j(0, 4);
      op.kind = PatchOp::Kind::kSetJitter;
      op.task = t.name;
      op.value = j(rng);
      patch.ops.push_back(op);
      break;
    }
    default: {  // message deadline wiggle (if any messages exist)
      std::vector<const rt::Task*> senders;
      for (const auto& t : p.tasks.tasks) {
        if (!t.messages.empty()) senders.push_back(&t);
      }
      if (senders.empty()) break;
      std::uniform_int_distribution<std::size_t> s(0, senders.size() - 1);
      const rt::Task* t = senders[s(rng)];
      std::uniform_int_distribution<std::size_t> m(0, t->messages.size() - 1);
      const std::size_t idx = m(rng);
      std::uniform_int_distribution<std::int64_t> d(10, t->period);
      op.kind = PatchOp::Kind::kSetMessageDeadline;
      op.task = t->name;
      op.index = static_cast<int>(idx);
      op.value = d(rng);
      patch.ops.push_back(op);
      break;
    }
  }
  return patch;
}

TEST(IncDifferential, RandomEditChainsAgreeWithCertifiedColdSolves) {
  std::mt19937 rng(0x5e551 + 7);
  constexpr int kChains = 3;
  constexpr int kEditsPerChain = 6;
  int infeasible_seen = 0;
  for (int chain = 0; chain < kChains; ++chain) {
    Session session(parse(kSystem), alloc::Objective::sum_trt());
    ASSERT_EQ(session.solve().status, SessionResult::Status::kOptimal);
    alloc::Problem shadow = parse(kSystem);
    for (int edit = 0; edit < kEditsPerChain; ++edit) {
      const InstancePatch patch = random_patch(rng, shadow);
      if (patch.empty()) continue;
      ASSERT_FALSE(apply_patch(patch, shadow).has_value());
      const SessionResult inc = session.revise(patch);
      const alloc::OptimizeResult cold =
          alloc::optimize(shadow, alloc::Objective::sum_trt(),
                          cold_options());
      const std::string where = "chain " + std::to_string(chain) +
                                " edit " + std::to_string(edit) + ": " +
                                patch.ops.front().describe();
      EXPECT_TRUE(cold.certified) << where << ": " << cold.certify_error;
      if (cold.status == alloc::OptimizeResult::Status::kInfeasible) {
        ++infeasible_seen;
        ASSERT_EQ(inc.status, SessionResult::Status::kInfeasible) << where;
        ASSERT_FALSE(inc.core.empty()) << where;
        EXPECT_TRUE(session.core_is_conflicting(inc.core)) << where;
      } else {
        ASSERT_EQ(cold.status, alloc::OptimizeResult::Status::kOptimal);
        ASSERT_EQ(inc.status, SessionResult::Status::kOptimal) << where;
        ASSERT_EQ(inc.cost, cold.cost) << where;
        const auto value = alloc::evaluate_allocation(
            session.problem(), session.objective(), inc.allocation);
        ASSERT_TRUE(value.has_value()) << where;
        EXPECT_EQ(*value, inc.cost) << where;
      }
    }
  }
  // The chains are tuned to cross the feasibility boundary at least once;
  // if this starts failing after a generator change, re-seed.
  EXPECT_GT(infeasible_seen, 0);
}

}  // namespace
}  // namespace optalloc::inc

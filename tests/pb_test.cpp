// Tests for the pseudo-Boolean layer: normalization algebra, native
// slack propagation (conflicts, implications, backtracking consistency),
// CNF encodings (AMO, at-most-k, BDD), and fuzzing of all three PB
// back-ends against brute-force enumeration of random PB systems.

#include <gtest/gtest.h>

#include <optional>

#include "pb/constraint.hpp"
#include "pb/encodings.hpp"
#include "pb/propagator.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace optalloc::pb {
namespace {

using sat::LBool;
using sat::Lit;
using sat::neg;
using sat::pos;
using sat::Solver;
using sat::Var;

TEST(Normalize, MergesDuplicateTerms) {
  // 2x + 3x >= 4  ->  5x >= 4 (saturated to 4x >= 4 -> unit).
  const Constraint c = normalize_ge(
      std::vector<Term>{{2, pos(0)}, {3, pos(0)}}, 4);
  ASSERT_EQ(c.terms.size(), 1u);
  EXPECT_EQ(c.terms[0].lit, pos(0));
  EXPECT_EQ(c.terms[0].coef, c.rhs);
}

TEST(Normalize, CancelsOpposingLiterals) {
  // 3x + 2~x >= 3  ->  x + 2 >= 3  ->  x >= 1.
  const Constraint c = normalize_ge(
      std::vector<Term>{{3, pos(0)}, {2, neg(0)}}, 3);
  ASSERT_EQ(c.terms.size(), 1u);
  EXPECT_EQ(c.terms[0].lit, pos(0));
  EXPECT_EQ(c.rhs, 1);
}

TEST(Normalize, NegativeCoefficientsFlipLiterals) {
  // -2x + 3y >= 1  ->  3y + 2~x >= 3.
  const Constraint c = normalize_ge(
      std::vector<Term>{{-2, pos(0)}, {3, pos(1)}}, 1);
  ASSERT_EQ(c.terms.size(), 2u);
  EXPECT_EQ(c.rhs, 3);
  EXPECT_EQ(c.terms[0].coef, 3);
  EXPECT_EQ(c.terms[0].lit, pos(1));
  EXPECT_EQ(c.terms[1].coef, 2);
  EXPECT_EQ(c.terms[1].lit, neg(0));
}

TEST(Normalize, LeIsGeOfNegation) {
  // 2x + y <= 1  ==  2~x + ~y >= 2.
  const Constraint c = normalize_le(
      std::vector<Term>{{2, pos(0)}, {1, pos(1)}}, 1);
  std::int64_t total = 0;
  for (const auto& t : c.terms) {
    EXPECT_TRUE(t.lit.sign());
    total += t.coef;
  }
  EXPECT_EQ(total - c.rhs, 1);  // slack when everything is true... x=0,y=0
}

TEST(Normalize, SaturationClampsOversizedCoefs) {
  const Constraint c = normalize_ge(
      std::vector<Term>{{100, pos(0)}, {2, pos(1)}, {2, pos(2)}}, 3);
  EXPECT_EQ(c.terms[0].coef, 3);  // 100 clamped to rhs
}

TEST(PbPropagator, CardinalityAtLeastTwo) {
  Solver s;
  PbPropagator pb(s);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(pos(s.new_var()));
  std::vector<Term> terms;
  for (const Lit l : lits) terms.push_back({1, l});
  ASSERT_TRUE(pb.add_ge(terms, 2));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  int count = 0;
  for (const Lit l : lits) count += (s.model_value(l) == LBool::kTrue);
  EXPECT_GE(count, 2);
}

TEST(PbPropagator, ConflictWhenTooManyForcedFalse) {
  Solver s;
  PbPropagator pb(s);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(pos(s.new_var()));
  std::vector<Term> terms;
  for (const Lit l : lits) terms.push_back({1, l});
  ASSERT_TRUE(pb.add_ge(terms, 3));
  // Forbid two of them: only two remain but three are needed.
  ASSERT_TRUE(s.add_unit(~lits[0]));
  s.add_unit(~lits[1]);
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(PbPropagator, WeightedImplication) {
  // 5a + 2b + 2c >= 5 with a=false requires ... UNSAT (2+2 < 5).
  Solver s;
  PbPropagator pb(s);
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(pb.add_ge(
      std::vector<Term>{{5, pos(a)}, {2, pos(b)}, {2, pos(c)}}, 5));
  ASSERT_EQ(s.solve({neg(a)}), LBool::kFalse);
  // With a free, solutions exist and must set a=true.
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(a), LBool::kTrue);
}

TEST(PbPropagator, TopLevelImplicationAtAddTime) {
  Solver s;
  PbPropagator pb(s);
  const Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_unit(neg(b)));
  // 3a + 2b >= 3 with b already false forces a immediately.
  ASSERT_TRUE(pb.add_ge(std::vector<Term>{{3, pos(a)}, {2, pos(b)}}, 3));
  EXPECT_EQ(s.value(a), LBool::kTrue);
}

TEST(PbPropagator, TriviallyFalseConstraintMakesSolverUnsat) {
  Solver s;
  PbPropagator pb(s);
  const Var a = s.new_var();
  EXPECT_FALSE(pb.add_ge(std::vector<Term>{{1, pos(a)}}, 2));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(PbPropagator, EqualityConstraint) {
  Solver s;
  PbPropagator pb(s);
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(pos(s.new_var()));
  std::vector<Term> terms;
  for (const Lit l : lits) terms.push_back({1, l});
  ASSERT_TRUE(pb.add_eq(terms, 2));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  int count = 0;
  for (const Lit l : lits) count += (s.model_value(l) == LBool::kTrue);
  EXPECT_EQ(count, 2);
}

TEST(Encodings, AtMostOnePairwise) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(pos(s.new_var()));
  ASSERT_TRUE(encode_at_most_one(s, lits, AmoEncoding::kPairwise));
  ASSERT_TRUE(s.add_unit(lits[1]));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  for (int i = 0; i < 5; ++i) {
    if (i != 1) {
      EXPECT_EQ(s.model_value(lits[i]), LBool::kFalse);
    }
  }
}

TEST(Encodings, AtMostOneSequential) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 6; ++i) lits.push_back(pos(s.new_var()));
  ASSERT_TRUE(encode_at_most_one(s, lits, AmoEncoding::kSequential));
  ASSERT_TRUE(s.add_unit(lits[3]));
  s.add_unit(lits[5]);  // second true literal -> top-level conflict
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Encodings, ExactlyOneForcesLastCandidate) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(pos(s.new_var()));
  ASSERT_TRUE(encode_exactly_one(s, lits));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(s.add_unit(~lits[i]));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(lits[3]), LBool::kTrue);
}

class AtMostKTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AtMostKTest, CountsRespectBound) {
  const auto [n, k] = GetParam();
  // Enumerate all assignments by solving repeatedly with blocking clauses;
  // verify each model respects the bound and the model count matches
  // sum_{i<=k} C(n, i).
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) lits.push_back(pos(s.new_var()));
  ASSERT_TRUE(encode_at_most_k(s, lits, k));
  std::int64_t models = 0;
  while (s.solve() == LBool::kTrue) {
    int count = 0;
    std::vector<Lit> blocking;
    for (const Lit l : lits) {
      const bool val = s.model_value(l) == LBool::kTrue;
      count += val;
      blocking.push_back(val ? ~l : l);
    }
    ASSERT_LE(count, k);
    ++models;
    ASSERT_LT(models, 1 << n) << "runaway enumeration";
    if (!s.add_clause(blocking)) break;  // blocked the last model
  }
  auto choose = [](std::int64_t nn, std::int64_t kk) {
    std::int64_t r = 1;
    for (std::int64_t i = 0; i < kk; ++i) r = r * (nn - i) / (i + 1);
    return r;
  };
  std::int64_t expected = 0;
  for (int i = 0; i <= k; ++i) expected += choose(n, i);
  EXPECT_EQ(models, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtMostKTest,
                         ::testing::Values(std::pair{4, 1}, std::pair{4, 2},
                                           std::pair{5, 3}, std::pair{6, 2},
                                           std::pair{6, 5}, std::pair{3, 0}));

TEST(Encodings, AtLeastK) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(pos(s.new_var()));
  ASSERT_TRUE(encode_at_least_k(s, lits, 4));
  ASSERT_TRUE(s.add_unit(~lits[0]));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(s.model_value(lits[i]), LBool::kTrue);
  }
  s.add_unit(~lits[1]);
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(Encodings, BddMatchesWeightedConstraint) {
  // 4a + 3b + 2c + d >= 6: enumerate all 16 assignments via blocking and
  // check against direct evaluation.
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(pos(s.new_var()));
  const Constraint c = normalize_ge(
      std::vector<Term>{
          {4, lits[0]}, {3, lits[1]}, {2, lits[2]}, {1, lits[3]}},
      6);
  ASSERT_TRUE(encode_pb_bdd(s, c));
  std::int64_t models = 0;
  while (s.solve() == LBool::kTrue) {
    std::int64_t sum = 0;
    std::vector<Lit> blocking;
    const std::int64_t weights[] = {4, 3, 2, 1};
    for (int i = 0; i < 4; ++i) {
      const bool val = s.model_value(lits[i]) == LBool::kTrue;
      sum += val ? weights[i] : 0;
      blocking.push_back(val ? ~lits[i] : lits[i]);
    }
    EXPECT_GE(sum, 6);
    ++models;
    ASSERT_LE(models, 16);
    if (!s.add_clause(blocking)) break;
  }
  // Count assignments with 4a+3b+2c+d >= 6 by hand: enumerate.
  std::int64_t expected = 0;
  for (int m = 0; m < 16; ++m) {
    const std::int64_t sum = 4 * ((m >> 0) & 1) + 3 * ((m >> 1) & 1) +
                             2 * ((m >> 2) & 1) + 1 * ((m >> 3) & 1);
    expected += (sum >= 6);
  }
  EXPECT_EQ(models, expected);
}

// ---------------------------------------------------------------------
// Fuzz: random PB systems, three back-ends vs brute force.
// ---------------------------------------------------------------------

struct RawConstraint {
  std::vector<Term> terms;
  std::int64_t rhs;
};

bool eval_system(const std::vector<RawConstraint>& sys, std::uint32_t m) {
  for (const auto& rc : sys) {
    std::int64_t sum = 0;
    for (const Term& t : rc.terms) {
      const bool val = ((m >> t.lit.var()) & 1u) != t.lit.sign();
      if (val) sum += t.coef;
    }
    if (sum < rc.rhs) return false;
  }
  return true;
}

std::optional<std::uint32_t> brute_force_pb(
    int num_vars, const std::vector<RawConstraint>& sys) {
  for (std::uint32_t m = 0; m < (1u << num_vars); ++m) {
    if (eval_system(sys, m)) return m;
  }
  return std::nullopt;
}

enum class Backend { kNative, kBdd };

class PbFuzz : public ::testing::TestWithParam<Backend> {};

TEST_P(PbFuzz, AgreesWithBruteForce) {
  Rng rng(0xFEED);
  int sat_seen = 0, unsat_seen = 0;
  for (int round = 0; round < 200; ++round) {
    const int num_vars = 6;
    const int num_constraints = static_cast<int>(rng.uniform(1, 5));
    std::vector<RawConstraint> sys;
    for (int i = 0; i < num_constraints; ++i) {
      RawConstraint rc;
      const int width = static_cast<int>(rng.uniform(1, 4));
      for (int j = 0; j < width; ++j) {
        rc.terms.push_back({rng.uniform(-4, 4),
                            Lit(static_cast<Var>(rng.index(num_vars)),
                                rng.chance(0.5))});
      }
      rc.rhs = rng.uniform(-3, 6);
      sys.push_back(rc);
    }
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    PbPropagator native(s);
    bool trivially_unsat = false;
    for (const auto& rc : sys) {
      const Constraint c = normalize_ge(rc.terms, rc.rhs);
      const bool added = GetParam() == Backend::kNative
                             ? native.add(c)
                             : encode_pb_bdd(s, c);
      if (!added) trivially_unsat = true;
    }
    const auto reference = brute_force_pb(num_vars, sys);
    if (trivially_unsat) {
      EXPECT_FALSE(reference.has_value()) << "round " << round;
      ++unsat_seen;
      continue;
    }
    const LBool verdict = s.solve();
    ASSERT_EQ(verdict == LBool::kTrue, reference.has_value())
        << "round " << round;
    if (verdict == LBool::kTrue) {
      // Model must satisfy the original system.
      std::uint32_t m = 0;
      for (int v = 0; v < num_vars; ++v) {
        if (s.model_value(static_cast<Var>(v)) == LBool::kTrue) {
          m |= 1u << v;
        }
      }
      EXPECT_TRUE(eval_system(sys, m)) << "round " << round;
      ++sat_seen;
    } else {
      ++unsat_seen;
    }
  }
  EXPECT_GT(sat_seen, 10);
  EXPECT_GT(unsat_seen, 10);
}

INSTANTIATE_TEST_SUITE_P(Backends, PbFuzz,
                         ::testing::Values(Backend::kNative, Backend::kBdd));

TEST(PbFuzzMixed, NativePlusClausesUnderAssumptions) {
  // PB constraints and plain clauses together, solved repeatedly under
  // random assumptions — stresses slack restoration across backtracking.
  Rng rng(0xBEEF);
  for (int round = 0; round < 100; ++round) {
    const int num_vars = 7;
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    PbPropagator pb(s);
    std::vector<RawConstraint> sys;
    bool trivially_unsat = false;
    for (int i = 0; i < 3; ++i) {
      RawConstraint rc;
      for (int j = 0; j < 3; ++j) {
        rc.terms.push_back({rng.uniform(1, 4),
                            Lit(static_cast<Var>(rng.index(num_vars)),
                                rng.chance(0.5))});
      }
      rc.rhs = rng.uniform(1, 5);
      sys.push_back(rc);
      if (!pb.add_ge(rc.terms, rc.rhs)) trivially_unsat = true;
    }
    if (trivially_unsat) continue;
    for (int q = 0; q < 6; ++q) {
      std::vector<Lit> assumptions;
      for (int v = 0; v < num_vars; ++v) {
        if (rng.chance(0.25)) {
          assumptions.push_back(Lit(static_cast<Var>(v), rng.chance(0.5)));
        }
      }
      auto conditioned = sys;
      for (const Lit a : assumptions) {
        conditioned.push_back({{{1, a}}, 1});
      }
      const auto reference = brute_force_pb(num_vars, conditioned);
      const LBool verdict = s.solve(assumptions);
      ASSERT_EQ(verdict == LBool::kTrue, reference.has_value())
          << "round " << round << " query " << q;
    }
  }
}

}  // namespace
}  // namespace optalloc::pb

// Tests for the heuristic allocators (simulated annealing, greedy,
// exhaustive) and the central optimality cross-check: on random small
// instances the SAT optimizer must (a) agree exactly with exhaustive
// search where the latter is exact, (b) never be beaten by any heuristic,
// and (c) always produce verifier-approved allocations.

#include <gtest/gtest.h>

#include "alloc/optimizer.hpp"
#include "heur/annealing.hpp"
#include "heur/common.hpp"
#include "heur/exhaustive.hpp"
#include "heur/greedy.hpp"
#include "rt/verify.hpp"
#include "util/rng.hpp"

namespace optalloc::heur {
namespace {

using alloc::Objective;
using alloc::Problem;
using rt::Medium;
using rt::MediumType;
using rt::Task;
using rt::Ticks;

Task make_task(std::string name, Ticks period, Ticks deadline,
               std::vector<Ticks> wcet) {
  Task t;
  t.name = std::move(name);
  t.period = period;
  t.deadline = deadline;
  t.wcet = std::move(wcet);
  return t;
}

Medium make_ring(std::string name, std::vector<int> ecus, Ticks slot_min = 1,
                 Ticks slot_max = 8) {
  Medium m;
  m.name = std::move(name);
  m.type = MediumType::kTokenRing;
  m.ecus = std::move(ecus);
  m.ring_byte_ticks = 1;
  m.slot_min = slot_min;
  m.slot_max = slot_max;
  return m;
}

Problem small_ring_problem() {
  Problem p;
  Task a = make_task("A", 100, 50, {10, 12});
  Task b = make_task("B", 100, 100, {20, 25});
  Task c = make_task("C", 200, 150, {15, 15});
  a.messages.push_back({1, 3, 60, 0});
  p.tasks.tasks = {a, b, c};
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring("ring", {0, 1})};
  return p;
}

TEST(Common, CompleteAllocationBuildsRoutesAndSlots) {
  const Problem p = small_ring_problem();
  const net::PathClosures closures(p.arch);
  const auto alloc = complete_allocation(p, closures, {0, 1, 0});
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->msg_route[0], (std::vector<int>{0}));
  // Single leg: the whole end-to-end deadline becomes the local budget.
  EXPECT_EQ(alloc->msg_local_deadline[0], (std::vector<Ticks>{60}));
  // Sender's slot grows to the message size (3 bytes -> 3 ticks).
  EXPECT_EQ(alloc->slots[0][0], 3);
  EXPECT_EQ(alloc->slots[0][1], 1);
}

TEST(Common, CompleteAllocationIntraEcuMessage) {
  const Problem p = small_ring_problem();
  const net::PathClosures closures(p.arch);
  const auto alloc = complete_allocation(p, closures, {0, 0, 1});
  ASSERT_TRUE(alloc.has_value());
  EXPECT_TRUE(alloc->msg_route[0].empty());
  EXPECT_EQ(alloc->slots[0][0], 1);  // no bus traffic at all
}

TEST(Common, ObjectiveValueMatchesDefinition) {
  const Problem p = small_ring_problem();
  const net::PathClosures closures(p.arch);
  const auto alloc = complete_allocation(p, closures, {0, 1, 0});
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(objective_value(p, Objective::ring_trt(0), *alloc), 4);
  EXPECT_EQ(objective_value(p, Objective::sum_trt(), *alloc), 4);
}

TEST(Greedy, FindsFeasibleAllocation) {
  const Problem p = small_ring_problem();
  const GreedyResult res = greedy_allocate(p, Objective::ring_trt(0));
  ASSERT_TRUE(res.feasible);
  const auto report = rt::verify(p.tasks, p.arch, res.allocation);
  EXPECT_TRUE(report.feasible);
}

TEST(Greedy, RespectsSeparation) {
  Problem p = small_ring_problem();
  p.tasks.tasks[0].separated_from = {1};
  p.tasks.tasks[1].separated_from = {0};
  const GreedyResult res = greedy_allocate(p, Objective::feasibility());
  ASSERT_TRUE(res.feasible);
  EXPECT_NE(res.allocation.task_ecu[0], res.allocation.task_ecu[1]);
}

TEST(Greedy, ReportsInfeasibleWhenNoEcuFits) {
  Problem p;
  p.tasks.tasks = {make_task("A", 10, 10, {8}),
                   make_task("B", 10, 10, {8})};
  p.arch.num_ecus = 1;
  p.arch.media = {make_ring("ring", {0})};
  const GreedyResult res = greedy_allocate(p, Objective::feasibility());
  EXPECT_FALSE(res.feasible);
}

TEST(Annealing, FindsFeasibleAllocationDeterministically) {
  const Problem p = small_ring_problem();
  AnnealingOptions opts;
  opts.seed = 42;
  opts.iterations = 3000;
  const AnnealingResult r1 = anneal(p, Objective::ring_trt(0), opts);
  const AnnealingResult r2 = anneal(p, Objective::ring_trt(0), opts);
  ASSERT_TRUE(r1.feasible);
  EXPECT_EQ(r1.cost, r2.cost);
  const auto report = rt::verify(p.tasks, p.arch, r1.allocation);
  EXPECT_TRUE(report.feasible);
}

TEST(Annealing, ReachesTheOptimumOnTinyInstance) {
  // Optimal TRT = 2 (co-locate, all slots minimal); SA should find it.
  Problem p;
  Task a = make_task("A", 100, 50, {10, 12});
  Task b = make_task("B", 100, 100, {20, 25});
  a.messages.push_back({1, 4, 60, 0});
  p.tasks.tasks = {a, b};
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring("ring", {0, 1})};
  AnnealingOptions opts;
  opts.seed = 7;
  opts.iterations = 4000;
  const AnnealingResult res = anneal(p, Objective::ring_trt(0), opts);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.cost, 2);
}

TEST(Exhaustive, MatchesHandComputedOptimum) {
  Problem p = small_ring_problem();
  p.tasks.tasks[0].separated_from = {1};
  const auto res = exhaustive_search(p, Objective::ring_trt(0));
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(res->feasible);
  EXPECT_TRUE(res->exact);
  EXPECT_EQ(res->cost, 4);  // sender slot 3 + other slot 1
}

TEST(Exhaustive, DetectsInfeasibility) {
  Problem p;
  p.tasks.tasks = {make_task("A", 10, 10, {8}),
                   make_task("B", 10, 10, {8})};
  p.arch.num_ecus = 1;
  p.arch.media = {make_ring("ring", {0})};
  const auto res = exhaustive_search(p, Objective::feasibility());
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(res->feasible);
}

TEST(Exhaustive, RefusesOversizedGrids) {
  Problem p;
  for (int i = 0; i < 30; ++i) {
    p.tasks.tasks.push_back(make_task("T" + std::to_string(i), 100, 100,
                                      std::vector<Ticks>(8, 5)));
  }
  p.arch.num_ecus = 8;
  p.arch.media = {make_ring("ring", {0, 1, 2, 3, 4, 5, 6, 7})};
  ExhaustiveOptions opts;
  opts.max_combinations = 1000;
  EXPECT_FALSE(exhaustive_search(p, Objective::feasibility(), opts)
                   .has_value());
}

// ---------------------------------------------------------------------
// The central property: SAT optimizer vs ground truth on random instances.
// ---------------------------------------------------------------------

Problem random_problem(Rng& rng, bool with_messages) {
  Problem p;
  const int num_ecus = static_cast<int>(rng.uniform(1, 3));
  const int num_tasks = static_cast<int>(rng.uniform(2, 4));
  p.arch.num_ecus = num_ecus;
  std::vector<int> all;
  for (int e = 0; e < num_ecus; ++e) all.push_back(e);
  p.arch.media = {make_ring("ring", all, 1, 6)};

  for (int i = 0; i < num_tasks; ++i) {
    const Ticks period = 50 * rng.uniform(2, 6);
    const Ticks deadline = std::max<Ticks>(20, period - 50 * rng.uniform(0, 2));
    std::vector<Ticks> wcet;
    for (int e = 0; e < num_ecus; ++e) {
      wcet.push_back(rng.chance(0.15) ? rt::kForbidden
                                      : rng.uniform(5, 30));
    }
    bool any = false;
    for (const Ticks c : wcet) any |= (c != rt::kForbidden);
    if (!any) wcet[0] = 10;
    p.tasks.tasks.push_back(make_task("T" + std::to_string(i), period,
                                      deadline, wcet));
  }
  if (with_messages && num_tasks >= 2) {
    const int num_msgs = static_cast<int>(rng.uniform(1, 2));
    for (int m = 0; m < num_msgs; ++m) {
      const int from = static_cast<int>(rng.index(p.tasks.tasks.size()));
      int to = from;
      while (to == from) {
        to = static_cast<int>(rng.index(p.tasks.tasks.size()));
      }
      const Ticks deadline = rng.uniform(20, 80);
      p.tasks.tasks[static_cast<std::size_t>(from)].messages.push_back(
          {to, rng.uniform(1, 4), deadline, 0});
    }
  }
  if (num_tasks >= 2 && rng.chance(0.3)) {
    p.tasks.tasks[0].separated_from = {1};
    p.tasks.tasks[1].separated_from = {0};
  }
  // Occasional memory budgets and release jitter widen the constraint mix.
  if (rng.chance(0.3)) {
    p.arch.ecu_memory.assign(static_cast<std::size_t>(num_ecus), 0);
    p.arch.ecu_memory[0] = rng.uniform(5, 15);
    for (auto& t : p.tasks.tasks) t.memory = rng.uniform(1, 6);
  }
  if (rng.chance(0.25)) {
    p.tasks.tasks[rng.index(p.tasks.tasks.size())].release_jitter =
        rng.uniform(0, 10);
  }
  return p;
}

class OptimalityFuzz : public ::testing::TestWithParam<bool> {};

TEST_P(OptimalityFuzz, SatOptimumMatchesGroundTruth) {
  const bool with_messages = GetParam();
  Rng rng(with_messages ? 0x5A71 : 0x5A70);
  int optimal_seen = 0, infeasible_seen = 0, exact_checked = 0;
  for (int round = 0; round < 30; ++round) {
    const Problem p = random_problem(rng, with_messages);
    const auto truth = exhaustive_search(p, Objective::ring_trt(0));
    ASSERT_TRUE(truth.has_value()) << "grid unexpectedly large";
    const auto sat_res =
        alloc::optimize(p, Objective::ring_trt(0));
    if (!truth->feasible && truth->exact) {
      EXPECT_EQ(sat_res.status,
                alloc::OptimizeResult::Status::kInfeasible)
          << "round " << round;
      ++infeasible_seen;
      continue;
    }
    if (!truth->feasible) {
      // Heuristic completion failed but SAT may still find something; if
      // it does, it must verify.
      if (sat_res.status == alloc::OptimizeResult::Status::kOptimal) {
        const auto report = rt::verify(p.tasks, p.arch, sat_res.allocation);
        EXPECT_TRUE(report.feasible) << "round " << round;
      }
      continue;
    }
    ASSERT_EQ(sat_res.status, alloc::OptimizeResult::Status::kOptimal)
        << "round " << round
        << ": exhaustive found a feasible allocation, SAT did not";
    const auto report = rt::verify(p.tasks, p.arch, sat_res.allocation);
    ASSERT_TRUE(report.feasible)
        << "round " << round << ": "
        << (report.violations.empty() ? "" : report.violations[0]);
    // SAT optimum can never be worse than any feasible point.
    EXPECT_LE(sat_res.cost, truth->cost) << "round " << round;
    if (truth->exact) {
      EXPECT_EQ(sat_res.cost, truth->cost) << "round " << round;
      ++exact_checked;
    }
    ++optimal_seen;
  }
  EXPECT_GT(optimal_seen, 5);
  if (!with_messages) {
    EXPECT_GT(exact_checked, 5);
  }
  (void)infeasible_seen;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimalityFuzz, ::testing::Bool());

TEST(Baselines, SatNeverLosesToHeuristics) {
  Rng rng(0xB111);
  for (int round = 0; round < 10; ++round) {
    const Problem p = random_problem(rng, true);
    const auto sat_res = alloc::optimize(p, Objective::ring_trt(0));
    if (sat_res.status != alloc::OptimizeResult::Status::kOptimal) continue;
    AnnealingOptions opts;
    opts.seed = 1000 + static_cast<std::uint64_t>(round);
    opts.iterations = 2000;
    const AnnealingResult sa = anneal(p, Objective::ring_trt(0), opts);
    if (sa.feasible) {
      EXPECT_LE(sat_res.cost, sa.cost) << "round " << round;
    }
    const GreedyResult gr = greedy_allocate(p, Objective::ring_trt(0));
    if (gr.feasible) {
      EXPECT_LE(sat_res.cost, gr.cost) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace optalloc::heur

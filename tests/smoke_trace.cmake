# End-to-end telemetry smoke test (driven by ctest, see tests/CMakeLists):
# run allocate_file with --trace on the bundled gateway problem, then
# validate the emitted JSONL against the event schema.
#
# Expects: -DALLOCATE_FILE=<path> -DSCHEMA_CHECK=<path> -DPROBLEM=<path>
#          -DWORK_DIR=<scratch dir>

file(MAKE_DIRECTORY "${WORK_DIR}")
set(trace_file "${WORK_DIR}/smoke_trace.jsonl")

execute_process(
  COMMAND "${ALLOCATE_FILE}" "${PROBLEM}" sum-trt
          --trace "${trace_file}" --stats
  RESULT_VARIABLE allocate_status
  OUTPUT_VARIABLE allocate_output
  ERROR_VARIABLE allocate_output)
if(NOT allocate_status EQUAL 0)
  message(FATAL_ERROR
          "allocate_file failed (${allocate_status}):\n${allocate_output}")
endif()

execute_process(
  COMMAND "${SCHEMA_CHECK}" "${trace_file}"
  RESULT_VARIABLE check_status
  OUTPUT_VARIABLE check_output
  ERROR_VARIABLE check_output)
if(NOT check_status EQUAL 0)
  message(FATAL_ERROR
          "trace schema check failed (${check_status}):\n${check_output}")
endif()
message(STATUS "trace schema ok:\n${check_output}")

// Tests for path closures: the paper's Figure 1 example reproduced
// exactly, endpoint validity v(h), route enumeration, and topology
// validation.

#include <gtest/gtest.h>

#include <algorithm>

#include "net/paths.hpp"

namespace optalloc::net {
namespace {

rt::Medium ring(std::string name, std::vector<int> ecus) {
  rt::Medium m;
  m.name = std::move(name);
  m.type = rt::MediumType::kTokenRing;
  m.ecus = std::move(ecus);
  return m;
}

/// The paper's Fig. 1: k1 = {p1,p2,p3}, k2 = {p2,p4}, k3 = {p3,p5}.
/// 0-based ECUs: p1=0, p2=1, p3=2, p4=3, p5=4. Media: k1=0, k2=1, k3=2.
rt::Architecture figure1() {
  rt::Architecture arch;
  arch.num_ecus = 5;
  arch.media = {ring("k1", {0, 1, 2}), ring("k2", {1, 3}),
                ring("k3", {2, 4})};
  return arch;
}

TEST(Topology, Figure1IsValid) {
  EXPECT_TRUE(validate_topology(figure1()).empty());
}

TEST(Topology, TwoGatewaysBetweenMediaRejected) {
  rt::Architecture arch;
  arch.num_ecus = 4;
  arch.media = {ring("a", {0, 1, 2}), ring("b", {1, 2, 3})};
  const auto problems = validate_topology(arch);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("share 2 gateways"), std::string::npos);
}

TEST(Topology, OutOfRangeEcuRejected) {
  rt::Architecture arch;
  arch.num_ecus = 2;
  arch.media = {ring("a", {0, 5})};
  EXPECT_FALSE(validate_topology(arch).empty());
}

TEST(Topology, DuplicateEcuRejected) {
  rt::Architecture arch;
  arch.num_ecus = 3;
  arch.media = {ring("a", {0, 1, 1})};
  EXPECT_FALSE(validate_topology(arch).empty());
}

TEST(PathClosures, Figure1MaximalPaths) {
  const rt::Architecture arch = figure1();
  const PathClosures pc(arch);
  // Paper's closures: ph1 = {k1, k1k2}, ph2 = {k1, k1k3},
  // ph3 = {k2, k2k1, k2k1k3}, ph4 = {k3, k3k1, k3k1k2}.
  // Maximal paths: k1k2, k1k3, k2k1k3, k3k1k2.
  std::vector<Path> expected = {{0, 1}, {0, 2}, {1, 0, 2}, {2, 0, 1}};
  std::vector<Path> actual = pc.maximal_paths();
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(actual, expected);
}

TEST(PathClosures, Figure1AllRoutes) {
  const PathClosures pc(figure1());
  // Routes: {}, {k1}, {k2}, {k3}, {k1k2}, {k1k3}, {k2k1}, {k3k1},
  // {k2k1k3}, {k3k1k2}.
  EXPECT_EQ(pc.routes().size(), 10u);
  EXPECT_TRUE(pc.routes()[0].empty());
}

TEST(PathClosures, EndpointValidityEmptyRoute) {
  const PathClosures pc(figure1());
  EXPECT_TRUE(pc.valid_endpoints({}, 1, 1));
  EXPECT_FALSE(pc.valid_endpoints({}, 1, 2));
}

TEST(PathClosures, EndpointValiditySingleMedium) {
  const PathClosures pc(figure1());
  EXPECT_TRUE(pc.valid_endpoints({0}, 0, 1));   // p1 -> p2 on k1
  EXPECT_FALSE(pc.valid_endpoints({0}, 0, 3));  // p4 not on k1
  EXPECT_FALSE(pc.valid_endpoints({0}, 1, 1));  // same ECU needs no medium
}

TEST(PathClosures, EndpointValidityMultiHop) {
  const PathClosures pc(figure1());
  // p4 (ECU 3) -> p5 (ECU 4): must use k2 k1 k3.
  EXPECT_TRUE(pc.valid_endpoints({1, 0, 2}, 3, 4));
  // p2 (ECU 1, gateway of k1/k2) -> p5: k1 k3 is the valid route; starting
  // on k2 would violate the "sender not on second medium" condition.
  EXPECT_TRUE(pc.valid_endpoints({0, 2}, 1, 4));
  EXPECT_FALSE(pc.valid_endpoints({1, 0, 2}, 1, 4));
  // p1 -> p2, both on k1: multi-hop via k2 is non-minimal and rejected.
  EXPECT_FALSE(pc.valid_endpoints({0, 1}, 0, 1));
}

TEST(PathClosures, RoutesBetweenEnumeratesExactlyTheValidOnes) {
  const PathClosures pc(figure1());
  // p4 -> p5: only route k2 k1 k3.
  const auto routes = pc.routes_between(3, 4);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(pc.routes()[static_cast<std::size_t>(routes[0])],
            (Path{1, 0, 2}));
  // p1 -> p3 (both on k1): only the single-medium route.
  const auto same_medium = pc.routes_between(0, 2);
  ASSERT_EQ(same_medium.size(), 1u);
  EXPECT_EQ(pc.routes()[static_cast<std::size_t>(same_medium[0])], (Path{0}));
  // Same ECU: only the empty route.
  const auto self_routes = pc.routes_between(2, 2);
  ASSERT_EQ(self_routes.size(), 1u);
  EXPECT_TRUE(pc.routes()[static_cast<std::size_t>(self_routes[0])].empty());
}

TEST(PathClosures, LegStations) {
  const PathClosures pc(figure1());
  const Path h = {1, 0, 2};  // k2 -> k1 -> k3
  EXPECT_EQ(pc.leg_station(h, 0, 3), 3);  // sender p4
  EXPECT_EQ(pc.leg_station(h, 1, 3), 1);  // gateway p2 between k2 and k1
  EXPECT_EQ(pc.leg_station(h, 2, 3), 2);  // gateway p3 between k1 and k3
}

TEST(PathClosures, CyclicTopologyTerminates) {
  // Triangle of media — cycles in the media graph must not loop the DFS.
  rt::Architecture arch;
  arch.num_ecus = 3;
  arch.media = {ring("a", {0, 1}), ring("b", {1, 2}), ring("c", {2, 0})};
  const PathClosures pc(arch);
  // Simple paths only: max length 3.
  for (const Path& p : pc.maximal_paths()) {
    EXPECT_LE(p.size(), 3u);
  }
  // Both orientations around the triangle from each start: 6 maximal paths.
  EXPECT_EQ(pc.maximal_paths().size(), 6u);
}

TEST(PathClosures, IsolatedMediaHaveSingletonClosures) {
  rt::Architecture arch;
  arch.num_ecus = 4;
  arch.media = {ring("a", {0, 1}), ring("b", {2, 3})};
  const PathClosures pc(arch);
  std::vector<Path> expected = {{0}, {1}};
  std::vector<Path> actual = pc.maximal_paths();
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
  // No route between ECUs on different media.
  EXPECT_TRUE(pc.routes_between(0, 2).empty());
}

TEST(PathClosures, DescribeMentionsEveryMaximalPath) {
  const PathClosures pc(figure1());
  const std::string text = pc.describe();
  EXPECT_NE(text.find("k2 -> k1 -> k3"), std::string::npos);
  EXPECT_NE(text.find("k1 -> k2"), std::string::npos);
}

}  // namespace
}  // namespace optalloc::net

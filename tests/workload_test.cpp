// Tests for the benchmark workloads: structural properties of the
// Tindell-style system (counts, chains, restrictions), prefix slicing,
// CAN conversion, architectures A/B/C topology validity, generator
// determinism, and feasibility of every benchmark instance (via the
// heuristics — the benches assume these instances are solvable).

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "alloc/io.hpp"
#include "heur/annealing.hpp"
#include "heur/greedy.hpp"
#include "net/paths.hpp"
#include "rt/verify.hpp"
#include "workload/generator.hpp"
#include "workload/tindell.hpp"

namespace optalloc::workload {
namespace {

TEST(Tindell, PublishedShape) {
  const alloc::Problem p = tindell_system();
  EXPECT_EQ(p.tasks.tasks.size(), 43u);
  EXPECT_EQ(p.arch.num_ecus, 8);
  ASSERT_EQ(p.arch.media.size(), 1u);
  EXPECT_EQ(p.arch.media[0].type, rt::MediumType::kTokenRing);
  EXPECT_EQ(p.arch.media[0].ecus.size(), 8u);

  // 12 chains -> every chain head is pinned; count pinned tasks and
  // messages.
  int pinned = 0, messages = 0, separated = 0;
  for (const rt::Task& t : p.tasks.tasks) {
    int allowed = 0;
    for (const rt::Ticks c : t.wcet) allowed += (c != rt::kForbidden);
    if (allowed == 1) ++pinned;
    messages += static_cast<int>(t.messages.size());
    separated += static_cast<int>(t.separated_from.size());
  }
  EXPECT_GE(pinned, 12);      // 12 chain heads + some chain tails
  EXPECT_GE(messages, 12);    // every chain has >= 1 message
  EXPECT_EQ(separated, 6);    // 3 redundant pairs, symmetric
}

TEST(Tindell, DeterministicConstruction) {
  const alloc::Problem a = tindell_system();
  const alloc::Problem b = tindell_system();
  ASSERT_EQ(a.tasks.tasks.size(), b.tasks.tasks.size());
  for (std::size_t i = 0; i < a.tasks.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks.tasks[i].period, b.tasks.tasks[i].period);
    EXPECT_EQ(a.tasks.tasks[i].wcet, b.tasks.tasks[i].wcet);
    EXPECT_EQ(a.tasks.tasks[i].messages.size(),
              b.tasks.tasks[i].messages.size());
  }
}

TEST(Tindell, ConstrainedDeadlinesAndValidMessages) {
  const alloc::Problem p = tindell_system();
  for (std::size_t i = 0; i < p.tasks.tasks.size(); ++i) {
    const rt::Task& t = p.tasks.tasks[i];
    EXPECT_LE(t.deadline, t.period) << t.name;
    EXPECT_GT(t.deadline, 0) << t.name;
    for (const rt::Message& m : t.messages) {
      EXPECT_GE(m.target_task, 0);
      EXPECT_LT(m.target_task, 43);
      EXPECT_NE(m.target_task, static_cast<int>(i));
      EXPECT_GT(m.deadline, 0);
      EXPECT_GT(m.size_bytes, 0);
    }
  }
}

TEST(Tindell, FeasibleByHeuristics) {
  const alloc::Problem p = tindell_system();
  const auto greedy = heur::greedy_allocate(p, alloc::Objective::ring_trt(0));
  ASSERT_TRUE(greedy.feasible);
  const auto report = rt::verify(p.tasks, p.arch, greedy.allocation);
  EXPECT_TRUE(report.feasible);
}

TEST(Tindell, PrefixSlicesConsistently) {
  const alloc::Problem p = tindell_prefix(12);
  EXPECT_EQ(p.tasks.tasks.size(), 12u);
  for (const rt::Task& t : p.tasks.tasks) {
    for (const rt::Message& m : t.messages) EXPECT_LT(m.target_task, 12);
    for (const int j : t.separated_from) EXPECT_LT(j, 12);
  }
  EXPECT_THROW(tindell_prefix(0), std::invalid_argument);
  EXPECT_THROW(tindell_prefix(44), std::invalid_argument);
}

TEST(Tindell, PrefixesAreFeasible) {
  for (const int n : {7, 12, 20, 30}) {
    const alloc::Problem p = tindell_prefix(n);
    const auto greedy =
        heur::greedy_allocate(p, alloc::Objective::feasibility());
    EXPECT_TRUE(greedy.feasible) << n << " tasks";
  }
}

TEST(Tindell, CanConversion) {
  const alloc::Problem p = with_can_bus(tindell_system());
  EXPECT_EQ(p.arch.media[0].type, rt::MediumType::kCan);
  const auto sa = heur::anneal(p, alloc::Objective::can_load(0),
                               {.seed = 3, .iterations = 4000});
  EXPECT_TRUE(sa.feasible);
}

TEST(Architectures, TopologiesAreValid) {
  for (const auto& p : {architecture_a(), architecture_b(),
                        architecture_c(), architecture_c(true)}) {
    EXPECT_TRUE(net::validate_topology(p.arch).empty());
  }
}

TEST(Architectures, ArchAHasGatewayOnlyNode) {
  const alloc::Problem p = architecture_a();
  EXPECT_EQ(p.arch.num_ecus, 9);
  EXPECT_EQ(p.arch.media.size(), 2u);
  EXPECT_TRUE(p.arch.is_gateway(8));
  EXPECT_FALSE(p.arch.can_host_tasks(8));
  // Tasks keep 8-ECU choice sets: ECU 8 forbidden for everyone.
  for (const rt::Task& t : p.tasks.tasks) {
    ASSERT_EQ(t.wcet.size(), 9u);
    EXPECT_EQ(t.wcet[8], rt::kForbidden);
  }
}

TEST(Architectures, ArchBThreeMediaTwoGateways) {
  const alloc::Problem p = architecture_b();
  EXPECT_EQ(p.arch.num_ecus, 12);
  EXPECT_EQ(p.arch.media.size(), 3u);
  EXPECT_FALSE(p.arch.can_host_tasks(8));
  EXPECT_FALSE(p.arch.can_host_tasks(9));
  EXPECT_TRUE(p.arch.can_host_tasks(10));
  // Leaf-to-leaf routes cross all three media.
  const net::PathClosures pc(p.arch);
  const auto routes = pc.routes_between(0, 4);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(pc.routes()[static_cast<std::size_t>(routes[0])].size(), 3u);
}

TEST(Architectures, ArchCGatewayHostsTasks) {
  const alloc::Problem p = architecture_c();
  EXPECT_EQ(p.arch.num_ecus, 10);
  EXPECT_TRUE(p.arch.is_gateway(0));
  EXPECT_TRUE(p.arch.can_host_tasks(0));
  EXPECT_EQ(p.arch.media[1].slot_min, 0);  // upper ring can go silent
  // The added upper-ring ECUs are communication peripherals: no tasks.
  for (const rt::Task& t : p.tasks.tasks) {
    ASSERT_EQ(t.wcet.size(), 10u);
    EXPECT_EQ(t.wcet[8], rt::kForbidden);
    EXPECT_EQ(t.wcet[9], rt::kForbidden);
  }
  // Reduced-size variant used by the default bench run.
  EXPECT_EQ(architecture_c(false, 24).tasks.tasks.size(), 24u);
}

TEST(Architectures, ArchCFeasibleWithFlatPlacement) {
  // The flat system's greedy allocation, extended with zero upper-ring
  // slots, must stay feasible on architecture C — that is the paper's
  // observation that C reproduces the flat optimum.
  const alloc::Problem flat = tindell_system();
  const auto greedy =
      heur::greedy_allocate(flat, alloc::Objective::ring_trt(0));
  ASSERT_TRUE(greedy.feasible);
  const alloc::Problem c = architecture_c();
  rt::Allocation alloc = greedy.allocation;
  alloc.slots.push_back({0, 0, 0});  // silent upper ring
  const auto report = rt::verify(c.tasks, c.arch, alloc);
  EXPECT_TRUE(report.feasible)
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(Generator, ScalingSeriesKeepsTaskShape) {
  const alloc::Problem a = scaling_system(8);
  const alloc::Problem b = scaling_system(16);
  EXPECT_EQ(a.tasks.tasks.size(), 30u);
  EXPECT_EQ(b.tasks.tasks.size(), 30u);
  EXPECT_EQ(a.arch.num_ecus, 8);
  EXPECT_EQ(b.arch.num_ecus, 16);
  // Same seed -> same periods (WCETs rescale with utilization).
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.tasks.tasks[i].period, b.tasks.tasks[i].period);
  }
}

TEST(Generator, ScalingInstancesFeasible) {
  // Greedy handles the dense 8-ECU instance; the sparser large rings
  // need annealing (bus messages become mandatory and greedy's one-pass
  // placement misses the required co-locations).
  for (const int ecus : {8, 16, 32}) {
    const alloc::Problem p = scaling_system(ecus);
    const auto sa =
        heur::anneal(p, alloc::Objective::feasibility(),
                     {.seed = 9, .iterations = 4000});
    EXPECT_TRUE(sa.feasible) << ecus << " ECUs";
  }
}

TEST(Generator, UtilizationWithinBounds) {
  GenOptions options;
  options.num_tasks = 20;
  options.num_ecus = 4;
  options.utilization = 0.5;
  const alloc::Problem p = generate(options);
  double total = 0.0;
  for (const rt::Task& t : p.tasks.tasks) {
    rt::Ticks cheapest = rt::kForbidden;
    for (const rt::Ticks c : t.wcet) {
      if (c == rt::kForbidden) continue;
      cheapest = cheapest == rt::kForbidden ? c : std::min(cheapest, c);
    }
    ASSERT_NE(cheapest, rt::kForbidden);
    total += static_cast<double>(cheapest) / static_cast<double>(t.period);
  }
  // Total demand close to utilization * num_ecus (integer rounding slack).
  EXPECT_LT(total, 0.5 * 4 * 1.6);
  EXPECT_GT(total, 0.15);
}

TEST(Generator, SeedChangesInstance) {
  GenOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const alloc::Problem pa = generate(a);
  const alloc::Problem pb = generate(b);
  bool different = false;
  for (std::size_t i = 0; i < pa.tasks.tasks.size(); ++i) {
    different |= pa.tasks.tasks[i].period != pb.tasks.tasks[i].period;
    different |= pa.tasks.tasks[i].wcet != pb.tasks.tasks[i].wcet;
  }
  EXPECT_TRUE(different);
}

TEST(Generator, SameSeedIsByteIdentical) {
  // The service's result cache keys on serialized instance content, so
  // the generator must be bit-for-bit reproducible, not just "similar".
  GenOptions options;
  options.num_tasks = 24;
  options.num_ecus = 6;
  options.seed = 0xD57E12;
  std::ostringstream first, second;
  alloc::write_problem(first, generate(options));
  alloc::write_problem(second, generate(options));
  EXPECT_EQ(first.str(), second.str());

  options.seed ^= 1;
  std::ostringstream other;
  alloc::write_problem(other, generate(options));
  EXPECT_NE(first.str(), other.str());
}

TEST(Units, TickConversion) {
  EXPECT_DOUBLE_EQ(to_ms(4), 1.0);
  EXPECT_DOUBLE_EQ(to_ms(34), 8.5);
}

}  // namespace
}  // namespace optalloc::workload

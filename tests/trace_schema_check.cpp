// Standalone JSONL trace validator, used by the `smoke_allocate_trace`
// and `svc_smoke` ctest targets (and handy manually:
// `trace_schema_check run.jsonl`). Checks that every line is a JSON
// object carrying the standard fields, that the per-type required fields
// are present, that every span_end matches a span_begin with the same
// req+span, that every "flight_dump" post-mortem embeds schema-valid
// events with a matching "count", and — in service traces — that every
// solver-side event carries a "req" correlation field; prints a per-type
// event census on success.
//
// Exit status: 0 = valid, 1 = schema violation, 2 = usage/IO error.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace {

using optalloc::obs::JsonValue;

/// type -> fields that must be present on every event of that type.
const std::map<std::string, std::vector<const char*>>& required_fields() {
  static const std::map<std::string, std::vector<const char*>> kSchema = {
      {"solve", {"call", "result", "conflicts", "seconds"}},
      {"interval", {"lower", "upper", "sat_calls"}},
      {"optimum", {"status", "lower", "sat_calls", "seconds"}},
      // Portfolio bound propagation: a worker adopting the shared
      // interval (src/alloc/portfolio).
      {"bound_sync", {"lower", "upper"}},
      // Certification checkpoints (model / proof / allocation re-checks);
      // "error" and proof-lemma counts are conditional, "kind"/"ok" are not.
      {"certify", {"kind", "ok"}},
      {"solver_restart", {"restarts", "conflicts", "learnts"}},
      // Search-trajectory samples (sat::Solver::sample_interval).
      {"search_sample",
       {"conflicts", "restarts", "trail", "learnts", "props_per_sec",
        "conflicts_per_sec", "lbd_mean", "final"}},
      // Per-span hardware counters (obs/perfctr.hpp); absent siblings are
      // -1, never missing.
      {"perf_counters",
       {"name", "cycles", "instructions", "cache_references",
        "cache_misses", "branch_misses"}},
      // Flight-recorder post-mortems (deadline expiry, cancellation,
      // worker panic): carry the embedded ring contents.
      {"flight_dump", {"id", "reason", "count", "events"}},
      {"solver_gc", {"gc_runs", "arena_before", "arena_after"}},
      // Inprocessing passes (sat/inprocess.hpp): per-pass rewrite counts
      // and the arena words the pass turned into garbage.
      {"inprocess_pass",
       {"subsumed", "strengthened", "eliminated", "reclaimed_words",
        "seconds"}},
      {"portfolio_start", {"worker", "strategy", "backend"}},
      {"portfolio_finish", {"worker", "status"}},
      {"portfolio_cancel", {"worker"}},
      {"portfolio_win", {"winner", "status"}},
      {"anneal", {"feasible", "iterations", "accepted", "seconds"}},
      // Allocation service (alloc_serve) request lifecycle.
      {"request_received", {"id", "objective"}},
      {"cache_hit", {"id"}},
      // A scheduler worker caught an exception from the optimizer; the
      // job is failed, not lost.
      {"worker_panic", {"id", "error"}},
      {"deadline_expired", {"id"}},
      {"request_done", {"id", "state", "proven_optimal", "seconds"}},
      // Incremental re-solve sessions (session_open / revise verbs).
      {"session_open", {"session", "objective"}},
      // Every session solve (the opening solve has edits=0).
      {"revise", {"session", "edits", "status", "seconds"}},
      // Infeasible edits: the named constraint groups that conflict.
      {"unsat_core", {"session", "size", "core"}},
      {"session_close", {"session"}},
      // Request correlation (see src/obs/trace.hpp).
      {"span_begin", {"name", "span", "parent"}},
      {"span_end", {"name", "span", "parent", "seconds"}},
      {"metrics_snapshot", {"metrics"}},
      // Resource watermark crossings (obs/resource.hpp): level is "high"
      // on the way up, "normal" once usage falls back under the low mark.
      {"resource_watermark", {"resource", "level", "bytes", "threshold"}},
      {"service_stop", {"drain"}},
  };
  return kSchema;
}

/// Solver/optimizer-side event types: inside a service run every one of
/// them is emitted on behalf of some request and must carry "req".
bool solver_side(const std::string& type) {
  static const std::set<std::string> kTypes = {
      "solve",          "interval",       "optimum",       "solver_restart",
      "solver_gc",      "inprocess_pass", "bound_sync",    "portfolio_start",
      "portfolio_finish", "portfolio_cancel", "portfolio_win",
      "search_sample",  "perf_counters"};
  return kTypes.count(type) > 0;
}

/// One event embedded in a flight_dump's "events" array. Flight records
/// share the trace vocabulary but are numeric-only, so `search_sample`
/// lacks the "final" boolean; everything else matches the schema map.
bool check_embedded_event(int line_no, std::size_t idx, const JsonValue& ev) {
  const auto fail_at = [line_no, idx](const std::string& why) {
    std::fprintf(stderr,
                 "trace_schema_check: line %d: flight_dump event %zu: %s\n",
                 line_no, idx, why.c_str());
    return false;
  };
  if (!ev.is_object()) return fail_at("not a JSON object");
  const auto type = ev.get_string("type");
  if (!type) return fail_at("missing \"type\"");
  const auto ts = ev.get_number("ts");
  if (!ts || *ts < 0.0) return fail_at("missing/negative \"ts\"");
  if (!ev.get_number("tid")) return fail_at("missing \"tid\"");
  const auto& schema = required_fields();
  const auto it = schema.find(*type);
  if (it == schema.end()) return true;
  for (const char* field : it->second) {
    if (*type == "search_sample" && std::string(field) == "final") continue;
    if (!ev.get(field)) {
      return fail_at("event \"" + *type + "\" missing \"" + field + "\"");
    }
  }
  return true;
}

/// Cross-line state threaded through the whole trace.
struct TraceState {
  std::map<std::string, int> census;
  /// (req, span) pairs with an open span_begin (span ids are process-
  /// unique, so a pair can only be opened once).
  std::set<std::pair<std::uint64_t, std::uint64_t>> open_spans;
  int span_errors = 0;
  int solver_events_without_req = 0;
  int first_unattributed_line = 0;
};

bool fail(int line, const std::string& why) {
  std::fprintf(stderr, "trace_schema_check: line %d: %s\n", line,
               why.c_str());
  return false;
}

bool check_line(int line_no, const std::string& line, TraceState& state) {
  const auto parsed = optalloc::obs::json_parse(line);
  if (!parsed) return fail(line_no, "not valid JSON");
  if (!parsed->is_object()) return fail(line_no, "not a JSON object");
  const auto type = parsed->get_string("type");
  if (!type) return fail(line_no, "missing \"type\"");
  const auto ts = parsed->get_number("ts");
  if (!ts || *ts < 0.0) return fail(line_no, "missing/negative \"ts\"");
  if (!parsed->get_number("tid")) return fail(line_no, "missing \"tid\"");

  const auto& schema = required_fields();
  const auto it = schema.find(*type);
  if (it != schema.end()) {
    for (const char* field : it->second) {
      if (!parsed->get(field)) {
        return fail(line_no, "event \"" + *type + "\" missing \"" + field +
                                 "\"");
      }
    }
  }
  ++state.census[*type];

  if (*type == "flight_dump") {
    // The embedded ring contents must themselves be schema-valid events
    // (they are what a post-mortem consumer reads), and "count" must match.
    // They are validated but not folded into the census/span state: a
    // flight dump replays history the outer trace already accounts for.
    const JsonValue* events = parsed->get("events");
    if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
      return fail(line_no, "flight_dump \"events\" is not an array");
    }
    const auto count = parsed->get_number("count");
    if (!count || *count != static_cast<double>(events->array.size())) {
      return fail(line_no, "flight_dump \"count\" (" +
                               std::to_string(static_cast<long long>(
                                   count.value_or(-1.0))) +
                               ") != events length (" +
                               std::to_string(events->array.size()) + ")");
    }
    for (std::size_t i = 0; i < events->array.size(); ++i) {
      if (!check_embedded_event(line_no, i, events->array[i])) return false;
    }
  }

  const std::uint64_t req =
      static_cast<std::uint64_t>(parsed->get_number("req").value_or(0.0));
  if (*type == "span_begin" || *type == "span_end") {
    const auto key = std::make_pair(
        req,
        static_cast<std::uint64_t>(parsed->get_number("span").value_or(0.0)));
    if (*type == "span_begin") {
      if (!state.open_spans.insert(key).second) {
        ++state.span_errors;
        return fail(line_no, "duplicate span_begin for span " +
                                 std::to_string(key.second));
      }
    } else if (state.open_spans.erase(key) == 0) {
      ++state.span_errors;
      return fail(line_no,
                  "span_end without a matching span_begin (req " +
                      std::to_string(key.first) + ", span " +
                      std::to_string(key.second) + ")");
    }
  }
  if (req == 0 && solver_side(*type) &&
      state.solver_events_without_req++ == 0) {
    state.first_unattributed_line = line_no;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_schema_check: cannot open %s\n", argv[1]);
    return 2;
  }
  TraceState state;
  std::map<std::string, int>& census = state.census;
  std::string line;
  int line_no = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ok = check_line(line_no, line, state) && ok;
  }
  if (line_no == 0) {
    std::fprintf(stderr, "trace_schema_check: %s is empty\n", argv[1]);
    return 1;
  }
  for (const auto& [type, count] : census) {
    std::printf("%-16s %d\n", type.c_str(), count);
  }
  if (state.span_errors > 0) ok = false;
  // Service traces interleave many optimizer runs (and may contain none
  // at all when every request was a cache hit), so the single-run census
  // invariants below don't apply. Their own invariant: every request that
  // was received either finished or is still in flight — never more
  // completions than receipts — and a non-empty service trace must have
  // completed something. A trace holding only session traffic (the
  // revise verb) is a service trace too.
  if (census["request_received"] > 0 || census["session_open"] > 0) {
    if (census["request_received"] > 0 && census["request_done"] < 1) {
      std::fprintf(stderr,
                   "trace_schema_check: service trace without any "
                   "\"request_done\"\n");
      ok = false;
    }
    if (census["request_done"] > census["request_received"]) {
      std::fprintf(stderr,
                   "trace_schema_check: %d \"request_done\" for %d "
                   "\"request_received\"\n",
                   census["request_done"], census["request_received"]);
      ok = false;
    }
    if (census["cache_hit"] > census["request_received"]) {
      std::fprintf(stderr,
                   "trace_schema_check: more \"cache_hit\" than requests\n");
      ok = false;
    }
    // Sessions: the opening solve emits a "revise" event (edits=0), so a
    // trace can never hold more opens than solves; closes and cores are
    // bounded by their opens/solves.
    if (census["revise"] < census["session_open"]) {
      std::fprintf(stderr,
                   "trace_schema_check: %d \"revise\" for %d "
                   "\"session_open\" (the opening solve must emit one)\n",
                   census["revise"], census["session_open"]);
      ok = false;
    }
    if (census["session_close"] > census["session_open"]) {
      std::fprintf(stderr,
                   "trace_schema_check: more \"session_close\" than "
                   "\"session_open\"\n");
      ok = false;
    }
    if (census["unsat_core"] > census["revise"]) {
      std::fprintf(stderr,
                   "trace_schema_check: more \"unsat_core\" than "
                   "\"revise\"\n");
      ok = false;
    }
    if (census["revise"] > 0 && census["session_open"] == 0) {
      std::fprintf(stderr,
                   "trace_schema_check: \"revise\" without any "
                   "\"session_open\"\n");
      ok = false;
    }
    // A drained service trace must have closed every span it opened, and
    // every solver-side event must have been attributed to a request.
    if (!state.open_spans.empty()) {
      std::fprintf(stderr,
                   "trace_schema_check: %zu span_begin without span_end\n",
                   state.open_spans.size());
      ok = false;
    }
    if (state.solver_events_without_req > 0) {
      std::fprintf(stderr,
                   "trace_schema_check: %d solver events without \"req\" in "
                   "a service trace (first at line %d)\n",
                   state.solver_events_without_req,
                   state.first_unattributed_line);
      ok = false;
    }
    return ok ? 0 : 1;
  }
  // An optimizer run must have produced solves and a verdict: exactly one
  // "optimum" per optimize() call — a portfolio race has one per worker
  // plus a single "portfolio_win".
  if (census["solve"] < 1) {
    std::fprintf(stderr, "trace_schema_check: no \"solve\" events\n");
    ok = false;
  }
  const int workers = census["portfolio_start"];
  if (workers == 0 ? census["optimum"] != 1
                   : census["optimum"] < 1 || census["optimum"] > workers) {
    std::fprintf(stderr,
                 "trace_schema_check: saw %d \"optimum\" events for %d "
                 "optimizer runs\n",
                 census["optimum"], workers == 0 ? 1 : workers);
    ok = false;
  }
  if (workers > 0 && census["portfolio_win"] != 1) {
    std::fprintf(stderr,
                 "trace_schema_check: portfolio trace without exactly one "
                 "\"portfolio_win\"\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

// Standalone JSONL trace validator, used by the `smoke_allocate_trace`
// ctest target (and handy manually: `trace_schema_check run.jsonl`).
// Checks that every line is a JSON object carrying the standard fields
// and that the per-type required fields are present; prints a per-type
// event census on success.
//
// Exit status: 0 = valid, 1 = schema violation, 2 = usage/IO error.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using optalloc::obs::JsonValue;

/// type -> fields that must be present on every event of that type.
const std::map<std::string, std::vector<const char*>>& required_fields() {
  static const std::map<std::string, std::vector<const char*>> kSchema = {
      {"solve", {"call", "result", "conflicts", "seconds"}},
      {"interval", {"lower", "upper", "sat_calls"}},
      {"optimum", {"status", "lower", "sat_calls", "seconds"}},
      {"solver_restart", {"restarts", "conflicts", "learnts"}},
      {"solver_gc", {"gc_runs", "arena_before", "arena_after"}},
      {"portfolio_start", {"worker", "strategy", "backend"}},
      {"portfolio_finish", {"worker", "status"}},
      {"portfolio_cancel", {"worker"}},
      {"portfolio_win", {"winner", "status"}},
      {"anneal", {"feasible", "iterations", "accepted", "seconds"}},
      // Allocation service (alloc_serve) request lifecycle.
      {"request_received", {"id", "objective"}},
      {"cache_hit", {"id"}},
      {"deadline_expired", {"id"}},
      {"request_done", {"id", "state", "proven_optimal", "seconds"}},
  };
  return kSchema;
}

bool fail(int line, const std::string& why) {
  std::fprintf(stderr, "trace_schema_check: line %d: %s\n", line,
               why.c_str());
  return false;
}

bool check_line(int line_no, const std::string& line,
                std::map<std::string, int>& census) {
  const auto parsed = optalloc::obs::json_parse(line);
  if (!parsed) return fail(line_no, "not valid JSON");
  if (!parsed->is_object()) return fail(line_no, "not a JSON object");
  const auto type = parsed->get_string("type");
  if (!type) return fail(line_no, "missing \"type\"");
  const auto ts = parsed->get_number("ts");
  if (!ts || *ts < 0.0) return fail(line_no, "missing/negative \"ts\"");
  if (!parsed->get_number("tid")) return fail(line_no, "missing \"tid\"");

  const auto& schema = required_fields();
  const auto it = schema.find(*type);
  if (it != schema.end()) {
    for (const char* field : it->second) {
      if (!parsed->get(field)) {
        return fail(line_no, "event \"" + *type + "\" missing \"" + field +
                                 "\"");
      }
    }
  }
  ++census[*type];
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_schema_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::map<std::string, int> census;
  std::string line;
  int line_no = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ok = check_line(line_no, line, census) && ok;
  }
  if (line_no == 0) {
    std::fprintf(stderr, "trace_schema_check: %s is empty\n", argv[1]);
    return 1;
  }
  for (const auto& [type, count] : census) {
    std::printf("%-16s %d\n", type.c_str(), count);
  }
  // Service traces interleave many optimizer runs (and may contain none
  // at all when every request was a cache hit), so the single-run census
  // invariants below don't apply. Their own invariant: every request that
  // was received either finished or is still in flight — never more
  // completions than receipts — and a non-empty service trace must have
  // completed something.
  if (census["request_received"] > 0) {
    if (census["request_done"] < 1) {
      std::fprintf(stderr,
                   "trace_schema_check: service trace without any "
                   "\"request_done\"\n");
      ok = false;
    }
    if (census["request_done"] > census["request_received"]) {
      std::fprintf(stderr,
                   "trace_schema_check: %d \"request_done\" for %d "
                   "\"request_received\"\n",
                   census["request_done"], census["request_received"]);
      ok = false;
    }
    if (census["cache_hit"] > census["request_received"]) {
      std::fprintf(stderr,
                   "trace_schema_check: more \"cache_hit\" than requests\n");
      ok = false;
    }
    return ok ? 0 : 1;
  }
  // An optimizer run must have produced solves and a verdict: exactly one
  // "optimum" per optimize() call — a portfolio race has one per worker
  // plus a single "portfolio_win".
  if (census["solve"] < 1) {
    std::fprintf(stderr, "trace_schema_check: no \"solve\" events\n");
    ok = false;
  }
  const int workers = census["portfolio_start"];
  if (workers == 0 ? census["optimum"] != 1
                   : census["optimum"] < 1 || census["optimum"] > workers) {
    std::fprintf(stderr,
                 "trace_schema_check: saw %d \"optimum\" events for %d "
                 "optimizer runs\n",
                 census["optimum"], workers == 0 ? 1 : workers);
    ok = false;
  }
  if (workers > 0 && census["portfolio_win"] != 1) {
    std::fprintf(stderr,
                 "trace_schema_check: portfolio trace without exactly one "
                 "\"portfolio_win\"\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

// Tests for the bit-blasting encoder (paper Section 5.1): unit tests for
// each operator, and the central property test — random bounded-integer
// constraint systems are encoded, solved, and cross-checked against
// exhaustive enumeration through the IR evaluator, for both the CNF and
// the PB-mixed (paper eq. 19) backends.

#include <gtest/gtest.h>

#include <optional>

#include "encode/bitblast.hpp"
#include "ir/expr.hpp"
#include "pb/propagator.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace optalloc::encode {
namespace {

using ir::Context;
using ir::NodeId;
using sat::LBool;

struct Harness {
  Context ctx;
  sat::Solver solver;
  pb::PbPropagator pb{solver};
  BitBlaster bb;

  explicit Harness(Backend backend = Backend::kCnf)
      : bb(ctx, solver, &pb, Options{backend}) {}
};

TEST(BitBlast, ConstantsDecode) {
  Harness h;
  const NodeId c = h.ctx.constant(-42);
  h.bb.touch(c);
  ASSERT_EQ(h.solver.solve(), LBool::kTrue);
  EXPECT_EQ(h.bb.int_value(c), -42);
}

TEST(BitBlast, VariableRangeIsEnforced) {
  Harness h;
  const NodeId x = h.ctx.int_var("x", 3, 11);
  h.bb.touch(x);
  // Enumerate all models of x via blocking clauses on its bits.
  std::set<std::int64_t> seen;
  while (h.solver.solve() == LBool::kTrue) {
    const std::int64_t v = h.bb.int_value(x);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 11);
    seen.insert(v);
    std::vector<sat::Lit> blocking;
    for (const Bit b : h.bb.bits(x)) {
      if (!b.is_const()) {
        blocking.push_back(h.solver.model_value(b.lit) == LBool::kTrue
                               ? ~b.lit
                               : b.lit);
      }
    }
    if (!h.solver.add_clause(blocking)) break;
  }
  EXPECT_EQ(seen.size(), 9u);  // 3..11 inclusive
}

TEST(BitBlast, AdditionWithNegatives) {
  Harness h;
  const NodeId x = h.ctx.int_var("x", -8, 8);
  const NodeId y = h.ctx.int_var("y", -8, 8);
  const NodeId s = h.ctx.add(x, y);
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(x, h.ctx.constant(-5))));
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(y, h.ctx.constant(7))));
  h.bb.touch(s);
  ASSERT_EQ(h.solver.solve(), LBool::kTrue);
  EXPECT_EQ(h.bb.int_value(s), 2);
}

TEST(BitBlast, MultiplicationExactValues) {
  Harness h;
  const NodeId x = h.ctx.int_var("x", 0, 15);
  const NodeId y = h.ctx.int_var("y", 0, 15);
  const NodeId p = h.ctx.mul(x, y);
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(x, h.ctx.constant(13))));
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(y, h.ctx.constant(11))));
  h.bb.touch(p);
  ASSERT_EQ(h.solver.solve(), LBool::kTrue);
  EXPECT_EQ(h.bb.int_value(p), 143);
}

TEST(BitBlast, SignedMultiplication) {
  Harness h;
  const NodeId x = h.ctx.int_var("x", -10, 10);
  const NodeId y = h.ctx.int_var("y", -10, 10);
  const NodeId p = h.ctx.mul(x, y);
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(x, h.ctx.constant(-7))));
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(y, h.ctx.constant(6))));
  h.bb.touch(p);
  ASSERT_EQ(h.solver.solve(), LBool::kTrue);
  EXPECT_EQ(h.bb.int_value(p), -42);
}

TEST(BitBlast, DivisionFreeCeilingViaInequalities) {
  // The paper's substitution of the ceiling function (Section 3): I with
  // r <= I*t and (I-1)*t < r pins I to ceil(r/t).
  Harness h;
  const NodeId r = h.ctx.int_var("r", 0, 100);
  const NodeId i = h.ctx.int_var("I", 0, 20);
  const NodeId t = h.ctx.constant(7);
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(r, h.ctx.constant(50))));
  ASSERT_TRUE(h.bb.assert_true(h.ctx.le(r, h.ctx.mul(i, t))));
  ASSERT_TRUE(h.bb.assert_true(
      h.ctx.lt(h.ctx.mul(h.ctx.sub(i, h.ctx.constant(1)), t), r)));
  ASSERT_EQ(h.solver.solve(), LBool::kTrue);
  EXPECT_EQ(h.bb.int_value(i), 8);  // ceil(50/7)
}

TEST(BitBlast, IteSelectsBranch) {
  Harness h;
  const NodeId p = h.ctx.bool_var("p");
  const NodeId x = h.ctx.ite(p, h.ctx.constant(9), h.ctx.constant(4));
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(x, h.ctx.constant(4))));
  ASSERT_EQ(h.solver.solve(), LBool::kTrue);
  EXPECT_FALSE(h.bb.bool_value(p));
}

TEST(BitBlast, UnsatisfiableSystem) {
  Harness h;
  const NodeId x = h.ctx.int_var("x", 0, 20);
  ASSERT_TRUE(h.bb.assert_true(h.ctx.gt(x, h.ctx.constant(10))));
  h.bb.assert_true(h.ctx.lt(x, h.ctx.constant(5)));
  EXPECT_EQ(h.solver.solve(), LBool::kFalse);
}

TEST(BitBlast, FormulaLitAsAssumption) {
  // Guarded bounds: the optimizer's binary search assumes (cost <= M)
  // literals instead of asserting them.
  Harness h;
  const NodeId x = h.ctx.int_var("x", 0, 30);
  ASSERT_TRUE(h.bb.assert_true(h.ctx.ge(x, h.ctx.constant(12))));
  const sat::Lit le20 = h.bb.formula_lit(h.ctx.le(x, h.ctx.constant(20)));
  const sat::Lit le11 = h.bb.formula_lit(h.ctx.le(x, h.ctx.constant(11)));
  ASSERT_EQ(h.solver.solve({le20}), LBool::kTrue);
  const std::int64_t v = h.bb.int_value(x);
  EXPECT_GE(v, 12);
  EXPECT_LE(v, 20);
  EXPECT_EQ(h.solver.solve({le11}), LBool::kFalse);
  // Solver remains usable without assumptions.
  EXPECT_EQ(h.solver.solve(), LBool::kTrue);
}

TEST(BitBlast, PbBackendAgreesOnArithmetic) {
  Harness h(Backend::kPbMixed);
  const NodeId x = h.ctx.int_var("x", 0, 31);
  const NodeId y = h.ctx.int_var("y", 0, 31);
  ASSERT_TRUE(h.bb.assert_true(
      h.ctx.eq(h.ctx.add(x, y), h.ctx.constant(40))));
  ASSERT_TRUE(h.bb.assert_true(h.ctx.eq(
      h.ctx.mul(x, h.ctx.constant(3)), h.ctx.add(y, h.ctx.constant(20)))));
  ASSERT_EQ(h.solver.solve(), LBool::kTrue);
  // x + y = 40, 3x = y + 20  ->  x = 15, y = 25.
  EXPECT_EQ(h.bb.int_value(x), 15);
  EXPECT_EQ(h.bb.int_value(y), 25);
  EXPECT_GT(h.pb.num_constraints(), 0u);  // carries went through PB
}

// ------------------------------------------------------------------
// Property test: random systems vs exhaustive enumeration.
// ------------------------------------------------------------------

struct RandomSystem {
  std::vector<NodeId> int_vars;
  std::vector<NodeId> bool_vars;
  NodeId formula;
};

/// Build a random Boolean formula over small-range integer variables with
/// all operators exercised.
RandomSystem random_system(Context& ctx, Rng& rng) {
  RandomSystem sys;
  const int n_int = static_cast<int>(rng.uniform(1, 3));
  const int n_bool = static_cast<int>(rng.uniform(0, 2));
  for (int i = 0; i < n_int; ++i) {
    const std::int64_t lo = rng.uniform(-4, 2);
    const std::int64_t hi = lo + rng.uniform(1, 6);
    sys.int_vars.push_back(ctx.int_var("x" + std::to_string(i), lo, hi));
  }
  for (int i = 0; i < n_bool; ++i) {
    sys.bool_vars.push_back(ctx.bool_var("p" + std::to_string(i)));
  }

  // Random integer expression of bounded depth.
  std::function<NodeId(int)> int_expr = [&](int depth) -> NodeId {
    const auto pick = rng.uniform(0, depth <= 0 ? 1 : 5);
    switch (pick) {
      case 0: return ctx.constant(rng.uniform(-3, 5));
      case 1: return sys.int_vars[rng.index(sys.int_vars.size())];
      case 2: return ctx.add(int_expr(depth - 1), int_expr(depth - 1));
      case 3: return ctx.sub(int_expr(depth - 1), int_expr(depth - 1));
      case 4: return ctx.mul(int_expr(depth - 1), int_expr(depth - 1));
      default: {
        const NodeId c = sys.bool_vars.empty()
                             ? ctx.bool_const(rng.chance(0.5))
                             : sys.bool_vars[rng.index(sys.bool_vars.size())];
        return ctx.ite(c, int_expr(depth - 1), int_expr(depth - 1));
      }
    }
  };
  std::function<NodeId(int)> bool_expr = [&](int depth) -> NodeId {
    if (depth <= 0 || rng.chance(0.4)) {
      const NodeId a = int_expr(1);
      const NodeId b = int_expr(1);
      switch (rng.uniform(0, 5)) {
        case 0: return ctx.eq(a, b);
        case 1: return ctx.ne(a, b);
        case 2: return ctx.le(a, b);
        case 3: return ctx.lt(a, b);
        case 4: return ctx.ge(a, b);
        default: return ctx.gt(a, b);
      }
    }
    switch (rng.uniform(0, 4)) {
      case 0: return ctx.land(bool_expr(depth - 1), bool_expr(depth - 1));
      case 1: return ctx.lor(bool_expr(depth - 1), bool_expr(depth - 1));
      case 2: return ctx.lnot(bool_expr(depth - 1));
      case 3: return ctx.implies(bool_expr(depth - 1), bool_expr(depth - 1));
      default: return ctx.iff(bool_expr(depth - 1), bool_expr(depth - 1));
    }
  };
  sys.formula = bool_expr(3);
  return sys;
}

/// Exhaustively search for a satisfying assignment.
std::optional<ir::Evaluator> brute_force(const Context& ctx,
                                         const RandomSystem& sys) {
  std::vector<std::int64_t> lows, highs, current;
  for (const NodeId v : sys.int_vars) {
    lows.push_back(ctx.range(v).lo);
    highs.push_back(ctx.range(v).hi);
    current.push_back(ctx.range(v).lo);
  }
  const std::size_t n_bool = sys.bool_vars.size();
  for (;;) {
    for (std::uint32_t bm = 0; bm < (1u << n_bool); ++bm) {
      ir::Evaluator ev(ctx);
      for (std::size_t i = 0; i < current.size(); ++i) {
        ev.set_int(sys.int_vars[i], current[i]);
      }
      for (std::size_t i = 0; i < n_bool; ++i) {
        ev.set_bool(sys.bool_vars[i], (bm >> i) & 1u);
      }
      if (ev.eval_bool(sys.formula)) return ev;
    }
    // Odometer increment over integer ranges.
    std::size_t k = 0;
    while (k < current.size() && ++current[k] > highs[k]) {
      current[k] = lows[k];
      ++k;
    }
    if (k == current.size()) return std::nullopt;
  }
}

class EncodeFuzz : public ::testing::TestWithParam<Backend> {};

TEST_P(EncodeFuzz, AgreesWithExhaustiveEnumeration) {
  Rng rng(GetParam() == Backend::kCnf ? 0xAB1 : 0xAB2);
  int sat_seen = 0, unsat_seen = 0;
  for (int round = 0; round < 120; ++round) {
    Context ctx;
    RandomSystem sys;
    try {
      sys = random_system(ctx, rng);
    } catch (const std::overflow_error&) {
      continue;  // degenerate random expression; skip
    }
    sat::Solver solver;
    pb::PbPropagator pb(solver);
    BitBlaster bb(ctx, solver, &pb, Options{GetParam()});
    const bool encoded_ok = bb.assert_true(sys.formula);
    const auto reference = brute_force(ctx, sys);
    if (!encoded_ok) {
      EXPECT_FALSE(reference.has_value()) << "round " << round;
      ++unsat_seen;
      continue;
    }
    const LBool verdict = solver.solve();
    ASSERT_EQ(verdict == LBool::kTrue, reference.has_value())
        << "round " << round << ": " << ctx.to_string(sys.formula);
    if (verdict == LBool::kTrue) {
      // Decode the model and check it satisfies the formula per the
      // reference evaluator (end-to-end decode correctness).
      ir::Evaluator ev(ctx);
      for (const NodeId v : sys.int_vars) {
        bb.touch(v);  // ensure encoded even if folded away
      }
      // Re-solve so bits created by touch() are assigned in the model.
      ASSERT_EQ(solver.solve(), LBool::kTrue);
      for (const NodeId v : sys.int_vars) {
        const std::int64_t val = bb.int_value(v);
        EXPECT_TRUE(ctx.range(v).contains(val));
        ev.set_int(v, val);
      }
      for (const NodeId v : sys.bool_vars) {
        // Bool vars may be absent if constant-folded out of the formula;
        // pick an arbitrary value then.
        bool val = false;
        try {
          val = bb.bool_value(v);
        } catch (const std::logic_error&) {
        }
        ev.set_bool(v, val);
      }
      EXPECT_TRUE(ev.eval_bool(sys.formula))
          << "round " << round << ": " << ctx.to_string(sys.formula);
      ++sat_seen;
    } else {
      ++unsat_seen;
    }
  }
  EXPECT_GT(sat_seen, 20);
  EXPECT_GT(unsat_seen, 5);
}

INSTANTIATE_TEST_SUITE_P(Backends, EncodeFuzz,
                         ::testing::Values(Backend::kCnf, Backend::kPbMixed));

TEST(EncodeFuzzWide, WideRangesSpotChecks) {
  // Larger bit-widths: pin random values through equality constraints and
  // verify arithmetic identities decode exactly.
  Rng rng(0x77);
  for (int round = 0; round < 40; ++round) {
    Context ctx;
    sat::Solver solver;
    BitBlaster bb(ctx, solver);
    const std::int64_t xa = rng.uniform(-2000, 2000);
    const std::int64_t xb = rng.uniform(-2000, 2000);
    const NodeId x = ctx.int_var("x", -2000, 2000);
    const NodeId y = ctx.int_var("y", -2000, 2000);
    ASSERT_TRUE(bb.assert_true(ctx.eq(x, ctx.constant(xa))));
    ASSERT_TRUE(bb.assert_true(ctx.eq(y, ctx.constant(xb))));
    const NodeId sum = ctx.add(x, y);
    const NodeId diff = ctx.sub(x, y);
    const NodeId prod = ctx.mul(x, y);
    bb.touch(sum);
    bb.touch(diff);
    bb.touch(prod);
    ASSERT_EQ(solver.solve(), LBool::kTrue);
    EXPECT_EQ(bb.int_value(sum), xa + xb);
    EXPECT_EQ(bb.int_value(diff), xa - xb);
    EXPECT_EQ(bb.int_value(prod), xa * xb);
  }
}

}  // namespace
}  // namespace optalloc::encode

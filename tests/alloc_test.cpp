// End-to-end tests for the SAT-based allocator: feasibility, optimality
// on hand-analyzable instances, verifier cross-validation of decoded
// solutions, placement/separation/memory constraints, hierarchical
// routing, and both encoder backends / optimizer modes.

#include <gtest/gtest.h>

#include "alloc/optimizer.hpp"
#include "rt/verify.hpp"

namespace optalloc::alloc {
namespace {

using rt::Medium;
using rt::MediumType;
using rt::Task;
using rt::Ticks;

Task make_task(std::string name, Ticks period, Ticks deadline,
               std::vector<Ticks> wcet) {
  Task t;
  t.name = std::move(name);
  t.period = period;
  t.deadline = deadline;
  t.wcet = std::move(wcet);
  return t;
}

Medium make_ring(std::string name, std::vector<int> ecus, Ticks slot_min = 1,
                 Ticks slot_max = 16) {
  Medium m;
  m.name = std::move(name);
  m.type = MediumType::kTokenRing;
  m.ecus = std::move(ecus);
  m.ring_byte_ticks = 1;
  m.slot_min = slot_min;
  m.slot_max = slot_max;
  return m;
}

/// Two tasks, two ECUs, one ring, one message.
Problem tiny_problem() {
  Problem p;
  Task a = make_task("A", 100, 50, {10, 12});
  Task b = make_task("B", 100, 100, {20, 25});
  a.messages.push_back({1, 4, 60, 0});
  p.tasks.tasks = {a, b};
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring("ring", {0, 1})};
  return p;
}

/// Expect the optimizer result to pass the independent verifier.
void expect_verified(const Problem& p, const OptimizeResult& res) {
  ASSERT_TRUE(res.has_allocation);
  const rt::VerifyReport report = rt::verify(p.tasks, p.arch, res.allocation);
  EXPECT_TRUE(report.feasible)
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(Alloc, TinyFeasibility) {
  const Problem p = tiny_problem();
  const OptimizeResult res = optimize(p, Objective::feasibility());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  expect_verified(p, res);
}

TEST(Alloc, TinyTrtOptimum) {
  // Minimal TRT: co-locate both tasks (message stays local), every slot at
  // slot_min -> Lambda = 2 * 1 = 2.
  const Problem p = tiny_problem();
  const OptimizeResult res = optimize(p, Objective::ring_trt(0));
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.cost, 2);
  expect_verified(p, res);
  // Both tasks must share an ECU (otherwise the message needs a slot of
  // at least rho = 4).
  EXPECT_EQ(res.allocation.task_ecu[0], res.allocation.task_ecu[1]);
}

TEST(Alloc, SeparationForcesBusTraffic) {
  // With a separation constraint the message must cross the ring: the
  // sender's slot must fit rho = 4, the other slot stays at 1 -> TRT 5.
  Problem p = tiny_problem();
  p.tasks.tasks[0].separated_from = {1};
  const OptimizeResult res = optimize(p, Objective::ring_trt(0));
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.cost, 5);
  expect_verified(p, res);
  EXPECT_NE(res.allocation.task_ecu[0], res.allocation.task_ecu[1]);
}

TEST(Alloc, InfeasibleWhenBothTasksOverloadOneEcu) {
  // Separation + forbidden placements leave no valid allocation.
  Problem p = tiny_problem();
  p.tasks.tasks[0].separated_from = {1};
  p.tasks.tasks[0].wcet = {10, rt::kForbidden};
  p.tasks.tasks[1].wcet = {20, rt::kForbidden};
  const OptimizeResult res = optimize(p, Objective::feasibility());
  EXPECT_EQ(res.status, OptimizeResult::Status::kInfeasible);
}

TEST(Alloc, DeadlinePressureForcesSpreading) {
  // Two heavy tasks with tight deadlines cannot share an ECU.
  Problem p;
  Task a = make_task("A", 100, 60, {50, 50});
  Task b = make_task("B", 100, 60, {50, 50});
  p.tasks.tasks = {a, b};
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring("ring", {0, 1})};
  const OptimizeResult res = optimize(p, Objective::feasibility());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  expect_verified(p, res);
  EXPECT_NE(res.allocation.task_ecu[0], res.allocation.task_ecu[1]);
}

TEST(Alloc, WcetSelectionFollowsAllocation) {
  // Task is much cheaper on ECU 1; with a deadline only ECU 1 can meet,
  // the optimizer must place it there.
  Problem p;
  p.tasks.tasks = {make_task("A", 100, 15, {80, 10})};
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring("ring", {0, 1})};
  const OptimizeResult res = optimize(p, Objective::feasibility());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.allocation.task_ecu[0], 1);
  expect_verified(p, res);
}

TEST(Alloc, ForbiddenPlacementRespected) {
  Problem p = tiny_problem();
  p.tasks.tasks[0].wcet = {rt::kForbidden, 12};
  const OptimizeResult res = optimize(p, Objective::feasibility());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.allocation.task_ecu[0], 1);
  expect_verified(p, res);
}

TEST(Alloc, MemoryBudgetRespected) {
  Problem p = tiny_problem();
  p.tasks.tasks[0].memory = 60;
  p.tasks.tasks[1].memory = 50;
  p.arch.ecu_memory = {100, 100};
  const OptimizeResult res = optimize(p, Objective::feasibility());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_NE(res.allocation.task_ecu[0], res.allocation.task_ecu[1]);
  expect_verified(p, res);
}

TEST(Alloc, EqualDeadlinesUseFreeTieBreak) {
  // Three equal-deadline tasks that all fit one ECU only in one priority
  // order: C = {30, 20, 10}, deadline 60, period 100. Any order works for
  // the shortest task... the optimizer just needs *a* consistent order;
  // the verifier then confirms DM-consistency and feasibility.
  Problem p;
  p.tasks.tasks = {make_task("A", 100, 60, {30}),
                   make_task("B", 100, 60, {20}),
                   make_task("C", 100, 60, {10})};
  p.arch.num_ecus = 1;
  p.arch.media = {make_ring("ring", {0})};
  const OptimizeResult res = optimize(p, Objective::feasibility());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  expect_verified(p, res);
  // Priorities must be a permutation of 0..2.
  std::vector<int> prio = res.allocation.task_prio;
  std::sort(prio.begin(), prio.end());
  EXPECT_EQ(prio, (std::vector<int>{0, 1, 2}));
}

TEST(Alloc, CanLoadMinimizedByColocation) {
  // Two communicating task pairs on a CAN bus; co-locating each pair
  // removes all bus traffic -> optimal load 0.
  Problem p;
  Task a = make_task("A", 100, 50, {10, 10});
  Task b = make_task("B", 100, 100, {10, 10});
  a.messages.push_back({1, 2, 80, 0});
  p.tasks.tasks = {a, b};
  p.arch.num_ecus = 2;
  Medium can;
  can.name = "can";
  can.type = MediumType::kCan;
  can.ecus = {0, 1};
  can.can_bit_ticks = 1;
  p.arch.media = {can};
  const OptimizeResult res = optimize(p, Objective::can_load(0));
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.cost, 0);
  expect_verified(p, res);
  EXPECT_EQ(res.allocation.task_ecu[0], res.allocation.task_ecu[1]);
}

TEST(Alloc, CanLoadWithSeparationIsPositive) {
  Problem p;
  Task a = make_task("A", 1000, 500, {10, 10});
  Task b = make_task("B", 1000, 1000, {10, 10});
  a.messages.push_back({1, 2, 800, 0});
  a.separated_from = {1};
  p.tasks.tasks = {a, b};
  p.arch.num_ecus = 2;
  Medium can;
  can.name = "can";
  can.type = MediumType::kCan;
  can.ecus = {0, 1};
  can.can_bit_ticks = 1;
  p.arch.media = {can};
  const OptimizeResult res = optimize(p, Objective::can_load(0));
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  // 2-byte frame = 47 + 16 + floor(49/4) = 75 bits, period 1000:
  // ceil(75 * 1000 / 1000) = 75.
  EXPECT_EQ(res.cost, 75);
  expect_verified(p, res);
}

TEST(Alloc, HierarchicalGatewayRouting) {
  // Figure-1 style: two rings joined by a gateway. Sender restricted to
  // ring 1's leaf, receiver to ring 2's leaf -> the message must cross
  // both media and the gateway.
  Problem p;
  Task a = make_task("A", 200, 100, {10, rt::kForbidden, rt::kForbidden});
  Task b = make_task("B", 200, 200, {rt::kForbidden, rt::kForbidden, 10});
  a.messages.push_back({1, 2, 150, 0});
  p.tasks.tasks = {a, b};
  p.arch.num_ecus = 3;  // 0 (leaf1) - 1 (gateway) - 2 (leaf2)
  Medium r1 = make_ring("r1", {0, 1});
  Medium r2 = make_ring("r2", {1, 2});
  r1.gateway_cost = 5;
  p.arch.media = {r1, r2};
  const OptimizeResult res = optimize(p, Objective::sum_trt());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  expect_verified(p, res);
  ASSERT_EQ(res.allocation.msg_route[0], (std::vector<int>{0, 1}));
  // Minimal sum of TRTs: sender slot on r1 >= rho=2, gateway slot on r2
  // >= 2, the other two slots at 1 -> 3 + 3 = 6.
  EXPECT_EQ(res.cost, 6);
}

TEST(Alloc, GatewayOnlyNodesHostNoTasks) {
  Problem p;
  Task a = make_task("A", 200, 100, {10, 10, 10});
  Task b = make_task("B", 200, 200, {10, 10, 10});
  a.messages.push_back({1, 2, 150, 0});
  a.separated_from = {1};
  p.tasks.tasks = {a, b};
  p.arch.num_ecus = 3;
  p.arch.media = {make_ring("r1", {0, 1}), make_ring("r2", {1, 2})};
  p.arch.gateway_only = {0, 1, 0};  // ECU 1 cannot host tasks
  const OptimizeResult res = optimize(p, Objective::feasibility());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  expect_verified(p, res);
  EXPECT_NE(res.allocation.task_ecu[0], 1);
  EXPECT_NE(res.allocation.task_ecu[1], 1);
  // Tasks sit on ECUs 0 and 2 (in some order): the message crosses both
  // rings through the gateway.
  EXPECT_EQ(res.allocation.msg_route[0].size(), 2u);
}

TEST(Alloc, ScratchModeFindsSameOptimum) {
  Problem p = tiny_problem();
  p.tasks.tasks[0].separated_from = {1};
  OptimizeOptions scratch;
  scratch.incremental = false;
  const OptimizeResult res = optimize(p, Objective::ring_trt(0), scratch);
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.cost, 5);
  expect_verified(p, res);
}

TEST(Alloc, PbBackendFindsSameOptimum) {
  Problem p = tiny_problem();
  p.tasks.tasks[0].separated_from = {1};
  OptimizeOptions opts;
  opts.encoder.backend = encode::Backend::kPbMixed;
  const OptimizeResult res = optimize(p, Objective::ring_trt(0), opts);
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.cost, 5);
  expect_verified(p, res);
}

TEST(Alloc, FixedTieBreakMatchesFreeTieOptimum) {
  Problem p = tiny_problem();
  OptimizeOptions opts;
  opts.encoder.free_tie_priorities = false;
  const OptimizeResult res = optimize(p, Objective::ring_trt(0), opts);
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.cost, 2);
  expect_verified(p, res);
}

TEST(Alloc, BudgetExhaustionReportsAnytimeResult) {
  Problem p = tiny_problem();
  OptimizeOptions opts;
  opts.per_call.conflicts = 1;  // absurdly small per-call budget
  const OptimizeResult res = optimize(p, Objective::ring_trt(0), opts);
  // Either it still finishes (trivial instance) or reports exhaustion —
  // but it must never return a wrong "optimal" claim.
  if (res.status == OptimizeResult::Status::kOptimal) {
    EXPECT_EQ(res.cost, 2);
  } else {
    EXPECT_EQ(res.status, OptimizeResult::Status::kBudgetExhausted);
  }
}

TEST(Alloc, TaskChainOverSharedBus) {
  // Chain A -> B -> C across three ECUs with restricted placements; both
  // messages share the ring and must respect their budget sums.
  Problem p;
  Task a = make_task("A", 300, 100, {10, rt::kForbidden, rt::kForbidden});
  Task b = make_task("B", 300, 150, {rt::kForbidden, 10, rt::kForbidden});
  Task c = make_task("C", 300, 300, {rt::kForbidden, rt::kForbidden, 10});
  a.messages.push_back({1, 3, 100, 0});
  b.messages.push_back({2, 3, 100, 0});
  p.tasks.tasks = {a, b, c};
  p.arch.num_ecus = 3;
  p.arch.media = {make_ring("ring", {0, 1, 2})};
  const OptimizeResult res = optimize(p, Objective::ring_trt(0));
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  expect_verified(p, res);
  // Slots: ECU0 >= 3 (msg A->B), ECU1 >= 3 (msg B->C), ECU2 = 1 -> 7.
  EXPECT_EQ(res.cost, 7);
}

}  // namespace
}  // namespace optalloc::alloc

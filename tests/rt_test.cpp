// Tests for the response-time analysis substrate: the fixed-point
// equations against hand-computed classics (Liu/Layland examples, Tindell
// CAN examples), CAN frame timing, TDMA blocking, utilization arithmetic,
// priority assignment, and whole-system verification on small systems.

#include <gtest/gtest.h>

#include <limits>

#include "rt/analysis.hpp"
#include "rt/verify.hpp"

namespace optalloc::rt {
namespace {

TEST(ResponseTime, NoInterference) {
  EXPECT_EQ(response_time_fp(5, {}, 100), 5);
}

TEST(ResponseTime, ClassicTwoTaskExample) {
  // tau1: C=1, T=4 (higher prio); tau2: C=2 -> r2 = 2 + ceil(3/4)*1 = 3.
  const Interferer hp[] = {{1, 4, 0}};
  EXPECT_EQ(response_time_fp(2, hp, 100), 3);
}

TEST(ResponseTime, TextbookThreeTasks) {
  // Classic example: C1=3,T1=7; C2=3,T2=12; C3=5,T3=20.
  // r1 = 3. r2 = 3 + ceil(r/7)*3 -> r=6. r3: 5+3+3=11 -> 5+2*3+3=14 ->
  // 5+2*3+2*3=17 -> 5+3*3+2*3=20 -> fixed: check: ceil(20/7)=3, ceil(20/12)=2
  // -> 5+9+6=20. r3=20.
  const Interferer hp1[] = {{3, 7, 0}};
  EXPECT_EQ(response_time_fp(3, hp1, 100), 6);
  const Interferer hp2[] = {{3, 7, 0}, {3, 12, 0}};
  EXPECT_EQ(response_time_fp(5, hp2, 100), 20);
}

TEST(ResponseTime, DivergesBeyondBound) {
  // Higher-priority utilization of 100%: the fixed point never closes.
  const Interferer hp[] = {{5, 5, 0}};
  EXPECT_FALSE(response_time_fp(5, hp, 1000).has_value());
}

TEST(ResponseTime, ConvergesEvenWhenTotalUtilizationExceedsOne) {
  // hp utilization 5/8 < 1, so the first job still finishes: the least
  // fixed point of r = 5 + ceil(r/8)*5 is 15.
  const Interferer hp[] = {{5, 8, 0}};
  EXPECT_EQ(response_time_fp(5, hp, 1000), 15);
}

TEST(ResponseTime, ExactDeadlineBoundaryAccepted) {
  const Interferer hp[] = {{2, 10, 0}};
  const auto r = response_time_fp(8, hp, 10);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 10);
}

TEST(ResponseTime, JitterIncreasesInterference) {
  // Same as ClassicTwoTaskExample but the interferer has jitter 2:
  // r = 2 + ceil((r+2)/4)*1 -> r=3: ceil(5/4)=2 -> r=4 -> ceil(6/4)=2 -> 4.
  const Interferer hp[] = {{1, 4, 2}};
  EXPECT_EQ(response_time_fp(2, hp, 100), 4);
}

TEST(Tdma, BlockingTermAddsRoundRemainder) {
  // rho=2, no interference, Lambda=10, own slot 3:
  // r = 2 + ceil(r/10)*(10-3) -> r=2: 2+7=9 -> ceil(9/10)=1 -> 9. r=9.
  EXPECT_EQ(tdma_response_time(2, {}, 10, 3, 100), 9);
}

TEST(Tdma, MultipleRoundsWhenQueueLong) {
  // rho=2 with a same-station higher-priority message of rho=5, T=100:
  // r = 2 + 5 + ceil(r/10)*(10-3): r=7 -> 7+7=14 -> ceil(14/10)=2 ->
  // 7+14=21 -> ceil(21/10)=3 -> 7+21=28 -> ceil(28/10)=3 -> 28. r=28.
  const Interferer hp[] = {{5, 100, 0}};
  EXPECT_EQ(tdma_response_time(2, hp, 10, 3, 100), 28);
}

TEST(Tdma, FullSlotOwnershipRemovesBlocking) {
  // own slot == Lambda (single-station ring): no blocking at all.
  EXPECT_EQ(tdma_response_time(4, {}, 6, 6, 100), 4);
}

TEST(CanTiming, FrameBitsMatchStandardFormula) {
  // 8-byte frame: 47 + 64 + floor(97/4)=24 -> 135 bits.
  EXPECT_EQ(can_frame_bits(8), 135);
  // 1-byte frame: 47 + 8 + floor(41/4)=10 -> 65 bits.
  EXPECT_EQ(can_frame_bits(1), 65);
  // 0-byte frame: 47 + 0 + floor(33/4)=8 -> 55 bits.
  EXPECT_EQ(can_frame_bits(0), 55);
}

TEST(CanTiming, MultiFrameMessages) {
  Medium can;
  can.type = MediumType::kCan;
  can.can_bit_ticks = 2;
  // 10 bytes -> one 8-byte frame + one 2-byte frame.
  const Ticks expected = (can_frame_bits(8) + can_frame_bits(2)) * 2;
  EXPECT_EQ(transmission_ticks(can, 10), expected);
}

TEST(CanTiming, TokenRingPerByteCost) {
  Medium ring;
  ring.type = MediumType::kTokenRing;
  ring.ring_byte_ticks = 3;
  EXPECT_EQ(transmission_ticks(ring, 4), 12);
  EXPECT_EQ(transmission_ticks(ring, 0), 1);  // at least one tick
}

TEST(ResponseTime, OverflowingIterationDiverges) {
  // An interference sum that leaves int64 is divergence, not wraparound: a
  // wrapped negative iterate would "converge" under any deadline. The
  // unlimited bound forces the iteration itself to detect the overflow.
  const Ticks huge = std::numeric_limits<Ticks>::max();
  const Interferer expensive[] = {{huge / 2, 1, 0}};
  EXPECT_EQ(response_time_fp(10, expensive, huge), std::nullopt);

  // Activation-count overflow (r + jitter) rather than product overflow.
  const Interferer jittery[] = {{1, 1, huge - 2}};
  EXPECT_EQ(response_time_fp(10, jittery, huge), std::nullopt);
}

TEST(ResponseTime, TdmaOverflowingIterationDiverges) {
  const Ticks huge = std::numeric_limits<Ticks>::max();
  const Interferer expensive[] = {{huge / 2, 1, 0}};
  EXPECT_EQ(tdma_response_time(10, expensive, 8, 2, huge), std::nullopt);
  // Blocking-term overflow: enormous round length against a late slot.
  EXPECT_EQ(tdma_response_time(huge / 2, {}, huge / 2, 1, huge),
            std::nullopt);
}

TEST(ResponseTime, UnlimitedBoundStillConverges) {
  const Ticks huge = std::numeric_limits<Ticks>::max();
  const Interferer hp[] = {{1, 4, 0}};
  EXPECT_EQ(response_time_fp(2, hp, huge), 3);
}

TEST(Utilization, ExactRationalArithmetic) {
  // 1/4 + 1/3 = 7/12 -> ceil(7000/12) = 584 ppm(*1000).
  const Interferer msgs[] = {{1, 4, 0}, {1, 3, 0}};
  EXPECT_EQ(utilization_ppm(msgs), 584);
}

TEST(Utilization, FullBusIsThousand) {
  const Interferer msgs[] = {{5, 10, 0}, {5, 10, 0}};
  EXPECT_EQ(utilization_ppm(msgs), 1000);
}

TEST(Priorities, DeadlineMonotonicWithIndexTieBreak) {
  TaskSet ts;
  ts.tasks.resize(3);
  ts.tasks[0].deadline = 20;
  ts.tasks[1].deadline = 10;
  ts.tasks[2].deadline = 20;
  const auto ranks = deadline_monotonic_ranks(ts);
  EXPECT_EQ(ranks[1], 0);
  EXPECT_EQ(ranks[0], 1);  // ties broken by index
  EXPECT_EQ(ranks[2], 2);
}

// ---------------------------------------------------------------------
// Whole-system verification fixtures.
// ---------------------------------------------------------------------

/// Two ECUs on one token ring; two tasks with a message between them.
struct RingFixture {
  TaskSet ts;
  Architecture arch;
  Allocation alloc;

  RingFixture() {
    Task a;
    a.name = "A";
    a.period = 100;
    a.deadline = 50;
    a.wcet = {10, 12};
    Task b;
    b.name = "B";
    b.period = 100;
    b.deadline = 100;
    b.wcet = {20, 25};
    a.messages.push_back({1, 4, 40, 0});  // to B, 4 bytes, deadline 40
    ts.tasks = {a, b};

    arch.num_ecus = 2;
    Medium ring;
    ring.name = "ring0";
    ring.type = MediumType::kTokenRing;
    ring.ecus = {0, 1};
    ring.ring_byte_ticks = 1;
    ring.slot_min = 1;
    ring.slot_max = 32;
    arch.media = {ring};

    alloc.task_ecu = {0, 1};
    alloc.msg_route = {{0}};
    alloc.msg_local_deadline = {{40}};
    alloc.slots = {{8, 8}};
  }
};

TEST(Verify, FeasibleRingSystem) {
  RingFixture f;
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_TRUE(report.feasible) << (report.violations.empty()
                                       ? ""
                                       : report.violations[0]);
  EXPECT_EQ(report.task_response[0], 10);
  EXPECT_EQ(report.task_response[1], 25);
  EXPECT_EQ(report.sum_trt, 16);
  // Message leg: rho=4, Lambda=16, slot=8 -> r = 4 + ceil(r/16)*8 = 12.
  ASSERT_EQ(report.msg_legs[0].size(), 1u);
  EXPECT_EQ(report.msg_legs[0][0].response, 12);
}

TEST(Verify, SameEcuTasksInterfere) {
  RingFixture f;
  f.alloc.task_ecu = {0, 0};
  f.alloc.msg_route = {{}};  // intra-ECU now
  f.alloc.msg_local_deadline = {{}};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_TRUE(report.feasible);
  // B now preempted by A: r_B = 20 + ceil(r/100)*10 = 30.
  EXPECT_EQ(report.task_response[1], 30);
}

TEST(Verify, DeadlineMissDetected) {
  RingFixture f;
  f.ts.tasks[1].deadline = 24;  // below B's WCET on ECU 1
  f.ts.tasks[1].period = 24;
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, ForbiddenPlacementDetected) {
  RingFixture f;
  f.ts.tasks[0].wcet = {kForbidden, 12};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, SeparationViolationDetected) {
  RingFixture f;
  f.ts.tasks[0].separated_from = {1};
  f.alloc.task_ecu = {0, 0};
  f.alloc.msg_route = {{}};
  f.alloc.msg_local_deadline = {{}};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, MemoryBudgetEnforced) {
  RingFixture f;
  f.ts.tasks[0].memory = 60;
  f.ts.tasks[1].memory = 50;
  f.arch.ecu_memory = {100, 100};
  f.alloc.task_ecu = {0, 0};
  f.alloc.msg_route = {{}};
  f.alloc.msg_local_deadline = {{}};
  EXPECT_FALSE(verify(f.ts, f.arch, f.alloc).feasible);
  f.alloc.task_ecu = {0, 1};
  f.alloc.msg_route = {{0}};
  f.alloc.msg_local_deadline = {{40}};
  EXPECT_TRUE(verify(f.ts, f.arch, f.alloc).feasible);
}

TEST(Verify, SlotTooSmallForMessage) {
  RingFixture f;
  f.alloc.slots = {{2, 8}};  // sender's slot (ECU 0) < rho = 4
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, MissingRouteForInterEcuMessage) {
  RingFixture f;
  f.alloc.msg_route = {{}};
  f.alloc.msg_local_deadline = {{}};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, GatewayOnlyEcuRejectsTasks) {
  RingFixture f;
  f.arch.gateway_only = {1, 0};  // ECU 0 is gateway-only
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

/// Three-media hierarchy as in the paper's Figure 1: k1 = {p1,p2,p3},
/// k2 = {p2,p4}, k3 = {p3,p5} (0-based here).
struct HierFixture {
  TaskSet ts;
  Architecture arch;
  Allocation alloc;

  HierFixture() {
    Task a;
    a.name = "src";
    a.period = 200;
    a.deadline = 100;
    a.wcet = {10, 10, 10, 10, 10};
    Task b;
    b.name = "dst";
    b.period = 200;
    b.deadline = 200;
    b.wcet = {10, 10, 10, 10, 10};
    a.messages.push_back({1, 2, 120, 0});
    ts.tasks = {a, b};

    arch.num_ecus = 5;
    auto ring = [](std::string name, std::vector<int> ecus) {
      Medium m;
      m.name = std::move(name);
      m.type = MediumType::kTokenRing;
      m.ecus = std::move(ecus);
      m.ring_byte_ticks = 2;
      m.slot_min = 1;
      m.slot_max = 32;
      m.gateway_cost = 3;
      return m;
    };
    arch.media = {ring("k1", {0, 1, 2}), ring("k2", {1, 3}),
                  ring("k3", {2, 4})};

    // src on p4 (ECU 3, on k2), dst on p5 (ECU 4, on k3):
    // route must be k2 -> k1 -> k3.
    alloc.task_ecu = {3, 4};
    alloc.msg_route = {{1, 0, 2}};
    alloc.msg_local_deadline = {{30, 40, 40}};
    alloc.slots = {{4, 4, 4}, {4, 4}, {4, 4}};
  }
};

TEST(Verify, MultiHopRouteAcceptedAndJitterChains) {
  HierFixture f;
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  ASSERT_TRUE(report.feasible) << (report.violations.empty()
                                       ? ""
                                       : report.violations[0]);
  const auto& legs = report.msg_legs[0];
  ASSERT_EQ(legs.size(), 3u);
  // rho = 4 on every ring (2 bytes * 2 ticks). Jitter chain:
  // leg0: J=0; leg1: J = 30 - 4 = 26; leg2: J = 26 + 40 - 4 = 62.
  EXPECT_EQ(legs[0].jitter, 0);
  EXPECT_EQ(legs[1].jitter, 26);
  EXPECT_EQ(legs[2].jitter, 62);
}

TEST(Verify, BudgetExceedingEndToEndDeadlineRejected) {
  HierFixture f;
  // 30+40+40 = 110, gateway cost 3+3 = 6 -> 116 <= 120 ok; tighten:
  f.ts.tasks[0].messages[0].deadline = 110;
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, DisconnectedRouteRejected) {
  HierFixture f;
  f.alloc.msg_route = {{1, 2}};  // k2 and k3 share no gateway
  f.alloc.msg_local_deadline = {{50, 50}};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, SenderMustSitOnFirstMedium) {
  HierFixture f;
  f.alloc.msg_route = {{0, 2}};  // src (ECU 3) is not on k1
  f.alloc.msg_local_deadline = {{60, 50}};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, NonMinimalPathRejected) {
  // If both endpoints sit on k1, a route through k2 must be rejected by
  // the v(h) side conditions (sender also on second medium).
  HierFixture f;
  f.alloc.task_ecu = {1, 2};  // both endpoints on k1 (ECUs p2, p3)
  f.alloc.msg_route = {{1, 0}};
  f.alloc.msg_local_deadline = {{50, 50}};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  EXPECT_FALSE(report.feasible);
}

TEST(Verify, CanMediumUtilization) {
  RingFixture f;
  f.arch.media[0].type = MediumType::kCan;
  f.arch.media[0].can_bit_ticks = 1;
  f.ts.tasks[0].messages[0].deadline = 100;
  f.alloc.msg_local_deadline = {{100}};
  f.alloc.slots = {{}};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  ASSERT_TRUE(report.feasible) << (report.violations.empty()
                                       ? ""
                                       : report.violations[0]);
  // 4-byte frame: 47+32+floor(65/4)=16 -> 95 bits; U = 95/100 -> 950.
  EXPECT_EQ(report.max_can_util_ppm, 950);
  // (period is 100 ticks, so the single frame loads the bus to 95%)
  ASSERT_EQ(report.msg_legs[0].size(), 1u);
  EXPECT_EQ(report.msg_legs[0][0].response, 95);
}

TEST(Verify, CanInterferenceBetweenMessages) {
  RingFixture f;
  f.arch.media[0].type = MediumType::kCan;
  // Long periods so the bus is not saturated by two 95-bit frames.
  f.ts.tasks[0].period = 1000;
  f.ts.tasks[1].period = 1000;
  f.ts.tasks[0].messages[0].deadline = 100;
  f.ts.tasks[1].messages.push_back({0, 4, 200, 0});  // B -> A, lower prio
  f.alloc.msg_route = {{0}, {0}};
  f.alloc.msg_local_deadline = {{100}, {200}};
  f.alloc.slots = {{}};
  const VerifyReport report = verify(f.ts, f.arch, f.alloc);
  ASSERT_TRUE(report.feasible) << (report.violations.empty()
                                       ? ""
                                       : report.violations[0]);
  // msg0 (deadline 100) has higher priority than msg1 (deadline 200):
  // r_msg1 = 95 + ceil(r/1000)*95 = 190.
  EXPECT_EQ(report.msg_legs[0][0].response, 95);
  EXPECT_EQ(report.msg_legs[1][0].response, 190);
}

}  // namespace
}  // namespace optalloc::rt

// Optimizer-level tests: agreement of all search strategies, backends and
// modes on the same optimum; the max-utilization objective; task release
// jitter end-to-end; warm-start semantics; anytime/budget behavior.

#include <gtest/gtest.h>

#include "alloc/cost.hpp"
#include "alloc/optimizer.hpp"
#include "heur/annealing.hpp"
#include "heur/exhaustive.hpp"
#include "rt/verify.hpp"
#include "util/rng.hpp"
#include "workload/tindell.hpp"

namespace optalloc::alloc {
namespace {

using rt::Medium;
using rt::MediumType;
using rt::Task;
using rt::Ticks;

Task make_task(std::string name, Ticks period, Ticks deadline,
               std::vector<Ticks> wcet) {
  Task t;
  t.name = std::move(name);
  t.period = period;
  t.deadline = deadline;
  t.wcet = std::move(wcet);
  return t;
}

Medium make_ring(std::vector<int> ecus, Ticks slot_max = 8) {
  Medium m;
  m.name = "ring";
  m.type = MediumType::kTokenRing;
  m.ecus = std::move(ecus);
  m.ring_byte_ticks = 1;
  m.slot_min = 1;
  m.slot_max = slot_max;
  return m;
}

Problem random_problem(Rng& rng) {
  Problem p;
  const int num_ecus = static_cast<int>(rng.uniform(2, 3));
  p.arch.num_ecus = num_ecus;
  std::vector<int> all;
  for (int e = 0; e < num_ecus; ++e) all.push_back(e);
  p.arch.media = {make_ring(all)};
  const int num_tasks = static_cast<int>(rng.uniform(3, 5));
  for (int i = 0; i < num_tasks; ++i) {
    const Ticks period = 50 * rng.uniform(2, 6);
    std::vector<Ticks> wcet;
    for (int e = 0; e < num_ecus; ++e) wcet.push_back(rng.uniform(5, 25));
    p.tasks.tasks.push_back(
        make_task("T" + std::to_string(i), period, period, wcet));
  }
  if (rng.chance(0.6)) {
    p.tasks.tasks[0].messages.push_back(
        {1, rng.uniform(1, 4), rng.uniform(30, 80), 0});
  }
  if (rng.chance(0.3)) {
    p.tasks.tasks[0].separated_from = {1};
    p.tasks.tasks[1].separated_from = {0};
  }
  return p;
}

TEST(Strategies, AllVariantsAgreeOnTheOptimum) {
  Rng rng(0x517A7);
  int checked = 0;
  for (int round = 0; round < 15; ++round) {
    const Problem p = random_problem(rng);
    const Objective obj = Objective::ring_trt(0);

    OptimizeOptions bisect;  // defaults
    OptimizeOptions descend;
    descend.strategy = SearchStrategy::kDescending;
    OptimizeOptions scratch;
    scratch.incremental = false;
    OptimizeOptions pbmix;
    pbmix.encoder.backend = encode::Backend::kPbMixed;
    OptimizeOptions warm;
    const auto sa = heur::anneal(p, obj, {.seed = 5, .iterations = 1500});
    if (sa.feasible) warm.warm_start = sa.allocation;

    const OptimizeResult a = optimize(p, obj, bisect);
    const OptimizeResult b = optimize(p, obj, descend);
    const OptimizeResult c = optimize(p, obj, scratch);
    const OptimizeResult d = optimize(p, obj, pbmix);
    const OptimizeResult e = optimize(p, obj, warm);
    ASSERT_EQ(a.status, b.status) << "round " << round;
    ASSERT_EQ(a.status, c.status) << "round " << round;
    ASSERT_EQ(a.status, d.status) << "round " << round;
    ASSERT_EQ(a.status, e.status) << "round " << round;
    if (a.status == OptimizeResult::Status::kOptimal) {
      EXPECT_EQ(a.cost, b.cost) << "round " << round;
      EXPECT_EQ(a.cost, c.cost) << "round " << round;
      EXPECT_EQ(a.cost, d.cost) << "round " << round;
      EXPECT_EQ(a.cost, e.cost) << "round " << round;
      ++checked;
    }
  }
  EXPECT_GT(checked, 8);
}

TEST(MaxUtilization, BalancesLoadAcrossEcus) {
  // Four identical tasks of utilization 0.25 on two ECUs: balanced
  // optimum = 2 per ECU -> 500; any 3-1 split gives 750.
  Problem p;
  for (int i = 0; i < 4; ++i) {
    p.tasks.tasks.push_back(
        make_task("T" + std::to_string(i), 100, 100, {25, 25}));
  }
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring({0, 1})};
  const OptimizeResult res = optimize(p, Objective::max_utilization());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.cost, 500);
  EXPECT_EQ(objective_value(p, Objective::max_utilization(),
                            res.allocation),
            500);
  const auto report = rt::verify(p.tasks, p.arch, res.allocation);
  EXPECT_TRUE(report.feasible);
}

TEST(MaxUtilization, RespectsPlacementRestrictions) {
  // Three tasks, one pinned: the pinned ECU carries at least its load.
  Problem p;
  p.tasks.tasks.push_back(
      make_task("pinned", 100, 100, {60, rt::kForbidden}));
  p.tasks.tasks.push_back(make_task("a", 100, 100, {30, 30}));
  p.tasks.tasks.push_back(make_task("b", 100, 100, {30, 30}));
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring({0, 1})};
  const OptimizeResult res = optimize(p, Objective::max_utilization());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  // Optimal: pinned alone (600), a+b together (600).
  EXPECT_EQ(res.cost, 600);
}

TEST(MaxUtilization, MatchesExhaustiveOnRandomInstances) {
  Rng rng(0xDA7);
  int checked = 0;
  for (int round = 0; round < 12; ++round) {
    Problem p = random_problem(rng);
    for (Task& t : p.tasks.tasks) t.messages.clear();  // pure placement
    const auto truth =
        heur::exhaustive_search(p, Objective::max_utilization());
    ASSERT_TRUE(truth.has_value());
    const OptimizeResult res = optimize(p, Objective::max_utilization());
    if (truth->feasible && truth->exact) {
      ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
      EXPECT_EQ(res.cost, truth->cost) << "round " << round;
      ++checked;
    }
  }
  EXPECT_GT(checked, 8);
}

TEST(ReleaseJitter, TightensTaskFeasibility) {
  // r = 40 on the only ECU; deadline 50. Jitter 5 still fits (40 <= 45),
  // jitter 15 does not (40 > 35).
  Problem p;
  p.tasks.tasks.push_back(make_task("J", 100, 50, {40}));
  p.arch.num_ecus = 1;
  p.arch.media = {make_ring({0})};

  p.tasks.tasks[0].release_jitter = 5;
  EXPECT_EQ(optimize(p, Objective::feasibility()).status,
            OptimizeResult::Status::kOptimal);
  p.tasks.tasks[0].release_jitter = 15;
  EXPECT_EQ(optimize(p, Objective::feasibility()).status,
            OptimizeResult::Status::kInfeasible);
}

TEST(ReleaseJitter, IncreasesInterferenceOnLowerPriority) {
  // hp task: C=10, T=60, D=45, jitter 30 (own bound: 10 <= 45-30 ok).
  // lp task: C=25, D=44. Sharing an ECU:
  //   r_lp = 25 + ceil((r+30)/60)*10 -> 35 -> ceil(65/60)=2 -> 45 ->
  //   ceil(75/60)=2 -> 45 > 44: infeasible together; feasible split.
  Problem p;
  Task hp = make_task("hp", 60, 45, {10, 10});
  hp.release_jitter = 30;
  Task lp = make_task("lp", 100, 44, {25, 25});
  p.tasks.tasks = {hp, lp};
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring({0, 1})};
  const OptimizeResult res = optimize(p, Objective::feasibility());
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_NE(res.allocation.task_ecu[0], res.allocation.task_ecu[1]);
  const auto report = rt::verify(p.tasks, p.arch, res.allocation);
  EXPECT_TRUE(report.feasible);

  // Single-ECU variant is infeasible under the jitter.
  Problem single = p;
  single.tasks.tasks[0].wcet = {10};
  single.tasks.tasks[1].wcet = {25};
  single.arch.num_ecus = 1;
  single.arch.media = {make_ring({0})};
  EXPECT_EQ(optimize(single, Objective::feasibility()).status,
            OptimizeResult::Status::kInfeasible);
}

TEST(ReleaseJitter, VerifierAgreesWithEncoder) {
  // The encoder and the verifier must agree on jittered instances.
  Rng rng(0x117);
  for (int round = 0; round < 10; ++round) {
    Problem p = random_problem(rng);
    for (Task& t : p.tasks.tasks) {
      t.messages.clear();
      t.release_jitter = rng.uniform(0, 15);
    }
    const OptimizeResult res = optimize(p, Objective::feasibility());
    if (res.status == OptimizeResult::Status::kOptimal) {
      const auto report = rt::verify(p.tasks, p.arch, res.allocation);
      EXPECT_TRUE(report.feasible)
          << "round " << round << ": "
          << (report.violations.empty() ? "" : report.violations[0]);
    }
  }
}

TEST(WarmStart, InfeasibleHintIsIgnored) {
  // A deliberately infeasible warm start must not corrupt the result.
  Problem p;
  p.tasks.tasks.push_back(make_task("A", 100, 50, {10, 10}));
  p.tasks.tasks.push_back(make_task("B", 100, 100, {10, 10}));
  p.arch.num_ecus = 2;
  p.arch.media = {make_ring({0, 1})};
  rt::Allocation bogus;
  bogus.task_ecu = {0, 5};  // ECU out of range
  bogus.msg_route = {};
  bogus.msg_local_deadline = {};
  OptimizeOptions opts;
  opts.warm_start = bogus;
  const OptimizeResult res = optimize(p, Objective::ring_trt(0), opts);
  ASSERT_EQ(res.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.cost, 2);
}

TEST(Budget, TimeLimitedRunReportsBounds) {
  const Problem p = workload::tindell_prefix(20);
  OptimizeOptions opts;
  opts.time_limit_s = 0.05;  // far too little for 20 tasks
  const OptimizeResult res = optimize(p, Objective::ring_trt(0), opts);
  EXPECT_EQ(res.status, OptimizeResult::Status::kBudgetExhausted);
}

TEST(Budget, WarmStartGivesAnytimeAnswerUnderTinyBudget) {
  const Problem p = workload::tindell_prefix(20);
  const auto sa =
      heur::anneal(p, Objective::ring_trt(0), {.seed = 2, .iterations = 3000});
  ASSERT_TRUE(sa.feasible);
  OptimizeOptions opts;
  opts.time_limit_s = 0.05;
  opts.warm_start = sa.allocation;
  const OptimizeResult res = optimize(p, Objective::ring_trt(0), opts);
  EXPECT_EQ(res.status, OptimizeResult::Status::kBudgetExhausted);
  ASSERT_TRUE(res.has_allocation);  // the SA seed is the anytime answer
  EXPECT_EQ(res.cost, sa.cost);
}

TEST(ObjectiveApi, DescribeStrings) {
  EXPECT_EQ(Objective::feasibility().describe(), "feasibility");
  EXPECT_EQ(Objective::ring_trt(2).describe(), "min TRT(medium 2)");
  EXPECT_EQ(Objective::sum_trt().describe(), "min sum of TRTs");
  EXPECT_EQ(Objective::can_load(0).describe(), "min U_CAN(medium 0)");
  EXPECT_EQ(Objective::max_utilization().describe(),
            "min max per-ECU utilization");
}

TEST(ObjectiveApi, InvalidMediumThrows) {
  Problem p;
  p.tasks.tasks.push_back(make_task("A", 100, 100, {10}));
  p.arch.num_ecus = 1;
  p.arch.media = {make_ring({0})};
  AllocEncoder enc_bad_can(p, Objective::can_load(0));  // ring, not CAN
  EXPECT_THROW(enc_bad_can.build(), std::invalid_argument);
  AllocEncoder enc_bad_trt(p, Objective::ring_trt(7));
  EXPECT_THROW(enc_bad_trt.build(), std::invalid_argument);
}

}  // namespace
}  // namespace optalloc::alloc

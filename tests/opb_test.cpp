// Tests for OPB parsing/serialization and solving through the native PB
// layer, including objective handling and negative-coefficient algebra.

#include <gtest/gtest.h>

#include <sstream>

#include "pb/opb.hpp"
#include "pb/propagator.hpp"
#include "sat/solver.hpp"

namespace optalloc::pb {
namespace {

using sat::LBool;

OpbProblem parse(const std::string& text) {
  std::istringstream in(text);
  return parse_opb(in);
}

TEST(Opb, ParsesHeaderAndConstraints) {
  const OpbProblem p = parse(
      "* #variable= 4 #constraint= 2\n"
      "+1 x1 +2 x2 +3 x3 >= 3 ;\n"
      "-2 x1 +4 x4 = 2 ;\n");
  EXPECT_EQ(p.num_vars, 4);
  ASSERT_EQ(p.constraints.size(), 2u);
  EXPECT_EQ(p.constraints[0].relation, OpbConstraint::Relation::kGe);
  EXPECT_EQ(p.constraints[0].rhs, 3);
  ASSERT_EQ(p.constraints[0].terms.size(), 3u);
  EXPECT_EQ(p.constraints[1].relation, OpbConstraint::Relation::kEq);
  EXPECT_EQ(p.constraints[1].terms[0].coef, -2);
}

TEST(Opb, ParsesNegatedLiterals) {
  const OpbProblem p = parse(
      "* #variable= 2 #constraint= 1\n"
      "+1 ~x1 +1 x2 >= 1 ;\n");
  EXPECT_TRUE(p.constraints[0].terms[0].lit.sign());
  EXPECT_EQ(p.constraints[0].terms[0].lit.var(), 0);
}

TEST(Opb, ParsesObjective) {
  const OpbProblem p = parse(
      "* #variable= 2 #constraint= 1\n"
      "min: +1 x1 +2 x2 ;\n"
      "+1 x1 +1 x2 >= 1 ;\n");
  ASSERT_TRUE(p.objective.has_value());
  EXPECT_EQ(p.objective->size(), 2u);
}

TEST(Opb, RejectsMissingHeader) {
  EXPECT_THROW(parse("+1 x1 >= 1 ;\n"), std::runtime_error);
}

TEST(Opb, RejectsOutOfRangeVariable) {
  EXPECT_THROW(parse("* #variable= 1 #constraint= 1\n+1 x5 >= 1 ;\n"),
               std::runtime_error);
}

TEST(Opb, RejectsMissingRelation) {
  EXPECT_THROW(parse("* #variable= 1 #constraint= 1\n+1 x1 ;\n"),
               std::runtime_error);
}

TEST(Opb, RoundTrip) {
  OpbProblem p;
  p.num_vars = 3;
  p.objective = std::vector<Term>{{2, sat::pos(0)}, {-1, sat::neg(2)}};
  OpbConstraint c1;
  c1.terms = {{1, sat::pos(0)}, {3, sat::neg(1)}};
  c1.relation = OpbConstraint::Relation::kLe;
  c1.rhs = 2;
  p.constraints = {c1};
  std::ostringstream out;
  write_opb(out, p);
  const OpbProblem q = parse(out.str());
  EXPECT_EQ(q.num_vars, p.num_vars);
  ASSERT_TRUE(q.objective.has_value());
  EXPECT_EQ((*q.objective)[0].coef, 2);
  EXPECT_EQ((*q.objective)[1].lit, sat::neg(2));
  ASSERT_EQ(q.constraints.size(), 1u);
  EXPECT_EQ(q.constraints[0].relation, OpbConstraint::Relation::kLe);
  EXPECT_EQ(q.constraints[0].rhs, 2);
}

TEST(Opb, SolveSatisfiableSystem) {
  const OpbProblem p = parse(
      "* #variable= 3 #constraint= 2\n"
      "+1 x1 +1 x2 +1 x3 >= 2 ;\n"
      "+1 x1 +1 x2 <= 1 ;\n");
  sat::Solver solver;
  PbPropagator pbp(solver);
  ASSERT_TRUE(load_into(p, solver, pbp));
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  // x3 must be true: at most one of x1/x2 but two in total.
  EXPECT_EQ(solver.model_value(sat::Var{2}), LBool::kTrue);
}

TEST(Opb, SolveUnsatisfiableSystem) {
  const OpbProblem p = parse(
      "* #variable= 2 #constraint= 2\n"
      "+1 x1 +1 x2 >= 2 ;\n"
      "+1 x1 +1 x2 <= 1 ;\n");
  sat::Solver solver;
  PbPropagator pbp(solver);
  const bool loaded = load_into(p, solver, pbp);
  EXPECT_TRUE(!loaded || solver.solve() == LBool::kFalse);
}

TEST(Opb, EqualityRelation) {
  const OpbProblem p = parse(
      "* #variable= 3 #constraint= 1\n"
      "+1 x1 +1 x2 +1 x3 = 2 ;\n");
  sat::Solver solver;
  PbPropagator pbp(solver);
  ASSERT_TRUE(load_into(p, solver, pbp));
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  int count = 0;
  for (sat::Var v = 0; v < 3; ++v) {
    count += solver.model_value(v) == LBool::kTrue;
  }
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace optalloc::pb

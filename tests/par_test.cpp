// Tests for the cooperative parallel layer (src/par) and its integration
// with the optimizer/portfolio: clause-pool semantics under concurrency
// (run these under tsan — see the ci tsan job), shared-interval
// tightening, solver-level export/import hooks, 1-worker determinism,
// sharing-on/off optimum agreement, the certification interaction, and
// the serialized portfolio progress stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "alloc/portfolio.hpp"
#include "par/pool.hpp"
#include "par/sharing.hpp"
#include "rt/verify.hpp"
#include "sat/solver.hpp"
#include "workload/tindell.hpp"

namespace optalloc {
namespace {

using sat::neg;
using sat::pos;
using alloc::Objective;
using alloc::OptimizeOptions;
using alloc::OptimizeResult;
using alloc::PortfolioOptions;
using alloc::PortfolioResult;

// --- Clause pool ------------------------------------------------------

TEST(ParPool, DrainSkipsOwnShard) {
  par::ClausePool pool(2);
  sat::Solver s;  // literal factory
  const sat::Var v = s.new_var();
  pool.publish(0, std::vector<sat::Lit>{pos(v)}, 1);
  std::vector<par::SharedClause> got;
  par::ClausePool::Cursor c0 = pool.make_cursor();
  EXPECT_EQ(pool.drain(0, c0, got), 0u);  // own clause never echoes back
  par::ClausePool::Cursor c1 = pool.make_cursor();
  EXPECT_EQ(pool.drain(1, c1, got), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].lits.size(), 1u);
  EXPECT_EQ(got[0].lbd, 1u);
  // A second drain from the same cursor delivers nothing new.
  EXPECT_EQ(pool.drain(1, c1, got), 0u);
}

TEST(ParPool, SlowConsumerLosesOverwrittenClauses) {
  par::PoolOptions opts;
  opts.shard_capacity = 8;
  par::ClausePool pool(2, opts);
  sat::Solver s;
  const sat::Var v = s.new_var();
  for (int i = 0; i < 20; ++i) {
    pool.publish(0, std::vector<sat::Lit>{pos(v), neg(v)}, 2);
  }
  par::ClausePool::Cursor c1 = pool.make_cursor();
  std::vector<par::SharedClause> got;
  EXPECT_EQ(pool.drain(1, c1, got), 8u);  // only the ring's worth survives
  const par::PoolStats st = pool.stats();
  EXPECT_EQ(st.published, 20u);
  EXPECT_EQ(st.consumed, 8u);
  EXPECT_EQ(st.overwritten, 12u);
}

TEST(ParPool, ConcurrentPublishDrainStress) {
  // Every worker publishes its own distinctive clauses while continuously
  // draining the others' — the invariant under load: each consumer sees
  // only foreign clauses, each well-formed. Run under tsan to check the
  // locking discipline.
  constexpr int kWorkers = 4;
  constexpr int kClauses = 2000;
  par::PoolOptions opts;
  opts.shard_capacity = 256;  // small ring: overwrite on purpose
  par::ClausePool pool(kWorkers, opts);
  sat::Solver factory;
  std::vector<sat::Var> vars;
  for (int w = 0; w < kWorkers; ++w) vars.push_back(factory.new_var());
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      par::ClausePool::Cursor cursor = pool.make_cursor();
      std::vector<par::SharedClause> got;
      for (int i = 0; i < kClauses; ++i) {
        // Worker w's clauses are all unit over its private variable.
        pool.publish(w, std::vector<sat::Lit>{pos(vars[static_cast<std::size_t>(w)])},
                     static_cast<std::uint32_t>(w + 1));
        if (i % 64 == 0) {
          got.clear();
          pool.drain(w, cursor, got);
          for (const par::SharedClause& sc : got) {
            if (sc.lits.size() != 1 ||
                sc.lits[0] == pos(vars[static_cast<std::size_t>(w)])) {
              bad.store(true, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(bad.load());
  const par::PoolStats st = pool.stats();
  EXPECT_EQ(st.published, static_cast<std::uint64_t>(kWorkers) * kClauses);
}

// --- Shared interval --------------------------------------------------

TEST(ParInterval, TightensMonotonically) {
  par::SharedInterval iv;
  EXPECT_EQ(iv.lower(), par::SharedInterval::kNoLower);
  EXPECT_EQ(iv.upper(), par::SharedInterval::kNoUpper);
  EXPECT_TRUE(iv.raise_lower(3));
  EXPECT_FALSE(iv.raise_lower(2));  // never loosens
  EXPECT_TRUE(iv.drop_upper(10));
  EXPECT_FALSE(iv.drop_upper(11));
  EXPECT_TRUE(iv.raise_lower(7));
  EXPECT_EQ(iv.lower(), 7);
  EXPECT_EQ(iv.upper(), 10);
  EXPECT_EQ(iv.updates(), 3u);
}

TEST(ParInterval, ConcurrentUpdatesKeepExtremes) {
  par::SharedInterval iv;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        iv.raise_lower(t * 1000 + i);
        iv.drop_upper(100000 - (t * 1000 + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(iv.lower(), (kThreads - 1) * 1000 + 999);
  EXPECT_EQ(iv.upper(), 100000 - ((kThreads - 1) * 1000 + 999));
}

// --- Solver sharing hooks ---------------------------------------------

void add_pigeonhole(sat::Solver& s, int pigeons, int holes,
                    std::vector<std::vector<sat::Var>>& grid) {
  grid.assign(static_cast<std::size_t>(pigeons), {});
  for (auto& row : grid) {
    for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> at_least_one;
    for (int h = 0; h < holes; ++h) {
      at_least_one.push_back(pos(grid[static_cast<std::size_t>(p)]
                                     [static_cast<std::size_t>(h)]));
    }
    ASSERT_TRUE(s.add_clause(at_least_one));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(s.add_clause(
            {neg(grid[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
             neg(grid[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)])}));
      }
    }
  }
}

TEST(ParSolver, ExportHookSeesLearnts) {
  sat::Solver s;
  std::vector<std::vector<sat::Var>> grid;
  add_pigeonhole(s, 6, 5, grid);
  std::vector<par::SharedClause> exported;
  sat::Solver::ShareHooks hooks;
  hooks.export_clause = [&](std::span<const sat::Lit> lits,
                            std::uint32_t lbd) {
    exported.push_back({std::vector<sat::Lit>(lits.begin(), lits.end()), lbd});
  };
  s.set_share(std::move(hooks));
  EXPECT_EQ(s.solve(), sat::LBool::kFalse);
  EXPECT_GT(exported.size(), 0u);
  EXPECT_EQ(s.stats().clauses_exported, exported.size());
  for (const par::SharedClause& sc : exported) {
    EXPECT_FALSE(sc.lits.empty());
    EXPECT_TRUE(sc.lits.size() <= 2 || sc.lbd <= 4u) << "filter violated";
  }
}

TEST(ParSolver, ImportedClausesAreUsedAndCounted) {
  // Import ~x at the restart boundary; the solver must then find the
  // model with x false even though its own clauses prefer nothing.
  sat::Solver s;
  const sat::Var x = s.new_var();
  const sat::Var y = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x), pos(y)}));
  bool delivered = false;
  sat::Solver::ShareHooks hooks;
  hooks.import_clauses = [&](std::vector<sat::SharedClause>& out) {
    if (!delivered) {
      delivered = true;
      out.push_back({{neg(x)}, 1});
    }
  };
  s.set_share(std::move(hooks));
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  EXPECT_EQ(s.stats().clauses_imported, 1u);
  EXPECT_EQ(s.model_value(x), sat::LBool::kFalse);
  EXPECT_EQ(s.model_value(y), sat::LBool::kTrue);
}

TEST(ParSolver, ImportedContradictionYieldsUnsat) {
  sat::Solver s;
  const sat::Var x = s.new_var();
  ASSERT_TRUE(s.add_unit(pos(x)));
  sat::Solver::ShareHooks hooks;
  hooks.import_clauses = [&](std::vector<sat::SharedClause>& out) {
    out.push_back({{neg(x)}, 1});
  };
  s.set_share(std::move(hooks));
  EXPECT_EQ(s.solve(), sat::LBool::kFalse);
}

TEST(ParSolver, ExportVarLimitFiltersHighVariables) {
  sat::Solver s;
  std::vector<std::vector<sat::Var>> grid;
  add_pigeonhole(s, 6, 5, grid);
  std::vector<par::SharedClause> exported;
  sat::Solver::ShareHooks hooks;
  const std::int32_t limit = s.num_vars() / 2;
  hooks.export_var_limit = limit;
  hooks.export_clause = [&](std::span<const sat::Lit> lits,
                            std::uint32_t lbd) {
    exported.push_back({std::vector<sat::Lit>(lits.begin(), lits.end()), lbd});
  };
  s.set_share(std::move(hooks));
  EXPECT_EQ(s.solve(), sat::LBool::kFalse);
  for (const par::SharedClause& sc : exported) {
    for (const sat::Lit l : sc.lits) {
      EXPECT_LT(l.var(), limit);
    }
  }
}

// --- Portfolio integration --------------------------------------------

TEST(ParPortfolio, OneWorkerMatchesPlainOptimize) {
  const alloc::Problem p = workload::tindell_prefix(12);
  const OptimizeResult plain = optimize(p, Objective::ring_trt(0));
  PortfolioOptions popts;
  popts.threads = 1;
  const PortfolioResult res =
      optimize_portfolio(p, Objective::ring_trt(0), popts);
  ASSERT_EQ(plain.status, OptimizeResult::Status::kOptimal);
  ASSERT_EQ(res.best.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.best.cost, plain.cost);
  EXPECT_EQ(res.threads, 1);
  // Worker 0 runs the untouched base config: the search must be the
  // plain one step for step, not merely agree on the optimum.
  EXPECT_EQ(res.best.stats.sat_calls, plain.stats.sat_calls);
  EXPECT_EQ(res.best.stats.conflicts, plain.stats.conflicts);
  EXPECT_EQ(res.sharing.clauses_imported, 0u);
}

TEST(ParPortfolio, SharingOnAndOffAgreeOnTheOptimum) {
  for (const int tasks : {10, 14}) {
    const alloc::Problem p = workload::tindell_prefix(tasks);
    const OptimizeResult plain = optimize(p, Objective::ring_trt(0));
    ASSERT_EQ(plain.status, OptimizeResult::Status::kOptimal);
    for (const bool sharing : {false, true}) {
      PortfolioOptions popts;
      popts.threads = 4;
      popts.share_clauses = sharing;
      popts.share_bounds = sharing;
      const PortfolioResult res =
          optimize_portfolio(p, Objective::ring_trt(0), popts);
      ASSERT_EQ(res.best.status, OptimizeResult::Status::kOptimal)
          << tasks << " tasks, sharing " << sharing;
      EXPECT_EQ(res.best.cost, plain.cost)
          << tasks << " tasks, sharing " << sharing;
      EXPECT_TRUE(
          rt::verify(p.tasks, p.arch, res.best.allocation).feasible);
    }
  }
}

TEST(ParPortfolio, CooperativeRunExchangesTraffic) {
  const alloc::Problem p = workload::tindell_prefix(14);
  PortfolioOptions popts;
  popts.threads = 4;
  const PortfolioResult res =
      optimize_portfolio(p, Objective::ring_trt(0), popts);
  ASSERT_EQ(res.best.status, OptimizeResult::Status::kOptimal);
  // All four workers share one encoder config: clause exchange is live.
  EXPECT_GT(res.sharing.clauses_exported, 0u);
  EXPECT_GT(res.sharing.bounds_published, 0u);
  EXPECT_EQ(res.per_config_stats.size(), 4u);
}

TEST(ParPortfolio, CertifyComposesWithSharing) {
  // Under --certify each worker's certificate must stay self-contained:
  // the solver suppresses clause imports while its proof log is attached
  // and the optimizer refuses foreign lower bounds, so a certified
  // cooperative run still reaches (and certifies) the true optimum.
  const alloc::Problem p = workload::tindell_prefix(10);
  const OptimizeResult plain = optimize(p, Objective::ring_trt(0));
  ASSERT_EQ(plain.status, OptimizeResult::Status::kOptimal);
  PortfolioOptions popts;
  popts.threads = 2;
  popts.base_config.certify = true;
  const PortfolioResult res =
      optimize_portfolio(p, Objective::ring_trt(0), popts);
  ASSERT_EQ(res.best.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.best.cost, plain.cost);
  EXPECT_TRUE(res.best.certified) << res.best.certify_error;
  // The proof gate is per-solver: nothing may have been imported.
  EXPECT_EQ(res.sharing.clauses_imported, 0u);
}

TEST(ParPortfolio, ProgressStreamIsSerializedAndMonotone) {
  const alloc::Problem p = workload::tindell_prefix(14);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::vector<alloc::Progress> seen;
  PortfolioOptions popts;
  popts.threads = 4;
  popts.on_progress = [&](const alloc::Progress& pr) {
    if (inside.fetch_add(1) != 0) overlapped.store(true);
    seen.push_back(pr);  // safe iff callbacks are mutually excluded
    inside.fetch_sub(1);
  };
  const PortfolioResult res =
      optimize_portfolio(p, Objective::ring_trt(0), popts);
  ASSERT_EQ(res.best.status, OptimizeResult::Status::kOptimal);
  EXPECT_FALSE(overlapped.load());
  ASSERT_GT(seen.size(), 0u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GE(seen[i].lower, seen[i - 1].lower) << "report " << i;
    EXPECT_LE(seen[i].upper, seen[i - 1].upper) << "report " << i;
    EXPECT_GE(seen[i].sat_calls, seen[i - 1].sat_calls) << "report " << i;
  }
  for (const alloc::Progress& pr : seen) {
    EXPECT_LE(pr.lower, pr.upper);
  }
  // The final merged interval pins the optimum.
  EXPECT_EQ(seen.back().upper, res.best.cost);
}

TEST(ParPortfolio, SharingSurvivesMixedEncoderConfigs) {
  // The historical default trio mixes encoder backends: CNF workers may
  // exchange clauses with each other but never with the PB-mixed worker.
  // The run must still converge on the optimum.
  const alloc::Problem p = workload::tindell_prefix(12);
  const PortfolioResult res = optimize_portfolio(p, Objective::ring_trt(0));
  ASSERT_EQ(res.best.status, OptimizeResult::Status::kOptimal);
  EXPECT_EQ(res.per_config.size(), 3u);
}

}  // namespace
}  // namespace optalloc

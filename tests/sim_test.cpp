// Tests for the discrete-event simulator, culminating in the soundness
// property: for every job and every message leg of a verifier-approved
// allocation, the observed response never exceeds the analytical bound.
// (For message-leg checks the generated instances declare message release
// jitter >= the sender's completion-time variation, so the analysis'
// interference windows cover the simulated arrival patterns.)

#include <gtest/gtest.h>

#include "alloc/optimizer.hpp"
#include "heur/annealing.hpp"
#include "rt/sim.hpp"
#include "rt/verify.hpp"
#include "util/rng.hpp"

namespace optalloc::rt {
namespace {

Task make_task(std::string name, Ticks period, Ticks deadline,
               std::vector<Ticks> wcet) {
  Task t;
  t.name = std::move(name);
  t.period = period;
  t.deadline = deadline;
  t.wcet = std::move(wcet);
  return t;
}

TEST(Sim, SingleTaskRunsPeriodically) {
  TaskSet ts;
  ts.tasks = {make_task("A", 10, 10, {3})};
  Architecture arch;
  arch.num_ecus = 1;
  Medium ring;
  ring.name = "r";
  ring.ecus = {0};
  arch.media = {ring};
  Allocation alloc;
  alloc.task_ecu = {0};
  alloc.slots = {{1}};
  SimOptions opts;
  opts.horizon = 100;
  const SimReport rep = simulate(ts, arch, alloc, opts);
  EXPECT_FALSE(rep.any_deadline_miss);
  EXPECT_EQ(rep.task_response[0], 3);
  EXPECT_EQ(rep.jobs_finished[0], 10);
}

TEST(Sim, PreemptionMatchesClassicAnalysis) {
  // C1=1,T1=4 high prio; C2=2,T2=10: analyzed r2 = 3; simulated worst
  // response must be exactly 3 under synchronous release.
  TaskSet ts;
  ts.tasks = {make_task("hp", 4, 4, {1}), make_task("lp", 10, 10, {2})};
  Architecture arch;
  arch.num_ecus = 1;
  Medium ring;
  ring.ecus = {0};
  arch.media = {ring};
  Allocation alloc;
  alloc.task_ecu = {0, 0};
  alloc.task_prio = {0, 1};
  alloc.slots = {{1}};
  SimOptions opts;
  opts.horizon = 200;
  const SimReport rep = simulate(ts, arch, alloc, opts);
  EXPECT_FALSE(rep.any_deadline_miss);
  EXPECT_EQ(rep.task_response[0], 1);
  EXPECT_EQ(rep.task_response[1], 3);
}

TEST(Sim, DetectsOverload) {
  TaskSet ts;
  ts.tasks = {make_task("A", 10, 10, {6}), make_task("B", 10, 10, {6})};
  Architecture arch;
  arch.num_ecus = 1;
  Medium ring;
  ring.ecus = {0};
  arch.media = {ring};
  Allocation alloc;
  alloc.task_ecu = {0, 0};
  alloc.slots = {{1}};
  SimOptions opts;
  opts.horizon = 100;
  const SimReport rep = simulate(ts, arch, alloc, opts);
  EXPECT_TRUE(rep.any_deadline_miss);
}

TEST(Sim, TokenRingDeliversWithinAnalyzedBound) {
  // Two tasks on different stations; rho=4, Lambda=16, slot 8 each:
  // analyzed leg response = 12 (cf. rt_test FeasibleRingSystem).
  TaskSet ts;
  Task a = make_task("A", 100, 50, {10, 12});
  a.messages.push_back({1, 4, 40, 0});
  Task b = make_task("B", 100, 100, {20, 25});
  ts.tasks = {a, b};
  Architecture arch;
  arch.num_ecus = 2;
  Medium ring;
  ring.name = "ring";
  ring.type = MediumType::kTokenRing;
  ring.ecus = {0, 1};
  ring.ring_byte_ticks = 1;
  ring.slot_max = 16;
  arch.media = {ring};
  Allocation alloc;
  alloc.task_ecu = {0, 1};
  alloc.msg_route = {{0}};
  alloc.msg_local_deadline = {{40}};
  alloc.slots = {{8, 8}};
  SimOptions opts;
  opts.horizon = 1000;
  const SimReport rep = simulate(ts, arch, alloc, opts);
  EXPECT_FALSE(rep.any_deadline_miss);
  ASSERT_EQ(rep.msg_leg_response[0].size(), 1u);
  EXPECT_GT(rep.msg_leg_response[0][0], 0);
  EXPECT_LE(rep.msg_leg_response[0][0], 12);  // analyzed bound
}

TEST(Sim, GatewayForwardingAddsServiceCost) {
  // One message across two rings through a gateway; it must arrive, and
  // the second-leg delay is measured after the gateway cost.
  TaskSet ts;
  Task a = make_task("A", 200, 100, {10, kForbidden, kForbidden});
  a.messages.push_back({1, 2, 150, 0});
  Task b = make_task("B", 200, 200, {kForbidden, kForbidden, 10});
  ts.tasks = {a, b};
  Architecture arch;
  arch.num_ecus = 3;
  auto ring = [](const char* name, std::vector<int> ecus) {
    Medium m;
    m.name = name;
    m.type = MediumType::kTokenRing;
    m.ecus = std::move(ecus);
    m.ring_byte_ticks = 1;
    m.gateway_cost = 5;
    return m;
  };
  arch.media = {ring("r1", {0, 1}), ring("r2", {1, 2})};
  Allocation alloc;
  alloc.task_ecu = {0, 2};
  alloc.msg_route = {{0, 1}};
  alloc.msg_local_deadline = {{70, 70}};
  alloc.slots = {{4, 4}, {4, 4}};
  SimOptions opts;
  opts.horizon = 2000;
  const SimReport rep = simulate(ts, arch, alloc, opts);
  EXPECT_FALSE(rep.any_deadline_miss);
  ASSERT_EQ(rep.msg_leg_response[0].size(), 2u);
  EXPECT_GT(rep.msg_leg_response[0][0], 0);
  EXPECT_GT(rep.msg_leg_response[0][1], 0);
}

TEST(Sim, CanNonPreemptiveBlocksHighPriority) {
  // A bulk lower-priority frame delays the high-priority one only in
  // non-preemptive mode.
  TaskSet ts;
  Task a = make_task("hi", 1000, 1000, {5, kForbidden});
  a.messages.push_back({1, 1, 400, 0});  // 65 bits
  Task c = make_task("lo", 1000, 1000, {6, kForbidden});
  c.messages.push_back({1, 8, 900, 0});  // 135 bits, lower priority
  Task b = make_task("rx", 1000, 1000, {kForbidden, 5});
  ts.tasks = {a, c, b};
  Architecture arch;
  arch.num_ecus = 2;
  Medium can;
  can.name = "can";
  can.type = MediumType::kCan;
  can.ecus = {0, 1};
  can.can_bit_ticks = 1;
  arch.media = {can};
  Allocation alloc;
  alloc.task_ecu = {0, 0, 1};
  alloc.task_prio = {1, 0, 2};  // "lo"-the-task runs first, queues first
  alloc.msg_route = {{0}, {0}};
  alloc.msg_local_deadline = {{400}, {900}};
  alloc.slots = {{}};
  SimOptions opts;
  opts.horizon = 3000;

  const SimReport preemptable = simulate(ts, arch, alloc, opts);
  arch.media[0].can_blocking = true;
  const SimReport blocking = simulate(ts, arch, alloc, opts);
  ASSERT_EQ(preemptable.msg_leg_response[0].size(), 1u);
  // Non-preemptive arbitration can only make the high-priority frame
  // slower.
  EXPECT_GE(blocking.msg_leg_response[0][0],
            preemptable.msg_leg_response[0][0]);
}

// ---------------------------------------------------------------------
// The soundness property: simulated <= analyzed.
// ---------------------------------------------------------------------

alloc::Problem random_system(Rng& rng) {
  alloc::Problem p;
  const int num_ecus = static_cast<int>(rng.uniform(2, 3));
  p.arch.num_ecus = num_ecus;
  Medium medium;
  medium.name = "bus";
  if (rng.chance(0.5)) {
    medium.type = MediumType::kTokenRing;
    medium.ring_byte_ticks = 1;
    medium.slot_min = 1;
    medium.slot_max = 10;
  } else {
    medium.type = MediumType::kCan;
    medium.can_bit_ticks = 1;
    medium.can_bits_per_tick = 10;
    medium.can_blocking = rng.chance(0.5);
  }
  for (int e = 0; e < num_ecus; ++e) medium.ecus.push_back(e);
  p.arch.media = {medium};
  const int num_tasks = static_cast<int>(rng.uniform(2, 4));
  for (int i = 0; i < num_tasks; ++i) {
    const Ticks period = 100 * rng.uniform(2, 6);
    std::vector<Ticks> wcet;
    for (int e = 0; e < num_ecus; ++e) wcet.push_back(rng.uniform(5, 25));
    p.tasks.tasks.push_back(
        make_task("T" + std::to_string(i), period, period, wcet));
  }
  for (int m = 0; m < 2; ++m) {
    if (!rng.chance(0.8)) continue;
    const int from = static_cast<int>(rng.index(p.tasks.tasks.size()));
    int to = from;
    while (to == from) {
      to = static_cast<int>(rng.index(p.tasks.tasks.size()));
    }
    Message msg;
    msg.target_task = to;
    msg.size_bytes = rng.uniform(1, 6);
    msg.deadline = rng.uniform(100, 200);
    // Cover the sender's completion-time variation so the analysis'
    // interference windows dominate the simulated arrival pattern.
    msg.release_jitter =
        p.tasks.tasks[static_cast<std::size_t>(from)].deadline;
    p.tasks.tasks[static_cast<std::size_t>(from)].messages.push_back(msg);
  }
  return p;
}

TEST(SimSoundness, ObservedNeverExceedsAnalyzed) {
  Rng rng(0x51D);
  int systems_checked = 0, legs_checked = 0;
  for (int round = 0; round < 25; ++round) {
    const alloc::Problem p = random_system(rng);
    const auto res = alloc::optimize(p, alloc::Objective::feasibility());
    if (res.status != alloc::OptimizeResult::Status::kOptimal) continue;
    const VerifyReport analysis =
        verify(p.tasks, p.arch, res.allocation);
    ASSERT_TRUE(analysis.feasible) << "round " << round;

    SimOptions opts;
    opts.seed = 1000 + static_cast<std::uint64_t>(round);
    opts.max_horizon = 60000;
    const SimReport sim = simulate(p.tasks, p.arch, res.allocation, opts);
    EXPECT_FALSE(sim.any_deadline_miss)
        << "round " << round << ": "
        << (sim.misses.empty() ? "" : sim.misses[0]);
    for (std::size_t i = 0; i < p.tasks.tasks.size(); ++i) {
      ASSERT_GT(sim.jobs_finished[i], 0) << "round " << round;
      EXPECT_LE(sim.task_response[i], analysis.task_response[i])
          << "round " << round << " task " << i;
    }
    for (std::size_t g = 0; g < sim.msg_leg_response.size(); ++g) {
      for (std::size_t l = 0; l < sim.msg_leg_response[g].size(); ++l) {
        if (sim.msg_leg_response[g][l] < 0) continue;  // never delivered?
        ASSERT_TRUE(analysis.msg_legs[g][l].ok);
        EXPECT_LE(sim.msg_leg_response[g][l],
                  analysis.msg_legs[g][l].response)
            << "round " << round << " msg " << g << " leg " << l;
        ++legs_checked;
      }
    }
    ++systems_checked;
  }
  EXPECT_GT(systems_checked, 10);
  EXPECT_GT(legs_checked, 10);
}

}  // namespace
}  // namespace optalloc::rt

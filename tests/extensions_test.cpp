// Tests for the model extensions: CAN non-preemptive blocking (the
// paper's "blocking factors" remark), solver simplification, and their
// interaction with optimization.

#include <gtest/gtest.h>

#include "alloc/optimizer.hpp"
#include "rt/verify.hpp"
#include "sat/solver.hpp"

namespace optalloc {
namespace {

using rt::Ticks;

rt::Task make_task(std::string name, Ticks period, Ticks deadline,
                   std::vector<Ticks> wcet) {
  rt::Task t;
  t.name = std::move(name);
  t.period = period;
  t.deadline = deadline;
  t.wcet = std::move(wcet);
  return t;
}

/// Two pinned tasks exchanging frames on a CAN bus, plus a low-priority
/// bulk message that blocks them when can_blocking is on.
alloc::Problem can_fixture(bool blocking) {
  alloc::Problem p;
  p.arch.num_ecus = 2;
  rt::Medium can;
  can.name = "can";
  can.type = rt::MediumType::kCan;
  can.ecus = {0, 1};
  can.can_bit_ticks = 1;
  can.can_blocking = blocking;
  p.arch.media = {can};
  rt::Task a = make_task("a", 1000, 500, {10, rt::kForbidden});
  rt::Task b = make_task("b", 1000, 1000, {rt::kForbidden, 10});
  // High-priority 1-byte frame (65 bits): deadline chosen so it fits
  // without blocking (65 <= 100) but misses with an 8-byte blocker
  // (65 + 135 = 200 > 100).
  a.messages.push_back({1, 1, 100, 0});
  // Low-priority bulk frame (8 bytes = 135 bits), generous deadline.
  b.messages.push_back({0, 8, 900, 0});
  p.tasks.tasks = {a, b};
  return p;
}

TEST(CanBlocking, VerifierAddsLowerPriorityFrameTime) {
  const alloc::Problem without = can_fixture(false);
  rt::Allocation alloc;
  alloc.task_ecu = {0, 1};
  alloc.msg_route = {{0}, {0}};
  alloc.msg_local_deadline = {{100}, {900}};
  alloc.slots = {{}};
  const auto r1 = rt::verify(without.tasks, without.arch, alloc);
  ASSERT_TRUE(r1.feasible) << (r1.violations.empty() ? ""
                                                     : r1.violations[0]);
  EXPECT_EQ(r1.msg_legs[0][0].response, 65);

  const alloc::Problem with = can_fixture(true);
  const auto r2 = rt::verify(with.tasks, with.arch, alloc);
  EXPECT_FALSE(r2.feasible);  // 65 + 135 = 200 > 100
}

TEST(CanBlocking, HighestPriorityUnaffectedWithoutLowerTraffic) {
  alloc::Problem p = can_fixture(true);
  p.tasks.tasks[1].messages.clear();  // no lower-priority frames
  rt::Allocation alloc;
  alloc.task_ecu = {0, 1};
  alloc.msg_route = {{0}};
  alloc.msg_local_deadline = {{100}};
  alloc.slots = {{}};
  const auto report = rt::verify(p.tasks, p.arch, alloc);
  ASSERT_TRUE(report.feasible);
  EXPECT_EQ(report.msg_legs[0][0].response, 65);
}

TEST(CanBlocking, EncoderAgreesWithVerifier) {
  // With blocking on, the fixture is infeasible (the bulk frame cannot
  // leave the bus: tasks are pinned apart); without blocking it is
  // feasible. Encoder and verifier must agree in both modes.
  const alloc::Problem without = can_fixture(false);
  const auto res1 =
      alloc::optimize(without, alloc::Objective::feasibility());
  ASSERT_EQ(res1.status, alloc::OptimizeResult::Status::kOptimal);
  const auto rep1 = rt::verify(without.tasks, without.arch, res1.allocation);
  EXPECT_TRUE(rep1.feasible);

  const alloc::Problem with = can_fixture(true);
  const auto res2 = alloc::optimize(with, alloc::Objective::feasibility());
  EXPECT_EQ(res2.status, alloc::OptimizeResult::Status::kInfeasible);
}

TEST(CanBlocking, OptimizerAvoidsBlockingByColocation) {
  // Unpin the bulk sender: co-locating it with its receiver removes the
  // blocker from the bus and makes the system feasible again.
  alloc::Problem p = can_fixture(true);
  p.tasks.tasks[1].wcet = {10, 10};  // b may now sit on ECU 0
  const auto res = alloc::optimize(p, alloc::Objective::feasibility());
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal);
  const auto report = rt::verify(p.tasks, p.arch, res.allocation);
  ASSERT_TRUE(report.feasible)
      << (report.violations.empty() ? "" : report.violations[0]);
  // The bulk message must be local (b on ECU 0 with a).
  EXPECT_TRUE(res.allocation.msg_route[1].empty());
}

TEST(Simplify, RemovesSatisfiedClauses) {
  sat::Solver s;
  const sat::Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  ASSERT_TRUE(s.add_clause({sat::pos(a), sat::pos(b)}));
  ASSERT_TRUE(s.add_clause({sat::pos(b), sat::pos(c)}));
  ASSERT_TRUE(s.add_clause({sat::neg(a), sat::pos(c)}));
  EXPECT_EQ(s.num_clauses(), 3);
  ASSERT_TRUE(s.add_unit(sat::pos(b)));
  ASSERT_TRUE(s.simplify());
  // The two clauses containing b are satisfied and removed.
  EXPECT_EQ(s.num_clauses(), 1);
  EXPECT_EQ(s.solve(), sat::LBool::kTrue);
}

TEST(Simplify, ReportsExistingTopLevelConflict) {
  // This solver propagates units eagerly, so the contradiction surfaces
  // at add time already; simplify must then report unsatisfiability too.
  sat::Solver s;
  const sat::Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_clause({sat::pos(a), sat::pos(b)}));
  ASSERT_TRUE(s.add_unit(sat::neg(a)));  // propagates b = true
  EXPECT_EQ(s.value(b), sat::LBool::kTrue);
  EXPECT_FALSE(s.add_unit(sat::neg(b)));  // immediate conflict
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.simplify());
}

TEST(Simplify, IdempotentOnCleanFormula) {
  sat::Solver s;
  const sat::Var a = s.new_var(), b = s.new_var();
  ASSERT_TRUE(s.add_clause({sat::pos(a), sat::pos(b)}));
  ASSERT_TRUE(s.simplify());
  ASSERT_TRUE(s.simplify());
  EXPECT_EQ(s.num_clauses(), 1);
}

}  // namespace
}  // namespace optalloc

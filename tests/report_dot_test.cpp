// Tests for the human-readable allocation report and the Graphviz export,
// plus solver/encoder hint behaviors that the warm-start machinery relies
// on.

#include <gtest/gtest.h>

#include "encode/bitblast.hpp"
#include "net/dot.hpp"
#include "rt/report.hpp"
#include "sat/solver.hpp"

namespace optalloc {
namespace {

rt::TaskSet two_tasks() {
  rt::Task a;
  a.name = "alpha";
  a.period = 100;
  a.deadline = 50;
  a.wcet = {10, 12};
  a.messages.push_back({1, 4, 60, 0});
  rt::Task b;
  b.name = "beta";
  b.period = 100;
  b.deadline = 100;
  b.wcet = {20, 25};
  rt::TaskSet ts;
  ts.tasks = {a, b};
  return ts;
}

rt::Architecture one_ring() {
  rt::Architecture arch;
  arch.num_ecus = 2;
  rt::Medium ring;
  ring.name = "ring0";
  ring.type = rt::MediumType::kTokenRing;
  ring.ecus = {0, 1};
  ring.slot_min = 1;
  ring.slot_max = 16;
  arch.media = {ring};
  return arch;
}

rt::Allocation split_allocation() {
  rt::Allocation alloc;
  alloc.task_ecu = {0, 1};
  alloc.msg_route = {{0}};
  alloc.msg_local_deadline = {{60}};
  alloc.slots = {{8, 8}};
  return alloc;
}

TEST(Report, FeasibleReportListsTasksAndMessages) {
  const std::string text =
      rt::render_report(two_tasks(), one_ring(), split_allocation());
  EXPECT_NE(text.find("FEASIBLE"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("Lambda=16"), std::string::npos);
  EXPECT_NE(text.find("leg 1/1"), std::string::npos);
  EXPECT_NE(text.find("ok"), std::string::npos);
  EXPECT_EQ(text.find("violation"), std::string::npos);
}

TEST(Report, InfeasibleReportListsViolations) {
  rt::TaskSet ts = two_tasks();
  ts.tasks[1].deadline = 10;  // below WCET everywhere
  ts.tasks[1].period = 10;
  const std::string text =
      rt::render_report(ts, one_ring(), split_allocation());
  EXPECT_NE(text.find("INFEASIBLE"), std::string::npos);
  EXPECT_NE(text.find("violation"), std::string::npos);
}

TEST(Report, UtilizationPercentagesPresent) {
  const std::string text =
      rt::render_report(two_tasks(), one_ring(), split_allocation());
  EXPECT_NE(text.find("utilization 10.0%"), std::string::npos);  // alpha@0
  EXPECT_NE(text.find("utilization 25.0%"), std::string::npos);  // beta@1
}

TEST(Dot, ArchitectureExportHasClustersAndGateways) {
  rt::Architecture arch;
  arch.num_ecus = 3;
  rt::Medium r1, r2;
  r1.name = "r1";
  r1.ecus = {0, 1};
  r2.name = "r2";
  r2.ecus = {1, 2};
  arch.media = {r1, r2};
  arch.gateway_only = {0, 1, 0};
  const std::string dot = net::to_dot(arch);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // ECU 1 gateway
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);
  EXPECT_NE(dot.find("label=\"gw\""), std::string::npos);
}

TEST(Dot, AllocationExportShowsTasksAndMessages) {
  const std::string dot =
      net::to_dot(two_tasks(), one_ring(), split_allocation());
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("beta"), std::string::npos);
  EXPECT_NE(dot.find("label=\"m0\""), std::string::npos);
}

TEST(Dot, IntraEcuMessagesDrawNoEdge) {
  rt::Allocation alloc;
  alloc.task_ecu = {0, 0};
  alloc.msg_route = {{}};
  alloc.msg_local_deadline = {{}};
  alloc.slots = {{1, 1}};
  const std::string dot = net::to_dot(two_tasks(), one_ring(), alloc);
  EXPECT_EQ(dot.find("label=\"m0\""), std::string::npos);
}

TEST(SolverHints, PolarityGuidesFirstModel) {
  // A free variable with no constraints takes its hinted phase.
  sat::Solver s;
  const sat::Var v = s.new_var();
  const sat::Var w = s.new_var();
  s.set_polarity(v, false);  // try true first
  s.set_polarity(w, true);   // try false first
  ASSERT_EQ(s.solve(), sat::LBool::kTrue);
  EXPECT_EQ(s.model_value(v), sat::LBool::kTrue);
  EXPECT_EQ(s.model_value(w), sat::LBool::kFalse);
}

TEST(SolverHints, BitBlasterHintsReproduceTargetValues) {
  ir::Context ctx;
  sat::Solver solver;
  encode::BitBlaster bb(ctx, solver);
  const auto x = ctx.int_var("x", 0, 100);
  const auto p = ctx.bool_var("p");
  bb.touch(x);
  bb.hint_int(x, 73);
  bb.hint_bool(p, true);
  // p must appear in some formula to be encoded; use an implication that
  // doesn't constrain x.
  ASSERT_TRUE(bb.assert_true(
      ctx.implies(p, ctx.le(ctx.constant(0), x))));
  ASSERT_EQ(solver.solve(), sat::LBool::kTrue);
  EXPECT_EQ(bb.int_value(x), 73);
  EXPECT_TRUE(bb.bool_value(p));
}

}  // namespace
}  // namespace optalloc

// Cross-module integration tests: the full pipeline exercised through the
// public file format and the workload exports; solver stress under heavy
// incremental load (garbage collection, clause-DB reduction); CAN-medium
// optimality fuzz against exhaustive ground truth.

#include <gtest/gtest.h>

#include <sstream>

#include "alloc/io.hpp"
#include "alloc/optimizer.hpp"
#include "heur/exhaustive.hpp"
#include "rt/sim.hpp"
#include "rt/verify.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/tindell.hpp"

namespace optalloc {
namespace {

TEST(Integration, TindellRoundTripsThroughProblemFormat) {
  const alloc::Problem original = workload::tindell_system();
  std::ostringstream out;
  alloc::write_problem(out, original);
  std::istringstream in(out.str());
  const alloc::Problem reparsed = alloc::parse_problem(in);
  ASSERT_EQ(reparsed.tasks.tasks.size(), original.tasks.tasks.size());
  for (std::size_t i = 0; i < original.tasks.tasks.size(); ++i) {
    EXPECT_EQ(reparsed.tasks.tasks[i].wcet, original.tasks.tasks[i].wcet);
    EXPECT_EQ(reparsed.tasks.tasks[i].period,
              original.tasks.tasks[i].period);
    EXPECT_EQ(reparsed.tasks.tasks[i].messages.size(),
              original.tasks.tasks[i].messages.size());
  }
  EXPECT_EQ(reparsed.arch.num_ecus, original.arch.num_ecus);
  EXPECT_EQ(reparsed.arch.media[0].slot_max, original.arch.media[0].slot_max);
}

TEST(Integration, ReparsedPrefixYieldsSameOptimum) {
  const alloc::Problem original = workload::tindell_prefix(12);
  std::ostringstream out;
  alloc::write_problem(out, original);
  std::istringstream in(out.str());
  const alloc::Problem reparsed = alloc::parse_problem(in);
  const auto a = alloc::optimize(original, alloc::Objective::ring_trt(0));
  const auto b = alloc::optimize(reparsed, alloc::Objective::ring_trt(0));
  ASSERT_EQ(a.status, alloc::OptimizeResult::Status::kOptimal);
  ASSERT_EQ(b.status, alloc::OptimizeResult::Status::kOptimal);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(Integration, HierarchicalArchitecturesRoundTrip) {
  for (const auto& p :
       {workload::architecture_a(20), workload::architecture_b(20),
        workload::architecture_c(false, 20)}) {
    std::ostringstream out;
    alloc::write_problem(out, p);
    std::istringstream in(out.str());
    const alloc::Problem q = alloc::parse_problem(in);
    EXPECT_EQ(q.arch.media.size(), p.arch.media.size());
    for (int e = 0; e < p.arch.num_ecus; ++e) {
      EXPECT_EQ(q.arch.can_host_tasks(e), p.arch.can_host_tasks(e));
    }
  }
}

TEST(Integration, SolverSurvivesHeavyIncrementalChurn) {
  // Many solves over a growing clause database force clause-DB reduction
  // and arena garbage collection; statistics must reflect the churn and
  // verdicts must stay consistent (satisfiable throughout).
  sat::Solver solver;
  Rng rng(0x6C);
  std::vector<sat::Var> vars;
  for (int i = 0; i < 120; ++i) vars.push_back(solver.new_var());
  for (int round = 0; round < 30; ++round) {
    // Add a satisfiable chunk: implications along random permutations.
    for (int c = 0; c < 150; ++c) {
      const sat::Var a = vars[rng.index(vars.size())];
      const sat::Var b = vars[rng.index(vars.size())];
      const sat::Var d = vars[rng.index(vars.size())];
      solver.add_clause({sat::neg(a), sat::pos(b), sat::pos(d)});
    }
    std::vector<sat::Lit> assumptions;
    for (int k = 0; k < 6; ++k) {
      assumptions.push_back(
          sat::Lit(vars[rng.index(vars.size())], rng.chance(0.5)));
    }
    // All-positive clauses only, so all-true always satisfies: any
    // verdict other than SAT/UNSAT-under-assumptions is a bug; pure
    // positive assumptions must keep it SAT.
    const auto verdict = solver.solve(assumptions);
    ASSERT_NE(verdict, sat::LBool::kUndef);
  }
  EXPECT_GT(solver.stats().conflicts + solver.stats().propagations, 0u);
}

TEST(Integration, SolverGarbageCollectionUnderConflictLoad) {
  // A hard UNSAT instance with bounded conflicts, solved repeatedly, must
  // trigger learnt-clause deletion without corrupting state.
  sat::Solver solver;
  std::vector<std::vector<sat::Var>> grid(10, std::vector<sat::Var>(9));
  for (auto& row : grid) {
    for (auto& v : row) v = solver.new_var();
  }
  for (int p = 0; p < 10; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < 9; ++h) clause.push_back(sat::pos(grid[p][h]));
    ASSERT_TRUE(solver.add_clause(clause));
  }
  for (int h = 0; h < 9; ++h) {
    for (int p1 = 0; p1 < 10; ++p1) {
      for (int p2 = p1 + 1; p2 < 10; ++p2) {
        solver.add_binary(sat::neg(grid[p1][h]), sat::neg(grid[p2][h]));
      }
    }
  }
  for (int i = 0; i < 5; ++i) {
    const auto verdict = solver.solve({}, sat::Budget{.conflicts = 4000});
    if (verdict == sat::LBool::kFalse) break;  // solver proved UNSAT early
    ASSERT_EQ(verdict, sat::LBool::kUndef);
  }
  EXPECT_GT(solver.stats().removed_clauses, 0u);
}

TEST(Integration, OptimizedTindellPrefixSurvivesSimulation) {
  // End-to-end: optimize a mid-size benchmark instance, then *execute*
  // the winning allocation in the discrete-event simulator over two
  // hyperperiods. Task-side behaviour must respect the analytical bounds
  // exactly. (Message legs are additionally bounded by their deadline
  // budgets; the base model — like the paper's — sets message release
  // jitter to 0, so sender completion-time variation is checked against
  // the budget, not the tighter per-leg response bound.)
  const alloc::Problem p = workload::tindell_prefix(20);
  const auto res = alloc::optimize(p, alloc::Objective::ring_trt(0));
  ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal);
  const rt::VerifyReport analysis =
      rt::verify(p.tasks, p.arch, res.allocation);
  ASSERT_TRUE(analysis.feasible);
  rt::SimOptions opts;
  opts.seed = 7;
  const rt::SimReport sim = simulate(p.tasks, p.arch, res.allocation, opts);
  for (std::size_t i = 0; i < p.tasks.tasks.size(); ++i) {
    ASSERT_GT(sim.jobs_finished[i], 0);
    EXPECT_LE(sim.task_response[i], analysis.task_response[i])
        << p.tasks.tasks[i].name;
  }
  for (const std::string& miss : sim.misses) {
    // Task-side misses would falsify the analysis; message-side timing is
    // bounded by budgets below.
    EXPECT_EQ(miss.find("task"), std::string::npos) << miss;
  }
  const auto refs = p.tasks.message_refs();
  for (std::size_t g = 0; g < refs.size(); ++g) {
    for (std::size_t l = 0; l < sim.msg_leg_response[g].size(); ++l) {
      if (sim.msg_leg_response[g][l] < 0) continue;
      EXPECT_LE(sim.msg_leg_response[g][l],
                res.allocation.msg_local_deadline[g][l])
          << "msg " << g << " leg " << l;
    }
  }
}

TEST(Integration, CanBlockingOptimalityMatchesExhaustive) {
  // Same single-CAN setup but with non-preemptive blocking enabled: the
  // exhaustive oracle stays exact, so optima must still coincide.
  Rng rng(0xB10C);
  int checked = 0;
  for (int round = 0; round < 12; ++round) {
    alloc::Problem p;
    p.arch.num_ecus = 2;
    rt::Medium can;
    can.name = "can";
    can.type = rt::MediumType::kCan;
    can.ecus = {0, 1};
    can.can_bit_ticks = 1;
    can.can_blocking = true;
    p.arch.media = {can};
    for (int i = 0; i < 3; ++i) {
      rt::Task t;
      t.name = "T" + std::to_string(i);
      t.period = 200 * rng.uniform(2, 5);
      t.deadline = t.period;
      t.wcet = {rng.uniform(10, 30), rng.uniform(10, 30)};
      p.tasks.tasks.push_back(std::move(t));
    }
    p.tasks.tasks[0].messages.push_back(
        {1, rng.uniform(1, 4), rng.uniform(80, 200), 0});
    p.tasks.tasks[2].messages.push_back(
        {0, 8, rng.uniform(200, 400), 0});
    const auto truth =
        heur::exhaustive_search(p, alloc::Objective::can_load(0));
    ASSERT_TRUE(truth.has_value());
    const auto res = alloc::optimize(p, alloc::Objective::can_load(0));
    if (truth->feasible && truth->exact) {
      ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal)
          << "round " << round;
      EXPECT_EQ(res.cost, truth->cost) << "round " << round;
      ++checked;
    } else if (!truth->feasible && truth->exact) {
      EXPECT_EQ(res.status, alloc::OptimizeResult::Status::kInfeasible)
          << "round " << round;
    }
  }
  EXPECT_GT(checked, 6);
}

TEST(Integration, CanOptimalityMatchesExhaustive) {
  // Single CAN bus: the exhaustive oracle is exact (no slots, single-leg
  // routes) — the SAT optimum must match it everywhere.
  Rng rng(0xCA0);
  int checked = 0;
  for (int round = 0; round < 15; ++round) {
    alloc::Problem p;
    const int num_ecus = static_cast<int>(rng.uniform(2, 3));
    p.arch.num_ecus = num_ecus;
    rt::Medium can;
    can.name = "can";
    can.type = rt::MediumType::kCan;
    for (int e = 0; e < num_ecus; ++e) can.ecus.push_back(e);
    can.can_bit_ticks = 1;
    can.can_bits_per_tick = 10;
    p.arch.media = {can};
    const int num_tasks = static_cast<int>(rng.uniform(3, 4));
    for (int i = 0; i < num_tasks; ++i) {
      rt::Task t;
      t.name = "T" + std::to_string(i);
      t.period = 100 * rng.uniform(2, 5);
      t.deadline = t.period;
      for (int e = 0; e < num_ecus; ++e) {
        t.wcet.push_back(rng.uniform(10, 40));
      }
      p.tasks.tasks.push_back(std::move(t));
    }
    for (int m = 0; m < 2; ++m) {
      const int from = static_cast<int>(rng.index(p.tasks.tasks.size()));
      int to = from;
      while (to == from) {
        to = static_cast<int>(rng.index(p.tasks.tasks.size()));
      }
      p.tasks.tasks[static_cast<std::size_t>(from)].messages.push_back(
          {to, rng.uniform(1, 8), rng.uniform(60, 150), 0});
    }
    if (rng.chance(0.4)) {
      p.tasks.tasks[0].separated_from = {1};
      p.tasks.tasks[1].separated_from = {0};
    }
    const auto truth =
        heur::exhaustive_search(p, alloc::Objective::can_load(0));
    ASSERT_TRUE(truth.has_value());
    const auto res = alloc::optimize(p, alloc::Objective::can_load(0));
    if (truth->feasible && truth->exact) {
      ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal)
          << "round " << round;
      EXPECT_EQ(res.cost, truth->cost) << "round " << round;
      const auto report = rt::verify(p.tasks, p.arch, res.allocation);
      EXPECT_TRUE(report.feasible);
      ++checked;
    }
  }
  EXPECT_GT(checked, 8);
}

TEST(Integration, HierarchicalFuzzSatNeverWorseThanExhaustive) {
  // Two rings joined by a gateway: exhaustive budgets are heuristic
  // (multi-hop), so SAT must be <= exhaustive whenever both succeed, and
  // must find a solution whenever exhaustive does.
  Rng rng(0x41E);
  int compared = 0;
  for (int round = 0; round < 12; ++round) {
    alloc::Problem p;
    p.arch.num_ecus = 3;
    auto ring = [&](const char* name, std::vector<int> ecus) {
      rt::Medium m;
      m.name = name;
      m.type = rt::MediumType::kTokenRing;
      m.ecus = std::move(ecus);
      m.ring_byte_ticks = 1;
      m.slot_min = 1;
      m.slot_max = 6;
      m.gateway_cost = rng.uniform(0, 4);
      return m;
    };
    p.arch.media = {ring("r1", {0, 1}), ring("r2", {1, 2})};
    for (int i = 0; i < 3; ++i) {
      rt::Task t;
      t.name = "T" + std::to_string(i);
      t.period = 100 * rng.uniform(2, 4);
      t.deadline = t.period;
      for (int e = 0; e < 3; ++e) {
        t.wcet.push_back(rng.chance(0.2) ? rt::kForbidden
                                         : rng.uniform(5, 25));
      }
      bool any = false;
      for (const rt::Ticks c : t.wcet) any |= (c != rt::kForbidden);
      if (!any) t.wcet[0] = 10;
      p.tasks.tasks.push_back(std::move(t));
    }
    p.tasks.tasks[0].messages.push_back(
        {2, rng.uniform(1, 3), rng.uniform(60, 120), 0});
    const auto truth = heur::exhaustive_search(
        p, alloc::Objective::sum_trt());
    ASSERT_TRUE(truth.has_value());
    const auto res = alloc::optimize(p, alloc::Objective::sum_trt());
    if (truth->feasible) {
      ASSERT_EQ(res.status, alloc::OptimizeResult::Status::kOptimal)
          << "round " << round;
      EXPECT_LE(res.cost, truth->cost) << "round " << round;
      const auto report = rt::verify(p.tasks, p.arch, res.allocation);
      EXPECT_TRUE(report.feasible)
          << (report.violations.empty() ? "" : report.violations[0]);
      ++compared;
    } else if (res.status == alloc::OptimizeResult::Status::kOptimal) {
      // SAT may succeed where the heuristic completion fails; verify it.
      const auto report = rt::verify(p.tasks, p.arch, res.allocation);
      EXPECT_TRUE(report.feasible);
    }
  }
  EXPECT_GT(compared, 5);
}

}  // namespace
}  // namespace optalloc

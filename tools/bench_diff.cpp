// Compare two benchmark artifacts (BENCH_*.json) row by row.
//
//   bench_diff OLD.json NEW.json [--metrics seconds,conflicts,...]
//              [--threshold 1.20] [--json]
//
// Rows are matched by their "instance" key (table benches) or "phase"
// key (bench_micro). For every numeric metric present in both versions
// of a row the tool prints per-row ratios (new/old) and the geometric
// mean across rows — the number the performance gate in EXPERIMENTS.md
// is stated in. Rows carrying a "cost" field are additionally checked
// for *equality*: a benchmark run that got faster but reports a
// different optimum is a correctness bug, not a speedup.
//
// Exit status: 0 = clean; 1 = regression (a --threshold metric's geomean
// ratio exceeded the threshold, or a cost mismatch); 2 = usage or parse
// error. Without --threshold the run is informational and only cost
// mismatches fail it — that is the mode the CI step uses, diffing a
// fresh bench_micro run against the committed baseline.
//
// The parser below is a deliberately small recursive-descent JSON
// reader: the artifacts are machine-written by obs::JsonObject, so it
// only needs to be correct, not forgiving.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------- JSON --
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Value& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  std::string error() const { return error_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " near offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // The artifacts are ASCII; skip the four hex digits and
            // substitute '?' rather than decoding surrogate pairs.
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            pos_ += 4;
            c = '?';
            break;
          default: c = e; break;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool value(Value& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == 'n') {
      out.kind = Value::Kind::kNull;
      return literal("null");
    }
    if (c == 't') {
      out.kind = Value::Kind::kBool;
      out.b = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = Value::Kind::kBool;
      out.b = false;
      return literal("false");
    }
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return string(out.str);
    }
    if (c == '[') {
      ++pos_;
      out.kind = Value::Kind::kArray;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        out.arr.emplace_back();
        if (!value(out.arr.back())) return false;
        skip_ws();
        if (pos_ >= s_.size()) return fail("unterminated array");
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      out.kind = Value::Kind::kObject;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
        ++pos_;
        out.obj.emplace_back(std::move(key), Value{});
        if (!value(out.obj.back().second)) return false;
        skip_ws();
        if (pos_ >= s_.size()) return fail("unterminated object");
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    // Number.
    const std::size_t start = pos_;
    if (s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    out.kind = Value::Kind::kNumber;
    out.num = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------- flattening --
// A row becomes a flat map of numeric metrics; nested objects (the perf
// counter blocks) flatten with a dotted prefix, JSON nulls are skipped
// (perf-less hosts), strings/bools are ignored except the matching key.
void flatten(const Value& v, const std::string& prefix,
             std::map<std::string, double>& out) {
  for (const auto& [key, val] : v.obj) {
    const std::string name = prefix.empty() ? key : prefix + "." + key;
    if (val.kind == Value::Kind::kNumber) {
      out[name] = val.num;
    } else if (val.kind == Value::Kind::kObject) {
      flatten(val, name, out);
    }
  }
}

struct Row {
  std::string name;
  std::string status;  ///< empty when the artifact carries no status
  std::map<std::string, double> metrics;
};

// Locate the row array ("instances" for table benches, "phases" for
// bench_micro, "configs" for bench_obs_overhead) and its per-row key.
// An artifact with none of those (bench_service writes one flat object)
// becomes a single row named by its "bench" field.
bool extract_rows(const Value& root, const char* path, std::vector<Row>& rows) {
  const Value* arr = root.find("instances");
  const char* key = "instance";
  if (arr == nullptr) {
    arr = root.find("phases");
    key = "phase";
  }
  if (arr == nullptr) {
    arr = root.find("configs");
    key = "config";
  }
  if (arr == nullptr) {
    Row row;
    if (const Value* name = root.find("bench");
        name != nullptr && name->kind == Value::Kind::kString) {
      row.name = name->str;
    } else {
      row.name = path;
    }
    flatten(root, "", row.metrics);
    if (row.metrics.empty()) {
      std::fprintf(stderr, "bench_diff: %s has no numeric fields\n", path);
      return false;
    }
    rows.push_back(std::move(row));
    return true;
  }
  if (arr->kind != Value::Kind::kArray) {
    std::fprintf(stderr, "bench_diff: %s: row container is not an array\n",
                 path);
    return false;
  }
  for (const Value& item : arr->arr) {
    if (item.kind != Value::Kind::kObject) continue;
    Row row;
    if (const Value* name = item.find(key);
        name != nullptr && name->kind == Value::Kind::kString) {
      row.name = name->str;
    } else {
      row.name = "#" + std::to_string(rows.size());
    }
    if (const Value* status = item.find("status");
        status != nullptr && status->kind == Value::Kind::kString) {
      row.status = status->str;
    }
    flatten(item, "", row.metrics);
    rows.push_back(std::move(row));
  }
  return true;
}

bool load(const char* path, std::vector<Row>& rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Value root;
  Parser parser(text);
  if (!parser.parse(root) || root.kind != Value::Kind::kObject) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path,
                 parser.error().empty() ? "not a JSON object"
                                        : parser.error().c_str());
    return false;
  }
  return extract_rows(root, path, rows);
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff OLD.json NEW.json "
               "[--metrics a,b,...] [--threshold R] [--json]\n"
               "  --metrics    restrict the report to these metrics "
               "(default: all shared numeric fields)\n"
               "  --threshold  fail (exit 1) when a reported metric's "
               "geomean new/old ratio exceeds R\n"
               "  --json       machine-readable output\n");
  return 2;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  std::set<std::string> wanted;
  double threshold = 0.0;  // 0 = informational
  bool json_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string m;
      while (std::getline(ss, m, ',')) {
        if (!m.empty()) wanted.insert(m);
      }
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
      if (threshold <= 0.0) {
        std::fprintf(stderr, "bench_diff: --threshold wants a ratio > 0\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_out = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (old_path == nullptr) {
      old_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      return usage();
    }
  }
  if (old_path == nullptr || new_path == nullptr) return usage();

  std::vector<Row> old_rows;
  std::vector<Row> new_rows;
  if (!load(old_path, old_rows) || !load(new_path, new_rows)) return 2;

  std::map<std::string, const Row*> new_by_name;
  for (const Row& r : new_rows) new_by_name[r.name] = &r;

  // Per-metric log-ratio accumulation over matched rows, plus the cost /
  // status agreement check.
  struct Accum {
    double log_sum = 0.0;
    int n = 0;
  };
  std::map<std::string, Accum> accum;
  std::vector<std::string> cost_mismatches;
  struct RowDiff {
    std::string name;
    std::map<std::string, std::pair<double, double>> vals;  // old, new
  };
  std::vector<RowDiff> diffs;
  int matched = 0;

  for (const Row& o : old_rows) {
    const auto it = new_by_name.find(o.name);
    if (it == new_by_name.end()) continue;
    const Row& n = *it->second;
    ++matched;
    if (!o.status.empty() && !n.status.empty() && o.status != n.status) {
      cost_mismatches.push_back(o.name + ": status " + o.status + " -> " +
                                n.status);
    }
    const auto oc = o.metrics.find("cost");
    const auto nc = n.metrics.find("cost");
    if (oc != o.metrics.end() && nc != n.metrics.end() &&
        oc->second != nc->second) {
      cost_mismatches.push_back(
          o.name + ": cost " + std::to_string(oc->second) + " -> " +
          std::to_string(nc->second));
    }
    RowDiff d;
    d.name = o.name;
    for (const auto& [metric, old_val] : o.metrics) {
      if (!wanted.empty() && wanted.count(metric) == 0) continue;
      if (metric == "cost" || metric == "lower_bound") continue;
      const auto nv = n.metrics.find(metric);
      if (nv == n.metrics.end()) continue;
      d.vals[metric] = {old_val, nv->second};
      // Geomean only over strictly positive pairs — a zero on either
      // side (e.g. 0 conflicts) carries no ratio information.
      if (old_val > 0.0 && nv->second > 0.0) {
        Accum& a = accum[metric];
        a.log_sum += std::log(nv->second / old_val);
        ++a.n;
      }
    }
    diffs.push_back(std::move(d));
  }

  if (matched == 0) {
    std::fprintf(stderr, "bench_diff: no rows matched between %s and %s\n",
                 old_path, new_path);
    return 2;
  }

  std::map<std::string, double> geomeans;
  for (const auto& [metric, a] : accum) {
    if (a.n > 0) geomeans[metric] = std::exp(a.log_sum / a.n);
  }

  bool regression = !cost_mismatches.empty();
  std::vector<std::string> over_threshold;
  if (threshold > 0.0) {
    for (const auto& [metric, g] : geomeans) {
      if (g > threshold) {
        over_threshold.push_back(metric);
        regression = true;
      }
    }
  }

  if (json_out) {
    std::printf("{\"old\":\"%s\",\"new\":\"%s\",\"matched_rows\":%d,",
                json_escape(old_path).c_str(), json_escape(new_path).c_str(),
                matched);
    std::printf("\"geomean_ratios\":{");
    bool first = true;
    for (const auto& [metric, g] : geomeans) {
      std::printf("%s\"%s\":%.6f", first ? "" : ",",
                  json_escape(metric).c_str(), g);
      first = false;
    }
    std::printf("},\"cost_mismatches\":[");
    first = true;
    for (const std::string& m : cost_mismatches) {
      std::printf("%s\"%s\"", first ? "" : ",", json_escape(m).c_str());
      first = false;
    }
    std::printf("],\"over_threshold\":[");
    first = true;
    for (const std::string& m : over_threshold) {
      std::printf("%s\"%s\"", first ? "" : ",", json_escape(m).c_str());
      first = false;
    }
    std::printf("],\"regression\":%s}\n", regression ? "true" : "false");
    return regression ? 1 : 0;
  }

  std::printf("bench_diff: %s -> %s (%d matched row%s)\n", old_path, new_path,
              matched, matched == 1 ? "" : "s");
  for (const RowDiff& d : diffs) {
    std::printf("  %s\n", d.name.c_str());
    for (const auto& [metric, vals] : d.vals) {
      const auto [ov, nv] = vals;
      if (ov > 0.0 && nv > 0.0) {
        std::printf("    %-24s %12.6g -> %12.6g   (x%.3f)\n", metric.c_str(),
                    ov, nv, nv / ov);
      } else {
        std::printf("    %-24s %12.6g -> %12.6g\n", metric.c_str(), ov, nv);
      }
    }
  }
  std::printf("geomean ratios (new/old; <1 is an improvement):\n");
  for (const auto& [metric, g] : geomeans) {
    std::printf("  %-26s x%.3f\n", metric.c_str(), g);
  }
  for (const std::string& m : cost_mismatches) {
    std::printf("COST MISMATCH: %s\n", m.c_str());
  }
  for (const std::string& m : over_threshold) {
    std::printf("REGRESSION: %s geomean x%.3f exceeds threshold x%.3f\n",
                m.c_str(), geomeans[m], threshold);
  }
  if (!regression) std::printf("ok\n");
  return regression ? 1 : 0;
}

// Allocation daemon: serves the NDJSON allocation protocol (see
// src/svc/protocol.hpp) over a Unix-domain or TCP socket, with a worker
// pool, canonical result cache and anytime deadline answers.
//
//   alloc_serve --socket /tmp/alloc.sock [--workers 2] [--queue 64]
//               [--cache 256] [--anneal 2000] [--trace FILE] [--stats]
//               [--metrics-interval S] [--flight-dump FILE]
//               [--no-inprocess] [--inprocess-interval N]
//               [--watermark NAME:HIGH[:LOW]]
//   alloc_serve --tcp 7421 ...
//
// SIGTERM / SIGINT trigger a graceful drain: no new requests are
// accepted, every queued job still gets its answer, the trace sink is
// flushed and closed, then the process exits 0. --stats prints the
// service counters on exit. --metrics-interval S drives the sampler
// thread every S seconds: each tick records the whole registry into the
// in-process time-series rings (the `query` verb / alloc_top's data),
// checks the armed resource watermarks, and — while tracing is on —
// emits a "metrics_snapshot" trace event (full registry, flat form).
// --watermark arms a byte threshold on a resource ("sat.arena:8388608"
// or "svc.cache:1048576:786432"); crossings emit `resource_watermark`
// trace events with hysteresis (LOW defaults to 3/4 of HIGH).
//
// Post-mortem: a fatal signal (SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT)
// dumps the flight-recorder rings — the last telemetry records of every
// thread — as JSONL before the process dies: to stderr by default, or to
// --flight-dump FILE (opened at startup so the handler never allocates).

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "svc/server.hpp"

namespace {

optalloc::svc::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int usage() {
  std::cerr
      << "usage: alloc_serve (--socket PATH | --tcp PORT)\n"
      << "                   [--workers N] [--queue N] [--cache N]\n"
      << "                   [--anneal ITERS] [--trace FILE] [--stats]\n"
      << "                   [--metrics-interval S] [--flight-dump FILE]\n"
      << "                   [--no-inprocess] [--inprocess-interval N]\n"
      << "                   [--watermark NAME:HIGH[:LOW]]\n";
  return 2;
}

/// Parse "NAME:HIGH[:LOW]" and arm the watermark. False on bad syntax.
bool arm_watermark(const std::string& spec) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  const std::string name = spec.substr(0, c1);
  const std::size_t c2 = spec.find(':', c1 + 1);
  const std::string high_s =
      c2 == std::string::npos ? spec.substr(c1 + 1)
                              : spec.substr(c1 + 1, c2 - c1 - 1);
  const long long high = std::atoll(high_s.c_str());
  if (high <= 0) return false;
  long long low = -1;
  if (c2 != std::string::npos) {
    low = std::atoll(spec.substr(c2 + 1).c_str());
    if (low < 0 || low > high) return false;
  }
  optalloc::obs::set_resource_watermark(name, high, low);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int tcp_port = -1;
  bool print_stats = false;
  std::string trace_path;
  std::string flight_dump_path;
  double metrics_interval_s = 0.0;
  optalloc::svc::ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage();
      socket_path = v;
    } else if (arg == "--tcp") {
      const char* v = next();
      if (v == nullptr) return usage();
      tcp_port = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.scheduler.workers = std::atoi(v);
    } else if (arg == "--queue") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.scheduler.queue_capacity =
          static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--cache") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.scheduler.cache_entries = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--anneal") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.scheduler.anneal_iterations = std::atoi(v);
    } else if (arg == "--no-inprocess") {
      options.scheduler.inprocess = false;
    } else if (arg == "--inprocess-interval") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.scheduler.inprocess_interval = std::atoll(v);
      if (options.scheduler.inprocess_interval <= 0) return usage();
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return usage();
      trace_path = v;
    } else if (arg == "--metrics-interval") {
      const char* v = next();
      if (v == nullptr) return usage();
      metrics_interval_s = std::atof(v);
    } else if (arg == "--flight-dump") {
      const char* v = next();
      if (v == nullptr) return usage();
      flight_dump_path = v;
    } else if (arg == "--watermark") {
      const char* v = next();
      if (v == nullptr || !arm_watermark(v)) {
        std::cerr << "alloc_serve: --watermark wants NAME:HIGH[:LOW] "
                     "(bytes)\n";
        return usage();
      }
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      std::cerr << "alloc_serve: unknown option " << arg << "\n";
      return usage();
    }
  }
  if (socket_path.empty() == (tcp_port < 0)) return usage();

  if (!trace_path.empty() && !optalloc::obs::trace_open(trace_path)) {
    std::cerr << "alloc_serve: cannot open trace file " << trace_path << "\n";
    return 1;
  }

  // Crash-path telemetry: open the dump destination NOW (the fatal-signal
  // handler may not open files or allocate) and keep the fd for the
  // process lifetime. Default is stderr.
  int flight_fd = STDERR_FILENO;
  if (!flight_dump_path.empty()) {
    flight_fd = ::open(flight_dump_path.c_str(),
                       O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (flight_fd < 0) {
      std::cerr << "alloc_serve: cannot open flight dump file "
                << flight_dump_path << "\n";
      optalloc::obs::trace_close();
      return 1;
    }
  }
  optalloc::obs::flight_install_crash_handler(flight_fd);

  optalloc::svc::Server server(options);
  if (!socket_path.empty()) {
    if (!server.listen_unix(socket_path)) {
      std::cerr << "alloc_serve: cannot listen on " << socket_path << "\n";
      optalloc::obs::flight_install_crash_handler(-1);
      optalloc::obs::trace_close();
      return 1;
    }
    std::cout << "listening on unix socket " << socket_path << std::endl;
  } else {
    if (!server.listen_tcp(tcp_port)) {
      std::cerr << "alloc_serve: cannot listen on tcp port " << tcp_port
                << "\n";
      optalloc::obs::flight_install_crash_handler(-1);
      optalloc::obs::trace_close();
      return 1;
    }
    std::cout << "listening on tcp 127.0.0.1:" << server.tcp_port()
              << std::endl;
  }

  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  // Periodic sampler: every tick feeds the in-process time-series rings
  // (the `query` verb's data), checks resource watermarks, and — with
  // tracing on — snapshots the registry into the trace, so a long run's
  // JSONL is also a coarse time series of every counter/histogram.
  std::thread snapshotter;
  std::atomic<bool> snapshot_stop{false};
  if (metrics_interval_s > 0.0) {
    snapshotter = std::thread([&] {
      const auto interval = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(metrics_interval_s));
      auto wake = std::chrono::steady_clock::now() + interval;
      while (!snapshot_stop.load(std::memory_order_relaxed)) {
        if (std::chrono::steady_clock::now() < wake) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        wake += interval;
        optalloc::obs::timeseries_sample_now();
        optalloc::obs::check_resource_watermarks();
        if (optalloc::obs::trace_enabled()) {
          optalloc::obs::TraceEvent("metrics_snapshot")
              .raw("metrics", optalloc::obs::metrics_json());
        }
      }
    });
  }

  server.run();

  if (snapshotter.joinable()) {
    snapshot_stop.store(true, std::memory_order_relaxed);
    snapshotter.join();
  }
  if (print_stats) {
    const auto stats = server.scheduler().stats();
    std::cout << optalloc::svc::stats_line(stats) << "\n";
    std::cout << optalloc::obs::render_metrics();
  }
  // The sink is process-global and deliberately leaked; without this
  // explicit flush+close the tail of the trace (the drain's last events)
  // would be lost in the ofstream buffer.
  optalloc::obs::flight_install_crash_handler(-1);
  if (flight_fd != STDERR_FILENO) ::close(flight_fd);
  optalloc::obs::trace_close();
  return 0;
}

// Terminal capacity dashboard for a running alloc_serve: polls the
// stats + query verbs and renders queue depth, worker utilization, cache
// occupancy, session dead-guard fraction, arena bytes and latency
// sparklines — curses-free, plain ANSI, usable over ssh.
//
//   alloc_top --socket PATH [--interval S] [--window S] [--once]
//   alloc_top --tcp HOST PORT ...
//
// --once prints a single frame and exits (scripting / CI assertions);
// otherwise the screen is redrawn every --interval seconds (default 2)
// until interrupted. --window W sets the sparkline time window (default
// 60 s). The time-series rows need the daemon's sampler running (start
// alloc_serve with --metrics-interval); without it the dashboard still
// renders the stats-verb counters and says what is missing.
//
// Output is line-oriented `key=value` so the smoke test (and any shell)
// can scrape it: e.g. `arena bytes=147456 wasted=1024 learnts=37`.
//
// Exit codes: 0 rendered at least one frame; 1 connect/protocol error;
// 2 usage.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "svc/client.hpp"

namespace {

using optalloc::obs::JsonValue;

int usage() {
  std::cerr << "usage: alloc_top (--socket PATH | --tcp HOST PORT)\n"
            << "                 [--interval S] [--window S] [--once]\n";
  return 2;
}

struct Endpoint {
  std::string socket_path;
  std::string tcp_host;
  int tcp_port = -1;

  int connect() const {
    return !socket_path.empty()
               ? optalloc::svc::connect_unix_retry(socket_path)
               : optalloc::svc::connect_tcp_retry(tcp_host, tcp_port);
  }
  std::string describe() const {
    return !socket_path.empty()
               ? "unix:" + socket_path
               : "tcp:" + tcp_host + ":" + std::to_string(tcp_port);
  }
};

/// One request/response cycle on an open connection.
std::optional<JsonValue> roundtrip(int fd, std::string& buffer,
                                   const std::string& line) {
  std::string response;
  if (!optalloc::svc::send_line(fd, line) ||
      !optalloc::svc::recv_line(fd, buffer, response)) {
    return std::nullopt;
  }
  auto doc = optalloc::obs::json_parse(response);
  if (!doc || !doc->is_object()) return std::nullopt;
  return doc;
}

double num_or(const JsonValue& doc, std::string_view key, double dflt) {
  return doc.get_number(key).value_or(dflt);
}

/// Latest value per series from the query catalogue.
std::map<std::string, double> catalogue(const JsonValue& doc) {
  std::map<std::string, double> last;
  const JsonValue* series = doc.get("series");
  if (series == nullptr || series->kind != JsonValue::Kind::kArray) {
    return last;
  }
  for (const JsonValue& row : series->array) {
    if (!row.is_object()) continue;
    const auto name = row.get_string("metric");
    if (!name) continue;
    last[*name] = num_or(row, "last", 0.0);
  }
  return last;
}

std::vector<double> series_values(const JsonValue& doc) {
  std::vector<double> out;
  const JsonValue* samples = doc.get("samples");
  if (samples == nullptr || samples->kind != JsonValue::Kind::kArray) {
    return out;
  }
  for (const JsonValue& pair : samples->array) {
    if (pair.kind != JsonValue::Kind::kArray || pair.array.size() != 2) {
      continue;
    }
    out.push_back(pair.array[1].number);
  }
  return out;
}

/// Unicode block sparkline; empty input -> "(no samples)".
std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return "(no samples)";
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    int idx = hi > lo ? static_cast<int>((v - lo) / (hi - lo) * 7.0) : 3;
    if (idx < 0) idx = 0;
    if (idx > 7) idx = 7;
    out += kBlocks[idx];
  }
  return out;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

/// Fetch everything and render one frame into `out`. False only when the
/// connection or the stats verb failed (partial telemetry still renders).
bool render_frame(const Endpoint& endpoint, double window_s,
                  std::string& out) {
  const int fd = endpoint.connect();
  if (fd < 0) return false;
  std::string buffer;
  const auto stats =
      roundtrip(fd, buffer, "{\"verb\":\"stats\"}");
  if (!stats) return false;
  const auto list = roundtrip(fd, buffer, "{\"verb\":\"query\"}");
  const std::map<std::string, double> last =
      list ? catalogue(*list) : std::map<std::string, double>{};
  const auto window = fmt("%.0f", window_s);
  const auto fetch_series = [&](const std::string& metric) {
    const auto doc = roundtrip(
        fd, buffer, "{\"verb\":\"query\",\"metric\":\"" + metric +
                        "\",\"last_s\":" + window + ",\"max_samples\":64}");
    return doc ? series_values(*doc) : std::vector<double>{};
  };
  const std::vector<double> p50 = fetch_series("svc.request_ms.p50");
  const std::vector<double> p99 = fetch_series("svc.request_ms.p99");

  const double uptime = num_or(*stats, "uptime_s", 0.0);
  const double workers = num_or(*stats, "workers", 1.0);
  const double hits = num_or(*stats, "cache_hits", 0.0);
  const double misses = num_or(*stats, "cache_misses", 0.0);
  const double lookups = hits + misses;
  const auto get = [&last](const char* name) {
    const auto it = last.find(name);
    return it != last.end() ? it->second : 0.0;
  };
  const double solve_s = get("svc.time.solve.seconds");
  const double utilization =
      uptime > 0.0 && workers > 0.0
          ? std::min(1.0, solve_s / (uptime * workers))
          : 0.0;
  const double guards = get("res.inc.guards.items");
  const double dead = get("res.inc.dead_guards.items");
  const double guard_total = guards + dead;

  out.clear();
  out += "alloc_top " + endpoint.describe() +
         "  uptime=" + fmt("%.1f", uptime) + "s" +
         "  workers=" + fmt("%.0f", workers) + "\n";
  out += "requests   submitted=" + fmt("%.0f", num_or(*stats, "submitted", 0)) +
         " completed=" + fmt("%.0f", num_or(*stats, "completed", 0)) +
         " rejected=" + fmt("%.0f", num_or(*stats, "rejected", 0)) +
         " cancelled=" + fmt("%.0f", num_or(*stats, "cancelled", 0)) +
         " deadline_expired=" +
         fmt("%.0f", num_or(*stats, "deadline_expired", 0)) + "\n";
  out += "queue      depth=" + fmt("%.0f", num_or(*stats, "queue_depth", 0)) +
         " bytes=" + fmt("%.0f", get("res.svc.queue.bytes")) + "\n";
  out += "workers    utilization=" + fmt("%.1f", utilization * 100.0) +
         "% solve_s=" + fmt("%.2f", solve_s) + "\n";
  out += "cache      hits=" + fmt("%.0f", hits) +
         " misses=" + fmt("%.0f", misses) + " hit_rate=" +
         fmt("%.1f", lookups > 0 ? hits / lookups * 100.0 : 0.0) +
         "% entries=" + fmt("%.0f", get("res.svc.cache.items")) +
         " bytes=" + fmt("%.0f", get("res.svc.cache.bytes")) + "\n";
  out += "sessions   active=" +
         fmt("%.0f", num_or(*stats, "active_sessions", 0)) +
         " revises=" + fmt("%.0f", num_or(*stats, "revises", 0)) +
         " guards=" + fmt("%.0f", guards) + " dead=" + fmt("%.0f", dead) +
         " dead_fraction=" +
         fmt("%.1f", guard_total > 0 ? dead / guard_total * 100.0 : 0.0) +
         "%\n";
  out += "arena      bytes=" + fmt("%.0f", get("res.sat.arena.bytes")) +
         " wasted=" + fmt("%.0f", get("res.sat.arena.wasted.bytes")) +
         " learnts=" + fmt("%.0f", get("res.sat.learnts.items")) + "\n";
  out += "latency    p50=" + fmt("%.1f", num_or(*stats, "p50_ms", 0)) +
         "ms p99=" + fmt("%.1f", num_or(*stats, "p99_ms", 0)) +
         "ms max=" + fmt("%.1f", num_or(*stats, "max_ms", 0)) + "ms\n";
  out += "p50_ms     [" + window + "s] " + sparkline(p50) +
         (p50.empty() ? "" : " last=" + fmt("%.1f", p50.back())) + "\n";
  out += "p99_ms     [" + window + "s] " + sparkline(p99) +
         (p99.empty() ? "" : " last=" + fmt("%.1f", p99.back())) + "\n";
  if (last.empty()) {
    out += "(time-series empty: start alloc_serve with "
           "--metrics-interval S)\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Endpoint endpoint;
  double interval_s = 2.0;
  double window_s = 60.0;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage();
      endpoint.socket_path = v;
    } else if (arg == "--tcp") {
      const char* host = next();
      const char* port = next();
      if (host == nullptr || port == nullptr) return usage();
      endpoint.tcp_host = host;
      endpoint.tcp_port = std::atoi(port);
    } else if (arg == "--interval") {
      const char* v = next();
      if (v == nullptr) return usage();
      interval_s = std::atof(v);
      if (interval_s <= 0.0) return usage();
    } else if (arg == "--window") {
      const char* v = next();
      if (v == nullptr) return usage();
      window_s = std::atof(v);
      if (window_s <= 0.0) return usage();
    } else if (arg == "--once") {
      once = true;
    } else {
      std::cerr << "alloc_top: unknown option " << arg << "\n";
      return usage();
    }
  }
  if (endpoint.socket_path.empty() == (endpoint.tcp_port < 0)) {
    return usage();
  }

  for (;;) {
    std::string frame;
    if (!render_frame(endpoint, window_s, frame)) {
      std::cerr << "alloc_top: cannot reach " << endpoint.describe() << "\n";
      return 1;
    }
    if (!once) std::cout << "\x1b[2J\x1b[H";  // clear + home
    std::cout << frame << std::flush;
    if (once) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(interval_s)));
  }
}

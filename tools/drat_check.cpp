// Standalone proof checker for the extended-DRAT logs this project's
// solver emits (see src/sat/proof.hpp for the format and src/check/drat.hpp
// for the checking discipline). Reads a proof from a file or stdin and
// verifies it with the independent backward RUP checker.
//
//   $ ./drat_check proof.drat          # strict: every lemma checked
//   $ ./drat_check --targets proof.drat  # only the final/empty lemmas
//   $ ./allocate_file --certify --proof p.drat sys.prob && ./drat_check p.drat
//
// Exit status: 0 when the proof verifies, 1 when it is rejected,
// 2 on usage or I/O errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "check/drat.hpp"
#include "sat/proof.hpp"

using namespace optalloc;

int main(int argc, char** argv) {
  bool strict = true;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--targets") == 0) {
      strict = false;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [--targets] <proof-file|->\n", argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s [--targets] <proof-file|->\n", argv[0]);
    return 2;
  }

  sat::ProofLog log;
  std::string error;
  bool parsed = false;
  if (std::strcmp(path, "-") == 0) {
    parsed = log.parse_text(std::cin, &error);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path);
      return 2;
    }
    parsed = log.parse_text(in, &error);
  }
  if (!parsed) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 2;
  }

  const check::DratResult res =
      strict ? check::check_proof_all(log) : check::check_proof(log);
  std::printf("steps: %zu  db-clauses: %zu  lemmas-checked: %zu  "
              "theory-checked: %zu\n",
              log.num_steps(), res.db_clauses, res.lemmas_checked,
              res.theory_checked);
  if (res.ok) {
    std::printf("VERIFIED\n");
    return 0;
  }
  std::printf("REJECTED: %s\n", res.error.c_str());
  return 1;
}

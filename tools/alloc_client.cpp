// CLI client for the allocation daemon (see tools/alloc_serve.cpp).
//
//   alloc_client --socket PATH [--retry N] VERB ...
//   alloc_client --tcp HOST PORT [--retry N] VERB ...
//
//   submit FILE [OBJECTIVE] [--deadline MS] [--conflicts N]
//          [--threads N] [--wait]
//   status ID | result ID | cancel ID | inspect ID
//   dump [ID]                     # flight-recorder events
//   stats | metrics [--prom]
//   query [METRIC] [--last S] [--max-samples N]
//                                 # time-series: catalogue, or one
//                                 # series' [unix_ms, value] samples
//   shutdown [--no-drain]
//   raw LINE                      # send LINE verbatim
//
// Incremental re-solve sessions (what-if queries over a warm solver):
//
//   session-open FILE [OBJECTIVE] [--deadline MS] [--conflicts N]
//       -> opens a session, solves, prints {"session":"s1",...}
//   revise SESSION EDITS          # EDITS: inline JSON array or @file
//       e.g. revise s1 '[{"op":"set_wcet","task":"a","ecu":0,"wcet":9}]'
//   session-close SESSION
//
// FILE may be "-" for stdin. The raw JSON response is printed on stdout;
// "metrics --prom" instead renders the server's registry snapshot in
// Prometheus text exposition format (histograms as cumulative buckets
// plus p50/p95/p99 gauges). "raw" sends an arbitrary protocol line
// (useful for probing the server's structured error answers).
//
// --retry N retries a failed connect() up to N times with exponential
// backoff (50ms, doubling), for transient races against a daemon that is
// still binding its socket. The default is 1 (a single attempt).
//
// Exit codes: 0 success; 1 protocol / connection error (no response, or
// every connect attempt failed — with --retry N, exit 1 means all N
// attempts were exhausted); 2 usage; 3 server-reported error — an
// {"ok":false,...} answer with its machine-readable "code" (unknown
// verb, unknown id, unknown session, bad problem, bad patch, queue
// full); 4 terminal answer that is feasible but not proven optimal (the
// anytime deadline answer — or a session answer interrupted by its
// budget).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "svc/client.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: alloc_client (--socket PATH | --tcp HOST PORT)"
         " [--retry N] VERB ...\n"
      << "  submit FILE [OBJECTIVE] [--deadline MS] [--conflicts N]\n"
      << "         [--threads N] [--wait]\n"
      << "  status ID | result ID | cancel ID | inspect ID | stats\n"
      << "  session-open FILE [OBJECTIVE] [--deadline MS] [--conflicts N]\n"
      << "  revise SESSION EDITS_JSON|@FILE\n"
      << "  session-close SESSION\n"
      << "  dump [ID]\n"
      << "  metrics [--prom]\n"
      << "  query [METRIC] [--last S] [--max-samples N]\n"
      << "  shutdown [--no-drain]\n"
      << "  raw LINE\n";
  return 2;
}

/// 0 ok; 1 malformed response; 3 server-reported error ("ok":false);
/// 4 terminal-but-not-proven-optimal (anytime answer).
int classify(const std::string& response) {
  const auto doc = optalloc::obs::json_parse(response);
  if (!doc || !doc->is_object()) return 1;
  const optalloc::obs::JsonValue* ok = doc->get("ok");
  if (ok == nullptr || ok->kind != optalloc::obs::JsonValue::Kind::kBool) {
    return 1;
  }
  if (!ok->b) return 3;
  const auto state = doc->get_string("state");
  const bool terminal = (state && *state == "done") ||
                        doc->get_string("session").has_value();
  if (terminal) {
    const optalloc::obs::JsonValue* proven = doc->get("proven_optimal");
    if (proven != nullptr &&
        proven->kind == optalloc::obs::JsonValue::Kind::kBool && !proven->b) {
      return 4;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int i = 1;
  auto next = [&]() -> const char* { return i < argc ? argv[i++] : nullptr; };

  std::string socket_path, tcp_host;
  int tcp_port = -1;
  int retry_attempts = 1;
  const char* verb_arg = nullptr;
  while (const char* a = next()) {
    const std::string s = a;
    if (s == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage();
      socket_path = v;
    } else if (s == "--tcp") {
      const char* host = next();
      const char* port = next();
      if (host == nullptr || port == nullptr) return usage();
      tcp_host = host;
      tcp_port = std::atoi(port);
    } else if (s == "--retry") {
      const char* v = next();
      if (v == nullptr) return usage();
      retry_attempts = std::atoi(v);
      if (retry_attempts < 1) retry_attempts = 1;
    } else {
      verb_arg = a;
      break;
    }
  }
  if (verb_arg == nullptr) return usage();
  if (socket_path.empty() && tcp_port < 0) return usage();
  const std::string verb = verb_arg;
  bool prom = false;
  std::string raw_line;  ///< non-empty: sent verbatim instead of `request`

  optalloc::obs::JsonObject request;
  if (verb == "submit") {
    const char* file = next();
    if (file == nullptr) return usage();
    std::string objective = "sum-trt";
    double deadline_ms = 0.0;
    long conflicts = 0;
    int threads = 1;
    bool wait = false;
    while (const char* a = next()) {
      const std::string s = a;
      if (s == "--deadline") {
        const char* v = next();
        if (v == nullptr) return usage();
        deadline_ms = std::atof(v);
      } else if (s == "--conflicts") {
        const char* v = next();
        if (v == nullptr) return usage();
        conflicts = std::atol(v);
      } else if (s == "--threads") {
        const char* v = next();
        if (v == nullptr) return usage();
        threads = std::atoi(v);
      } else if (s == "--wait") {
        wait = true;
      } else if (!s.empty() && s[0] != '-') {
        objective = s;
      } else {
        return usage();
      }
    }
    std::string problem_text;
    if (std::string(file) == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      problem_text = ss.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "alloc_client: cannot read " << file << "\n";
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      problem_text = ss.str();
    }
    request.str("verb", "submit")
        .str("problem", problem_text)
        .str("objective", objective);
    if (deadline_ms > 0) request.num("deadline_ms", deadline_ms);
    if (conflicts > 0) {
      request.num("conflicts", static_cast<std::int64_t>(conflicts));
    }
    if (threads > 1) request.num("threads", static_cast<std::int64_t>(threads));
    if (wait) request.boolean("wait", true);
  } else if (verb == "session-open") {
    const char* file = next();
    if (file == nullptr) return usage();
    std::string objective = "sum-trt";
    double deadline_ms = 0.0;
    long conflicts = 0;
    while (const char* a = next()) {
      const std::string s = a;
      if (s == "--deadline") {
        const char* v = next();
        if (v == nullptr) return usage();
        deadline_ms = std::atof(v);
      } else if (s == "--conflicts") {
        const char* v = next();
        if (v == nullptr) return usage();
        conflicts = std::atol(v);
      } else if (!s.empty() && s[0] != '-') {
        objective = s;
      } else {
        return usage();
      }
    }
    std::string problem_text;
    if (std::string(file) == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      problem_text = ss.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "alloc_client: cannot read " << file << "\n";
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      problem_text = ss.str();
    }
    request.str("verb", "session_open")
        .str("problem", problem_text)
        .str("objective", objective);
    if (deadline_ms > 0) request.num("deadline_ms", deadline_ms);
    if (conflicts > 0) {
      request.num("conflicts", static_cast<std::int64_t>(conflicts));
    }
  } else if (verb == "revise") {
    const char* session = next();
    const char* edits = next();
    if (session == nullptr || edits == nullptr) return usage();
    std::string edits_json = edits;
    if (!edits_json.empty() && edits_json[0] == '@') {
      std::ifstream in(edits_json.substr(1));
      if (!in) {
        std::cerr << "alloc_client: cannot read " << edits_json.substr(1)
                  << "\n";
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      edits_json = ss.str();
      // The wire protocol is one request per line; a pretty-printed
      // edits file must not smuggle newlines into the frame.
      std::erase(edits_json, '\n');
      std::erase(edits_json, '\r');
    }
    request.str("verb", "revise").str("session", session);
    request.raw("edits", edits_json);
  } else if (verb == "session-close") {
    const char* session = next();
    if (session == nullptr) return usage();
    request.str("verb", "session_close").str("session", session);
  } else if (verb == "status" || verb == "result" || verb == "cancel" ||
             verb == "inspect") {
    const char* id = next();
    if (id == nullptr) return usage();
    request.str("verb", verb).str("id", id);
  } else if (verb == "dump") {
    request.str("verb", "dump");
    if (const char* id = next()) request.str("id", id);
  } else if (verb == "raw") {
    const char* line = next();
    if (line == nullptr) return usage();
    raw_line = line;
  } else if (verb == "stats") {
    request.str("verb", "stats");
  } else if (verb == "metrics") {
    request.str("verb", "metrics");
    if (const char* a = next()) {
      if (std::string(a) == "--prom") {
        prom = true;
      } else {
        return usage();
      }
    }
  } else if (verb == "query") {
    request.str("verb", "query");
    while (const char* a = next()) {
      const std::string s = a;
      if (s == "--last") {
        const char* v = next();
        if (v == nullptr) return usage();
        request.num("last_s", std::atof(v));
      } else if (s == "--max-samples") {
        const char* v = next();
        if (v == nullptr) return usage();
        request.num("max_samples", static_cast<std::int64_t>(std::atol(v)));
      } else if (!s.empty() && s[0] != '-') {
        request.str("metric", s);
      } else {
        return usage();
      }
    }
  } else if (verb == "shutdown") {
    bool drain = true;
    if (const char* a = next()) {
      if (std::string(a) == "--no-drain") {
        drain = false;
      } else {
        return usage();
      }
    }
    request.str("verb", "shutdown").boolean("drain", drain);
  } else {
    std::cerr << "alloc_client: unknown verb " << verb << "\n";
    return usage();
  }

  const int fd =
      !socket_path.empty()
          ? optalloc::svc::connect_unix_retry(socket_path, retry_attempts)
          : optalloc::svc::connect_tcp_retry(tcp_host, tcp_port,
                                             retry_attempts);
  if (fd < 0) {
    std::cerr << "alloc_client: cannot connect";
    if (retry_attempts > 1) {
      std::cerr << " (" << retry_attempts << " attempts)";
    }
    std::cerr << "\n";
    return 1;
  }
  std::string buffer, response;
  const std::string line = raw_line.empty() ? request.build() : raw_line;
  if (!optalloc::svc::send_line(fd, line) ||
      !optalloc::svc::recv_line(fd, buffer, response)) {
    std::cerr << "alloc_client: connection lost\n";
    return 1;
  }
  if (prom) {
    const auto doc = optalloc::obs::json_parse(response);
    const optalloc::obs::JsonValue* m =
        doc && doc->is_object() ? doc->get("metrics") : nullptr;
    if (m == nullptr) {
      std::cerr << "alloc_client: malformed metrics response\n";
      return 1;
    }
    std::cout << optalloc::obs::prometheus_from_snapshot(
        optalloc::obs::metrics_from_json(*m));
    return 0;
  }
  std::cout << response << "\n";
  return classify(response);
}

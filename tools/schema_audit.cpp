// Static schema-drift audit for the trace vocabulary and the metric
// namespace.
//
// The trace event schema lives in three places that must agree:
//   1. the emit sites — every `obs::TraceEvent("<kind>")` /
//      `obs::FlightNote("<kind>")` construction under src/ and tools/;
//   2. the validator's rule table — `required_fields()` in
//      tests/trace_schema_check.cpp;
//   3. the human-facing event table in README.md.
//
// This tool re-derives (1) by scanning the sources, parses (2) and (3),
// and fails when any emitted kind is missing a validation rule or a
// README row, or when a rule/row names a kind nothing emits any more.
// It runs as a ctest on every build, so adding an event without teaching
// the validator and the docs about it breaks the suite immediately —
// schema drift is a compile-adjacent error, not an archaeology project.
//
// The metric namespace gets the same treatment: every registration
// literal — `obs::counter("<name>")`, gauge, timer, histogram and
// `obs::resource("<name>")` — found under src/ and tools/ must have a
// row (with the matching kind) in README.md's "Metrics reference" table,
// and every table row must correspond to a live registration site.
//
// Usage: schema_audit <repo-root> [--also <file-or-dir>]...
//   --also adds extra scan roots (the drift-fixture test points one at a
//   file with a deliberately undocumented event).
//
// Exit status: 0 = in sync, 1 = drift, 2 = usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Blank out // and /* */ comments and the contents of character
/// literals, preserving string literals and offsets (so line numbers in
/// diagnostics stay honest). Good enough for this codebase's C++ — raw
/// strings and digraphs are not used at emit sites.
std::string strip_comments(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kString, kChar } st = St::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\') ++i;
        else if (c == '"') st = St::kCode;
        break;
      case St::kChar:
        if (c == '\\') { out[++i] = ' '; }
        else if (c == '\'') st = St::kCode;
        else out[i] = ' ';
        break;
    }
  }
  return out;
}

bool kind_like(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::islower(c) || std::isdigit(c) || c == '_';
  });
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

/// An emit site: file:line plus every kind the constructor can produce
/// (a ternary argument yields several).
struct EmitSite {
  std::string file;
  int line = 0;
  std::string kind;
};

/// Find `TraceEvent`/`FlightNote` constructions in `text` and pull the
/// kind-shaped string literals out of the constructor's own parentheses
/// (balanced-paren scan, so literals in chained `.str(...)` calls are
/// never picked up). Declarations without a literal argument contribute
/// nothing.
void scan_source(const std::string& display_path, const std::string& raw,
                 std::vector<EmitSite>& sites) {
  const std::string text = strip_comments(raw);
  static const std::string kNames[] = {"TraceEvent", "FlightNote"};
  for (const auto& name : kNames) {
    std::size_t pos = 0;
    while ((pos = text.find(name, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += name.size();
      // Reject identifier contexts like "kTraceEventMax" or
      // "TraceEventImpl" (the name must be a whole token).
      if (start > 0 &&
          (std::isalnum(static_cast<unsigned char>(text[start - 1])) ||
           text[start - 1] == '_')) {
        continue;
      }
      std::size_t i = pos;
      // Skip an optional variable name: `obs::TraceEvent e("interval")`.
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i]))) ++i;
      if (i < text.size() &&
          (std::isalpha(static_cast<unsigned char>(text[i])) ||
           text[i] == '_')) {
        while (i < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[i])) ||
                text[i] == '_')) ++i;
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i]))) ++i;
      }
      if (i >= text.size() || text[i] != '(') continue;
      // Balanced scan over the constructor argument list only.
      int depth = 0;
      std::vector<std::string> literals;
      for (; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(') {
          ++depth;
        } else if (c == ')') {
          if (--depth == 0) break;
        } else if (c == '"') {
          std::string lit;
          for (++i; i < text.size() && text[i] != '"'; ++i) {
            if (text[i] == '\\') ++i;
            else lit.push_back(text[i]);
          }
          literals.push_back(std::move(lit));
        }
      }
      for (auto& lit : literals) {
        if (!kind_like(lit)) continue;
        sites.push_back({display_path, line_of(text, start), std::move(lit)});
      }
    }
  }
}

bool metric_name_like(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::islower(c) || std::isdigit(c) || c == '_' || c == '.';
  });
}

/// A metric registration site: file:line, the registering function
/// (counter/gauge/timer/histogram/resource) and the name literal.
struct MetricSite {
  std::string file;
  int line = 0;
  std::string kind;
  std::string name;
};

/// Find `obs::counter("<name>")`-style registrations in `text`. Only the
/// qualified form with an immediate string literal counts — that is the
/// codebase idiom, and it keeps helper functions that merely *take* a
/// name (histogram_quantile and friends) out of the inventory.
void scan_metric_sites(const std::string& display_path,
                       const std::string& raw,
                       std::vector<MetricSite>& sites) {
  const std::string text = strip_comments(raw);
  static const std::pair<const char*, const char*> kFns[] = {
      {"obs::counter(\"", "counter"},   {"obs::gauge(\"", "gauge"},
      {"obs::timer(\"", "timer"},       {"obs::histogram(\"", "histogram"},
      {"obs::resource(\"", "resource"},
  };
  for (const auto& [pattern, kind] : kFns) {
    const std::size_t skip = std::strlen(pattern);
    std::size_t pos = 0;
    while ((pos = text.find(pattern, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += skip;
      const std::size_t close = text.find('"', pos);
      if (close == std::string::npos) break;
      const std::string name = text.substr(pos, close - pos);
      pos = close + 1;
      if (metric_name_like(name)) {
        sites.push_back({display_path, line_of(text, start), kind, name});
      }
    }
  }
}

bool has_ext(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool scan_root(const fs::path& repo_root, const fs::path& root,
               std::vector<EmitSite>& sites,
               std::vector<MetricSite>& metric_sites) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    std::string raw;
    if (!read_file(root, raw)) return false;
    scan_source(root.string(), raw, sites);
    scan_metric_sites(root.string(), raw, metric_sites);
    return true;
  }
  if (!fs::is_directory(root, ec)) return false;
  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) return false;
    if (it->is_regular_file() && has_ext(it->path())) {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& f : files) {
    std::string raw;
    if (!read_file(f, raw)) return false;
    const std::string rel = fs::relative(f, repo_root, ec).generic_string();
    scan_source(rel, raw, sites);
    scan_metric_sites(rel, raw, metric_sites);
  }
  return true;
}

/// Pull the ruled kinds out of required_fields() in
/// tests/trace_schema_check.cpp: every `{"<kind>",` between
/// `kSchema = {` and the closing `};`.
bool parse_rule_table(const fs::path& path, std::set<std::string>& kinds) {
  std::string raw;
  if (!read_file(path, raw)) {
    std::fprintf(stderr, "schema_audit: cannot read %s\n",
                 path.string().c_str());
    return false;
  }
  const std::string text = strip_comments(raw);
  const std::size_t begin = text.find("kSchema = {");
  if (begin == std::string::npos) {
    std::fprintf(stderr, "schema_audit: no `kSchema = {` in %s\n",
                 path.string().c_str());
    return false;
  }
  const std::size_t end = text.find("};", begin);
  if (end == std::string::npos) return false;
  std::size_t pos = begin;
  while ((pos = text.find("{\"", pos)) != std::string::npos && pos < end) {
    pos += 2;
    const std::size_t close = text.find('"', pos);
    if (close == std::string::npos || close > end) break;
    const std::string kind = text.substr(pos, close - pos);
    pos = close;
    // A rule entry is `{"<kind>", {<fields>}}`; the nested field vectors
    // `{"call", "result", ...}` have `, "` after their first literal, so
    // requiring `, {` here keeps field names out of the kind set.
    std::size_t after = close + 1;
    while (after < end &&
           std::isspace(static_cast<unsigned char>(text[after]))) ++after;
    if (after >= end || text[after] != ',') continue;
    ++after;
    while (after < end &&
           std::isspace(static_cast<unsigned char>(text[after]))) ++after;
    if (after >= end || text[after] != '{') continue;
    if (kind_like(kind)) kinds.insert(kind);
  }
  if (kinds.empty()) {
    std::fprintf(stderr, "schema_audit: rule table in %s parsed empty\n",
                 path.string().c_str());
    return false;
  }
  return true;
}

/// Pull the documented kinds out of README.md's event table: the
/// backticked tokens in the first cell of each `| \`...\` |` row.
/// Slash shorthand expands with the first token's prefix:
/// `portfolio_start/finish/cancel/win` -> portfolio_{start,finish,...};
/// `span_begin` / `span_end` is two separate backticked tokens.
bool parse_readme_table(const fs::path& path, std::set<std::string>& kinds) {
  std::string raw;
  if (!read_file(path, raw)) {
    std::fprintf(stderr, "schema_audit: cannot read %s\n",
                 path.string().c_str());
    return false;
  }
  std::istringstream in(raw);
  std::string line;
  // README has several tables; the event table is the one whose header
  // row is "| `type` | emitted by | payload |".
  bool in_table = false;
  while (std::getline(in, line)) {
    if (!in_table) {
      if (line.find("emitted by") != std::string::npos &&
          line.find('|') != std::string::npos) {
        in_table = true;
      }
      continue;
    }
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '|') break;  // table ended
    const std::size_t cell_end = line.find('|', i + 1);
    if (cell_end == std::string::npos) continue;
    const std::string cell = line.substr(i + 1, cell_end - i - 1);
    if (cell.find('`') == std::string::npos) continue;  // |---|---| row
    // Every backticked token in the first cell.
    std::size_t p = 0;
    while ((p = cell.find('`', p)) != std::string::npos) {
      const std::size_t q = cell.find('`', p + 1);
      if (q == std::string::npos) break;
      const std::string tok = cell.substr(p + 1, q - p - 1);
      p = q + 1;
      // Expand `a_b/c/d` using a_'s prefix.
      std::vector<std::string> parts;
      std::size_t s = 0, slash;
      while ((slash = tok.find('/', s)) != std::string::npos) {
        parts.push_back(tok.substr(s, slash - s));
        s = slash + 1;
      }
      parts.push_back(tok.substr(s));
      if (!kind_like(parts[0])) continue;
      kinds.insert(parts[0]);
      const std::size_t us = parts[0].rfind('_');
      const std::string prefix =
          us == std::string::npos ? "" : parts[0].substr(0, us + 1);
      for (std::size_t k = 1; k < parts.size(); ++k) {
        if (kind_like(parts[k])) kinds.insert(prefix + parts[k]);
      }
    }
  }
  if (kinds.empty()) {
    std::fprintf(stderr, "schema_audit: event table in %s parsed empty\n",
                 path.string().c_str());
    return false;
  }
  return true;
}

/// Pull the documented metrics out of README.md's "Metrics reference"
/// table — the one whose header row mentions both "metric" and "kind".
/// Each row's first cell carries the backticked name, the second cell
/// the kind word (counter/gauge/timer/histogram/resource).
bool parse_metrics_table(const fs::path& path,
                         std::map<std::string, std::string>& kind_by_name) {
  std::string raw;
  if (!read_file(path, raw)) {
    std::fprintf(stderr, "schema_audit: cannot read %s\n",
                 path.string().c_str());
    return false;
  }
  std::istringstream in(raw);
  std::string line;
  bool in_table = false;
  while (std::getline(in, line)) {
    if (!in_table) {
      if (line.find('|') != std::string::npos &&
          line.find("metric") != std::string::npos &&
          line.find("kind") != std::string::npos) {
        in_table = true;
      }
      continue;
    }
    const std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '|') break;  // table ended
    const std::size_t c1 = line.find('|', i + 1);
    if (c1 == std::string::npos) continue;
    const std::size_t c2 = line.find('|', c1 + 1);
    if (c2 == std::string::npos) continue;
    const std::string name_cell = line.substr(i + 1, c1 - i - 1);
    const std::size_t bq = name_cell.find('`');
    if (bq == std::string::npos) continue;  // |---|---| separator row
    const std::size_t eq = name_cell.find('`', bq + 1);
    if (eq == std::string::npos) continue;
    const std::string name = name_cell.substr(bq + 1, eq - bq - 1);
    std::string kind = line.substr(c1 + 1, c2 - c1 - 1);
    kind.erase(0, kind.find_first_not_of(" \t"));
    kind.erase(kind.find_last_not_of(" \t") + 1);
    if (metric_name_like(name) && !kind.empty()) kind_by_name[name] = kind;
  }
  if (kind_by_name.empty()) {
    std::fprintf(stderr,
                 "schema_audit: metrics reference table in %s parsed "
                 "empty\n",
                 path.string().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <repo-root> [--also <file-or-dir>]...\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  std::vector<fs::path> scan_roots = {root / "src", root / "tools"};
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--also" && i + 1 < argc) {
      scan_roots.emplace_back(argv[++i]);
    } else {
      std::fprintf(stderr, "schema_audit: unknown argument %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<EmitSite> sites;
  std::vector<MetricSite> metric_sites;
  for (const auto& r : scan_roots) {
    if (!scan_root(root, r, sites, metric_sites)) {
      std::fprintf(stderr, "schema_audit: cannot scan %s\n",
                   r.string().c_str());
      return 2;
    }
  }
  if (sites.empty()) {
    std::fprintf(stderr, "schema_audit: found no emit sites — wrong root?\n");
    return 2;
  }
  if (metric_sites.empty()) {
    std::fprintf(stderr,
                 "schema_audit: found no metric registrations — wrong "
                 "root?\n");
    return 2;
  }

  std::set<std::string> ruled;
  std::set<std::string> documented;
  std::map<std::string, std::string> metric_docs;
  if (!parse_rule_table(root / "tests" / "trace_schema_check.cpp", ruled) ||
      !parse_readme_table(root / "README.md", documented) ||
      !parse_metrics_table(root / "README.md", metric_docs)) {
    return 2;
  }

  std::map<std::string, std::vector<const EmitSite*>> by_kind;
  for (const auto& site : sites) by_kind[site.kind].push_back(&site);

  int drift = 0;
  for (const auto& [kind, where] : by_kind) {
    const bool has_rule = ruled.count(kind) > 0;
    const bool has_doc = documented.count(kind) > 0;
    if (has_rule && has_doc) continue;
    for (const auto* site : where) {
      std::fprintf(stderr, "schema_audit: %s:%d: event \"%s\" %s%s%s\n",
                   site->file.c_str(), site->line, kind.c_str(),
                   has_rule ? "" : "has no rule in trace_schema_check.cpp",
                   !has_rule && !has_doc ? " and " : "",
                   has_doc ? "" : "has no row in the README event table");
    }
    ++drift;
  }
  for (const auto& kind : ruled) {
    if (by_kind.count(kind) == 0) {
      std::fprintf(stderr,
                   "schema_audit: rule for \"%s\" in trace_schema_check.cpp "
                   "but nothing emits it\n",
                   kind.c_str());
      ++drift;
    }
  }
  for (const auto& kind : documented) {
    if (by_kind.count(kind) == 0) {
      std::fprintf(stderr,
                   "schema_audit: README documents \"%s\" but nothing "
                   "emits it\n",
                   kind.c_str());
      ++drift;
    }
  }

  // --- Metric namespace vs README "Metrics reference" ---
  std::map<std::string, std::vector<const MetricSite*>> metrics_by_name;
  for (const auto& site : metric_sites) {
    metrics_by_name[site.name].push_back(&site);
  }
  for (const auto& [name, where] : metrics_by_name) {
    const auto doc = metric_docs.find(name);
    if (doc == metric_docs.end()) {
      for (const auto* site : where) {
        std::fprintf(stderr,
                     "schema_audit: %s:%d: metric \"%s\" has no row in the "
                     "README metrics reference table\n",
                     site->file.c_str(), site->line, name.c_str());
      }
      ++drift;
      continue;
    }
    for (const auto* site : where) {
      if (site->kind != doc->second) {
        std::fprintf(stderr,
                     "schema_audit: %s:%d: metric \"%s\" is a %s but the "
                     "README metrics reference says %s\n",
                     site->file.c_str(), site->line, name.c_str(),
                     site->kind.c_str(), doc->second.c_str());
        ++drift;
      }
    }
  }
  for (const auto& [name, kind] : metric_docs) {
    if (metrics_by_name.count(name) == 0) {
      std::fprintf(stderr,
                   "schema_audit: README metrics reference documents %s "
                   "\"%s\" but nothing registers it\n",
                   kind.c_str(), name.c_str());
      ++drift;
    }
  }

  std::printf("schema_audit: %zu emit sites, %zu kinds, %zu ruled, "
              "%zu documented; %zu metric sites, %zu metrics, "
              "%zu documented metrics\n",
              sites.size(), by_kind.size(), ruled.size(), documented.size(),
              metric_sites.size(), metrics_by_name.size(),
              metric_docs.size());
  if (drift > 0) {
    std::fprintf(stderr, "schema_audit: %d schema drift problem(s)\n", drift);
    return 1;
  }
  for (const auto& [kind, where] : by_kind) {
    std::printf("  %-18s %zu site(s)\n", kind.c_str(), where.size());
  }
  return 0;
}

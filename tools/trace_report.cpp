// Offline analysis of a JSONL trace (obs::trace_open output): reassembles
// requests from their "req" correlation fields and reports where each
// one's wall time went.
//
//   trace_report [--json] [--search] [--top N] [FILE]
//
// FILE defaults to stdin. Views:
//   * per-request phase breakdown — queue -> encode -> solve -> certify
//     (milliseconds, from the span_end events of each request);
//   * critical path of the slowest requests — the chain of heaviest
//     nested spans from the request root down;
//   * per-worker utilization — span-covered seconds per tid over the
//     trace's wall span;
//   * --search: per-request search trajectory — one row per
//     "search_sample" event (conflicts, props/sec, conflict rate, trail
//     depth, learnt-DB size, running LBD mean) so a stall or a learnt-DB
//     explosion is visible as a shape, not a single aggregate.
// Flight-recorder post-mortems ("flight_dump" events — see
// src/obs/flight.hpp) are summarized too: per dump, the embedded event
// count and whether the request's own final "search_sample" made it in.
// --json emits the same as one JSON object (plus span-balance counters),
// so benches and CI can gate on "parses, and every span_end matches a
// span_begin". Exit code: 0 when every line parses and spans balance,
// 1 otherwise.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using optalloc::obs::JsonArray;
using optalloc::obs::JsonObject;
using optalloc::obs::JsonValue;

struct SpanRec {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  double begin_ts = -1.0;  ///< -1 = no span_begin seen
  double seconds = 0.0;
  int tid = -1;
  bool ended = false;
};

/// One "search_sample" row of a request's trajectory.
struct SampleRec {
  double ts = 0.0;
  double conflicts = 0.0;
  double restarts = 0.0;
  double trail = 0.0;
  double learnts = 0.0;
  double props_per_sec = 0.0;
  double conflicts_per_sec = 0.0;
  double lbd_mean = 0.0;
  bool final_sample = false;
};

/// One "flight_dump" post-mortem event: a request's flight-recorder tail
/// embedded into the trace on deadline expiry / cancellation / panic.
struct FlightDumpRec {
  std::uint64_t req = 0;
  std::string id;
  std::string reason;
  std::int64_t count = 0;        ///< the event's own "count" field
  std::int64_t embedded = 0;     ///< elements actually in "events"
  bool has_search_sample = false;
};

struct RequestRec {
  std::uint64_t req = 0;
  std::string id;              ///< scheduler id ("r1"), from request_received
  std::string state;           ///< from request_done
  bool done = false;
  double total_s = 0.0;        ///< request_done "seconds"
  std::map<std::string, double> phase_s;  ///< span name -> summed seconds
  std::map<std::uint64_t, SpanRec> spans;
  std::vector<SampleRec> samples;  ///< search trajectory, trace order
  int begun = 0;
  int ended = 0;
  int unmatched_end = 0;
  bool balanced() const { return begun == ended && unmatched_end == 0; }
};

struct WorkerRec {
  double busy_s = 0.0;  ///< sum of leaf span_end seconds on this tid
  int spans = 0;
};

/// Phase key for the breakdown table: SOLVE steps fold into "solve",
/// everything else keeps its span name.
std::string phase_key(const std::string& name) {
  return name == "SOLVE" ? "solve" : name;
}

double phase(const RequestRec& r, const char* key) {
  const auto it = r.phase_s.find(key);
  return it == r.phase_s.end() ? 0.0 : it->second;
}

/// Heaviest root-to-leaf chain of a request's span tree.
std::vector<const SpanRec*> critical_path(const RequestRec& r) {
  std::map<std::uint64_t, std::vector<const SpanRec*>> children;
  for (const auto& [id, s] : r.spans) children[s.parent].push_back(&s);
  std::vector<const SpanRec*> path;
  std::uint64_t at = 0;  // root spans have parent 0
  for (;;) {
    const auto it = children.find(at);
    if (it == children.end()) break;
    const SpanRec* heaviest = nullptr;
    for (const SpanRec* s : it->second) {
      if (heaviest == nullptr || s->seconds > heaviest->seconds) heaviest = s;
    }
    if (heaviest == nullptr) break;
    path.push_back(heaviest);
    at = heaviest->id;
  }
  return path;
}

int usage() {
  std::cerr << "usage: trace_report [--json] [--search] [--top N] [FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_out = false;
  bool search_view = false;
  int top = 5;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_out = true;
    } else if (arg == "--search") {
      search_view = true;
    } else if (arg == "--top") {
      if (i + 1 >= argc) return usage();
      top = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage();
    } else {
      path = arg;
    }
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!path.empty() && path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "trace_report: cannot read " << path << "\n";
      return 1;
    }
    in = &file;
  }

  std::map<std::uint64_t, RequestRec> requests;
  std::map<int, WorkerRec> workers;
  std::vector<FlightDumpRec> flight_dumps;
  std::uint64_t events = 0, bad_lines = 0;
  double min_ts = 0.0, max_ts = 0.0;
  bool any_ts = false;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    const auto doc = optalloc::obs::json_parse(line);
    if (!doc || !doc->is_object()) {
      ++bad_lines;
      continue;
    }
    ++events;
    const auto type = doc->get_string("type").value_or("");
    if (const auto ts = doc->get_number("ts")) {
      if (!any_ts) {
        min_ts = max_ts = *ts;
        any_ts = true;
      }
      min_ts = std::min(min_ts, *ts);
      max_ts = std::max(max_ts, *ts);
    }
    const std::uint64_t req =
        static_cast<std::uint64_t>(doc->get_number("req").value_or(0.0));
    if (type == "flight_dump") {
      FlightDumpRec fd;
      fd.req = req;
      fd.id = doc->get_string("id").value_or("");
      fd.reason = doc->get_string("reason").value_or("");
      fd.count =
          static_cast<std::int64_t>(doc->get_number("count").value_or(0.0));
      if (const JsonValue* ev = doc->get("events");
          ev != nullptr && ev->kind == JsonValue::Kind::kArray) {
        fd.embedded = static_cast<std::int64_t>(ev->array.size());
        for (const JsonValue& e : ev->array) {
          if (e.get_string("type").value_or("") == "search_sample") {
            fd.has_search_sample = true;
          }
        }
      }
      flight_dumps.push_back(std::move(fd));
      continue;
    }
    if (req == 0) continue;  // events outside any request
    RequestRec& r = requests[req];
    r.req = req;
    if (type == "search_sample") {
      SampleRec s;
      s.ts = doc->get_number("ts").value_or(0.0);
      s.conflicts = doc->get_number("conflicts").value_or(0.0);
      s.restarts = doc->get_number("restarts").value_or(0.0);
      s.trail = doc->get_number("trail").value_or(0.0);
      s.learnts = doc->get_number("learnts").value_or(0.0);
      s.props_per_sec = doc->get_number("props_per_sec").value_or(0.0);
      s.conflicts_per_sec = doc->get_number("conflicts_per_sec").value_or(0.0);
      s.lbd_mean = doc->get_number("lbd_mean").value_or(0.0);
      if (const JsonValue* f = doc->get("final")) {
        s.final_sample = f->kind == JsonValue::Kind::kBool && f->b;
      }
      r.samples.push_back(s);
    } else if (type == "request_received") {
      r.id = doc->get_string("id").value_or("");
    } else if (type == "request_done") {
      r.done = true;
      r.state = doc->get_string("state").value_or("");
      r.total_s = doc->get_number("seconds").value_or(0.0);
    } else if (type == "span_begin" || type == "span_end") {
      const std::uint64_t span =
          static_cast<std::uint64_t>(doc->get_number("span").value_or(0.0));
      if (span == 0) continue;
      if (type == "span_begin") {
        SpanRec& s = r.spans[span];
        s.id = span;
        s.name = doc->get_string("name").value_or("");
        s.parent = static_cast<std::uint64_t>(
            doc->get_number("parent").value_or(0.0));
        s.begin_ts = doc->get_number("ts").value_or(0.0);
        s.tid = static_cast<int>(doc->get_number("tid").value_or(-1.0));
        ++r.begun;
      } else {
        const auto it = r.spans.find(span);
        if (it == r.spans.end() || it->second.begin_ts < 0.0 ||
            it->second.ended) {
          ++r.unmatched_end;
          continue;
        }
        SpanRec& s = it->second;
        s.ended = true;
        s.seconds = doc->get_number("seconds").value_or(0.0);
        ++r.ended;
        r.phase_s[phase_key(s.name)] += s.seconds;
        if (s.name != "queue_wait") {  // waiting is not worker busy time
          WorkerRec& w = workers[static_cast<int>(
              doc->get_number("tid").value_or(-1.0))];
          w.busy_s += s.seconds;
          ++w.spans;
        }
      }
    }
  }

  std::uint64_t completed = 0, reconstructed = 0;
  int begun = 0, ended = 0, unmatched = 0;
  for (const auto& [req, r] : requests) {
    begun += r.begun;
    ended += r.ended;
    unmatched += r.unmatched_end;
    if (!r.done) continue;
    ++completed;
    if (r.balanced()) ++reconstructed;
  }
  const bool balanced = begun == ended && unmatched == 0;
  const double wall_s = any_ts ? max_ts - min_ts : 0.0;

  std::vector<const RequestRec*> slowest;
  for (const auto& [req, r] : requests) {
    if (r.done) slowest.push_back(&r);
  }
  std::sort(slowest.begin(), slowest.end(),
            [](const RequestRec* a, const RequestRec* b) {
              return a->total_s > b->total_s;
            });
  if (static_cast<int>(slowest.size()) > top) {
    slowest.resize(static_cast<std::size_t>(top));
  }

  if (json_out) {
    JsonObject out;
    out.num("events", static_cast<std::int64_t>(events))
        .num("bad_lines", static_cast<std::int64_t>(bad_lines))
        .num("requests", static_cast<std::int64_t>(requests.size()))
        .num("completed", static_cast<std::int64_t>(completed))
        .num("reconstructed", static_cast<std::int64_t>(reconstructed))
        .num("reconstructed_fraction",
             completed == 0 ? 1.0
                            : static_cast<double>(reconstructed) /
                                  static_cast<double>(completed))
        .raw("spans", JsonObject()
                          .num("begun", static_cast<std::int64_t>(begun))
                          .num("ended", static_cast<std::int64_t>(ended))
                          .num("unmatched_end",
                               static_cast<std::int64_t>(unmatched))
                          .boolean("balanced", balanced)
                          .build())
        .num("wall_seconds", wall_s);
    JsonArray reqs;
    for (const auto& [req, r] : requests) {
      JsonObject o;
      o.num("req", static_cast<std::int64_t>(req))
          .str("id", r.id)
          .str("state", r.done ? r.state : "open")
          .boolean("balanced", r.balanced())
          .num("queue_ms", phase(r, "queue_wait") * 1000.0)
          .num("encode_ms", phase(r, "encode") * 1000.0)
          .num("solve_ms", phase(r, "solve") * 1000.0)
          .num("certify_ms", phase(r, "certify") * 1000.0)
          .num("cache_lookup_ms", phase(r, "cache_lookup") * 1000.0)
          .num("total_ms", r.total_s * 1000.0)
          .num("search_samples", static_cast<std::int64_t>(r.samples.size()));
      if (!r.samples.empty()) {
        const SampleRec& last = r.samples.back();
        o.num("last_sample_conflicts", last.conflicts)
            .boolean("last_sample_final", last.final_sample);
      }
      reqs.push(o.build());
    }
    out.raw("requests_detail", reqs.build());
    JsonArray fds;
    for (const FlightDumpRec& fd : flight_dumps) {
      fds.push(JsonObject()
                   .str("id", fd.id)
                   .str("reason", fd.reason)
                   .num("req", static_cast<std::int64_t>(fd.req))
                   .num("count", fd.count)
                   .num("embedded", fd.embedded)
                   .boolean("has_search_sample", fd.has_search_sample)
                   .build());
    }
    out.raw("flight_dumps", fds.build());
    JsonArray crit;
    for (const RequestRec* r : slowest) {
      JsonArray chain;
      for (const SpanRec* s : critical_path(*r)) {
        chain.push(JsonObject()
                       .str("name", s->name)
                       .num("ms", s->seconds * 1000.0)
                       .build());
      }
      crit.push(JsonObject()
                    .str("id", r->id)
                    .num("total_ms", r->total_s * 1000.0)
                    .raw("path", chain.build())
                    .build());
    }
    out.raw("critical_paths", crit.build());
    JsonArray wk;
    for (const auto& [tid, w] : workers) {
      wk.push(JsonObject()
                  .num("tid", static_cast<std::int64_t>(tid))
                  .num("spans", static_cast<std::int64_t>(w.spans))
                  .num("busy_seconds", w.busy_s)
                  .num("utilization",
                       wall_s > 0.0 ? std::min(1.0, w.busy_s / wall_s) : 0.0)
                  .build());
    }
    out.raw("workers", wk.build());
    std::cout << out.build() << "\n";
    return balanced && bad_lines == 0 ? 0 : 1;
  }

  std::printf(
      "trace: %llu events (%llu malformed), %zu requests (%llu completed, "
      "%llu reconstructed), wall %.3fs\n",
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(bad_lines), requests.size(),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(reconstructed), wall_s);
  std::printf("spans: %d begun, %d ended, %d unmatched -> %s\n", begun, ended,
              unmatched, balanced ? "balanced" : "UNBALANCED");

  std::printf("\nper-request phases (ms):\n");
  std::printf("  %-8s %9s %9s %9s %9s %9s  %s\n", "id", "queue", "encode",
              "solve", "certify", "total", "state");
  for (const auto& [req, r] : requests) {
    std::printf("  %-8s %9.2f %9.2f %9.2f %9.2f %9.2f  %s%s\n",
                r.id.empty() ? std::to_string(req).c_str() : r.id.c_str(),
                phase(r, "queue_wait") * 1000.0, phase(r, "encode") * 1000.0,
                phase(r, "solve") * 1000.0, phase(r, "certify") * 1000.0,
                r.total_s * 1000.0, r.done ? r.state.c_str() : "open",
                r.balanced() ? "" : " [unbalanced]");
  }

  std::printf("\nslowest requests (critical path):\n");
  for (const RequestRec* r : slowest) {
    std::printf("  %-8s total=%.2fms  ", r->id.c_str(), r->total_s * 1000.0);
    bool first = true;
    for (const SpanRec* s : critical_path(*r)) {
      std::printf("%s%s(%.2fms)", first ? "" : " -> ", s->name.c_str(),
                  s->seconds * 1000.0);
      first = false;
    }
    std::printf("\n");
  }

  std::printf("\nworker utilization:\n");
  std::printf("  %-5s %8s %12s %6s\n", "tid", "spans", "busy_s", "util%");
  for (const auto& [tid, w] : workers) {
    std::printf("  %-5d %8d %12.3f %5.1f%%\n", tid, w.spans, w.busy_s,
                wall_s > 0.0 ? std::min(100.0, 100.0 * w.busy_s / wall_s)
                             : 0.0);
  }

  if (!flight_dumps.empty()) {
    std::printf("\nflight-recorder post-mortems:\n");
    for (const FlightDumpRec& fd : flight_dumps) {
      std::printf("  %-8s reason=%s events=%lld%s\n", fd.id.c_str(),
                  fd.reason.c_str(), static_cast<long long>(fd.embedded),
                  fd.has_search_sample ? " (incl. search_sample)" : "");
    }
  }

  if (search_view) {
    std::printf("\nsearch trajectories (one row per search_sample):\n");
    for (const auto& [req, r] : requests) {
      if (r.samples.empty()) continue;
      std::printf("  %s:\n",
                  r.id.empty() ? std::to_string(req).c_str() : r.id.c_str());
      std::printf("    %9s %10s %9s %11s %8s %8s %6s\n", "ts(s)", "conflicts",
                  "restarts", "props/s", "trail", "learnts", "lbd");
      for (const SampleRec& s : r.samples) {
        std::printf("    %9.3f %10.0f %9.0f %11.0f %8.0f %8.0f %6.2f%s\n",
                    s.ts, s.conflicts, s.restarts, s.props_per_sec, s.trail,
                    s.learnts, s.lbd_mean, s.final_sample ? " [final]" : "");
      }
    }
  }
  return balanced && bad_lines == 0 ? 0 : 1;
}

// Quickstart: define a small distributed real-time system, find the
// provably optimal task/message allocation, and cross-check it with the
// independent schedulability verifier.
//
//   $ ./quickstart
//
// Walks through the full public API: problem definition, objective
// selection, optimization, decoding, verification.

#include <cstdio>

#include "alloc/optimizer.hpp"
#include "rt/verify.hpp"

using namespace optalloc;

int main() {
  // --- 1. Describe the platform: two ECUs on one token ring. -----------
  alloc::Problem problem;
  problem.arch.num_ecus = 2;
  rt::Medium ring;
  ring.name = "ring0";
  ring.type = rt::MediumType::kTokenRing;
  ring.ecus = {0, 1};
  ring.ring_byte_ticks = 1;  // 1 tick per payload byte
  ring.slot_min = 1;
  ring.slot_max = 16;
  problem.arch.media = {ring};

  // --- 2. Describe the application: sensor -> control -> actuator. -----
  auto task = [](const char* name, rt::Ticks period, rt::Ticks deadline,
                 std::vector<rt::Ticks> wcet) {
    rt::Task t;
    t.name = name;
    t.period = period;
    t.deadline = deadline;
    t.wcet = std::move(wcet);
    return t;
  };
  rt::Task sensor = task("sensor", 100, 40, {8, 10});
  rt::Task control = task("control", 100, 80, {25, 30});
  rt::Task actuator = task("actuator", 100, 100, {5, 5});
  // sensor sends 4 bytes to control (end-to-end deadline 50 ticks),
  // control sends 2 bytes to the actuator.
  sensor.messages.push_back({1, 4, 50, 0});
  control.messages.push_back({2, 2, 60, 0});
  // The actuator drives redundant hardware and must not share an ECU
  // with the controller.
  actuator.separated_from = {1};
  control.separated_from = {2};
  problem.tasks.tasks = {sensor, control, actuator};

  // --- 3. Optimize: minimize the ring's token rotation time. ------------
  const alloc::Objective objective = alloc::Objective::ring_trt(0);
  const alloc::OptimizeResult result = alloc::optimize(problem, objective);

  std::printf("status: %s\n", result.status_string().c_str());
  if (result.status != alloc::OptimizeResult::Status::kOptimal) return 1;
  std::printf("optimal TRT: %lld ticks\n",
              static_cast<long long>(result.cost));
  std::printf("SAT queries: %d, %lld boolean vars, %llu literals\n",
              result.stats.sat_calls,
              static_cast<long long>(result.stats.boolean_vars),
              static_cast<unsigned long long>(result.stats.boolean_literals));

  // --- 4. Inspect the allocation. ----------------------------------------
  for (std::size_t i = 0; i < problem.tasks.tasks.size(); ++i) {
    std::printf("  %-9s -> ECU %d (priority rank %d)\n",
                problem.tasks.tasks[i].name.c_str(),
                result.allocation.task_ecu[i],
                result.allocation.task_prio[i]);
  }
  const auto refs = problem.tasks.message_refs();
  for (std::size_t g = 0; g < refs.size(); ++g) {
    std::printf("  message %zu route:", g);
    if (result.allocation.msg_route[g].empty()) {
      std::printf(" (local delivery)");
    }
    for (const int k : result.allocation.msg_route[g]) {
      std::printf(" %s", problem.arch.media[static_cast<std::size_t>(k)]
                             .name.c_str());
    }
    std::printf("\n");
  }
  std::printf("  slot table:");
  for (const rt::Ticks s : result.allocation.slots[0]) {
    std::printf(" %lld", static_cast<long long>(s));
  }
  std::printf("\n");

  // --- 5. Verify independently. -------------------------------------------
  const rt::VerifyReport report =
      rt::verify(problem.tasks, problem.arch, result.allocation);
  std::printf("independent verification: %s\n",
              report.feasible ? "feasible" : "INFEASIBLE");
  for (std::size_t i = 0; i < report.task_response.size(); ++i) {
    std::printf("  r(%s) = %lld <= d = %lld\n",
                problem.tasks.tasks[i].name.c_str(),
                static_cast<long long>(report.task_response[i]),
                static_cast<long long>(problem.tasks.tasks[i].deadline));
  }
  return report.feasible ? 0 : 1;
}

// Automotive CAN cluster scenario: a body-electronics function (door
// modules, light control, dashboard) mapped onto ECUs connected by a CAN
// bus. The objective is the paper's U_CAN: minimize bus load by
// co-locating chatty tasks — subject to placement restrictions that keep
// I/O tasks at their peripherals.
//
//   $ ./automotive_can [--sa-only]
//
// Also runs the simulated-annealing baseline for comparison (the paper's
// Table 1 setup).

#include <cstdio>
#include <cstring>

#include "alloc/optimizer.hpp"
#include "heur/annealing.hpp"
#include "rt/verify.hpp"
#include "workload/generator.hpp"

using namespace optalloc;

namespace {

alloc::Problem build_cluster() {
  alloc::Problem p;
  p.arch.num_ecus = 4;  // front-left door, front-right door, body, dash
  rt::Medium can;
  can.name = "body_can";
  can.type = rt::MediumType::kCan;
  can.ecus = {0, 1, 2, 3};
  can.can_bit_ticks = 1;
  can.can_bits_per_tick = 25;  // ~100 kbit/s at the 0.25 ms tick
  p.arch.media = {can};

  auto task = [](const char* name, rt::Ticks period, std::vector<rt::Ticks> w) {
    rt::Task t;
    t.name = name;
    t.period = period;
    t.deadline = period;
    t.wcet = std::move(w);
    return t;
  };
  const rt::Ticks F = rt::kForbidden;
  // I/O tasks pinned to their peripherals; processing tasks float.
  rt::Task dl = task("door_left", 40, {4, F, F, F});
  rt::Task dr = task("door_right", 40, {F, 4, F, F});
  rt::Task lock = task("lock_ctrl", 40, {6, 6, 6, 6});
  rt::Task light = task("light_ctrl", 100, {12, 12, 12, 12});
  rt::Task dash = task("dashboard", 100, {F, F, F, 10});
  rt::Task diag = task("diagnostics", 500, {40, 40, 40, 40});
  // Door switches report to the lock controller; lock + light status go
  // to the dashboard; diagnostics polls the light controller.
  dl.messages.push_back({2, 2, 20, 0});
  dr.messages.push_back({2, 2, 20, 0});
  lock.messages.push_back({4, 4, 40, 0});
  light.messages.push_back({4, 4, 60, 0});
  diag.messages.push_back({3, 8, 250, 0});
  p.tasks.tasks = {dl, dr, lock, light, dash, diag};
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool sa_only = argc > 1 && std::strcmp(argv[1], "--sa-only") == 0;
  const alloc::Problem p = build_cluster();
  const alloc::Objective objective = alloc::Objective::can_load(0);

  heur::AnnealingOptions sa_opts;
  sa_opts.iterations = 10000;
  const heur::AnnealingResult sa = heur::anneal(p, objective, sa_opts);
  std::printf("simulated annealing: %s, U_CAN = %.3f\n",
              sa.feasible ? "feasible" : "infeasible",
              sa.feasible ? static_cast<double>(sa.cost) / 1000.0 : -1.0);
  if (sa_only) return 0;

  alloc::OptimizeOptions opts;
  if (sa.feasible) {
    opts.initial_upper = sa.cost;
    opts.warm_start = sa.allocation;
  }
  const alloc::OptimizeResult res = alloc::optimize(p, objective, opts);
  std::printf("SAT optimizer:       %s, U_CAN = %.3f (%d SAT calls)\n",
              res.status_string().c_str(),
              res.cost >= 0 ? static_cast<double>(res.cost) / 1000.0 : -1.0,
              res.stats.sat_calls);
  if (res.status != alloc::OptimizeResult::Status::kOptimal) return 1;

  for (std::size_t i = 0; i < p.tasks.tasks.size(); ++i) {
    std::printf("  %-12s -> ECU %d\n", p.tasks.tasks[i].name.c_str(),
                res.allocation.task_ecu[i]);
  }
  const auto refs = p.tasks.message_refs();
  int on_bus = 0;
  for (std::size_t g = 0; g < refs.size(); ++g) {
    on_bus += !res.allocation.msg_route[g].empty();
  }
  std::printf("  %d of %zu messages use the bus\n", on_bus, refs.size());

  const rt::VerifyReport report = rt::verify(p.tasks, p.arch, res.allocation);
  std::printf("verified: %s (exact bus load %.3f)\n",
              report.feasible ? "yes" : "NO",
              static_cast<double>(report.max_can_util_ppm) / 1000.0);
  if (sa.feasible && res.cost > sa.cost) {
    std::printf("ERROR: optimal exceeds the heuristic!\n");
    return 1;
  }
  return report.feasible ? 0 : 1;
}

// Pseudo-Boolean solver/optimizer CLI over OPB files — the GOBLIN role in
// miniature. Decides satisfiability with the native PB propagation layer;
// a "min:" objective line triggers the paper's optimization scheme: a
// sequence of SAT calls walking the objective down until UNSAT proves
// optimality.
//
//   $ ./opb_solve problem.opb
//   $ printf '* #variable= 2 #constraint= 1\nmin: +1 x1 +1 x2 ;\n+1 x1 +1 x2 >= 1 ;\n' | ./opb_solve -

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "pb/opb.hpp"
#include "pb/propagator.hpp"
#include "sat/solver.hpp"
#include "util/stopwatch.hpp"

using namespace optalloc;

namespace {

std::int64_t objective_value(const pb::OpbProblem& problem,
                             const sat::Solver& solver) {
  std::int64_t total = 0;
  for (const pb::Term& t : *problem.objective) {
    if (solver.model_value(t.lit) == sat::LBool::kTrue) total += t.coef;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <file.opb | ->\n", argv[0]);
    return 2;
  }
  pb::OpbProblem problem;
  try {
    if (std::strcmp(argv[1], "-") == 0) {
      problem = pb::parse_opb(std::cin);
    } else {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
        return 2;
      }
      problem = pb::parse_opb(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }

  sat::Solver solver;
  pb::PbPropagator pbp(solver);
  Stopwatch sw;
  bool ok = pb::load_into(problem, solver, pbp);
  sat::LBool verdict = ok ? solver.solve() : sat::LBool::kFalse;
  if (verdict != sat::LBool::kTrue) {
    std::printf("s UNSATISFIABLE\n");
    return 20;
  }

  if (problem.objective) {
    // Walk the objective down: assert obj <= best - 1 until UNSAT. Each
    // added bound is a permanent PB constraint; the solver keeps its
    // learned clauses throughout (incremental optimization, Section 7).
    std::int64_t best = objective_value(problem, solver);
    int calls = 1;
    for (;;) {
      if (!pbp.add_le(*problem.objective, best - 1)) break;
      ++calls;
      if (solver.solve() != sat::LBool::kTrue) break;
      best = objective_value(problem, solver);
    }
    std::printf("c %d SAT calls, %s\n", calls, sw.pretty().c_str());
    std::printf("s OPTIMUM FOUND\no %lld\n", static_cast<long long>(best));
    return 30;
  }

  std::printf("c %s\n", sw.pretty().c_str());
  std::printf("s SATISFIABLE\nv");
  for (sat::Var v = 0; v < problem.num_vars; ++v) {
    const bool val = solver.model_value(v) == sat::LBool::kTrue;
    std::printf(" %sx%d", val ? "" : "-", v + 1);
  }
  std::printf("\n");
  return 10;
}

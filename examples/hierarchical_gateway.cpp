// Hierarchical architecture walkthrough (paper Section 4 / Fig. 1-2):
// builds the three-media topology of Figure 1, prints its path closures,
// then solves a gateway-crossing allocation problem on it, showing the
// chosen multi-hop routes, per-medium deadline budgets and jitter chains.
//
//   $ ./hierarchical_gateway
//   $ ./hierarchical_gateway --trace t.jsonl   # JSONL telemetry
//   $ ./hierarchical_gateway --stats           # search-effort summary
//   $ ./hierarchical_gateway --certify         # checker-verified optimum
//   $ ./hierarchical_gateway --threads 4       # cooperative portfolio

#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "alloc/optimizer.hpp"
#include "alloc/portfolio.hpp"
#include "net/paths.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/verify.hpp"

using namespace optalloc;

int main(int argc, char** argv) {
  bool want_stats = false;
  bool want_certify = false;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
      obs::set_phase_timing(true);
    } else if (std::strcmp(argv[i], "--certify") == 0) {
      want_certify = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "error: --threads wants a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--portfolio") == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw == 0 ? 4 : static_cast<int>(hw > 8 ? 8 : hw);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      if (!obs::trace_open(argv[++i])) {
        std::fprintf(stderr, "error: cannot open trace file %s\n", argv[i]);
        return 2;
      }
    }
  }
  // Figure 1 topology: k1 = {p1,p2,p3}, k2 = {p2,p4}, k3 = {p3,p5}
  // (0-based: ECUs 0..4, media 0..2). p2 and p3 are gateways.
  alloc::Problem p;
  p.arch.num_ecus = 5;
  auto ring = [](const char* name, std::vector<int> ecus) {
    rt::Medium m;
    m.name = name;
    m.type = rt::MediumType::kTokenRing;
    m.ecus = std::move(ecus);
    m.ring_byte_ticks = 1;
    m.slot_min = 1;
    m.slot_max = 16;
    m.gateway_cost = 3;
    return m;
  };
  p.arch.media = {ring("k1", {0, 1, 2}), ring("k2", {1, 3}),
                  ring("k3", {2, 4})};

  const net::PathClosures closures(p.arch);
  std::printf("%s\n", closures.describe().c_str());

  // Application: a data-acquisition task pinned to the k2 leaf (p4) feeds
  // a logger pinned to the k3 leaf (p5) — the message must traverse
  // k2 -> k1 -> k3 through both gateways. A local control loop runs on k1.
  const rt::Ticks F = rt::kForbidden;
  auto task = [](const char* name, rt::Ticks period, rt::Ticks deadline,
                 std::vector<rt::Ticks> wcet) {
    rt::Task t;
    t.name = name;
    t.period = period;
    t.deadline = deadline;
    t.wcet = std::move(wcet);
    return t;
  };
  rt::Task acquire = task("acquire", 200, 80, {F, F, F, 12, F});
  rt::Task logger = task("logger", 200, 200, {F, F, F, F, 8});
  rt::Task control = task("control", 100, 60, {15, 18, 18, F, F});
  rt::Task monitor = task("monitor", 200, 150, {10, 10, 10, 10, 10});
  acquire.messages.push_back({1, 4, 150, 0});   // acquire -> logger
  control.messages.push_back({3, 2, 80, 0});    // control -> monitor
  p.tasks.tasks = {acquire, logger, control, monitor};

  alloc::OptimizeOptions opts;
  opts.certify = want_certify;
  alloc::OptimizeResult res;
  alloc::SharingStats sharing;
  int winner = -1;
  if (threads > 1) {
    alloc::PortfolioOptions popts;
    popts.threads = threads;
    popts.base_config = opts;
    alloc::PortfolioResult pres =
        alloc::optimize_portfolio(p, alloc::Objective::sum_trt(), popts);
    res = std::move(pres.best);
    sharing = pres.sharing;
    winner = pres.winner;
  } else {
    res = alloc::optimize(p, alloc::Objective::sum_trt(), opts);
  }
  obs::trace_close();
  std::printf("status: %s, sum of TRTs = %lld ticks\n",
              res.status_string().c_str(), static_cast<long long>(res.cost));
  if (want_certify) {
    if (res.certified) {
      std::printf("certified: true\n");
    } else {
      std::printf("certified: FAILED (%s)\n", res.certify_error.c_str());
      return 3;
    }
  }
  if (want_stats) {
    if (threads > 1) {
      std::printf("parallel: threads=%d winner=%d exported=%llu "
                  "imported=%llu bounds_pub=%llu bounds_adopt=%llu\n",
                  threads, winner,
                  static_cast<unsigned long long>(sharing.clauses_exported),
                  static_cast<unsigned long long>(sharing.clauses_imported),
                  static_cast<unsigned long long>(sharing.bounds_published),
                  static_cast<unsigned long long>(sharing.bounds_adopted));
    }
    std::printf("effort: %s\n", res.stats.summary().c_str());
    std::printf("--- metrics ---\n%s", obs::render_metrics().c_str());
  }
  if (res.status != alloc::OptimizeResult::Status::kOptimal) return 1;

  for (std::size_t i = 0; i < p.tasks.tasks.size(); ++i) {
    std::printf("  %-8s -> ECU %d\n", p.tasks.tasks[i].name.c_str(),
                res.allocation.task_ecu[i]);
  }
  const auto refs = p.tasks.message_refs();
  const rt::VerifyReport report = rt::verify(p.tasks, p.arch, res.allocation);
  for (std::size_t g = 0; g < refs.size(); ++g) {
    std::printf("  message %zu:", g);
    const auto& route = res.allocation.msg_route[g];
    if (route.empty()) {
      std::printf(" local delivery\n");
      continue;
    }
    for (std::size_t l = 0; l < route.size(); ++l) {
      const auto& leg = report.msg_legs[g][l];
      std::printf(" [%s: d=%lld J=%lld r=%lld]",
                  p.arch.media[static_cast<std::size_t>(route[l])].name.c_str(),
                  static_cast<long long>(leg.local_deadline),
                  static_cast<long long>(leg.jitter),
                  static_cast<long long>(leg.response));
    }
    std::printf("\n");
  }
  std::printf("verified: %s\n", report.feasible ? "yes" : "NO");
  return report.feasible ? 0 : 1;
}

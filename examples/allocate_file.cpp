// File-driven allocator CLI: read a problem description, optimize the
// chosen objective, print the allocation, and re-verify it.
//
//   $ ./allocate_file system.prob trt:0
//   $ ./allocate_file system.prob can-load:1 --time 60
//   $ ./allocate_file system.prob trt:0 --report   # schedulability report
//   $ ./allocate_file system.prob trt:0 --dot      # graphviz topology
//   $ ./allocate_file system.prob trt:0 --trace t.jsonl  # JSONL telemetry
//   $ ./allocate_file system.prob trt:0 --stats    # search-effort summary
//   $ ./allocate_file - feasibility < system.prob
//
// Objectives: feasibility | trt:<medium> | sum-trt | can-load:<medium> |
// max-util. The optional --time budget (seconds) turns the run into an
// anytime optimization that reports best-so-far plus bounds. --trace FILE
// streams every SOLVE call, interval update and the final optimum as
// structured JSONL events (see README "Observability"); --stats enables
// phase timers and prints the metrics registry on exit.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "alloc/io.hpp"
#include "net/dot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/report.hpp"
#include "alloc/optimizer.hpp"
#include "heur/annealing.hpp"
#include "rt/verify.hpp"

using namespace optalloc;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <file|-> <objective> [--time <seconds>] "
                 "[--trace <file>] [--stats] [--report] [--dot]\n",
                 argv[0]);
    return 2;
  }
  alloc::Problem problem;
  alloc::Objective objective;
  try {
    if (std::strcmp(argv[1], "-") == 0) {
      problem = alloc::parse_problem(std::cin);
    } else {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
        return 2;
      }
      problem = alloc::parse_problem(in);
    }
    objective = alloc::parse_objective(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  alloc::OptimizeOptions opts;
  bool want_report = false;
  bool want_dot = false;
  bool want_stats = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--time") == 0 && i + 1 < argc) {
      opts.time_limit_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--report") == 0) {
      want_report = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      want_dot = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      if (!obs::trace_open(argv[++i])) {
        std::fprintf(stderr, "error: cannot open trace file %s\n", argv[i]);
        return 2;
      }
    }
  }
  if (want_stats) obs::set_phase_timing(true);

  // Heuristic seed (also the anytime fallback under tight budgets).
  const auto sa = heur::anneal(problem, objective, {.iterations = 8000});
  if (sa.feasible) opts.warm_start = sa.allocation;

  const alloc::OptimizeResult res = alloc::optimize(problem, objective, opts);
  obs::trace_close();
  std::printf("objective: %s\n", objective.describe().c_str());
  std::printf("status:    %s\n", res.status_string().c_str());
  if (want_stats) {
    std::printf("effort:    %s\n", res.stats.summary().c_str());
    std::printf("--- metrics ---\n%s", obs::render_metrics().c_str());
  }
  if (res.status == alloc::OptimizeResult::Status::kInfeasible) return 1;
  std::printf("cost:      %lld", static_cast<long long>(res.cost));
  if (res.status == alloc::OptimizeResult::Status::kBudgetExhausted) {
    std::printf("  (bounds: >= %lld)", static_cast<long long>(res.lower_bound));
  }
  std::printf("\n");
  if (!res.has_allocation) return 1;

  for (std::size_t i = 0; i < problem.tasks.tasks.size(); ++i) {
    std::printf("task %-16s -> ECU %d  (priority %d)\n",
                problem.tasks.tasks[i].name.c_str(),
                res.allocation.task_ecu[i], res.allocation.task_prio[i]);
  }
  const auto refs = problem.tasks.message_refs();
  for (std::size_t g = 0; g < refs.size(); ++g) {
    std::printf("message %-13s",
                (problem.tasks.tasks[static_cast<std::size_t>(refs[g].task)]
                     .name +
                 "#" + std::to_string(refs[g].index))
                    .c_str());
    if (res.allocation.msg_route[g].empty()) {
      std::printf(" local\n");
      continue;
    }
    std::printf(" via");
    for (std::size_t l = 0; l < res.allocation.msg_route[g].size(); ++l) {
      const int k = res.allocation.msg_route[g][l];
      std::printf(" %s(d=%lld)",
                  problem.arch.media[static_cast<std::size_t>(k)].name.c_str(),
                  static_cast<long long>(
                      res.allocation.msg_local_deadline[g][l]));
    }
    std::printf("\n");
  }
  for (std::size_t k = 0; k < problem.arch.media.size(); ++k) {
    if (problem.arch.media[k].type != rt::MediumType::kTokenRing) continue;
    std::printf("slots %-15s", problem.arch.media[k].name.c_str());
    for (const rt::Ticks s : res.allocation.slots[k]) {
      std::printf(" %lld", static_cast<long long>(s));
    }
    std::printf("\n");
  }
  const rt::VerifyReport report =
      rt::verify(problem.tasks, problem.arch, res.allocation);
  std::printf("verified:  %s\n", report.feasible ? "feasible" : "INFEASIBLE");
  if (want_report) {
    std::printf("%s", rt::render_report(problem.tasks, problem.arch,
                                        res.allocation,
                                        res.stats.summary())
                          .c_str());
  }
  if (want_dot) {
    std::printf("%s", net::to_dot(problem.tasks, problem.arch,
                                  res.allocation)
                          .c_str());
  }
  return report.feasible ? 0 : 1;
}

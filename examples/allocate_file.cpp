// File-driven allocator CLI: read a problem description, optimize the
// chosen objective, print the allocation, and re-verify it.
//
//   $ ./allocate_file system.prob trt:0
//   $ ./allocate_file system.prob can-load:1 --time 60
//   $ ./allocate_file system.prob trt:0 --report   # schedulability report
//   $ ./allocate_file system.prob trt:0 --dot      # graphviz topology
//   $ ./allocate_file system.prob trt:0 --trace t.jsonl  # JSONL telemetry
//   $ ./allocate_file system.prob trt:0 --stats    # search-effort summary
//   $ ./allocate_file --certify system.prob        # certified optimum
//   $ ./allocate_file - feasibility < system.prob
//
// Objectives: feasibility | trt:<medium> | sum-trt | can-load:<medium> |
// max-util; sum-trt is the default when omitted. The optional --time
// budget (seconds) — or --timeout (milliseconds) — turns the run into an
// anytime optimization that reports best-so-far plus bounds; a run that
// ends with a feasible allocation that is *not* proven optimal exits 4
// (vs 0 proven / 1 infeasible or unverified), so schedulers wrapping this
// CLI can tell the two apart. --trace FILE streams every SOLVE call,
// interval update and the final optimum as structured JSONL events (see
// README "Observability"); --stats enables phase timers and prints the
// metrics registry on exit. --certify runs the independent checkers over
// every search step (models on SAT, DRAT proofs on UNSAT, RT re-analysis
// of the answer) and the exit status reflects the verdict; --proof FILE
// additionally dumps the solver's proof log for the standalone
// drat_check tool. --threads N (or --portfolio for an auto worker count)
// runs the cooperative parallel portfolio: N diversified CDCL workers
// exchanging learnt clauses and cost bounds (see README "Parallel
// solving").

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "alloc/io.hpp"
#include "net/dot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/report.hpp"
#include "alloc/optimizer.hpp"
#include "alloc/portfolio.hpp"
#include "heur/annealing.hpp"
#include "rt/verify.hpp"
#include "sat/proof.hpp"

using namespace optalloc;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <file|-> [objective] [--time <seconds>] "
               "[--timeout <ms>] "
               "[--trace <file>] [--stats] [--report] [--dot] "
               "[--certify] [--proof <file>] [--threads <n> | --portfolio] "
               "[--no-inprocess] [--inprocess-interval <conflicts>]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  alloc::OptimizeOptions opts;
  bool want_report = false;
  bool want_dot = false;
  bool want_stats = false;
  int threads = 1;
  const char* proof_path = nullptr;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--time") == 0 && i + 1 < argc) {
      opts.time_limit_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      opts.time_limit_s = std::atof(argv[++i]) / 1000.0;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "error: --threads wants a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--portfolio") == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw == 0 ? 4 : static_cast<int>(hw > 8 ? 8 : hw);
    } else if (std::strcmp(argv[i], "--report") == 0) {
      want_report = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      want_dot = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--certify") == 0) {
      opts.certify = true;
    } else if (std::strcmp(argv[i], "--no-inprocess") == 0) {
      opts.inprocess = false;
    } else if (std::strcmp(argv[i], "--inprocess-interval") == 0 &&
               i + 1 < argc) {
      opts.inprocess_interval = std::atoll(argv[++i]);
      if (opts.inprocess_interval <= 0) {
        std::fprintf(stderr,
                     "error: --inprocess-interval wants a positive conflict "
                     "count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--proof") == 0 && i + 1 < argc) {
      proof_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      if (!obs::trace_open(argv[++i])) {
        std::fprintf(stderr, "error: cannot open trace file %s\n", argv[i]);
        return 2;
      }
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return usage(argv[0]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || positional.size() > 2) return usage(argv[0]);

  alloc::Problem problem;
  alloc::Objective objective = alloc::Objective::sum_trt();
  try {
    if (std::strcmp(positional[0], "-") == 0) {
      problem = alloc::parse_problem(std::cin, "<stdin>");
    } else {
      std::ifstream in(positional[0]);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", positional[0]);
        return 2;
      }
      problem = alloc::parse_problem(in, positional[0]);
    }
    if (positional.size() == 2) {
      objective = alloc::parse_objective(positional[1]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (want_stats) obs::set_phase_timing(true);
  sat::ProofLog proof_log;
  if (proof_path != nullptr) {
    if (threads > 1) {
      // One proof log cannot interleave several workers' derivations.
      std::fprintf(stderr, "error: --proof needs a single-threaded run\n");
      return 2;
    }
    opts.proof = &proof_log;
  }

  // Heuristic seed (also the anytime fallback under tight budgets).
  const auto sa = heur::anneal(problem, objective, {.iterations = 8000});
  if (sa.feasible) opts.warm_start = sa.allocation;

  alloc::OptimizeResult res;
  alloc::SharingStats sharing;
  int winner = -1;
  if (threads > 1) {
    alloc::PortfolioOptions popts;
    popts.threads = threads;
    popts.base_config = opts;
    popts.time_limit_s = opts.time_limit_s;
    alloc::PortfolioResult pres =
        alloc::optimize_portfolio(problem, objective, popts);
    res = std::move(pres.best);
    sharing = pres.sharing;
    winner = pres.winner;
  } else {
    res = alloc::optimize(problem, objective, opts);
  }
  obs::trace_close();
  if (proof_path != nullptr) {
    std::ofstream out(proof_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open proof file %s\n", proof_path);
      return 2;
    }
    proof_log.write_text(out);
  }
  std::printf("objective: %s\n", objective.describe().c_str());
  std::printf("status:    %s\n", res.status_string().c_str());
  bool certify_failed = false;
  if (opts.certify) {
    if (res.certified) {
      std::printf("certified: true\n");
    } else {
      certify_failed = true;
      std::printf("certified: FAILED (%s)\n",
                  res.certify_error.empty() ? "search not run to completion"
                                            : res.certify_error.c_str());
    }
  }
  if (want_stats) {
    if (threads > 1) {
      std::printf("parallel:  threads=%d winner=%d exported=%llu "
                  "imported=%llu bounds_pub=%llu bounds_adopt=%llu\n",
                  threads, winner,
                  static_cast<unsigned long long>(sharing.clauses_exported),
                  static_cast<unsigned long long>(sharing.clauses_imported),
                  static_cast<unsigned long long>(sharing.bounds_published),
                  static_cast<unsigned long long>(sharing.bounds_adopted));
    }
    std::printf("effort:    %s\n", res.stats.summary().c_str());
    std::printf("--- metrics ---\n%s", obs::render_metrics().c_str());
  }
  if (certify_failed) return 3;
  if (res.status == alloc::OptimizeResult::Status::kInfeasible) return 1;
  std::printf("cost:      %lld", static_cast<long long>(res.cost));
  if (res.status == alloc::OptimizeResult::Status::kBudgetExhausted) {
    std::printf("  (bounds: >= %lld)", static_cast<long long>(res.lower_bound));
  }
  std::printf("\n");
  if (!res.has_allocation) return 1;

  for (std::size_t i = 0; i < problem.tasks.tasks.size(); ++i) {
    std::printf("task %-16s -> ECU %d  (priority %d)\n",
                problem.tasks.tasks[i].name.c_str(),
                res.allocation.task_ecu[i], res.allocation.task_prio[i]);
  }
  const auto refs = problem.tasks.message_refs();
  for (std::size_t g = 0; g < refs.size(); ++g) {
    std::printf("message %-13s",
                (problem.tasks.tasks[static_cast<std::size_t>(refs[g].task)]
                     .name +
                 "#" + std::to_string(refs[g].index))
                    .c_str());
    if (res.allocation.msg_route[g].empty()) {
      std::printf(" local\n");
      continue;
    }
    std::printf(" via");
    for (std::size_t l = 0; l < res.allocation.msg_route[g].size(); ++l) {
      const int k = res.allocation.msg_route[g][l];
      std::printf(" %s(d=%lld)",
                  problem.arch.media[static_cast<std::size_t>(k)].name.c_str(),
                  static_cast<long long>(
                      res.allocation.msg_local_deadline[g][l]));
    }
    std::printf("\n");
  }
  for (std::size_t k = 0; k < problem.arch.media.size(); ++k) {
    if (problem.arch.media[k].type != rt::MediumType::kTokenRing) continue;
    std::printf("slots %-15s", problem.arch.media[k].name.c_str());
    for (const rt::Ticks s : res.allocation.slots[k]) {
      std::printf(" %lld", static_cast<long long>(s));
    }
    std::printf("\n");
  }
  const rt::VerifyReport report =
      rt::verify(problem.tasks, problem.arch, res.allocation);
  std::printf("verified:  %s\n", report.feasible ? "feasible" : "INFEASIBLE");
  if (want_report) {
    std::printf("%s", rt::render_report(problem.tasks, problem.arch,
                                        res.allocation,
                                        res.stats.summary())
                          .c_str());
  }
  if (want_dot) {
    std::printf("%s", net::to_dot(problem.tasks, problem.arch,
                                  res.allocation)
                          .c_str());
  }
  if (!report.feasible) return 1;
  // Anytime answer: feasible and verified, but the search ran out of
  // budget before pinning the optimum — distinct exit code so callers can
  // retry with a bigger budget (or accept the incumbent + lower bound).
  return res.status == alloc::OptimizeResult::Status::kBudgetExhausted ? 4 : 0;
}

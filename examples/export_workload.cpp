// Export the bundled benchmark instances as problem files, so they can be
// inspected, edited, and fed back through the `allocate_file` CLI:
//
//   $ ./export_workload tindell > tindell.prob
//   $ ./allocate_file tindell.prob trt:0
//
// Instances: tindell, tindell:<n> (prefix), can43, archA, archB, archC,
// archC+can, scaling:<ecus>.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "alloc/io.hpp"
#include "workload/generator.hpp"
#include "workload/tindell.hpp"

using namespace optalloc;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <tindell|tindell:N|can43|archA|archB|archC|"
                 "archC+can|scaling:E>\n",
                 argv[0]);
    return 2;
  }
  const std::string spec = argv[1];
  alloc::Problem problem;
  try {
    if (spec == "tindell") {
      problem = workload::tindell_system();
    } else if (spec.rfind("tindell:", 0) == 0) {
      problem = workload::tindell_prefix(std::stoi(spec.substr(8)));
    } else if (spec == "can43") {
      problem = workload::with_can_bus(workload::tindell_system());
    } else if (spec == "archA") {
      problem = workload::architecture_a();
    } else if (spec == "archB") {
      problem = workload::architecture_b();
    } else if (spec == "archC") {
      problem = workload::architecture_c();
    } else if (spec == "archC+can") {
      problem = workload::architecture_c(/*can_upper=*/true);
    } else if (spec.rfind("scaling:", 0) == 0) {
      problem = workload::scaling_system(std::stoi(spec.substr(8)));
    } else {
      std::fprintf(stderr, "unknown instance '%s'\n", spec.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("# optalloc instance '%s' (1 tick = %.2f ms)\n", spec.c_str(),
              workload::kMsPerTick);
  alloc::write_problem(std::cout, problem);
  return 0;
}

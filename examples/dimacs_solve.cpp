// Standalone CDCL SAT solver CLI over DIMACS CNF — exercises the solver
// substrate the allocation pipeline is built on.
//
//   $ ./dimacs_solve problem.cnf        # solve a file
//   $ echo "p cnf 2 2\n1 2 0\n-1 0" | ./dimacs_solve -
//
// Output follows the SAT-competition convention: "s SATISFIABLE" plus a
// "v ..." model line, or "s UNSATISFIABLE".

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/stopwatch.hpp"

using namespace optalloc;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <file.cnf | ->\n", argv[0]);
    return 2;
  }
  sat::DimacsProblem problem;
  try {
    if (std::strcmp(argv[1], "-") == 0) {
      problem = sat::parse_dimacs(std::cin);
    } else {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
        return 2;
      }
      problem = sat::parse_dimacs(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }

  sat::Solver solver;
  Stopwatch sw;
  const bool loaded = sat::load_into(problem, solver);
  const sat::LBool verdict =
      loaded ? solver.solve() : sat::LBool::kFalse;

  std::printf("c %d vars, %zu clauses\n", problem.num_vars,
              problem.clauses.size());
  std::printf("c %llu conflicts, %llu decisions, %llu propagations, %s\n",
              static_cast<unsigned long long>(solver.stats().conflicts),
              static_cast<unsigned long long>(solver.stats().decisions),
              static_cast<unsigned long long>(solver.stats().propagations),
              sw.pretty().c_str());
  if (verdict == sat::LBool::kTrue) {
    std::printf("s SATISFIABLE\nv");
    for (sat::Var v = 0; v < problem.num_vars; ++v) {
      const bool val = solver.model_value(v) == sat::LBool::kTrue;
      std::printf(" %d", val ? v + 1 : -(v + 1));
    }
    std::printf(" 0\n");
    return 10;
  }
  std::printf("s UNSATISFIABLE\n");
  return 20;
}

#pragma once
// Reduction of bounded-integer constraint systems (ir::Context formulas) to
// propositional satisfiability — the paper's Section 5.1 pipeline:
//
//   1. Tseitin-style decomposition into "triplets" (here: structural
//      recursion over the hash-consed IR DAG, which is the same thing: each
//      subexpression gets one propositional / bit-vector definition).
//   2. 2's-complement bit-blasting of the arithmetic triplets. Addition is
//      a ripple-carry chain of full adders (paper eq. 19); multiplication
//      is a shift-add array (needed for the non-linear TDMA blocking
//      terms); comparisons go through a subtractor's sign bit.
//
// Two backends, selected by Options::backend:
//   kCnf     — every gate axiomatized by clauses.
//   kPbMixed — adder carries emitted as pseudo-Boolean constraints
//              (2c + x + y + cin style, exactly the paper's encoding) via
//              the native PB propagator; parity stays clausal.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/expr.hpp"
#include "pb/propagator.hpp"
#include "sat/solver.hpp"

namespace optalloc::encode {

enum class Backend {
  kCnf,
  kPbMixed,
};

struct Options {
  Backend backend = Backend::kCnf;
};

/// A propositional bit: constant or solver literal.
struct Bit {
  enum class Kind : std::uint8_t { kFalse, kTrue, kVar };
  Kind kind = Kind::kFalse;
  sat::Lit lit{};

  static Bit konst(bool v) {
    return {v ? Kind::kTrue : Kind::kFalse, sat::kUndefLit};
  }
  static Bit var(sat::Lit l) { return {Kind::kVar, l}; }
  bool is_const() const { return kind != Kind::kVar; }
  bool const_value() const { return kind == Kind::kTrue; }
};

/// 2's-complement bit vector, LSB first. The last bit is the sign bit.
using BitVec = std::vector<Bit>;

/// Incremental encoder: translates IR formulas into a solver (and
/// optionally a PB store). May be used across multiple solve() calls —
/// the optimizer encodes new cost bounds between calls, which is what
/// enables learned-clause reuse during the binary search (paper Section 7).
class BitBlaster {
 public:
  /// `pb` may be null for the kCnf backend; required for kPbMixed.
  BitBlaster(const ir::Context& ctx, sat::Solver& solver,
             pb::PbPropagator* pb = nullptr, Options options = {});

  /// Assert a Boolean IR formula at the top level. Returns false if the
  /// formula system became unsatisfiable during encoding.
  bool assert_true(ir::NodeId formula);

  /// Tseitin literal equivalent to `formula` (not asserted). Useful as a
  /// solve-time assumption, e.g. for the optimizer's cost-interval guards.
  sat::Lit formula_lit(ir::NodeId formula);

  /// Assert `formula` conditionally on an activation literal: the clause
  /// (¬guard ∨ formula). The formula's Tseitin definition is emitted
  /// unguarded — it is definitional, hence satisfiable on its own — so
  /// only the top-level assertion depends on `guard`. A session activates
  /// the constraint by assuming `guard` and retracts it permanently with
  /// the unit clause ¬guard (src/inc). Returns false if the system became
  /// unsatisfiable during encoding.
  bool assert_guarded(sat::Lit guard, ir::NodeId formula);

  /// Force an integer variable to be represented (so its value can be
  /// decoded even if no asserted formula mentions it).
  void touch(ir::NodeId int_var) { encode_int(int_var); }

  /// Decode values from the solver's current model (call after kTrue).
  std::int64_t int_value(ir::NodeId node) const;
  bool bool_value(ir::NodeId node) const;

  /// Whether a node has an encoding (i.e. int_value/bool_value will not
  /// throw). Unencoded variables are unconstrained — the model certifier
  /// assigns them an arbitrary in-range value.
  bool has_int(ir::NodeId node) const {
    return int_cache_.contains(static_cast<std::int32_t>(node));
  }
  bool has_bool(ir::NodeId node) const {
    return bool_cache_.contains(static_cast<std::int32_t>(node));
  }

  /// Warm-start hints: bias the solver's initial phases so that the given
  /// node decodes to `value` on the first descent. No-op for constants.
  void hint_int(ir::NodeId int_var, std::int64_t value);
  void hint_bool(ir::NodeId bool_var, bool value);

  /// Bits of an encoded integer node (LSB first; for tests).
  const BitVec& bits(ir::NodeId node) const;

  const ir::Context& ctx() const { return ctx_; }
  sat::Solver& solver() { return solver_; }

 private:
  // Node encodings (memoized on the hash-consed IR DAG).
  const BitVec& encode_int(ir::NodeId id);
  Bit encode_bool(ir::NodeId id);

  /// Gather the literals of a disjunction for clause-level assertion.
  void collect_or(ir::NodeId formula, std::vector<sat::Lit>& out,
                  bool& tautology);

  // Gate constructors with eager constant folding.
  Bit fresh();
  Bit b_not(Bit a);
  Bit b_and(Bit a, Bit b);
  Bit b_or(Bit a, Bit b);
  Bit b_xor(Bit a, Bit b);
  Bit b_iff(Bit a, Bit b) { return b_not(b_xor(a, b)); }
  Bit b_ite(Bit c, Bit t, Bit e);
  Bit b_maj(Bit a, Bit b, Bit c);

  /// Full adder; returns {sum, carry}.
  std::pair<Bit, Bit> full_adder(Bit x, Bit y, Bit cin);

  /// a + b (+ cin) over `width` bits, inputs sign-extended, result
  /// truncated to `width` (correct when the true result fits `width`
  /// signed bits).
  BitVec add_vec(const BitVec& a, const BitVec& b, Bit cin, int width);
  BitVec sub_vec(const BitVec& a, const BitVec& b, int width);
  BitVec mul_vec(const BitVec& a, const BitVec& b, int width);
  BitVec ite_vec(Bit c, const BitVec& t, const BitVec& e, int width);

  /// Sign-extend (or truncate) to `width` bits.
  BitVec extend(const BitVec& v, int width) const;

  /// Bit encoding of a constant.
  BitVec const_vec(std::int64_t v, int width) const;

  /// Literal encoding of bit `b`, materializing constants through the
  /// dedicated constant-true variable.
  sat::Lit lit_of(Bit b);

  /// b <= a ? ... comparator helpers.
  Bit less_equal(const BitVec& a, const BitVec& b);
  Bit equal(const BitVec& a, const BitVec& b);

  /// Smallest width whose signed range covers [r.lo, r.hi].
  static int width_for(ir::Range r);

  /// Cache staleness after solver inprocessing: a cached encoding whose
  /// variable was eliminated must not be referenced by new encoding; it is
  /// treated as a miss and the node re-encoded. Decoding stale entries is
  /// still fine — eliminated variables get model values reconstructed.
  bool bit_stale(const Bit& b) const {
    return !b.is_const() && solver_.is_eliminated(b.lit.var());
  }
  bool vec_stale(const BitVec& v) const {
    for (const Bit& b : v) {
      if (bit_stale(b)) return true;
    }
    return false;
  }

  void add_clause(std::initializer_list<sat::Lit> lits);

  const ir::Context& ctx_;
  sat::Solver& solver_;
  pb::PbPropagator* pb_;
  Options options_;
  std::unordered_map<std::int32_t, BitVec> int_cache_;
  std::unordered_map<std::int32_t, Bit> bool_cache_;
  sat::Lit true_lit_ = sat::kUndefLit;  ///< lazily created constant-true
  bool ok_ = true;
};

}  // namespace optalloc::encode

#include "encode/bitblast.hpp"

#include <cassert>
#include <stdexcept>

namespace optalloc::encode {

using ir::NodeId;
using ir::Op;
using sat::Lit;

namespace {

bool same_bit(Bit a, Bit b) {
  return a.kind == b.kind && (a.is_const() || a.lit == b.lit);
}
bool complement_bits(Bit a, Bit b) {
  if (a.kind == Bit::Kind::kVar && b.kind == Bit::Kind::kVar) {
    return a.lit == ~b.lit;
  }
  return a.is_const() && b.is_const() && a.const_value() != b.const_value();
}

}  // namespace

BitBlaster::BitBlaster(const ir::Context& ctx, sat::Solver& solver,
                       pb::PbPropagator* pb, Options options)
    : ctx_(ctx), solver_(solver), pb_(pb), options_(options) {
  if (options_.backend == Backend::kPbMixed && pb_ == nullptr) {
    throw std::invalid_argument(
        "BitBlaster: kPbMixed backend requires a PB propagator");
  }
}

int BitBlaster::width_for(ir::Range r) {
  int w = 1;
  while (r.lo < -(std::int64_t{1} << (w - 1)) ||
         r.hi > (std::int64_t{1} << (w - 1)) - 1) {
    ++w;
    assert(w <= 62);
  }
  return w;
}

void BitBlaster::add_clause(std::initializer_list<Lit> lits) {
  ok_ = solver_.add_clause(lits) && ok_;
}

Bit BitBlaster::fresh() { return Bit::var(sat::pos(solver_.new_var())); }

Lit BitBlaster::lit_of(Bit b) {
  if (b.kind == Bit::Kind::kVar) return b.lit;
  if (true_lit_ == sat::kUndefLit) {
    true_lit_ = sat::pos(solver_.new_var());
    ok_ = solver_.add_unit(true_lit_) && ok_;
  }
  return b.const_value() ? true_lit_ : ~true_lit_;
}

Bit BitBlaster::b_not(Bit a) {
  if (a.is_const()) return Bit::konst(!a.const_value());
  return Bit::var(~a.lit);
}

Bit BitBlaster::b_and(Bit a, Bit b) {
  if (a.is_const()) return a.const_value() ? b : Bit::konst(false);
  if (b.is_const()) return b.const_value() ? a : Bit::konst(false);
  if (same_bit(a, b)) return a;
  if (complement_bits(a, b)) return Bit::konst(false);
  const Bit z = fresh();
  add_clause({~z.lit, a.lit});
  add_clause({~z.lit, b.lit});
  add_clause({z.lit, ~a.lit, ~b.lit});
  return z;
}

Bit BitBlaster::b_or(Bit a, Bit b) { return b_not(b_and(b_not(a), b_not(b))); }

Bit BitBlaster::b_xor(Bit a, Bit b) {
  if (a.is_const()) return a.const_value() ? b_not(b) : b;
  if (b.is_const()) return b.const_value() ? b_not(a) : a;
  if (same_bit(a, b)) return Bit::konst(false);
  if (complement_bits(a, b)) return Bit::konst(true);
  const Bit z = fresh();
  add_clause({~z.lit, a.lit, b.lit});
  add_clause({~z.lit, ~a.lit, ~b.lit});
  add_clause({z.lit, ~a.lit, b.lit});
  add_clause({z.lit, a.lit, ~b.lit});
  return z;
}

Bit BitBlaster::b_ite(Bit c, Bit t, Bit e) {
  if (c.is_const()) return c.const_value() ? t : e;
  if (same_bit(t, e)) return t;
  if (t.is_const() && e.is_const()) {
    // t != e here; ite(c, 1, 0) == c, ite(c, 0, 1) == ~c.
    return t.const_value() ? c : b_not(c);
  }
  if (t.is_const()) {
    return t.const_value() ? b_or(c, e) : b_and(b_not(c), e);
  }
  if (e.is_const()) {
    return e.const_value() ? b_or(b_not(c), t) : b_and(c, t);
  }
  const Bit z = fresh();
  add_clause({~z.lit, ~c.lit, t.lit});
  add_clause({~z.lit, c.lit, e.lit});
  add_clause({z.lit, ~c.lit, ~t.lit});
  add_clause({z.lit, c.lit, ~e.lit});
  return z;
}

Bit BitBlaster::b_maj(Bit a, Bit b, Bit c) {
  if (a.is_const()) return a.const_value() ? b_or(b, c) : b_and(b, c);
  if (b.is_const()) return b.const_value() ? b_or(a, c) : b_and(a, c);
  if (c.is_const()) return c.const_value() ? b_or(a, b) : b_and(a, b);
  if (same_bit(a, b)) return a;
  if (same_bit(a, c)) return a;
  if (same_bit(b, c)) return b;
  if (complement_bits(a, b)) return c;
  if (complement_bits(a, c)) return b;
  if (complement_bits(b, c)) return a;
  const Bit z = fresh();
  if (options_.backend == Backend::kPbMixed) {
    // The paper's eq. (19) carry axioms as two PB constraints:
    //   x + y + cin - 2z >= 0   and   2z - x - y - cin >= -1.
    ok_ = pb_->add_ge(std::vector<pb::Term>{{1, a.lit},
                                            {1, b.lit},
                                            {1, c.lit},
                                            {-2, z.lit}},
                      0) &&
          ok_;
    ok_ = pb_->add_ge(std::vector<pb::Term>{{2, z.lit},
                                            {-1, a.lit},
                                            {-1, b.lit},
                                            {-1, c.lit}},
                      -1) &&
          ok_;
    return z;
  }
  add_clause({~a.lit, ~b.lit, z.lit});
  add_clause({~a.lit, ~c.lit, z.lit});
  add_clause({~b.lit, ~c.lit, z.lit});
  add_clause({a.lit, b.lit, ~z.lit});
  add_clause({a.lit, c.lit, ~z.lit});
  add_clause({b.lit, c.lit, ~z.lit});
  return z;
}

std::pair<Bit, Bit> BitBlaster::full_adder(Bit x, Bit y, Bit cin) {
  return {b_xor(b_xor(x, y), cin), b_maj(x, y, cin)};
}

BitVec BitBlaster::const_vec(std::int64_t v, int width) const {
  BitVec bits(static_cast<std::size_t>(width));
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < width; ++i) {
    bits[static_cast<std::size_t>(i)] = Bit::konst((u >> i) & 1u);
  }
  return bits;
}

BitVec BitBlaster::extend(const BitVec& v, int width) const {
  BitVec out(v);
  if (static_cast<int>(out.size()) > width) {
    out.resize(static_cast<std::size_t>(width));
  } else {
    const Bit sign = out.empty() ? Bit::konst(false) : out.back();
    while (static_cast<int>(out.size()) < width) out.push_back(sign);
  }
  return out;
}

BitVec BitBlaster::add_vec(const BitVec& a, const BitVec& b, Bit cin,
                           int width) {
  const BitVec ea = extend(a, width);
  const BitVec eb = extend(b, width);
  BitVec out(static_cast<std::size_t>(width));
  Bit carry = cin;
  for (int i = 0; i < width; ++i) {
    auto [sum, cout] = full_adder(ea[static_cast<std::size_t>(i)],
                                  eb[static_cast<std::size_t>(i)], carry);
    out[static_cast<std::size_t>(i)] = sum;
    carry = cout;
  }
  return out;
}

BitVec BitBlaster::sub_vec(const BitVec& a, const BitVec& b, int width) {
  BitVec nb = extend(b, width);
  for (Bit& bit : nb) bit = b_not(bit);
  return add_vec(extend(a, width), nb, Bit::konst(true), width);
}

BitVec BitBlaster::mul_vec(const BitVec& a, const BitVec& b, int width) {
  const BitVec ea = extend(a, width);
  const BitVec eb = extend(b, width);
  // Use the operand with fewer variable bits to select partial products.
  auto count_vars = [](const BitVec& v) {
    int n = 0;
    for (const Bit bit : v) n += !bit.is_const();
    return n;
  };
  const BitVec& rows_of = count_vars(eb) <= count_vars(ea) ? eb : ea;
  const BitVec& addend = count_vars(eb) <= count_vars(ea) ? ea : eb;

  BitVec acc = const_vec(0, width);
  for (int j = 0; j < width; ++j) {
    const Bit sel = rows_of[static_cast<std::size_t>(j)];
    if (sel.is_const() && !sel.const_value()) continue;
    // row = (addend << j) AND sel, truncated at `width`.
    BitVec row(static_cast<std::size_t>(width), Bit::konst(false));
    for (int i = 0; i + j < width; ++i) {
      row[static_cast<std::size_t>(i + j)] =
          b_and(addend[static_cast<std::size_t>(i)], sel);
    }
    acc = add_vec(acc, row, Bit::konst(false), width);
  }
  return acc;
}

BitVec BitBlaster::ite_vec(Bit c, const BitVec& t, const BitVec& e,
                           int width) {
  const BitVec et = extend(t, width);
  const BitVec ee = extend(e, width);
  BitVec out(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    out[static_cast<std::size_t>(i)] =
        b_ite(c, et[static_cast<std::size_t>(i)],
              ee[static_cast<std::size_t>(i)]);
  }
  return out;
}

Bit BitBlaster::less_equal(const BitVec& a, const BitVec& b) {
  // a <= b  iff  0 <= b - a  iff  the sign bit of (b - a) is clear,
  // computed at a width where the subtraction cannot wrap.
  const int w = static_cast<int>(std::max(a.size(), b.size())) + 1;
  const BitVec d = sub_vec(b, a, w);
  return b_not(d.back());
}

Bit BitBlaster::equal(const BitVec& a, const BitVec& b) {
  const int w = static_cast<int>(std::max(a.size(), b.size()));
  const BitVec ea = extend(a, w);
  const BitVec eb = extend(b, w);
  Bit acc = Bit::konst(true);
  for (int i = 0; i < w; ++i) {
    acc = b_and(acc, b_iff(ea[static_cast<std::size_t>(i)],
                           eb[static_cast<std::size_t>(i)]));
  }
  return acc;
}

const BitVec& BitBlaster::encode_int(NodeId id) {
  const auto key = static_cast<std::int32_t>(id);
  if (const auto it = int_cache_.find(key); it != int_cache_.end()) {
    // Solver inprocessing may have eliminated a cached gate variable
    // between solve() calls; the entry is then stale — referencing it in
    // new encoding would resurrect a removed variable. Re-encode the node
    // fresh (a sound Tseitin re-definition: the eliminated formula is
    // equisatisfiability-preserving, so alive cached operands keep their
    // functional meaning). Leaf variables are frozen below and can never
    // go stale.
    if (!vec_stale(it->second)) return it->second;
    int_cache_.erase(it);
  }
  const ir::Node& n = ctx_.node(id);
  const int w = width_for(n.range);
  BitVec result;
  switch (n.op) {
    case Op::kConst:
      result = const_vec(n.value, w);
      break;
    case Op::kIntVar: {
      result.reserve(static_cast<std::size_t>(w));
      for (int i = 0; i < w; ++i) result.push_back(fresh());
      // Leaf bits are the decode/hint interface and must keep their
      // identity across solves: never let inprocessing eliminate them
      // (re-encoding a leaf would create an unconstrained alias).
      for (const Bit& b : result) solver_.set_frozen(b.lit.var());
      // Constrain to the declared range where the width is not exact.
      const std::int64_t repr_lo = -(std::int64_t{1} << (w - 1));
      const std::int64_t repr_hi = (std::int64_t{1} << (w - 1)) - 1;
      if (n.range.lo > repr_lo) {
        const Bit ok_bit = less_equal(const_vec(n.range.lo, w), result);
        ok_ = solver_.add_unit(lit_of(ok_bit)) && ok_;
      }
      if (n.range.hi < repr_hi) {
        const Bit ok_bit = less_equal(result, const_vec(n.range.hi, w));
        ok_ = solver_.add_unit(lit_of(ok_bit)) && ok_;
      }
      break;
    }
    // NOTE: operands are copied into locals because encode_int returns a
    // reference into int_cache_, which recursive calls may rehash.
    case Op::kAdd: {
      const BitVec va = encode_int(n.a);
      const BitVec vb = encode_int(n.b);
      result = add_vec(va, vb, Bit::konst(false), w);
      break;
    }
    case Op::kSub: {
      const BitVec va = encode_int(n.a);
      const BitVec vb = encode_int(n.b);
      result = sub_vec(va, vb, w);
      break;
    }
    case Op::kMul: {
      const BitVec va = encode_int(n.a);
      const BitVec vb = encode_int(n.b);
      result = mul_vec(va, vb, w);
      break;
    }
    case Op::kIte: {
      const Bit cond = encode_bool(n.a);
      const BitVec vt = encode_int(n.b);
      const BitVec ve = encode_int(n.c);
      result = ite_vec(cond, vt, ve, w);
      break;
    }
    default:
      throw std::logic_error("encode_int: boolean node");
  }
  return int_cache_.emplace(key, std::move(result)).first->second;
}

Bit BitBlaster::encode_bool(NodeId id) {
  const auto key = static_cast<std::int32_t>(id);
  if (const auto it = bool_cache_.find(key); it != bool_cache_.end()) {
    // Stale after variable elimination: re-encode (see encode_int).
    if (!bit_stale(it->second)) return it->second;
    bool_cache_.erase(it);
  }
  const ir::Node& n = ctx_.node(id);
  Bit result;
  switch (n.op) {
    case Op::kBoolConst:
      result = Bit::konst(n.value != 0);
      break;
    case Op::kBoolVar:
      result = fresh();
      // Leaf variable: frozen for the same reason as integer leaf bits.
      solver_.set_frozen(result.lit.var());
      break;
    case Op::kNot:
      result = b_not(encode_bool(n.a));
      break;
    case Op::kAnd:
      result = b_and(encode_bool(n.a), encode_bool(n.b));
      break;
    case Op::kOr:
      result = b_or(encode_bool(n.a), encode_bool(n.b));
      break;
    case Op::kImplies:
      result = b_or(b_not(encode_bool(n.a)), encode_bool(n.b));
      break;
    case Op::kIff:
      result = b_iff(encode_bool(n.a), encode_bool(n.b));
      break;
    case Op::kEq:
    case Op::kNe: {
      const BitVec va = encode_int(n.a);
      const BitVec vb = encode_int(n.b);
      const Bit e = equal(va, vb);
      result = n.op == Op::kEq ? e : b_not(e);
      break;
    }
    case Op::kLe:
    case Op::kGt: {
      const BitVec va = encode_int(n.a);
      const BitVec vb = encode_int(n.b);
      const Bit le_bit = less_equal(va, vb);
      result = n.op == Op::kLe ? le_bit : b_not(le_bit);
      break;
    }
    case Op::kGe:
    case Op::kLt: {
      const BitVec va = encode_int(n.a);
      const BitVec vb = encode_int(n.b);
      const Bit ge_bit = less_equal(vb, va);
      result = n.op == Op::kGe ? ge_bit : b_not(ge_bit);
      break;
    }
    default:
      throw std::logic_error("encode_bool: integer node");
  }
  return bool_cache_.emplace(key, result).first->second;
}

bool BitBlaster::assert_true(NodeId formula) {
  // CNF-aware assertion: top-level conjunctions split, top-level
  // disjunctions become one clause over the Tseitin literals of their
  // disjuncts. This turns the encoder's guard implications
  // (g -> constraint), i.e. (~g \/ c), into plain binary clauses instead
  // of gate stacks.
  const ir::Node& n = ctx_.node(formula);
  if (n.op == Op::kAnd) {
    const bool first = assert_true(n.a);
    return assert_true(n.b) && first;
  }
  std::vector<Lit> clause;
  bool tautology = false;
  collect_or(formula, clause, tautology);
  if (tautology) return ok_;
  ok_ = solver_.add_clause(clause) && ok_;
  return ok_;
}

bool BitBlaster::assert_guarded(Lit guard, NodeId formula) {
  // Mirrors assert_true's CNF-aware splitting, with ~guard joined into
  // every emitted clause: conjunctions split recursively (each conjunct
  // guarded separately), disjunctions become one clause. A constant-false
  // formula degenerates to the unit ~guard — assuming the guard then
  // yields an immediate conflict whose core names exactly this group.
  const ir::Node& n = ctx_.node(formula);
  if (n.op == Op::kAnd) {
    const bool first = assert_guarded(guard, n.a);
    return assert_guarded(guard, n.b) && first;
  }
  std::vector<Lit> clause;
  clause.push_back(~guard);
  bool tautology = false;
  collect_or(formula, clause, tautology);
  if (tautology) return ok_;
  ok_ = solver_.add_clause(clause) && ok_;
  return ok_;
}

void BitBlaster::collect_or(NodeId formula, std::vector<Lit>& out,
                            bool& tautology) {
  const ir::Node& n = ctx_.node(formula);
  if (n.op == Op::kOr) {
    collect_or(n.a, out, tautology);
    if (!tautology) collect_or(n.b, out, tautology);
    return;
  }
  const Bit b = encode_bool(formula);
  if (b.is_const()) {
    if (b.const_value()) tautology = true;
    return;  // false literals are simply dropped
  }
  out.push_back(b.lit);
}

Lit BitBlaster::formula_lit(NodeId formula) {
  return lit_of(encode_bool(formula));
}

const BitVec& BitBlaster::bits(NodeId node) const {
  const auto it = int_cache_.find(static_cast<std::int32_t>(node));
  if (it == int_cache_.end()) {
    throw std::logic_error("bits: node was never encoded");
  }
  return it->second;
}

std::int64_t BitBlaster::int_value(NodeId node) const {
  const ir::Node& n = ctx_.node(node);
  if (n.op == Op::kConst) return n.value;
  const BitVec& v = bits(node);
  std::int64_t value = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    bool set;
    if (v[i].is_const()) {
      set = v[i].const_value();
    } else {
      const sat::LBool mv = solver_.model_value(v[i].lit);
      if (mv == sat::LBool::kUndef) {
        throw std::logic_error("int_value: unassigned bit (no model?)");
      }
      set = (mv == sat::LBool::kTrue);
    }
    if (set) {
      value += (i + 1 == v.size()) ? -(std::int64_t{1} << i)
                                   : (std::int64_t{1} << i);
    }
  }
  return value;
}

void BitBlaster::hint_int(NodeId int_var, std::int64_t value) {
  const BitVec& v = encode_int(int_var);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].is_const()) continue;
    const bool bit_set = (static_cast<std::uint64_t>(value) >> i) & 1u;
    // Polarity is the *sign* of the branching literal: sign==false tries
    // the positive literal (variable true) first. The activity boost makes
    // hinted variables the first decisions, so derived circuit variables
    // follow by propagation instead of overriding the hint.
    solver_.set_polarity(v[i].lit.var(), v[i].lit.sign() ? bit_set
                                                         : !bit_set);
    solver_.boost_activity(v[i].lit.var());
  }
}

void BitBlaster::hint_bool(NodeId bool_var, bool value) {
  const Bit b = encode_bool(bool_var);
  if (b.is_const()) return;
  solver_.set_polarity(b.lit.var(), b.lit.sign() ? value : !value);
  solver_.boost_activity(b.lit.var());
}

bool BitBlaster::bool_value(NodeId node) const {
  const ir::Node& n = ctx_.node(node);
  if (n.op == Op::kBoolConst) return n.value != 0;
  const auto it = bool_cache_.find(static_cast<std::int32_t>(node));
  if (it == bool_cache_.end()) {
    throw std::logic_error("bool_value: node was never encoded");
  }
  const Bit b = it->second;
  if (b.is_const()) return b.const_value();
  return solver_.model_value(b.lit) == sat::LBool::kTrue;
}

}  // namespace optalloc::encode

#include "obs/trace.hpp"

#include <fstream>
#include <memory>
#include <ostream>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"

namespace optalloc::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}

namespace {

struct Sink {
  util::Mutex mutex;
  // Owned when tracing to a path.
  std::unique_ptr<std::ofstream> file OPTALLOC_GUARDED_BY(mutex);
  // Active destination (file or external stream).
  std::ostream* out OPTALLOC_GUARDED_BY(mutex) = nullptr;
  std::atomic<std::uint64_t> epoch_ns{0};  // trace-open time ("ts" base)
};

Sink& sink() {
  static Sink* s = new Sink();  // leaked: events may fire during exit
  return *s;
}

std::atomic<int> g_next_tid{0};
std::atomic<std::uint64_t> g_next_span{1};
thread_local SpanContext t_context;

}  // namespace

int thread_ordinal() {
  thread_local const int tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

SpanContext current_context() { return t_context; }

std::uint64_t next_span_id() {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

ContextScope::ContextScope(const SpanContext& ctx) : prev_(t_context) {
  t_context = ctx;
}

ContextScope::~ContextScope() { t_context = prev_; }

Span::Span(std::string_view name) {
  if (!trace_enabled()) return;
  active_ = true;
  name_ = name;
  prev_ = t_context;
  SpanContext ctx;
  ctx.req = prev_.req;
  ctx.span = next_span_id();
  ctx.parent = prev_.span;
  t_context = ctx;
  start_ns_ = monotonic_ns();
  perf_start_ = perf_read();
  TraceEvent("span_begin", ctx)
      .str("name", name_)
      .num("parent", ctx.parent);
}

Span::~Span() {
  if (!active_) return;
  const SpanContext ctx = t_context;
  if (perf_start_.available) {
    const PerfCounts d = perf_delta(perf_read(), perf_start_);
    // Absent siblings emit -1 (trace events have no null); consumers
    // treat negative counters as unavailable.
    TraceEvent("perf_counters", ctx)
        .str("name", name_)
        .num("cycles", d.cycles)
        .num("instructions", d.instructions)
        .num("cache_references", d.cache_references)
        .num("cache_misses", d.cache_misses)
        .num("branch_misses", d.branch_misses);
  }
  TraceEvent("span_end", ctx)
      .str("name", name_)
      .num("parent", ctx.parent)
      .num("seconds",
           static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
  t_context = prev_;
}

std::uint64_t span_begin_event(std::string_view name,
                               const SpanContext& ctx) {
  SpanContext child;
  child.req = ctx.req;
  child.span = next_span_id();
  child.parent = ctx.span;
  if (trace_enabled()) {
    TraceEvent("span_begin", child)
        .str("name", name)
        .num("parent", child.parent);
  }
  return child.span;
}

void span_end_event(std::string_view name, const SpanContext& ctx,
                    std::uint64_t span_id, double seconds) {
  if (!trace_enabled()) return;
  SpanContext child;
  child.req = ctx.req;
  child.span = span_id;
  child.parent = ctx.span;
  TraceEvent("span_end", child)
      .str("name", name)
      .num("parent", child.parent)
      .num("seconds", seconds);
}

bool trace_open(const std::string& path) {
  Sink& s = sink();
  util::MutexLock lock(s.mutex);
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) return false;
  s.file = std::move(file);
  s.out = s.file.get();
  s.epoch_ns.store(monotonic_ns(), std::memory_order_relaxed);
  detail::g_trace_on.store(true, std::memory_order_relaxed);
  return true;
}

void trace_to_stream(std::ostream* os) {
  Sink& s = sink();
  util::MutexLock lock(s.mutex);
  s.file.reset();
  s.out = os;
  s.epoch_ns.store(monotonic_ns(), std::memory_order_relaxed);
  detail::g_trace_on.store(os != nullptr, std::memory_order_relaxed);
}

void trace_flush() {
  Sink& s = sink();
  util::MutexLock lock(s.mutex);
  if (s.out != nullptr) s.out->flush();
}

void trace_close() {
  Sink& s = sink();
  // Disable first so producers racing with close see the guard drop and
  // skip event construction; late events that already passed the guard
  // serialize on the mutex and find out == nullptr.
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  util::MutexLock lock(s.mutex);
  if (s.out != nullptr) s.out->flush();
  s.file.reset();
  s.out = nullptr;
}

TraceEvent::TraceEvent(std::string_view type)
    : TraceEvent(type, t_context) {}

TraceEvent::TraceEvent(std::string_view type, const SpanContext& ctx) {
  obj_.str("type", type);
  obj_.num("ts", static_cast<double>(monotonic_ns() - sink().epoch_ns.load(std::memory_order_relaxed)) * 1e-9);
  obj_.num("tid", static_cast<std::int64_t>(thread_ordinal()));
  if (ctx.req != 0) obj_.num("req", static_cast<std::int64_t>(ctx.req));
  if (ctx.span != 0) obj_.num("span", static_cast<std::int64_t>(ctx.span));
}

TraceEvent::~TraceEvent() {
  Sink& s = sink();
  util::MutexLock lock(s.mutex);
  if (s.out == nullptr) return;
  *s.out << obj_.build() << '\n';
}

}  // namespace optalloc::obs

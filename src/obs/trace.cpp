#include "obs/trace.hpp"

#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/metrics.hpp"

namespace optalloc::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}

namespace {

struct Sink {
  std::mutex mutex;
  std::unique_ptr<std::ofstream> file;  // owned when tracing to a path
  std::ostream* out = nullptr;          // active destination (file or external)
  std::atomic<std::uint64_t> epoch_ns{0};  // trace-open time ("ts" base)
};

Sink& sink() {
  static Sink* s = new Sink();  // leaked: events may fire during exit
  return *s;
}

std::atomic<int> g_next_tid{0};

}  // namespace

int thread_ordinal() {
  thread_local const int tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

bool trace_open(const std::string& path) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) return false;
  s.file = std::move(file);
  s.out = s.file.get();
  s.epoch_ns.store(monotonic_ns(), std::memory_order_relaxed);
  detail::g_trace_on.store(true, std::memory_order_relaxed);
  return true;
}

void trace_to_stream(std::ostream* os) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.file.reset();
  s.out = os;
  s.epoch_ns.store(monotonic_ns(), std::memory_order_relaxed);
  detail::g_trace_on.store(os != nullptr, std::memory_order_relaxed);
}

void trace_close() {
  Sink& s = sink();
  // Disable first so producers racing with close see the guard drop and
  // skip event construction; late events that already passed the guard
  // serialize on the mutex and find out == nullptr.
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.out != nullptr) s.out->flush();
  s.file.reset();
  s.out = nullptr;
}

TraceEvent::TraceEvent(std::string_view type) {
  obj_.str("type", type);
  obj_.num("ts", static_cast<double>(monotonic_ns() - sink().epoch_ns.load(std::memory_order_relaxed)) * 1e-9);
  obj_.num("tid", static_cast<std::int64_t>(thread_ordinal()));
}

TraceEvent::~TraceEvent() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.out == nullptr) return;
  *s.out << obj_.build() << '\n';
}

}  // namespace optalloc::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

#include "obs/json.hpp"

namespace optalloc::obs {
namespace {

/// Upper bound on distinct metrics: lets shards be fixed-size arrays whose
/// slots never move, so writers stay lock-free while snapshot() reads them.
constexpr std::size_t kMaxMetrics = 1024;

struct Shard {
  // Counter sums / timer invocation counts, indexed by metric id. Only the
  // owning thread writes; snapshot() reads concurrently (relaxed).
  std::atomic<std::int64_t> value[kMaxMetrics] = {};
  // Timer nanoseconds.
  std::atomic<std::uint64_t> ns[kMaxMetrics] = {};
};

struct Registry {
  std::mutex mutex;
  std::vector<std::string> names;
  std::vector<MetricKind> kinds;
  std::map<std::string, std::uint32_t, std::less<>> by_name;
  std::vector<Shard*> live;
  // Totals folded in from exited threads.
  std::int64_t retired_value[kMaxMetrics] = {};
  std::uint64_t retired_ns[kMaxMetrics] = {};
  // Gauges are process-wide levels, not per-thread accumulations.
  std::atomic<std::int64_t> gauges[kMaxMetrics] = {};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

std::atomic<bool> g_phase_timing{false};

struct ShardOwner {
  Shard* shard = new Shard();

  ShardOwner() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.live.push_back(shard);
  }

  ~ShardOwner() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
      r.retired_value[i] += shard->value[i].load(std::memory_order_relaxed);
      r.retired_ns[i] += shard->ns[i].load(std::memory_order_relaxed);
    }
    r.live.erase(std::find(r.live.begin(), r.live.end(), shard));
    delete shard;
  }
};

Shard& local_shard() {
  thread_local ShardOwner owner;
  return *owner.shard;
}

Metric register_metric(std::string_view name, MetricKind kind) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.by_name.find(name);
  if (it != r.by_name.end()) {
    if (r.kinds[it->second] != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    return {it->second};
  }
  if (r.names.size() >= kMaxMetrics) {
    throw std::logic_error("metric registry full");
  }
  const auto id = static_cast<std::uint32_t>(r.names.size());
  r.names.emplace_back(name);
  r.kinds.push_back(kind);
  r.by_name.emplace(std::string(name), id);
  return {id};
}

}  // namespace

Metric counter(std::string_view name) {
  return register_metric(name, MetricKind::kCounter);
}
Metric gauge(std::string_view name) {
  return register_metric(name, MetricKind::kGauge);
}
Metric timer(std::string_view name) {
  return register_metric(name, MetricKind::kTimer);
}

void add(Metric m, std::int64_t delta) {
  local_shard().value[m.id].fetch_add(delta, std::memory_order_relaxed);
}

void set(Metric m, std::int64_t value) {
  registry().gauges[m.id].store(value, std::memory_order_relaxed);
}

void record(Metric m, double seconds) {
  Shard& s = local_shard();
  s.value[m.id].fetch_add(1, std::memory_order_relaxed);
  s.ns[m.id].fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTimer::ScopedTimer(Metric m) : m_(m), start_ns_(monotonic_ns()) {}

ScopedTimer::~ScopedTimer() {
  Shard& s = local_shard();
  s.value[m_.id].fetch_add(1, std::memory_order_relaxed);
  s.ns[m_.id].fetch_add(monotonic_ns() - start_ns_,
                        std::memory_order_relaxed);
}

std::vector<MetricValue> snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::size_t n = r.names.size();
  std::vector<MetricValue> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    MetricValue& v = out[i];
    v.name = r.names[i];
    v.kind = r.kinds[i];
    if (v.kind == MetricKind::kGauge) {
      v.value = r.gauges[i].load(std::memory_order_relaxed);
      continue;
    }
    std::int64_t value = r.retired_value[i];
    std::uint64_t ns = r.retired_ns[i];
    for (const Shard* s : r.live) {
      value += s->value[i].load(std::memory_order_relaxed);
      ns += s->ns[i].load(std::memory_order_relaxed);
    }
    v.value = value;
    v.seconds = static_cast<double>(ns) * 1e-9;
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (std::size_t i = 0; i < kMaxMetrics; ++i) {
    r.retired_value[i] = 0;
    r.retired_ns[i] = 0;
    r.gauges[i].store(0, std::memory_order_relaxed);
    for (Shard* s : r.live) {
      s->value[i].store(0, std::memory_order_relaxed);
      s->ns[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::string render_metrics(bool include_zero) {
  std::string out;
  char buf[192];
  for (const MetricValue& v : snapshot()) {
    if (!include_zero && v.value == 0 && v.seconds == 0.0) continue;
    switch (v.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof buf, "%-40s counter %lld\n", v.name.c_str(),
                      static_cast<long long>(v.value));
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof buf, "%-40s gauge   %lld\n", v.name.c_str(),
                      static_cast<long long>(v.value));
        break;
      case MetricKind::kTimer:
        std::snprintf(buf, sizeof buf, "%-40s timer   %.6fs x%lld\n",
                      v.name.c_str(), v.seconds,
                      static_cast<long long>(v.value));
        break;
    }
    out += buf;
  }
  return out;
}

std::string metrics_json() {
  JsonObject obj;
  for (const MetricValue& v : snapshot()) {
    if (v.kind == MetricKind::kTimer) {
      obj.raw(v.name, JsonObject()
                          .num("seconds", v.seconds)
                          .num("count", v.value)
                          .build());
    } else {
      obj.num(v.name, v.value);
    }
  }
  return obj.build();
}

void set_phase_timing(bool on) {
  g_phase_timing.store(on, std::memory_order_relaxed);
}

bool phase_timing() {
  return g_phase_timing.load(std::memory_order_relaxed);
}

}  // namespace optalloc::obs

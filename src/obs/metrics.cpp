#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/mutex.hpp"

namespace optalloc::obs {
namespace {

/// Upper bound on distinct metrics: lets shards be fixed-size arrays whose
/// slots never move, so writers stay lock-free while snapshot() reads them.
constexpr std::size_t kMaxMetrics = 1024;

/// Upper bound on distinct histograms: each costs kHistBuckets counters
/// per thread that observes it, so bucket arrays are allocated lazily and
/// the slot table is kept small.
constexpr std::size_t kMaxHistograms = 64;

struct Shard {
  // Counter sums / timer invocation counts, indexed by metric id. Only the
  // owning thread writes; snapshot() reads concurrently (relaxed).
  std::atomic<std::int64_t> value[kMaxMetrics] = {};
  // Timer nanoseconds.
  std::atomic<std::uint64_t> ns[kMaxMetrics] = {};
  // Histogram bucket arrays (kHistBuckets each), indexed by histogram
  // slot, allocated by the owning thread on first observation. The
  // pointer is released/acquired so snapshot() sees initialized buckets.
  std::atomic<std::atomic<std::uint64_t>*> hist[kMaxHistograms] = {};
  // Histogram value sums, indexed by slot.
  std::atomic<double> hist_sum[kMaxHistograms] = {};

  ~Shard() {
    for (auto& h : hist) delete[] h.load(std::memory_order_relaxed);
  }
};

struct Registry {
  util::Mutex mutex;
  std::vector<std::string> names OPTALLOC_GUARDED_BY(mutex);
  std::vector<MetricKind> kinds OPTALLOC_GUARDED_BY(mutex);
  std::map<std::string, std::uint32_t, std::less<>> by_name
      OPTALLOC_GUARDED_BY(mutex);
  std::vector<Shard*> live OPTALLOC_GUARDED_BY(mutex);
  // Totals folded in from exited threads.
  std::int64_t retired_value[kMaxMetrics] OPTALLOC_GUARDED_BY(mutex) = {};
  std::uint64_t retired_ns[kMaxMetrics] OPTALLOC_GUARDED_BY(mutex) = {};
  // Gauges are process-wide levels, not per-thread accumulations
  // (atomic, hence deliberately not GUARDED_BY).
  std::atomic<std::int64_t> gauges[kMaxMetrics] = {};
  // Histogram slots: metric id -> slot + 1 (0 = not a histogram). Read
  // lock-free on the observe() hot path (atomic; registration under the
  // mutex, reads anywhere).
  std::atomic<int> hist_slot[kMaxMetrics] = {};
  int num_hist_slots OPTALLOC_GUARDED_BY(mutex) = 0;
  // Retired histogram buckets/sums folded in from exited threads.
  std::vector<std::uint64_t> retired_hist[kMaxHistograms]
      OPTALLOC_GUARDED_BY(mutex);
  double retired_hist_sum[kMaxHistograms] OPTALLOC_GUARDED_BY(mutex) = {};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

std::atomic<bool> g_phase_timing{false};
std::atomic<bool> g_histograms{true};

struct ShardOwner {
  Shard* shard = new Shard();

  ShardOwner() {
    Registry& r = registry();
    util::MutexLock lock(r.mutex);
    r.live.push_back(shard);
  }

  ~ShardOwner() {
    Registry& r = registry();
    util::MutexLock lock(r.mutex);
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
      r.retired_value[i] += shard->value[i].load(std::memory_order_relaxed);
      r.retired_ns[i] += shard->ns[i].load(std::memory_order_relaxed);
    }
    for (std::size_t s = 0; s < kMaxHistograms; ++s) {
      const auto* buckets = shard->hist[s].load(std::memory_order_relaxed);
      if (buckets == nullptr) continue;
      if (r.retired_hist[s].empty()) {
        r.retired_hist[s].assign(kHistBuckets, 0);
      }
      for (int b = 0; b < kHistBuckets; ++b) {
        r.retired_hist[s][static_cast<std::size_t>(b)] +=
            buckets[b].load(std::memory_order_relaxed);
      }
      r.retired_hist_sum[s] +=
          shard->hist_sum[s].load(std::memory_order_relaxed);
    }
    r.live.erase(std::find(r.live.begin(), r.live.end(), shard));
    delete shard;
  }
};

Shard& local_shard() {
  thread_local ShardOwner owner;
  return *owner.shard;
}

Metric register_metric(std::string_view name, MetricKind kind) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  const auto it = r.by_name.find(name);
  if (it != r.by_name.end()) {
    if (r.kinds[it->second] != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    return {it->second};
  }
  if (r.names.size() >= kMaxMetrics) {
    throw std::logic_error("metric registry full");
  }
  const auto id = static_cast<std::uint32_t>(r.names.size());
  r.names.emplace_back(name);
  r.kinds.push_back(kind);
  r.by_name.emplace(std::string(name), id);
  if (kind == MetricKind::kHistogram) {
    if (r.num_hist_slots >= static_cast<int>(kMaxHistograms)) {
      throw std::logic_error("histogram registry full");
    }
    r.hist_slot[id].store(++r.num_hist_slots, std::memory_order_relaxed);
  }
  return {id};
}

}  // namespace

Metric counter(std::string_view name) {
  return register_metric(name, MetricKind::kCounter);
}
Metric gauge(std::string_view name) {
  return register_metric(name, MetricKind::kGauge);
}
Metric timer(std::string_view name) {
  return register_metric(name, MetricKind::kTimer);
}
Metric histogram(std::string_view name) {
  return register_metric(name, MetricKind::kHistogram);
}

int histogram_bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN -> underflow
  int exp = 0;
  const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5,1)
  const int octave = exp - 1 - kHistMinExp;  // value in [2^(exp-1), 2^exp)
  if (octave < 0) return 0;
  if (octave >= kHistMaxExp - kHistMinExp) return kHistBuckets - 1;
  int sub = static_cast<int>((m - 0.5) * 2.0 * kHistSubBuckets);
  if (sub >= kHistSubBuckets) sub = kHistSubBuckets - 1;
  return 1 + octave * kHistSubBuckets + sub;
}

std::pair<double, double> histogram_bucket_bounds(int index) {
  if (index <= 0) return {0.0, std::ldexp(1.0, kHistMinExp)};
  if (index >= kHistBuckets - 1) {
    return {std::ldexp(1.0, kHistMaxExp),
            std::numeric_limits<double>::infinity()};
  }
  const int octave = (index - 1) / kHistSubBuckets;
  const int sub = (index - 1) % kHistSubBuckets;
  const double base = std::ldexp(1.0, kHistMinExp + octave);
  const double width = base / kHistSubBuckets;
  return {base + sub * width, base + (sub + 1) * width};
}

double histogram_quantile(const std::vector<HistBucket>& buckets, double q) {
  std::uint64_t total = 0;
  for (const HistBucket& b : buckets) total += b.count;
  if (total == 0) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (const HistBucket& b : buckets) {
    cum += b.count;
    if (cum >= rank) {
      // Overflow bucket: report its lower bound (its width is infinite).
      if (std::isinf(b.hi)) return b.lo;
      return (b.lo + b.hi) / 2.0;
    }
  }
  return buckets.empty() ? 0.0 : buckets.back().lo;
}

LocalHistogram::LocalHistogram()
    : counts_(static_cast<std::size_t>(kHistBuckets), 0) {}

void LocalHistogram::observe(double value) {
  ++counts_[static_cast<std::size_t>(histogram_bucket_index(value))];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

std::vector<HistBucket> LocalHistogram::buckets() const {
  std::vector<HistBucket> out;
  for (int i = 0; i < kHistBuckets; ++i) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    const auto [lo, hi] = histogram_bucket_bounds(i);
    out.push_back({lo, hi, c});
  }
  return out;
}

double LocalHistogram::quantile(double q) const {
  return histogram_quantile(buckets(), q);
}

void add(Metric m, std::int64_t delta) {
  local_shard().value[m.id].fetch_add(delta, std::memory_order_relaxed);
}

void set(Metric m, std::int64_t value) {
  registry().gauges[m.id].store(value, std::memory_order_relaxed);
}

void record(Metric m, double seconds) {
  Shard& s = local_shard();
  s.value[m.id].fetch_add(1, std::memory_order_relaxed);
  s.ns[m.id].fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

void observe(Metric m, double value) {
  if (!g_histograms.load(std::memory_order_relaxed)) return;
  const int slot = registry().hist_slot[m.id].load(std::memory_order_relaxed);
  if (slot == 0) return;  // not a histogram handle
  Shard& s = local_shard();
  auto& cell = s.hist[static_cast<std::size_t>(slot - 1)];
  std::atomic<std::uint64_t>* buckets = cell.load(std::memory_order_relaxed);
  if (buckets == nullptr) {
    buckets = new std::atomic<std::uint64_t>[kHistBuckets]();
    cell.store(buckets, std::memory_order_release);
  }
  buckets[histogram_bucket_index(value)].fetch_add(1,
                                                   std::memory_order_relaxed);
  s.hist_sum[static_cast<std::size_t>(slot - 1)].fetch_add(
      value, std::memory_order_relaxed);
}

void set_histograms(bool on) {
  g_histograms.store(on, std::memory_order_relaxed);
}

bool histograms_enabled() {
  return g_histograms.load(std::memory_order_relaxed);
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTimer::ScopedTimer(Metric m) : m_(m), start_ns_(monotonic_ns()) {}

ScopedTimer::~ScopedTimer() {
  Shard& s = local_shard();
  s.value[m_.id].fetch_add(1, std::memory_order_relaxed);
  s.ns[m_.id].fetch_add(monotonic_ns() - start_ns_,
                        std::memory_order_relaxed);
}

std::vector<MetricValue> snapshot() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  const std::size_t n = r.names.size();
  std::vector<MetricValue> out(n);
  std::uint64_t merged[kHistBuckets];
  for (std::size_t i = 0; i < n; ++i) {
    MetricValue& v = out[i];
    v.name = r.names[i];
    v.kind = r.kinds[i];
    if (v.kind == MetricKind::kGauge) {
      v.value = r.gauges[i].load(std::memory_order_relaxed);
      continue;
    }
    if (v.kind == MetricKind::kHistogram) {
      const std::size_t slot = static_cast<std::size_t>(
          r.hist_slot[i].load(std::memory_order_relaxed) - 1);
      double sum = r.retired_hist_sum[slot];
      for (int b = 0; b < kHistBuckets; ++b) {
        merged[b] = r.retired_hist[slot].empty()
                        ? 0
                        : r.retired_hist[slot][static_cast<std::size_t>(b)];
      }
      for (const Shard* s : r.live) {
        const auto* buckets = s->hist[slot].load(std::memory_order_acquire);
        if (buckets == nullptr) continue;
        for (int b = 0; b < kHistBuckets; ++b) {
          merged[b] += buckets[b].load(std::memory_order_relaxed);
        }
        sum += s->hist_sum[slot].load(std::memory_order_relaxed);
      }
      std::uint64_t count = 0;
      for (int b = 0; b < kHistBuckets; ++b) {
        if (merged[b] == 0) continue;
        count += merged[b];
        const auto [lo, hi] = histogram_bucket_bounds(b);
        v.buckets.push_back({lo, hi, merged[b]});
      }
      v.value = static_cast<std::int64_t>(count);
      v.sum = sum;
      continue;
    }
    std::int64_t value = r.retired_value[i];
    std::uint64_t ns = r.retired_ns[i];
    for (const Shard* s : r.live) {
      value += s->value[i].load(std::memory_order_relaxed);
      ns += s->ns[i].load(std::memory_order_relaxed);
    }
    v.value = value;
    v.seconds = static_cast<double>(ns) * 1e-9;
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  for (std::size_t i = 0; i < kMaxMetrics; ++i) {
    r.retired_value[i] = 0;
    r.retired_ns[i] = 0;
    r.gauges[i].store(0, std::memory_order_relaxed);
    for (Shard* s : r.live) {
      s->value[i].store(0, std::memory_order_relaxed);
      s->ns[i].store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t slot = 0; slot < kMaxHistograms; ++slot) {
    r.retired_hist[slot].clear();
    r.retired_hist_sum[slot] = 0.0;
    for (Shard* s : r.live) {
      auto* buckets = s->hist[slot].load(std::memory_order_acquire);
      if (buckets == nullptr) continue;
      for (int b = 0; b < kHistBuckets; ++b) {
        buckets[b].store(0, std::memory_order_relaxed);
      }
      s->hist_sum[slot].store(0.0, std::memory_order_relaxed);
    }
  }
}

std::string render_metrics(bool include_zero) {
  std::string out;
  char buf[192];
  for (const MetricValue& v : snapshot()) {
    if (!include_zero && v.value == 0 && v.seconds == 0.0) continue;
    switch (v.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof buf, "%-40s counter %lld\n", v.name.c_str(),
                      static_cast<long long>(v.value));
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof buf, "%-40s gauge   %lld\n", v.name.c_str(),
                      static_cast<long long>(v.value));
        break;
      case MetricKind::kTimer:
        std::snprintf(buf, sizeof buf, "%-40s timer   %.6fs x%lld\n",
                      v.name.c_str(), v.seconds,
                      static_cast<long long>(v.value));
        break;
      case MetricKind::kHistogram:
        std::snprintf(buf, sizeof buf,
                      "%-40s hist    n=%lld p50=%.4g p95=%.4g p99=%.4g\n",
                      v.name.c_str(), static_cast<long long>(v.value),
                      histogram_quantile(v.buckets, 0.50),
                      histogram_quantile(v.buckets, 0.95),
                      histogram_quantile(v.buckets, 0.99));
        break;
    }
    out += buf;
  }
  return out;
}

std::string metrics_json() {
  JsonObject obj;
  for (const MetricValue& v : snapshot()) {
    if (v.kind == MetricKind::kTimer) {
      obj.raw(v.name, JsonObject()
                          .num("seconds", v.seconds)
                          .num("count", v.value)
                          .build());
    } else if (v.kind == MetricKind::kHistogram) {
      obj.raw(v.name, JsonObject()
                          .num("count", v.value)
                          .num("sum", v.sum)
                          .num("p50", histogram_quantile(v.buckets, 0.50))
                          .num("p95", histogram_quantile(v.buckets, 0.95))
                          .num("p99", histogram_quantile(v.buckets, 0.99))
                          .build());
    } else {
      obj.num(v.name, v.value);
    }
  }
  return obj.build();
}

std::string metrics_full_json() {
  JsonObject obj;
  for (const MetricValue& v : snapshot()) {
    JsonObject entry;
    switch (v.kind) {
      case MetricKind::kCounter:
        entry.str("kind", "counter").num("value", v.value);
        break;
      case MetricKind::kGauge:
        entry.str("kind", "gauge").num("value", v.value);
        break;
      case MetricKind::kTimer:
        entry.str("kind", "timer")
            .num("count", v.value)
            .num("seconds", v.seconds);
        break;
      case MetricKind::kHistogram: {
        entry.str("kind", "histogram")
            .num("count", v.value)
            .num("sum", v.sum)
            .num("p50", histogram_quantile(v.buckets, 0.50))
            .num("p95", histogram_quantile(v.buckets, 0.95))
            .num("p99", histogram_quantile(v.buckets, 0.99));
        JsonArray buckets;
        for (const HistBucket& b : v.buckets) {
          JsonArray triple;
          triple.push(json_number(b.lo));
          triple.push(json_number(b.hi));
          triple.push(std::to_string(b.count));
          buckets.push(triple.build());
        }
        entry.raw("buckets", buckets.build());
        break;
      }
    }
    obj.raw(v.name, entry.build());
  }
  return obj.build();
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string prometheus_from_snapshot(const std::vector<MetricValue>& snap) {
  std::string out;
  char buf[256];
  for (const MetricValue& v : snap) {
    const std::string n = prom_name(v.name);
    switch (v.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof buf, "# TYPE %s counter\n%s %lld\n",
                      n.c_str(), n.c_str(), static_cast<long long>(v.value));
        out += buf;
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof buf, "# TYPE %s gauge\n%s %lld\n",
                      n.c_str(), n.c_str(), static_cast<long long>(v.value));
        out += buf;
        break;
      case MetricKind::kTimer:
        std::snprintf(buf, sizeof buf,
                      "# TYPE %s summary\n%s_sum %.9g\n%s_count %lld\n",
                      n.c_str(), n.c_str(), v.seconds, n.c_str(),
                      static_cast<long long>(v.value));
        out += buf;
        break;
      case MetricKind::kHistogram: {
        std::snprintf(buf, sizeof buf, "# TYPE %s histogram\n", n.c_str());
        out += buf;
        std::uint64_t cum = 0;
        for (const HistBucket& b : v.buckets) {
          cum += b.count;
          if (std::isinf(b.hi)) continue;  // folded into +Inf below
          std::snprintf(buf, sizeof buf, "%s_bucket{le=\"%.9g\"} %llu\n",
                        n.c_str(), b.hi,
                        static_cast<unsigned long long>(cum));
          out += buf;
        }
        std::snprintf(buf, sizeof buf, "%s_bucket{le=\"+Inf\"} %lld\n",
                      n.c_str(), static_cast<long long>(v.value));
        out += buf;
        std::snprintf(buf, sizeof buf, "%s_sum %.9g\n%s_count %lld\n",
                      n.c_str(), v.sum, n.c_str(),
                      static_cast<long long>(v.value));
        out += buf;
        for (const auto& [label, q] :
             {std::pair<const char*, double>{"p50", 0.50},
              {"p95", 0.95},
              {"p99", 0.99}}) {
          std::snprintf(buf, sizeof buf,
                        "# TYPE %s_%s gauge\n%s_%s %.9g\n", n.c_str(), label,
                        n.c_str(), label, histogram_quantile(v.buckets, q));
          out += buf;
        }
        break;
      }
    }
  }
  return out;
}

std::vector<MetricValue> metrics_from_json(const JsonValue& doc) {
  std::vector<MetricValue> out;
  if (!doc.is_object()) return out;
  for (const auto& [name, entry] : doc.object) {
    if (!entry.is_object()) continue;
    const auto kind = entry.get_string("kind");
    if (!kind) continue;
    MetricValue v;
    v.name = name;
    if (*kind == "counter" || *kind == "gauge") {
      v.kind = *kind == "counter" ? MetricKind::kCounter : MetricKind::kGauge;
      const auto value = entry.get_number("value");
      if (!value) continue;
      v.value = static_cast<std::int64_t>(*value);
    } else if (*kind == "timer") {
      v.kind = MetricKind::kTimer;
      v.value = static_cast<std::int64_t>(
          entry.get_number("count").value_or(0.0));
      v.seconds = entry.get_number("seconds").value_or(0.0);
    } else if (*kind == "histogram") {
      v.kind = MetricKind::kHistogram;
      v.value = static_cast<std::int64_t>(
          entry.get_number("count").value_or(0.0));
      v.sum = entry.get_number("sum").value_or(0.0);
      const JsonValue* buckets = entry.get("buckets");
      if (buckets != nullptr && buckets->kind == JsonValue::Kind::kArray) {
        for (const JsonValue& triple : buckets->array) {
          if (triple.kind != JsonValue::Kind::kArray ||
              triple.array.size() != 3) {
            continue;
          }
          v.buckets.push_back(
              {triple.array[0].number, triple.array[1].number,
               static_cast<std::uint64_t>(triple.array[2].number)});
        }
      }
    } else {
      continue;
    }
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

void set_phase_timing(bool on) {
  g_phase_timing.store(on, std::memory_order_relaxed);
}

bool phase_timing() {
  return g_phase_timing.load(std::memory_order_relaxed);
}

}  // namespace optalloc::obs

#pragma once
// Fixed-footprint in-process history for every metric and resource: a
// 256-sample ring buffer per series, fed by the daemon's metrics-interval
// sampler and served over the wire by the `query` verb. This is the
// capacity-planning view the point-in-time `metrics` snapshot cannot
// give: occupancy *over time* (is the cache still warming or already
// cycling?), latency quantiles as a series (did p99 move when the queue
// filled?), and the measured inputs future eviction/compaction policies
// gate on.
//
// Series are derived on each timeseries_sample_now() call:
//   counter/gauge  -> "<name>"                (value as double)
//   timer          -> "<name>.count" / "<name>.seconds"
//   histogram      -> "<name>.count" / "<name>.p50" / ".p95" / ".p99"
//   resource       -> "res.<name>.bytes" / "res.<name>.items"
//
// A registered series exists from the first sample even while its value
// is still zero, so consumers can subscribe before traffic arrives. All
// operations take one process-wide mutex; the sampler runs at human
// cadence (default 1 Hz), so this is nowhere near any hot path.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace optalloc::obs {

/// Ring capacity per series: at the default 1 s sampler cadence this is
/// ~4 minutes of history; at the smoke tests' 0.2 s it is ~51 s.
constexpr std::size_t kTimeSeriesCapacity = 256;

struct TimeSample {
  std::int64_t unix_ms = 0;
  double value = 0.0;
};

/// Wall clock in milliseconds since the Unix epoch (series timestamps).
std::int64_t wall_unix_ms();

/// Append one sample to `name`'s ring, creating the series on first use.
/// Overwrites the oldest sample once the ring is full.
void timeseries_record(std::string_view name, std::int64_t unix_ms,
                       double value);

/// Sample every registered metric (per the derivation above) and every
/// resource into the rings, all stamped with one wall-clock read.
void timeseries_sample_now();

struct SeriesInfo {
  std::string name;
  std::size_t count = 0;         ///< samples currently in the ring
  std::int64_t last_unix_ms = 0;
  double last = 0.0;
};

/// One line per series, sorted by name.
std::vector<SeriesInfo> timeseries_list();

/// Samples of `name` in chronological order. last_s > 0 keeps only
/// samples newer than now - last_s. max_samples > 0 downsamples by
/// striding from the newest backwards (the latest sample is always
/// kept). Unknown series -> empty.
std::vector<TimeSample> timeseries_query(std::string_view name,
                                         double last_s = 0.0,
                                         std::size_t max_samples = 0);

/// Drop every series (tests).
void reset_timeseries();

}  // namespace optalloc::obs

#pragma once
// Flight recorder: always-on, lock-free per-thread ring buffers holding
// the last kFlightCapacity telemetry records each thread produced — even
// when the JSONL trace sink is closed. The rings are the post-mortem
// story of a request: when a deadline expires, a job is cancelled, the
// daemon takes a fatal signal, or a client issues the `dump` verb, the
// rings are merged and rendered as schema-valid JSONL (one event object
// per line, same "type"/"ts"/"tid"/"req" vocabulary as the trace sink).
//
// Design constraints, in order:
//   1. Recording must be cheap enough to leave on in production: one
//      clock read plus a handful of relaxed atomic stores into a
//      thread-owned slot. No locks, no allocation, no branches on the
//      consumer side of the guard.
//   2. Dumping must be safe from a fatal-signal handler: the ring
//      registry is a fixed array published with atomic stores, records
//      are guarded by per-slot seqlocks (a torn read is detected and
//      skipped, never mis-rendered), and flight_dump_fd() formats
//      numbers with its own integer arithmetic — no malloc, no stdio,
//      no locale, only write(2).
//   3. Rings outlive their threads: a worker that exited (or crashed)
//      still has its last records available to the post-mortem.
//
// Records are numeric-only: a static-storage type string plus up to
// kFlightFields (key, value) pairs where every key must also be a string
// literal (the ring stores the pointers, not copies). This is what keeps
// recording allocation-free; it covers every solver/optimizer telemetry
// event (search_sample, interval, solve, restart), which are numbers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace optalloc::obs {

inline constexpr std::size_t kFlightCapacity = 256;  ///< records per thread
inline constexpr int kFlightFields = 8;              ///< numeric fields/record
inline constexpr std::size_t kFlightMaxRings = 256;  ///< recording threads

namespace detail {
extern std::atomic<bool> g_flight_on;
}

/// Recording guard (mirrors trace_enabled()): one relaxed load. On by
/// default; bench_obs_overhead turns it off to measure the delta.
inline bool flight_enabled() {
  return detail::g_flight_on.load(std::memory_order_relaxed);
}

/// Enable/disable recording. Disabling does not clear the rings — the
/// already-recorded tail stays dumpable.
void set_flight(bool on);

/// Test hook: invalidate every record in every ring (the rings and their
/// thread bindings survive). Not signal-safe.
void flight_reset();

/// One flight record under construction. Usage mirrors TraceEvent:
///
///   obs::FlightNote("search_sample").num("conflicts", c).num("trail", t);
///
/// The destructor commits the record to the calling thread's ring.
/// `type` and every `key` MUST be string literals (static storage): the
/// ring keeps the pointers. Fields beyond kFlightFields are dropped.
/// No-op when flight_enabled() is false at construction.
class FlightNote {
 public:
  explicit FlightNote(const char* type);
  ~FlightNote();
  FlightNote(const FlightNote&) = delete;
  FlightNote& operator=(const FlightNote&) = delete;

  FlightNote& num(const char* key, double value) {
    if (active_ && n_ < kFlightFields) {
      keys_[n_] = key;
      vals_[n_] = value;
      ++n_;
    }
    return *this;
  }
  FlightNote& num(const char* key, std::int64_t value) {
    return num(key, static_cast<double>(value));
  }
  FlightNote& num(const char* key, std::uint64_t value) {
    return num(key, static_cast<double>(value));
  }
  FlightNote& num(const char* key, int value) {
    return num(key, static_cast<double>(value));
  }

 private:
  const char* type_ = nullptr;
  const char* keys_[kFlightFields] = {};
  double vals_[kFlightFields] = {};
  int n_ = 0;
  bool active_ = false;
};

/// Render the merged rings as a JSON array "[{...},{...}]" of event
/// objects sorted by timestamp. `req` != 0 keeps only records carrying
/// that request id. `count` (optional) receives the number of events.
/// Each object is schema-compatible with the trace sink: "type", "ts"
/// (seconds since the first flight record), "tid", "req" when non-zero,
/// plus the numeric fields. Not signal-safe (allocates the string).
std::string flight_dump_events(std::uint64_t req = 0,
                               std::size_t* count = nullptr);

/// Same records, one JSON object per line (JSONL). Not signal-safe.
std::string flight_dump_jsonl(std::uint64_t req = 0);

/// Async-signal-safe dump: writes the JSONL form of every ring to `fd`
/// using only write(2) and local integer formatting. Torn records
/// (a writer racing the handler) are skipped. Returns bytes written.
std::size_t flight_dump_fd(int fd);

/// Install fatal-signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGABRT, and
/// SIGILL) that flight_dump_fd() into `fd`, then restore the default
/// disposition and re-raise so the process still dies with the original
/// signal. `fd` must stay open for the process lifetime (open it before
/// installing). Pass -1 to uninstall.
void flight_install_crash_handler(int fd);

}  // namespace optalloc::obs

#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "util/mutex.hpp"

namespace optalloc::obs {
namespace {

struct Ring {
  std::vector<TimeSample> buf;  ///< grows to kTimeSeriesCapacity, then fixed
  std::size_t head = 0;         ///< next slot to overwrite once full

  void push(TimeSample s) {
    if (buf.size() < kTimeSeriesCapacity) {
      buf.push_back(s);
      return;
    }
    buf[head] = s;
    head = (head + 1) % kTimeSeriesCapacity;
  }

  /// Chronological copy (oldest first).
  std::vector<TimeSample> ordered() const {
    std::vector<TimeSample> out;
    out.reserve(buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      out.push_back(buf[(head + i) % buf.size()]);
    }
    return out;
  }
};

struct Store {
  util::Mutex mutex;
  std::map<std::string, Ring, std::less<>> series OPTALLOC_GUARDED_BY(mutex);
};

Store& store() {
  static Store* s = new Store();  // leaked: outlives all threads
  return *s;
}

}  // namespace

std::int64_t wall_unix_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void timeseries_record(std::string_view name, std::int64_t unix_ms,
                       double value) {
  Store& s = store();
  util::MutexLock lock(s.mutex);
  auto it = s.series.find(name);
  if (it == s.series.end()) {
    it = s.series.emplace(std::string(name), Ring{}).first;
  }
  it->second.push({unix_ms, value});
}

void timeseries_sample_now() {
  // Build the (name, value) rows outside the store lock: snapshot() and
  // resource_snapshot() take their own registry mutexes.
  const std::int64_t now = wall_unix_ms();
  std::vector<std::pair<std::string, double>> rows;
  for (const MetricValue& v : snapshot()) {
    switch (v.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        rows.emplace_back(v.name, static_cast<double>(v.value));
        break;
      case MetricKind::kTimer:
        rows.emplace_back(v.name + ".count", static_cast<double>(v.value));
        rows.emplace_back(v.name + ".seconds", v.seconds);
        break;
      case MetricKind::kHistogram:
        rows.emplace_back(v.name + ".count", static_cast<double>(v.value));
        rows.emplace_back(v.name + ".p50",
                          histogram_quantile(v.buckets, 0.50));
        rows.emplace_back(v.name + ".p95",
                          histogram_quantile(v.buckets, 0.95));
        rows.emplace_back(v.name + ".p99",
                          histogram_quantile(v.buckets, 0.99));
        break;
    }
  }
  for (const ResourceValue& v : resource_snapshot()) {
    rows.emplace_back("res." + v.name + ".bytes",
                      static_cast<double>(v.bytes));
    rows.emplace_back("res." + v.name + ".items",
                      static_cast<double>(v.items));
  }
  Store& s = store();
  util::MutexLock lock(s.mutex);
  for (const auto& [name, value] : rows) {
    auto it = s.series.find(name);
    if (it == s.series.end()) {
      it = s.series.emplace(name, Ring{}).first;
    }
    it->second.push({now, value});
  }
}

std::vector<SeriesInfo> timeseries_list() {
  Store& s = store();
  util::MutexLock lock(s.mutex);
  std::vector<SeriesInfo> out;
  out.reserve(s.series.size());
  for (const auto& [name, ring] : s.series) {
    SeriesInfo info;
    info.name = name;
    info.count = ring.buf.size();
    if (!ring.buf.empty()) {
      const std::size_t last =
          ring.buf.size() < kTimeSeriesCapacity
              ? ring.buf.size() - 1
              : (ring.head + kTimeSeriesCapacity - 1) % kTimeSeriesCapacity;
      info.last_unix_ms = ring.buf[last].unix_ms;
      info.last = ring.buf[last].value;
    }
    out.push_back(std::move(info));
  }
  return out;  // map iteration order is already by name
}

std::vector<TimeSample> timeseries_query(std::string_view name, double last_s,
                                         std::size_t max_samples) {
  std::vector<TimeSample> samples;
  {
    Store& s = store();
    util::MutexLock lock(s.mutex);
    const auto it = s.series.find(name);
    if (it == s.series.end()) return samples;
    samples = it->second.ordered();
  }
  if (last_s > 0.0) {
    const std::int64_t cutoff =
        wall_unix_ms() - static_cast<std::int64_t>(last_s * 1000.0);
    samples.erase(std::remove_if(samples.begin(), samples.end(),
                                 [cutoff](const TimeSample& t) {
                                   return t.unix_ms < cutoff;
                                 }),
                  samples.end());
  }
  if (max_samples > 0 && samples.size() > max_samples) {
    // Stride from the newest backwards so the latest sample survives.
    const std::size_t stride =
        (samples.size() + max_samples - 1) / max_samples;
    std::vector<TimeSample> kept;
    kept.reserve(max_samples);
    for (std::size_t i = samples.size(); i-- > 0;) {
      if ((samples.size() - 1 - i) % stride == 0) kept.push_back(samples[i]);
    }
    std::reverse(kept.begin(), kept.end());
    samples = std::move(kept);
  }
  return samples;
}

void reset_timeseries() {
  Store& s = store();
  util::MutexLock lock(s.mutex);
  s.series.clear();
}

}  // namespace optalloc::obs

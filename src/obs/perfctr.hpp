#pragma once
// Hardware performance counters via the raw perf_event_open(2) syscall —
// no library dependency. One counter group per thread (cycles leads;
// instructions, cache-references, cache-misses and branch-misses follow)
// is opened lazily on first use and read as a unit, so per-phase deltas
// (encode vs. SOLVE vs. certify) are consistent snapshots of the same
// scheduling intervals.
//
// Graceful degradation is part of the contract: on non-Linux builds, in
// containers that mask the syscall (EPERM/ENOSYS), under restrictive
// perf_event_paranoid settings, or when OPTALLOC_NO_PERFCTR is set in
// the environment, every call keeps working — perf_available() is false,
// reads return {available:false}, perf_json() renders well-formed nulls,
// and PerfSpan emits nothing. Individual siblings that fail to open
// (e.g. cache counters on VMs without a PMU event for them) degrade to
// -1 / null while the rest of the group keeps counting.

#include <cstdint>
#include <string>

namespace optalloc::obs {

/// Counter totals (or a delta of two readings). `available` is false
/// when the calling thread has no usable group; individual counters that
/// could not be opened read -1 and render as JSON null.
struct PerfCounts {
  bool available = false;
  std::int64_t cycles = -1;
  std::int64_t instructions = -1;
  std::int64_t cache_references = -1;
  std::int64_t cache_misses = -1;
  std::int64_t branch_misses = -1;
};

/// True when the calling thread has an open, readable counter group.
/// The first call per thread pays the perf_event_open() setup.
bool perf_available();

/// Current totals for the calling thread ({available:false} when the
/// group is unavailable).
PerfCounts perf_read();

/// a - b per counter; a counter absent (-1) on either side stays -1.
PerfCounts perf_delta(const PerfCounts& a, const PerfCounts& b);

/// {"cycles":N,...} with JSON null for absent counters — the "well-formed
/// nulls" contract for bench JSON on perf-less hosts.
std::string perf_json(const PerfCounts& c);

/// RAII sampling window: snapshots the thread's counters at construction;
/// delta() is the consumption since then. The destructor emits a
/// "perf_counters" trace event (name + deltas) when tracing is on and the
/// group is available — this is how encode/SOLVE/certify spans get their
/// hardware profile. Costs two read(2) calls per span when available,
/// nothing otherwise.
class PerfSpan {
 public:
  explicit PerfSpan(const char* name);
  ~PerfSpan();
  PerfSpan(const PerfSpan&) = delete;
  PerfSpan& operator=(const PerfSpan&) = delete;

  PerfCounts delta() const;

 private:
  const char* name_;
  PerfCounts start_;
};

}  // namespace optalloc::obs

#pragma once
// Minimal JSON support for the observability layer: an append-only object
// writer (used by the trace sink and the bench summaries) and a small
// recursive-descent parser (used by the trace schema validator and tests).
// Deliberately tiny — no external dependency, no DOM mutation, numbers are
// doubles (exact for the integer magnitudes telemetry emits).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace optalloc::obs {

/// Escape a string for inclusion in a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

/// Format a double the way JSON expects (no inf/nan; %.6g-style).
std::string json_number(double v);

/// Builder for one flat-or-nested JSON object. Keys are appended in call
/// order; the caller is responsible for key uniqueness.
class JsonObject {
 public:
  JsonObject& str(std::string_view key, std::string_view value);
  JsonObject& num(std::string_view key, std::int64_t value);
  JsonObject& num(std::string_view key, double value);
  JsonObject& boolean(std::string_view key, bool value);
  /// Append pre-rendered JSON (object/array/number) verbatim.
  JsonObject& raw(std::string_view key, std::string_view json);

  /// Rendered "{...}".
  std::string build() const { return body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_ = "{";
};

/// Builder for a JSON array of pre-rendered elements.
class JsonArray {
 public:
  JsonArray& push(std::string_view json);
  std::string build() const { return body_ + "]"; }

 private:
  std::string body_ = "[";
};

// --- Parsing -----------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;
  /// get(key) as a string/number, or nullopt on absence/kind mismatch.
  std::optional<std::string> get_string(std::string_view key) const;
  std::optional<double> get_number(std::string_view key) const;
};

/// Parse a complete JSON document. Returns nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace optalloc::obs

#include "obs/flight.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace optalloc::obs {

namespace detail {
std::atomic<bool> g_flight_on{true};
}

namespace {

// Per-slot seqlock: a record at logical index i is committed when its
// slot's seq reads exactly 2*i+2. The writer (the owning thread) marks
// the slot odd, fills the payload, marks it even; a dumper that observes
// anything else — odd (mid-write), or the even value of a different
// logical index (overwritten) — skips the slot. All payload fields are
// relaxed atomics so a racing dump is merely stale, never undefined.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> type{nullptr};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> req{0};
  std::atomic<std::int32_t> nfields{0};
  std::atomic<const char*> keys[kFlightFields] = {};
  std::atomic<double> vals[kFlightFields] = {};
};

struct Ring {
  std::atomic<std::uint64_t> head{0};  ///< next logical index to write
  int tid = 0;
  Slot slots[kFlightCapacity];
};

// Fixed-size registry published with release stores so the (signal-safe)
// dump path can walk it without locks. Rings are deliberately leaked:
// they must outlive their threads for post-mortem dumps.
std::atomic<Ring*> g_rings[kFlightMaxRings] = {};
std::atomic<std::size_t> g_ring_count{0};
std::atomic<std::uint64_t> g_epoch_ns{0};  ///< "ts" base (first ring)

Ring* this_ring() {
  thread_local Ring* ring = [] {
    const std::size_t idx =
        g_ring_count.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kFlightMaxRings) return static_cast<Ring*>(nullptr);
    Ring* r = new Ring();
    r->tid = thread_ordinal();
    std::uint64_t expected = 0;
    g_epoch_ns.compare_exchange_strong(expected, monotonic_ns(),
                                       std::memory_order_relaxed);
    g_rings[idx].store(r, std::memory_order_release);
    return r;
  }();
  return ring;
}

/// A record staged out of a slot (plain memory, safe to sort/render).
struct Rec {
  const char* type = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t req = 0;
  int tid = 0;
  int n = 0;
  const char* keys[kFlightFields] = {};
  double vals[kFlightFields] = {};
};

bool read_slot(const Slot& s, std::uint64_t logical, int tid, Rec* out) {
  const std::uint64_t want = 2 * logical + 2;
  const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
  if (s1 != want) return false;
  out->type = s.type.load(std::memory_order_relaxed);
  out->ts_ns = s.ts_ns.load(std::memory_order_relaxed);
  out->req = s.req.load(std::memory_order_relaxed);
  out->tid = tid;
  out->n = std::clamp<int>(s.nfields.load(std::memory_order_relaxed), 0,
                           kFlightFields);
  for (int j = 0; j < out->n; ++j) {
    out->keys[j] = s.keys[j].load(std::memory_order_relaxed);
    out->vals[j] = s.vals[j].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != s1) return false;
  return out->type != nullptr;
}

// --- Signal-safe rendering ----------------------------------------------
// The crash path cannot call snprintf (not async-signal-safe) or touch
// the heap, so records are formatted with local integer arithmetic into
// a caller-provided buffer.

struct Buf {
  char* p;
  std::size_t cap;
  std::size_t n = 0;
};

void put_char(Buf& b, char c) {
  if (b.n < b.cap) b.p[b.n++] = c;
}

void put_str(Buf& b, const char* s) {
  for (; *s != '\0'; ++s) put_char(b, *s);
}

void put_u64(Buf& b, std::uint64_t v) {
  char tmp[20];
  int k = 0;
  do {
    tmp[k++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (k > 0) put_char(b, tmp[--k]);
}

void put_double(Buf& b, double v) {
  if (!std::isfinite(v)) {
    put_char(b, '0');
    return;
  }
  if (v < 0) {
    put_char(b, '-');
    v = -v;
  }
  if (v >= 1.8e19) v = 1.8e19;  // keep the integer part within uint64
  std::uint64_t ip = static_cast<std::uint64_t>(v);
  std::uint64_t frac =
      static_cast<std::uint64_t>((v - static_cast<double>(ip)) * 1e6 + 0.5);
  if (frac >= 1000000) {
    ++ip;
    frac = 0;
  }
  put_u64(b, ip);
  if (frac == 0) return;
  int width = 6;  // frac is scaled by 1e6; trim trailing zeros
  while (frac % 10 == 0) {
    frac /= 10;
    --width;
  }
  int digits = 1;
  for (std::uint64_t probe = frac; probe >= 10; probe /= 10) ++digits;
  put_char(b, '.');
  for (int d = width; d > digits; --d) put_char(b, '0');
  put_u64(b, frac);
}

void render(Buf& b, const Rec& r, std::uint64_t epoch) {
  put_str(b, "{\"type\":\"");
  put_str(b, r.type);
  put_str(b, "\",\"ts\":");
  const std::uint64_t rel = r.ts_ns > epoch ? r.ts_ns - epoch : 0;
  put_double(b, static_cast<double>(rel) * 1e-9);
  put_str(b, ",\"tid\":");
  put_u64(b, static_cast<std::uint64_t>(r.tid < 0 ? 0 : r.tid));
  if (r.req != 0) {
    put_str(b, ",\"req\":");
    put_u64(b, r.req);
  }
  for (int j = 0; j < r.n; ++j) {
    if (r.keys[j] == nullptr) continue;
    put_str(b, ",\"");
    put_str(b, r.keys[j]);
    put_str(b, "\":");
    put_double(b, r.vals[j]);
  }
  put_char(b, '}');
}

/// Collect every committed record (optionally filtered by request id),
/// oldest first per ring, then globally sorted by timestamp.
std::vector<Rec> collect(std::uint64_t req) {
  std::vector<Rec> out;
  const std::size_t rings =
      std::min(g_ring_count.load(std::memory_order_relaxed), kFlightMaxRings);
  for (std::size_t i = 0; i < rings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, kFlightCapacity);
    for (std::uint64_t logical = head - count; logical < head; ++logical) {
      Rec rec;
      if (!read_slot(ring->slots[logical % kFlightCapacity], logical,
                     ring->tid, &rec)) {
        continue;
      }
      if (req != 0 && rec.req != req) continue;
      out.push_back(rec);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Rec& a, const Rec& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

constexpr std::size_t kLineCap = 1024;

}  // namespace

void set_flight(bool on) {
  detail::g_flight_on.store(on, std::memory_order_relaxed);
}

void flight_reset() {
  const std::size_t rings =
      std::min(g_ring_count.load(std::memory_order_relaxed), kFlightMaxRings);
  for (std::size_t i = 0; i < rings; ++i) {
    Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (Slot& s : ring->slots) s.seq.store(0, std::memory_order_relaxed);
    ring->head.store(0, std::memory_order_release);
  }
}

FlightNote::FlightNote(const char* type)
    : type_(type), active_(flight_enabled()) {}

FlightNote::~FlightNote() {
  if (!active_) return;
  Ring* ring = this_ring();
  if (ring == nullptr) return;  // more than kFlightMaxRings threads
  const std::uint64_t i = ring->head.load(std::memory_order_relaxed);
  Slot& s = ring->slots[i % kFlightCapacity];
  s.seq.store(2 * i + 1, std::memory_order_relaxed);
  // The release fence keeps the odd marker visible before any payload
  // store: a dumper can then never pair fresh payload with a stale even
  // seq (the torn-read case the seqlock exists to detect).
  std::atomic_thread_fence(std::memory_order_release);
  s.type.store(type_, std::memory_order_relaxed);
  s.ts_ns.store(monotonic_ns(), std::memory_order_relaxed);
  s.req.store(current_context().req, std::memory_order_relaxed);
  s.nfields.store(n_, std::memory_order_relaxed);
  for (int j = 0; j < n_; ++j) {
    s.keys[j].store(keys_[j], std::memory_order_relaxed);
    s.vals[j].store(vals_[j], std::memory_order_relaxed);
  }
  s.seq.store(2 * i + 2, std::memory_order_release);
  ring->head.store(i + 1, std::memory_order_release);
}

std::string flight_dump_events(std::uint64_t req, std::size_t* count) {
  const std::vector<Rec> recs = collect(req);
  const std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  std::string out = "[";
  char line[kLineCap];
  for (std::size_t i = 0; i < recs.size(); ++i) {
    Buf b{line, sizeof line};
    render(b, recs[i], epoch);
    if (i > 0) out += ',';
    out.append(line, b.n);
  }
  out += ']';
  if (count != nullptr) *count = recs.size();
  return out;
}

std::string flight_dump_jsonl(std::uint64_t req) {
  const std::vector<Rec> recs = collect(req);
  const std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  std::string out;
  char line[kLineCap];
  for (const Rec& rec : recs) {
    Buf b{line, sizeof line};
    render(b, rec, epoch);
    out.append(line, b.n);
    out += '\n';
  }
  return out;
}

std::size_t flight_dump_fd(int fd) {
  const std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  const std::size_t rings =
      std::min(g_ring_count.load(std::memory_order_relaxed), kFlightMaxRings);
  std::size_t written = 0;
  char line[kLineCap];
  // No sorting here: sorting needs scratch memory the signal handler must
  // not allocate. Rings are emitted in registration order, records oldest
  // first within a ring; consumers order by the "ts" field.
  for (std::size_t i = 0; i < rings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, kFlightCapacity);
    for (std::uint64_t logical = head - count; logical < head; ++logical) {
      Rec rec;
      if (!read_slot(ring->slots[logical % kFlightCapacity], logical,
                     ring->tid, &rec)) {
        continue;
      }
      Buf b{line, sizeof line - 1};
      render(b, rec, epoch);
      line[b.n++] = '\n';
      std::size_t off = 0;
      while (off < b.n) {
        const ssize_t n = ::write(fd, line + off, b.n - off);
        if (n < 0) {
          if (errno == EINTR) continue;
          return written;
        }
        off += static_cast<std::size_t>(n);
      }
      written += b.n;
    }
  }
  return written;
}

namespace {

std::atomic<int> g_crash_fd{-1};

void crash_handler(int sig) {
  const int fd = g_crash_fd.load(std::memory_order_relaxed);
  if (fd >= 0) flight_dump_fd(fd);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void flight_install_crash_handler(int fd) {
  g_crash_fd.store(fd, std::memory_order_relaxed);
  const int signals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
  for (const int sig : signals) {
    std::signal(sig, fd >= 0 ? crash_handler : SIG_DFL);
  }
}

}  // namespace optalloc::obs

#pragma once
// Process-wide metrics registry with per-thread accumulation and
// merge-on-read, so portfolio workers and the solver hot path can count
// without contending on shared cache lines:
//
//   * registration (name -> dense id) happens once per call site under a
//     mutex — typically via a function-local `static Metric`;
//   * writes go to the calling thread's shard: a relaxed atomic add on a
//     slot only this thread writes (other threads read it during
//     snapshot), i.e. no locks and no sharing on the hot path;
//   * snapshot() takes the registry mutex, sums all live shards plus the
//     totals folded in from exited threads.
//
// Three kinds:
//   counter — monotonically accumulated integer (merge = sum)
//   gauge   — last-write-wins integer level (stored globally, not sharded)
//   timer   — accumulated wall seconds + invocation count (merge = sum)
//
// Phase timing inside the SAT solver is additionally gated by
// set_phase_timing(): clock reads only happen when someone asked for them,
// keeping the solver's inner loop at a single relaxed load + branch.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace optalloc::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kTimer };

/// Cheap copyable handle; obtain via counter()/gauge()/timer().
struct Metric {
  std::uint32_t id = 0;
};

/// Register (or look up) a metric. Name collisions across kinds throw
/// std::logic_error; repeated registration of the same (name, kind) returns
/// the same handle.
Metric counter(std::string_view name);
Metric gauge(std::string_view name);
Metric timer(std::string_view name);

/// Counter: accumulate `delta` into the calling thread's shard.
void add(Metric m, std::int64_t delta = 1);

/// Gauge: set the process-wide level.
void set(Metric m, std::int64_t value);

/// Timer: accumulate one observation of `seconds`.
void record(Metric m, double seconds);

/// RAII timer observation.
class ScopedTimer {
 public:
  explicit ScopedTimer(Metric m);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metric m_;
  std::uint64_t start_ns_;
};

/// Monotonic clock in nanoseconds (shared with the trace sink).
std::uint64_t monotonic_ns();

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;    ///< counter sum / gauge level / timer count
  double seconds = 0.0;      ///< timers only: accumulated wall time
};

/// Merge-on-read view of every registered metric, sorted by name.
std::vector<MetricValue> snapshot();

/// Zero all shards, retired totals and gauges (registrations persist).
void reset_metrics();

/// "name kind value [seconds]" per line; omits zero entries unless
/// `include_zero`.
std::string render_metrics(bool include_zero = false);

/// One flat JSON object: counters/gauges as numbers, timers as
/// {"seconds": s, "count": n}.
std::string metrics_json();

/// Global switch for the solver/encoder phase timers (propagate, analyze,
/// reduce-DB, bit-blast...). Off by default: the hot path then pays one
/// relaxed atomic load per phase entry and takes no clock readings.
void set_phase_timing(bool on);
bool phase_timing();

}  // namespace optalloc::obs

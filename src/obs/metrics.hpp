#pragma once
// Process-wide metrics registry with per-thread accumulation and
// merge-on-read, so portfolio workers and the solver hot path can count
// without contending on shared cache lines:
//
//   * registration (name -> dense id) happens once per call site under a
//     mutex — typically via a function-local `static Metric`;
//   * writes go to the calling thread's shard: a relaxed atomic add on a
//     slot only this thread writes (other threads read it during
//     snapshot), i.e. no locks and no sharing on the hot path;
//   * snapshot() takes the registry mutex, sums all live shards plus the
//     totals folded in from exited threads.
//
// Four kinds:
//   counter   — monotonically accumulated integer (merge = sum)
//   gauge     — last-write-wins integer level (stored globally, not sharded)
//   timer     — accumulated wall seconds + invocation count (merge = sum)
//   histogram — log-linear (HDR-style) distribution of positive doubles:
//               each power-of-two octave is split into kHistSubBuckets
//               equal-width buckets, so any recorded value lands in a
//               bucket whose width is at most value/kHistSubBuckets — a
//               bounded relative error of 1/kHistSubBuckets (6.25%) for
//               every quantile, at a fixed memory footprint. Buckets are
//               per-thread shards merged on read, like counters.
//
// Phase timing inside the SAT solver is additionally gated by
// set_phase_timing(): clock reads only happen when someone asked for them,
// keeping the solver's inner loop at a single relaxed load + branch.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace optalloc::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kTimer, kHistogram };

/// Cheap copyable handle; obtain via counter()/gauge()/timer().
struct Metric {
  std::uint32_t id = 0;
};

/// Register (or look up) a metric. Name collisions across kinds throw
/// std::logic_error; repeated registration of the same (name, kind) returns
/// the same handle.
Metric counter(std::string_view name);
Metric gauge(std::string_view name);
Metric timer(std::string_view name);
Metric histogram(std::string_view name);

/// Counter: accumulate `delta` into the calling thread's shard.
void add(Metric m, std::int64_t delta = 1);

/// Gauge: set the process-wide level.
void set(Metric m, std::int64_t value);

/// Timer: accumulate one observation of `seconds`.
void record(Metric m, double seconds);

/// Histogram: record one observation into the calling thread's shard.
/// Cheap (index computation + two relaxed atomic adds); gated by
/// set_histograms() so the overhead bench can measure the disabled cost.
void observe(Metric m, double value);

/// Global gate for histogram observations (default on).
void set_histograms(bool on);
bool histograms_enabled();

// --- Histogram bucket scheme (shared by the registry and LocalHistogram).
// Covers (2^kHistMinExp, 2^kHistMaxExp) ≈ (9.3e-10, 1.7e10) with
// kHistSubBuckets linear buckets per octave, plus an underflow bucket 0
// (zero / out-of-range-low values) and an overflow bucket at the top.

constexpr int kHistSubBuckets = 16;
constexpr int kHistMinExp = -30;
constexpr int kHistMaxExp = 34;
constexpr int kHistBuckets =
    (kHistMaxExp - kHistMinExp) * kHistSubBuckets + 2;

/// Bucket index for a value (0 = underflow, kHistBuckets-1 = overflow).
int histogram_bucket_index(double value);

/// [lo, hi) bounds of a bucket; the overflow bucket's hi is +infinity.
std::pair<double, double> histogram_bucket_bounds(int index);

/// One merged, non-empty bucket of a histogram snapshot.
struct HistBucket {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

/// Quantile (q in [0, 1]) over merged buckets: the midpoint of the bucket
/// containing the rank-⌈q·n⌉ observation — within half a bucket width of
/// the exact order statistic. 0 when empty.
double histogram_quantile(const std::vector<HistBucket>& buckets, double q);

/// Unsynchronized instance-owned histogram with the same bucket scheme:
/// bounded memory regardless of observation count (the scheduler's request
/// latencies use this under its own mutex). Tracks the exact max.
class LocalHistogram {
 public:
  LocalHistogram();
  void observe(double value);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double max() const { return max_; }
  double quantile(double q) const;
  std::vector<HistBucket> buckets() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// RAII timer observation.
class ScopedTimer {
 public:
  explicit ScopedTimer(Metric m);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metric m_;
  std::uint64_t start_ns_;
};

/// Monotonic clock in nanoseconds (shared with the trace sink).
std::uint64_t monotonic_ns();

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;    ///< counter sum / gauge level / timer or histogram count
  double seconds = 0.0;      ///< timers only: accumulated wall time
  double sum = 0.0;          ///< histograms only: sum of observed values
  std::vector<HistBucket> buckets;  ///< histograms only: non-empty buckets
};

/// Merge-on-read view of every registered metric, sorted by name.
std::vector<MetricValue> snapshot();

/// Zero all shards, retired totals and gauges (registrations persist).
void reset_metrics();

/// "name kind value [seconds]" per line; omits zero entries unless
/// `include_zero`.
std::string render_metrics(bool include_zero = false);

/// One flat JSON object: counters/gauges as numbers, timers as
/// {"seconds": s, "count": n}.
std::string metrics_json();

/// Full typed snapshot as one JSON object, suitable for the wire:
/// {"name":{"kind":"counter","value":n}, ...}; histograms carry count,
/// sum, p50/p95/p99 and the non-empty buckets as [lo, hi, count] triples.
/// Decoded losslessly by metrics_from_json (modulo bucket quantization,
/// which already happened at observe time).
std::string metrics_full_json();

/// Prometheus text exposition format for a snapshot: counters and gauges
/// verbatim, timers as <name>_sum/<name>_count, histograms as cumulative
/// <name>_bucket{le="..."} series plus <name>_p50/_p95/_p99 gauges.
/// Metric names are sanitized (non-[a-zA-Z0-9_:] become '_').
std::string prometheus_from_snapshot(const std::vector<MetricValue>& snap);

struct JsonValue;

/// Decode a metrics_full_json document back into snapshot form (sorted by
/// name). Unknown kinds and malformed entries are skipped. Lets remote
/// consumers (alloc_client --prom) reuse the renderers above.
std::vector<MetricValue> metrics_from_json(const JsonValue& doc);

/// Global switch for the solver/encoder phase timers (propagate, analyze,
/// reduce-DB, bit-blast...). Off by default: the hot path then pays one
/// relaxed atomic load per phase entry and takes no clock readings.
void set_phase_timing(bool on);
bool phase_timing();

}  // namespace optalloc::obs

#pragma once
// Per-subsystem resource accounting: how much the process *weighs*, as
// opposed to how fast it runs (metrics.hpp). Every stateful component —
// clause arenas, incremental sessions, the proven-result cache, parallel
// clause pools, the scheduler queue — reports its live footprint here as
// a (bytes, items) pair per named resource.
//
// The write path mirrors the metrics registry: registration (name ->
// dense id) happens once per call site under a mutex, deltas go to the
// calling thread's shard as relaxed atomic adds, and resource_snapshot()
// merges live shards plus totals folded in from exited threads. Unlike
// counters, deltas are *signed* both ways (allocation and release), so a
// resource's merged value is a level, not a monotone sum — each owner is
// responsible for subtracting what it added before it dies.
//
// Two instrumentation styles:
//   * Concurrent containers (cache shards, clause pools, the queue) call
//     res_add() with exact deltas at mutation time — correct under any
//     interleaving because addition commutes.
//   * Single-owner objects (a Solver's arena, a Session's guard table)
//     hold a ResourceTracker and periodically set() their absolute usage;
//     the tracker diffs against its previous value and retracts the
//     remainder on destruction.
//
// Watermarks: set_resource_watermark() arms a per-resource byte
// threshold; check_resource_watermarks() (called from the metrics
// sampler thread) emits a `resource_watermark` trace event on each
// upward crossing of `high` and again on recovery below `low`
// (hysteresis, so a resource oscillating around the threshold does not
// spam the trace).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace optalloc::obs {

/// Cheap copyable handle; obtain via resource().
struct Resource {
  std::uint32_t id = 0;
};

/// Register (or look up) a resource by name. Names share the style of
/// metric names ("sat.arena", "svc.cache"); repeated registration returns
/// the same handle.
Resource resource(std::string_view name);

/// Accumulate signed deltas into the calling thread's shard. No-op while
/// resources are disabled (see set_resources), like histogram observe().
void res_add(Resource r, std::int64_t bytes_delta, std::int64_t items_delta);

/// Global gate for resource accounting (default on); exists so
/// bench_obs_overhead can price the disabled path.
void set_resources(bool on);
bool resources_enabled();

struct ResourceValue {
  std::string name;
  std::int64_t bytes = 0;
  std::int64_t items = 0;
};

/// Merge-on-read view of every registered resource, sorted by name.
std::vector<ResourceValue> resource_snapshot();

/// Zero all shards and retired totals (registrations and watermark
/// configuration persist).
void reset_resources();

/// Absolute-usage reporter for single-owner objects. set() publishes the
/// delta against the previous set(); the destructor retracts everything,
/// so a tracked object's contribution disappears with it.
class ResourceTracker {
 public:
  ResourceTracker() = default;
  explicit ResourceTracker(Resource r) : res_(r), bound_(true) {}
  ~ResourceTracker() { set(0, 0); }
  ResourceTracker(const ResourceTracker&) = delete;
  ResourceTracker& operator=(const ResourceTracker&) = delete;

  void bind(Resource r) {
    res_ = r;
    bound_ = true;
  }

  /// Report current absolute usage; emits only the delta.
  void set(std::int64_t bytes, std::int64_t items);

 private:
  Resource res_;
  bool bound_ = false;
  std::int64_t bytes_ = 0;
  std::int64_t items_ = 0;
};

/// Arm (or re-arm) a byte watermark for `name`. `low` defaults to
/// 3/4 of `high` when not given; pass high = 0 to disarm.
void set_resource_watermark(std::string_view name, std::int64_t high_bytes,
                            std::int64_t low_bytes = -1);

/// Compare every armed watermark against the current snapshot and emit
/// `resource_watermark` trace events (fields: resource, level
/// "high"/"normal", bytes, threshold) on crossings. Intended to be
/// driven by the daemon's metrics-interval sampler; cheap when nothing
/// is armed.
void check_resource_watermarks();

}  // namespace optalloc::obs

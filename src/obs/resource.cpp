#include "obs/resource.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/mutex.hpp"

namespace optalloc::obs {
namespace {

/// Upper bound on distinct resources: shards are fixed-size arrays whose
/// slots never move, so writers stay lock-free while snapshot reads them.
/// Far above the handful of stateful subsystems; raise if it ever fills.
constexpr std::size_t kMaxResources = 256;

struct ResShard {
  // Signed byte/item deltas, indexed by resource id. Only the owning
  // thread writes; snapshot reads concurrently (relaxed).
  std::atomic<std::int64_t> bytes[kMaxResources] = {};
  std::atomic<std::int64_t> items[kMaxResources] = {};
};

struct Watermark {
  std::int64_t high = 0;
  std::int64_t low = 0;
  bool above = false;  ///< last reported side (hysteresis state)
};

struct ResRegistry {
  util::Mutex mutex;
  std::vector<std::string> names OPTALLOC_GUARDED_BY(mutex);
  std::map<std::string, std::uint32_t, std::less<>> by_name
      OPTALLOC_GUARDED_BY(mutex);
  std::vector<ResShard*> live OPTALLOC_GUARDED_BY(mutex);
  // Totals folded in from exited threads. A thread that allocated and
  // released on behalf of a still-live owner nets to zero here; a
  // tracker destroyed on another thread leaves the balancing negative
  // delta in that thread's shard, which also folds in here.
  std::int64_t retired_bytes[kMaxResources] OPTALLOC_GUARDED_BY(mutex) = {};
  std::int64_t retired_items[kMaxResources] OPTALLOC_GUARDED_BY(mutex) = {};
  std::map<std::string, Watermark, std::less<>> watermarks
      OPTALLOC_GUARDED_BY(mutex);
  // Lock-free fast-out for check_resource_watermarks().
  std::atomic<int> num_watermarks{0};
};

ResRegistry& res_registry() {
  static ResRegistry* r = new ResRegistry();  // leaked: outlives all threads
  return *r;
}

std::atomic<bool> g_resources{true};

struct ResShardOwner {
  ResShard* shard = new ResShard();

  ResShardOwner() {
    ResRegistry& r = res_registry();
    util::MutexLock lock(r.mutex);
    r.live.push_back(shard);
  }

  ~ResShardOwner() {
    ResRegistry& r = res_registry();
    util::MutexLock lock(r.mutex);
    for (std::size_t i = 0; i < kMaxResources; ++i) {
      r.retired_bytes[i] += shard->bytes[i].load(std::memory_order_relaxed);
      r.retired_items[i] += shard->items[i].load(std::memory_order_relaxed);
    }
    r.live.erase(std::find(r.live.begin(), r.live.end(), shard));
    delete shard;
  }
};

ResShard& local_res_shard() {
  thread_local ResShardOwner owner;
  return *owner.shard;
}

}  // namespace

Resource resource(std::string_view name) {
  ResRegistry& r = res_registry();
  util::MutexLock lock(r.mutex);
  const auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return {it->second};
  if (r.names.size() >= kMaxResources) {
    throw std::logic_error("resource registry full");
  }
  const auto id = static_cast<std::uint32_t>(r.names.size());
  r.names.emplace_back(name);
  r.by_name.emplace(std::string(name), id);
  return {id};
}

void res_add(Resource r, std::int64_t bytes_delta, std::int64_t items_delta) {
  if (!g_resources.load(std::memory_order_relaxed)) return;
  ResShard& s = local_res_shard();
  if (bytes_delta != 0) {
    s.bytes[r.id].fetch_add(bytes_delta, std::memory_order_relaxed);
  }
  if (items_delta != 0) {
    s.items[r.id].fetch_add(items_delta, std::memory_order_relaxed);
  }
}

void set_resources(bool on) {
  g_resources.store(on, std::memory_order_relaxed);
}

bool resources_enabled() {
  return g_resources.load(std::memory_order_relaxed);
}

std::vector<ResourceValue> resource_snapshot() {
  ResRegistry& r = res_registry();
  util::MutexLock lock(r.mutex);
  const std::size_t n = r.names.size();
  std::vector<ResourceValue> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    ResourceValue& v = out[i];
    v.name = r.names[i];
    v.bytes = r.retired_bytes[i];
    v.items = r.retired_items[i];
    for (const ResShard* s : r.live) {
      v.bytes += s->bytes[i].load(std::memory_order_relaxed);
      v.items += s->items[i].load(std::memory_order_relaxed);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ResourceValue& a, const ResourceValue& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_resources() {
  ResRegistry& r = res_registry();
  util::MutexLock lock(r.mutex);
  for (std::size_t i = 0; i < kMaxResources; ++i) {
    r.retired_bytes[i] = 0;
    r.retired_items[i] = 0;
    for (ResShard* s : r.live) {
      s->bytes[i].store(0, std::memory_order_relaxed);
      s->items[i].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, w] : r.watermarks) w.above = false;
}

void ResourceTracker::set(std::int64_t bytes, std::int64_t items) {
  if (!bound_) return;
  res_add(res_, bytes - bytes_, items - items_);
  bytes_ = bytes;
  items_ = items;
}

void set_resource_watermark(std::string_view name, std::int64_t high_bytes,
                            std::int64_t low_bytes) {
  ResRegistry& r = res_registry();
  util::MutexLock lock(r.mutex);
  if (high_bytes <= 0) {
    r.watermarks.erase(std::string(name));
  } else {
    Watermark& w = r.watermarks[std::string(name)];
    w.high = high_bytes;
    w.low = low_bytes >= 0 ? low_bytes : high_bytes / 4 * 3;
    if (w.low > w.high) w.low = w.high;
  }
  r.num_watermarks.store(static_cast<int>(r.watermarks.size()),
                         std::memory_order_relaxed);
}

void check_resource_watermarks() {
  ResRegistry& r = res_registry();
  if (r.num_watermarks.load(std::memory_order_relaxed) == 0) return;
  // Snapshot first (takes the mutex itself), then walk the watermark
  // table; crossings are emitted outside any per-shard hot path.
  const std::vector<ResourceValue> snap = resource_snapshot();
  struct Crossing {
    std::string name;
    bool above = false;
    std::int64_t bytes = 0;
    std::int64_t threshold = 0;
  };
  std::vector<Crossing> crossings;
  {
    util::MutexLock lock(r.mutex);
    for (auto& [name, w] : r.watermarks) {
      const auto it = std::lower_bound(
          snap.begin(), snap.end(), name,
          [](const ResourceValue& v, const std::string& n) {
            return v.name < n;
          });
      const std::int64_t bytes =
          (it != snap.end() && it->name == name) ? it->bytes : 0;
      if (!w.above && bytes >= w.high) {
        w.above = true;
        crossings.push_back({name, true, bytes, w.high});
      } else if (w.above && bytes <= w.low) {
        w.above = false;
        crossings.push_back({name, false, bytes, w.low});
      }
    }
  }
  for (const Crossing& c : crossings) {
    TraceEvent("resource_watermark")
        .str("resource", c.name)
        .str("level", c.above ? "high" : "normal")
        .num("bytes", c.bytes)
        .num("threshold", c.threshold);
  }
}

}  // namespace optalloc::obs

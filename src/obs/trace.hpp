#pragma once
// Structured JSONL trace sink. One process-wide sink; events are emitted
// as one JSON object per line with three standard fields —
//   "type" : event name ("solve", "interval", "solver_restart", ...)
//   "ts"   : seconds since the sink was opened (monotonic clock)
//   "tid"  : small per-thread ordinal, stable for the thread's lifetime
// — plus event-specific fields. Lines are written atomically under a
// mutex, so portfolio workers never interleave.
//
// Cost model: every producer site is guarded by `if (obs::trace_enabled())`
// — a single relaxed atomic load when tracing is off, which is the default.
// Event construction (string building, clock reads) only happens inside
// the guard.
//
// The event vocabulary is documented in README.md ("Observability").

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace optalloc::obs {

namespace detail {
extern std::atomic<bool> g_trace_on;
}

/// Near-zero-cost guard: producers must check this before building events.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Open `path` for writing (truncates) and enable tracing. Returns false
/// (tracing stays off) if the file cannot be opened.
bool trace_open(const std::string& path);

/// Route events to an external stream (tests). The stream must outlive
/// tracing; pass nullptr to detach and disable.
void trace_to_stream(std::ostream* os);

/// Flush, close the sink and disable tracing. Safe to call when closed.
void trace_close();

/// Small per-thread ordinal used for the "tid" field (0 = first thread to
/// emit). Also used by the thread-safe logger's line tags.
int thread_ordinal();

/// One trace event. Builds the JSON object in a local buffer; the
/// destructor writes the finished line. Standard fields are filled by the
/// constructor.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view type);
  ~TraceEvent();
  TraceEvent(const TraceEvent&) = delete;
  TraceEvent& operator=(const TraceEvent&) = delete;

  TraceEvent& str(std::string_view key, std::string_view value) {
    obj_.str(key, value);
    return *this;
  }
  TraceEvent& num(std::string_view key, std::int64_t value) {
    obj_.num(key, value);
    return *this;
  }
  TraceEvent& num(std::string_view key, double value) {
    obj_.num(key, value);
    return *this;
  }
  TraceEvent& num(std::string_view key, int value) {
    return num(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& num(std::string_view key, std::uint64_t value) {
    return num(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& boolean(std::string_view key, bool value) {
    obj_.boolean(key, value);
    return *this;
  }

 private:
  JsonObject obj_;
};

}  // namespace optalloc::obs

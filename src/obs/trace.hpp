#pragma once
// Structured JSONL trace sink. One process-wide sink; events are emitted
// as one JSON object per line with three standard fields —
//   "type" : event name ("solve", "interval", "solver_restart", ...)
//   "ts"   : seconds since the sink was opened (monotonic clock)
//   "tid"  : small per-thread ordinal, stable for the thread's lifetime
// — plus event-specific fields. Lines are written atomically under a
// mutex, so portfolio workers never interleave.
//
// Request correlation: a thread-local SpanContext carries the current
// request id ("req") and span id ("span"); when set, every event emitted
// by that thread gains those fields automatically, so a whole request can
// be reassembled from one interleaved JSONL file. The service scheduler
// installs the context when a job is claimed (ContextScope) and hands it
// explicitly to portfolio worker threads; RAII Span delimits phases
// (encode, SOLVE steps, cache lookup) with span_begin/span_end events.
//
// Cost model: every producer site is guarded by `if (obs::trace_enabled())`
// — a single relaxed atomic load when tracing is off, which is the default.
// Event construction (string building, clock reads) only happens inside
// the guard. Span/ContextScope are plain thread-local stores when tracing
// is off.
//
// The event vocabulary is documented in README.md ("Observability").

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/perfctr.hpp"

namespace optalloc::obs {

namespace detail {
extern std::atomic<bool> g_trace_on;
}

/// Near-zero-cost guard: producers must check this before building events.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Open `path` for writing (truncates) and enable tracing. Returns false
/// (tracing stays off) if the file cannot be opened.
bool trace_open(const std::string& path);

/// Route events to an external stream (tests). The stream must outlive
/// tracing; pass nullptr to detach and disable.
void trace_to_stream(std::ostream* os);

/// Flush the sink without closing it. Used on post-mortem paths (flight
/// dumps, deadline expiries) so the tail of the trace is on disk even if
/// the process dies before the orderly trace_close(). Safe when closed.
void trace_flush();

/// Flush, close the sink and disable tracing. Safe to call when closed.
void trace_close();

/// Small per-thread ordinal used for the "tid" field (0 = first thread to
/// emit). Also used by the thread-safe logger's line tags.
int thread_ordinal();

// --- Request correlation ------------------------------------------------

/// Trace context carried by the calling thread: every event it emits
/// gains "req"/"span" fields while one is installed. `req` identifies the
/// service request end-to-end (0 = none); `span` is the innermost open
/// span; `parent` its enclosing span (0 = root).
struct SpanContext {
  std::uint64_t req = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
};

/// The calling thread's current context ({0,0,0} when none installed).
SpanContext current_context();

/// Process-unique span id (never 0). Also used for request-root spans.
std::uint64_t next_span_id();

/// RAII install of an explicit context on this thread (restores the
/// previous one on destruction). Used to adopt a request's identity on a
/// scheduler worker or a portfolio thread — the explicit hand-off that
/// carries correlation across thread boundaries.
class ContextScope {
 public:
  explicit ContextScope(const SpanContext& ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  SpanContext prev_;
};

/// RAII traced phase: emits "span_begin" on construction and "span_end"
/// (with wall "seconds") on destruction, nesting under the thread's
/// current context — events emitted inside the scope carry this span's
/// id. When hardware perf counters are available (see obs/perfctr.hpp)
/// the destructor additionally emits a "perf_counters" event with the
/// phase's cycle/instruction/cache-miss deltas. No-op (and no id
/// allocated) when tracing is off at construction.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  SpanContext prev_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
  PerfCounts perf_start_;  ///< thread counters at entry (when available)
};

/// Cross-thread span halves: begin on one thread (returns the span id
/// under `ctx`), end on another with the measured duration. Used for the
/// queue-wait span, which starts at submission and ends when a worker
/// claims the job. No-ops when tracing is off (begin still returns an id).
std::uint64_t span_begin_event(std::string_view name, const SpanContext& ctx);
void span_end_event(std::string_view name, const SpanContext& ctx,
                    std::uint64_t span_id, double seconds);

/// One trace event. Builds the JSON object in a local buffer; the
/// destructor writes the finished line. Standard fields are filled by the
/// constructor; "req"/"span" are appended from the thread's SpanContext
/// (or an explicit one) when non-zero.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view type);
  TraceEvent(std::string_view type, const SpanContext& ctx);
  ~TraceEvent();
  TraceEvent(const TraceEvent&) = delete;
  TraceEvent& operator=(const TraceEvent&) = delete;

  TraceEvent& str(std::string_view key, std::string_view value) {
    obj_.str(key, value);
    return *this;
  }
  TraceEvent& num(std::string_view key, std::int64_t value) {
    obj_.num(key, value);
    return *this;
  }
  TraceEvent& num(std::string_view key, double value) {
    obj_.num(key, value);
    return *this;
  }
  TraceEvent& num(std::string_view key, int value) {
    return num(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& num(std::string_view key, std::uint64_t value) {
    return num(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& boolean(std::string_view key, bool value) {
    obj_.boolean(key, value);
    return *this;
  }
  /// Embed pre-rendered JSON (e.g. a metrics snapshot) verbatim.
  TraceEvent& raw(std::string_view key, std::string_view json) {
    obj_.raw(key, json);
    return *this;
  }

 private:
  JsonObject obj_;
};

}  // namespace optalloc::obs

#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace optalloc::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // Integers within the exactly-representable range print without a
  // fraction so counters stay grep-friendly.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void JsonObject::key(std::string_view k) {
  if (body_.size() > 1) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObject& JsonObject::str(std::string_view k, std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::num(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::num(std::string_view k, double value) {
  key(k);
  body_ += json_number(value);
  return *this;
}

JsonObject& JsonObject::boolean(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw(std::string_view k, std::string_view json) {
  key(k);
  body_ += json;
  return *this;
}

JsonArray& JsonArray::push(std::string_view json) {
  if (body_.size() > 1) body_ += ',';
  body_ += json;
  return *this;
}

// --- Parsing -----------------------------------------------------------

const JsonValue* JsonValue::get(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(std::string(k));
  return it == object.end() ? nullptr : &it->second;
}

std::optional<std::string> JsonValue::get_string(std::string_view k) const {
  const JsonValue* v = get(k);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->string;
}

std::optional<double> JsonValue::get_number(std::string_view k) const {
  const JsonValue* v = get(k);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->number;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    JsonValue v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Telemetry only escapes control characters; encode the BMP
            // code point as UTF-8 without surrogate-pair handling.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.string);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.b = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.b = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    return number(out);
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool array(JsonValue& out) {
    if (!eat('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    if (eat(']')) return true;
    for (;;) {
      JsonValue elem;
      if (!value(elem)) return false;
      out.array.push_back(std::move(elem));
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool object(JsonValue& out) {
    if (!eat('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    if (eat('}')) return true;
    for (;;) {
      std::string k;
      skip_ws();
      if (!string(k)) return false;
      if (!eat(':')) return false;
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace(std::move(k), std::move(v));
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace optalloc::obs

#include "obs/perfctr.hpp"

#include <cstdlib>

#include "obs/json.hpp"
#include "obs/trace.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace optalloc::obs {

namespace {

#ifdef __linux__

constexpr int kCounters = 5;
constexpr std::uint64_t kConfigs[kCounters] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

/// One perf group per thread, opened lazily, closed at thread exit. The
/// leader (cycles) gates everything: if it cannot be opened the thread
/// has no counters. Siblings that fail individually stay at fd -1 and
/// read as -1 (null in JSON) while the rest of the group counts.
struct Group {
  int fd[kCounters] = {-1, -1, -1, -1, -1};
  std::uint64_t id[kCounters] = {};
  bool open = false;

  Group() {
    // Read-only env probe; nothing in the process calls setenv, so the
    // getenv data race the check guards against cannot occur here.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (std::getenv("OPTALLOC_NO_PERFCTR") != nullptr) return;
    for (int i = 0; i < kCounters; ++i) {
      perf_event_attr attr{};
      attr.size = sizeof attr;
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = kConfigs[i];
      attr.disabled = i == 0 ? 1 : 0;  // group enabled as a unit below
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
      const long r = ::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                               /*cpu=*/-1, /*group_fd=*/i == 0 ? -1 : fd[0],
                               /*flags=*/0UL);
      fd[i] = static_cast<int>(r);
      if (i == 0 && fd[0] < 0) return;  // no leader: no group at all
      if (fd[i] >= 0) ::ioctl(fd[i], PERF_EVENT_IOC_ID, &id[i]);
    }
    ::ioctl(fd[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    open = true;
  }

  ~Group() {
    for (const int f : fd) {
      if (f >= 0) ::close(f);
    }
  }

  PerfCounts read() const {
    PerfCounts out;
    if (!open) return out;
    // PERF_FORMAT_GROUP|PERF_FORMAT_ID layout: nr, then (value, id) pairs.
    std::uint64_t buf[1 + 2 * kCounters] = {};
    const ssize_t n = ::read(fd[0], buf, sizeof buf);
    if (n < static_cast<ssize_t>(sizeof(std::uint64_t))) return out;
    out.available = true;
    const std::uint64_t nr =
        buf[0] <= kCounters ? buf[0] : static_cast<std::uint64_t>(kCounters);
    const auto value_of = [&](int idx) -> std::int64_t {
      if (fd[idx] < 0) return -1;
      for (std::uint64_t k = 0; k < nr; ++k) {
        if (buf[2 + 2 * k] == id[idx]) {
          return static_cast<std::int64_t>(buf[1 + 2 * k]);
        }
      }
      return -1;
    };
    out.cycles = value_of(0);
    out.instructions = value_of(1);
    out.cache_references = value_of(2);
    out.cache_misses = value_of(3);
    out.branch_misses = value_of(4);
    return out;
  }
};

Group& group() {
  thread_local Group g;
  return g;
}

#endif  // __linux__

}  // namespace

bool perf_available() {
#ifdef __linux__
  return group().open;
#else
  return false;
#endif
}

PerfCounts perf_read() {
#ifdef __linux__
  return group().read();
#else
  return {};
#endif
}

PerfCounts perf_delta(const PerfCounts& a, const PerfCounts& b) {
  PerfCounts d;
  d.available = a.available && b.available;
  const auto sub = [](std::int64_t x, std::int64_t y) -> std::int64_t {
    if (x < 0 || y < 0) return -1;
    return x >= y ? x - y : 0;
  };
  d.cycles = sub(a.cycles, b.cycles);
  d.instructions = sub(a.instructions, b.instructions);
  d.cache_references = sub(a.cache_references, b.cache_references);
  d.cache_misses = sub(a.cache_misses, b.cache_misses);
  d.branch_misses = sub(a.branch_misses, b.branch_misses);
  return d;
}

std::string perf_json(const PerfCounts& c) {
  JsonObject o;
  const auto put = [&](const char* key, std::int64_t v) {
    if (!c.available || v < 0) {
      o.raw(key, "null");
    } else {
      o.num(key, v);
    }
  };
  put("cycles", c.cycles);
  put("instructions", c.instructions);
  put("cache_references", c.cache_references);
  put("cache_misses", c.cache_misses);
  put("branch_misses", c.branch_misses);
  return o.build();
}

PerfSpan::PerfSpan(const char* name) : name_(name), start_(perf_read()) {}

PerfCounts PerfSpan::delta() const {
  return perf_delta(perf_read(), start_);
}

PerfSpan::~PerfSpan() {
  if (!start_.available || !trace_enabled()) return;
  const PerfCounts d = delta();
  // Absent siblings emit -1 (trace events have no null); consumers treat
  // negative counters as unavailable.
  TraceEvent("perf_counters")
      .str("name", name_)
      .num("cycles", d.cycles)
      .num("instructions", d.instructions)
      .num("cache_references", d.cache_references)
      .num("cache_misses", d.cache_misses)
      .num("branch_misses", d.branch_misses);
}

}  // namespace optalloc::obs

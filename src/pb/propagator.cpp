#include "pb/propagator.hpp"

#include <cassert>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "sat/proof.hpp"

namespace optalloc::pb {

PbPropagator::PbPropagator(sat::Solver& solver) : solver_(solver) {
  occs_.resize(static_cast<std::size_t>(solver.num_vars()) * 2);
  solver.attach_propagator(this);
}

void PbPropagator::on_new_var(sat::Var) {
  occs_.emplace_back();
  occs_.emplace_back();
}

void PbPropagator::explain(const Constraint& c, std::int64_t needed,
                           std::vector<sat::Lit>& out) const {
  // Greedy cover: false literals in descending coefficient order until
  // their combined weight alone already violates the constraint.
  std::int64_t acc = 0;
  for (const Term& t : c.terms) {
    if (acc >= needed) break;
    if (solver_.value(t.lit) == sat::LBool::kFalse) {
      out.push_back(t.lit);
      acc += t.coef;
    }
  }
  assert(acc >= needed && "explanation does not cover the violation");
}

bool PbPropagator::check(std::uint32_t id, std::vector<sat::Lit>& conflict) {
  Watched& w = constraints_[id];
  const std::int64_t total = w.total;
  if (w.slack < 0) {
    ++stats_.conflicts;
    conflict.clear();
    // Need sum(F) >= total - rhs + 1 so that F false alone violates c.
    explain(w.c, total - w.c.rhs + 1, conflict);
    return false;
  }
  // Terms are sorted by coefficient descending: once coef <= slack no
  // further term can be implied.
  for (const Term& t : w.c.terms) {
    if (t.coef <= w.slack) break;
    if (solver_.value(t.lit) != sat::LBool::kUndef) continue;
    scratch_.clear();
    scratch_.push_back(t.lit);
    explain(w.c, total - w.c.rhs - t.coef + 1, scratch_);
    [[maybe_unused]] const bool ok = solver_.theory_enqueue(t.lit, scratch_);
    assert(ok && "literal flipped during propagation");
    ++stats_.propagations;
  }
  return true;
}

bool PbPropagator::add(Constraint c) {
  assert(solver_.decision_level() == 0 &&
         "PB constraints must be added at the top level");
  // The paper's native 0-1 constraint path: count every translated
  // constraint, and time the translation when phase timing is on.
  static const obs::Metric n_constraints = obs::counter("pb.constraints");
  static const obs::Metric t_translate = obs::timer("pb.time.translate");
  obs::add(n_constraints, 1);
  std::optional<obs::ScopedTimer> timer;
  if (obs::phase_timing()) timer.emplace(t_translate);
  if (!solver_.ok()) return false;
  if (c.trivially_true()) return true;
  // Register the PB axiom with the proof before deriving anything from it,
  // so every consequence below (and every reason/conflict clause emitted
  // during search) can be checked as a clausal weakening of a logged axiom.
  if (sat::ProofLog* proof = solver_.proof()) {
    std::vector<sat::ProofPbTerm> terms;
    terms.reserve(c.terms.size());
    for (const Term& t : c.terms) terms.push_back({t.coef, t.lit});
    proof->add_pb_ge(terms, c.rhs);
  }
  if (c.trivially_false()) {
    // Even the all-true assignment misses rhs: the empty clause is a
    // weakening of the axiom itself.
    solver_.add_theory_clause(std::span<const sat::Lit>{});
    return false;
  }
  // rhs == total forces every literal: emit units instead of a constraint.
  // (Also covers single-literal constraints.)
  if (c.total() == c.rhs) {
    for (const Term& t : c.terms) {
      if (!solver_.add_theory_clause({t.lit})) return false;
    }
    return true;
  }

  const auto id = static_cast<std::uint32_t>(constraints_.size());
  // The propagator holds literal references to these variables for the
  // solver's whole lifetime — inprocessing must never eliminate them.
  for (const Term& t : c.terms) solver_.set_frozen(t.lit.var());
  Watched w;
  w.c = std::move(c);
  w.total = w.c.total();
  // Initial slack under the current (top-level) assignment.
  w.slack = -w.c.rhs;
  for (const Term& t : w.c.terms) {
    if (solver_.value(t.lit) != sat::LBool::kFalse) w.slack += t.coef;
  }
  for (const Term& t : w.c.terms) {
    occs_[t.lit.index()].push_back(id);
  }
  constraints_.push_back(std::move(w));
  ++stats_.constraints;

  // Top-level consequences: violated -> UNSAT; implied literals -> units.
  // Both are expressed as clausal weakenings of the axiom (over the level-0
  // false literals), so the solver derives the unit / empty clause itself
  // and the proof checker can verify every step.
  const Watched& added = constraints_[id];
  if (added.slack < 0) {
    ++stats_.conflicts;
    scratch_.clear();
    explain(added.c, added.total - added.c.rhs + 1, scratch_);
    solver_.add_theory_clause(scratch_);
    return false;
  }
  for (const Term& t : added.c.terms) {
    if (t.coef <= constraints_[id].slack) break;
    if (solver_.value(t.lit) == sat::LBool::kUndef) {
      scratch_.clear();
      scratch_.push_back(t.lit);
      explain(constraints_[id].c,
              constraints_[id].total - constraints_[id].c.rhs - t.coef + 1,
              scratch_);
      if (!solver_.add_theory_clause(scratch_)) return false;
    }
  }
  return solver_.ok();
}

bool PbPropagator::on_assign(sat::Lit l, std::vector<sat::Lit>& conflict) {
  // Terms with literal ~l just became false.
  const auto& affected = occs_[(~l).index()];
  if (affected.empty()) return true;
  for (const std::uint32_t id : affected) {
    Watched& w = constraints_[id];
    for (const Term& t : w.c.terms) {
      if (t.lit == ~l) {
        w.slack -= t.coef;
        break;
      }
    }
  }
  for (const std::uint32_t id : affected) {
    if (!check(id, conflict)) return false;
  }
  return true;
}

bool PbPropagator::audit(std::vector<std::string>* out) const {
  bool ok = true;
  for (std::size_t id = 0; id < constraints_.size(); ++id) {
    const Watched& w = constraints_[id];
    if (w.total != w.c.total()) {
      ok = false;
      if (out) {
        out->push_back("constraint " + std::to_string(id) +
                       ": cached total disagrees with terms");
      }
    }
    std::int64_t slack = -w.c.rhs;
    for (const Term& t : w.c.terms) {
      if (solver_.value(t.lit) != sat::LBool::kFalse) slack += t.coef;
    }
    if (slack != w.slack) {
      ok = false;
      if (out) {
        out->push_back("constraint " + std::to_string(id) +
                       ": cached slack " + std::to_string(w.slack) +
                       " but recomputed " + std::to_string(slack));
      }
    }
  }
  return ok;
}

void PbPropagator::on_unassign(sat::Lit l) {
  for (const std::uint32_t id : occs_[(~l).index()]) {
    Watched& w = constraints_[id];
    for (const Term& t : w.c.terms) {
      if (t.lit == ~l) {
        w.slack += t.coef;
        break;
      }
    }
  }
}

}  // namespace optalloc::pb

#include "pb/constraint.hpp"

#include <algorithm>
#include <map>

namespace optalloc::pb {

Constraint normalize_ge(std::span<const Term> terms, std::int64_t rhs) {
  // Merge terms per variable: a*x and b*~x combine to (a-b)*x + b.
  std::map<sat::Var, std::int64_t> per_var;  // coefficient of the POSITIVE lit
  std::int64_t constant = 0;
  for (const Term& t : terms) {
    if (t.coef == 0) continue;
    if (t.lit.sign()) {
      // a * ~x == a - a*x
      constant += t.coef;
      per_var[t.lit.var()] -= t.coef;
    } else {
      per_var[t.lit.var()] += t.coef;
    }
  }
  Constraint c;
  c.rhs = rhs - constant;
  for (const auto& [v, coef] : per_var) {
    if (coef > 0) {
      c.terms.push_back({coef, sat::pos(v)});
    } else if (coef < 0) {
      // a*x with a<0 == a + (-a)*(~x)
      c.rhs -= coef;
      c.terms.push_back({-coef, sat::neg(v)});
    }
  }
  std::sort(c.terms.begin(), c.terms.end(),
            [](const Term& a, const Term& b) { return a.coef > b.coef; });
  // Coefficient saturation: a_i > rhs acts exactly like a_i == rhs, which
  // strengthens the clausal reasons derived from the constraint.
  if (c.rhs > 0) {
    for (Term& t : c.terms) t.coef = std::min(t.coef, c.rhs);
  }
  return c;
}

Constraint normalize_le(std::span<const Term> terms, std::int64_t rhs) {
  std::vector<Term> negated(terms.begin(), terms.end());
  for (Term& t : negated) t.coef = -t.coef;
  return normalize_ge(negated, -rhs);
}

}  // namespace optalloc::pb

#pragma once
// CNF encodings of cardinality and pseudo-Boolean constraints. These are
// the classical alternative to native PB propagation (pb/propagator.hpp);
// bench_ablation compares the two, mirroring the paper's remark that PB
// formulae keep the encoding compact versus plain CNF.
//
// Provided encodings:
//   * at-most-one: pairwise (O(n^2) binary clauses) and sequential (3n aux)
//   * exactly-one
//   * at-most-k / at-least-k: Sinz sequential counter
//   * general PB (>=): ROBDD-based encoding (Eén & Sörensson, MiniSat+)

#include <cstdint>
#include <span>

#include "pb/constraint.hpp"
#include "sat/solver.hpp"

namespace optalloc::pb {

enum class AmoEncoding { kPairwise, kSequential };

/// At most one of `lits` is true.
bool encode_at_most_one(sat::Solver& s, std::span<const sat::Lit> lits,
                        AmoEncoding enc = AmoEncoding::kPairwise);

/// Exactly one of `lits` is true.
bool encode_exactly_one(sat::Solver& s, std::span<const sat::Lit> lits,
                        AmoEncoding enc = AmoEncoding::kPairwise);

/// At most k of `lits` are true (Sinz sequential counter; O(n*k) clauses).
bool encode_at_most_k(sat::Solver& s, std::span<const sat::Lit> lits,
                      std::int64_t k);

/// At least k of `lits` are true (at-most (n-k) of the negations).
bool encode_at_least_k(sat::Solver& s, std::span<const sat::Lit> lits,
                       std::int64_t k);

/// General normalized PB constraint sum a_i l_i >= rhs as CNF via a
/// reduced ordered BDD over the terms. Exponential in the worst case but
/// compact for the constraints arising from arithmetic encodings.
bool encode_pb_bdd(sat::Solver& s, const Constraint& c);

}  // namespace optalloc::pb

#pragma once
// Pseudo-Boolean constraints: 0-1 linear inequalities over literals,
//   sum_i a_i * l_i >= k,
// the native input language of the paper's GOBLIN solver. This header
// defines the normalized representation shared by the native propagator
// (pb/propagator.hpp) and the CNF encodings (pb/encodings.hpp).

#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace optalloc::pb {

struct Term {
  std::int64_t coef;
  sat::Lit lit;
  bool operator==(const Term&) const = default;
};

/// Normalized PB constraint: all coefficients positive, relation >=.
/// Invariants established by normalize():
///   * coef > 0 for every term
///   * at most one term per variable (duplicate/opposing terms merged)
///   * terms sorted by coefficient descending (enables early exit in
///     propagation scans)
struct Constraint {
  std::vector<Term> terms;
  std::int64_t rhs = 0;

  /// Sum of all coefficients.
  std::int64_t total() const {
    std::int64_t t = 0;
    for (const Term& term : terms) t += term.coef;
    return t;
  }

  /// Trivially satisfied (even all-false assignment meets rhs)?
  bool trivially_true() const { return rhs <= 0; }
  /// Unsatisfiable (even all-true assignment misses rhs)?
  bool trivially_false() const { return total() < rhs; }
};

/// Build a normalized >= constraint from arbitrary signed terms.
/// Transformation for a < 0: a*l == a + (-a)*(~l), so the term flips its
/// literal and the rhs absorbs the constant.
Constraint normalize_ge(std::span<const Term> terms, std::int64_t rhs);

/// sum a_i l_i <= k  ==  sum (-a_i) l_i >= -k.
Constraint normalize_le(std::span<const Term> terms, std::int64_t rhs);

/// Evaluate a constraint under a full assignment (for tests/verification).
template <typename ValueFn>  // ValueFn: Lit -> bool
bool satisfied(const Constraint& c, ValueFn value) {
  std::int64_t sum = 0;
  for (const Term& t : c.terms) {
    if (value(t.lit)) sum += t.coef;
  }
  return sum >= c.rhs;
}

}  // namespace optalloc::pb

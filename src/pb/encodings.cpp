#include "pb/encodings.hpp"

#include <map>
#include <utility>
#include <vector>

namespace optalloc::pb {

using sat::Lit;
using sat::Solver;

namespace {

bool amo_pairwise(Solver& s, std::span<const Lit> lits) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      if (!s.add_binary(~lits[i], ~lits[j])) return false;
    }
  }
  return true;
}

// Sinz-style sequential AMO: aux s_i == "one of lits[0..i] is true".
bool amo_sequential(Solver& s, std::span<const Lit> lits) {
  if (lits.size() <= 1) return true;
  const std::size_t n = lits.size();
  std::vector<Lit> reg(n - 1);
  for (auto& r : reg) r = sat::pos(s.new_var());
  bool ok = s.add_binary(~lits[0], reg[0]);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    ok = s.add_binary(~lits[i], reg[i]) && ok;
    ok = s.add_binary(~reg[i - 1], reg[i]) && ok;
    ok = s.add_binary(~lits[i], ~reg[i - 1]) && ok;
  }
  ok = s.add_binary(~lits[n - 1], ~reg[n - 2]) && ok;
  return ok;
}

}  // namespace

bool encode_at_most_one(Solver& s, std::span<const Lit> lits,
                        AmoEncoding enc) {
  if (lits.size() <= 1) return true;
  return enc == AmoEncoding::kPairwise ? amo_pairwise(s, lits)
                                       : amo_sequential(s, lits);
}

bool encode_exactly_one(Solver& s, std::span<const Lit> lits,
                        AmoEncoding enc) {
  if (lits.empty()) {
    s.add_clause(std::span<const Lit>{});  // exactly-one of nothing: UNSAT
    return false;
  }
  if (!s.add_clause(lits)) return false;
  return encode_at_most_one(s, lits, enc);
}

bool encode_at_most_k(Solver& s, std::span<const Lit> lits, std::int64_t k) {
  if (k < 0) {
    // No literal may be true — impossible if any literal is constant true;
    // emit all negations as units.
    s.add_clause(std::span<const Lit>{});
    return false;
  }
  const std::int64_t n = static_cast<std::int64_t>(lits.size());
  if (k >= n) return true;
  if (k == 0) {
    bool ok = true;
    for (const Lit l : lits) ok = s.add_unit(~l) && ok;
    return ok;
  }
  // Sinz sequential counter: r[i][j] == "at least j+1 of lits[0..i] true".
  std::vector<std::vector<Lit>> reg(n - 1, std::vector<Lit>(k));
  for (auto& row : reg) {
    for (auto& cell : row) cell = sat::pos(s.new_var());
  }
  bool ok = s.add_binary(~lits[0], reg[0][0]);
  for (std::int64_t j = 1; j < k; ++j) ok = s.add_unit(~reg[0][j]) && ok;
  for (std::int64_t i = 1; i < n - 1; ++i) {
    ok = s.add_binary(~lits[i], reg[i][0]) && ok;
    ok = s.add_binary(~reg[i - 1][0], reg[i][0]) && ok;
    for (std::int64_t j = 1; j < k; ++j) {
      ok = s.add_ternary(~lits[i], ~reg[i - 1][j - 1], reg[i][j]) && ok;
      ok = s.add_binary(~reg[i - 1][j], reg[i][j]) && ok;
    }
    ok = s.add_binary(~lits[i], ~reg[i - 1][k - 1]) && ok;
  }
  ok = s.add_binary(~lits[n - 1], ~reg[n - 2][k - 1]) && ok;
  return ok;
}

bool encode_at_least_k(Solver& s, std::span<const Lit> lits, std::int64_t k) {
  if (k <= 0) return true;
  const std::int64_t n = static_cast<std::int64_t>(lits.size());
  if (k > n) {
    s.add_clause(std::span<const Lit>{});
    return false;
  }
  if (k == 1) return s.add_clause(lits);
  std::vector<Lit> negated(lits.begin(), lits.end());
  for (Lit& l : negated) l = ~l;
  return encode_at_most_k(s, negated, n - k);
}

namespace {

// BDD encoder for sum a_i l_i >= rhs over terms[idx..]. Nodes are memoized
// on (idx, residual-rhs interval collapsed to the clamped residual). Each
// node gets a fresh variable `node == constraint satisfied from here on`.
class BddBuilder {
 public:
  BddBuilder(Solver& s, const Constraint& c) : s_(s), c_(c) {
    suffix_total_.resize(c.terms.size() + 1, 0);
    for (std::size_t i = c.terms.size(); i-- > 0;) {
      suffix_total_[i] = suffix_total_[i + 1] + c.terms[i].coef;
    }
  }

  /// Returns a literal equivalent to the constraint, or a constant via
  /// the out-parameters.
  enum class Result { kTrue, kFalse, kNode };
  Result build(std::size_t idx, std::int64_t rhs, Lit& out) {
    if (rhs <= 0) return Result::kTrue;
    if (suffix_total_[idx] < rhs) return Result::kFalse;
    const auto key = std::make_pair(idx, rhs);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      out = it->second;
      return Result::kNode;
    }
    const Term& t = c_.terms[idx];
    Lit hi, lo;
    const Result rhi = build(idx + 1, rhs - t.coef, hi);  // t.lit true
    const Result rlo = build(idx + 1, rhs, lo);           // t.lit false
    const Lit node = sat::pos(s_.new_var());
    // node <-> ite(t.lit, hi, lo), specialised for constant branches.
    // The constraint is monotone, so rhi dominates rlo; rhi==kFalse implies
    // rlo==kFalse (handled by the caller's early-outs).
    if (rhi == Result::kTrue && rlo == Result::kFalse) {
      ok_ = s_.add_binary(~node, t.lit) && ok_;
      ok_ = s_.add_binary(node, ~t.lit) && ok_;
    } else if (rhi == Result::kTrue) {
      ok_ = s_.add_ternary(~node, t.lit, lo) && ok_;
      ok_ = s_.add_binary(node, ~t.lit) && ok_;
      ok_ = s_.add_binary(node, ~lo) && ok_;
    } else if (rlo == Result::kFalse) {
      ok_ = s_.add_binary(~node, t.lit) && ok_;
      ok_ = s_.add_binary(~node, hi) && ok_;
      ok_ = s_.add_ternary(node, ~t.lit, ~hi) && ok_;
    } else {
      ok_ = s_.add_ternary(~node, ~t.lit, hi) && ok_;
      ok_ = s_.add_ternary(~node, t.lit, lo) && ok_;
      ok_ = s_.add_ternary(node, ~t.lit, ~hi) && ok_;
      ok_ = s_.add_ternary(node, t.lit, ~lo) && ok_;
    }
    memo_.emplace(key, node);
    out = node;
    return Result::kNode;
  }

  bool ok() const { return ok_; }

 private:
  Solver& s_;
  const Constraint& c_;
  std::vector<std::int64_t> suffix_total_;
  std::map<std::pair<std::size_t, std::int64_t>, Lit> memo_;
  bool ok_ = true;
};

}  // namespace

bool encode_pb_bdd(Solver& s, const Constraint& c) {
  if (c.trivially_true()) return true;
  if (c.trivially_false()) {
    s.add_clause(std::span<const Lit>{});
    return false;
  }
  BddBuilder builder(s, c);
  Lit root = sat::kUndefLit;
  const auto result = builder.build(0, c.rhs, root);
  switch (result) {
    case BddBuilder::Result::kTrue:
      return builder.ok();
    case BddBuilder::Result::kFalse:
      s.add_clause(std::span<const Lit>{});
      return false;
    case BddBuilder::Result::kNode:
      return s.add_unit(root) && builder.ok();
  }
  return false;  // unreachable
}

}  // namespace optalloc::pb

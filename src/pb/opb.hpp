#pragma once
// OPB (pseudo-Boolean competition format) reader/writer, the standard
// interchange format for 0-1 linear constraint systems — the input
// language of solvers like GOBLIN. Supports linear constraints with
// ">=", "<=" and "=" relations and an optional "min:" objective line.
//
//   * #variable= 4 #constraint= 2
//   min: +1 x1 +2 x2 ;
//   +1 x1 +2 x2 +3 x3 >= 3 ;
//   -2 x1 +4 x4 = 2 ;

#include <iosfwd>
#include <optional>
#include <vector>

#include "pb/propagator.hpp"

namespace optalloc::pb {

struct OpbConstraint {
  std::vector<Term> terms;
  enum class Relation { kGe, kLe, kEq } relation = Relation::kGe;
  std::int64_t rhs = 0;
};

struct OpbProblem {
  std::int32_t num_vars = 0;
  std::optional<std::vector<Term>> objective;  ///< minimized if present
  std::vector<OpbConstraint> constraints;
};

/// Parse OPB from a stream. Throws std::runtime_error on malformed input.
/// Variables x1..xN map to 0-based solver variables; "~xK" literals are
/// supported (negation).
OpbProblem parse_opb(std::istream& in);

/// Load the constraints into a solver + PB store (creating variables).
/// Returns false if the system is unsatisfiable at the top level.
bool load_into(const OpbProblem& problem, sat::Solver& solver,
               PbPropagator& pb);

/// Serialize in OPB format.
void write_opb(std::ostream& out, const OpbProblem& problem);

}  // namespace optalloc::pb

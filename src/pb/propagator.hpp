#pragma once
// Native pseudo-Boolean propagation integrated into the CDCL solver via the
// theory-propagator hook — the architectural analogue of the paper's GOBLIN
// engine, where PB constraints are first-class and never expanded to CNF.
//
// Method: counter ("slack") propagation. For a normalized constraint
//   sum a_i l_i >= k,  slack := sum_{l_i not false} a_i - k.
// slack < 0            -> conflict (the false literals cannot all stay false)
// a_i > slack, l_i free -> l_i is implied true.
// Reasons and conflicts are explained by clausal weakenings: a greedily
// chosen subset F of the false literals such that forcing F false already
// violates the constraint yields the clause (l ∨ ∨F) — exactly the lazy
// clause generation GOBLIN-style engines perform.

#include <cstdint>
#include <string>
#include <vector>

#include "pb/constraint.hpp"
#include "sat/solver.hpp"

namespace optalloc::pb {

struct PbStats {
  std::uint64_t constraints = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
};

class PbPropagator final : public sat::Propagator {
 public:
  /// Attaches itself to the solver. The solver must outlive this object.
  explicit PbPropagator(sat::Solver& solver);

  /// Add a normalized constraint. Returns false if the constraint system
  /// became unsatisfiable at the top level. All literals must refer to
  /// existing solver variables.
  bool add(Constraint c);

  /// Convenience builders (normalize internally).
  bool add_ge(std::span<const Term> terms, std::int64_t rhs) {
    return add(normalize_ge(terms, rhs));
  }
  bool add_le(std::span<const Term> terms, std::int64_t rhs) {
    return add(normalize_le(terms, rhs));
  }
  bool add_eq(std::span<const Term> terms, std::int64_t rhs) {
    return add_ge(terms, rhs) && add_le(terms, rhs);
  }

  const PbStats& stats() const { return stats_; }
  std::size_t num_constraints() const { return constraints_.size(); }

  /// Watched constraint by index (for the model certifier; excludes
  /// constraints folded away into units at add() time — those are covered
  /// by the proof log's axiom records).
  const Constraint& constraint(std::size_t i) const {
    return constraints_[i].c;
  }

  /// Debug invariant auditor: recomputes every cached slack and coefficient
  /// total from the solver's current assignment and compares. Returns true
  /// when consistent; appends one message per violation to `out`.
  bool audit(std::vector<std::string>* out = nullptr) const;

  // sat::Propagator interface -------------------------------------------
  void on_new_var(sat::Var v) override;
  bool on_assign(sat::Lit l, std::vector<sat::Lit>& conflict) override;
  void on_unassign(sat::Lit l) override;

 private:
  struct Watched {
    Constraint c;
    std::int64_t slack = 0;
    std::int64_t total = 0;  ///< cached c.total()
  };

  /// Re-derive implied literals of constraint `id`; false on conflict.
  bool check(std::uint32_t id, std::vector<sat::Lit>& conflict);

  /// Greedy clausal explanation: false literals of `c` (descending
  /// coefficient) whose combined weight already exceeds `needed`.
  void explain(const Constraint& c, std::int64_t needed,
               std::vector<sat::Lit>& out) const;

  sat::Solver& solver_;
  std::vector<Watched> constraints_;
  /// occs_[lit.index()] = constraints containing a term with that literal.
  std::vector<std::vector<std::uint32_t>> occs_;
  std::vector<sat::Lit> scratch_;
  PbStats stats_;
};

}  // namespace optalloc::pb

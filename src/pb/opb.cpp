#include "pb/opb.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sat/solver.hpp"

namespace optalloc::pb {

namespace {

/// Parse a literal token "x12" or "~x12" (1-based) into a Lit.
sat::Lit parse_literal(const std::string& token, std::int32_t num_vars) {
  bool negated = false;
  std::size_t pos = 0;
  if (!token.empty() && token[0] == '~') {
    negated = true;
    pos = 1;
  }
  if (pos >= token.size() || token[pos] != 'x') {
    throw std::runtime_error("opb: expected literal, got '" + token + "'");
  }
  const long index = std::stol(token.substr(pos + 1));
  if (index < 1 || index > num_vars) {
    throw std::runtime_error("opb: variable out of range: " + token);
  }
  return sat::Lit(static_cast<sat::Var>(index - 1), negated);
}

/// Parse "<coef> <lit> <coef> <lit> ..." until a relation or ';'.
std::vector<Term> parse_terms(std::istringstream& in, std::string& stop,
                              std::int32_t num_vars) {
  std::vector<Term> terms;
  std::string token;
  while (in >> token) {
    if (token == ">=" || token == "<=" || token == "=" || token == ";") {
      stop = token;
      return terms;
    }
    const std::int64_t coef = std::stoll(token);
    std::string lit_token;
    if (!(in >> lit_token)) {
      throw std::runtime_error("opb: coefficient without literal");
    }
    terms.push_back({coef, parse_literal(lit_token, num_vars)});
  }
  stop.clear();
  return terms;
}

}  // namespace

OpbProblem parse_opb(std::istream& in) {
  OpbProblem problem;
  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '*') {
      // Header comment: "* #variable= N #constraint= M".
      const auto var_pos = line.find("#variable=");
      if (var_pos != std::string::npos) {
        problem.num_vars = static_cast<std::int32_t>(
            std::stol(line.substr(var_pos + 10)));
        header_seen = true;
      }
      continue;
    }
    if (!header_seen) {
      throw std::runtime_error("opb: missing '* #variable=' header");
    }
    std::istringstream body(line);
    if (line.rfind("min:", 0) == 0) {
      body.ignore(4);
      std::string stop;
      problem.objective = parse_terms(body, stop, problem.num_vars);
      if (stop != ";") throw std::runtime_error("opb: objective missing ';'");
      continue;
    }
    OpbConstraint c;
    std::string stop;
    c.terms = parse_terms(body, stop, problem.num_vars);
    if (stop == ">=") {
      c.relation = OpbConstraint::Relation::kGe;
    } else if (stop == "<=") {
      c.relation = OpbConstraint::Relation::kLe;
    } else if (stop == "=") {
      c.relation = OpbConstraint::Relation::kEq;
    } else {
      throw std::runtime_error("opb: constraint without relation: " + line);
    }
    std::string rhs_token, semi;
    if (!(body >> rhs_token)) {
      throw std::runtime_error("opb: missing right-hand side: " + line);
    }
    c.rhs = std::stoll(rhs_token);
    if (body >> semi && semi != ";") {
      throw std::runtime_error("opb: trailing tokens: " + line);
    }
    problem.constraints.push_back(std::move(c));
  }
  return problem;
}

bool load_into(const OpbProblem& problem, sat::Solver& solver,
               PbPropagator& pb) {
  while (solver.num_vars() < problem.num_vars) solver.new_var();
  bool ok = true;
  for (const OpbConstraint& c : problem.constraints) {
    switch (c.relation) {
      case OpbConstraint::Relation::kGe:
        ok = pb.add_ge(c.terms, c.rhs) && ok;
        break;
      case OpbConstraint::Relation::kLe:
        ok = pb.add_le(c.terms, c.rhs) && ok;
        break;
      case OpbConstraint::Relation::kEq:
        ok = pb.add_eq(c.terms, c.rhs) && ok;
        break;
    }
  }
  return solver.ok() && ok;
}

namespace {

void write_terms(std::ostream& out, const std::vector<Term>& terms) {
  for (const Term& t : terms) {
    out << (t.coef >= 0 ? "+" : "") << t.coef << " "
        << (t.lit.sign() ? "~" : "") << "x" << (t.lit.var() + 1) << " ";
  }
}

}  // namespace

void write_opb(std::ostream& out, const OpbProblem& problem) {
  out << "* #variable= " << problem.num_vars
      << " #constraint= " << problem.constraints.size() << "\n";
  if (problem.objective) {
    out << "min: ";
    write_terms(out, *problem.objective);
    out << ";\n";
  }
  for (const OpbConstraint& c : problem.constraints) {
    write_terms(out, c.terms);
    switch (c.relation) {
      case OpbConstraint::Relation::kGe: out << ">= "; break;
      case OpbConstraint::Relation::kLe: out << "<= "; break;
      case OpbConstraint::Relation::kEq: out << "= "; break;
    }
    out << c.rhs << " ;\n";
  }
}

}  // namespace optalloc::pb

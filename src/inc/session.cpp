#include "inc/session.hpp"

#include <chrono>
#include <exception>
#include <utility>

namespace optalloc::inc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* SessionResult::status_name(Status s) {
  switch (s) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kFeasible: return "feasible";
    case Status::kUnknown: return "unknown";
    case Status::kError: return "error";
  }
  return "?";
}

Session::Session(alloc::Problem problem, alloc::Objective objective,
                 SessionOptions options)
    : problem_(std::move(problem)),
      objective_(objective),
      options_(options),
      backend_(options.backend) {}

Session::~Session() = default;

bool Session::sync_encoding(SessionResult& out) {
  alloc::EncoderConfig config;
  config.backend = options_.backend;
  config.free_tie_priorities = options_.free_tie_priorities;
  encoder_.reset();
  encoder_ = std::make_unique<alloc::AllocEncoder>(problem_, objective_,
                                                   config, backend_);
  try {
    encoder_->build();
  } catch (const std::exception& e) {
    out.status = SessionResult::Status::kError;
    out.error = e.what();
    return false;
  }
  const EncodingDelta delta = diff_groups(groups_, encoder_->grouped());
  const std::int64_t clauses_before = backend_.solver.num_clauses();
  for (const std::string& name : delta.retired) {
    // Permanent retraction. Sound: every learnt clause is implied by the
    // clause database, and the database only grows — a retired group's
    // clauses become vacuously satisfied, never contradicted.
    backend_.solver.add_unit(~groups_.at(name).guard);
    groups_.erase(name);
    ++retired_guards_;
  }
  for (const std::string& name : delta.added) {
    Group group;
    const sat::Var v = backend_.solver.new_var();
    backend_.solver.set_frozen(v);  // guards must survive inprocessing
    group.guard = sat::pos(v);
    group.formulas = delta.next.at(name);
    for (const ir::NodeId f : group.formulas) {
      backend_.blaster.assert_guarded(group.guard, f);
    }
    groups_.emplace(name, std::move(group));
  }
  out.groups_added = static_cast<int>(delta.added.size());
  out.groups_retired = static_cast<int>(delta.retired.size());
  out.groups_unchanged = delta.unchanged;
  out.clauses_added = backend_.solver.num_clauses() - clauses_before;
  guard_assumptions_.clear();
  guard_assumptions_.reserve(groups_.size());
  for (const auto& [name, group] : groups_) {
    guard_assumptions_.push_back(group.guard);
  }
  guards_res_.set(0, static_cast<std::int64_t>(groups_.size()));
  dead_guards_res_.set(0, retired_guards_);
  return true;
}

double Session::dead_guard_fraction() const {
  const double total =
      static_cast<double>(retired_guards_) + static_cast<double>(groups_.size());
  return total > 0.0 ? static_cast<double>(retired_guards_) / total : 0.0;
}

SessionResult Session::solve(const SolveLimits& limits) {
  SessionResult out;
  const auto start = Clock::now();
  const std::uint64_t conflicts_before = backend_.solver.stats().conflicts;
  const auto finish = [&](SessionResult::Status status) {
    out.status = status;
    out.seconds = seconds_since(start);
    out.conflicts = static_cast<std::int64_t>(
        backend_.solver.stats().conflicts - conflicts_before);
    return out;
  };

  if (!sync_encoding(out)) return finish(SessionResult::Status::kError);

  const ir::Range range = encoder_->cost_range();
  const ir::NodeId cost = encoder_->cost_node();
  ir::Context& ctx = backend_.ctx;

  const auto probe = [&](std::int64_t lo, std::int64_t hi) -> sat::LBool {
    sat::Budget budget;
    budget.conflicts = limits.conflicts;
    budget.stop = limits.stop;
    if (limits.deadline_s > 0.0) {
      const double left = limits.deadline_s - seconds_since(start);
      if (left <= 0.0) return sat::LBool::kUndef;
      budget.seconds = left;
    }
    ++out.sat_calls;
    std::vector<sat::Lit> assumptions = guard_assumptions_;
    if (lo > range.lo || hi < range.hi) {
      // The bound guard is a memoized Tseitin literal: probing the same
      // interval twice (e.g. across revisions) reuses the encoding.
      const ir::NodeId bound = ctx.land(ctx.ge(cost, ctx.constant(lo)),
                                        ctx.le(cost, ctx.constant(hi)));
      assumptions.push_back(backend_.blaster.formula_lit(bound));
    }
    return backend_.solver.solve(assumptions, budget);
  };

  // Warm start: one probe at the previous optimum decides whether the
  // edit kept or improved the cost (SAT: continue below C*) or regressed
  // it (UNSAT: the optimum moved up — search (C*, hi]).
  std::int64_t lower = range.lo;
  std::int64_t first_hi = range.hi;
  if (prev_optimum_ && *prev_optimum_ >= range.lo &&
      *prev_optimum_ < range.hi) {
    first_hi = *prev_optimum_;
  }
  sat::LBool r = probe(lower, first_hi);
  if (r == sat::LBool::kFalse && first_hi < range.hi) {
    lower = first_hi + 1;
    r = probe(lower, range.hi);
  }

  if (r == sat::LBool::kFalse) {
    // Infeasible instance. For the core, re-solve with only the group
    // guards (no cost bounds) when the last conflict involved a bound
    // assumption — the cost variable's own range makes this equivalent.
    out.proven_optimal = true;
    CoreExplainer explainer(backend_.solver, groups_);
    std::vector<std::string> core =
        explainer.explain(backend_.solver.conflict_core());
    if (lower > range.lo || first_hi < range.hi) {
      sat::Budget budget;
      budget.conflicts = limits.conflicts;
      budget.stop = limits.stop;
      ++out.sat_calls;
      if (backend_.solver.solve(guard_assumptions_, budget) ==
          sat::LBool::kFalse) {
        core = explainer.explain(backend_.solver.conflict_core());
      }
    }
    if (options_.minimize_cores && core.size() > 1) {
      core = explainer.minimize(std::move(core), options_.core_probe);
    }
    out.core = std::move(core);
    return finish(SessionResult::Status::kInfeasible);
  }
  if (r == sat::LBool::kUndef) {
    out.lower_bound = lower;
    return finish(SessionResult::Status::kUnknown);
  }

  // SAT: tighten with the optimizer's BIN_SEARCH discipline — probe
  // [lower, mid], adopt the decoded cost as the new upper bound on SAT
  // (often far below mid), raise lower on UNSAT.
  std::int64_t upper = encoder_->decode_cost();
  out.allocation = encoder_->decode();
  out.has_allocation = true;
  bool complete = true;
  while (lower < upper) {
    const std::int64_t mid = lower + (upper - lower) / 2;
    r = probe(lower, mid);
    if (r == sat::LBool::kTrue) {
      upper = encoder_->decode_cost();
      out.allocation = encoder_->decode();
    } else if (r == sat::LBool::kFalse) {
      lower = mid + 1;
    } else {
      complete = false;
      break;
    }
  }
  out.cost = upper;
  out.lower_bound = complete ? upper : lower;
  out.proven_optimal = complete;
  prev_optimum_ = upper;
  return finish(complete ? SessionResult::Status::kOptimal
                         : SessionResult::Status::kFeasible);
}

SessionResult Session::revise(const InstancePatch& patch,
                              const SolveLimits& limits) {
  // Validate against a copy: a rejected patch must leave the live
  // instance (and encoding) untouched.
  alloc::Problem edited = problem_;
  if (const auto error = apply_patch(patch, edited)) {
    SessionResult out;
    out.status = SessionResult::Status::kError;
    out.error = *error;
    return out;
  }
  encoder_.reset();  // encoder_ references problem_; drop before swap
  problem_ = std::move(edited);
  return solve(limits);
}

bool Session::core_is_conflicting(std::span<const std::string> core) {
  if (core.empty()) return false;
  CoreExplainer explainer(backend_.solver, groups_);
  return explainer.is_conflicting(core);
}

}  // namespace optalloc::inc

#include "inc/core_explain.hpp"

#include <algorithm>
#include <map>

namespace optalloc::inc {

CoreExplainer::CoreExplainer(sat::Solver& solver, const GroupMap& groups)
    : solver_(solver), groups_(groups) {}

std::vector<std::string> CoreExplainer::explain(
    std::span<const sat::Lit> core) const {
  // conflict_core() holds the clause the solver could learn: the negation
  // of the failed assumptions. Guards are assumed positive, so look the
  // underlying variable up regardless of sign.
  std::map<sat::Var, const std::string*> by_var;
  for (const auto& [name, group] : groups_) {
    by_var.emplace(group.guard.var(), &name);
  }
  std::vector<std::string> names;
  for (const sat::Lit l : core) {
    const auto it = by_var.find(l.var());
    if (it != by_var.end()) names.push_back(*it->second);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<sat::Lit> CoreExplainer::guards_of(
    std::span<const std::string> names) const {
  std::vector<sat::Lit> lits;
  for (const std::string& name : names) {
    const auto it = groups_.find(name);
    if (it != groups_.end()) lits.push_back(it->second.guard);
  }
  return lits;
}

std::vector<std::string> CoreExplainer::minimize(
    std::vector<std::string> core, sat::Budget per_probe) {
  // Classic destructive deletion: try dropping each member once. When a
  // probe without member i is still unsat, the solver's new core is a
  // subset not containing i — adopt it wholesale, which can drop several
  // members per probe.
  for (std::size_t i = 0; i < core.size() && core.size() > 1;) {
    std::vector<std::string> without;
    without.reserve(core.size() - 1);
    for (std::size_t j = 0; j < core.size(); ++j) {
      if (j != i) without.push_back(core[j]);
    }
    const auto result = solver_.solve(guards_of(without), per_probe);
    if (result == sat::LBool::kFalse) {
      auto shrunk = explain(solver_.conflict_core());
      // Keep only members we were still assuming (defensive: explain()
      // never returns others, but the intersection is what's sound).
      std::erase_if(shrunk, [&without](const std::string& n) {
        return std::find(without.begin(), without.end(), n) == without.end();
      });
      core = shrunk.empty() ? std::move(without) : std::move(shrunk);
      i = 0;  // restart: indices shifted, earlier members may now drop
    } else {
      ++i;  // needed (or probe inconclusive): keep it
    }
  }
  return core;
}

bool CoreExplainer::is_conflicting(std::span<const std::string> core) {
  return solver_.solve(guards_of(core), {}) == sat::LBool::kFalse;
}

}  // namespace optalloc::inc

#include "inc/patch.hpp"

#include <algorithm>

namespace optalloc::inc {

namespace {

using obs::JsonValue;

int find_task(const alloc::Problem& problem, const std::string& name) {
  const auto& tasks = problem.tasks.tasks;
  for (int i = 0; i < static_cast<int>(tasks.size()); ++i) {
    if (tasks[static_cast<std::size_t>(i)].name == name) return i;
  }
  return -1;
}

std::optional<std::string> fail(const PatchOp& op, const std::string& why) {
  return op.describe() + ": " + why;
}

}  // namespace

std::string PatchOp::describe() const {
  switch (kind) {
    case Kind::kSetWcet:
      return "set_wcet " + task + "@" + std::to_string(ecu) + "=" +
             std::to_string(value);
    case Kind::kSetDeadline:
      return "set_deadline " + task + "=" + std::to_string(value);
    case Kind::kSetPeriod:
      return "set_period " + task + "=" + std::to_string(value);
    case Kind::kSetJitter:
      return "set_jitter " + task + "=" + std::to_string(value);
    case Kind::kSetMemory:
      return "set_memory " + task + "=" + std::to_string(value);
    case Kind::kAddTask: return "add_task " + task;
    case Kind::kRemoveTask: return "remove_task " + task;
    case Kind::kSetMessageDeadline:
      return "set_message_deadline " + task + "[" + std::to_string(index) +
             "]=" + std::to_string(value);
    case Kind::kSetMessageSize:
      return "set_message_size " + task + "[" + std::to_string(index) +
             "]=" + std::to_string(value);
    case Kind::kAddMessage:
      return "add_message " + task + " -> " + target;
    case Kind::kRemoveMessage:
      return "remove_message " + task + "[" + std::to_string(index) + "]";
    case Kind::kSeparate: return "separate " + task + " " + target;
    case Kind::kUnseparate: return "unseparate " + task + " " + target;
  }
  return "?";
}

std::optional<InstancePatch> parse_patch(const JsonValue& edits,
                                         std::string* error) {
  const auto fail_parse = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (edits.kind != JsonValue::Kind::kArray) {
    return fail_parse("\"edits\" must be a JSON array");
  }
  InstancePatch patch;
  for (std::size_t i = 0; i < edits.array.size(); ++i) {
    const JsonValue& e = edits.array[i];
    const std::string at = "edit " + std::to_string(i) + ": ";
    if (!e.is_object()) return fail_parse(at + "not a JSON object");
    const auto op_name = e.get_string("op");
    if (!op_name) return fail_parse(at + "missing \"op\"");

    PatchOp op;
    // Common addressing fields; per-op requirements checked below.
    if (const auto t = e.get_string("task")) op.task = *t;
    if (const auto t = e.get_string("target")) op.target = *t;
    if (const auto v = e.get_number("ecu")) op.ecu = static_cast<int>(*v);
    if (const auto v = e.get_number("index")) {
      op.index = static_cast<int>(*v);
    }
    if (const auto v = e.get_number("jitter")) {
      op.jitter = static_cast<std::int64_t>(*v);
    }
    if (const auto v = e.get_number("memory")) {
      op.memory = static_cast<std::int64_t>(*v);
    }
    const auto num = [&e](const char* key) -> std::optional<std::int64_t> {
      const auto v = e.get_number(key);
      if (!v) return std::nullopt;
      return static_cast<std::int64_t>(*v);
    };

    if (op.task.empty()) return fail_parse(at + "missing \"task\"");
    if (*op_name == "set_wcet") {
      op.kind = PatchOp::Kind::kSetWcet;
      const auto v = num("wcet");
      if (op.ecu < 0 || !v) return fail_parse(at + "needs \"ecu\", \"wcet\"");
      op.value = *v;
    } else if (*op_name == "set_deadline") {
      op.kind = PatchOp::Kind::kSetDeadline;
      const auto v = num("deadline");
      if (!v) return fail_parse(at + "needs \"deadline\"");
      op.value = *v;
    } else if (*op_name == "set_period") {
      op.kind = PatchOp::Kind::kSetPeriod;
      const auto v = num("period");
      if (!v) return fail_parse(at + "needs \"period\"");
      op.value = *v;
    } else if (*op_name == "set_jitter") {
      op.kind = PatchOp::Kind::kSetJitter;
      const auto v = num("jitter");
      if (!v) return fail_parse(at + "needs \"jitter\"");
      op.value = *v;
    } else if (*op_name == "set_memory") {
      op.kind = PatchOp::Kind::kSetMemory;
      const auto v = num("memory");
      if (!v) return fail_parse(at + "needs \"memory\"");
      op.value = *v;
    } else if (*op_name == "add_task") {
      op.kind = PatchOp::Kind::kAddTask;
      const auto period = num("period");
      const auto deadline = num("deadline");
      const JsonValue* wcet = e.get("wcet");
      if (!period || !deadline || wcet == nullptr ||
          wcet->kind != JsonValue::Kind::kArray) {
        return fail_parse(at +
                          "needs \"period\", \"deadline\", \"wcet\" array");
      }
      op.value = *period;
      op.value2 = *deadline;
      for (const JsonValue& w : wcet->array) {
        if (!w.is_number()) return fail_parse(at + "non-numeric wcet entry");
        op.wcet.push_back(static_cast<std::int64_t>(w.number));
      }
    } else if (*op_name == "remove_task") {
      op.kind = PatchOp::Kind::kRemoveTask;
    } else if (*op_name == "set_message_deadline") {
      op.kind = PatchOp::Kind::kSetMessageDeadline;
      const auto v = num("deadline");
      if (op.index < 0 || !v) {
        return fail_parse(at + "needs \"index\", \"deadline\"");
      }
      op.value = *v;
    } else if (*op_name == "set_message_size") {
      op.kind = PatchOp::Kind::kSetMessageSize;
      const auto v = num("bytes");
      if (op.index < 0 || !v) {
        return fail_parse(at + "needs \"index\", \"bytes\"");
      }
      op.value = *v;
    } else if (*op_name == "add_message") {
      op.kind = PatchOp::Kind::kAddMessage;
      const auto bytes = num("bytes");
      const auto deadline = num("deadline");
      if (op.target.empty() || !bytes || !deadline) {
        return fail_parse(at + "needs \"target\", \"bytes\", \"deadline\"");
      }
      op.value = *bytes;
      op.value2 = *deadline;
    } else if (*op_name == "remove_message") {
      op.kind = PatchOp::Kind::kRemoveMessage;
      if (op.index < 0) return fail_parse(at + "needs \"index\"");
    } else if (*op_name == "separate" || *op_name == "unseparate") {
      op.kind = *op_name == "separate" ? PatchOp::Kind::kSeparate
                                       : PatchOp::Kind::kUnseparate;
      if (op.target.empty()) return fail_parse(at + "needs \"target\"");
    } else {
      return fail_parse(at + "unknown op \"" + *op_name + "\"");
    }
    patch.ops.push_back(std::move(op));
  }
  return patch;
}

std::optional<std::string> apply_patch(const InstancePatch& patch,
                                       alloc::Problem& problem) {
  auto& tasks = problem.tasks.tasks;
  for (const PatchOp& op : patch.ops) {
    const int ti = find_task(problem, op.task);
    if (op.kind == PatchOp::Kind::kAddTask) {
      if (ti >= 0) return fail(op, "task already exists");
      if (static_cast<int>(op.wcet.size()) != problem.arch.num_ecus) {
        return fail(op, "wcet array must have one entry per ECU");
      }
      if (op.value <= 0 || op.value2 <= 0 || op.value2 > op.value) {
        return fail(op, "need period > 0 and 0 < deadline <= period");
      }
      rt::Task t;
      t.name = op.task;
      t.period = op.value;
      t.deadline = op.value2;
      t.release_jitter = op.jitter;
      t.memory = op.memory;
      t.wcet.assign(op.wcet.begin(), op.wcet.end());
      tasks.push_back(std::move(t));
      continue;
    }
    if (ti < 0) return fail(op, "unknown task");
    rt::Task& t = tasks[static_cast<std::size_t>(ti)];
    switch (op.kind) {
      case PatchOp::Kind::kSetWcet:
        if (op.ecu >= problem.arch.num_ecus) return fail(op, "bad ecu");
        if (op.value != rt::kForbidden && op.value <= 0) {
          return fail(op, "wcet must be positive or -1 (forbidden)");
        }
        t.wcet[static_cast<std::size_t>(op.ecu)] = op.value;
        break;
      case PatchOp::Kind::kSetDeadline:
        if (op.value <= 0 || op.value > t.period) {
          return fail(op, "need 0 < deadline <= period");
        }
        t.deadline = op.value;
        break;
      case PatchOp::Kind::kSetPeriod:
        if (op.value < t.deadline) return fail(op, "period < deadline");
        t.period = op.value;
        break;
      case PatchOp::Kind::kSetJitter:
        if (op.value < 0) return fail(op, "negative jitter");
        t.release_jitter = op.value;
        break;
      case PatchOp::Kind::kSetMemory:
        if (op.value < 0) return fail(op, "negative memory");
        t.memory = op.value;
        break;
      case PatchOp::Kind::kRemoveTask: {
        // Drop the task, then re-index every cross-reference: separation
        // sets and message targets hold task indices. Messages *to* the
        // removed task go with it.
        tasks.erase(tasks.begin() + ti);
        for (rt::Task& u : tasks) {
          std::erase(u.separated_from, ti);
          for (int& s : u.separated_from) {
            if (s > ti) --s;
          }
          std::erase_if(u.messages, [ti](const rt::Message& m) {
            return m.target_task == ti;
          });
          for (rt::Message& m : u.messages) {
            if (m.target_task > ti) --m.target_task;
          }
        }
        break;
      }
      case PatchOp::Kind::kSetMessageDeadline:
      case PatchOp::Kind::kSetMessageSize: {
        if (op.index >= static_cast<int>(t.messages.size())) {
          return fail(op, "bad message index");
        }
        if (op.value <= 0) return fail(op, "value must be positive");
        rt::Message& m = t.messages[static_cast<std::size_t>(op.index)];
        if (op.kind == PatchOp::Kind::kSetMessageDeadline) {
          m.deadline = op.value;
        } else {
          m.size_bytes = op.value;
        }
        break;
      }
      case PatchOp::Kind::kAddMessage: {
        const int target = find_task(problem, op.target);
        if (target < 0) return fail(op, "unknown target task");
        if (target == ti) return fail(op, "message to itself");
        if (op.value <= 0 || op.value2 <= 0) {
          return fail(op, "need bytes > 0 and deadline > 0");
        }
        rt::Message m;
        m.target_task = target;
        m.size_bytes = op.value;
        m.deadline = op.value2;
        m.release_jitter = op.jitter;
        t.messages.push_back(m);
        break;
      }
      case PatchOp::Kind::kRemoveMessage:
        if (op.index >= static_cast<int>(t.messages.size())) {
          return fail(op, "bad message index");
        }
        t.messages.erase(t.messages.begin() + op.index);
        break;
      case PatchOp::Kind::kSeparate:
      case PatchOp::Kind::kUnseparate: {
        const int other = find_task(problem, op.target);
        if (other < 0) return fail(op, "unknown target task");
        if (other == ti) return fail(op, "task separated from itself");
        auto& sep = t.separated_from;
        if (op.kind == PatchOp::Kind::kSeparate) {
          if (std::find(sep.begin(), sep.end(), other) == sep.end()) {
            sep.push_back(other);
          }
        } else {
          auto& back = tasks[static_cast<std::size_t>(other)].separated_from;
          const bool had = std::erase(sep, other) > 0;
          const bool had_back = std::erase(back, ti) > 0;
          if (!had && !had_back) {
            return fail(op, "tasks are not separated");
          }
        }
        break;
      }
      case PatchOp::Kind::kAddTask:
        break;  // handled above
    }
  }
  return std::nullopt;
}

}  // namespace optalloc::inc

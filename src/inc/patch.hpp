#pragma once
// Instance patches — the edit language of incremental re-solve sessions
// (the service's `revise` verb). A patch is an ordered list of small,
// named edits against an alloc::Problem: bump one WCET, tighten a
// deadline, add or remove a task or message, (un)separate a pair. The
// session applies the patch to its live instance and re-solves only the
// encoding delta (src/inc/session.hpp).
//
// Edits address tasks by *name* (stable across edits) and messages by
// (sender name, per-sender index). Architecture edits are deliberately
// out of scope: the media topology determines the route closure and the
// whole variable layout, so changing it is a new session, not a patch.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "alloc/problem.hpp"
#include "obs/json.hpp"

namespace optalloc::inc {

struct PatchOp {
  enum class Kind {
    kSetWcet,            ///< task, ecu, value (rt::kForbidden = -1 allowed)
    kSetDeadline,        ///< task, value
    kSetPeriod,          ///< task, value
    kSetJitter,          ///< task, value
    kSetMemory,          ///< task, value
    kAddTask,            ///< task, value=period, value2=deadline, wcet[],
                         ///< jitter, memory
    kRemoveTask,         ///< task
    kSetMessageDeadline, ///< task, index, value
    kSetMessageSize,     ///< task, index, value
    kAddMessage,         ///< task, target, value=bytes, value2=deadline,
                         ///< jitter
    kRemoveMessage,      ///< task, index
    kSeparate,           ///< task, target
    kUnseparate,         ///< task, target
  };

  Kind kind = Kind::kSetWcet;
  std::string task;    ///< primary task (by name)
  std::string target;  ///< message receiver / separation partner
  int ecu = -1;        ///< kSetWcet
  int index = -1;      ///< per-sender message index
  std::int64_t value = 0;
  std::int64_t value2 = 0;
  std::int64_t jitter = 0;
  std::int64_t memory = 0;
  std::vector<std::int64_t> wcet;  ///< kAddTask: per-ECU WCETs

  /// Short human-readable form ("set_wcet sensor@0=12") for logs.
  std::string describe() const;
};

struct InstancePatch {
  std::vector<PatchOp> ops;
  bool empty() const { return ops.empty(); }
};

/// Parse the wire form: a JSON array of op objects, e.g.
///   [{"op":"set_wcet","task":"sensor","ecu":0,"wcet":12},
///    {"op":"separate","task":"ctrl","target":"ctrl_backup"}]
/// Returns nullopt (with *error set) on malformed input; structural
/// validity against a concrete problem is checked by apply_patch.
std::optional<InstancePatch> parse_patch(const obs::JsonValue& edits,
                                         std::string* error);

/// Apply all ops in order. Returns an error message on the first invalid
/// op (unknown task, bad index, duplicate name...); the problem may then
/// reflect a prefix of the patch, so callers should apply to a copy.
std::optional<std::string> apply_patch(const InstancePatch& patch,
                                       alloc::Problem& problem);

}  // namespace optalloc::inc

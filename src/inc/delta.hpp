#pragma once
// EncodingDelta: the diff between two consecutive grouped encodings of a
// session's instance, computed over the shared hash-consed IR. Because
// the backend interns operator nodes (ir::Context) and the session
// interns variables by name (EncoderBackend registries), an unchanged
// constraint re-encodes to the *same* NodeId — so "did this group
// change?" is a set comparison of NodeIds, no structural walk needed. A
// change anywhere propagates automatically: if task B's variables change,
// every formula mentioning them hash-conses to a new node, so every
// affected group shows up changed.

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "alloc/encoder.hpp"
#include "sat/solver.hpp"

namespace optalloc::inc {

/// A live constraint group: its activation literal and the sorted,
/// deduplicated formula set asserted under it.
struct Group {
  sat::Lit guard = sat::kUndefLit;
  std::vector<ir::NodeId> formulas;
};

using GroupMap = std::map<std::string, Group>;

struct EncodingDelta {
  /// Groups to assert under a fresh guard (new, or changed in any way).
  std::vector<std::string> added;
  /// Groups to retract via the unit clause ¬guard (removed or changed —
  /// a changed group appears in both lists).
  std::vector<std::string> retired;
  std::size_t unchanged = 0;
  /// The new build's formula sets, sorted and deduplicated, by group.
  std::map<std::string, std::vector<ir::NodeId>> next;
};

/// Diff a freshly recorded build against the live groups. Re-asserting a
/// changed group is cheap: the bit-blaster's memoization means only
/// clauses for genuinely new subcircuits are emitted.
EncodingDelta diff_groups(const GroupMap& live,
                          std::span<const alloc::GroupedFormula> build);

}  // namespace optalloc::inc

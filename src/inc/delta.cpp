#include "inc/delta.hpp"

#include <algorithm>

namespace optalloc::inc {

EncodingDelta diff_groups(const GroupMap& live,
                          std::span<const alloc::GroupedFormula> build) {
  EncodingDelta delta;
  for (const alloc::GroupedFormula& gf : build) {
    delta.next[gf.group].push_back(gf.formula);
  }
  for (auto& [name, formulas] : delta.next) {
    std::sort(formulas.begin(), formulas.end());
    formulas.erase(std::unique(formulas.begin(), formulas.end()),
                   formulas.end());
  }
  for (const auto& [name, group] : live) {
    const auto it = delta.next.find(name);
    if (it == delta.next.end()) {
      delta.retired.push_back(name);
    } else if (it->second != group.formulas) {
      delta.retired.push_back(name);
      delta.added.push_back(name);
    } else {
      ++delta.unchanged;
    }
  }
  for (const auto& [name, formulas] : delta.next) {
    if (!live.contains(name)) delta.added.push_back(name);
  }
  return delta;
}

}  // namespace optalloc::inc

#pragma once
// CoreExplainer: maps an assumption-level unsat core (activation-literal
// conflict) back to the named problem constraints it blames, and
// deletion-minimizes the result so "these 3 constraints conflict" is as
// tight as a bounded effort allows. Group names are the encoder's
// constraint-group labels ("task:sensor", "separate:a:b",
// "memory:ecu2", "message:sensor.0", "priorities", "objective").

#include <span>
#include <string>
#include <vector>

#include "inc/delta.hpp"
#include "sat/solver.hpp"

namespace optalloc::inc {

class CoreExplainer {
 public:
  CoreExplainer(sat::Solver& solver, const GroupMap& groups);

  /// Named groups whose guards appear (negated) in a conflict core.
  /// Sorted and deduplicated; literals that are not group guards (e.g. a
  /// cost-bound assumption) are dropped.
  std::vector<std::string> explain(std::span<const sat::Lit> core) const;

  /// Deletion-minimization: for each member, re-solve with the remaining
  /// guards; if still unsat, drop it (and shrink to the new core). Each
  /// probe is bounded by `per_probe`; an inconclusive probe keeps the
  /// member. The result is still a genuine conflict, just possibly
  /// non-minimal when budgets bite.
  std::vector<std::string> minimize(std::vector<std::string> core,
                                    sat::Budget per_probe);

  /// True iff assuming exactly these groups' guards is unsatisfiable —
  /// i.e. the named constraints genuinely conflict on their own.
  bool is_conflicting(std::span<const std::string> core);

 private:
  std::vector<sat::Lit> guards_of(std::span<const std::string> names) const;

  sat::Solver& solver_;
  const GroupMap& groups_;
};

}  // namespace optalloc::inc

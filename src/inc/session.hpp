#pragma once
// Incremental re-solve sessions: a live, assumption-guarded solver per
// client session, re-solving instance edits against the encoding *delta*
// instead of from scratch — the paper's Section 7 "factor of 2 and more"
// projection, extended from cost bounds to whole constraint groups.
//
// How an edit flows through:
//   1. The patch is applied to the instance (inc/patch.hpp).
//   2. The instance is re-encoded over the session's persistent backend
//      (alloc::EncoderBackend). Hash-consing + the variable registries
//      make this an IR-level no-op for everything unchanged, so the
//      grouped formula lists come out NodeId-identical except where the
//      edit actually bit.
//   3. diff_groups (inc/delta.hpp) yields retired/added groups. Retired
//      groups die by the unit clause ¬guard; added groups are asserted
//      under a fresh activation literal (BitBlaster::assert_guarded).
//      Learned clauses, phase saves, and VSIDS activity all survive:
//      the clause database only ever grows, so every learnt remains
//      implied.
//   4. The binary search warm-starts at the previous optimum: one probe
//      at cost <= C* decides whether the edit kept, improved, or
//      regressed the optimum, and the search continues from there.
//   5. An infeasible edit yields an assumption-level unsat core over the
//      activation literals, mapped back to named constraints and
//      deletion-minimized (inc/core_explain.hpp).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "alloc/encoder.hpp"
#include "alloc/problem.hpp"
#include "inc/core_explain.hpp"
#include "inc/delta.hpp"
#include "inc/patch.hpp"
#include "rt/model.hpp"
#include "sat/solver.hpp"

namespace optalloc::inc {

/// Per-solve resource limits (all optional).
struct SolveLimits {
  double deadline_s = 0.0;     ///< wall-clock budget; 0 = unlimited
  std::int64_t conflicts = 0;  ///< per SAT call; 0 = unlimited
  const std::atomic<bool>* stop = nullptr;  ///< cooperative cancellation
};

struct SessionResult {
  enum class Status { kOptimal, kInfeasible, kFeasible, kUnknown, kError };
  Status status = Status::kUnknown;
  bool proven_optimal = false;
  std::int64_t cost = -1;
  std::int64_t lower_bound = 0;
  bool has_allocation = false;
  rt::Allocation allocation;
  /// Infeasible edits: named constraint groups that conflict.
  std::vector<std::string> core;
  /// kError: what went wrong (bad patch, invalid instance).
  std::string error;

  // Delta and search statistics for this solve.
  int sat_calls = 0;
  std::int64_t conflicts = 0;
  double seconds = 0.0;
  int groups_added = 0;
  int groups_retired = 0;
  std::size_t groups_unchanged = 0;
  std::int64_t clauses_added = 0;

  static const char* status_name(Status s);
};

struct SessionOptions {
  encode::Backend backend = encode::Backend::kCnf;
  bool free_tie_priorities = true;
  /// Deletion-minimize unsat cores (bounded by core_probe per probe).
  bool minimize_cores = true;
  sat::Budget core_probe = sat::Budget{20000, 1.0, nullptr};
};

class Session {
 public:
  Session(alloc::Problem problem, alloc::Objective objective,
          SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// (Re-)solve the current instance. The first call encodes everything;
  /// later calls (after revise) re-solve the delta.
  SessionResult solve(const SolveLimits& limits = {});

  /// Apply a patch and re-solve. A patch that fails validation leaves
  /// the instance untouched and returns kError.
  SessionResult revise(const InstancePatch& patch,
                       const SolveLimits& limits = {});

  const alloc::Problem& problem() const { return problem_; }
  alloc::Objective objective() const { return objective_; }

  /// Check that the named groups genuinely conflict (re-solves with only
  /// their guards assumed). Used by the differential tests.
  bool core_is_conflicting(std::span<const std::string> core);

  // --- Capacity accounting --------------------------------------------
  // Retired guards stay in the clause database as dead weight (their
  // clauses are vacuously satisfied, never reclaimed); the ROADMAP's
  // compaction trigger needs this fraction measured, and the resource
  // registry ("inc.guards" / "inc.dead_guards") exposes it process-wide.

  /// Constraint groups currently guarded alive.
  std::size_t live_guards() const { return groups_.size(); }

  /// Guards retired over this session's lifetime.
  std::int64_t retired_guards() const { return retired_guards_; }

  /// retired / (retired + live); 0 for an empty session.
  double dead_guard_fraction() const;

 private:
  /// Rebuild the encoding over the backend and apply the group delta.
  /// Returns false (with out.status = kError) on an invalid instance.
  bool sync_encoding(SessionResult& out);

  alloc::Problem problem_;
  alloc::Objective objective_;
  SessionOptions options_;
  alloc::EncoderBackend backend_;
  /// Rebuilt per solve; holds a reference to problem_, so it is reset
  /// before every instance mutation.
  std::unique_ptr<alloc::AllocEncoder> encoder_;
  GroupMap groups_;
  std::vector<sat::Lit> guard_assumptions_;
  std::optional<std::int64_t> prev_optimum_;
  std::int64_t retired_guards_ = 0;
  obs::ResourceTracker guards_res_{obs::resource("inc.guards")};
  obs::ResourceTracker dead_guards_res_{obs::resource("inc.dead_guards")};
};

}  // namespace optalloc::inc

#include "check/model.hpp"

#include "sat/proof.hpp"

namespace optalloc::check {
namespace {

bool lit_true(const sat::Solver& solver, sat::Lit l) {
  return solver.model_value(l) == sat::LBool::kTrue;
}

}  // namespace

ModelResult check_model(const ir::Context& ctx,
                        std::span<const ir::NodeId> asserted,
                        const encode::BitBlaster& blaster,
                        const sat::Solver& solver,
                        const pb::PbPropagator* pb) {
  ModelResult res;

  // Decode every variable of the IR into an evaluator assignment.
  ir::Evaluator eval(ctx);
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const auto id = static_cast<ir::NodeId>(static_cast<std::int32_t>(i));
    const ir::Node& n = ctx.node(id);
    if (n.op == ir::Op::kIntVar) {
      const std::int64_t v =
          blaster.has_int(id) ? blaster.int_value(id) : n.range.lo;
      if (!n.range.contains(v)) {
        res.error = "decoded value " + std::to_string(v) + " of '" +
                    ctx.name(id) + "' escapes its declared range [" +
                    std::to_string(n.range.lo) + ", " +
                    std::to_string(n.range.hi) + "]";
        return res;
      }
      eval.set_int(id, v);
    } else if (n.op == ir::Op::kBoolVar) {
      eval.set_bool(id, blaster.has_bool(id) && blaster.bool_value(id));
    }
  }

  for (const ir::NodeId f : asserted) {
    if (!eval.eval_bool(f)) {
      res.error = "asserted formula evaluates to false on the decoded "
                  "model: " +
                  ctx.to_string(f);
      return res;
    }
    ++res.formulas_checked;
  }

  const auto value = [&](sat::Lit l) { return lit_true(solver, l); };
  if (pb != nullptr) {
    for (std::size_t i = 0; i < pb->num_constraints(); ++i) {
      if (!pb::satisfied(pb->constraint(i), value)) {
        res.error = "model violates PB constraint " + std::to_string(i);
        return res;
      }
      ++res.pb_checked;
    }
  }
  // PB axioms in the proof log are a superset of the watched constraints
  // (they include constraints folded into units at add() time).
  if (const sat::ProofLog* proof = solver.proof()) {
    for (std::size_t i = 0; i < proof->pb_constraints().size(); ++i) {
      const sat::ProofPbConstraint& c = proof->pb_constraints()[i];
      std::int64_t lhs = 0;
      for (const sat::ProofPbTerm& t : c.terms) {
        if (lit_true(solver, t.lit)) lhs += t.coef;
      }
      if (lhs < c.rhs) {
        res.error = "model violates logged PB axiom " + std::to_string(i);
        return res;
      }
      ++res.pb_checked;
    }
  }
  res.ok = true;
  return res;
}

}  // namespace optalloc::check

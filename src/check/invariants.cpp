#include "check/invariants.hpp"

namespace optalloc::check {

std::string AuditReport::summary() const {
  if (ok) return "consistent";
  std::string s = std::to_string(violations.size()) + " violation(s)";
  for (const std::string& v : violations) {
    s += "\n  - ";
    s += v;
  }
  return s;
}

AuditReport audit_solver_state(const sat::Solver& solver,
                               const pb::PbPropagator* pb) {
  AuditReport report;
  if (!solver.audit(&report.violations)) report.ok = false;
  if (pb != nullptr && !pb->audit(&report.violations)) report.ok = false;
  return report;
}

}  // namespace optalloc::check

#pragma once
// Model certifier: replays a SAT answer against the constraints *as they
// were stated*, not as they were encoded. Two layers:
//
//   * pseudo-Boolean: every constraint held by the native propagator (and
//     every PB axiom registered in the proof log, which additionally covers
//     constraints folded into units at construction time) is evaluated
//     under the solver model;
//   * integer: every asserted IR formula is re-evaluated by ir::Evaluator
//     on the *decoded* integer/Boolean values — this crosses the bit-blast
//     boundary, so a bug in the Tseitin decomposition, the adder/multiplier
//     gates or the value decoder shows up as a certification failure even
//     though the solver's model is propositionally consistent.
//
// Variables never touched by the encoding are unconstrained; they are
// assigned their lower bound (integers) / false (Booleans) for evaluation.

#include <span>
#include <string>
#include <vector>

#include "encode/bitblast.hpp"
#include "ir/expr.hpp"
#include "pb/propagator.hpp"
#include "sat/solver.hpp"

namespace optalloc::check {

struct ModelResult {
  bool ok = false;
  std::string error;                 ///< first failure, human-readable
  std::size_t formulas_checked = 0;  ///< IR formulas evaluated
  std::size_t pb_checked = 0;        ///< PB constraints evaluated
};

/// Certify the solver's current model (solver.model_value) against the
/// asserted IR formulas and the PB constraint store. `pb` may be null when
/// no native PB propagation is in use. Call only after solve() == kTrue.
ModelResult check_model(const ir::Context& ctx,
                        std::span<const ir::NodeId> asserted,
                        const encode::BitBlaster& blaster,
                        const sat::Solver& solver,
                        const pb::PbPropagator* pb);

}  // namespace optalloc::check

#pragma once
// Independent backward RUP proof checker for the extended-DRAT logs
// produced by sat::ProofLog. "Independent" means: the checker shares no
// state or code with the solver's propagation engine — it re-derives every
// target lemma from the logged clause database by its own unit propagation,
// so a bug in the solver's watch lists, conflict analysis or clause
// minimization cannot vouch for itself.
//
// Checking discipline (drat-trim style backward checking):
//   * forward pass: build the clause DB with per-clause [add, delete)
//     liveness intervals (unmatched deletions are ignored — sound, since
//     the checker is RUP-only and every DB clause is entailed);
//   * mark the target lemmas (by default: every empty lemma, or the last
//     lemma when none is empty — callers with assumption cores pass the
//     core steps explicitly);
//   * backward pass: for each marked lemma, assert its negation and unit
//     propagate over the clauses live at that point; the propagation must
//     close with a conflict, and the clauses it used are marked in turn.
//   * marked theory (`t`) lemmas are verified as clausal weakenings of a
//     logged PB axiom: C is implied by  sum a_i l_i >= k  iff the maximum
//     of the left-hand side over assignments falsifying C is below k.
//
// What a PASS means: every target lemma is entailed by the `i` input
// clauses plus the `p` PB axioms. Input lines themselves are trusted —
// whether they faithfully encode the allocation problem is the model
// certifier's job (see check/model.hpp and the threat model in DESIGN.md).

#include <cstddef>
#include <span>
#include <string>

#include "sat/proof.hpp"

namespace optalloc::check {

struct DratResult {
  bool ok = false;
  std::string error;              ///< first failure, human-readable
  std::size_t lemmas_checked = 0; ///< RUP lemmas actually verified
  std::size_t theory_checked = 0; ///< theory lemmas verified against axioms
  std::size_t db_clauses = 0;     ///< clause DB size after the forward pass
};

/// Verify `targets` (step indices of kLemma steps in `log`; empty = the
/// default target rule above). Returns ok=false with a diagnostic if any
/// marked lemma fails its check or the log is malformed.
DratResult check_proof(const sat::ProofLog& log,
                       std::span<const std::size_t> targets = {});

/// Strict mode: verify every lemma in the log, not just those a target
/// depends on. Every clause the solver ever learns is RUP at the moment it
/// is derived, so a healthy log always passes — and a corrupted lemma is
/// caught even when the final answer happens not to depend on it. Used by
/// the standalone drat_check tool and the fault-injection tests.
DratResult check_proof_all(const sat::ProofLog& log);

}  // namespace optalloc::check

#include "check/drat.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace optalloc::check {
namespace {

using sat::Lit;
using sat::ProofLog;
using sat::ProofStep;
using sat::ProofStepKind;

constexpr std::uint32_t kNoClause = 0xFFFFFFFFu;
constexpr std::size_t kNever = static_cast<std::size_t>(-1);

struct DbClause {
  std::uint32_t begin = 0;  ///< into Checker::pool_
  std::uint32_t end = 0;
  std::size_t add_step = 0;
  std::size_t delete_step = kNever;
  ProofStepKind kind = ProofStepKind::kInput;
  bool marked = false;
};

class Checker {
 public:
  explicit Checker(const ProofLog& log) : log_(log) {}

  DratResult run(std::span<const std::size_t> targets, bool all_lemmas) {
    DratResult res;
    if (!build_db(&res)) return res;
    res.db_clauses = clauses_.size();
    if (all_lemmas) {
      for (DbClause& c : clauses_) {
        if (c.kind != ProofStepKind::kInput) c.marked = true;
      }
    } else if (!mark_targets(targets, &res)) {
      return res;
    }

    // Backward pass: verify marked lemmas last-to-first. A check only ever
    // marks clauses added earlier, so everything marked is eventually
    // either verified (lemma/theory) or trusted (input/axiom).
    for (std::size_t s = log_.num_steps(); s-- > 0;) {
      const std::uint32_t cid = step_clause_[s];
      if (cid == kNoClause || !clauses_[cid].marked) continue;
      if (clauses_[cid].kind == ProofStepKind::kLemma) {
        if (!check_rup(cid, &res)) return res;
        ++res.lemmas_checked;
      } else if (clauses_[cid].kind == ProofStepKind::kTheory) {
        if (!check_weakening(cid, &res)) return res;
        ++res.theory_checked;
      }
    }
    res.ok = true;
    return res;
  }

 private:
  std::span<const Lit> lits(const DbClause& c) const {
    return {pool_.data() + c.begin, pool_.data() + c.end};
  }

  bool fail(DratResult* res, std::string msg) {
    res->ok = false;
    res->error = std::move(msg);
    return false;
  }

  bool build_db(DratResult* res) {
    // Deletions match clauses by literal multiset; the key is the sorted
    // literal vector, the bucket a stack of clause ids.
    std::map<std::vector<Lit>, std::vector<std::uint32_t>> by_lits;
    std::vector<Lit> key;
    std::int32_t max_var = -1;
    for (const sat::ProofPbConstraint& c : log_.pb_constraints()) {
      for (const sat::ProofPbTerm& t : c.terms) {
        max_var = std::max(max_var, t.lit.var());
        if (t.coef <= 0) {
          return fail(res, "PB axiom with non-positive coefficient");
        }
      }
    }

    step_clause_.assign(log_.num_steps(), kNoClause);
    for (std::size_t s = 0; s < log_.num_steps(); ++s) {
      const ProofStep& step = log_.step(s);
      const std::span<const Lit> ls = log_.lits(step);
      for (const Lit l : ls) max_var = std::max(max_var, l.var());
      key.assign(ls.begin(), ls.end());
      std::sort(key.begin(), key.end());
      if (step.kind == ProofStepKind::kDelete) {
        // Unmatched deletions are ignored (sound for a RUP-only checker).
        const auto it = by_lits.find(key);
        if (it != by_lits.end()) {
          for (std::size_t i = it->second.size(); i-- > 0;) {
            DbClause& c = clauses_[it->second[i]];
            if (c.delete_step == kNever) {
              c.delete_step = s;
              it->second.erase(it->second.begin() +
                               static_cast<std::ptrdiff_t>(i));
              break;
            }
          }
        }
        continue;
      }
      DbClause c;
      c.begin = static_cast<std::uint32_t>(pool_.size());
      pool_.insert(pool_.end(), ls.begin(), ls.end());
      c.end = static_cast<std::uint32_t>(pool_.size());
      c.add_step = s;
      c.kind = step.kind;
      const auto cid = static_cast<std::uint32_t>(clauses_.size());
      clauses_.push_back(c);
      step_clause_[s] = cid;
      by_lits[key].push_back(cid);
    }

    const std::size_t nvars = static_cast<std::size_t>(max_var) + 1;
    vals_.assign(nvars, 0);
    reason_.assign(nvars, kNoClause);
    occs_.assign(2 * nvars, {});
    for (std::uint32_t cid = 0; cid < clauses_.size(); ++cid) {
      const DbClause& c = clauses_[cid];
      if (c.end == c.begin) {
        empty_.push_back(cid);
      } else if (c.end - c.begin == 1) {
        units_.push_back(cid);
      }
      for (const Lit l : lits(c)) {
        occs_[static_cast<std::size_t>(l.index())].push_back(cid);
      }
    }
    return true;
  }

  bool mark_targets(std::span<const std::size_t> targets, DratResult* res) {
    if (!targets.empty()) {
      for (const std::size_t s : targets) {
        if (s >= log_.num_steps() || step_clause_[s] == kNoClause ||
            clauses_[step_clause_[s]].kind != ProofStepKind::kLemma) {
          return fail(res, "target step " + std::to_string(s) +
                               " is not a lemma");
        }
        clauses_[step_clause_[s]].marked = true;
      }
      return true;
    }
    bool found = false;
    std::uint32_t last_lemma = kNoClause;
    for (std::uint32_t cid = 0; cid < clauses_.size(); ++cid) {
      if (clauses_[cid].kind != ProofStepKind::kLemma) continue;
      last_lemma = cid;
      if (clauses_[cid].begin == clauses_[cid].end) {
        clauses_[cid].marked = true;
        found = true;
      }
    }
    if (!found) {
      if (last_lemma == kNoClause) {
        return fail(res, "proof contains no lemma to check");
      }
      clauses_[last_lemma].marked = true;
    }
    return true;
  }

  // -- RUP check ---------------------------------------------------------

  bool live_at(const DbClause& c, std::size_t s) const {
    return c.add_step < s && c.delete_step > s;
  }

  enum LitVal : signed char { kFalse = -1, kUnset = 0, kTrue = 1 };

  LitVal val(Lit l) const {
    const signed char v = vals_[static_cast<std::size_t>(l.var())];
    if (v == 0) return kUnset;
    return (v > 0) != l.sign() ? kTrue : kFalse;
  }

  void assign(Lit l, std::uint32_t why) {
    vals_[static_cast<std::size_t>(l.var())] =
        static_cast<signed char>(l.sign() ? -1 : 1);
    reason_[static_cast<std::size_t>(l.var())] = why;
    trail_.push_back(l);
  }

  void undo() {
    for (const Lit l : trail_) {
      vals_[static_cast<std::size_t>(l.var())] = 0;
      reason_[static_cast<std::size_t>(l.var())] = kNoClause;
    }
    trail_.clear();
  }

  /// Mark the conflict clause and, transitively, every reason clause that
  /// supports the propagation chain leading into it.
  void mark_used(std::uint32_t confl) {
    std::vector<Lit> todo(lits(clauses_[confl]).begin(),
                          lits(clauses_[confl]).end());
    clauses_[confl].marked = true;
    std::vector<char> visited(vals_.size(), 0);
    while (!todo.empty()) {
      const Lit l = todo.back();
      todo.pop_back();
      const auto v = static_cast<std::size_t>(l.var());
      if (visited[v]) continue;
      visited[v] = 1;
      const std::uint32_t r = reason_[v];
      if (r == kNoClause) continue;
      clauses_[r].marked = true;
      const auto rl = lits(clauses_[r]);
      todo.insert(todo.end(), rl.begin(), rl.end());
    }
  }

  /// Assert the negation of clause `cid` and unit propagate over the DB as
  /// it stood at the clause's add step; succeed iff that closes with a
  /// conflict (or the clause is a tautology).
  bool check_rup(std::uint32_t cid, DratResult* res) {
    const DbClause& target = clauses_[cid];
    const std::size_t s = target.add_step;
    std::uint32_t confl = kNoClause;

    for (const Lit l : lits(target)) {
      if (val(l) == kTrue) {  // tautological target: vacuously implied
        undo();
        return true;
      }
      if (val(l) == kUnset) assign(~l, kNoClause);
    }
    for (const std::uint32_t e : empty_) {
      if (live_at(clauses_[e], s)) {
        confl = e;
        break;
      }
    }
    for (std::size_t u = 0; confl == kNoClause && u < units_.size(); ++u) {
      const std::uint32_t ucid = units_[u];
      if (!live_at(clauses_[ucid], s)) continue;
      const Lit l = lits(clauses_[ucid])[0];
      if (val(l) == kFalse) {
        confl = ucid;
      } else if (val(l) == kUnset) {
        assign(l, ucid);
      }
    }
    for (std::size_t head = 0; confl == kNoClause && head < trail_.size();
         ++head) {
      const Lit falsified = ~trail_[head];
      for (const std::uint32_t wcid :
           occs_[static_cast<std::size_t>(falsified.index())]) {
        if (!live_at(clauses_[wcid], s)) continue;
        Lit unit = sat::kUndefLit;
        bool determined = true;  // no true literal, <= 1 unset
        for (const Lit l : lits(clauses_[wcid])) {
          const LitVal v = val(l);
          if (v == kTrue) {
            determined = false;
            break;
          }
          if (v == kUnset) {
            if (unit != sat::kUndefLit && unit != l) {
              determined = false;
              break;
            }
            unit = l;
          }
        }
        if (!determined) continue;
        if (unit == sat::kUndefLit) {
          confl = wcid;
          break;
        }
        assign(unit, wcid);
      }
    }
    if (confl == kNoClause) {
      undo();
      return fail(res, "lemma at step " + std::to_string(s) +
                           " is not RUP (propagation closed without "
                           "conflict)");
    }
    mark_used(confl);
    undo();
    return true;
  }

  // -- Theory weakening check -------------------------------------------

  /// C is implied by  sum a_i l_i >= k  iff assigning every literal of C
  /// false caps the achievable left-hand side below k. Terms whose literal
  /// is in C contribute 0; all others (including negations of C literals,
  /// which ~C forces true) can contribute their coefficient.
  bool check_weakening(std::uint32_t cid, DratResult* res) {
    const auto cl = lits(clauses_[cid]);
    for (const Lit l : cl) {
      if (std::find(cl.begin(), cl.end(), ~l) != cl.end()) return true;
    }
    for (const sat::ProofPbConstraint& axiom : log_.pb_constraints()) {
      std::int64_t max_lhs = 0;
      for (const sat::ProofPbTerm& t : axiom.terms) {
        if (std::find(cl.begin(), cl.end(), t.lit) == cl.end()) {
          max_lhs += t.coef;
        }
      }
      if (max_lhs < axiom.rhs) return true;
    }
    return fail(res, "theory lemma at step " +
                         std::to_string(clauses_[cid].add_step) +
                         " is not a weakening of any logged PB axiom");
  }

  const ProofLog& log_;
  std::vector<DbClause> clauses_;
  std::vector<Lit> pool_;
  std::vector<std::uint32_t> step_clause_;  ///< step idx -> clause id
  std::vector<std::vector<std::uint32_t>> occs_;
  std::vector<std::uint32_t> units_;
  std::vector<std::uint32_t> empty_;
  // Per-check propagation state (reset by undo()).
  std::vector<signed char> vals_;
  std::vector<std::uint32_t> reason_;
  std::vector<Lit> trail_;
};

}  // namespace

DratResult check_proof(const sat::ProofLog& log,
                       std::span<const std::size_t> targets) {
  return Checker(log).run(targets, /*all_lemmas=*/false);
}

DratResult check_proof_all(const sat::ProofLog& log) {
  return Checker(log).run({}, /*all_lemmas=*/true);
}

}  // namespace optalloc::check

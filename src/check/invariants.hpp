#pragma once
// Aggregated solver-state invariant audit: the CDCL core's structural
// invariants (watch lists, trail, reasons, learnt clauses) plus the PB
// propagator's cached-slack consistency, collected into one report so
// tests and debug hooks have a single entry point.

#include <string>
#include <vector>

#include "pb/propagator.hpp"
#include "sat/solver.hpp"

namespace optalloc::check {

struct AuditReport {
  bool ok = true;
  std::vector<std::string> violations;

  std::string summary() const;
};

/// Run every available auditor. `pb` may be null.
AuditReport audit_solver_state(const sat::Solver& solver,
                               const pb::PbPropagator* pb);

}  // namespace optalloc::check

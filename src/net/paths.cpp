#include "net/paths.hpp"

#include <algorithm>
#include <set>

namespace optalloc::net {

std::vector<std::string> validate_topology(const rt::Architecture& arch) {
  std::vector<std::string> problems;
  const auto num_media = static_cast<int>(arch.media.size());
  for (int m = 0; m < num_media; ++m) {
    const rt::Medium& medium = arch.media[static_cast<std::size_t>(m)];
    std::set<int> seen;
    for (const int e : medium.ecus) {
      if (e < 0 || e >= arch.num_ecus) {
        problems.push_back("medium " + medium.name + ": ECU out of range");
      }
      if (!seen.insert(e).second) {
        problems.push_back("medium " + medium.name + ": duplicate ECU " +
                           std::to_string(e));
      }
    }
  }
  for (int m1 = 0; m1 < num_media; ++m1) {
    for (int m2 = m1 + 1; m2 < num_media; ++m2) {
      int shared = 0;
      for (const int e : arch.media[static_cast<std::size_t>(m1)].ecus) {
        if (arch.media[static_cast<std::size_t>(m2)].connects(e)) ++shared;
      }
      if (shared > 1) {
        problems.push_back(
            "media " + arch.media[static_cast<std::size_t>(m1)].name +
            " and " + arch.media[static_cast<std::size_t>(m2)].name +
            " share " + std::to_string(shared) +
            " gateways (at most one allowed)");
      }
    }
  }
  return problems;
}

PathClosures::PathClosures(const rt::Architecture& arch) : arch_(arch) {
  const auto num_media = static_cast<int>(arch.media.size());

  // Adjacency: media sharing a gateway ECU.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_media));
  for (int m1 = 0; m1 < num_media; ++m1) {
    for (int m2 = 0; m2 < num_media; ++m2) {
      if (m1 != m2 && arch.gateway_between(m1, m2) >= 0) {
        adj[static_cast<std::size_t>(m1)].push_back(m2);
      }
    }
  }

  // DFS for all maximal simple paths from every start medium.
  std::vector<char> on_path(static_cast<std::size_t>(num_media), 0);
  Path current;
  std::set<Path> route_set;
  route_set.insert(Path{});  // ph0: the empty closure

  auto dfs = [&](auto&& self, int medium) -> void {
    on_path[static_cast<std::size_t>(medium)] = 1;
    current.push_back(medium);
    route_set.insert(current);
    bool extended = false;
    for (const int next : adj[static_cast<std::size_t>(medium)]) {
      if (!on_path[static_cast<std::size_t>(next)]) {
        extended = true;
        self(self, next);
      }
    }
    if (!extended) maximal_.push_back(current);
    current.pop_back();
    on_path[static_cast<std::size_t>(medium)] = 0;
  };
  for (int m = 0; m < num_media; ++m) dfs(dfs, m);

  routes_.assign(route_set.begin(), route_set.end());
  // Order: empty route first, then by length, then lexicographically —
  // std::set's vector ordering already puts {} first and sorts lexically;
  // re-sort by (length, lex) for a stable human-friendly order.
  std::sort(routes_.begin(), routes_.end(), [](const Path& a, const Path& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
}

bool PathClosures::valid_endpoints(const Path& h, int src, int dst) const {
  if (h.empty()) return src == dst;
  if (src == dst) return false;
  const rt::Medium& first = arch_.media[static_cast<std::size_t>(h.front())];
  const rt::Medium& last = arch_.media[static_cast<std::size_t>(h.back())];
  if (!first.connects(src) || !last.connects(dst)) return false;
  if (h.size() >= 2) {
    // v(h) side conditions: endpoints must not lie on the adjacent inner
    // medium, otherwise a strictly shorter route exists.
    if (arch_.media[static_cast<std::size_t>(h[1])].connects(src)) {
      return false;
    }
    if (arch_.media[static_cast<std::size_t>(h[h.size() - 2])].connects(dst)) {
      return false;
    }
  }
  return true;
}

std::vector<int> PathClosures::routes_between(int src, int dst) const {
  std::vector<int> result;
  for (int i = 0; i < static_cast<int>(routes_.size()); ++i) {
    if (valid_endpoints(routes_[static_cast<std::size_t>(i)], src, dst)) {
      result.push_back(i);
    }
  }
  return result;
}

int PathClosures::leg_station(const Path& h, std::size_t l, int src) const {
  if (l == 0) return src;
  return arch_.gateway_between(h[l - 1], h[l]);
}

std::string PathClosures::describe() const {
  std::string out;
  out += "path closures (" + std::to_string(maximal_.size()) +
         " maximal paths, " + std::to_string(routes_.size()) +
         " routes incl. empty):\n";
  for (const Path& p : maximal_) {
    out += "  ph{";
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (i) out += " -> ";
      out += arch_.media[static_cast<std::size_t>(p[i])].name;
    }
    out += "}  sub-paths:";
    for (std::size_t len = 1; len <= p.size(); ++len) {
      out += " \"";
      for (std::size_t i = 0; i < len; ++i) {
        out += arch_.media[static_cast<std::size_t>(p[i])].name;
      }
      out += "\"";
    }
    out += "\n";
  }
  return out;
}

}  // namespace optalloc::net

#include "net/dot.hpp"

#include <sstream>

namespace optalloc::net {

namespace {

void emit_header(std::ostream& out) {
  out << "graph architecture {\n"
      << "  graph [compound=true, fontname=\"Helvetica\"];\n"
      << "  node [fontname=\"Helvetica\", shape=circle];\n";
}

void emit_media_clusters(std::ostream& out, const rt::Architecture& arch,
                         const std::vector<std::string>& ecu_labels) {
  // Each ECU node is emitted once, inside the cluster of its first medium;
  // membership in further media is drawn as a gateway edge to the medium
  // anchor.
  std::vector<char> emitted(static_cast<std::size_t>(arch.num_ecus), 0);
  for (std::size_t m = 0; m < arch.media.size(); ++m) {
    const rt::Medium& medium = arch.media[m];
    out << "  subgraph cluster_" << m << " {\n"
        << "    label=\"" << medium.name << " ("
        << (medium.type == rt::MediumType::kTokenRing ? "token ring" : "CAN")
        << ")\";\n"
        << "    style=rounded;\n";
    for (const int e : medium.ecus) {
      if (emitted[static_cast<std::size_t>(e)]) continue;
      emitted[static_cast<std::size_t>(e)] = 1;
      out << "    ecu" << e << " [label=\""
          << ecu_labels[static_cast<std::size_t>(e)] << "\"";
      if (arch.is_gateway(e)) out << ", shape=doublecircle";
      if (!arch.can_host_tasks(e)) {
        out << ", style=filled, fillcolor=lightgray";
      }
      out << "];\n";
    }
    out << "  }\n";
  }
  // Gateway membership edges for ECUs that sit on several media: connect
  // the gateway node to one representative node of every further medium.
  for (int e = 0; e < arch.num_ecus; ++e) {
    const auto media = arch.media_of(e);
    for (std::size_t i = 1; i < media.size(); ++i) {
      const rt::Medium& medium =
          arch.media[static_cast<std::size_t>(media[i])];
      for (const int other : medium.ecus) {
        if (other != e) {
          out << "  ecu" << e << " -- ecu" << other
              << " [style=dashed, label=\"gw\"];\n";
          break;
        }
      }
    }
  }
}

}  // namespace

std::string to_dot(const rt::Architecture& arch) {
  std::ostringstream out;
  emit_header(out);
  std::vector<std::string> labels;
  for (int e = 0; e < arch.num_ecus; ++e) {
    labels.push_back("p" + std::to_string(e));
  }
  emit_media_clusters(out, arch, labels);
  out << "}\n";
  return out.str();
}

std::string to_dot(const rt::TaskSet& tasks, const rt::Architecture& arch,
                   const rt::Allocation& allocation) {
  std::ostringstream out;
  emit_header(out);
  // ECU labels list their tasks.
  std::vector<std::string> labels;
  for (int e = 0; e < arch.num_ecus; ++e) {
    std::string label = "p" + std::to_string(e);
    for (std::size_t i = 0; i < tasks.tasks.size(); ++i) {
      if (allocation.task_ecu[i] == e) {
        label += "\\n" + tasks.tasks[i].name;
      }
    }
    labels.push_back(std::move(label));
  }
  emit_media_clusters(out, arch, labels);
  // Message edges sender -> receiver (undirected graph: annotate).
  const auto refs = tasks.message_refs();
  for (std::size_t g = 0; g < refs.size(); ++g) {
    const int src = allocation.task_ecu[static_cast<std::size_t>(
        refs[g].task)];
    const int dst = allocation.task_ecu[static_cast<std::size_t>(
        tasks.message(refs[g]).target_task)];
    if (src == dst) continue;
    out << "  ecu" << src << " -- ecu" << dst
        << " [color=blue, label=\"m" << g << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace optalloc::net

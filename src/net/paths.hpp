#pragma once
// Path closures over hierarchical architectures (paper Section 4, Fig. 1).
//
// The media of an architecture form a graph: nodes are communication media,
// and two media are adjacent when they share a gateway ECU (the paper
// restricts to exactly one gateway between any two media). A *path closure*
// is the set of all prefixes of a maximal simple path starting at some
// medium; selecting a closure (and within it, the sub-path that actually
// carries a message) tells the encoder both *which* media a message crosses
// and *in which order* — the order is what the per-medium jitter chain
// needs.

#include <string>
#include <vector>

#include "rt/model.hpp"

namespace optalloc::net {

/// A route: media indices in transmission order. Empty = intra-ECU.
using Path = std::vector<int>;

/// Validate the architecture against the model's assumptions. Returns
/// human-readable diagnostics (empty = valid): ECU indices in range, at
/// most one gateway ECU between any two media, no duplicate ECUs within a
/// medium.
std::vector<std::string> validate_topology(const rt::Architecture& arch);

class PathClosures {
 public:
  explicit PathClosures(const rt::Architecture& arch);

  /// All maximal simple paths (one per closure, the paper's h-tilde),
  /// grouped by starting medium. Does not include the empty closure.
  const std::vector<Path>& maximal_paths() const { return maximal_; }

  /// All distinct simple paths (= all prefixes of maximal paths, deduped).
  /// These are the candidate routes a message can take. routes()[0] is
  /// always the empty route (intra-ECU delivery, the paper's ph0).
  const std::vector<Path>& routes() const { return routes_; }

  /// v(h): may a message from ECU `src` to ECU `dst` use route `h`?
  ///   * empty route: src == dst
  ///   * single medium k: src != dst, both on k
  ///   * multi-hop k1..kn: src on k1 but not on k2; dst on kn but not on
  ///     k(n-1); consecutive media joined by gateways (by construction).
  bool valid_endpoints(const Path& h, int src, int dst) const;

  /// Indices into routes() usable by a message from src to dst.
  std::vector<int> routes_between(int src, int dst) const;

  /// The station (ECU) that queues the message on leg `l` of route `h`:
  /// the sender's ECU for l == 0, the gateway between legs afterwards.
  int leg_station(const Path& h, std::size_t l, int src) const;

  /// Fig. 1-style textual dump of all closures.
  std::string describe() const;

 private:
  rt::Architecture arch_;  // by value: closures must outlive the caller's
                           // architecture object (no dangling references)
  std::vector<Path> maximal_;
  std::vector<Path> routes_;
};

}  // namespace optalloc::net

#pragma once
// Graphviz export of architectures and allocations — renders the paper's
// Fig. 2-style topology diagrams (media as boxes, ECUs as nodes, gateways
// highlighted), optionally annotated with an allocation's task placement.

#include <string>

#include "rt/model.hpp"

namespace optalloc::net {

/// DOT description of the architecture: one cluster per medium, gateway
/// ECUs shown double-circled, gateway-only ECUs shaded.
std::string to_dot(const rt::Architecture& arch);

/// Same, with tasks listed inside their assigned ECU and message routes
/// drawn as edges between sender and receiver ECUs.
std::string to_dot(const rt::TaskSet& tasks, const rt::Architecture& arch,
                   const rt::Allocation& allocation);

}  // namespace optalloc::net

#include "heur/common.hpp"

#include "alloc/cost.hpp"

#include <algorithm>

#include "rt/analysis.hpp"
#include "util/intmath.hpp"

namespace optalloc::heur {

using rt::Ticks;

std::optional<rt::Allocation> complete_allocation(
    const alloc::Problem& problem, const net::PathClosures& closures,
    const std::vector<int>& task_ecu,
    const std::vector<std::vector<Ticks>>& slot_extra) {
  const auto refs = problem.tasks.message_refs();
  const auto num_media = static_cast<int>(problem.arch.media.size());

  rt::Allocation alloc;
  alloc.task_ecu = task_ecu;
  alloc.task_prio = rt::deadline_monotonic_ranks(problem.tasks);

  // Routes: shortest valid path per message; budgets: beta per leg plus an
  // equal split of the remaining slack.
  alloc.msg_route.resize(refs.size());
  alloc.msg_local_deadline.resize(refs.size());
  for (std::size_t g = 0; g < refs.size(); ++g) {
    const rt::Message& msg = problem.tasks.message(refs[g]);
    const int src = task_ecu[static_cast<std::size_t>(refs[g].task)];
    const int dst = task_ecu[static_cast<std::size_t>(msg.target_task)];
    const auto candidates = closures.routes_between(src, dst);
    if (candidates.empty()) return std::nullopt;
    const net::Path* best = nullptr;
    for (const int c : candidates) {
      const net::Path& path = closures.routes()[static_cast<std::size_t>(c)];
      if (best == nullptr || path.size() < best->size()) best = &path;
    }
    alloc.msg_route[g] = *best;
    if (best->empty()) continue;

    Ticks serv = 0;
    std::vector<Ticks> betas;
    for (std::size_t l = 0; l < best->size(); ++l) {
      const rt::Medium& medium =
          problem.arch.media[static_cast<std::size_t>((*best)[l])];
      betas.push_back(rt::transmission_ticks(medium, msg.size_bytes));
      if (l + 1 < best->size()) serv += medium.gateway_cost;
    }
    Ticks slack = msg.deadline - serv;
    for (const Ticks b : betas) slack -= b;
    if (slack < 0) return std::nullopt;  // cannot even transmit once per leg
    const auto legs = static_cast<Ticks>(best->size());
    for (std::size_t l = 0; l < best->size(); ++l) {
      const Ticks share =
          slack / legs + (static_cast<Ticks>(l) < slack % legs ? 1 : 0);
      alloc.msg_local_deadline[g].push_back(betas[l] + share);
    }
  }

  // Slots: minimal table — slot_min, or the largest message queued at the
  // station — plus the caller's extras.
  alloc.slots.resize(static_cast<std::size_t>(num_media));
  for (int k = 0; k < num_media; ++k) {
    const rt::Medium& medium = problem.arch.media[static_cast<std::size_t>(k)];
    if (medium.type != rt::MediumType::kTokenRing) continue;
    auto& table = alloc.slots[static_cast<std::size_t>(k)];
    table.assign(medium.ecus.size(), medium.slot_min);
    for (std::size_t g = 0; g < refs.size(); ++g) {
      const auto& route = alloc.msg_route[g];
      for (std::size_t l = 0; l < route.size(); ++l) {
        if (route[l] != k) continue;
        const int station = closures.leg_station(
            route, l, task_ecu[static_cast<std::size_t>(refs[g].task)]);
        const Ticks rho = rt::transmission_ticks(
            medium, problem.tasks.message(refs[g]).size_bytes);
        for (std::size_t j = 0; j < medium.ecus.size(); ++j) {
          if (medium.ecus[j] == station) {
            table[j] = std::max(table[j], rho);
          }
        }
      }
    }
    if (k < static_cast<int>(slot_extra.size())) {
      for (std::size_t j = 0;
           j < table.size() && j < slot_extra[static_cast<std::size_t>(k)].size();
           ++j) {
        table[j] = std::min(
            medium.slot_max,
            table[j] + slot_extra[static_cast<std::size_t>(k)][j]);
      }
    }
    for (const Ticks slot : table) {
      if (slot > medium.slot_max) return std::nullopt;  // message too big
    }
  }
  return alloc;
}

std::int64_t objective_value(const alloc::Problem& problem,
                             alloc::Objective objective,
                             const rt::Allocation& allocation) {
  return alloc::objective_value(problem, objective, allocation);
}

std::optional<std::int64_t> evaluate(const alloc::Problem& problem,
                                     alloc::Objective objective,
                                     const rt::Allocation& allocation) {
  const rt::VerifyReport report =
      rt::verify(problem.tasks, problem.arch, allocation);
  if (!report.feasible) return std::nullopt;
  return alloc::objective_value(problem, objective, allocation);
}

}  // namespace optalloc::heur

#pragma once
// Shared machinery for the heuristic allocators: given a task->ECU mapping
// (and optional slot enlargements), deterministically complete it into a
// full rt::Allocation — shortest routes from the path closures, per-leg
// deadline budgets by equal slack split, minimal TDMA slots — and evaluate
// an objective on it through the exact verifier.

#include <optional>

#include "alloc/problem.hpp"
#include "net/paths.hpp"
#include "rt/verify.hpp"

namespace optalloc::heur {

/// Deterministic completion of a partial solution.
///   task_ecu    the Pi mapping to complete
///   slot_extra  optional per-(medium, position) additions on top of the
///               minimal slot table (empty = all zero)
/// Returns nullopt when some message has no valid route.
std::optional<rt::Allocation> complete_allocation(
    const alloc::Problem& problem, const net::PathClosures& closures,
    const std::vector<int>& task_ecu,
    const std::vector<std::vector<rt::Ticks>>& slot_extra = {});

/// Objective value of a *feasible* allocation, computed exactly the way
/// the SAT encoder's cost function does (so heuristic and optimal results
/// are comparable): TRT = Lambda of the medium, SumTRT = sum over rings,
/// CanLoad = sum over bus messages of ceil(rho * 1000 / period).
std::int64_t objective_value(const alloc::Problem& problem,
                             alloc::Objective objective,
                             const rt::Allocation& allocation);

/// Verify + evaluate: nullopt if infeasible.
std::optional<std::int64_t> evaluate(const alloc::Problem& problem,
                                     alloc::Objective objective,
                                     const rt::Allocation& allocation);

}  // namespace optalloc::heur

#include "heur/exhaustive.hpp"

#include <algorithm>

#include "heur/common.hpp"
#include "net/paths.hpp"

namespace optalloc::heur {

using rt::Ticks;

std::optional<ExhaustiveResult> exhaustive_search(
    const alloc::Problem& problem, alloc::Objective objective,
    const ExhaustiveOptions& options) {
  const net::PathClosures closures(problem.arch);
  const auto n = problem.tasks.tasks.size();

  std::vector<std::vector<int>> allowed(n);
  std::uint64_t placements = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (int p = 0; p < problem.arch.num_ecus; ++p) {
      if (problem.tasks.tasks[i].allowed_on(p) &&
          problem.arch.can_host_tasks(p)) {
        allowed[i].push_back(p);
      }
    }
    if (allowed[i].empty()) {
      ExhaustiveResult res;
      res.exact = true;  // provably infeasible
      return res;
    }
    if (placements > options.max_combinations / allowed[i].size()) {
      return std::nullopt;  // grid too large
    }
    placements *= allowed[i].size();
  }

  // Slot enumeration applies to problems whose only token ring carries
  // messages; otherwise minimal slots are already optimal.
  int ring_medium = -1;
  int num_rings = 0;
  for (std::size_t k = 0; k < problem.arch.media.size(); ++k) {
    if (problem.arch.media[k].type == rt::MediumType::kTokenRing) {
      ++num_rings;
      ring_medium = static_cast<int>(k);
    }
  }
  const bool single_ring = num_rings == 1;
  const bool has_messages = !problem.tasks.message_refs().empty();

  ExhaustiveResult result;
  result.exact = true;
  // Slot tables are only provably optimal when they are enumerated, which
  // the implementation supports for single-ring problems.
  if (has_messages && num_rings > 0 &&
      !(single_ring && options.enumerate_slots)) {
    result.exact = false;
  }

  std::vector<std::size_t> idx(n, 0);
  std::vector<int> placement(n);
  for (std::uint64_t step = 0; step < placements; ++step) {
    for (std::size_t i = 0; i < n; ++i) placement[i] = allowed[i][idx[i]];

    const auto base = complete_allocation(problem, closures, placement);
    if (base) {
      for (const auto& route : base->msg_route) {
        if (route.size() > 1) result.exact = false;  // heuristic budgets
      }
      const bool try_slots = options.enumerate_slots && single_ring &&
                             has_messages && ring_medium >= 0;
      if (!try_slots) {
        ++result.combinations_tried;
        const auto cost = evaluate(problem, objective, *base);
        if (cost && (!result.feasible || *cost < result.cost)) {
          result.feasible = true;
          result.cost = *cost;
          result.allocation = *base;
        }
        if (single_ring && has_messages) result.exact = false;
      } else {
        // Enumerate slot extras on the single ring with cost pruning.
        const rt::Medium& medium =
            problem.arch.media[static_cast<std::size_t>(ring_medium)];
        const auto& minimal =
            base->slots[static_cast<std::size_t>(ring_medium)];
        const auto positions = minimal.size();
        std::vector<Ticks> extent(positions);
        std::uint64_t combos = 1;
        bool too_many = false;
        for (std::size_t j = 0; j < positions; ++j) {
          extent[j] = medium.slot_max - minimal[j] + 1;
          if (extent[j] <= 0) {
            too_many = true;  // minimal slot exceeds slot_max: infeasible
            break;
          }
          if (combos > options.max_combinations /
                           static_cast<std::uint64_t>(extent[j])) {
            too_many = true;
            result.exact = false;  // cannot prove slot optimality
            break;
          }
          combos *= static_cast<std::uint64_t>(extent[j]);
        }
        if (too_many) {
          ++result.combinations_tried;
          const auto cost = evaluate(problem, objective, *base);
          if (cost && (!result.feasible || *cost < result.cost)) {
            result.feasible = true;
            result.cost = *cost;
            result.allocation = *base;
          }
        } else {
          std::vector<Ticks> extra(positions, 0);
          for (std::uint64_t s = 0; s < combos; ++s) {
            std::vector<std::vector<Ticks>> extras(problem.arch.media.size());
            extras[static_cast<std::size_t>(ring_medium)] = extra;
            const auto candidate =
                complete_allocation(problem, closures, placement, extras);
            if (candidate) {
              ++result.combinations_tried;
              const auto cost = evaluate(problem, objective, *candidate);
              if (cost && (!result.feasible || *cost < result.cost)) {
                result.feasible = true;
                result.cost = *cost;
                result.allocation = *candidate;
              }
            }
            // Odometer over extras.
            std::size_t j = 0;
            while (j < positions && ++extra[j] >= extent[j]) {
              extra[j] = 0;
              ++j;
            }
            if (j == positions) break;
          }
        }
      }
    }

    // Odometer over placements.
    std::size_t i = 0;
    while (i < n && ++idx[i] >= allowed[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return result;
}

}  // namespace optalloc::heur

#include "heur/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "heur/common.hpp"
#include "net/paths.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/verify.hpp"
#include "util/rng.hpp"

namespace optalloc::heur {

namespace {

std::vector<std::vector<int>> allowed_table(const alloc::Problem& problem) {
  std::vector<std::vector<int>> allowed(problem.tasks.tasks.size());
  for (std::size_t i = 0; i < problem.tasks.tasks.size(); ++i) {
    for (int p = 0; p < problem.arch.num_ecus; ++p) {
      if (problem.tasks.tasks[i].allowed_on(p) &&
          problem.arch.can_host_tasks(p)) {
        allowed[i].push_back(p);
      }
    }
  }
  return allowed;
}

}  // namespace

/// Fold one finished annealing run into the metrics registry and emit a
/// trace event, so heuristic effort shows up next to the SAT search's.
class AnnealTelemetry {
 public:
  explicit AnnealTelemetry(const AnnealingResult& result)
      : result_(result), start_ns_(obs::monotonic_ns()) {}
  ~AnnealTelemetry() {
    static const obs::Metric runs = obs::counter("heur.sa.runs");
    static const obs::Metric iters = obs::counter("heur.sa.iterations");
    static const obs::Metric accepted = obs::counter("heur.sa.accepted_moves");
    static const obs::Metric feasible = obs::counter("heur.sa.feasible");
    static const obs::Metric t_total = obs::timer("heur.sa.time");
    const double seconds =
        static_cast<double>(obs::monotonic_ns() - start_ns_) * 1e-9;
    obs::add(runs, 1);
    obs::add(iters, result_.iterations_run);
    obs::add(accepted, result_.accepted_moves);
    if (result_.feasible) obs::add(feasible, 1);
    obs::record(t_total, seconds);
    if (obs::trace_enabled()) {
      obs::TraceEvent e("anneal");
      e.boolean("feasible", result_.feasible);
      if (result_.feasible) e.num("cost", result_.cost);
      e.num("iterations", result_.iterations_run)
          .num("accepted", result_.accepted_moves)
          .num("seconds", seconds);
    }
  }

 private:
  const AnnealingResult& result_;
  std::uint64_t start_ns_;
};

AnnealingResult anneal(const alloc::Problem& problem,
                       alloc::Objective objective,
                       const AnnealingOptions& options) {
  AnnealingResult result;
  AnnealTelemetry telemetry(result);
  const net::PathClosures closures(problem.arch);
  const auto allowed = allowed_table(problem);
  for (const auto& a : allowed) {
    if (a.empty()) return result;  // some task cannot be placed at all
  }
  Rng rng(options.seed);

  // State: allocation vector + slot extras.
  std::vector<int> state(problem.tasks.tasks.size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    state[i] = allowed[i][rng.index(allowed[i].size())];
  }
  std::vector<std::vector<rt::Ticks>> slot_extra(problem.arch.media.size());
  for (std::size_t k = 0; k < problem.arch.media.size(); ++k) {
    slot_extra[k].assign(problem.arch.media[k].ecus.size(), 0);
  }

  // Energy: objective if feasible, else penalty * violations (plus the
  // objective proxy so the search still prefers cheap regions).
  auto energy = [&](const std::vector<int>& task_ecu,
                    const std::vector<std::vector<rt::Ticks>>& extras,
                    std::optional<std::int64_t>& cost_out,
                    rt::Allocation& alloc_out) -> double {
    cost_out.reset();
    const auto completed =
        complete_allocation(problem, closures, task_ecu, extras);
    if (!completed) return 1e18;
    const rt::VerifyReport report =
        rt::verify(problem.tasks, problem.arch, *completed);
    const auto value =
        static_cast<double>(objective_value(problem, objective, *completed));
    if (!report.feasible) {
      return value +
             options.infeasible_penalty *
                 static_cast<double>(report.violations.size());
    }
    cost_out = objective_value(problem, objective, *completed);
    alloc_out = *completed;
    return value;
  };

  std::optional<std::int64_t> cost;
  rt::Allocation current_alloc;
  double current_energy = energy(state, slot_extra, cost, current_alloc);
  if (cost) {
    result.feasible = true;
    result.cost = *cost;
    result.allocation = current_alloc;
  }

  double temperature = options.initial_temperature;
  for (int iter = 0; iter < options.iterations; ++iter) {
    ++result.iterations_run;
    // Propose a move.
    auto next_state = state;
    auto next_extras = slot_extra;
    bool moved = false;
    if (rng.chance(options.slot_move_probability)) {
      // Nudge a random slot by +-1 (only on token rings).
      std::vector<std::pair<std::size_t, std::size_t>> slots;
      for (std::size_t k = 0; k < problem.arch.media.size(); ++k) {
        if (problem.arch.media[k].type != rt::MediumType::kTokenRing) {
          continue;
        }
        for (std::size_t j = 0; j < next_extras[k].size(); ++j) {
          slots.emplace_back(k, j);
        }
      }
      if (!slots.empty()) {
        const auto [k, j] = slots[rng.index(slots.size())];
        const rt::Ticks delta = rng.chance(0.5) ? 1 : -1;
        next_extras[k][j] = std::max<rt::Ticks>(0, next_extras[k][j] + delta);
        moved = true;
      }
    }
    if (!moved) {
      const std::size_t task = rng.index(next_state.size());
      if (allowed[task].size() > 1) {
        int p = state[task];
        while (p == state[task]) {
          p = allowed[task][rng.index(allowed[task].size())];
        }
        next_state[task] = p;
        moved = true;
      }
    }
    if (!moved) {
      temperature *= options.cooling;
      continue;
    }

    std::optional<std::int64_t> next_cost;
    rt::Allocation next_alloc;
    const double next_energy =
        energy(next_state, next_extras, next_cost, next_alloc);
    const double delta = next_energy - current_energy;
    if (delta <= 0.0 ||
        rng.uniform01() < std::exp(-delta / std::max(temperature, 1e-9))) {
      state = next_state;
      slot_extra = next_extras;
      current_energy = next_energy;
      ++result.accepted_moves;
      if (next_cost && (!result.feasible || *next_cost < result.cost)) {
        result.feasible = true;
        result.cost = *next_cost;
        result.allocation = next_alloc;
      }
    }
    temperature *= options.cooling;
  }
  return result;
}

}  // namespace optalloc::heur

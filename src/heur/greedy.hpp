#pragma once
// Greedy first-fit allocator: tasks in deadline order, each placed on the
// ECU that keeps the partial system feasible and minimally loaded. A fast
// baseline (and a seed generator for annealing).

#include <optional>

#include "alloc/problem.hpp"
#include "rt/model.hpp"

namespace optalloc::heur {

struct GreedyResult {
  bool feasible = false;
  std::int64_t cost = -1;
  rt::Allocation allocation;
};

GreedyResult greedy_allocate(const alloc::Problem& problem,
                             alloc::Objective objective);

}  // namespace optalloc::heur

#include "heur/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "heur/common.hpp"
#include "net/paths.hpp"
#include "rt/analysis.hpp"

namespace optalloc::heur {

GreedyResult greedy_allocate(const alloc::Problem& problem,
                             alloc::Objective objective) {
  GreedyResult result;
  const net::PathClosures closures(problem.arch);
  const auto n = problem.tasks.tasks.size();

  // Process tasks by increasing deadline (hardest first).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return problem.tasks.tasks[a].deadline < problem.tasks.tasks[b].deadline;
  });

  std::vector<int> placement(n, -1);
  // Per-ECU utilisation plus a communication-affinity bonus: co-locating
  // chain partners keeps messages off the bus, which is what lets the
  // completed allocation pass the message-deadline checks.
  std::vector<double> load(static_cast<std::size_t>(problem.arch.num_ecus),
                           0.0);
  std::vector<std::vector<int>> partners(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const rt::Message& m : problem.tasks.tasks[i].messages) {
      partners[i].push_back(m.target_task);
      partners[static_cast<std::size_t>(m.target_task)].push_back(
          static_cast<int>(i));
    }
  }

  for (const std::size_t i : order) {
    const rt::Task& t = problem.tasks.tasks[i];
    int best_ecu = -1;
    double best_score = 0.0;
    double best_load = 0.0;
    for (int p = 0; p < problem.arch.num_ecus; ++p) {
      if (!t.allowed_on(p) || !problem.arch.can_host_tasks(p)) continue;
      bool separated_ok = true;
      for (const int j : t.separated_from) {
        if (placement[static_cast<std::size_t>(j)] == p) {
          separated_ok = false;
          break;
        }
      }
      if (!separated_ok) continue;
      const double new_load =
          load[static_cast<std::size_t>(p)] +
          static_cast<double>(t.wcet[static_cast<std::size_t>(p)]) /
              static_cast<double>(t.period);
      if (new_load > 1.0) continue;  // necessary schedulability condition
      double score = new_load;
      for (const int j : partners[i]) {
        if (placement[static_cast<std::size_t>(j)] == p) score -= 0.75;
      }
      if (best_ecu < 0 || score < best_score) {
        best_ecu = p;
        best_score = score;
        best_load = new_load;
      }
    }
    if (best_ecu < 0) return result;  // greedy dead end
    placement[i] = best_ecu;
    load[static_cast<std::size_t>(best_ecu)] = best_load;
  }

  const auto completed = complete_allocation(problem, closures, placement);
  if (!completed) return result;
  const auto cost = evaluate(problem, objective, *completed);
  if (!cost) return result;
  result.feasible = true;
  result.cost = *cost;
  result.allocation = *completed;
  return result;
}

}  // namespace optalloc::heur

#pragma once
// Simulated-annealing allocator in the style of Tindell, Burns & Wellings
// [5] — the heuristic the paper's Table 1 compares against. The state is a
// task->ECU mapping plus per-station TDMA slot enlargements; moves either
// reassign a random task or nudge a slot. Infeasible states are admitted
// with a penalty proportional to the number of violations so the search
// can traverse infeasible regions (as in [5]).

#include <cstdint>
#include <optional>

#include "alloc/problem.hpp"
#include "rt/model.hpp"

namespace optalloc::heur {

struct AnnealingOptions {
  std::uint64_t seed = 1;
  int iterations = 20000;
  double initial_temperature = 50.0;
  double cooling = 0.999;        ///< geometric factor per iteration
  double infeasible_penalty = 1000.0;  ///< per violation
  double slot_move_probability = 0.3;  ///< vs task-move
};

struct AnnealingResult {
  bool feasible = false;
  std::int64_t cost = -1;
  rt::Allocation allocation;
  int iterations_run = 0;
  int accepted_moves = 0;
};

/// Run simulated annealing; returns the best feasible solution found (if
/// any). Deterministic for a fixed seed.
AnnealingResult anneal(const alloc::Problem& problem,
                       alloc::Objective objective,
                       const AnnealingOptions& options = {});

}  // namespace optalloc::heur

#pragma once
// Exhaustive search over task placements (and, for single-ring problems,
// TDMA slot tables) — the ground-truth oracle the SAT optimizer is
// property-tested against on small instances.
//
// Exactness caveat: routes, deadline budgets and (for multi-ring problems)
// slot tables are completed heuristically, so for multi-hop instances the
// result is an UPPER bound on the true optimum; the property tests use
//   sat_cost <= exhaustive_cost
// in general and exact equality where the completion is provably optimal
// (no messages, or single-medium instances with enumerable slot tables).

#include <cstdint>
#include <optional>

#include "alloc/problem.hpp"
#include "rt/model.hpp"

namespace optalloc::heur {

struct ExhaustiveOptions {
  /// Abort when the placement grid exceeds this many combinations.
  std::uint64_t max_combinations = 5'000'000;
  /// Also enumerate slot tables exactly (single token-ring problems only;
  /// bounded by max_combinations as well).
  bool enumerate_slots = true;
};

struct ExhaustiveResult {
  bool feasible = false;
  std::int64_t cost = -1;
  rt::Allocation allocation;
  std::uint64_t combinations_tried = 0;
  bool exact = false;  ///< true when the reported cost is the true optimum
};

std::optional<ExhaustiveResult> exhaustive_search(
    const alloc::Problem& problem, alloc::Objective objective,
    const ExhaustiveOptions& options = {});

}  // namespace optalloc::heur

#pragma once
// Objective evaluation on concrete allocations — the exact counterpart of
// the encoder's cost function, shared by the optimizer (to price warm
// starts), the heuristics, and the benchmarks.

#include <cstdint>
#include <optional>

#include "alloc/problem.hpp"
#include "rt/model.hpp"

namespace optalloc::alloc {

/// Objective value of an allocation (assumed feasible): TRT = Lambda of
/// the medium, SumTRT = sum over rings, CanLoad = sum over bus messages
/// of ceil(rho * 1000 / period). Matches the encoder's cost definition.
std::int64_t objective_value(const Problem& problem, Objective objective,
                             const rt::Allocation& allocation);

/// Verify + evaluate: nullopt if the allocation is infeasible.
std::optional<std::int64_t> evaluate_allocation(
    const Problem& problem, Objective objective,
    const rt::Allocation& allocation);

}  // namespace optalloc::alloc

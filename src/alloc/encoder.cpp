#include "alloc/encoder.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "rt/analysis.hpp"
#include "util/intmath.hpp"

namespace optalloc::alloc {

using ir::NodeId;
using rt::Ticks;

namespace {

/// ECUs a task may run on: WCET defined and the ECU may host tasks.
std::vector<int> allowed_ecus(const rt::Architecture& arch,
                              const rt::Task& task) {
  std::vector<int> out;
  for (int p = 0; p < arch.num_ecus; ++p) {
    if (task.allowed_on(p) && arch.can_host_tasks(p)) out.push_back(p);
  }
  return out;
}

}  // namespace

AllocEncoder::AllocEncoder(const Problem& problem, Objective objective,
                           EncoderConfig config)
    : problem_(problem),
      objective_(objective),
      config_(config),
      owned_ctx_(std::make_unique<ir::Context>()),
      owned_solver_(std::make_unique<sat::Solver>()),
      owned_pb_(std::make_unique<pb::PbPropagator>(*owned_solver_)),
      owned_blaster_(std::make_unique<encode::BitBlaster>(
          *owned_ctx_, *owned_solver_, owned_pb_.get(),
          encode::Options{config.backend})),
      closures_(std::make_unique<net::PathClosures>(problem.arch)),
      ctx_(*owned_ctx_),
      solver_(owned_solver_.get()),
      pb_(owned_pb_.get()),
      blaster_(owned_blaster_.get()) {
  refs_ = problem_.tasks.message_refs();
}

AllocEncoder::AllocEncoder(const Problem& problem, Objective objective,
                           EncoderConfig config, EncoderBackend& backend)
    : problem_(problem),
      objective_(objective),
      config_(config),
      closures_(std::make_unique<net::PathClosures>(problem.arch)),
      ctx_(backend.ctx),
      solver_(&backend.solver),
      pb_(&backend.pb),
      blaster_(&backend.blaster),
      backend_(&backend) {
  refs_ = problem_.tasks.message_refs();
}

void AllocEncoder::require(NodeId formula) {
  asserted_.push_back(formula);
  if (backend_ != nullptr) {
    // Session mode: record, don't assert. The session asserts each group
    // under its activation literal (encode::BitBlaster::assert_guarded)
    // so an edit can retract it.
    grouped_.push_back({group_, formula});
    return;
  }
  // The paper's "translation into SAT" phase: bit-blasting one asserted
  // constraint. Timed only on request; assert_true recurses, so the timer
  // wraps the top-level call.
  static const obs::Metric t_bitblast = obs::timer("encode.time.bitblast");
  if (obs::phase_timing()) {
    obs::ScopedTimer timer(t_bitblast);
    ok_ = blaster_->assert_true(formula) && ok_;
  } else {
    ok_ = blaster_->assert_true(formula) && ok_;
  }
}

NodeId AllocEncoder::mk_int_var(const std::string& name, std::int64_t lo,
                                std::int64_t hi) {
  if (backend_ == nullptr) return ctx_.int_var(name, lo, hi);
  auto key = std::make_tuple(name, lo, hi);
  const auto it = backend_->int_vars.find(key);
  if (it != backend_->int_vars.end()) return it->second;
  const NodeId v = ctx_.int_var(name, lo, hi);
  backend_->int_vars.emplace(std::move(key), v);
  return v;
}

NodeId AllocEncoder::mk_bool_var(const std::string& name) {
  if (backend_ == nullptr) return ctx_.bool_var(name);
  const auto it = backend_->bool_vars.find(name);
  if (it != backend_->bool_vars.end()) return it->second;
  const NodeId v = ctx_.bool_var(name);
  backend_->bool_vars.emplace(name, v);
  return v;
}

NodeId AllocEncoder::member_of(NodeId a, std::vector<int> ecus) {
  std::sort(ecus.begin(), ecus.end());
  if (ecus.empty()) return ctx_.bool_const(false);
  // Contiguous sets become two comparisons instead of |set| equalities.
  if (ecus.back() - ecus.front() + 1 == static_cast<int>(ecus.size())) {
    return ctx_.land(ctx_.ge(a, ctx_.constant(ecus.front())),
                     ctx_.le(a, ctx_.constant(ecus.back())));
  }
  std::vector<NodeId> alts;
  alts.reserve(ecus.size());
  for (const int p : ecus) alts.push_back(ctx_.eq(a, ctx_.constant(p)));
  return ctx_.or_all(alts);
}

bool AllocEncoder::build() {
  if (built_) throw std::logic_error("AllocEncoder::build called twice");
  built_ = true;
  static const obs::Metric t_build = obs::timer("encode.time.build");
  obs::ScopedTimer build_timer(t_build);
  const auto problems = net::validate_topology(problem_.arch);
  if (!problems.empty()) {
    throw std::invalid_argument("invalid topology: " + problems.front());
  }
  for (const auto& ref : refs_) {
    const rt::Message& msg = problem_.tasks.message(ref);
    if (msg.target_task < 0 ||
        msg.target_task >= static_cast<int>(problem_.tasks.tasks.size()) ||
        msg.target_task == ref.task) {
      throw std::invalid_argument("message with invalid target task");
    }
  }
  build_tasks();
  build_slots();
  build_messages();
  build_cost();
  // Ensure every variable the decoder reads is materialized even when no
  // constraint happens to mention it (e.g. slot variables of a ring that
  // carries no messages, or allocation variables folded away by range
  // analysis).
  for (const NodeId a : a_) blaster_->touch(a);
  for (const auto& vars : slot_vars_) {
    for (const NodeId v : vars) blaster_->touch(v);
  }
  return ok_ && solver_->ok();
}

// ---------------------------------------------------------------------
// Tasks: eqs. (4)-(13).
// ---------------------------------------------------------------------

void AllocEncoder::build_tasks() {
  const auto& tasks = problem_.tasks.tasks;
  const auto n = static_cast<int>(tasks.size());
  const NodeId zero = ctx_.constant(0);
  const NodeId one = ctx_.constant(1);

  a_.resize(static_cast<std::size_t>(n), ir::kInvalidNode);
  wcet_.resize(static_cast<std::size_t>(n), ir::kInvalidNode);
  r_.resize(static_cast<std::size_t>(n), ir::kInvalidNode);

  for (int i = 0; i < n; ++i) {
    const rt::Task& t = tasks[static_cast<std::size_t>(i)];
    group("task:" + t.name);
    const std::vector<int> allowed = allowed_ecus(problem_.arch, t);
    if (allowed.empty()) {
      require(ctx_.bool_const(false));
      // Keep placeholder variables so indices stay aligned.
      a_[static_cast<std::size_t>(i)] = ctx_.constant(0);
      wcet_[static_cast<std::size_t>(i)] = ctx_.constant(0);
      r_[static_cast<std::size_t>(i)] = ctx_.constant(0);
      continue;
    }
    // Allocation variable a_i over [min allowed, max allowed], with holes
    // excluded (eq. 4, placement part).
    const NodeId a =
        mk_int_var("a_" + t.name, allowed.front(), allowed.back());
    a_[static_cast<std::size_t>(i)] = a;
    for (int p = allowed.front(); p <= allowed.back(); ++p) {
      if (!std::binary_search(allowed.begin(), allowed.end(), p)) {
        require(ctx_.ne(a, ctx_.constant(p)));
      }
    }
    // WCET selection (eq. 5).
    Ticks cmin = t.wcet[static_cast<std::size_t>(allowed.front())];
    Ticks cmax = cmin;
    for (const int p : allowed) {
      cmin = std::min(cmin, t.wcet[static_cast<std::size_t>(p)]);
      cmax = std::max(cmax, t.wcet[static_cast<std::size_t>(p)]);
    }
    NodeId wcet;
    if (cmin == cmax) {
      wcet = ctx_.constant(cmin);
    } else {
      wcet = mk_int_var("wcet_" + t.name, cmin, cmax);
      for (const int p : allowed) {
        require(ctx_.implies(
            ctx_.eq(a, ctx_.constant(p)),
            ctx_.eq(wcet,
                    ctx_.constant(t.wcet[static_cast<std::size_t>(p)]))));
      }
    }
    wcet_[static_cast<std::size_t>(i)] = wcet;
    // Response-time variable capped at the deadline minus the task's own
    // release jitter — the cap *is* eq. (13), enforced through the
    // variable's range constraint.
    const Ticks r_cap = t.deadline - t.release_jitter;
    if (cmin > r_cap) {
      require(ctx_.bool_const(false));  // cannot meet the deadline anywhere
    }
    r_[static_cast<std::size_t>(i)] =
        mk_int_var("r_" + t.name, std::min(cmin, r_cap),
                     std::max(cmin, r_cap) == r_cap ? r_cap
                                                    : std::min(cmin, r_cap));
  }

  // Separation constraints (eq. 4, redundancy part).
  for (int i = 0; i < n; ++i) {
    for (const int j : tasks[static_cast<std::size_t>(i)].separated_from) {
      if (j < 0 || j >= n || j == i) {
        throw std::invalid_argument("invalid separation set entry");
      }
      group("separate:" + tasks[static_cast<std::size_t>(i)].name + ":" +
            tasks[static_cast<std::size_t>(j)].name);
      require(ctx_.ne(a_[static_cast<std::size_t>(i)],
                      a_[static_cast<std::size_t>(j)]));
    }
  }

  // Memory budgets: sum of ite(a_i = p, mem_i, 0) <= cap_p.
  if (!problem_.arch.ecu_memory.empty()) {
    for (int p = 0; p < problem_.arch.num_ecus; ++p) {
      const std::int64_t cap =
          problem_.arch.ecu_memory[static_cast<std::size_t>(p)];
      if (cap <= 0) continue;
      std::vector<NodeId> uses;
      for (int i = 0; i < n; ++i) {
        const rt::Task& t = tasks[static_cast<std::size_t>(i)];
        if (t.memory <= 0 || !t.allowed_on(p) ||
            !problem_.arch.can_host_tasks(p)) {
          continue;
        }
        uses.push_back(ctx_.ite(
            ctx_.eq(a_[static_cast<std::size_t>(i)], ctx_.constant(p)),
            ctx_.constant(t.memory), zero));
      }
      if (!uses.empty()) {
        group("memory:ecu" + std::to_string(p));
        require(ctx_.le(ctx_.sum(uses), ctx_.constant(cap)));
      }
    }
  }

  // Redundant per-ECU utilization bound: for every ECU p,
  //   sum_i [a_i = p] * ceil(1000 * c_i(p) / t_i) <= 1000.
  // Implied by all response times meeting constrained deadlines, but as a
  // native PB constraint it prunes overloaded partial assignments long
  // before any response-time circuit propagates. Skipped in session mode:
  // native PB constraints bypass the activation-literal discipline and
  // could not be retracted after an edit.
  if (config_.redundant_utilization && backend_ == nullptr) {
    for (int p = 0; p < problem_.arch.num_ecus; ++p) {
      std::vector<pb::Term> terms;
      for (int i = 0; i < n; ++i) {
        const rt::Task& t = tasks[static_cast<std::size_t>(i)];
        if (!t.allowed_on(p) || !problem_.arch.can_host_tasks(p)) continue;
        if (ctx_.node(a_[static_cast<std::size_t>(i)]).op == ir::Op::kConst) {
          continue;  // placeholder
        }
        const std::int64_t u = ceil_div(
            1000 * t.wcet[static_cast<std::size_t>(p)], t.period);
        const NodeId ind =
            ctx_.eq(a_[static_cast<std::size_t>(i)], ctx_.constant(p));
        if (ctx_.node(ind).op == ir::Op::kBoolConst) continue;
        terms.push_back({u, blaster_->formula_lit(ind)});
      }
      if (terms.size() > 1) {
        ok_ = pb_->add_le(terms, 1000) && ok_;
      }
    }
  }

  // Priorities (eqs. 9-10): deadline-monotonic constants for distinct
  // deadlines; free-but-antisymmetric tie bools otherwise, with
  // transitivity enforced per equal-deadline group so the decoded
  // relation is always a total order.
  higher_.assign(static_cast<std::size_t>(n),
                 std::vector<NodeId>(static_cast<std::size_t>(n),
                                     ir::kInvalidNode));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Ticks di = tasks[static_cast<std::size_t>(i)].deadline;
      const Ticks dj = tasks[static_cast<std::size_t>(j)].deadline;
      NodeId i_over_j;
      if (di < dj) {
        i_over_j = ctx_.bool_const(true);
      } else if (di > dj) {
        i_over_j = ctx_.bool_const(false);
      } else if (config_.free_tie_priorities) {
        // Named by task, not index: stable across instance edits so a
        // session's rebuild reuses the variable.
        i_over_j = mk_bool_var(
            "p_" + tasks[static_cast<std::size_t>(i)].name + "_" +
            tasks[static_cast<std::size_t>(j)].name);
      } else {
        i_over_j = ctx_.bool_const(true);  // index tie-break
      }
      higher_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          i_over_j;
      higher_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          ctx_.lnot(i_over_j);  // eq. (9): p_i^j + p_j^i = 1
    }
  }
  if (config_.free_tie_priorities) {
    group("priorities");
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        for (int k = j + 1; k < n; ++k) {
          const Ticks di = tasks[static_cast<std::size_t>(i)].deadline;
          if (di != tasks[static_cast<std::size_t>(j)].deadline ||
              di != tasks[static_cast<std::size_t>(k)].deadline) {
            continue;
          }
          const NodeId ij =
              higher_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          const NodeId jk =
              higher_[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
          const NodeId ik =
              higher_[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
          require(ctx_.implies(ctx_.land(ij, jk), ik));
          require(ctx_.implies(ctx_.land(ctx_.lnot(ij), ctx_.lnot(jk)),
                               ctx_.lnot(ik)));
        }
      }
    }
  }

  // Preemption counts and costs (eqs. 6-8, 11-12).
  for (int i = 0; i < n; ++i) {
    const rt::Task& ti = tasks[static_cast<std::size_t>(i)];
    if (ctx_.node(r_[static_cast<std::size_t>(i)]).op == ir::Op::kConst) {
      continue;  // placeholder from an infeasible task
    }
    group("task:" + ti.name);
    std::vector<NodeId> terms;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const NodeId j_over_i =
          higher_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      if (j_over_i == ctx_.bool_const(false)) continue;  // j never preempts i
      const rt::Task& tj = tasks[static_cast<std::size_t>(j)];
      const NodeId cond = ctx_.land(
          j_over_i, ctx_.eq(a_[static_cast<std::size_t>(i)],
                            a_[static_cast<std::size_t>(j)]));
      if (cond == ctx_.bool_const(false)) continue;  // can never share an ECU
      const Ticks imax =
          ceil_div(ti.deadline + tj.release_jitter, tj.period);
      const NodeId I = mk_int_var(
          "I_" + ti.name + "_" + tj.name, 0, imax);
      // eq. (11): ceiling bounds over the jittered arrival window,
      // guarded by shared ECU + priority.
      const NodeId r_i = r_[static_cast<std::size_t>(i)];
      const NodeId window =
          ctx_.add(r_i, ctx_.constant(tj.release_jitter));
      require(ctx_.implies(
          cond, ctx_.ge(ctx_.mul(I, ctx_.constant(tj.period)), window)));
      require(ctx_.implies(
          cond, ctx_.lt(ctx_.mul(ctx_.sub(I, one),
                                 ctx_.constant(tj.period)),
                        window)));
      // eq. (12) extended with the priority guard.
      require(ctx_.implies(ctx_.lnot(cond), ctx_.eq(I, zero)));
      // eqs. (7)-(8): pc = I * wcet_j under the guard, else 0. This is the
      // paper's formulation — the product of two variables handled by the
      // non-linear encoding.
      const NodeId pc = mk_int_var(
          "pc_" + ti.name + "_" + tj.name, 0,
          ctx_.range(ctx_.mul(I, wcet_[static_cast<std::size_t>(j)])).hi);
      require(ctx_.implies(
          cond,
          ctx_.eq(pc, ctx_.mul(I, wcet_[static_cast<std::size_t>(j)]))));
      require(ctx_.implies(ctx_.lnot(cond), ctx_.eq(pc, zero)));
      terms.push_back(pc);
    }
    // eq. (6): r_i = wcet_i + sum of preemption costs.
    require(ctx_.eq(r_[static_cast<std::size_t>(i)],
                    ctx_.add(wcet_[static_cast<std::size_t>(i)],
                             ctx_.sum(terms))));
  }
}

// ---------------------------------------------------------------------
// TDMA slot tables.
// ---------------------------------------------------------------------

void AllocEncoder::build_slots() {
  const auto num_media = static_cast<int>(problem_.arch.media.size());
  slot_vars_.resize(static_cast<std::size_t>(num_media));
  lambda_.resize(static_cast<std::size_t>(num_media), ir::kInvalidNode);
  for (int k = 0; k < num_media; ++k) {
    const rt::Medium& medium = problem_.arch.media[static_cast<std::size_t>(k)];
    if (medium.type != rt::MediumType::kTokenRing) continue;
    auto& vars = slot_vars_[static_cast<std::size_t>(k)];
    for (std::size_t j = 0; j < medium.ecus.size(); ++j) {
      vars.push_back(mk_int_var(
          "slot_" + medium.name + "_" + std::to_string(medium.ecus[j]),
          medium.slot_min, medium.slot_max));
    }
    lambda_[static_cast<std::size_t>(k)] = ctx_.sum(vars);
  }
}

// ---------------------------------------------------------------------
// Messages: route selection (eq. 14), deadline budgets, jitter chains,
// and per-medium response times (eqs. 2-3 with the Section 3 encoding).
// ---------------------------------------------------------------------

void AllocEncoder::build_messages() {
  const auto num_media = static_cast<int>(problem_.arch.media.size());
  const auto num_msgs = static_cast<int>(refs_.size());
  const NodeId zero = ctx_.constant(0);
  const std::vector<int> msg_rank = rt::message_dm_ranks(problem_.tasks);
  const auto& routes = closures_->routes();

  msg_.resize(static_cast<std::size_t>(num_msgs));

  // Stable message identifier: sender name + per-sender index. Variable
  // and group names derived from it survive instance edits that add or
  // remove *other* tasks and messages (a global message id would not).
  auto msg_name = [&](const rt::TaskSet::MsgRef& r) {
    return problem_.tasks.tasks[static_cast<std::size_t>(r.task)].name + "." +
           std::to_string(r.index);
  };

  // S(h)/D(h): valid sender/receiver ECU sets per route.
  auto sender_set = [&](const net::Path& h) {
    std::vector<int> out;
    const rt::Medium& first =
        problem_.arch.media[static_cast<std::size_t>(h.front())];
    for (const int e : first.ecus) {
      if (h.size() >= 2 &&
          problem_.arch.media[static_cast<std::size_t>(h[1])].connects(e)) {
        continue;
      }
      out.push_back(e);
    }
    return out;
  };
  auto receiver_set = [&](const net::Path& h) {
    std::vector<int> out;
    const rt::Medium& last =
        problem_.arch.media[static_cast<std::size_t>(h.back())];
    for (const int e : last.ecus) {
      if (h.size() >= 2 && problem_.arch
                               .media[static_cast<std::size_t>(
                                   h[h.size() - 2])]
                               .connects(e)) {
        continue;
      }
      out.push_back(e);
    }
    return out;
  };

  for (int g = 0; g < num_msgs; ++g) {
    const auto& ref = refs_[static_cast<std::size_t>(g)];
    const rt::Message& message = problem_.tasks.message(ref);
    const rt::Task& sender = problem_.tasks.tasks[static_cast<std::size_t>(
        ref.task)];
    const rt::Task& receiver = problem_.tasks.tasks[static_cast<std::size_t>(
        message.target_task)];
    const std::vector<int> src_allowed = allowed_ecus(problem_.arch, sender);
    const std::vector<int> dst_allowed =
        allowed_ecus(problem_.arch, receiver);
    const NodeId a_src = a_[static_cast<std::size_t>(ref.task)];
    const NodeId a_dst = a_[static_cast<std::size_t>(message.target_task)];
    MsgVars& mv = msg_[static_cast<std::size_t>(g)];
    const std::string mname = "m_" + msg_name(ref);
    group("message:" + msg_name(ref));

    auto intersects = [](const std::vector<int>& a,
                         const std::vector<int>& b) {
      for (const int x : a) {
        if (std::find(b.begin(), b.end(), x) != b.end()) return true;
      }
      return false;
    };

    // Candidate routes: those some (src, dst) allocation could realise.
    for (int h = 0; h < static_cast<int>(routes.size()); ++h) {
      const net::Path& path = routes[static_cast<std::size_t>(h)];
      if (path.empty()) {
        if (intersects(src_allowed, dst_allowed)) mv.routes.push_back(h);
        continue;
      }
      if (intersects(sender_set(path), src_allowed) &&
          intersects(receiver_set(path), dst_allowed)) {
        mv.routes.push_back(h);
      }
    }
    if (mv.routes.empty()) {
      require(ctx_.bool_const(false));  // message cannot be delivered
      continue;
    }

    // Route selectors Pf_m: exactly one candidate (eq. 14's disjunction
    // over sub-paths, with the closure structure flattened into the
    // candidate set).
    for (const int h : mv.routes) {
      mv.rsel.push_back(
          mk_bool_var("Pf_" + mname + "_h" + std::to_string(h)));
    }
    require(ctx_.or_all(mv.rsel));
    for (std::size_t x = 0; x < mv.rsel.size(); ++x) {
      for (std::size_t y = x + 1; y < mv.rsel.size(); ++y) {
        require(ctx_.lor(ctx_.lnot(mv.rsel[x]), ctx_.lnot(mv.rsel[y])));
      }
    }

    // Endpoint validity v(h) per candidate.
    for (std::size_t c = 0; c < mv.routes.size(); ++c) {
      const net::Path& path =
          routes[static_cast<std::size_t>(mv.routes[c])];
      const NodeId sel = mv.rsel[c];
      if (path.empty()) {
        require(ctx_.implies(sel, ctx_.eq(a_src, a_dst)));
        continue;
      }
      require(ctx_.implies(sel, ctx_.ne(a_src, a_dst)));
      require(ctx_.implies(sel, member_of(a_src, sender_set(path))));
      require(ctx_.implies(sel, member_of(a_dst, receiver_set(path))));
    }

    // K_m^k: medium usage indicators.
    mv.used.assign(static_cast<std::size_t>(num_media), ir::kInvalidNode);
    for (int k = 0; k < num_media; ++k) {
      std::vector<NodeId> using_k;
      for (std::size_t c = 0; c < mv.routes.size(); ++c) {
        const net::Path& path =
            routes[static_cast<std::size_t>(mv.routes[c])];
        if (std::find(path.begin(), path.end(), k) != path.end()) {
          using_k.push_back(mv.rsel[c]);
        }
      }
      if (!using_k.empty()) {
        mv.used[static_cast<std::size_t>(k)] = ctx_.or_all(using_k);
      }
    }

    // Per-medium budget, jitter, station, slot and response variables.
    mv.local_dl.assign(static_cast<std::size_t>(num_media), ir::kInvalidNode);
    mv.jitter.assign(static_cast<std::size_t>(num_media), ir::kInvalidNode);
    mv.station.assign(static_cast<std::size_t>(num_media), ir::kInvalidNode);
    mv.slot_len.assign(static_cast<std::size_t>(num_media), ir::kInvalidNode);
    mv.response.assign(static_cast<std::size_t>(num_media), ir::kInvalidNode);
    std::vector<NodeId> budget_terms;
    for (int k = 0; k < num_media; ++k) {
      if (mv.used[static_cast<std::size_t>(k)] == ir::kInvalidNode) continue;
      const NodeId used = mv.used[static_cast<std::size_t>(k)];
      const rt::Medium& medium =
          problem_.arch.media[static_cast<std::size_t>(k)];
      const NodeId dl = mk_int_var("d_" + mname + "_" + medium.name, 0,
                                     message.deadline);
      mv.local_dl[static_cast<std::size_t>(k)] = dl;
      require(ctx_.implies(ctx_.lnot(used), ctx_.eq(dl, zero)));
      budget_terms.push_back(dl);

      const NodeId jit = mk_int_var(
          "J_" + mname + "_" + medium.name, 0,
          message.release_jitter + message.deadline);
      mv.jitter[static_cast<std::size_t>(k)] = jit;
      require(ctx_.implies(ctx_.lnot(used), ctx_.eq(jit, zero)));

      if (medium.type == rt::MediumType::kTokenRing) {
        int lo = medium.ecus.front(), hi = medium.ecus.front();
        for (const int e : medium.ecus) {
          lo = std::min(lo, e);
          hi = std::max(hi, e);
        }
        mv.station[static_cast<std::size_t>(k)] = mk_int_var(
            "stn_" + mname + "_" + medium.name, lo, hi);
        mv.slot_len[static_cast<std::size_t>(k)] = mk_int_var(
            "osl_" + mname + "_" + medium.name, medium.slot_min,
            medium.slot_max);
      }
      mv.response[static_cast<std::size_t>(k)] = mk_int_var(
          "rm_" + mname + "_" + medium.name, 0, message.deadline);
      require(ctx_.implies(
          ctx_.lnot(used),
          ctx_.eq(mv.response[static_cast<std::size_t>(k)], zero)));
    }

    // Gateway service cost and budget sum: per candidate route.
    Ticks serv_min = 0, serv_max = 0;
    std::vector<Ticks> serv_of(mv.routes.size(), 0);
    for (std::size_t c = 0; c < mv.routes.size(); ++c) {
      const net::Path& path = routes[static_cast<std::size_t>(mv.routes[c])];
      Ticks serv = 0;
      for (std::size_t l = 0; l + 1 < path.size(); ++l) {
        serv += problem_.arch.media[static_cast<std::size_t>(path[l])]
                    .gateway_cost;
      }
      serv_of[c] = serv;
      if (c == 0) {
        serv_min = serv_max = serv;
      } else {
        serv_min = std::min(serv_min, serv);
        serv_max = std::max(serv_max, serv);
      }
    }
    NodeId serv_node;
    if (serv_min == serv_max) {
      serv_node = ctx_.constant(serv_min);
    } else {
      serv_node = mk_int_var("serv_" + mname, serv_min, serv_max);
      for (std::size_t c = 0; c < mv.routes.size(); ++c) {
        require(ctx_.implies(mv.rsel[c],
                             ctx_.eq(serv_node, ctx_.constant(serv_of[c]))));
      }
    }
    require(ctx_.le(ctx_.add(ctx_.sum(budget_terms), serv_node),
                    ctx_.constant(message.deadline)));

    // Jitter chains and station pinning, per candidate route.
    for (std::size_t c = 0; c < mv.routes.size(); ++c) {
      const net::Path& path = routes[static_cast<std::size_t>(mv.routes[c])];
      const NodeId sel = mv.rsel[c];
      NodeId acc = ctx_.constant(message.release_jitter);
      for (std::size_t l = 0; l < path.size(); ++l) {
        const int k = path[l];
        const rt::Medium& medium =
            problem_.arch.media[static_cast<std::size_t>(k)];
        require(ctx_.implies(
            sel, ctx_.eq(mv.jitter[static_cast<std::size_t>(k)], acc)));
        if (medium.type == rt::MediumType::kTokenRing) {
          const NodeId stn = mv.station[static_cast<std::size_t>(k)];
          if (l == 0) {
            require(ctx_.implies(sel, ctx_.eq(stn, a_src)));
          } else {
            const int gw = problem_.arch.gateway_between(
                path[l - 1], path[l]);
            require(ctx_.implies(sel, ctx_.eq(stn, ctx_.constant(gw))));
          }
        }
        const Ticks beta =
            rt::transmission_ticks(medium, message.size_bytes);
        acc = ctx_.add(
            acc, ctx_.sub(mv.local_dl[static_cast<std::size_t>(k)],
                          ctx_.constant(beta)));
      }
    }

    // TDMA slot selection: (K ∧ stn = ecus[j]) -> osl = lambda_k[j], and
    // the slot must fit the message.
    for (int k = 0; k < num_media; ++k) {
      if (mv.used[static_cast<std::size_t>(k)] == ir::kInvalidNode) continue;
      const rt::Medium& medium =
          problem_.arch.media[static_cast<std::size_t>(k)];
      if (medium.type != rt::MediumType::kTokenRing) continue;
      const NodeId used = mv.used[static_cast<std::size_t>(k)];
      const NodeId stn = mv.station[static_cast<std::size_t>(k)];
      const NodeId osl = mv.slot_len[static_cast<std::size_t>(k)];
      for (std::size_t j = 0; j < medium.ecus.size(); ++j) {
        require(ctx_.implies(
            ctx_.land(used, ctx_.eq(stn, ctx_.constant(medium.ecus[j]))),
            ctx_.eq(osl,
                    slot_vars_[static_cast<std::size_t>(k)][j])));
      }
      const Ticks rho = rt::transmission_ticks(medium, message.size_bytes);
      require(ctx_.implies(used, ctx_.ge(osl, ctx_.constant(rho))));
    }
  }

  // Per-medium response times with interference and TDMA blocking.
  for (int g = 0; g < num_msgs; ++g) {
    MsgVars& mv = msg_[static_cast<std::size_t>(g)];
    if (mv.routes.empty()) continue;
    const auto& ref = refs_[static_cast<std::size_t>(g)];
    const rt::Message& message = problem_.tasks.message(ref);
    const std::string mname = "m_" + msg_name(ref);
    group("message:" + msg_name(ref));

    for (int k = 0; k < num_media; ++k) {
      if (mv.used[static_cast<std::size_t>(k)] == ir::kInvalidNode) continue;
      const NodeId used = mv.used[static_cast<std::size_t>(k)];
      const rt::Medium& medium =
          problem_.arch.media[static_cast<std::size_t>(k)];
      const NodeId rm = mv.response[static_cast<std::size_t>(k)];
      const Ticks rho = rt::transmission_ticks(medium, message.size_bytes);
      const bool tdma = medium.type == rt::MediumType::kTokenRing;

      std::vector<NodeId> terms;
      for (int h = 0; h < num_msgs; ++h) {
        if (h == g) continue;
        if (msg_rank[static_cast<std::size_t>(h)] >=
            msg_rank[static_cast<std::size_t>(g)]) {
          continue;  // only higher-priority messages interfere
        }
        const MsgVars& other = msg_[static_cast<std::size_t>(h)];
        if (other.routes.empty() ||
            other.used[static_cast<std::size_t>(k)] == ir::kInvalidNode) {
          continue;
        }
        const auto& href = refs_[static_cast<std::size_t>(h)];
        const rt::Message& hmsg = problem_.tasks.message(href);
        const Ticks ht =
            problem_.tasks.tasks[static_cast<std::size_t>(href.task)].period;
        const Ticks hrho = rt::transmission_ticks(medium, hmsg.size_bytes);
        NodeId guard =
            ctx_.land(used, other.used[static_cast<std::size_t>(k)]);
        if (tdma) {
          guard = ctx_.land(
              guard, ctx_.eq(mv.station[static_cast<std::size_t>(k)],
                             other.station[static_cast<std::size_t>(k)]));
        }
        const Ticks imax = ceil_div(
            message.deadline + hmsg.release_jitter + hmsg.deadline, ht);
        const NodeId imsg = mk_int_var(
            "Im_" + mname + "_" + msg_name(href) + "_" + medium.name, 0,
            imax);
        const NodeId arrivals =
            ctx_.add(rm, other.jitter[static_cast<std::size_t>(k)]);
        require(ctx_.implies(
            guard,
            ctx_.ge(ctx_.mul(imsg, ctx_.constant(ht)), arrivals)));
        require(ctx_.implies(
            guard, ctx_.lt(ctx_.mul(ctx_.sub(imsg, ctx_.constant(1)),
                                    ctx_.constant(ht)),
                           arrivals)));
        require(ctx_.implies(ctx_.lnot(guard), ctx_.eq(imsg, ctx_.constant(0))));
        terms.push_back(ctx_.mul(imsg, ctx_.constant(hrho)));
      }

      NodeId rhs = ctx_.add(ctx_.constant(rho), ctx_.sum(terms));
      if (!tdma && medium.can_blocking) {
        // Non-preemptive blocking: B = max over lower-priority messages
        // sharing the bus of their frame time (0 if none). Exact max via
        // lower bounds plus an achievability disjunction.
        std::vector<NodeId> cands;
        Ticks bmax = 0;
        for (int h = 0; h < num_msgs; ++h) {
          if (h == g || msg_rank[static_cast<std::size_t>(h)] <=
                            msg_rank[static_cast<std::size_t>(g)]) {
            continue;
          }
          const MsgVars& other = msg_[static_cast<std::size_t>(h)];
          if (other.routes.empty() ||
              other.used[static_cast<std::size_t>(k)] == ir::kInvalidNode) {
            continue;
          }
          const Ticks hrho = rt::transmission_ticks(
              medium,
              problem_.tasks.message(refs_[static_cast<std::size_t>(h)])
                  .size_bytes);
          cands.push_back(ctx_.ite(other.used[static_cast<std::size_t>(k)],
                                   ctx_.constant(hrho), zero));
          bmax = std::max(bmax, hrho);
        }
        if (!cands.empty()) {
          const NodeId block = mk_int_var(
              "B_" + mname + "_" + medium.name, 0, bmax);
          std::vector<NodeId> achieved;
          achieved.push_back(ctx_.eq(block, zero));
          for (const NodeId c : cands) {
            require(ctx_.ge(block, c));
            achieved.push_back(ctx_.eq(block, c));
          }
          require(ctx_.or_all(achieved));
          rhs = ctx_.add(rhs, block);
        }
      }
      if (tdma) {
        // eq. (3): blocking Imb * (Lambda - osl) — the genuinely
        // non-linear term (both factors are variables when TRT is being
        // minimized).
        const NodeId lambda = lambda_[static_cast<std::size_t>(k)];
        const Ticks lambda_min =
            medium.slot_min * static_cast<Ticks>(medium.ecus.size());
        const NodeId imb = mk_int_var(
            "Imb_" + mname + "_" + medium.name, 0,
            ceil_div(message.deadline, std::max<Ticks>(1, lambda_min)));
        require(ctx_.implies(used, ctx_.ge(ctx_.mul(imb, lambda), rm)));
        require(ctx_.implies(
            used, ctx_.lt(ctx_.mul(ctx_.sub(imb, ctx_.constant(1)), lambda),
                          rm)));
        require(ctx_.implies(ctx_.lnot(used), ctx_.eq(imb, ctx_.constant(0))));
        rhs = ctx_.add(
            rhs, ctx_.mul(imb, ctx_.sub(lambda, mv.slot_len[
                                                    static_cast<std::size_t>(
                                                        k)])));
      }
      require(ctx_.implies(used, ctx_.eq(rm, rhs)));
      // Per-leg deadline: r_m^k <= d_m^k.
      require(ctx_.implies(
          used, ctx_.le(rm, mv.local_dl[static_cast<std::size_t>(k)])));
    }
  }
}

// ---------------------------------------------------------------------
// Objective.
// ---------------------------------------------------------------------

void AllocEncoder::build_cost() {
  group("objective");
  const NodeId zero = ctx_.constant(0);
  switch (objective_.kind) {
    case ObjectiveKind::kFeasibility:
      cost_ = zero;
      break;
    case ObjectiveKind::kTokenRingTrt: {
      if (objective_.medium < 0 ||
          objective_.medium >= static_cast<int>(problem_.arch.media.size()) ||
          problem_.arch.media[static_cast<std::size_t>(objective_.medium)]
                  .type != rt::MediumType::kTokenRing) {
        throw std::invalid_argument("kTokenRingTrt: not a token-ring medium");
      }
      cost_ = lambda_[static_cast<std::size_t>(objective_.medium)];
      break;
    }
    case ObjectiveKind::kSumTrt: {
      std::vector<NodeId> lambdas;
      for (const NodeId l : lambda_) {
        if (l != ir::kInvalidNode) lambdas.push_back(l);
      }
      cost_ = ctx_.sum(lambdas);
      break;
    }
    case ObjectiveKind::kCanLoad: {
      if (objective_.medium < 0 ||
          objective_.medium >= static_cast<int>(problem_.arch.media.size()) ||
          problem_.arch.media[static_cast<std::size_t>(objective_.medium)]
                  .type != rt::MediumType::kCan) {
        throw std::invalid_argument("kCanLoad: not a CAN medium");
      }
      const int k = objective_.medium;
      const rt::Medium& medium =
          problem_.arch.media[static_cast<std::size_t>(k)];
      std::vector<NodeId> terms;
      for (std::size_t g = 0; g < msg_.size(); ++g) {
        const MsgVars& mv = msg_[g];
        if (mv.routes.empty() ||
            mv.used[static_cast<std::size_t>(k)] == ir::kInvalidNode) {
          continue;
        }
        const auto& ref = refs_[g];
        const rt::Message& message = problem_.tasks.message(ref);
        const Ticks period =
            problem_.tasks.tasks[static_cast<std::size_t>(ref.task)].period;
        const Ticks rho = rt::transmission_ticks(medium, message.size_bytes);
        // Scaled per-message load: ceil(rho * 1000 / period) — an integer
        // upper bound on the message's contribution in 1/1000 units.
        const std::int64_t u = ceil_div(rho * 1000, period);
        terms.push_back(ctx_.ite(mv.used[static_cast<std::size_t>(k)],
                                 ctx_.constant(u), zero));
      }
      cost_ = ctx_.sum(terms);
      break;
    }
    case ObjectiveKind::kMaxUtilization: {
      // cost >= util_p for every ECU; minimization pins cost to the max.
      // util_p = sum_i [a_i = p] * ceil(1000 * c_i(p) / t_i).
      const NodeId cost_var = mk_int_var("max_util", 0, 1000);
      for (int p = 0; p < problem_.arch.num_ecus; ++p) {
        std::vector<NodeId> terms;
        for (std::size_t i = 0; i < problem_.tasks.tasks.size(); ++i) {
          const rt::Task& t = problem_.tasks.tasks[i];
          if (!t.allowed_on(p) || !problem_.arch.can_host_tasks(p)) continue;
          if (ctx_.node(a_[i]).op == ir::Op::kConst) continue;
          const std::int64_t u = ceil_div(
              1000 * t.wcet[static_cast<std::size_t>(p)], t.period);
          terms.push_back(ctx_.ite(ctx_.eq(a_[i], ctx_.constant(p)),
                                   ctx_.constant(u), zero));
        }
        if (!terms.empty()) {
          require(ctx_.ge(cost_var, ctx_.sum(terms)));
        }
      }
      cost_ = cost_var;
      break;
    }
  }
  cost_range_ = ctx_.range(cost_);
  blaster_->touch(cost_);
}

// ---------------------------------------------------------------------
// Solving and decoding.
// ---------------------------------------------------------------------

sat::LBool AllocEncoder::solve(std::optional<std::int64_t> cost_lo,
                               std::optional<std::int64_t> cost_hi,
                               sat::Budget budget) {
  if (!ok_ || !solver_->ok()) return sat::LBool::kFalse;
  std::vector<sat::Lit> assumptions;
  if (cost_lo || cost_hi) {
    const std::int64_t lo = cost_lo.value_or(cost_range_.lo);
    const std::int64_t hi = cost_hi.value_or(cost_range_.hi);
    const auto key = std::make_pair(lo, hi);
    auto it = bound_guards_.find(key);
    if (it == bound_guards_.end()) {
      const NodeId bound = ctx_.land(
          ctx_.ge(cost_, ctx_.constant(lo)),
          ctx_.le(cost_, ctx_.constant(hi)));
      it = bound_guards_.emplace(key, blaster_->formula_lit(bound)).first;
    }
    assumptions.push_back(it->second);
  }
  return solver_->solve(assumptions, budget);
}

bool AllocEncoder::assert_cost_bounds(std::int64_t lo, std::int64_t hi) {
  ok_ = blaster_->assert_true(ctx_.ge(cost_, ctx_.constant(lo))) && ok_;
  ok_ = blaster_->assert_true(ctx_.le(cost_, ctx_.constant(hi))) && ok_;
  return ok_;
}

std::int64_t AllocEncoder::decode_cost() const {
  return blaster_->int_value(cost_);
}

void AllocEncoder::hint(const rt::Allocation& allocation) {
  if (allocation.task_ecu.size() != a_.size()) return;
  for (std::size_t i = 0; i < a_.size(); ++i) {
    if (ctx_.node(a_[i]).op == ir::Op::kIntVar) {
      blaster_->hint_int(a_[i], allocation.task_ecu[i]);
    }
  }
  for (std::size_t k = 0;
       k < slot_vars_.size() && k < allocation.slots.size(); ++k) {
    for (std::size_t j = 0;
         j < slot_vars_[k].size() && j < allocation.slots[k].size(); ++j) {
      blaster_->hint_int(slot_vars_[k][j], allocation.slots[k][j]);
    }
  }
  // Route selectors: prefer the candidate matching the hinted route; and
  // seed the per-medium deadline budgets along it.
  const auto& routes = closures_->routes();
  for (std::size_t g = 0;
       g < msg_.size() && g < allocation.msg_route.size(); ++g) {
    const MsgVars& mv = msg_[g];
    for (std::size_t c = 0; c < mv.routes.size(); ++c) {
      const bool match =
          routes[static_cast<std::size_t>(mv.routes[c])] ==
          allocation.msg_route[g];
      blaster_->hint_bool(mv.rsel[c], match);
    }
    if (g >= allocation.msg_local_deadline.size()) continue;
    const auto& route = allocation.msg_route[g];
    const auto& budgets = allocation.msg_local_deadline[g];
    if (budgets.size() != route.size()) continue;
    for (std::size_t l = 0; l < route.size(); ++l) {
      const auto k = static_cast<std::size_t>(route[l]);
      if (k < mv.local_dl.size() && mv.local_dl[k] != ir::kInvalidNode &&
          ctx_.node(mv.local_dl[k]).op == ir::Op::kIntVar) {
        blaster_->hint_int(mv.local_dl[k], budgets[l]);
      }
    }
  }
}

rt::Allocation AllocEncoder::decode() const {
  const auto n = static_cast<int>(problem_.tasks.tasks.size());
  const auto num_msgs = static_cast<int>(refs_.size());
  rt::Allocation alloc;
  alloc.task_ecu.resize(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    alloc.task_ecu[static_cast<std::size_t>(i)] = static_cast<int>(
        blaster_->int_value(a_[static_cast<std::size_t>(i)]));
  }

  // Priorities: rank by number of strictly-higher tasks. Transitivity of
  // the tie bools guarantees this is a valid total order.
  auto decoded_higher = [&](int i, int j) -> bool {
    const NodeId node =
        higher_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    const ir::Node& inode = ctx_.node(node);
    if (inode.op == ir::Op::kBoolConst) return inode.value != 0;
    try {
      return blaster_->bool_value(node);
    } catch (const std::logic_error&) {
      return i < j;  // tie var never encoded: any consistent order works
    }
  };
  alloc.task_prio.resize(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    int rank = 0;
    for (int j = 0; j < n; ++j) {
      if (j != i && decoded_higher(j, i)) ++rank;
    }
    alloc.task_prio[static_cast<std::size_t>(i)] = rank;
  }

  // Routes and budgets.
  const auto& routes = closures_->routes();
  alloc.msg_route.resize(static_cast<std::size_t>(num_msgs));
  alloc.msg_local_deadline.resize(static_cast<std::size_t>(num_msgs));
  for (int g = 0; g < num_msgs; ++g) {
    const MsgVars& mv = msg_[static_cast<std::size_t>(g)];
    int chosen = -1;
    for (std::size_t c = 0; c < mv.rsel.size(); ++c) {
      if (blaster_->bool_value(mv.rsel[c])) {
        chosen = mv.routes[c];
        break;
      }
    }
    if (chosen < 0) continue;  // unsat instance; nothing to decode
    const net::Path& path = routes[static_cast<std::size_t>(chosen)];
    alloc.msg_route[static_cast<std::size_t>(g)] = path;
    for (const int k : path) {
      alloc.msg_local_deadline[static_cast<std::size_t>(g)].push_back(
          blaster_->int_value(mv.local_dl[static_cast<std::size_t>(k)]));
    }
  }

  // Slot tables.
  alloc.slots.resize(problem_.arch.media.size());
  for (std::size_t k = 0; k < problem_.arch.media.size(); ++k) {
    for (const NodeId v : slot_vars_[k]) {
      alloc.slots[k].push_back(blaster_->int_value(v));
    }
  }
  return alloc;
}

}  // namespace optalloc::alloc

#include "alloc/optimizer.hpp"

#include <cstdio>
#include <memory>
#include <vector>

#include "alloc/cost.hpp"
#include "check/drat.hpp"
#include "check/model.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/sharing.hpp"
#include "rt/verify.hpp"
#include "sat/proof.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace optalloc::alloc {

namespace {

/// Accumulate solver statistics into the result.
void absorb_stats(OptimizeStats& stats, const AllocEncoder& enc) {
  stats.boolean_vars += enc.solver().num_vars();
  stats.boolean_literals += enc.solver().stats().added_literals;
  stats.conflicts += enc.solver().stats().conflicts;
  stats.pb_constraints += enc.pb().stats().constraints;
  stats.clauses_exported += enc.solver().stats().clauses_exported;
  stats.clauses_imported += enc.solver().stats().clauses_imported;
}

/// Apply the per-worker diversification knobs to a freshly built solver.
/// Must run before build(): default_polarity seeds every new variable's
/// initial phase at creation time.
void apply_tuning(sat::Solver& solver, const SolverTuning& t) {
  solver.var_decay = t.var_decay;
  solver.restart_base = t.restart_base;
  solver.default_polarity = t.default_polarity;
  solver.phase_saving = t.phase_saving;
  solver.random_branch_freq = t.random_branch_freq;
  if (t.seed != 0) solver.set_random_seed(t.seed);
}

void apply_inprocess(sat::Solver& solver, const OptimizeOptions& options) {
  solver.inprocess = options.inprocess;
  if (options.inprocess_interval > 0) {
    solver.inprocess_interval = options.inprocess_interval;
  }
}

const char* verdict_name(sat::LBool v) {
  switch (v) {
    case sat::LBool::kTrue: return "sat";
    case sat::LBool::kFalse: return "unsat";
    case sat::LBool::kUndef: return "undef";
  }
  return "?";
}

/// Distribution metrics for the phases a request's cost decomposes into
/// (trace spans carry the same names' timings per request; these carry
/// the aggregate shape across requests).
obs::Metric encode_ms_hist() {
  static const obs::Metric m = obs::histogram("opt.encode_ms");
  return m;
}
obs::Metric solve_conflicts_hist() {
  static const obs::Metric m = obs::histogram("opt.solve_conflicts");
  return m;
}

/// Fold one finished optimize() run into the global metrics registry.
void flush_optimize_metrics(const OptimizeResult& result) {
  static const obs::Metric runs = obs::counter("opt.runs");
  static const obs::Metric optimal = obs::counter("opt.optimal");
  static const obs::Metric calls = obs::counter("opt.sat_calls");
  static const obs::Metric calls_sat = obs::counter("opt.sat_calls_sat");
  static const obs::Metric calls_unsat = obs::counter("opt.sat_calls_unsat");
  static const obs::Metric t_total = obs::timer("opt.time.total");
  static const obs::Metric t_encode = obs::timer("opt.time.encode");
  static const obs::Metric t_solve = obs::timer("opt.time.solve");
  obs::add(runs, 1);
  if (result.status == OptimizeResult::Status::kOptimal) obs::add(optimal, 1);
  obs::add(calls, result.stats.sat_calls);
  obs::add(calls_sat, result.stats.sat_calls_sat);
  obs::add(calls_unsat, result.stats.sat_calls_unsat);
  obs::record(t_total, result.stats.seconds);
  obs::record(t_encode, result.stats.encode_seconds);
  obs::record(t_solve, result.stats.solve_seconds);
}

}  // namespace

std::string OptimizeStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "calls=%d (%d sat / %d unsat) encode=%.3fs solve=%.3fs "
                "total=%.3fs vars=%lld lits=%llu conflicts=%llu pb=%llu",
                sat_calls, sat_calls_sat, sat_calls_unsat, encode_seconds,
                solve_seconds, seconds, static_cast<long long>(boolean_vars),
                static_cast<unsigned long long>(boolean_literals),
                static_cast<unsigned long long>(conflicts),
                static_cast<unsigned long long>(pb_constraints));
  std::string s = buf;
  if (clauses_exported > 0 || clauses_imported > 0 || bounds_published > 0 ||
      bounds_adopted > 0) {
    std::snprintf(buf, sizeof buf,
                  " share: exported=%llu imported=%llu bounds_pub=%llu "
                  "bounds_adopt=%llu",
                  static_cast<unsigned long long>(clauses_exported),
                  static_cast<unsigned long long>(clauses_imported),
                  static_cast<unsigned long long>(bounds_published),
                  static_cast<unsigned long long>(bounds_adopted));
    s += buf;
  }
  if (models_certified > 0 || proofs_certified > 0) {
    std::snprintf(buf, sizeof buf,
                  " certify: models=%d proofs=%d lemmas=%llu time=%.3fs",
                  models_certified, proofs_certified,
                  static_cast<unsigned long long>(proof_lemmas_checked),
                  certify_seconds);
    s += buf;
  }
  return s;
}

OptimizeResult optimize(const Problem& problem, Objective objective,
                        const OptimizeOptions& options) {
  OptimizeResult result;
  Stopwatch total;

  auto out_of_time = [&] {
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      return true;
    }
    return options.time_limit_s > 0.0 && total.seconds() >= options.time_limit_s;
  };
  auto call_budget = [&]() -> sat::Budget {
    sat::Budget b = options.per_call;
    b.stop = options.stop;
    if (options.time_limit_s > 0.0) {
      const double remaining = options.time_limit_s - total.seconds();
      if (b.seconds <= 0.0 || remaining < b.seconds) {
        b.seconds = std::max(0.001, remaining);
      }
    }
    return b;
  };

  // CDCL conflicts consumed across all SOLVE calls so far (the per-call
  // solver stats are only absorbed into result.stats at the end).
  std::uint64_t conflicts_seen = 0;

  // Anytime progress: invoked after the initial solution and after every
  // interval-narrowing SOLVE; mirrored as an "interval" trace event and
  // a flight-recorder note (so a post-mortem shows the proven interval).
  auto report_progress = [&](std::int64_t lower, std::int64_t upper) {
    if (obs::flight_enabled()) {
      obs::FlightNote("interval")
          .num("lower", lower)
          .num("upper", upper)
          .num("sat_calls", result.stats.sat_calls);
    }
    if (obs::trace_enabled()) {
      obs::TraceEvent e("interval");
      e.num("lower", lower).num("upper", upper);
      if (result.has_allocation) e.num("incumbent", result.cost);
      e.num("sat_calls", result.stats.sat_calls);
    }
    if (options.on_progress) {
      Progress p;
      p.seconds = total.seconds();
      p.lower = lower;
      p.upper = upper;
      p.has_incumbent = result.has_allocation;
      p.incumbent_cost = result.has_allocation ? result.cost : -1;
      p.sat_calls = result.stats.sat_calls;
      p.conflicts = conflicts_seen;
      options.on_progress(p);
    }
  };

  // --- Cooperative shared search (active only under options.share). -----
  // Bound broadcasting: lower bounds this worker proves and incumbents it
  // finds are published to the shared interval; foreign bounds are folded
  // into the local search before each SOLVE step. Under proof logging the
  // worker stops *consuming* foreign lower bounds (they have no derivation
  // in its log) but keeps publishing, and still adopts foreign incumbents
  // — those are re-validated independently by the final RT analysis.
  par::SharedInterval* interval =
      options.share != nullptr ? options.share->interval() : nullptr;
  const bool proof_active = options.certify || options.proof != nullptr;

  auto publish_lower_bound = [&](std::int64_t lo) {
    if (interval != nullptr && interval->raise_lower(lo)) {
      ++result.stats.bounds_published;
    }
  };
  // Store the allocation first, then tighten the shared bound, so any
  // worker observing the bound can fetch an allocation matching it.
  auto announce_incumbent = [&](std::int64_t cost) {
    if (!result.has_allocation) return;
    if (options.publish_incumbent) {
      options.publish_incumbent(cost, result.allocation);
    }
    if (interval != nullptr && interval->drop_upper(cost)) {
      ++result.stats.bounds_published;
    }
  };
  auto sync_shared_bounds = [&](std::int64_t& lower, std::int64_t& upper) {
    if (interval == nullptr) return;
    bool adopted = false;
    if (!proof_active) {
      const std::int64_t gl = interval->lower();
      if (gl > lower) {
        lower = gl;
        ++result.stats.bounds_adopted;
        adopted = true;
      }
    }
    if (interval->upper() < upper && options.fetch_incumbent) {
      if (auto inc = options.fetch_incumbent()) {
        if (inc->first < upper) {
          upper = inc->first;
          result.cost = upper;
          result.allocation = std::move(inc->second);
          result.has_allocation = true;
          ++result.stats.bounds_adopted;
          adopted = true;
        }
      }
    }
    if (adopted && obs::trace_enabled()) {
      obs::TraceEvent("bound_sync").num("lower", lower).num("upper", upper);
    }
  };
  // The first SOLVE can be capped by a sibling's incumbent as well as the
  // caller-provided one.
  auto first_solve_cap = [&]() -> std::optional<std::int64_t> {
    std::optional<std::int64_t> cap = options.initial_upper;
    if (interval != nullptr) {
      const std::int64_t gu = interval->upper();
      if (gu != par::SharedInterval::kNoUpper && (!cap || gu < *cap)) {
        cap = gu;
      }
    }
    return cap;
  };

  // --- Certification machinery (active only under options.certify). -----
  // Every SAT answer is replayed against the PB store and the pre-encode
  // IR formulas; every UNSAT answer contributes its core lemma as a proof
  // obligation, discharged by one backward RUP-checking pass at the end
  // (incremental mode) or per call (scratch mode); the final allocation is
  // re-validated by the independent RT analysis.
  std::vector<std::size_t> unsat_steps;  // proof-step indices of UNSAT cores
  bool cert_ok = true;
  auto cert_fail = [&](std::string msg) {
    if (cert_ok) {
      cert_ok = false;
      result.certify_error = std::move(msg);
    }
    log_info("certify: FAILED: %s", result.certify_error.c_str());
  };

  auto certify_model = [&](AllocEncoder& enc, std::optional<std::int64_t> lo,
                           std::optional<std::int64_t> hi) {
    if (!options.certify) return;
    obs::Span span("certify");
    Stopwatch sw;
    const check::ModelResult mr =
        check::check_model(enc.ctx(), enc.asserted_formulas(), enc.blaster(),
                           enc.solver(), &enc.pb());
    bool ok = mr.ok;
    std::string err = mr.error;
    if (ok) {
      const std::int64_t cost = enc.decode_cost();
      if ((lo && cost < *lo) || (hi && cost > *hi)) {
        ok = false;
        err = "decoded cost " + std::to_string(cost) +
              " escapes the queried bounds";
      }
    }
    result.stats.certify_seconds += sw.seconds();
    if (ok) {
      ++result.stats.models_certified;
    } else {
      cert_fail("model: " + err);
    }
    if (obs::trace_enabled()) {
      obs::TraceEvent e("certify");
      e.str("kind", "model").boolean("ok", ok);
      if (!ok) e.str("error", err);
    }
  };

  auto certify_proof = [&](const sat::ProofLog& log,
                           std::span<const std::size_t> targets) {
    if (!options.certify) return;
    obs::Span span("certify");
    Stopwatch sw;
    const check::DratResult dr = check::check_proof(log, targets);
    result.stats.certify_seconds += sw.seconds();
    if (dr.ok) {
      ++result.stats.proofs_certified;
      result.stats.proof_lemmas_checked += dr.lemmas_checked;
    } else {
      cert_fail("proof: " + dr.error);
    }
    if (obs::trace_enabled()) {
      obs::TraceEvent e("certify");
      e.str("kind", "proof")
          .boolean("ok", dr.ok)
          .num("lemmas", static_cast<std::int64_t>(dr.lemmas_checked))
          .num("theory", static_cast<std::int64_t>(dr.theory_checked));
      if (!dr.ok) e.str("error", dr.error);
    }
  };

  auto certify_allocation = [&] {
    if (!options.certify || !result.has_allocation) return;
    obs::Span span("certify");
    Stopwatch sw;
    bool ok = true;
    std::string err;
    const rt::VerifyReport report =
        rt::verify(problem.tasks, problem.arch, result.allocation);
    if (!report.feasible) {
      ok = false;
      err = "final allocation failed RT re-validation";
    } else {
      const std::int64_t value =
          objective_value(problem, objective, result.allocation);
      if (value != result.cost) {
        ok = false;
        err = "objective re-evaluates to " + std::to_string(value) +
              ", solver reported " + std::to_string(result.cost);
      }
    }
    result.stats.certify_seconds += sw.seconds();
    if (!ok) cert_fail("allocation: " + err);
    if (obs::trace_enabled()) {
      obs::TraceEvent e("certify");
      e.str("kind", "allocation").boolean("ok", ok);
      if (!ok) e.str("error", err);
    }
  };

  // One SOLVE call against `enc`, with wall time, SAT/UNSAT breakdown,
  // and a "solve" trace event carrying the queried bounds.
  auto timed_solve = [&](AllocEncoder& enc, std::optional<std::int64_t> lo,
                         std::optional<std::int64_t> hi) -> sat::LBool {
    obs::Span span("SOLVE");
    ++result.stats.sat_calls;
    const std::uint64_t conflicts_before = enc.solver().stats().conflicts;
    Stopwatch sw;
    const sat::LBool verdict = enc.solve(lo, hi, call_budget());
    const double secs = sw.seconds();
    const std::uint64_t call_conflicts =
        enc.solver().stats().conflicts - conflicts_before;
    conflicts_seen += call_conflicts;
    obs::observe(solve_conflicts_hist(),
                 static_cast<double>(call_conflicts));
    result.stats.solve_seconds += secs;
    if (verdict == sat::LBool::kTrue) {
      ++result.stats.sat_calls_sat;
    } else if (verdict == sat::LBool::kFalse) {
      ++result.stats.sat_calls_unsat;
      // The last logged step is this answer's conflict-core (or empty)
      // lemma: a proof obligation for the final backward check.
      const sat::ProofLog* log = enc.solver().proof();
      if (log != nullptr && log->num_steps() > 0 &&
          log->step(log->last_step()).kind == sat::ProofStepKind::kLemma) {
        unsat_steps.push_back(log->last_step());
      }
    }
    if (obs::flight_enabled()) {
      // Numeric result code (flight records carry numbers only):
      // 1 = SAT, 0 = UNSAT, -1 = budget exhausted.
      obs::FlightNote("solve")
          .num("call", result.stats.sat_calls)
          .num("result", verdict == sat::LBool::kTrue    ? 1
                         : verdict == sat::LBool::kFalse ? 0
                                                         : -1)
          .num("conflicts", call_conflicts)
          .num("seconds", secs);
    }
    if (obs::trace_enabled()) {
      obs::TraceEvent e("solve");
      e.num("call", result.stats.sat_calls);
      if (lo) e.num("lo", *lo);
      if (hi) e.num("hi", *hi);
      e.str("result", verdict_name(verdict))
          .num("conflicts", call_conflicts)
          .num("seconds", secs);
    }
    return verdict;
  };

  auto trace_optimum = [&] {
    if (!obs::trace_enabled()) return;
    obs::TraceEvent e("optimum");
    e.str("status", result.status_string());
    if (result.has_allocation) e.num("cost", result.cost);
    e.num("lower", result.lower_bound)
        .num("sat_calls", result.stats.sat_calls)
        .num("seconds", result.stats.seconds);
    if (options.certify) e.boolean("certified", result.certified);
  };

  // --- Incremental mode: one encoder, bounds as assumptions. ------------
  if (options.incremental) {
    // The proof log must be attached before build() so it captures the
    // whole clause database; one log spans the entire binary search, and
    // one backward pass at the end discharges every UNSAT step's core.
    sat::ProofLog local_proof;
    sat::ProofLog* proof = options.proof != nullptr
                               ? options.proof
                               : options.certify ? &local_proof : nullptr;
    AllocEncoder enc(problem, objective, options.encoder);
    if (options.tuning) apply_tuning(enc.solver(), *options.tuning);
    apply_inprocess(enc.solver(), options);
    if (proof != nullptr) enc.set_proof(proof);

    auto finish = [&](OptimizeResult::Status status) {
      result.status = status;
      if (options.certify &&
          (status == OptimizeResult::Status::kOptimal ||
           status == OptimizeResult::Status::kInfeasible)) {
        if (proof != nullptr &&
            (!unsat_steps.empty() ||
             status == OptimizeResult::Status::kInfeasible)) {
          certify_proof(*proof, unsat_steps);
        }
        certify_allocation();
        result.certified = cert_ok;
      }
      absorb_stats(result.stats, enc);
      result.stats.seconds = total.seconds();
      trace_optimum();
      flush_optimize_metrics(result);
      return result;
    };
    {
      obs::Span span("encode");
      Stopwatch sw;
      const bool built = enc.build();
      const double secs = sw.seconds();
      result.stats.encode_seconds += secs;
      obs::observe(encode_ms_hist(), secs * 1000.0);
      if (!built) return finish(OptimizeResult::Status::kInfeasible);
    }
    // Clause exchange joins here: the variable count right after build()
    // delimits the deterministic base encoding every sibling worker
    // shares; later bound-guard variables are query-order-dependent and
    // stay private.
    if (options.share != nullptr) {
      options.share->attach(enc.solver(), enc.solver().num_vars());
    }

    // R := SOLVE(phi): the first query yields an upper estimate. A
    // verified warm-start allocation short-circuits it entirely — its
    // objective value *is* a feasible R — and additionally biases the
    // solver's phases for the search steps that follow.
    std::int64_t upper = 0;
    bool have_upper = false;
    if (options.warm_start) {
      enc.hint(*options.warm_start);
      const auto warm_cost =
          evaluate_allocation(problem, objective, *options.warm_start);
      if (warm_cost) {
        upper = *warm_cost;
        result.cost = upper;
        result.allocation = *options.warm_start;
        result.has_allocation = true;
        have_upper = true;
        announce_incumbent(upper);
      }
    }
    sat::LBool verdict = sat::LBool::kUndef;
    if (!have_upper) {
      const std::optional<std::int64_t> cap = first_solve_cap();
      verdict = timed_solve(enc, {}, cap);
      if (verdict == sat::LBool::kFalse && cap) {
        verdict = timed_solve(enc, {}, {});
      }
      if (verdict == sat::LBool::kFalse) {
        return finish(OptimizeResult::Status::kInfeasible);
      }
      if (verdict == sat::LBool::kUndef) {
        return finish(OptimizeResult::Status::kBudgetExhausted);
      }
      certify_model(enc, {}, {});
      upper = enc.decode_cost();
      result.cost = upper;
      result.allocation = enc.decode();
      result.has_allocation = true;
      announce_incumbent(upper);
    }
    std::int64_t lower = enc.cost_range().lo;
    log_info("optimize: initial solution cost=%lld, searching [%lld, %lld]",
             static_cast<long long>(upper), static_cast<long long>(lower),
             static_cast<long long>(upper));
    report_progress(lower, upper);

    // BIN_SEARCH(phi). The paper's loop sets L := M on an UNSAT interval
    // [L, M]; since the optimum then lies in (M, R], we advance to M + 1
    // (fixing the paper's off-by-one, which would not terminate for
    // R = L + 1).
    while (lower < upper) {
      if (out_of_time()) {
        result.lower_bound = lower;
        return finish(OptimizeResult::Status::kBudgetExhausted);
      }
      sync_shared_bounds(lower, upper);
      if (lower >= upper) break;
      const std::int64_t mid =
          options.strategy == SearchStrategy::kBisection
              ? lower + (upper - lower) / 2
              : upper - 1;
      verdict = timed_solve(enc, lower, mid);
      if (verdict == sat::LBool::kUndef) {
        result.lower_bound = lower;
        return finish(OptimizeResult::Status::kBudgetExhausted);
      }
      if (verdict == sat::LBool::kFalse) {
        lower = mid + 1;
        publish_lower_bound(lower);
      } else {
        certify_model(enc, lower, mid);
        upper = enc.decode_cost();
        result.cost = upper;
        result.allocation = enc.decode();
        result.has_allocation = true;
        announce_incumbent(upper);
      }
      log_info("optimize: interval [%lld, %lld]",
               static_cast<long long>(lower), static_cast<long long>(upper));
      report_progress(lower, upper);
    }
    result.cost = upper;
    result.lower_bound = upper;
    publish_lower_bound(upper);
    return finish(OptimizeResult::Status::kOptimal);
  }

  // --- Scratch mode: fresh encoder per SOLVE (paper's base procedure). --
  auto finish_scratch = [&](OptimizeResult::Status status) {
    result.status = status;
    if (options.certify &&
        (status == OptimizeResult::Status::kOptimal ||
         status == OptimizeResult::Status::kInfeasible)) {
      certify_allocation();
      result.certified = cert_ok;
    }
    result.stats.seconds = total.seconds();
    trace_optimum();
    flush_optimize_metrics(result);
    return result;
  };
  auto scratch_solve = [&](std::optional<std::int64_t> lo,
                           std::optional<std::int64_t> hi,
                           std::int64_t& cost_out,
                           rt::Allocation& alloc_out,
                           ir::Range& cost_range_out) -> sat::LBool {
    // Scratch proofs are per call: each UNSAT answer is checked on the
    // spot, against the clause database of its own throwaway solver.
    sat::ProofLog call_proof;
    unsat_steps.clear();
    AllocEncoder enc(problem, objective, options.encoder);
    if (options.tuning) apply_tuning(enc.solver(), *options.tuning);
    apply_inprocess(enc.solver(), options);
    if (options.certify) enc.set_proof(&call_proof);
    bool built = false;
    {
      obs::Span span("encode");
      Stopwatch sw;
      built = enc.build();
      const double secs = sw.seconds();
      result.stats.encode_seconds += secs;
      obs::observe(encode_ms_hist(), secs * 1000.0);
    }
    cost_range_out = enc.cost_range();
    sat::LBool verdict = sat::LBool::kFalse;
    if (built && (!lo || !hi || enc.assert_cost_bounds(*lo, *hi))) {
      verdict = timed_solve(enc, {}, {});
    } else {
      // Encode-time UNSAT still counts as one (answered) SOLVE call.
      ++result.stats.sat_calls;
      ++result.stats.sat_calls_unsat;
    }
    if (verdict == sat::LBool::kTrue) {
      certify_model(enc, lo, hi);
      cost_out = enc.decode_cost();
      alloc_out = enc.decode();
    } else if (verdict == sat::LBool::kFalse && options.certify) {
      certify_proof(call_proof, unsat_steps);
    }
    absorb_stats(result.stats, enc);
    return verdict;
  };

  std::int64_t cost = -1;
  rt::Allocation alloc;
  ir::Range cost_range{0, 0};
  sat::LBool verdict = scratch_solve({}, {}, cost, alloc, cost_range);
  if (verdict == sat::LBool::kFalse) {
    return finish_scratch(OptimizeResult::Status::kInfeasible);
  }
  if (verdict == sat::LBool::kUndef) {
    return finish_scratch(OptimizeResult::Status::kBudgetExhausted);
  }
  std::int64_t upper = cost;
  std::int64_t lower = cost_range.lo;
  result.cost = upper;
  result.allocation = alloc;
  result.has_allocation = true;
  announce_incumbent(upper);
  report_progress(lower, upper);
  while (lower < upper) {
    if (out_of_time()) {
      result.lower_bound = lower;
      return finish_scratch(OptimizeResult::Status::kBudgetExhausted);
    }
    sync_shared_bounds(lower, upper);
    if (lower >= upper) break;
    const std::int64_t mid = lower + (upper - lower) / 2;
    verdict = scratch_solve(lower, mid, cost, alloc, cost_range);
    if (verdict == sat::LBool::kUndef) {
      result.lower_bound = lower;
      return finish_scratch(OptimizeResult::Status::kBudgetExhausted);
    }
    if (verdict == sat::LBool::kFalse) {
      lower = mid + 1;
      publish_lower_bound(lower);
    } else {
      upper = cost;
      result.cost = upper;
      result.allocation = alloc;
      announce_incumbent(upper);
    }
    report_progress(lower, upper);
  }
  result.cost = upper;
  result.lower_bound = upper;
  publish_lower_bound(upper);
  return finish_scratch(OptimizeResult::Status::kOptimal);
}

}  // namespace optalloc::alloc

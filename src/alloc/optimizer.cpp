#include "alloc/optimizer.hpp"

#include <memory>

#include "alloc/cost.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace optalloc::alloc {

namespace {

/// Accumulate solver statistics into the result.
void absorb_stats(OptimizeStats& stats, const AllocEncoder& enc) {
  stats.boolean_vars += enc.solver().num_vars();
  stats.boolean_literals += enc.solver().stats().added_literals;
  stats.conflicts += enc.solver().stats().conflicts;
  stats.pb_constraints += enc.pb().stats().constraints;
}

}  // namespace

OptimizeResult optimize(const Problem& problem, Objective objective,
                        const OptimizeOptions& options) {
  OptimizeResult result;
  Stopwatch total;

  auto out_of_time = [&] {
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      return true;
    }
    return options.time_limit_s > 0.0 && total.seconds() >= options.time_limit_s;
  };
  auto call_budget = [&]() -> sat::Budget {
    sat::Budget b = options.per_call;
    b.stop = options.stop;
    if (options.time_limit_s > 0.0) {
      const double remaining = options.time_limit_s - total.seconds();
      if (b.seconds <= 0.0 || remaining < b.seconds) {
        b.seconds = std::max(0.001, remaining);
      }
    }
    return b;
  };

  // --- Incremental mode: one encoder, bounds as assumptions. ------------
  if (options.incremental) {
    AllocEncoder enc(problem, objective, options.encoder);
    const bool built = enc.build();
    auto finish = [&](OptimizeResult::Status status) {
      result.status = status;
      absorb_stats(result.stats, enc);
      result.stats.seconds = total.seconds();
      return result;
    };
    if (!built) return finish(OptimizeResult::Status::kInfeasible);

    // R := SOLVE(phi): the first query yields an upper estimate. A
    // verified warm-start allocation short-circuits it entirely — its
    // objective value *is* a feasible R — and additionally biases the
    // solver's phases for the search steps that follow.
    std::int64_t upper = 0;
    bool have_upper = false;
    if (options.warm_start) {
      enc.hint(*options.warm_start);
      const auto warm_cost =
          evaluate_allocation(problem, objective, *options.warm_start);
      if (warm_cost) {
        upper = *warm_cost;
        result.cost = upper;
        result.allocation = *options.warm_start;
        result.has_allocation = true;
        have_upper = true;
      }
    }
    sat::LBool verdict = sat::LBool::kUndef;
    if (!have_upper) {
      ++result.stats.sat_calls;
      verdict = enc.solve({}, options.initial_upper, call_budget());
      if (verdict == sat::LBool::kFalse && options.initial_upper) {
        ++result.stats.sat_calls;
        verdict = enc.solve({}, {}, call_budget());
      }
      if (verdict == sat::LBool::kFalse) {
        return finish(OptimizeResult::Status::kInfeasible);
      }
      if (verdict == sat::LBool::kUndef) {
        return finish(OptimizeResult::Status::kBudgetExhausted);
      }
      upper = enc.decode_cost();
      result.cost = upper;
      result.allocation = enc.decode();
      result.has_allocation = true;
    }
    std::int64_t lower = enc.cost_range().lo;
    log_info("optimize: initial solution cost=%lld, searching [%lld, %lld]",
             static_cast<long long>(upper), static_cast<long long>(lower),
             static_cast<long long>(upper));

    // BIN_SEARCH(phi). The paper's loop sets L := M on an UNSAT interval
    // [L, M]; since the optimum then lies in (M, R], we advance to M + 1
    // (fixing the paper's off-by-one, which would not terminate for
    // R = L + 1).
    while (lower < upper) {
      if (out_of_time()) {
        result.lower_bound = lower;
        return finish(OptimizeResult::Status::kBudgetExhausted);
      }
      const std::int64_t mid =
          options.strategy == SearchStrategy::kBisection
              ? lower + (upper - lower) / 2
              : upper - 1;
      ++result.stats.sat_calls;
      verdict = enc.solve(lower, mid, call_budget());
      if (verdict == sat::LBool::kUndef) {
        result.lower_bound = lower;
        return finish(OptimizeResult::Status::kBudgetExhausted);
      }
      if (verdict == sat::LBool::kFalse) {
        lower = mid + 1;
      } else {
        upper = enc.decode_cost();
        result.cost = upper;
        result.allocation = enc.decode();
        result.has_allocation = true;
      }
      log_info("optimize: interval [%lld, %lld]",
               static_cast<long long>(lower), static_cast<long long>(upper));
    }
    result.cost = upper;
    result.lower_bound = upper;
    return finish(OptimizeResult::Status::kOptimal);
  }

  // --- Scratch mode: fresh encoder per SOLVE (paper's base procedure). --
  auto scratch_solve = [&](std::optional<std::int64_t> lo,
                           std::optional<std::int64_t> hi,
                           std::int64_t& cost_out,
                           rt::Allocation& alloc_out,
                           ir::Range& cost_range_out) -> sat::LBool {
    AllocEncoder enc(problem, objective, options.encoder);
    const bool built = enc.build();
    cost_range_out = enc.cost_range();
    ++result.stats.sat_calls;
    sat::LBool verdict = sat::LBool::kFalse;
    if (built && (!lo || !hi || enc.assert_cost_bounds(*lo, *hi))) {
      verdict = enc.solve({}, {}, call_budget());
    }
    if (verdict == sat::LBool::kTrue) {
      cost_out = enc.decode_cost();
      alloc_out = enc.decode();
    }
    absorb_stats(result.stats, enc);
    return verdict;
  };

  std::int64_t cost = -1;
  rt::Allocation alloc;
  ir::Range cost_range{0, 0};
  sat::LBool verdict = scratch_solve({}, {}, cost, alloc, cost_range);
  if (verdict == sat::LBool::kFalse) {
    result.status = OptimizeResult::Status::kInfeasible;
    result.stats.seconds = total.seconds();
    return result;
  }
  if (verdict == sat::LBool::kUndef) {
    result.status = OptimizeResult::Status::kBudgetExhausted;
    result.stats.seconds = total.seconds();
    return result;
  }
  std::int64_t upper = cost;
  std::int64_t lower = cost_range.lo;
  result.cost = upper;
  result.allocation = alloc;
  result.has_allocation = true;
  while (lower < upper) {
    if (out_of_time()) {
      result.status = OptimizeResult::Status::kBudgetExhausted;
      result.lower_bound = lower;
      result.stats.seconds = total.seconds();
      return result;
    }
    const std::int64_t mid = lower + (upper - lower) / 2;
    verdict = scratch_solve(lower, mid, cost, alloc, cost_range);
    if (verdict == sat::LBool::kUndef) {
      result.status = OptimizeResult::Status::kBudgetExhausted;
      result.lower_bound = lower;
      result.stats.seconds = total.seconds();
      return result;
    }
    if (verdict == sat::LBool::kFalse) {
      lower = mid + 1;
    } else {
      upper = cost;
      result.cost = upper;
      result.allocation = alloc;
    }
  }
  result.status = OptimizeResult::Status::kOptimal;
  result.cost = upper;
  result.lower_bound = upper;
  result.stats.seconds = total.seconds();
  return result;
}

}  // namespace optalloc::alloc

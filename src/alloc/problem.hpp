#pragma once
// The task/message allocation problem instance and the optimization
// objectives the paper evaluates.

#include <string>

#include "rt/model.hpp"

namespace optalloc::alloc {

struct Problem {
  rt::TaskSet tasks;
  rt::Architecture arch;
};

enum class ObjectiveKind {
  kFeasibility,   ///< any valid allocation (cost identically 0)
  kTokenRingTrt,  ///< minimize the TRT (round length Lambda) of one ring
  kSumTrt,        ///< minimize the sum of TRTs over all token rings (Table 4)
  kCanLoad,       ///< minimize the bus load of one CAN medium (Table 1)
  kMaxUtilization,  ///< minimize the maximum per-ECU load (the paper's
                    ///< in-text "utilization optimization" example)
};

struct Objective {
  ObjectiveKind kind = ObjectiveKind::kFeasibility;
  int medium = -1;  ///< target medium for kTokenRingTrt / kCanLoad

  static Objective feasibility() { return {ObjectiveKind::kFeasibility, -1}; }
  static Objective ring_trt(int medium) {
    return {ObjectiveKind::kTokenRingTrt, medium};
  }
  static Objective sum_trt() { return {ObjectiveKind::kSumTrt, -1}; }
  static Objective can_load(int medium) {
    return {ObjectiveKind::kCanLoad, medium};
  }
  static Objective max_utilization() {
    return {ObjectiveKind::kMaxUtilization, -1};
  }

  std::string describe() const {
    switch (kind) {
      case ObjectiveKind::kFeasibility: return "feasibility";
      case ObjectiveKind::kTokenRingTrt:
        return "min TRT(medium " + std::to_string(medium) + ")";
      case ObjectiveKind::kSumTrt: return "min sum of TRTs";
      case ObjectiveKind::kCanLoad:
        return "min U_CAN(medium " + std::to_string(medium) + ")";
      case ObjectiveKind::kMaxUtilization:
        return "min max per-ECU utilization";
    }
    return "?";
  }
};

}  // namespace optalloc::alloc

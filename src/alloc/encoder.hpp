#pragma once
// Transformation of the allocation problem into a bounded-integer
// constraint system (paper Sections 3-4) and its reduction to SAT
// (Section 5.1). One AllocEncoder owns the whole pipeline for a problem
// instance: IR context, SAT solver, PB propagator, bit-blaster.
//
// Variable inventory (mirroring the paper's notation):
//   a_i            integer allocation variable of task i          (eq. 4)
//   wcet_i         WCET selected by a_i                           (eq. 5)
//   r_i            task response time, range-capped at d_i        (eqs. 6,13)
//   I_i^j, pc_i^j  preemption count / cost per ordered pair       (eqs. 7-12)
//   p_i^j          tie-break priority bools for equal deadlines   (eqs. 9-10)
//   Pf_m           route (path-closure sub-path) selectors        (eq. 14)
//   K_m^k          medium-usage indicators (derived from Pf)      (eq. 14)
//   d_m^k          per-medium deadline budgets                    (Sec. 4)
//   J_m^k          per-medium inherited jitter                    (Sec. 4)
//   stn, osl       sending station and its TDMA slot length       (Sec. 3)
//   Imb_m^k        TDMA round count — the non-linear blocking     (eq. 3)
//   lambda_k,j     TDMA slot-length variables; Lambda_k their sum
//   cost           the objective variable minimized by BIN_SEARCH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "alloc/problem.hpp"
#include "encode/bitblast.hpp"
#include "ir/expr.hpp"
#include "net/paths.hpp"
#include "pb/propagator.hpp"
#include "rt/verify.hpp"
#include "sat/solver.hpp"

namespace optalloc::alloc {

/// Persistent encoding state shared across encoder rebuilds — the
/// substrate of an incremental re-solve session (src/inc). One backend
/// outlives many AllocEncoder instances: the hash-consed IR context and
/// the solver survive, so re-encoding an edited instance reuses every
/// unchanged subcircuit (and the solver keeps its learned clauses, phase
/// saves, and activity scores).
///
/// ir::Context interns operator nodes but never variables — every
/// int_var/bool_var call mints a fresh node. The registries below close
/// that gap: an encoder attached to a backend looks variables up by name
/// (and, for integers, range) before creating them, which is what makes
/// consecutive builds of near-identical instances produce near-identical
/// IR. A range change deliberately misses the registry: the old
/// variable's range constraint is already asserted, unguarded, so a
/// resized variable must be a fresh one.
struct EncoderBackend {
  explicit EncoderBackend(encode::Backend backend = encode::Backend::kCnf)
      : pb(solver),
        blaster(ctx, solver, &pb, encode::Options{backend}) {}

  ir::Context ctx;
  sat::Solver solver;
  pb::PbPropagator pb;
  encode::BitBlaster blaster;

  /// (name, lo, hi) -> integer variable node.
  std::map<std::tuple<std::string, std::int64_t, std::int64_t>, ir::NodeId>
      int_vars;
  std::map<std::string, ir::NodeId> bool_vars;
};

/// One formula of a grouped (session-mode) build, labelled with the named
/// constraint group it belongs to. Groups are the unit of retraction —
/// each gets one activation literal — and the unit of blame in unsat
/// cores ("these 3 constraints conflict").
struct GroupedFormula {
  std::string group;
  ir::NodeId formula;
};

struct EncoderConfig {
  encode::Backend backend = encode::Backend::kCnf;
  /// Model the paper's free tie-break priorities p_i^j for equal
  /// deadlines (with transitivity enforced per deadline group). When
  /// false, ties are broken by task index at encode time.
  bool free_tie_priorities = true;
  /// Add redundant per-ECU utilization <= 100% pseudo-Boolean constraints
  /// over the allocation indicator literals. Implied by response-time
  /// feasibility (d <= t), but propagates much earlier — a large
  /// practical speedup on loaded instances.
  bool redundant_utilization = true;
};

class AllocEncoder {
 public:
  AllocEncoder(const Problem& problem, Objective objective,
               EncoderConfig config = {});

  /// Session mode: encode into a shared, persistent backend instead of
  /// owning the pipeline. require() then *records* formulas into named
  /// constraint groups (see grouped()) rather than asserting them — the
  /// session asserts each group under its own activation literal so it
  /// can be retracted when an edit invalidates it. Native PB shortcuts
  /// (redundant_utilization) are skipped in this mode: PB constraints
  /// cannot be retracted.
  AllocEncoder(const Problem& problem, Objective objective,
               EncoderConfig config, EncoderBackend& backend);

  /// Build and assert the full constraint system. Returns false if the
  /// instance is unsatisfiable already at encode time.
  bool build();

  /// Inclusive range of the cost variable.
  ir::Range cost_range() const { return cost_range_; }

  /// Solve the asserted system under optional cost bounds (incremental:
  /// bounds enter as assumption literals, so learned clauses survive
  /// across calls — the paper's Section 7 improvement).
  sat::LBool solve(std::optional<std::int64_t> cost_lo,
                   std::optional<std::int64_t> cost_hi,
                   sat::Budget budget = {});

  /// Assert cost bounds permanently (used by the non-incremental mode).
  bool assert_cost_bounds(std::int64_t lo, std::int64_t hi);

  /// After a kTrue solve: objective value and decoded allocation.
  std::int64_t decode_cost() const;
  rt::Allocation decode() const;

  /// Warm start: bias the solver's first descent toward a known (e.g.
  /// heuristic) solution. Call after build().
  void hint(const rt::Allocation& allocation);

  sat::Solver& solver() { return *solver_; }
  const sat::Solver& solver() const { return *solver_; }
  const pb::PbPropagator& pb() const { return *pb_; }
  const net::PathClosures& closures() const { return *closures_; }

  /// Session-mode outputs: the recorded (group, formula) pairs of the
  /// last build(), and the cost node the session's bound guards compare
  /// against. Empty/invalid unless constructed with an EncoderBackend.
  std::span<const GroupedFormula> grouped() const { return grouped_; }
  ir::NodeId cost_node() const { return cost_; }

  // --- Certification hooks (see src/check) ------------------------------

  /// Attach a proof log to the underlying solver. Must be called before
  /// build() so the log captures the full clause database.
  void set_proof(sat::ProofLog* proof) { solver_->set_proof(proof); }

  /// The IR context and the formulas asserted through it — the inputs the
  /// model certifier replays a SAT answer against.
  const ir::Context& ctx() const { return ctx_; }
  std::span<const ir::NodeId> asserted_formulas() const { return asserted_; }
  const encode::BitBlaster& blaster() const { return *blaster_; }

 private:
  using NodeId = ir::NodeId;

  // Construction stages.
  void build_tasks();        // eqs. 4-13
  void build_slots();        // lambda variables and Lambda sums
  void build_messages();     // Section 4 + eqs. 2-3 analogues
  void build_cost();         // objective wiring

  /// a-membership in an ECU set (range form when contiguous).
  NodeId member_of(NodeId a, std::vector<int> ecus);

  /// Assert an IR formula, tracking encoder-time unsatisfiability. In
  /// session mode the formula is recorded under the current group
  /// instead of being asserted.
  void require(NodeId formula);

  /// Set the constraint group subsequent require() calls record into.
  void group(std::string name) { group_ = std::move(name); }

  /// Variable creation, routed through the backend registry in session
  /// mode so consecutive builds reuse variable nodes (ir::Context never
  /// interns variables).
  NodeId mk_int_var(const std::string& name, std::int64_t lo,
                    std::int64_t hi);
  NodeId mk_bool_var(const std::string& name);

  const Problem& problem_;
  Objective objective_;
  EncoderConfig config_;

  // Owned pipeline (classic mode); null when attached to a backend.
  std::unique_ptr<ir::Context> owned_ctx_;
  std::unique_ptr<sat::Solver> owned_solver_;
  std::unique_ptr<pb::PbPropagator> owned_pb_;
  std::unique_ptr<encode::BitBlaster> owned_blaster_;
  std::unique_ptr<net::PathClosures> closures_;

  // Views: either the owned pipeline above or the shared backend's.
  ir::Context& ctx_;
  sat::Solver* solver_;
  pb::PbPropagator* pb_;
  encode::BitBlaster* blaster_;
  EncoderBackend* backend_ = nullptr;

  bool ok_ = true;
  bool built_ = false;

  // Task variables.
  std::vector<NodeId> a_;      // allocation vars
  std::vector<NodeId> wcet_;
  std::vector<NodeId> r_;
  /// higher_[i][j]: formula "task i has higher priority than task j"
  /// (constant for distinct deadlines, a tie bool otherwise).
  std::vector<std::vector<NodeId>> higher_;

  // Message variables (indexed by global message id from message_refs()).
  std::vector<rt::TaskSet::MsgRef> refs_;
  struct MsgVars {
    std::vector<int> routes;          ///< candidate route ids (closures)
    std::vector<NodeId> rsel;         ///< selector per candidate
    std::vector<NodeId> used;         ///< K_m^k per medium (kInvalidNode if
                                      ///< no candidate route crosses k)
    std::vector<NodeId> local_dl;     ///< d_m^k per medium
    std::vector<NodeId> jitter;       ///< J_m^k per medium
    std::vector<NodeId> station;      ///< stn per medium (TDMA legs only)
    std::vector<NodeId> slot_len;     ///< osl per medium (TDMA legs only)
    std::vector<NodeId> response;     ///< r_m^k per medium
  };
  std::vector<MsgVars> msg_;

  // Slot variables per medium (token rings); Lambda sums.
  std::vector<std::vector<NodeId>> slot_vars_;
  std::vector<NodeId> lambda_;

  NodeId cost_ = ir::kInvalidNode;
  ir::Range cost_range_{0, 0};

  /// Every formula passed to require(), for the model certifier.
  std::vector<NodeId> asserted_;

  /// Session mode: (group, formula) pairs recorded by require().
  std::vector<GroupedFormula> grouped_;
  std::string group_ = "base";

  /// Guard literals already built for (lo,hi) bound pairs.
  std::map<std::pair<std::int64_t, std::int64_t>, sat::Lit> bound_guards_;
};

}  // namespace optalloc::alloc

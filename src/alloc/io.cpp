#include "alloc/io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace optalloc::alloc {

namespace {

/// Name of the input being parsed, reported in every diagnostic. Thread
/// local because the service parses submissions on connection threads.
thread_local std::string t_source = "problem file";

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error(t_source + ", line " + std::to_string(line) +
                           ": " + msg);
}

/// Split "key=value" tokens into a map; plain tokens go to `positional`.
std::map<std::string, std::string> key_values(
    std::istringstream& in, std::vector<std::string>& positional) {
  std::map<std::string, std::string> kv;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      positional.push_back(token);
    } else {
      kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return kv;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : s) {
    if (c == ',') {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

std::int64_t to_int(const std::string& s, int line) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos);
    if (pos != s.size()) fail(line, "bad integer '" + s + "'");
    return v;
  } catch (const std::exception&) {
    fail(line, "bad integer '" + s + "'");
  }
}

}  // namespace

Problem parse_problem(std::istream& in, std::string_view source) {
  t_source = source.empty() ? "problem file" : std::string(source);
  Problem p;
  std::map<std::string, int> task_index;
  bool system_seen = false;
  std::string raw;
  int line = 0;

  auto require_system = [&] {
    if (!system_seen) fail(line, "'system <num_ecus>' must come first");
  };

  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    const std::string text = hash == std::string::npos
                                 ? raw
                                 : raw.substr(0, hash);
    std::istringstream body(text);
    std::string keyword;
    if (!(body >> keyword)) continue;  // blank / comment-only line

    if (keyword == "system") {
      int n = 0;
      if (!(body >> n) || n <= 0) fail(line, "bad ECU count");
      p.arch.num_ecus = n;
      p.arch.ecu_memory.assign(static_cast<std::size_t>(n), 0);
      p.arch.gateway_only.assign(static_cast<std::size_t>(n), 0);
      system_seen = true;
    } else if (keyword == "memory") {
      require_system();
      int ecu = -1;
      std::int64_t cap = 0;
      if (!(body >> ecu >> cap) || ecu < 0 || ecu >= p.arch.num_ecus) {
        fail(line, "bad memory line");
      }
      p.arch.ecu_memory[static_cast<std::size_t>(ecu)] = cap;
    } else if (keyword == "gateway_only") {
      require_system();
      int ecu = -1;
      if (!(body >> ecu) || ecu < 0 || ecu >= p.arch.num_ecus) {
        fail(line, "bad gateway_only line");
      }
      p.arch.gateway_only[static_cast<std::size_t>(ecu)] = 1;
    } else if (keyword == "medium") {
      require_system();
      std::vector<std::string> positional;
      const auto kv = key_values(body, positional);
      if (positional.size() != 2) {
        fail(line, "medium needs '<name> <token_ring|can>'");
      }
      rt::Medium m;
      m.name = positional[0];
      if (positional[1] == "token_ring") {
        m.type = rt::MediumType::kTokenRing;
      } else if (positional[1] == "can") {
        m.type = rt::MediumType::kCan;
      } else {
        fail(line, "unknown medium type '" + positional[1] + "'");
      }
      const auto it = kv.find("ecus");
      if (it == kv.end()) fail(line, "medium needs ecus=...");
      for (const std::string& e : split_commas(it->second)) {
        const auto ecu = to_int(e, line);
        if (ecu < 0 || ecu >= p.arch.num_ecus) fail(line, "ECU out of range");
        m.ecus.push_back(static_cast<int>(ecu));
      }
      auto opt = [&](const char* key, rt::Ticks fallback) {
        const auto f = kv.find(key);
        return f == kv.end() ? fallback : to_int(f->second, line);
      };
      m.slot_min = opt("slot_min", 1);
      m.slot_max = opt("slot_max", 64);
      m.ring_byte_ticks = opt("byte_ticks", 1);
      m.can_bit_ticks = opt("bit_ticks", 1);
      m.can_bits_per_tick = opt("bits_per_tick", 1);
      m.gateway_cost = opt("gateway_cost", 0);
      p.arch.media.push_back(std::move(m));
    } else if (keyword == "task") {
      require_system();
      std::vector<std::string> positional;
      const auto kv = key_values(body, positional);
      if (positional.size() != 1) fail(line, "task needs a name");
      rt::Task t;
      t.name = positional[0];
      if (task_index.count(t.name)) fail(line, "duplicate task " + t.name);
      auto req = [&](const char* key) {
        const auto f = kv.find(key);
        if (f == kv.end()) {
          fail(line, std::string("task missing ") + key + "=");
        }
        return to_int(f->second, line);
      };
      t.period = req("period");
      t.deadline = req("deadline");
      if (const auto f = kv.find("jitter"); f != kv.end()) {
        t.release_jitter = to_int(f->second, line);
      }
      if (const auto f = kv.find("memory"); f != kv.end()) {
        t.memory = to_int(f->second, line);
      }
      const auto w = kv.find("wcet");
      if (w == kv.end()) fail(line, "task missing wcet=");
      for (const std::string& c : split_commas(w->second)) {
        t.wcet.push_back(c == "-" ? rt::kForbidden : to_int(c, line));
      }
      if (static_cast<int>(t.wcet.size()) != p.arch.num_ecus) {
        fail(line, "wcet list must have one entry per ECU");
      }
      task_index.emplace(t.name, static_cast<int>(p.tasks.tasks.size()));
      p.tasks.tasks.push_back(std::move(t));
    } else if (keyword == "message") {
      std::string from, arrow, to;
      if (!(body >> from >> arrow >> to) || arrow != "->") {
        fail(line, "message needs '<from> -> <to>'");
      }
      const auto fi = task_index.find(from);
      const auto ti = task_index.find(to);
      if (fi == task_index.end() || ti == task_index.end()) {
        fail(line, "message references unknown task");
      }
      std::vector<std::string> positional;
      const auto kv = key_values(body, positional);
      rt::Message m;
      m.target_task = ti->second;
      const auto b = kv.find("bytes");
      const auto d = kv.find("deadline");
      if (b == kv.end() || d == kv.end()) {
        fail(line, "message missing bytes=/deadline=");
      }
      m.size_bytes = to_int(b->second, line);
      m.deadline = to_int(d->second, line);
      if (const auto j = kv.find("jitter"); j != kv.end()) {
        m.release_jitter = to_int(j->second, line);
      }
      p.tasks.tasks[static_cast<std::size_t>(fi->second)]
          .messages.push_back(m);
    } else if (keyword == "separate") {
      std::string a, b;
      if (!(body >> a >> b)) fail(line, "separate needs two task names");
      const auto ai = task_index.find(a);
      const auto bi = task_index.find(b);
      if (ai == task_index.end() || bi == task_index.end()) {
        fail(line, "separate references unknown task");
      }
      p.tasks.tasks[static_cast<std::size_t>(ai->second)]
          .separated_from.push_back(bi->second);
      p.tasks.tasks[static_cast<std::size_t>(bi->second)]
          .separated_from.push_back(ai->second);
    } else {
      fail(line, "unknown keyword '" + keyword + "'");
    }
  }
  if (!system_seen) fail(line, "empty problem (no 'system' line)");
  return p;
}

void write_problem(std::ostream& out, const Problem& p) {
  out << "system " << p.arch.num_ecus << "\n";
  for (std::size_t e = 0; e < p.arch.ecu_memory.size(); ++e) {
    if (p.arch.ecu_memory[e] > 0) {
      out << "memory " << e << " " << p.arch.ecu_memory[e] << "\n";
    }
  }
  for (std::size_t e = 0; e < p.arch.gateway_only.size(); ++e) {
    if (p.arch.gateway_only[e]) out << "gateway_only " << e << "\n";
  }
  for (const rt::Medium& m : p.arch.media) {
    out << "medium " << m.name << " "
        << (m.type == rt::MediumType::kTokenRing ? "token_ring" : "can")
        << " ecus=";
    for (std::size_t i = 0; i < m.ecus.size(); ++i) {
      out << (i ? "," : "") << m.ecus[i];
    }
    if (m.type == rt::MediumType::kTokenRing) {
      out << " slot_min=" << m.slot_min << " slot_max=" << m.slot_max
          << " byte_ticks=" << m.ring_byte_ticks;
    } else {
      out << " bit_ticks=" << m.can_bit_ticks
          << " bits_per_tick=" << m.can_bits_per_tick;
    }
    out << " gateway_cost=" << m.gateway_cost << "\n";
  }
  for (const rt::Task& t : p.tasks.tasks) {
    out << "task " << t.name << " period=" << t.period
        << " deadline=" << t.deadline;
    if (t.release_jitter > 0) out << " jitter=" << t.release_jitter;
    if (t.memory > 0) out << " memory=" << t.memory;
    out << " wcet=";
    for (std::size_t e = 0; e < t.wcet.size(); ++e) {
      if (e) out << ",";
      if (t.wcet[e] == rt::kForbidden) {
        out << "-";
      } else {
        out << t.wcet[e];
      }
    }
    out << "\n";
  }
  for (const rt::Task& t : p.tasks.tasks) {
    for (const rt::Message& m : t.messages) {
      out << "message " << t.name << " -> "
          << p.tasks.tasks[static_cast<std::size_t>(m.target_task)].name
          << " bytes=" << m.size_bytes << " deadline=" << m.deadline;
      if (m.release_jitter > 0) out << " jitter=" << m.release_jitter;
      out << "\n";
    }
  }
  // Emit each symmetric separation pair once.
  for (std::size_t i = 0; i < p.tasks.tasks.size(); ++i) {
    for (const int j : p.tasks.tasks[i].separated_from) {
      if (static_cast<int>(i) < j) {
        out << "separate " << p.tasks.tasks[i].name << " "
            << p.tasks.tasks[static_cast<std::size_t>(j)].name << "\n";
      }
    }
  }
}

Objective parse_objective(const std::string& spec) {
  if (spec == "feasibility") return Objective::feasibility();
  if (spec == "sum-trt") return Objective::sum_trt();
  if (spec == "max-util") return Objective::max_utilization();
  if (spec.rfind("trt:", 0) == 0) {
    return Objective::ring_trt(std::stoi(spec.substr(4)));
  }
  if (spec.rfind("can-load:", 0) == 0) {
    return Objective::can_load(std::stoi(spec.substr(9)));
  }
  throw std::runtime_error(
      "unknown objective '" + spec +
      "' (expected feasibility | trt:<m> | sum-trt | can-load:<m> | "
      "max-util)");
}

}  // namespace optalloc::alloc

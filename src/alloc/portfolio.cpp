#include "alloc/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "par/sharing.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace optalloc::alloc {

namespace {

const char* strategy_name(SearchStrategy s) {
  return s == SearchStrategy::kBisection ? "bisection" : "descending";
}

std::vector<OptimizeOptions> default_configs(const OptimizeOptions& base) {
  OptimizeOptions bisect = base;  // paper's BIN_SEARCH
  bisect.strategy = SearchStrategy::kBisection;
  OptimizeOptions descend = base;
  descend.strategy = SearchStrategy::kDescending;
  OptimizeOptions pbmix = base;
  pbmix.encoder.backend = encode::Backend::kPbMixed;
  return {bisect, descend, pbmix};
}

/// N diversified variants of `base`. Worker 0 keeps the base untouched
/// (a 1-thread portfolio behaves exactly like plain optimize()); the rest
/// alternate search strategies and spread out over the CDCL tuning space.
std::vector<OptimizeOptions> diversified_configs(int threads,
                                                 const OptimizeOptions& base) {
  static constexpr double kDecay[] = {0.95, 0.90, 0.99, 0.85};
  static constexpr int kRestart[] = {100, 50, 200, 150};
  std::vector<OptimizeOptions> configs;
  configs.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    OptimizeOptions c = base;
    if (i > 0) {
      c.strategy = (i % 2 == 1) ? SearchStrategy::kDescending
                                : SearchStrategy::kBisection;
      SolverTuning t;
      t.var_decay = kDecay[i % 4];
      t.restart_base = kRestart[i % 4];
      t.default_polarity = (i / 2) % 2 != 0;
      t.phase_saving = true;
      t.random_branch_freq = i >= 2 ? 0.02 : 0.0;
      t.seed = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i) +
               0x2545f4914f6cdd1dull;
      c.tuning = t;
    }
    configs.push_back(std::move(c));
  }
  return configs;
}

/// Clause exchange is sound only between workers whose solvers assign the
/// same meaning to every shared variable: identical encoder configuration
/// (the base encoding is deterministic) and incremental mode (scratch
/// workers rebuild their solver every SOLVE, so there is no long-lived
/// clause database to import into).
bool same_encoding(const OptimizeOptions& a, const OptimizeOptions& b) {
  return a.incremental && b.incremental &&
         a.encoder.backend == b.encoder.backend &&
         a.encoder.free_tie_priorities == b.encoder.free_tie_priorities &&
         a.encoder.redundant_utilization == b.encoder.redundant_utilization;
}

const char* backend_name(const OptimizeOptions& o) {
  return o.encoder.backend == encode::Backend::kPbMixed ? "pb-mixed" : "cnf";
}

}  // namespace

PortfolioResult optimize_portfolio(const Problem& problem,
                                   Objective objective,
                                   const PortfolioOptions& options) {
  std::vector<OptimizeOptions> configs =
      !options.configs.empty() ? options.configs
      : options.threads > 0
          ? diversified_configs(options.threads, options.base_config)
          : default_configs(options.base_config);
  const int n = static_cast<int>(configs.size());
  std::atomic<bool> stop{false};
  Stopwatch total;

  PortfolioResult result;
  result.threads = n;

  // Winner arbitration: the race's verdict, written by whichever worker
  // finishes; folded into `result` once every worker has joined.
  struct Arbiter {
    util::Mutex mu;
    OptimizeResult best OPTALLOC_GUARDED_BY(mu);
    int winner OPTALLOC_GUARDED_BY(mu) = -1;
    std::vector<OptimizeResult::Status> per_config OPTALLOC_GUARDED_BY(mu);
    std::vector<OptimizeStats> per_config_stats OPTALLOC_GUARDED_BY(mu);
  } arb;
  {
    util::MutexLock lock(arb.mu);
    arb.per_config.assign(static_cast<std::size_t>(n),
                          OptimizeResult::Status::kBudgetExhausted);
    arb.per_config_stats.assign(static_cast<std::size_t>(n), OptimizeStats{});
  }

  // --- Shared cooperative state (see src/par). -------------------------
  // One clause pool per group of identically-encoding incremental workers;
  // one global cost interval plus an incumbent-allocation store.
  par::SharedInterval interval;
  struct Group {
    std::vector<int> members;
    std::unique_ptr<par::ClausePool> pool;
  };
  std::vector<Group> groups;
  // config index -> (pool, rank within its group); null pool = no partner.
  std::vector<std::pair<par::ClausePool*, int>> membership(
      static_cast<std::size_t>(n), {nullptr, 0});
  if (options.share_clauses) {
    for (int i = 0; i < n; ++i) {
      if (!configs[static_cast<std::size_t>(i)].incremental) continue;
      Group* group = nullptr;
      for (Group& g : groups) {
        if (same_encoding(configs[static_cast<std::size_t>(g.members[0])],
                          configs[static_cast<std::size_t>(i)])) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(Group{});
        group = &groups.back();
      }
      group->members.push_back(i);
    }
    for (Group& g : groups) {
      if (g.members.size() < 2) continue;  // nobody to exchange with
      g.pool = std::make_unique<par::ClausePool>(
          static_cast<int>(g.members.size()));
      for (std::size_t rank = 0; rank < g.members.size(); ++rank) {
        membership[static_cast<std::size_t>(g.members[rank])] = {
            g.pool.get(), static_cast<int>(rank)};
      }
    }
  }
  std::vector<std::unique_ptr<par::SharingClient>> clients(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    par::SharedInterval* iv = options.share_bounds ? &interval : nullptr;
    auto [pool, rank] = membership[static_cast<std::size_t>(i)];
    if (iv == nullptr && pool == nullptr) continue;
    auto client = std::make_unique<par::SharingClient>(iv, pool, rank);
    client->max_export_lbd = options.share_max_lbd;
    client->max_export_size = options.share_max_size;
    clients[static_cast<std::size_t>(i)] = std::move(client);
  }

  // Best feasible allocation seen by anyone. Workers store here *before*
  // dropping the shared upper bound, so a sibling that observes the bound
  // always finds an allocation at least that good.
  struct Incumbent {
    util::Mutex mu;
    bool has OPTALLOC_GUARDED_BY(mu) = false;
    std::int64_t cost OPTALLOC_GUARDED_BY(mu) = 0;
    rt::Allocation allocation OPTALLOC_GUARDED_BY(mu);
  } incumbent;

  // Serialized merged progress stream: one lock across all workers (no
  // overlapping callbacks) and a monotone merged interval — the greatest
  // lower bound and least upper bound reported by anyone so far.
  struct Merged {
    util::Mutex mu;
    std::int64_t lower OPTALLOC_GUARDED_BY(mu) =
        std::numeric_limits<std::int64_t>::min();
    std::int64_t upper OPTALLOC_GUARDED_BY(mu) =
        std::numeric_limits<std::int64_t>::max();
    bool any OPTALLOC_GUARDED_BY(mu) = false;
    bool has_incumbent OPTALLOC_GUARDED_BY(mu) = false;
    std::int64_t incumbent_cost OPTALLOC_GUARDED_BY(mu) = -1;
    // Per-worker latest sat_calls.
    std::vector<int> calls OPTALLOC_GUARDED_BY(mu);
  } merged;
  {
    util::MutexLock lock(merged.mu);
    merged.calls.assign(static_cast<std::size_t>(n), 0);
  }

  // Workers inherit the submitting thread's trace context (request id /
  // span) so every event they emit — portfolio_start, solve, interval,
  // solver share/import events — correlates back to the service request.
  const obs::SpanContext parent_ctx = obs::current_context();

  auto runner = [&](int index) {
    obs::ContextScope ctx_scope(parent_ctx);
    OptimizeOptions opts = configs[static_cast<std::size_t>(index)];
    opts.stop = &stop;
    if (options.time_limit_s > 0.0 &&
        (opts.time_limit_s <= 0.0 ||
         opts.time_limit_s > options.time_limit_s)) {
      opts.time_limit_s = options.time_limit_s;
    }
    par::SharingClient* client = clients[static_cast<std::size_t>(index)].get();
    opts.share = client;
    if (options.share_bounds) {
      opts.publish_incumbent = [&](std::int64_t cost,
                                   const rt::Allocation& alloc) {
        util::MutexLock lock(incumbent.mu);
        if (!incumbent.has || cost < incumbent.cost) {
          incumbent.has = true;
          incumbent.cost = cost;
          incumbent.allocation = alloc;
        }
      };
      opts.fetch_incumbent =
          [&]() -> std::optional<std::pair<std::int64_t, rt::Allocation>> {
        util::MutexLock lock(incumbent.mu);
        if (!incumbent.has) return std::nullopt;
        return std::make_pair(incumbent.cost, incumbent.allocation);
      };
    }
    if (options.on_progress) {
      opts.on_progress = [&, index](const Progress& p) {
        util::MutexLock lock(merged.mu);
        merged.any = true;
        merged.lower = std::max(merged.lower, p.lower);
        merged.upper = std::min(merged.upper, p.upper);
        if (p.has_incumbent &&
            (!merged.has_incumbent || p.incumbent_cost < merged.incumbent_cost)) {
          merged.has_incumbent = true;
          merged.incumbent_cost = p.incumbent_cost;
        }
        merged.calls[static_cast<std::size_t>(index)] = p.sat_calls;
        Progress out;
        out.seconds = total.seconds();
        out.lower = merged.lower;
        out.upper = merged.upper;
        out.has_incumbent = merged.has_incumbent;
        out.incumbent_cost = merged.incumbent_cost;
        out.sat_calls = 0;
        for (int c : merged.calls) out.sat_calls += c;
        options.on_progress(out);  // still under the lock: never overlaps
      };
    }
    if (obs::trace_enabled()) {
      obs::TraceEvent("portfolio_start")
          .num("worker", index)
          .str("strategy", strategy_name(opts.strategy))
          .str("backend", backend_name(opts))
          .boolean("incremental", opts.incremental)
          .boolean("share_clauses", client != nullptr && client->has_pool())
          .boolean("share_bounds", options.share_bounds);
    }
    OptimizeResult local = optimize(problem, objective, opts);
    const bool cancelled = stop.load(std::memory_order_relaxed) &&
                           local.status ==
                               OptimizeResult::Status::kBudgetExhausted;
    if (obs::trace_enabled()) {
      obs::TraceEvent e(cancelled ? "portfolio_cancel" : "portfolio_finish");
      e.num("worker", index).str("status", local.status_string());
      if (local.has_allocation) e.num("cost", local.cost);
      e.num("seconds", local.stats.seconds);
      e.num("clauses_exported",
            static_cast<std::int64_t>(local.stats.clauses_exported));
      e.num("clauses_imported",
            static_cast<std::int64_t>(local.stats.clauses_imported));
    }
    util::MutexLock lock(arb.mu);
    arb.per_config[static_cast<std::size_t>(index)] = local.status;
    arb.per_config_stats[static_cast<std::size_t>(index)] = local.stats;
    auto definitive = [](const OptimizeResult& r) {
      return r.status == OptimizeResult::Status::kOptimal ||
             r.status == OptimizeResult::Status::kInfeasible;
    };
    bool take = false;
    if (arb.winner < 0) {
      take = true;  // first result of any kind
    } else if (definitive(local) && !definitive(arb.best)) {
      take = true;  // definitive beats anytime
    } else if (definitive(local) && definitive(arb.best) &&
               local.certified && !arb.best.certified) {
      take = true;  // certified beats uncertified
    } else if (!definitive(local) && !definitive(arb.best) &&
               local.has_allocation &&
               (!arb.best.has_allocation ||
                local.cost < arb.best.cost)) {
      take = true;  // better anytime incumbent
    }
    if (take) {
      arb.best = std::move(local);
      arb.winner = index;
    }
    if (definitive(arb.best)) {
      stop.store(true, std::memory_order_relaxed);
    }
  };

  // Forward an external cancellation request onto the internal stop flag
  // (which the runner installs into every worker). Polling keeps the
  // external flag a plain const atomic the caller can share freely.
  std::thread watcher;
  std::atomic<bool> watcher_done{false};
  if (options.external_stop != nullptr) {
    watcher = std::thread([&, external = options.external_stop] {
      while (!watcher_done.load(std::memory_order_relaxed)) {
        if (external->load(std::memory_order_relaxed)) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) threads.emplace_back(runner, i);
  for (std::thread& t : threads) t.join();
  if (watcher.joinable()) {
    watcher_done.store(true, std::memory_order_relaxed);
    watcher.join();
  }
  {
    // Workers have joined; fold the arbiter's verdict into the result.
    util::MutexLock lock(arb.mu);
    result.best = std::move(arb.best);
    result.winner = arb.winner;
    result.per_config = std::move(arb.per_config);
    result.per_config_stats = std::move(arb.per_config_stats);
  }

  for (const OptimizeStats& s : result.per_config_stats) {
    result.sharing.clauses_exported += s.clauses_exported;
    result.sharing.clauses_imported += s.clauses_imported;
    result.sharing.bounds_published += s.bounds_published;
    result.sharing.bounds_adopted += s.bounds_adopted;
  }
  for (const Group& g : groups) {
    if (g.pool) result.sharing.pool_dropped += g.pool->stats().overwritten;
  }

  static const obs::Metric races = obs::counter("portfolio.races");
  static const obs::Metric workers = obs::counter("portfolio.workers");
  static const obs::Metric definitive =
      obs::counter("portfolio.definitive_results");
  static const obs::Metric exported =
      obs::counter("portfolio.clauses_exported");
  static const obs::Metric imported =
      obs::counter("portfolio.clauses_imported");
  static const obs::Metric bounds = obs::counter("portfolio.bound_updates");
  obs::add(races, 1);
  obs::add(workers, n);
  obs::add(exported, static_cast<std::int64_t>(result.sharing.clauses_exported));
  obs::add(imported, static_cast<std::int64_t>(result.sharing.clauses_imported));
  obs::add(bounds, static_cast<std::int64_t>(interval.updates()));
  if (result.best.status == OptimizeResult::Status::kOptimal ||
      result.best.status == OptimizeResult::Status::kInfeasible) {
    obs::add(definitive, 1);
  }
  if (obs::trace_enabled()) {
    obs::TraceEvent e("portfolio_win");
    e.num("winner", result.winner).str("status", result.best.status_string());
    if (result.best.has_allocation) e.num("cost", result.best.cost);
    e.num("threads", n);
    e.num("clauses_exported",
          static_cast<std::int64_t>(result.sharing.clauses_exported));
    e.num("clauses_imported",
          static_cast<std::int64_t>(result.sharing.clauses_imported));
    e.num("bounds_published",
          static_cast<std::int64_t>(result.sharing.bounds_published));
    e.num("bounds_adopted",
          static_cast<std::int64_t>(result.sharing.bounds_adopted));
  }
  return result;
}

}  // namespace optalloc::alloc

#include "alloc/portfolio.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace optalloc::alloc {

namespace {

const char* strategy_name(SearchStrategy s) {
  return s == SearchStrategy::kBisection ? "bisection" : "descending";
}

std::vector<OptimizeOptions> default_configs() {
  OptimizeOptions bisect;  // paper's BIN_SEARCH
  OptimizeOptions descend;
  descend.strategy = SearchStrategy::kDescending;
  OptimizeOptions pbmix;
  pbmix.encoder.backend = encode::Backend::kPbMixed;
  return {bisect, descend, pbmix};
}

}  // namespace

PortfolioResult optimize_portfolio(const Problem& problem,
                                   Objective objective,
                                   const PortfolioOptions& options) {
  std::vector<OptimizeOptions> configs =
      options.configs.empty() ? default_configs() : options.configs;
  std::atomic<bool> stop{false};

  PortfolioResult result;
  result.per_config.assign(configs.size(),
                           OptimizeResult::Status::kBudgetExhausted);
  std::mutex mutex;  // guards result.best / result.winner

  auto runner = [&](int index) {
    OptimizeOptions opts = configs[static_cast<std::size_t>(index)];
    opts.stop = &stop;
    if (options.time_limit_s > 0.0 &&
        (opts.time_limit_s <= 0.0 ||
         opts.time_limit_s > options.time_limit_s)) {
      opts.time_limit_s = options.time_limit_s;
    }
    if (obs::trace_enabled()) {
      obs::TraceEvent("portfolio_start")
          .num("worker", index)
          .str("strategy", strategy_name(opts.strategy))
          .str("backend", opts.encoder.backend == encode::Backend::kPbMixed
                              ? "pb-mixed"
                              : "cnf")
          .boolean("incremental", opts.incremental);
    }
    OptimizeResult local = optimize(problem, objective, opts);
    const bool cancelled = stop.load(std::memory_order_relaxed) &&
                           local.status ==
                               OptimizeResult::Status::kBudgetExhausted;
    if (obs::trace_enabled()) {
      obs::TraceEvent e(cancelled ? "portfolio_cancel" : "portfolio_finish");
      e.num("worker", index).str("status", local.status_string());
      if (local.has_allocation) e.num("cost", local.cost);
      e.num("seconds", local.stats.seconds);
    }
    std::lock_guard<std::mutex> lock(mutex);
    result.per_config[static_cast<std::size_t>(index)] = local.status;
    auto definitive = [](const OptimizeResult& r) {
      return r.status == OptimizeResult::Status::kOptimal ||
             r.status == OptimizeResult::Status::kInfeasible;
    };
    bool take = false;
    if (result.winner < 0) {
      take = true;  // first result of any kind
    } else if (definitive(local) && !definitive(result.best)) {
      take = true;  // definitive beats anytime
    } else if (!definitive(local) && !definitive(result.best) &&
               local.has_allocation &&
               (!result.best.has_allocation ||
                local.cost < result.best.cost)) {
      take = true;  // better anytime incumbent
    }
    if (take) {
      result.best = std::move(local);
      result.winner = index;
    }
    if (definitive(result.best)) {
      stop.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(configs.size());
  for (int i = 0; i < static_cast<int>(configs.size()); ++i) {
    threads.emplace_back(runner, i);
  }
  for (std::thread& t : threads) t.join();

  static const obs::Metric races = obs::counter("portfolio.races");
  static const obs::Metric workers = obs::counter("portfolio.workers");
  static const obs::Metric definitive =
      obs::counter("portfolio.definitive_results");
  obs::add(races, 1);
  obs::add(workers, static_cast<std::int64_t>(configs.size()));
  if (result.best.status == OptimizeResult::Status::kOptimal ||
      result.best.status == OptimizeResult::Status::kInfeasible) {
    obs::add(definitive, 1);
  }
  if (obs::trace_enabled()) {
    obs::TraceEvent e("portfolio_win");
    e.num("winner", result.winner).str("status", result.best.status_string());
    if (result.best.has_allocation) e.num("cost", result.best.cost);
  }
  return result;
}

}  // namespace optalloc::alloc

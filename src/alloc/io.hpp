#pragma once
// Text format for allocation problems, so systems can be described in
// files and fed to the CLI allocator. Line-oriented, '#' comments:
//
//   system 8                       # number of ECUs
//   memory 0 100                   # ECU 0 has a 100-unit memory budget
//   gateway_only 8                 # ECU 8 hosts no tasks
//   medium ring0 token_ring ecus=0,1,2,3 slot_min=1 slot_max=12
//          byte_ticks=1 gateway_cost=5     (one line in a real file)
//   medium can0 can ecus=2,3 bit_ticks=1 bits_per_tick=25
//   task sensor period=100 deadline=40 jitter=0 memory=4 wcet=8,10,-,12
//   message sensor -> control bytes=4 deadline=50 jitter=0
//   separate control actuator
//
// WCET entries are per-ECU in order; '-' marks a forbidden placement.
// Tasks are referenced by name; order of sections is free except that
// `system` must precede everything and names must be declared before use.

#include <iosfwd>
#include <string>
#include <string_view>

#include "alloc/problem.hpp"

namespace optalloc::alloc {

/// Parse a problem description. Throws std::runtime_error on malformed
/// input; the message names the source (`source`, e.g. the file name —
/// pass "<stdin>" for piped input) and the offending line number.
Problem parse_problem(std::istream& in,
                      std::string_view source = "problem file");

/// Serialize a problem in the same format (round-trips through
/// parse_problem).
void write_problem(std::ostream& out, const Problem& problem);

/// Parse an objective spec: "feasibility", "trt:<medium>", "sum-trt",
/// "can-load:<medium>", "max-util". Throws std::runtime_error on an
/// unknown spec.
Objective parse_objective(const std::string& spec);

}  // namespace optalloc::alloc

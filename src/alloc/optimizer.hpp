#pragma once
// The paper's Section 5.2 optimization loop: SOLVE is one SAT query over
// the encoded constraint system; BIN_SEARCH narrows the cost interval by
// repeated SOLVE calls until the optimum is pinned.
//
// Two execution modes:
//   * incremental (default): one solver instance; cost bounds enter as
//     assumption literals over comparator circuits, so learned clauses
//     carry over between search steps — the improvement the paper's
//     Section 7 reports as "a factor of 2 and more".
//   * scratch: a fresh encoder + solver per SOLVE call with bounds
//     asserted permanently — the paper's baseline procedure, kept for the
//     ablation benchmark.

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "alloc/encoder.hpp"
#include "alloc/problem.hpp"

namespace optalloc::par {
class SharingClient;
}  // namespace optalloc::par

namespace optalloc::alloc {

enum class SearchStrategy {
  /// The paper's BIN_SEARCH: bisect the cost interval. Fewest SOLVE calls
  /// but the mid-interval UNSAT proofs can be the hardest queries.
  kBisection,
  /// Walk down from the incumbent: SOLVE(cost <= upper - 1) repeatedly.
  /// More calls, but every call until the optimum is satisfiable (cheap
  /// with phase warm starts); only the final UNSAT proof is hard.
  kDescending,
};

/// Anytime search-progress report: the state of the cost interval after a
/// SOLVE call. `lower > upper` never holds; the interval shrinks
/// monotonically, and lower == upper on the report that pins the optimum.
struct Progress {
  double seconds = 0.0;            ///< wall time since optimize() started
  std::int64_t lower = 0;          ///< greatest proven lower bound
  std::int64_t upper = 0;          ///< incumbent cost (least known upper)
  std::int64_t incumbent_cost = -1;  ///< best feasible cost; -1 before one
  bool has_incumbent = false;
  int sat_calls = 0;               ///< SOLVE calls issued so far
  std::uint64_t conflicts = 0;     ///< CDCL conflicts spent so far
};

/// Per-worker CDCL diversification knobs, applied to every solver the
/// optimizer creates. The cooperative portfolio varies these across
/// workers so that clause- and bound-sharing threads explore different
/// parts of the search space instead of racing down the same path.
struct SolverTuning {
  double var_decay = 0.95;
  int restart_base = 100;          ///< conflicts per Luby unit
  bool default_polarity = false;   ///< initial branching polarity (sign)
  bool phase_saving = true;
  double random_branch_freq = 0.0; ///< probability of a random decision
  std::uint64_t seed = 0;          ///< RNG seed; 0 keeps the default state
};

struct OptimizeOptions {
  EncoderConfig encoder;
  bool incremental = true;
  SearchStrategy strategy = SearchStrategy::kBisection;
  /// Per-SOLVE budget (0 = unlimited).
  sat::Budget per_call;
  /// Overall wall-clock limit in seconds (0 = unlimited).
  double time_limit_s = 0.0;
  /// Known feasible objective value (e.g. from simulated annealing):
  /// bounds the first SOLVE so the binary search starts from it.
  std::optional<std::int64_t> initial_upper;
  /// Known feasible allocation: biases the solver's first descent
  /// (phase-saving warm start).
  std::optional<rt::Allocation> warm_start;
  /// Certify every step of the search (see src/check): SAT answers are
  /// replayed against the PB store and the pre-bit-blast IR formulas,
  /// UNSAT answers are backed by DRAT proofs checked by the independent
  /// RUP checker, and the final allocation is re-validated by the RT
  /// analysis. The outcome lands in OptimizeResult::certified.
  bool certify = false;
  /// Route proof logging into an external log (incremental mode only) so
  /// callers can dump it for the standalone drat_check tool. Implies
  /// nothing about `certify`; both may be set independently.
  sat::ProofLog* proof = nullptr;
  /// Cooperative cancellation (set by the portfolio runner).
  const std::atomic<bool>* stop = nullptr;
  /// Solver diversification (see SolverTuning); absent = solver defaults.
  std::optional<SolverTuning> tuning;
  /// Clause-database inprocessing at restart boundaries (subsumption,
  /// vivification, bounded variable elimination — see sat/inprocess.hpp).
  bool inprocess = true;
  /// Conflicts between inprocessing passes; 0 keeps the solver default.
  std::int64_t inprocess_interval = 0;
  /// Cooperative parallel search handle (wired by the portfolio; see
  /// src/par): clause exchange with sibling workers plus the shared cost
  /// interval. Not owned. When a proof log is active (certify/proof),
  /// clause import and foreign *lower*-bound adoption are disabled so the
  /// certificate stays self-contained; exporting clauses, publishing
  /// bounds, and adopting foreign *incumbents* remain on (an incumbent is
  /// re-validated independently by the final RT analysis).
  par::SharingClient* share = nullptr;
  /// Incumbent exchange (portfolio-provided): `publish_incumbent` stores a
  /// feasible (cost, allocation) this worker found into the shared store
  /// — called *before* the shared upper bound is dropped, so any worker
  /// observing the bound can fetch an allocation matching it;
  /// `fetch_incumbent` returns the best global one.
  std::function<void(std::int64_t, const rt::Allocation&)> publish_incumbent;
  std::function<std::optional<std::pair<std::int64_t, rt::Allocation>>()>
      fetch_incumbent;
  /// Anytime progress callback, invoked after the initial solution and
  /// after every interval-narrowing SOLVE call (from the optimizer's own
  /// thread). Used to plot cost-convergence curves; keep it cheap.
  std::function<void(const Progress&)> on_progress;
};

struct OptimizeStats {
  int sat_calls = 0;
  double seconds = 0.0;
  std::int64_t boolean_vars = 0;    ///< paper's "Var." column
  std::uint64_t boolean_literals = 0;  ///< paper's "Lit." column
  std::uint64_t conflicts = 0;
  std::uint64_t pb_constraints = 0;
  // Per-call breakdown of where the search effort went.
  int sat_calls_sat = 0;      ///< SOLVE calls answered SAT
  int sat_calls_unsat = 0;    ///< SOLVE calls answered UNSAT
  double encode_seconds = 0.0;  ///< building + bit-blasting constraints
  double solve_seconds = 0.0;   ///< inside sat::Solver::solve()
  // Cooperative-search traffic (all zero unless OptimizeOptions::share).
  std::uint64_t clauses_exported = 0;  ///< learnts pushed to the pool
  std::uint64_t clauses_imported = 0;  ///< foreign learnts attached
  std::uint64_t bounds_published = 0;  ///< interval tightenings we caused
  std::uint64_t bounds_adopted = 0;    ///< foreign bounds folded in
  // Certification effort (all zero unless OptimizeOptions::certify).
  int models_certified = 0;   ///< SAT answers accepted by the model checker
  int proofs_certified = 0;   ///< proof checker passes (per log checked)
  std::uint64_t proof_lemmas_checked = 0;  ///< RUP lemmas verified
  double certify_seconds = 0.0;

  /// One-line human summary ("calls=7 (5 sat/2 unsat) encode=0.1s ...").
  std::string summary() const;
};

struct OptimizeResult {
  enum class Status {
    kOptimal,          ///< cost is the global optimum
    kInfeasible,       ///< no valid allocation exists
    kBudgetExhausted,  ///< search interrupted; best-so-far in `allocation`
  };
  Status status = Status::kInfeasible;
  std::int64_t cost = -1;  ///< optimal (or best-so-far) objective value
  bool has_allocation = false;
  rt::Allocation allocation;
  /// Remaining search interval on interruption ([lower, cost] with
  /// lower == cost when optimal).
  std::int64_t lower_bound = 0;
  /// True iff OptimizeOptions::certify was set, the search ran to a
  /// definitive status (kOptimal/kInfeasible), and every certification
  /// layer accepted: all SAT models, all UNSAT proofs, and the final
  /// allocation's RT re-validation + objective cross-check.
  bool certified = false;
  /// First certification failure, empty when none (or not certifying).
  std::string certify_error;
  OptimizeStats stats;

  std::string status_string() const {
    switch (status) {
      case Status::kOptimal: return "optimal";
      case Status::kInfeasible: return "infeasible";
      case Status::kBudgetExhausted: return "budget-exhausted";
    }
    return "?";
  }
};

/// Find the cost-minimal allocation for the problem under the objective.
OptimizeResult optimize(const Problem& problem, Objective objective,
                        const OptimizeOptions& options = {});

}  // namespace optalloc::alloc

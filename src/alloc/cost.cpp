#include "alloc/cost.hpp"

#include <algorithm>

#include "rt/analysis.hpp"
#include "rt/verify.hpp"
#include "util/intmath.hpp"

namespace optalloc::alloc {

using rt::Ticks;

std::int64_t objective_value(const Problem& problem,
                             Objective objective,
                             const rt::Allocation& allocation) {
  switch (objective.kind) {
    case ObjectiveKind::kFeasibility:
      return 0;
    case ObjectiveKind::kTokenRingTrt: {
      std::int64_t trt = 0;
      for (const Ticks slot :
           allocation.slots[static_cast<std::size_t>(objective.medium)]) {
        trt += slot;
      }
      return trt;
    }
    case ObjectiveKind::kSumTrt: {
      std::int64_t total = 0;
      for (std::size_t k = 0; k < problem.arch.media.size(); ++k) {
        if (problem.arch.media[k].type != rt::MediumType::kTokenRing) {
          continue;
        }
        for (const Ticks slot : allocation.slots[k]) total += slot;
      }
      return total;
    }
    case ObjectiveKind::kCanLoad: {
      const auto refs = problem.tasks.message_refs();
      const rt::Medium& medium =
          problem.arch.media[static_cast<std::size_t>(objective.medium)];
      std::int64_t load = 0;
      for (std::size_t g = 0; g < refs.size(); ++g) {
        const auto& route = allocation.msg_route[g];
        if (std::find(route.begin(), route.end(), objective.medium) ==
            route.end()) {
          continue;
        }
        const Ticks rho = rt::transmission_ticks(
            medium, problem.tasks.message(refs[g]).size_bytes);
        const Ticks period =
            problem.tasks.tasks[static_cast<std::size_t>(refs[g].task)].period;
        load += ceil_div(rho * 1000, period);
      }
      return load;
    }
    case ObjectiveKind::kMaxUtilization: {
      std::int64_t worst = 0;
      for (int p = 0; p < problem.arch.num_ecus; ++p) {
        std::int64_t load = 0;
        for (std::size_t i = 0; i < problem.tasks.tasks.size(); ++i) {
          if (allocation.task_ecu[i] != p) continue;
          const rt::Task& t = problem.tasks.tasks[i];
          load += ceil_div(1000 * t.wcet[static_cast<std::size_t>(p)],
                           t.period);
        }
        worst = std::max(worst, load);
      }
      return worst;
    }
  }
  return 0;
}

std::optional<std::int64_t> evaluate_allocation(
    const Problem& problem, Objective objective,
    const rt::Allocation& allocation) {
  const rt::VerifyReport report =
      rt::verify(problem.tasks, problem.arch, allocation);
  if (!report.feasible) return std::nullopt;
  return objective_value(problem, objective, allocation);
}

}  // namespace optalloc::alloc

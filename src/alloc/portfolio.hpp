#pragma once
// Parallel portfolio optimization: run several optimizer configurations
// (search strategies, encoder backends, warm starts) concurrently on the
// same problem; the first definitive answer (optimal or infeasible) wins
// and cancels the others cooperatively. Since every configuration solves
// the identical constraint system, any "optimal" verdict is *the* global
// optimum — the portfolio only changes how fast it is reached.

#include <vector>

#include "alloc/optimizer.hpp"

namespace optalloc::alloc {

struct PortfolioOptions {
  /// Configurations to race; empty = a sensible default set (bisection,
  /// descending, PB backend).
  std::vector<OptimizeOptions> configs;
  /// Overall wall-clock limit (0 = unlimited).
  double time_limit_s = 0.0;
};

struct PortfolioResult {
  OptimizeResult best;
  int winner = -1;  ///< index of the winning configuration
  std::vector<OptimizeResult::Status> per_config;
};

PortfolioResult optimize_portfolio(const Problem& problem,
                                   Objective objective,
                                   const PortfolioOptions& options = {});

}  // namespace optalloc::alloc

#pragma once
// Cooperative parallel portfolio optimization: run several diversified
// optimizer configurations concurrently on the same problem. Beyond the
// classic race (first definitive answer wins and cancels the rest), the
// workers cooperate through the src/par sharing layer:
//
//   * clause exchange — each CDCL worker exports its valuable learnt
//     clauses (units, binaries, low-LBD) into a sharded lock-per-producer
//     pool and drains its siblings' exports at restart boundaries. Only
//     workers with an identical encoder configuration exchange clauses
//     (same configuration => same deterministic variable numbering);
//   * bound broadcasting — one shared atomic cost interval: any worker
//     that proves a lower bound raises it, any worker that finds an
//     incumbent drops the upper side (and parks the allocation in a
//     shared store), and every worker folds the global interval into its
//     own binary search before each SOLVE step;
//   * diversification — generated workers vary search strategy, VSIDS
//     decay, restart pacing, default polarity, random-branching rate and
//     RNG seed, so the portfolio explores different parts of the search
//     space instead of racing down the same path.
//
// Since every configuration solves the identical constraint system, any
// "optimal" verdict is *the* global optimum — sharing only changes how
// fast it is reached.

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "alloc/optimizer.hpp"

namespace optalloc::alloc {

struct PortfolioOptions {
  /// Configurations to race, verbatim. Empty = generate `threads`
  /// diversified variants of `base_config` (worker 0 keeps the base
  /// untouched); with `threads` == 0 too, a sensible default trio
  /// (bisection, descending, PB backend).
  std::vector<OptimizeOptions> configs;
  /// Worker count for generated configurations (ignored when `configs`
  /// is non-empty). 0 = the historical default trio.
  int threads = 0;
  /// Template for generated configurations: carries encoder config,
  /// certification, warm starts, per-call budgets into every worker.
  OptimizeOptions base_config;
  /// Overall wall-clock limit (0 = unlimited).
  double time_limit_s = 0.0;
  /// Caller-side cooperative cancellation. The portfolio drives its
  /// workers through an *internal* stop flag (so a definitive answer can
  /// cancel the losers); when this is set, a watcher thread forwards the
  /// external request onto that internal flag. Per-config
  /// OptimizeOptions::stop is overwritten by the runner — this is the only
  /// way to cancel a whole portfolio from outside.
  const std::atomic<bool>* external_stop = nullptr;
  /// Cooperative clause exchange between same-encoding workers.
  bool share_clauses = true;
  /// Shared cost interval + incumbent-allocation exchange.
  bool share_bounds = true;
  /// Export filter: learnts with LBD <= this (or size <= 2) travel.
  std::uint32_t share_max_lbd = 4;
  /// Export filter: learnts longer than this never travel.
  std::uint32_t share_max_size = 32;
  /// Serialized anytime progress over the merged portfolio interval:
  /// callbacks never overlap (mutual exclusion across workers) and the
  /// reported interval shrinks monotonically even though the underlying
  /// per-worker reports race. `sat_calls` counts all workers' SOLVE calls.
  std::function<void(const Progress&)> on_progress;
};

/// Cooperative-search traffic aggregated over all workers.
struct SharingStats {
  std::uint64_t clauses_exported = 0;  ///< learnts pushed to the pools
  std::uint64_t clauses_imported = 0;  ///< foreign learnts attached
  std::uint64_t bounds_published = 0;  ///< shared-interval tightenings
  std::uint64_t bounds_adopted = 0;    ///< foreign bounds folded in
  std::uint64_t pool_dropped = 0;      ///< exports lost to ring overwrite
};

struct PortfolioResult {
  OptimizeResult best;
  int winner = -1;  ///< index of the winning configuration
  int threads = 0;  ///< number of workers actually raced
  std::vector<OptimizeResult::Status> per_config;
  /// Per-worker search effort (indexed like per_config).
  std::vector<OptimizeStats> per_config_stats;
  SharingStats sharing;
};

PortfolioResult optimize_portfolio(const Problem& problem,
                                   Objective objective,
                                   const PortfolioOptions& options = {});

}  // namespace optalloc::alloc

#pragma once
// Canonical instance identity for the allocation service's result cache.
//
// Two submissions that describe the same system — same tasks, media and
// constraints, merely declared in a different order — must map to the same
// cache entry. canonicalize() therefore rewrites a (Problem, Objective)
// pair into a normal form:
//
//   * tasks sorted by (name, period, deadline, ...); message targets and
//     separation sets remapped and sorted; per-task messages sorted;
//   * media sorted by their serialized content, with each medium's ECU
//     list sorted ascending; the objective's medium index is remapped;
//   * ECU *identities* are preserved (renumbering ECUs soundly would need
//     graph canonicalization over WCET columns and media membership —
//     deliberately out of scope; see DESIGN §10).
//
// The canonical form is what the scheduler actually solves, so permuted
// duplicates are solved identically; the permutations are retained so a
// cached allocation (stored in canonical indexing) can be translated back
// into the requester's original task/medium/slot numbering.

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/problem.hpp"

namespace optalloc::svc {

/// 128-bit content hash (two independent FNV-1a streams) of the canonical
/// instance text. The cache additionally compares the full canonical text
/// on lookup, so a hash collision degrades to a miss, never a wrong answer.
struct Fingerprint {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool operator==(const Fingerprint& o) const { return a == o.a && b == o.b; }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }
  std::string hex() const;
};

/// A problem/objective pair in canonical form, plus the permutations
/// needed to translate allocations between the two indexings.
struct Canonical {
  alloc::Problem problem;     ///< canonical instance (what gets solved)
  alloc::Objective objective; ///< objective with remapped medium index
  std::string text;           ///< serialized canonical instance + objective
  Fingerprint key;            ///< hash of `text`

  // Original index -> canonical index.
  std::vector<int> task_perm;
  std::vector<int> media_perm;
  std::vector<int> msg_perm;  ///< original global message id -> canonical
  /// Per *original* medium: original ECU-list position -> canonical
  /// position (slot tables are indexed by position in Medium::ecus).
  std::vector<std::vector<int>> ecu_pos_perm;
};

/// Build the canonical form of an instance.
Canonical canonicalize(const alloc::Problem& problem,
                       alloc::Objective objective);

/// Translate an allocation produced for `canon.problem` back into the
/// original instance's task/medium/slot indexing.
rt::Allocation restore_allocation(const Canonical& canon,
                                  const rt::Allocation& canonical_alloc);

/// The exact inverse of restore_allocation: translate an allocation in
/// the *original* instance's indexing into canonical indexing, so that
/// answers produced outside the canonical pipeline (incremental sessions
/// solve the instance as-submitted) can be stored in the result cache
/// and later replayed through restore_allocation for any permutation of
/// the same system.
rt::Allocation canonical_allocation(const Canonical& canon,
                                    const rt::Allocation& original_alloc);

/// FNV-1a over `text` (exposed for tests).
Fingerprint fingerprint_text(const std::string& text);

}  // namespace optalloc::svc

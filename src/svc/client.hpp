#pragma once
// Client-side socket plumbing for the NDJSON protocol, shared by the
// alloc_client CLI and the bench_service load generator: connect to the
// daemon, send one request line, read one response line.

#include <string>

namespace optalloc::svc {

/// Connect to a Unix-domain socket; -1 on failure.
int connect_unix(const std::string& path);

/// Connect to a TCP endpoint (numeric IPv4 host, e.g. "127.0.0.1");
/// -1 on failure.
int connect_tcp(const std::string& host, int port);

/// Bounded-retry connect for transient failures (daemon still binding
/// its socket, connection backlog momentarily full): up to `attempts`
/// tries with exponential backoff starting at `initial_backoff_ms`
/// (doubling per retry, so the default 5/50 waits 50+100+200+400 ms
/// worst case). Returns the fd, or -1 once every attempt failed.
int connect_unix_retry(const std::string& path, int attempts = 5,
                       int initial_backoff_ms = 50);
int connect_tcp_retry(const std::string& host, int port, int attempts = 5,
                      int initial_backoff_ms = 50);

/// Write `line` plus the terminating newline; false on a broken pipe.
bool send_line(int fd, const std::string& line);

/// Read up to the next newline (buffering any over-read in `buffer`
/// across calls). Returns false on EOF/error before a complete line.
bool recv_line(int fd, std::string& buffer, std::string& line);

}  // namespace optalloc::svc

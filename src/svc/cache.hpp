#pragma once
// Sharded LRU cache of definitive allocation answers, keyed by canonical
// instance fingerprint (see svc/fingerprint). Only *proven* results
// (optimal / infeasible) are cached — they are valid regardless of the
// solver configuration, budgets or deadlines of the request that produced
// them. Allocations are stored in canonical indexing; the scheduler
// translates them back per request.
//
// Concurrency: the key hash picks one of N shards, each guarded by its
// own mutex, so concurrent workers rarely contend. Lookups compare the
// full canonical text, so a fingerprint collision degrades to a miss,
// never a wrong answer.

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/resource.hpp"
#include "rt/model.hpp"
#include "svc/fingerprint.hpp"
#include "util/mutex.hpp"

namespace optalloc::svc {

/// A definitive answer, safe to replay for any identical instance.
struct CachedAnswer {
  bool infeasible = false;      ///< proven: no valid allocation exists
  std::int64_t cost = -1;       ///< proven optimal objective value
  std::int64_t lower_bound = 0;
  bool has_allocation = false;
  rt::Allocation allocation;    ///< canonical indexing
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// Point-in-time fill level of one shard (occupancy telemetry for
/// alloc_top and the skew analysis future eviction policies need: a hot
/// shard pinning its LRU while others sit empty is invisible in the
/// aggregate counters).
struct CacheShardOccupancy {
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< estimated retained footprint
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  /// `capacity` total entries spread over `shards` independent LRU lists
  /// (each shard holds ceil(capacity/shards)).
  explicit ResultCache(std::size_t capacity = 256, int shards = 8);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Lookup; refreshes recency on hit. `canonical_text` guards against
  /// fingerprint collisions.
  std::optional<CachedAnswer> get(const Fingerprint& key,
                                  std::string_view canonical_text);

  /// Insert (or refresh) an answer; evicts the shard's LRU tail when full.
  void put(const Fingerprint& key, std::string canonical_text,
           CachedAnswer answer);

  ~ResultCache();

  CacheStats stats() const;   ///< aggregated over shards
  std::size_t size() const;   ///< live entries
  std::size_t bytes() const;  ///< estimated retained footprint
  int shards() const { return static_cast<int>(shards_.size()); }
  std::vector<CacheShardOccupancy> shard_occupancy() const;

 private:
  struct Entry {
    Fingerprint key;
    std::string text;
    CachedAnswer answer;
  };
  struct Shard {
    mutable util::Mutex mu;
    std::list<Entry> lru OPTALLOC_GUARDED_BY(mu);  ///< front = MRU
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index
        OPTALLOC_GUARDED_BY(mu);
    CacheStats stats OPTALLOC_GUARDED_BY(mu);
    std::size_t bytes OPTALLOC_GUARDED_BY(mu) = 0;  ///< sum of entry_bytes
  };

  static std::size_t entry_bytes(const Entry& e);

  Shard& shard_for(const Fingerprint& key) {
    return shards_[static_cast<std::size_t>(key.a % shards_.size())];
  }

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  obs::Resource res_ = obs::resource("svc.cache");
};

}  // namespace optalloc::svc

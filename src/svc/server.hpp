#pragma once
// The allocation daemon: accepts NDJSON connections on a Unix-domain or
// TCP listening socket, one handler thread per connection, all dispatch
// into one shared Scheduler (so every connection sees the same queue,
// workers and result cache).
//
// Shutdown is graceful by design: request_stop() (signal-safe — SIGTERM
// handlers call it) makes the accept loop stop taking new connections,
// drains the scheduler (every queued job still gets its answer), then
// wakes the per-connection loops so in-flight clients get their final
// responses before the sockets close.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/scheduler.hpp"

namespace optalloc::svc {

struct ServerOptions {
  SchedulerOptions scheduler;
};

class Server {
 public:
  explicit Server(const ServerOptions& options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on a Unix-domain socket path (unlinks a stale socket
  /// file first). Returns false with the reason in errno semantics logged
  /// by the caller. Call exactly one listen_* before run().
  bool listen_unix(const std::string& path);
  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral; see tcp_port()).
  bool listen_tcp(int port);
  int tcp_port() const { return tcp_port_; }

  /// Accept/serve until request_stop(); returns after the graceful drain.
  void run();

  /// Async-signal-safe stop request (atomic store only).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Handle one request line, returning the response line (no newline).
  /// Exposed so tests can drive the full protocol without sockets.
  std::string handle_line(const std::string& line);

  Scheduler& scheduler() { return scheduler_; }

 private:
  void serve_connection(int fd);

  // Capability map (no mutex on purpose): scheduler_ is internally
  // synchronized; listen_fd_/tcp_port_/unix_path_ are written by
  // listen_*() before run() starts and read-only afterwards;
  // connections_ is owned by the run() thread alone (accept loop +
  // final join); the cross-thread flags below are atomics.
  Scheduler scheduler_;
  int listen_fd_ = -1;
  int tcp_port_ = 0;
  std::string unix_path_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> drain_on_stop_{true};  ///< shutdown verb may clear
  std::vector<std::thread> connections_;   ///< run()-thread owned
};

}  // namespace optalloc::svc

#pragma once
// The allocation service's execution core: a bounded job queue drained by
// a worker pool, fronted by the canonical result cache.
//
// Request lifecycle:
//   submit() canonicalizes the instance, probes the cache (a hit completes
//   the job immediately, translated back into the requester's indexing)
//   and otherwise enqueues it — or rejects it when the queue is full (the
//   bound is the backpressure mechanism; callers surface "queue full").
//   A worker picks the job up, runs a short simulated-annealing pass for a
//   warm-start incumbent, then dispatches to alloc::optimize (or the
//   cooperative portfolio for threads > 1) with the request's remaining
//   wall-clock deadline and per-SOLVE conflict budget.
//
// Anytime contract: a request with a deadline ALWAYS gets an answer by
// that deadline — the proven optimum if the search finished, otherwise
// the best incumbent found (warm start included) plus the greatest proven
// lower bound, with proven_optimal=false. Cancellation is cooperative
// through the solver's stop flag; a cancelled solve frees its worker
// within one propagation budget check.
//
// Observability: svc.* metrics (request counters, cache hits, queue-depth
// gauge, queue/solve timers) and request_received / cache_hit /
// deadline_expired / request_done trace events.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "alloc/problem.hpp"
#include "inc/patch.hpp"
#include "inc/session.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "svc/cache.hpp"
#include "svc/fingerprint.hpp"
#include "util/mutex.hpp"

namespace optalloc::svc {

struct SchedulerOptions {
  int workers = 2;
  std::size_t queue_capacity = 64;   ///< queued (not yet running) jobs
  std::size_t cache_entries = 256;
  int cache_shards = 8;
  /// Simulated-annealing warm-start effort per request (0 = skip; the
  /// warm start is what guarantees an incumbent for anytime answers).
  int anneal_iterations = 2000;
  /// Solver inprocessing for every job (see alloc::OptimizeOptions).
  bool inprocess = true;
  std::int64_t inprocess_interval = 0;  ///< 0 = solver default
};

struct JobRequest {
  alloc::Problem problem;
  alloc::Objective objective;
  double deadline_s = 0.0;          ///< answer-by budget from submission; 0 = none
  std::int64_t conflict_budget = 0; ///< per-SOLVE conflict cap (0 = unlimited)
  int threads = 1;                  ///< >1 = cooperative portfolio
};

enum class JobState { kQueued, kRunning, kDone, kCancelled };
const char* job_state_name(JobState s);

/// Where inside its lifecycle a running job currently is: waiting in the
/// queue, in the simulated-annealing warm start, inside the BIN_SEARCH
/// loop, or terminal. Updated with relaxed atomics by the worker; readers
/// (the inspect verb) see a recent-but-not-instantaneous view.
enum class JobPhase { kQueued, kWarmStart, kSolving, kFinished };
const char* job_phase_name(JobPhase p);

/// The anytime answer. `proven_optimal` is true only for a finished
/// search (status "optimal" — and "infeasible", which is also a proof).
struct JobAnswer {
  std::string status = "unknown";  ///< optimal|infeasible|feasible|unknown
  bool proven_optimal = false;
  bool deadline_expired = false;
  bool cached = false;
  bool has_allocation = false;
  std::int64_t cost = -1;
  std::int64_t lower_bound = 0;
  rt::Allocation allocation;       ///< requester's original indexing
  int sat_calls = 0;
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;
};

struct JobSnapshot {
  std::string id;
  JobState state = JobState::kQueued;
  JobAnswer answer;  ///< meaningful once state is kDone / kCancelled
};

/// Live mid-solve view of one request (the `inspect` verb): lifecycle
/// phase, elapsed wall time, and the optimizer's proven cost interval +
/// effort counters as of its most recent progress report. All live fields
/// are best-effort relaxed-atomic reads — they lag the solver by at most
/// one SOLVE call. `upper` is -1 until an incumbent exists.
struct JobInspect {
  std::string id;
  JobState state = JobState::kQueued;
  JobPhase phase = JobPhase::kQueued;
  double elapsed_s = 0.0;          ///< since submission (wall clock)
  double deadline_s = 0.0;         ///< answer-by budget (0 = none)
  std::int64_t lower = 0;          ///< greatest proven lower bound so far
  std::int64_t upper = -1;         ///< incumbent cost (-1 = none yet)
  std::int64_t sat_calls = 0;      ///< SOLVE calls issued so far
  std::int64_t conflicts = 0;      ///< CDCL conflicts spent so far
  std::uint64_t req = 0;           ///< trace/flight request id
  JobAnswer answer;                ///< meaningful once state is terminal
};

/// Answer of one session solve (open or revise) — the incremental
/// counterpart of JobAnswer, with the delta/search statistics the
/// session reports and, on infeasible edits, the named constraint core.
struct SessionAnswer {
  std::string status = "unknown";  ///< optimal|infeasible|feasible|unknown|error
  bool proven_optimal = false;
  bool has_allocation = false;
  std::int64_t cost = -1;
  std::int64_t lower_bound = 0;
  rt::Allocation allocation;       ///< the session instance's indexing
  std::vector<std::string> core;   ///< infeasible: conflicting groups
  std::string error;               ///< status "error": what went wrong
  int sat_calls = 0;
  double solve_seconds = 0.0;
  int groups_added = 0;
  int groups_retired = 0;
  std::size_t groups_unchanged = 0;
  std::int64_t clauses_added = 0;
  /// A proven answer was stored in the result cache under the *post-edit*
  /// canonical fingerprint (so cold submits of the same edited instance
  /// hit it — and the base instance's entry is never poisoned).
  bool cache_stored = false;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;         ///< bounced off the full queue
  std::uint64_t deadline_expired = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t revises = 0;
  std::size_t active_sessions = 0;
  std::size_t queue_depth = 0;
  int workers = 0;
  /// Process lifetime view (alloc_top's utilization denominator).
  double uptime_s = 0.0;
  std::int64_t start_time_unix_ms = 0;
  CacheStats cache;
  // Request latency percentiles (ms, submission -> terminal state).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options = {});
  ~Scheduler();  ///< shutdown(false)
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Returns the assigned request id, or nullopt when the queue is full
  /// or the scheduler is shutting down.
  std::optional<std::string> submit(JobRequest request);

  std::optional<JobSnapshot> status(const std::string& id) const;

  /// Live introspection of a job (running or terminal); nullopt for
  /// unknown ids. Never blocks on the solver — the live interval fields
  /// come from relaxed atomics the worker updates per progress report.
  std::optional<JobInspect> inspect(const std::string& id) const;

  /// The trace/flight request id ("req" field) assigned to a job, used to
  /// filter flight-recorder dumps to one request. Nullopt for unknown ids.
  std::optional<std::uint64_t> request_trace_id(const std::string& id) const;

  /// Request cooperative cancellation. Returns false for unknown or
  /// already-terminal jobs.
  bool cancel(const std::string& id);

  /// Block until the job reaches a terminal state (kDone / kCancelled).
  /// timeout_s = 0 waits indefinitely; returns nullopt on timeout or
  /// unknown id.
  std::optional<JobSnapshot> wait(const std::string& id,
                                  double timeout_s = 0.0);

  // --- Incremental re-solve sessions (the revise verb) -----------------
  //
  // A session keeps a live inc::Session (persistent solver + encoding)
  // for one client across edits. Session solves run inline on the calling
  // thread — they are interactive what-if queries riding the warm solver,
  // not batch jobs for the worker pool. Concurrent ops on the *same*
  // session serialize on a per-session mutex; different sessions do not
  // contend.

  /// Open a session on `request.problem` and solve it. Returns the
  /// session id + the initial answer, or nullopt when shutting down.
  /// (JobRequest::threads is ignored: sessions are single-solver.)
  std::optional<std::pair<std::string, SessionAnswer>> session_open(
      JobRequest request);

  /// Apply a patch to a session's instance and re-solve incrementally.
  /// Nullopt for unknown session ids; a patch that fails validation
  /// returns status "error" and leaves the session instance untouched.
  std::optional<SessionAnswer> session_revise(const std::string& id,
                                              const inc::InstancePatch& patch,
                                              double deadline_s,
                                              std::int64_t conflicts);

  /// Discard a session (frees its solver). False for unknown ids.
  bool session_close(const std::string& id);

  /// Stop accepting work. drain=true finishes every queued job first;
  /// drain=false cancels queued jobs and stops running solves. Joins the
  /// workers; idempotent. Session solves in flight on connection threads
  /// are stopped cooperatively in both modes.
  void shutdown(bool drain);

  ServiceStats stats() const;
  const ResultCache& cache() const { return cache_; }

 private:
  struct Job;
  struct SessionEntry;

  /// Run one session solve (open or revise) under the entry's own mutex,
  /// translate the result, emit trace events, and cache proven answers
  /// under the post-edit canonical fingerprint. `edits` is only for the
  /// trace (0 = the opening solve).
  SessionAnswer run_session_solve(SessionEntry& entry,
                                  const inc::InstancePatch* patch,
                                  std::size_t edits, double deadline_s,
                                  std::int64_t conflicts);

  void worker_loop();
  void execute(const std::shared_ptr<Job>& job);
  /// Terminalize under the scheduler mutex and wake waiters.
  void finalize(const std::shared_ptr<Job>& job, JobState state,
                JobAnswer answer) OPTALLOC_EXCLUDES(mu_);

  SchedulerOptions options_;
  ResultCache cache_;

  mutable util::Mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue / shutdown
  std::condition_variable done_cv_;  ///< waiters: job completions
  /// Job fields with cross-thread state (`state`, `answer`,
  /// `cancel_requested`) are likewise guarded by mu_; that guard crosses
  /// the object boundary, which GUARDED_BY cannot name — it is enforced
  /// by keeping every such access inside this class, under mu_.
  std::map<std::string, std::shared_ptr<Job>> jobs_ OPTALLOC_GUARDED_BY(mu_);
  std::deque<std::shared_ptr<Job>> queue_ OPTALLOC_GUARDED_BY(mu_);
  /// Live sessions. The map is guarded by mu_; each entry's inc::Session
  /// is guarded by the entry's own mutex so a long incremental solve
  /// never holds the scheduler lock.
  std::map<std::string, std::shared_ptr<SessionEntry>> sessions_
      OPTALLOC_GUARDED_BY(mu_);
  /// Raised by shutdown(); every session solve passes it as its stop
  /// flag, so in-flight revises on connection threads wind down fast.
  std::atomic<bool> session_stop_{false};
  std::vector<std::thread> workers_;  ///< written in ctor, joined once
  std::uint64_t next_id_ OPTALLOC_GUARDED_BY(mu_) = 0;
  std::uint64_t next_session_id_ OPTALLOC_GUARDED_BY(mu_) = 0;
  bool accepting_ OPTALLOC_GUARDED_BY(mu_) = true;
  bool joined_ OPTALLOC_GUARDED_BY(mu_) = false;
  /// Serializes shutdown(): the first caller joins the workers while
  /// holding it (mu_ stays free so workers can finish); latecomers block
  /// here until the join completes instead of racing t.join().
  util::Mutex shutdown_mu_;
  ServiceStats counters_ OPTALLOC_GUARDED_BY(mu_);  ///< counter fields only
  /// Bounded distribution of request latencies (ms): memory does not grow
  /// with request count, percentiles are within one bucket width (6.25%).
  obs::LocalHistogram latencies_ms_ OPTALLOC_GUARDED_BY(mu_);
  /// Scheduler birth on both clocks: steady for uptime arithmetic, wall
  /// for the stats verb's start_time_unix_ms.
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::int64_t start_unix_ms_ = 0;  ///< set once in the ctor
  /// Capacity accounting: queued-request bytes/count and open sessions.
  obs::Resource queue_res_ = obs::resource("svc.queue");
  obs::Resource sessions_res_ = obs::resource("svc.sessions");
};

}  // namespace optalloc::svc

#include "svc/cache.hpp"

#include <algorithm>
#include <utility>

namespace optalloc::svc {

ResultCache::ResultCache(std::size_t capacity, int shards) {
  const std::size_t n = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::max(1, shards)));
  per_shard_capacity_ = std::max<std::size_t>(1, (capacity + n - 1) / n);
  shards_ = std::vector<Shard>(n);
}

ResultCache::~ResultCache() {
  // Retract this cache's contribution from the resource registry: tests
  // and benches build many schedulers, and their caches must not leave
  // phantom occupancy behind.
  for (const Shard& s : shards_) {
    util::MutexLock lock(s.mu);
    obs::res_add(res_, -static_cast<std::int64_t>(s.bytes),
                 -static_cast<std::int64_t>(s.lru.size()));
  }
}

std::size_t ResultCache::entry_bytes(const Entry& e) {
  // Estimate: canonical text + allocation payload + list/index node
  // overhead. Exactness does not matter — eviction pressure and trend
  // direction do.
  return e.text.size() +
         e.answer.allocation.task_ecu.size() * sizeof(int) +
         sizeof(Entry) + 64;
}

std::optional<CachedAnswer> ResultCache::get(const Fingerprint& key,
                                             std::string_view canonical_text) {
  Shard& s = shard_for(key);
  util::MutexLock lock(s.mu);
  const auto it = s.index.find(key.a);
  if (it == s.index.end() || it->second->key != key ||
      it->second->text != canonical_text) {
    ++s.stats.misses;
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  ++s.stats.hits;
  return it->second->answer;
}

void ResultCache::put(const Fingerprint& key, std::string canonical_text,
                      CachedAnswer answer) {
  Shard& s = shard_for(key);
  util::MutexLock lock(s.mu);
  if (const auto it = s.index.find(key.a); it != s.index.end()) {
    // Refresh (or replace a colliding entry — last writer wins).
    const std::size_t before = entry_bytes(*it->second);
    it->second->key = key;
    it->second->text = std::move(canonical_text);
    it->second->answer = std::move(answer);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    const std::size_t after = entry_bytes(*it->second);
    s.bytes += after - before;
    obs::res_add(res_,
                 static_cast<std::int64_t>(after) -
                     static_cast<std::int64_t>(before),
                 0);
    return;
  }
  if (s.lru.size() >= per_shard_capacity_) {
    const std::size_t victim = entry_bytes(s.lru.back());
    s.index.erase(s.lru.back().key.a);
    s.lru.pop_back();
    ++s.stats.evictions;
    s.bytes -= victim;
    obs::res_add(res_, -static_cast<std::int64_t>(victim), -1);
  }
  s.lru.push_front(Entry{key, std::move(canonical_text), std::move(answer)});
  s.index.emplace(key.a, s.lru.begin());
  ++s.stats.insertions;
  const std::size_t added = entry_bytes(s.lru.front());
  s.bytes += added;
  obs::res_add(res_, static_cast<std::int64_t>(added), 1);
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const Shard& s : shards_) {
    util::MutexLock lock(s.mu);
    total.hits += s.stats.hits;
    total.misses += s.stats.misses;
    total.insertions += s.stats.insertions;
    total.evictions += s.stats.evictions;
  }
  return total;
}

std::size_t ResultCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    util::MutexLock lock(s.mu);
    n += s.lru.size();
  }
  return n;
}

std::size_t ResultCache::bytes() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    util::MutexLock lock(s.mu);
    n += s.bytes;
  }
  return n;
}

std::vector<CacheShardOccupancy> ResultCache::shard_occupancy() const {
  std::vector<CacheShardOccupancy> out;
  out.reserve(shards_.size());
  for (const Shard& s : shards_) {
    util::MutexLock lock(s.mu);
    out.push_back({s.lru.size(), s.bytes, per_shard_capacity_});
  }
  return out;
}

}  // namespace optalloc::svc

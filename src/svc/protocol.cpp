#include "svc/protocol.hpp"

#include <utility>

#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace optalloc::svc {

namespace {

bool get_bool(const obs::JsonValue& v, std::string_view key, bool dflt) {
  const obs::JsonValue* m = v.get(key);
  if (m == nullptr || m->kind != obs::JsonValue::Kind::kBool) return dflt;
  return m->b;
}

}  // namespace

std::optional<Request> parse_request(const std::string& line,
                                     std::string* error,
                                     std::string* code) {
  const auto fail = [&](const std::string& m, const char* c) {
    if (error != nullptr) *error = m;
    if (code != nullptr) *code = c;
    return std::nullopt;
  };
  const auto doc = obs::json_parse(line);
  if (!doc || !doc->is_object()) {
    return fail("malformed JSON request", "bad_json");
  }
  const auto verb = doc->get_string("verb");
  if (!verb) {
    return fail("missing \"verb\"", "bad_request");
  }
  Request req;
  if (*verb == "submit") {
    req.verb = Request::Verb::kSubmit;
    const auto problem = doc->get_string("problem");
    if (!problem || problem->empty()) {
      return fail("submit requires a \"problem\" string", "bad_request");
    }
    req.problem_text = *problem;
    if (const auto obj = doc->get_string("objective")) req.objective = *obj;
    if (const auto d = doc->get_number("deadline_ms")) {
      req.deadline_ms = *d > 0 ? *d : 0.0;
    }
    if (const auto c = doc->get_number("conflicts")) {
      req.conflicts = static_cast<std::int64_t>(*c > 0 ? *c : 0);
    }
    if (const auto t = doc->get_number("threads")) {
      req.threads = *t > 1 ? static_cast<int>(*t) : 1;
    }
    req.wait = get_bool(*doc, "wait", false);
    return req;
  }
  if (*verb == "status" || *verb == "cancel" || *verb == "result" ||
      *verb == "inspect") {
    req.verb = *verb == "status"   ? Request::Verb::kStatus
               : *verb == "cancel" ? Request::Verb::kCancel
               : *verb == "result" ? Request::Verb::kResult
                                   : Request::Verb::kInspect;
    const auto id = doc->get_string("id");
    if (!id || id->empty()) {
      return fail(*verb + " requires an \"id\"", "bad_request");
    }
    req.id = *id;
    return req;
  }
  if (*verb == "dump") {
    req.verb = Request::Verb::kDump;
    if (const auto id = doc->get_string("id")) req.id = *id;
    return req;
  }
  if (*verb == "stats") {
    req.verb = Request::Verb::kStats;
    return req;
  }
  if (*verb == "metrics") {
    req.verb = Request::Verb::kMetrics;
    return req;
  }
  if (*verb == "query") {
    req.verb = Request::Verb::kQuery;
    if (const auto metric = doc->get_string("metric")) req.metric = *metric;
    if (const auto w = doc->get_number("last_s")) {
      req.last_s = *w > 0 ? *w : 0.0;
    }
    if (const auto m = doc->get_number("max_samples")) {
      req.max_samples = static_cast<std::int64_t>(*m > 0 ? *m : 0);
    }
    return req;
  }
  if (*verb == "session_open") {
    req.verb = Request::Verb::kSessionOpen;
    const auto problem = doc->get_string("problem");
    if (!problem || problem->empty()) {
      return fail("session_open requires a \"problem\" string",
                  "bad_request");
    }
    req.problem_text = *problem;
    if (const auto obj = doc->get_string("objective")) req.objective = *obj;
    if (const auto d = doc->get_number("deadline_ms")) {
      req.deadline_ms = *d > 0 ? *d : 0.0;
    }
    if (const auto c = doc->get_number("conflicts")) {
      req.conflicts = static_cast<std::int64_t>(*c > 0 ? *c : 0);
    }
    return req;
  }
  if (*verb == "revise" || *verb == "session_close") {
    req.verb = *verb == "revise" ? Request::Verb::kRevise
                                 : Request::Verb::kSessionClose;
    const auto session = doc->get_string("session");
    if (!session || session->empty()) {
      return fail(*verb + " requires a \"session\" id", "bad_request");
    }
    req.session = *session;
    if (req.verb == Request::Verb::kRevise) {
      const obs::JsonValue* edits = doc->get("edits");
      if (edits == nullptr) {
        return fail("revise requires an \"edits\" array", "bad_request");
      }
      std::string patch_error;
      auto patch = inc::parse_patch(*edits, &patch_error);
      if (!patch) return fail(patch_error, "bad_patch");
      req.patch = std::move(*patch);
      if (const auto d = doc->get_number("deadline_ms")) {
        req.deadline_ms = *d > 0 ? *d : 0.0;
      }
      if (const auto c = doc->get_number("conflicts")) {
        req.conflicts = static_cast<std::int64_t>(*c > 0 ? *c : 0);
      }
    }
    return req;
  }
  if (*verb == "shutdown") {
    req.verb = Request::Verb::kShutdown;
    req.drain = get_bool(*doc, "drain", true);
    return req;
  }
  return fail("unknown verb \"" + *verb + "\"", "unknown_verb");
}

std::string error_line(const std::string& message, const std::string& code) {
  return obs::JsonObject()
      .boolean("ok", false)
      .str("error", message)
      .str("code", code)
      .build();
}

std::string submit_ack_line(const std::string& id) {
  return obs::JsonObject().boolean("ok", true).str("id", id).build();
}

std::string snapshot_line(const JobSnapshot& snapshot) {
  obs::JsonObject o;
  o.boolean("ok", true)
      .str("id", snapshot.id)
      .str("state", job_state_name(snapshot.state));
  if (snapshot.state != JobState::kDone &&
      snapshot.state != JobState::kCancelled) {
    return o.build();
  }
  const JobAnswer& a = snapshot.answer;
  o.str("status", a.status)
      .boolean("proven_optimal", a.proven_optimal)
      .boolean("deadline_expired", a.deadline_expired)
      .boolean("cached", a.cached)
      .num("cost", a.cost)
      .num("lower_bound", a.lower_bound)
      .num("sat_calls", static_cast<std::int64_t>(a.sat_calls))
      .num("queue_ms", a.queue_seconds * 1000.0)
      .num("solve_ms", a.solve_seconds * 1000.0)
      .num("total_ms", a.total_seconds * 1000.0);
  if (a.has_allocation) {
    obs::JsonArray ecus;
    for (const int e : a.allocation.task_ecu) {
      ecus.push(std::to_string(e));
    }
    o.raw("task_ecu", ecus.build());
  }
  return o.build();
}

std::string stats_line(const ServiceStats& stats) {
  return obs::JsonObject()
      .boolean("ok", true)
      .num("submitted", static_cast<std::int64_t>(stats.submitted))
      .num("completed", static_cast<std::int64_t>(stats.completed))
      .num("cancelled", static_cast<std::int64_t>(stats.cancelled))
      .num("rejected", static_cast<std::int64_t>(stats.rejected))
      .num("deadline_expired",
           static_cast<std::int64_t>(stats.deadline_expired))
      .num("queue_depth", static_cast<std::int64_t>(stats.queue_depth))
      .num("workers", static_cast<std::int64_t>(stats.workers))
      .num("uptime_s", stats.uptime_s)
      .num("start_time_unix_ms", stats.start_time_unix_ms)
      .num("sessions_opened", static_cast<std::int64_t>(stats.sessions_opened))
      .num("sessions_closed", static_cast<std::int64_t>(stats.sessions_closed))
      .num("revises", static_cast<std::int64_t>(stats.revises))
      .num("active_sessions",
           static_cast<std::int64_t>(stats.active_sessions))
      .num("cache_hits", static_cast<std::int64_t>(stats.cache.hits))
      .num("cache_misses", static_cast<std::int64_t>(stats.cache.misses))
      .num("cache_insertions",
           static_cast<std::int64_t>(stats.cache.insertions))
      .num("cache_evictions",
           static_cast<std::int64_t>(stats.cache.evictions))
      .num("p50_ms", stats.p50_ms)
      .num("p95_ms", stats.p95_ms)
      .num("p99_ms", stats.p99_ms)
      .num("max_ms", stats.max_ms)
      .build();
}

std::string metrics_line() {
  return obs::JsonObject()
      .boolean("ok", true)
      .raw("metrics", obs::metrics_full_json())
      .build();
}

std::string query_line(const Request& request) {
  if (request.metric.empty()) {
    // Catalogue mode: one summary row per series.
    obs::JsonArray series;
    std::size_t n = 0;
    for (const obs::SeriesInfo& info : obs::timeseries_list()) {
      series.push(obs::JsonObject()
                      .str("metric", info.name)
                      .num("count", static_cast<std::int64_t>(info.count))
                      .num("last_unix_ms", info.last_unix_ms)
                      .num("last", info.last)
                      .build());
      ++n;
    }
    return obs::JsonObject()
        .boolean("ok", true)
        .num("count", static_cast<std::int64_t>(n))
        .raw("series", series.build())
        .build();
  }
  const std::vector<obs::TimeSample> samples = obs::timeseries_query(
      request.metric, request.last_s,
      request.max_samples > 0 ? static_cast<std::size_t>(request.max_samples)
                              : 0);
  obs::JsonArray rows;
  for (const obs::TimeSample& s : samples) {
    obs::JsonArray pair;
    pair.push(std::to_string(s.unix_ms));
    pair.push(obs::json_number(s.value));
    rows.push(pair.build());
  }
  return obs::JsonObject()
      .boolean("ok", true)
      .str("metric", request.metric)
      .num("count", static_cast<std::int64_t>(samples.size()))
      .raw("samples", rows.build())
      .build();
}

std::string inspect_line(const JobInspect& inspect) {
  obs::JsonObject o;
  o.boolean("ok", true)
      .str("id", inspect.id)
      .str("state", job_state_name(inspect.state))
      .str("phase", job_phase_name(inspect.phase))
      .num("elapsed_ms", inspect.elapsed_s * 1000.0)
      .num("deadline_ms", inspect.deadline_s * 1000.0)
      .num("lower", inspect.lower)
      .num("upper", inspect.upper)
      .num("sat_calls", inspect.sat_calls)
      .num("conflicts", inspect.conflicts)
      .num("req", static_cast<std::int64_t>(inspect.req));
  if (inspect.state == JobState::kDone ||
      inspect.state == JobState::kCancelled) {
    o.str("status", inspect.answer.status)
        .boolean("proven_optimal", inspect.answer.proven_optimal)
        .boolean("deadline_expired", inspect.answer.deadline_expired)
        .num("cost", inspect.answer.cost)
        .num("lower_bound", inspect.answer.lower_bound);
  }
  return o.build();
}

std::string dump_line(std::uint64_t req) {
  std::size_t count = 0;
  const std::string events = obs::flight_dump_events(req, &count);
  return obs::JsonObject()
      .boolean("ok", true)
      .num("count", static_cast<std::int64_t>(count))
      .raw("events", events)
      .build();
}

std::string session_line(const std::string& session,
                         const SessionAnswer& a) {
  obs::JsonObject o;
  o.boolean("ok", true)
      .str("session", session)
      .str("status", a.status)
      .boolean("proven_optimal", a.proven_optimal)
      .boolean("cache_stored", a.cache_stored)
      .num("cost", a.cost)
      .num("lower_bound", a.lower_bound)
      .num("sat_calls", static_cast<std::int64_t>(a.sat_calls))
      .num("solve_ms", a.solve_seconds * 1000.0)
      .num("groups_added", static_cast<std::int64_t>(a.groups_added))
      .num("groups_retired", static_cast<std::int64_t>(a.groups_retired))
      .num("groups_unchanged",
           static_cast<std::int64_t>(a.groups_unchanged))
      .num("clauses_added", a.clauses_added);
  if (!a.error.empty()) o.str("error", a.error);
  if (a.has_allocation) {
    obs::JsonArray ecus;
    for (const int e : a.allocation.task_ecu) {
      ecus.push(std::to_string(e));
    }
    o.raw("task_ecu", ecus.build());
  }
  if (!a.core.empty()) {
    obs::JsonArray core;
    for (const std::string& name : a.core) {
      core.push("\"" + obs::json_escape(name) + "\"");
    }
    o.raw("unsat_core", core.build());
  }
  return o.build();
}

std::string session_close_line(const std::string& session) {
  return obs::JsonObject()
      .boolean("ok", true)
      .str("session", session)
      .boolean("closed", true)
      .build();
}

std::string shutdown_ack_line(bool drain) {
  return obs::JsonObject()
      .boolean("ok", true)
      .boolean("draining", drain)
      .build();
}

}  // namespace optalloc::svc

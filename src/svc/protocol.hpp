#pragma once
// Wire protocol of the allocation service: newline-delimited JSON, one
// request object in, one response object out, over a Unix-domain or TCP
// stream. Verbs:
//
//   {"verb":"submit","problem":"<problem text>","objective":"sum-trt",
//    "deadline_ms":500,"conflicts":100000,"threads":1,"wait":true}
//       -> {"ok":true,"id":"r1"}  (or, with "wait", the terminal snapshot)
//   {"verb":"status","id":"r1"}    -> snapshot (state + answer when done)
//   {"verb":"result","id":"r1"}    -> snapshot, blocking until terminal
//   {"verb":"cancel","id":"r1"}    -> {"ok":true,"id":"r1"}
//   {"verb":"stats"}               -> service + cache counters, latencies
//   {"verb":"metrics"}             -> full metrics registry snapshot
//                                     (counters, gauges, timers, histogram
//                                     quantiles + buckets) under "metrics"
//   {"verb":"shutdown","drain":true} -> {"ok":true,...}; server exits
//
// Every response carries "ok"; failures look like {"ok":false,"error":m}.
// The problem text is the alloc::io file format embedded as one JSON
// string (newlines escaped); the objective uses alloc::parse_objective
// spec syntax. Anytime answers surface as state="done" with
// "proven_optimal":false plus the incumbent cost and proven lower bound.

#include <optional>
#include <string>

#include "svc/scheduler.hpp"

namespace optalloc::svc {

struct Request {
  enum class Verb {
    kSubmit,
    kStatus,
    kCancel,
    kResult,
    kStats,
    kMetrics,
    kShutdown
  };
  Verb verb = Verb::kStats;
  std::string id;            ///< status/cancel/result
  std::string problem_text;  ///< submit: alloc::io problem format
  std::string objective = "sum-trt";
  double deadline_ms = 0.0;
  std::int64_t conflicts = 0;
  int threads = 1;
  bool wait = false;         ///< submit: block until terminal
  bool drain = true;         ///< shutdown: finish queued work first
};

/// Parse one request line. Returns nullopt and fills `error` on malformed
/// JSON, an unknown verb, or missing required fields.
std::optional<Request> parse_request(const std::string& line,
                                     std::string* error);

// --- Response lines (no trailing newline). -----------------------------

std::string error_line(const std::string& message);
std::string submit_ack_line(const std::string& id);
/// Snapshot of a job: always ok/id/state; terminal states add the full
/// answer (status, proven_optimal, cost, lower_bound, cached,
/// deadline_expired, timings, and the task->ECU vector when present).
std::string snapshot_line(const JobSnapshot& snapshot);
std::string stats_line(const ServiceStats& stats);
/// Full registry snapshot (obs::metrics_full_json) under "metrics" —
/// enough for a remote client to render Prometheus text format.
std::string metrics_line();
std::string shutdown_ack_line(bool drain);

}  // namespace optalloc::svc

#pragma once
// Wire protocol of the allocation service: newline-delimited JSON, one
// request object in, one response object out, over a Unix-domain or TCP
// stream. Verbs:
//
//   {"verb":"submit","problem":"<problem text>","objective":"sum-trt",
//    "deadline_ms":500,"conflicts":100000,"threads":1,"wait":true}
//       -> {"ok":true,"id":"r1"}  (or, with "wait", the terminal snapshot)
//   {"verb":"status","id":"r1"}    -> snapshot (state + answer when done)
//   {"verb":"result","id":"r1"}    -> snapshot, blocking until terminal
//   {"verb":"cancel","id":"r1"}    -> {"ok":true,"id":"r1"}
//   {"verb":"stats"}               -> service + cache counters, latencies
//   {"verb":"metrics"}             -> full metrics registry snapshot
//                                     (counters, gauges, timers, histogram
//                                     quantiles + buckets) under "metrics"
//   {"verb":"inspect","id":"r1"}   -> live mid-solve introspection: the
//                                     current phase (queued/warm_start/
//                                     solving/finished), elapsed time and
//                                     the proven cost interval + SOLVE
//                                     call/conflict counts so far
//   {"verb":"dump"}                -> flight-recorder contents as an
//                                     "events" array (add "id" to filter
//                                     to one request's records)
//   {"verb":"query"}               -> time-series catalogue: one summary
//                                     row per recorded series (name,
//                                     sample count, latest value)
//   {"verb":"query","metric":"svc.request_ms.p99","last_s":60}
//                                  -> that series' samples in the window
//                                     as [unix_ms, value] pairs (add
//                                     "max_samples" to downsample);
//                                     unknown series -> ok, count 0
//   {"verb":"shutdown","drain":true} -> {"ok":true,...}; server exits
//
// Incremental re-solve sessions (what-if queries over a warm solver):
//
//   {"verb":"session_open","problem":"<text>","objective":"sum-trt",
//    "deadline_ms":500,"conflicts":100000}
//       -> {"ok":true,"session":"s1",...initial answer...}
//   {"verb":"revise","session":"s1","edits":[{"op":"set_wcet",
//    "task":"sensor","ecu":0,"wcet":12},...]}
//       -> the post-edit answer: status/proven_optimal/cost/lower_bound,
//          delta statistics (groups_added/retired/unchanged,
//          clauses_added), the allocation when feasible — and, for an
//          infeasible edit, "unsat_core": the named constraint groups
//          that conflict (see inc/patch.hpp for the edit op schema)
//   {"verb":"session_close","session":"s1"} -> {"ok":true,"session":"s1"}
//
// Every response carries "ok"; failures look like
// {"ok":false,"error":m,"code":c} where `code` is a stable machine-
// readable discriminator ("bad_json", "bad_request", "unknown_verb",
// "unknown_id", "bad_problem", "queue_full", "unknown_session",
// "bad_patch") — clients branch on it
// without parsing prose. Unknown verbs in particular are answered (with
// code "unknown_verb"), never silently dropped.
// The problem text is the alloc::io file format embedded as one JSON
// string (newlines escaped); the objective uses alloc::parse_objective
// spec syntax. Anytime answers surface as state="done" with
// "proven_optimal":false plus the incumbent cost and proven lower bound.

#include <optional>
#include <string>

#include "inc/patch.hpp"
#include "svc/scheduler.hpp"

namespace optalloc::svc {

struct Request {
  enum class Verb {
    kSubmit,
    kStatus,
    kCancel,
    kResult,
    kStats,
    kMetrics,
    kQuery,
    kInspect,
    kDump,
    kShutdown,
    kSessionOpen,
    kRevise,
    kSessionClose
  };
  Verb verb = Verb::kStats;
  std::string id;            ///< status/cancel/result/inspect; dump (opt.)
  std::string problem_text;  ///< submit/session_open: alloc::io format
  std::string objective = "sum-trt";
  double deadline_ms = 0.0;
  std::int64_t conflicts = 0;
  int threads = 1;
  bool wait = false;         ///< submit: block until terminal
  bool drain = true;         ///< shutdown: finish queued work first
  std::string session;       ///< revise/session_close: session id
  inc::InstancePatch patch;  ///< revise: parsed "edits" array
  std::string metric;        ///< query: series name ("" = list catalogue)
  double last_s = 0.0;       ///< query: window in seconds (0 = full ring)
  std::int64_t max_samples = 0;  ///< query: downsample cap (0 = all)
};

/// Parse one request line. Returns nullopt and fills `error` (and, when
/// given, the machine-readable `code`) on malformed JSON, an unknown
/// verb, or missing required fields.
std::optional<Request> parse_request(const std::string& line,
                                     std::string* error,
                                     std::string* code = nullptr);

// --- Response lines (no trailing newline). -----------------------------

std::string error_line(const std::string& message,
                       const std::string& code = "error");
std::string submit_ack_line(const std::string& id);
/// Snapshot of a job: always ok/id/state; terminal states add the full
/// answer (status, proven_optimal, cost, lower_bound, cached,
/// deadline_expired, timings, and the task->ECU vector when present).
std::string snapshot_line(const JobSnapshot& snapshot);
std::string stats_line(const ServiceStats& stats);
/// Full registry snapshot (obs::metrics_full_json) under "metrics" —
/// enough for a remote client to render Prometheus text format.
std::string metrics_line();
/// Time-series reply (query verb). With a metric: its windowed samples
/// as [unix_ms, value] pairs; without: the series catalogue.
std::string query_line(const Request& request);
/// Live per-request introspection (inspect verb): phase, elapsed wall
/// time, proven cost interval, SOLVE calls and conflicts so far; terminal
/// jobs additionally carry the answer's status fields.
std::string inspect_line(const JobInspect& inspect);
/// Flight-recorder dump (dump verb): {"ok":true,"count":N,"events":[..]},
/// filtered to one request's records when `req` != 0.
std::string dump_line(std::uint64_t req);
std::string shutdown_ack_line(bool drain);
/// Answer of one session solve (session_open / revise): status, bounds,
/// delta statistics, the allocation's task->ECU vector when present, and
/// "unsat_core" (named constraint groups) for proven-infeasible edits.
std::string session_line(const std::string& session,
                         const SessionAnswer& answer);
std::string session_close_line(const std::string& session);

}  // namespace optalloc::svc

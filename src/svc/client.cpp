#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>

namespace optalloc::svc {

namespace {

/// Retry loop shared by both transports. `attempts` < 1 behaves as 1.
template <typename Connect>
int connect_with_retry(const Connect& connect, int attempts,
                       int initial_backoff_ms) {
  int backoff_ms = initial_backoff_ms > 0 ? initial_backoff_ms : 1;
  for (int attempt = 0;; ++attempt) {
    const int fd = connect();
    if (fd >= 0) return fd;
    if (attempt + 1 >= attempts) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms *= 2;
  }
}

}  // namespace

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix_retry(const std::string& path, int attempts,
                       int initial_backoff_ms) {
  return connect_with_retry([&] { return connect_unix(path); }, attempts,
                            initial_backoff_ms);
}

int connect_tcp_retry(const std::string& host, int port, int attempts,
                      int initial_backoff_ms) {
  return connect_with_retry([&] { return connect_tcp(host, port); },
                            attempts, initial_backoff_ms);
}

bool send_line(int fd, const std::string& line) {
  const std::string data = line + "\n";
  std::size_t off = 0;
  while (off < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
#endif
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace optalloc::svc

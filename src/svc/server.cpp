#include "svc/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <utility>

#include "alloc/io.hpp"
#include "obs/trace.hpp"

namespace optalloc::svc {

namespace {

constexpr int kPollMs = 200;  ///< stop-flag poll granularity

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
#endif
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : scheduler_(options.scheduler) {}

Server::~Server() {
  scheduler_.shutdown(/*drain=*/false);
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

bool Server::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return false;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::unlink(path.c_str());  // stale socket from a crashed predecessor
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  unix_path_ = path;
  return true;
}

bool Server::listen_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  listen_fd_ = fd;
  return true;
}

void Server::run() {
  while (!stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    connections_.emplace_back([this, client] { serve_connection(client); });
  }
  // Graceful drain: stop taking work, answer everything already accepted,
  // then let the connection loops deliver those answers and wind down.
  scheduler_.shutdown(drain_on_stop_.load(std::memory_order_relaxed));
  if (obs::trace_enabled()) {
    // Last scheduler-side event of a graceful shutdown: its presence in a
    // trace certifies the drain completed AND the sink was flushed after
    // the final request (the trace_truncated guard test keys on it).
    obs::TraceEvent("service_stop")
        .boolean("drain", drain_on_stop_.load(std::memory_order_relaxed));
  }
  drained_.store(true, std::memory_order_relaxed);
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      // Idle tick: once the drain has finished, close out the session.
      if (stop_requested() && drained_.load(std::memory_order_relaxed)) break;
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    bool closed = false;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      if (!send_all(fd, handle_line(line) + "\n")) {
        closed = true;
        break;
      }
    }
    if (closed) break;
  }
  ::close(fd);
}

std::string Server::handle_line(const std::string& line) {
  std::string error;
  std::string code;
  const auto req = parse_request(line, &error, &code);
  if (!req) return error_line(error, code);

  switch (req->verb) {
    case Request::Verb::kSubmit: {
      JobRequest job;
      try {
        std::istringstream in(req->problem_text);
        job.problem = alloc::parse_problem(in, "submitted problem");
        job.objective = alloc::parse_objective(req->objective);
      } catch (const std::exception& e) {
        return error_line(e.what(), "bad_problem");
      }
      job.deadline_s = req->deadline_ms / 1000.0;
      job.conflict_budget = req->conflicts;
      job.threads = req->threads;
      const auto id = scheduler_.submit(std::move(job));
      if (!id) return error_line("queue full or shutting down", "queue_full");
      if (!req->wait) return submit_ack_line(*id);
      for (;;) {
        if (const auto snap = scheduler_.wait(*id, 0.25)) {
          return snapshot_line(*snap);
        }
      }
    }
    case Request::Verb::kStatus: {
      const auto snap = scheduler_.status(req->id);
      if (!snap) {
        return error_line("unknown request id \"" + req->id + "\"",
                          "unknown_id");
      }
      return snapshot_line(*snap);
    }
    case Request::Verb::kResult: {
      if (!scheduler_.status(req->id)) {
        return error_line("unknown request id \"" + req->id + "\"",
                          "unknown_id");
      }
      for (;;) {
        if (const auto snap = scheduler_.wait(req->id, 0.25)) {
          return snapshot_line(*snap);
        }
      }
    }
    case Request::Verb::kCancel: {
      if (!scheduler_.cancel(req->id)) {
        return error_line("unknown or already finished request id \"" +
                              req->id + "\"",
                          "unknown_id");
      }
      return submit_ack_line(req->id);
    }
    case Request::Verb::kInspect: {
      const auto ins = scheduler_.inspect(req->id);
      if (!ins) {
        return error_line("unknown request id \"" + req->id + "\"",
                          "unknown_id");
      }
      return inspect_line(*ins);
    }
    case Request::Verb::kDump: {
      std::uint64_t flight_req = 0;  // 0 = every ring, unfiltered
      if (!req->id.empty()) {
        const auto r = scheduler_.request_trace_id(req->id);
        if (!r) {
          return error_line("unknown request id \"" + req->id + "\"",
                            "unknown_id");
        }
        flight_req = *r;
      }
      return dump_line(flight_req);
    }
    case Request::Verb::kStats:
      return stats_line(scheduler_.stats());
    case Request::Verb::kMetrics:
      return metrics_line();
    case Request::Verb::kQuery:
      return query_line(*req);
    case Request::Verb::kSessionOpen: {
      JobRequest job;
      try {
        std::istringstream in(req->problem_text);
        job.problem = alloc::parse_problem(in, "submitted problem");
        job.objective = alloc::parse_objective(req->objective);
      } catch (const std::exception& e) {
        return error_line(e.what(), "bad_problem");
      }
      job.deadline_s = req->deadline_ms / 1000.0;
      job.conflict_budget = req->conflicts;
      const auto opened = scheduler_.session_open(std::move(job));
      if (!opened) return error_line("shutting down", "queue_full");
      return session_line(opened->first, opened->second);
    }
    case Request::Verb::kRevise: {
      const auto answer = scheduler_.session_revise(
          req->session, req->patch, req->deadline_ms / 1000.0,
          req->conflicts);
      if (!answer) {
        return error_line("unknown session id \"" + req->session + "\"",
                          "unknown_session");
      }
      return session_line(req->session, *answer);
    }
    case Request::Verb::kSessionClose: {
      if (!scheduler_.session_close(req->session)) {
        return error_line("unknown session id \"" + req->session + "\"",
                          "unknown_session");
      }
      return session_close_line(req->session);
    }
    case Request::Verb::kShutdown: {
      drain_on_stop_.store(req->drain, std::memory_order_relaxed);
      request_stop();
      return shutdown_ack_line(req->drain);
    }
  }
  return error_line("unhandled verb", "unknown_verb");
}

}  // namespace optalloc::svc

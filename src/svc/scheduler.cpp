#include "svc/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <utility>

#include "alloc/optimizer.hpp"
#include "alloc/portfolio.hpp"
#include "obs/json.hpp"
#include "heur/annealing.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace optalloc::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// Below this much remaining deadline a solve is pointless: return the
/// (empty) anytime answer instead of paying encoder startup for nothing.
constexpr double kMinSolveSeconds = 0.005;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct SvcMetrics {
  obs::Metric requests = obs::counter("svc.requests");
  obs::Metric rejected = obs::counter("svc.rejected");
  obs::Metric completed = obs::counter("svc.completed");
  obs::Metric cancelled = obs::counter("svc.cancelled");
  obs::Metric cache_hits = obs::counter("svc.cache.hits");
  obs::Metric cache_misses = obs::counter("svc.cache.misses");
  obs::Metric deadline_expired = obs::counter("svc.deadline_expired");
  obs::Metric queue_depth = obs::gauge("svc.queue_depth");
  obs::Metric queue_time = obs::timer("svc.time.queue");
  obs::Metric solve_time = obs::timer("svc.time.solve");
  // Distributions: ms-scale histograms scrapeable via the metrics verb.
  // The same observations feed the per-Scheduler LocalHistogram behind
  // stats(), so `metrics --prom` quantiles and `stats` percentiles agree.
  obs::Metric queue_wait_ms = obs::histogram("svc.queue_wait_ms");
  obs::Metric request_ms = obs::histogram("svc.request_ms");
  obs::Metric cache_lookup_ms = obs::histogram("svc.cache_lookup_ms");
  // Incremental sessions (the revise verb).
  obs::Metric sessions_opened = obs::counter("svc.sessions.opened");
  obs::Metric sessions_closed = obs::counter("svc.sessions.closed");
  obs::Metric revises = obs::counter("svc.revises");
  obs::Metric revise_ms = obs::histogram("svc.revise_ms");
};

SvcMetrics& metrics() {
  static SvcMetrics m;
  return m;
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

const char* job_phase_name(JobPhase p) {
  switch (p) {
    case JobPhase::kQueued: return "queued";
    case JobPhase::kWarmStart: return "warm_start";
    case JobPhase::kSolving: return "solving";
    case JobPhase::kFinished: return "finished";
  }
  return "?";
}

struct Scheduler::Job {
  std::string id;
  JobRequest request;
  Canonical canon;
  Clock::time_point submitted;
  std::atomic<bool> stop{false};
  bool cancel_requested = false;  ///< guarded by Scheduler::mu_
  JobState state = JobState::kQueued;
  JobAnswer answer;
  /// Trace identity: installed on whichever thread touches the job, so
  /// every event of this request carries the same "req" field.
  obs::SpanContext ctx;
  std::uint64_t queue_span = 0;  ///< open queue_wait span (cross-thread)
  std::size_t queue_bytes = 0;   ///< "svc.queue" contribution while queued
  // Live-introspection fields (the inspect verb): updated with relaxed
  // stores from the worker's progress callback, read lock-free by any
  // connection thread. Staleness is bounded by one SOLVE call.
  std::atomic<int> phase{static_cast<int>(JobPhase::kQueued)};
  std::atomic<std::int64_t> live_lower{0};
  std::atomic<std::int64_t> live_upper{-1};   ///< -1 = no incumbent yet
  std::atomic<std::int64_t> live_sat_calls{0};
  std::atomic<std::int64_t> live_conflicts{0};
};

/// One live incremental session: a persistent inc::Session guarded by
/// its own mutex (solves on the same session serialize; different
/// sessions never contend), plus the trace identity every event of this
/// session carries as "req".
struct Scheduler::SessionEntry {
  std::string id;
  alloc::Objective objective;
  obs::SpanContext ctx;
  util::Mutex mu;
  std::unique_ptr<inc::Session> session OPTALLOC_GUARDED_BY(mu);
};

namespace {

/// Post-mortem: embed the request's flight-recorder tail into the trace
/// as one "flight_dump" event and push it to disk. Called on the paths
/// where the in-flight story is about to be lost — deadline expiry,
/// cancellation, a worker panic. The flush matters: these are exactly the
/// moments a process may be killed before the orderly trace_close().
void flight_postmortem(const std::string& id, std::uint64_t req,
                       const char* reason) {
  if (!obs::trace_enabled()) return;
  std::size_t n = 0;
  const std::string events = obs::flight_dump_events(req, &n);
  obs::TraceEvent("flight_dump")
      .str("id", id)
      .str("reason", reason)
      .num("count", static_cast<std::int64_t>(n))
      .raw("events", events);
  obs::trace_flush();
}

}  // namespace

Scheduler::Scheduler(const SchedulerOptions& options)
    : options_(options),
      cache_(options.cache_entries, options.cache_shards) {
  start_unix_ms_ = obs::wall_unix_ms();
  options_.workers = std::max(1, options_.workers);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  counters_.workers = options_.workers;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() { shutdown(/*drain=*/false); }

std::optional<std::string> Scheduler::submit(JobRequest request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->canon = canonicalize(job->request.problem, job->request.objective);
  job->submitted = Clock::now();
  // Process-unique request id; every event below (and on the worker that
  // later claims the job) carries it as "req". Assigned before the job is
  // published in jobs_ — concurrent inspect()/request_trace_id() calls
  // read it, so it must be immutable by the time anyone else can see it.
  job->ctx.req = obs::next_span_id();

  std::size_t depth = 0;
  {
    util::MutexLock lock(mu_);
    if (!accepting_) {
      ++counters_.rejected;
      obs::add(metrics().rejected);
      return std::nullopt;
    }
    job->id = "r" + std::to_string(++next_id_);
    jobs_.emplace(job->id, job);
    depth = queue_.size();
  }
  obs::ContextScope ctx_scope(job->ctx);
  obs::add(metrics().requests);
  if (obs::trace_enabled()) {
    obs::TraceEvent("request_received")
        .str("id", job->id)
        .str("objective", job->request.objective.describe())
        .num("deadline_ms", job->request.deadline_s * 1000.0)
        .num("queue_depth", static_cast<std::int64_t>(depth));
  }

  std::optional<CachedAnswer> hit;
  {
    obs::Span span("cache_lookup");
    const auto lookup_start = Clock::now();
    hit = cache_.get(job->canon.key, job->canon.text);
    obs::observe(metrics().cache_lookup_ms,
                 seconds_since(lookup_start) * 1000.0);
  }
  if (hit) {
    obs::add(metrics().cache_hits);
    if (obs::trace_enabled()) {
      obs::TraceEvent("cache_hit").str("id", job->id);
    }
    JobAnswer answer;
    answer.cached = true;
    answer.proven_optimal = true;
    if (hit->infeasible) {
      answer.status = "infeasible";
    } else {
      answer.status = "optimal";
      answer.cost = hit->cost;
      answer.lower_bound = hit->lower_bound;
      if (hit->has_allocation) {
        answer.has_allocation = true;
        answer.allocation = restore_allocation(job->canon, hit->allocation);
      }
    }
    {
      util::MutexLock lock(mu_);
      ++counters_.submitted;
    }
    finalize(job, JobState::kDone, std::move(answer));
    return job->id;
  }
  obs::add(metrics().cache_misses);

  {
    util::MutexLock lock(mu_);
    if (queue_.size() >= options_.queue_capacity) {
      ++counters_.rejected;
      jobs_.erase(job->id);
      obs::add(metrics().rejected);
      return std::nullopt;
    }
    ++counters_.submitted;
    // Cross-thread span: begun here, ended by the worker that claims the
    // job (execute() knows the measured wait). Opened before the job is
    // enqueued: once it is in queue_, a worker may claim it and read
    // queue_span immediately — the enqueue is the publication point.
    job->queue_span = obs::span_begin_event("queue_wait", job->ctx);
    job->queue_bytes = job->canon.text.size();
    queue_.push_back(job);
    obs::set(metrics().queue_depth,
             static_cast<std::int64_t>(queue_.size()));
    obs::res_add(queue_res_,
                 static_cast<std::int64_t>(job->queue_bytes), 1);
  }
  work_cv_.notify_one();
  return job->id;
}

std::optional<JobSnapshot> Scheduler::status(const std::string& id) const {
  util::MutexLock lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  JobSnapshot snap;
  snap.id = it->second->id;
  snap.state = it->second->state;
  snap.answer = it->second->answer;
  return snap;
}

std::optional<JobInspect> Scheduler::inspect(const std::string& id) const {
  std::shared_ptr<Job> job;
  JobInspect out;
  {
    util::MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
    out.state = job->state;
    out.answer = job->answer;
  }
  out.id = job->id;
  out.phase = static_cast<JobPhase>(job->phase.load(std::memory_order_relaxed));
  const bool terminal =
      out.state == JobState::kDone || out.state == JobState::kCancelled;
  out.elapsed_s =
      terminal ? out.answer.total_seconds : seconds_since(job->submitted);
  out.deadline_s = job->request.deadline_s;
  out.lower = job->live_lower.load(std::memory_order_relaxed);
  out.upper = job->live_upper.load(std::memory_order_relaxed);
  out.sat_calls = job->live_sat_calls.load(std::memory_order_relaxed);
  out.conflicts = job->live_conflicts.load(std::memory_order_relaxed);
  out.req = job->ctx.req;
  return out;
}

std::optional<std::uint64_t> Scheduler::request_trace_id(
    const std::string& id) const {
  util::MutexLock lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->ctx.req;
}

bool Scheduler::cancel(const std::string& id) {
  util::MutexLock lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.state == JobState::kDone || job.state == JobState::kCancelled) {
    return false;
  }
  job.cancel_requested = true;
  job.stop.store(true, std::memory_order_relaxed);
  return true;
}

std::optional<JobSnapshot> Scheduler::wait(const std::string& id,
                                           double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  util::MutexLock lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;
  const auto terminal = [&job] {
    return job->state == JobState::kDone || job->state == JobState::kCancelled;
  };
  if (timeout_s <= 0.0) {
    lock.wait(done_cv_, terminal);
  } else if (!lock.wait_until(done_cv_, deadline, terminal)) {
    return std::nullopt;
  }
  JobSnapshot snap;
  snap.id = job->id;
  snap.state = job->state;
  snap.answer = job->answer;
  return snap;
}

std::optional<std::pair<std::string, SessionAnswer>> Scheduler::session_open(
    JobRequest request) {
  auto entry = std::make_shared<SessionEntry>();
  entry->objective = request.objective;
  entry->ctx.req = obs::next_span_id();
  {
    util::MutexLock lock(mu_);
    if (!accepting_) return std::nullopt;
    entry->id = "s" + std::to_string(++next_session_id_);
    sessions_.emplace(entry->id, entry);
    ++counters_.sessions_opened;
    obs::res_add(sessions_res_, 0, 1);
  }
  obs::add(metrics().sessions_opened);
  {
    obs::ContextScope ctx_scope(entry->ctx);
    if (obs::trace_enabled()) {
      obs::TraceEvent("session_open")
          .str("session", entry->id)
          .str("objective", request.objective.describe());
    }
  }
  {
    util::MutexLock lock(entry->mu);
    entry->session = std::make_unique<inc::Session>(
        std::move(request.problem), request.objective);
  }
  SessionAnswer answer =
      run_session_solve(*entry, nullptr, 0, request.deadline_s,
                        request.conflict_budget);
  return std::make_pair(entry->id, std::move(answer));
}

std::optional<SessionAnswer> Scheduler::session_revise(
    const std::string& id, const inc::InstancePatch& patch,
    double deadline_s, std::int64_t conflicts) {
  std::shared_ptr<SessionEntry> entry;
  {
    util::MutexLock lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return std::nullopt;
    entry = it->second;
    ++counters_.revises;
  }
  obs::add(metrics().revises);
  return run_session_solve(*entry, &patch, patch.ops.size(), deadline_s,
                           conflicts);
}

bool Scheduler::session_close(const std::string& id) {
  std::shared_ptr<SessionEntry> entry;
  {
    util::MutexLock lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    entry = it->second;
    sessions_.erase(it);
    ++counters_.sessions_closed;
    obs::res_add(sessions_res_, 0, -1);
  }
  obs::add(metrics().sessions_closed);
  // A solve still in flight on another connection thread keeps the entry
  // alive through its shared_ptr; the solver is freed on the last drop.
  obs::ContextScope ctx_scope(entry->ctx);
  if (obs::trace_enabled()) {
    obs::TraceEvent("session_close").str("session", entry->id);
  }
  return true;
}

SessionAnswer Scheduler::run_session_solve(SessionEntry& entry,
                                           const inc::InstancePatch* patch,
                                           std::size_t edits,
                                           double deadline_s,
                                           std::int64_t conflicts) {
  obs::ContextScope ctx_scope(entry.ctx);
  inc::SolveLimits limits;
  limits.deadline_s = deadline_s;
  limits.conflicts = conflicts;
  limits.stop = &session_stop_;

  inc::SessionResult result;
  alloc::Problem solved;  ///< post-edit instance, for the cache key
  {
    util::MutexLock lock(entry.mu);
    result = patch != nullptr ? entry.session->revise(*patch, limits)
                              : entry.session->solve(limits);
    solved = entry.session->problem();
  }
  obs::observe(metrics().revise_ms, result.seconds * 1000.0);

  SessionAnswer answer;
  answer.status = inc::SessionResult::status_name(result.status);
  answer.proven_optimal = result.proven_optimal;
  answer.cost = result.cost;
  answer.lower_bound = result.lower_bound;
  answer.core = result.core;
  answer.error = result.error;
  answer.sat_calls = result.sat_calls;
  answer.solve_seconds = result.seconds;
  answer.groups_added = result.groups_added;
  answer.groups_retired = result.groups_retired;
  answer.groups_unchanged = result.groups_unchanged;
  answer.clauses_added = result.clauses_added;
  if (result.has_allocation) {
    answer.has_allocation = true;
    answer.allocation = result.allocation;
  }

  // Proven answers enter the result cache under the *post-edit* canonical
  // fingerprint: a later cold submit of the same edited instance hits,
  // while the base instance's own entry is untouched. The allocation is
  // translated into canonical indexing first — cached entries are always
  // canonical so restore_allocation works for any permuted duplicate.
  const bool proven_optimum =
      result.status == inc::SessionResult::Status::kOptimal;
  const bool proven_infeasible =
      result.status == inc::SessionResult::Status::kInfeasible &&
      result.proven_optimal;
  if (proven_optimum || proven_infeasible) {
    const Canonical canon = canonicalize(solved, entry.objective);
    CachedAnswer ca;
    if (proven_infeasible) {
      ca.infeasible = true;
    } else {
      ca.cost = result.cost;
      ca.lower_bound = result.cost;
      if (result.has_allocation) {
        ca.has_allocation = true;
        ca.allocation = canonical_allocation(canon, result.allocation);
      }
    }
    cache_.put(canon.key, canon.text, std::move(ca));
    answer.cache_stored = true;
  }

  if (obs::trace_enabled()) {
    obs::TraceEvent("revise")
        .str("session", entry.id)
        .num("edits", static_cast<std::int64_t>(edits))
        .str("status", answer.status)
        .num("seconds", result.seconds);
    if (!answer.core.empty()) {
      obs::JsonArray core;
      for (const std::string& name : answer.core) {
        core.push("\"" + obs::json_escape(name) + "\"");
      }
      obs::TraceEvent("unsat_core")
          .str("session", entry.id)
          .num("size", static_cast<std::int64_t>(answer.core.size()))
          .raw("core", core.build());
    }
  }
  return answer;
}

void Scheduler::shutdown(bool drain) {
  session_stop_.store(true, std::memory_order_relaxed);
  // First caller does the drain + join while holding shutdown_mu_ (mu_
  // stays free so workers can make progress); concurrent callers block
  // here until the join completes, then see joined_ and return. Without
  // this, two callers could both reach t.join() on the same thread.
  util::MutexLock shutdown_lock(shutdown_mu_);
  {
    util::MutexLock lock(mu_);
    if (joined_) return;
    accepting_ = false;
    if (!drain) {
      for (const auto& job : queue_) {
        job->cancel_requested = true;
        job->stop.store(true, std::memory_order_relaxed);
      }
      for (const auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          job->cancel_requested = true;
          job->stop.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  util::MutexLock lock(mu_);
  joined_ = true;
}

ServiceStats Scheduler::stats() const {
  ServiceStats out;
  obs::LocalHistogram lat;
  {
    util::MutexLock lock(mu_);
    out = counters_;
    out.queue_depth = queue_.size();
    out.active_sessions = sessions_.size();
    lat = latencies_ms_;
  }
  out.cache = cache_.stats();
  out.uptime_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  out.start_time_unix_ms = start_unix_ms_;
  out.p50_ms = lat.quantile(0.50);
  out.p95_ms = lat.quantile(0.95);
  out.p99_ms = lat.quantile(0.99);
  out.max_ms = lat.max();
  return out;
}

void Scheduler::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      util::MutexLock lock(mu_);
      lock.wait(work_cv_, [this]() OPTALLOC_REQUIRES(mu_) {
        return !queue_.empty() || !accepting_;
      });
      if (queue_.empty()) {
        if (!accepting_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      job->state = JobState::kRunning;
      obs::set(metrics().queue_depth,
               static_cast<std::int64_t>(queue_.size()));
      obs::res_add(queue_res_,
                   -static_cast<std::int64_t>(job->queue_bytes), -1);
    }
    // Panic guard: an exception escaping a solve (OOM in the encoder, a
    // bug) must not take the worker thread — and with it 1/N of the
    // service's capacity — down. The job is terminalized as an error and
    // its flight tail preserved for the post-mortem.
    try {
      execute(job);
    } catch (const std::exception& e) {
      const obs::ContextScope ctx_scope(job->ctx);
      if (obs::trace_enabled()) {
        obs::TraceEvent("worker_panic")
            .str("id", job->id)
            .str("error", e.what());
      }
      flight_postmortem(job->id, job->ctx.req, "worker_panic");
      bool terminal = false;
      {
        util::MutexLock lock(mu_);
        terminal = job->state == JobState::kDone ||
                   job->state == JobState::kCancelled;
      }
      if (!terminal) {
        JobAnswer answer;
        answer.status = "error";
        finalize(job, JobState::kCancelled, std::move(answer));
      }
    }
  }
}

void Scheduler::execute(const std::shared_ptr<Job>& job) {
  // Adopt the request's trace identity for everything this worker does on
  // its behalf (the explicit cross-thread hand-off).
  obs::ContextScope ctx_scope(job->ctx);
  JobAnswer answer;
  answer.queue_seconds = seconds_since(job->submitted);
  obs::record(metrics().queue_time, answer.queue_seconds);
  obs::observe(metrics().queue_wait_ms, answer.queue_seconds * 1000.0);
  obs::span_end_event("queue_wait", job->ctx, job->queue_span,
                      answer.queue_seconds);

  bool cancelled_early = false;
  {
    util::MutexLock lock(mu_);
    cancelled_early = job->cancel_requested;
  }
  if (cancelled_early) {
    finalize(job, JobState::kCancelled, std::move(answer));
    return;
  }

  const bool deadline_set = job->request.deadline_s > 0.0;
  if (deadline_set &&
      job->request.deadline_s - answer.queue_seconds <= kMinSolveSeconds) {
    answer.deadline_expired = true;
    if (obs::trace_enabled()) {
      obs::TraceEvent("deadline_expired").str("id", job->id);
    }
    flight_postmortem(job->id, job->ctx.req, "deadline_expired");
    finalize(job, JobState::kDone, std::move(answer));
    return;
  }

  // Warm start: a short SA pass guarantees an incumbent for the anytime
  // answer (and bounds the exact search's first SOLVE).
  job->phase.store(static_cast<int>(JobPhase::kWarmStart),
                   std::memory_order_relaxed);
  heur::AnnealingResult sa;
  if (options_.anneal_iterations > 0) {
    heur::AnnealingOptions ao;
    ao.iterations = options_.anneal_iterations;
    sa = heur::anneal(job->canon.problem, job->canon.objective, ao);
  }

  alloc::OptimizeOptions opts;
  opts.stop = &job->stop;
  opts.inprocess = options_.inprocess;
  opts.inprocess_interval = options_.inprocess_interval;
  // Feed the inspect verb: every optimizer progress report lands in the
  // job's relaxed atomics (portfolio workers share them; last writer
  // wins, which is fine — the interval only tightens).
  {
    Job* j = job.get();
    opts.on_progress = [j](const alloc::Progress& p) {
      j->live_lower.store(p.lower, std::memory_order_relaxed);
      j->live_upper.store(p.has_incumbent ? p.upper : -1,
                          std::memory_order_relaxed);
      j->live_sat_calls.store(p.sat_calls, std::memory_order_relaxed);
      j->live_conflicts.store(static_cast<std::int64_t>(p.conflicts),
                              std::memory_order_relaxed);
    };
  }
  if (deadline_set) {
    opts.time_limit_s = std::max(
        kMinSolveSeconds, job->request.deadline_s - seconds_since(job->submitted));
  }
  if (job->request.conflict_budget > 0) {
    opts.per_call.conflicts = job->request.conflict_budget;
  }
  if (sa.feasible) {
    opts.initial_upper = sa.cost;
    opts.warm_start = sa.allocation;
  }

  job->phase.store(static_cast<int>(JobPhase::kSolving),
                   std::memory_order_relaxed);
  const auto solve_start = Clock::now();
  alloc::OptimizeResult result;
  if (job->request.threads > 1) {
    alloc::PortfolioOptions popts;
    popts.threads = job->request.threads;
    popts.base_config = opts;
    popts.time_limit_s = opts.time_limit_s;
    popts.external_stop = &job->stop;
    alloc::PortfolioResult pr = optimize_portfolio(
        job->canon.problem, job->canon.objective, popts);
    result = std::move(pr.best);
    answer.sat_calls = 0;
    for (const alloc::OptimizeStats& s : pr.per_config_stats) {
      answer.sat_calls += s.sat_calls;
    }
  } else {
    result = alloc::optimize(job->canon.problem, job->canon.objective, opts);
    answer.sat_calls = result.stats.sat_calls;
  }
  answer.solve_seconds = seconds_since(solve_start);
  obs::record(metrics().solve_time, answer.solve_seconds);

  bool cancelled = false;
  {
    util::MutexLock lock(mu_);
    cancelled = job->cancel_requested;
  }

  switch (result.status) {
    case alloc::OptimizeResult::Status::kOptimal: {
      answer.status = "optimal";
      answer.proven_optimal = true;
      answer.cost = result.cost;
      answer.lower_bound = result.cost;
      CachedAnswer ca;
      ca.cost = result.cost;
      ca.lower_bound = result.cost;
      if (result.has_allocation) {
        answer.has_allocation = true;
        answer.allocation = restore_allocation(job->canon, result.allocation);
        ca.has_allocation = true;
        ca.allocation = result.allocation;
      }
      cache_.put(job->canon.key, job->canon.text, std::move(ca));
      break;
    }
    case alloc::OptimizeResult::Status::kInfeasible: {
      answer.status = "infeasible";
      answer.proven_optimal = true;
      CachedAnswer ca;
      ca.infeasible = true;
      cache_.put(job->canon.key, job->canon.text, std::move(ca));
      break;
    }
    case alloc::OptimizeResult::Status::kBudgetExhausted: {
      answer.lower_bound = result.lower_bound;
      if (result.has_allocation) {
        answer.status = "feasible";
        answer.cost = result.cost;
        answer.has_allocation = true;
        answer.allocation = restore_allocation(job->canon, result.allocation);
      }
      if (!cancelled && deadline_set &&
          seconds_since(job->submitted) >= job->request.deadline_s - 0.01) {
        answer.deadline_expired = true;
        if (obs::trace_enabled()) {
          obs::TraceEvent("deadline_expired").str("id", job->id);
        }
        flight_postmortem(job->id, job->ctx.req, "deadline_expired");
      }
      break;
    }
  }

  if (cancelled) {
    flight_postmortem(job->id, job->ctx.req, "cancelled");
  }
  finalize(job, cancelled ? JobState::kCancelled : JobState::kDone,
           std::move(answer));
}

void Scheduler::finalize(const std::shared_ptr<Job>& job, JobState state,
                         JobAnswer answer) {
  answer.total_seconds = seconds_since(job->submitted);
  const double total_ms = answer.total_seconds * 1000.0;
  // Terminal facts, captured before the answer moves into the job: once
  // mu_ is released below, job->answer belongs to the mu_-guarded state
  // and concurrent status()/inspect() copies — re-reading it lock-free
  // here would be exactly the unguarded access the annotations forbid.
  const bool deadline_expired = answer.deadline_expired;
  const bool proven_optimal = answer.proven_optimal;
  const double total_seconds = answer.total_seconds;
  job->phase.store(static_cast<int>(JobPhase::kFinished),
                   std::memory_order_relaxed);
  {
    util::MutexLock lock(mu_);
    job->answer = std::move(answer);
    job->state = state;
    if (state == JobState::kCancelled) {
      ++counters_.cancelled;
    } else {
      ++counters_.completed;
    }
    if (deadline_expired) ++counters_.deadline_expired;
    latencies_ms_.observe(total_ms);
  }
  obs::observe(metrics().request_ms, total_ms);
  done_cv_.notify_all();
  obs::add(state == JobState::kCancelled ? metrics().cancelled
                                         : metrics().completed);
  if (deadline_expired) obs::add(metrics().deadline_expired);
  if (obs::trace_enabled()) {
    obs::TraceEvent("request_done")
        .str("id", job->id)
        .str("state", job_state_name(state))
        .boolean("proven_optimal", proven_optimal)
        .num("seconds", total_seconds);
  }
}

}  // namespace optalloc::svc

#include "svc/fingerprint.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <tuple>

#include "alloc/io.hpp"

namespace optalloc::svc {

namespace {

/// Sort key for a task: name first (the parser enforces uniqueness; API
/// callers with duplicate names fall back to the timing fields).
auto task_key(const rt::Task& t) {
  return std::tie(t.name, t.period, t.deadline, t.release_jitter, t.memory);
}

/// Serialized content of one medium with its ECU list sorted — the media
/// sort key, so identical media order deterministically regardless of
/// declaration order.
std::string medium_key(const rt::Medium& m) {
  std::vector<int> ecus = m.ecus;
  std::sort(ecus.begin(), ecus.end());
  std::ostringstream os;
  os << m.name << '|' << static_cast<int>(m.type);
  for (const int e : ecus) os << ',' << e;
  os << '|' << m.ring_byte_ticks << '|' << m.slot_min << '|' << m.slot_max
     << '|' << m.can_bit_ticks << '|' << m.can_bits_per_tick << '|'
     << m.can_blocking << '|' << m.gateway_cost;
  return os.str();
}

std::uint64_t fnv1a(const std::string& text, std::uint64_t h,
                    std::uint64_t prime) {
  for (const unsigned char c : text) {
    h ^= c;
    h *= prime;
  }
  return h;
}

}  // namespace

std::string Fingerprint::hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  s.reserve(32);
  for (const std::uint64_t v : {a, b}) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      s += kDigits[(v >> shift) & 0xF];
    }
  }
  return s;
}

Fingerprint fingerprint_text(const std::string& text) {
  Fingerprint fp;
  fp.a = fnv1a(text, 0xcbf29ce484222325ull, 0x100000001b3ull);
  // Second independent stream: different offset basis, and fold in the
  // length so equal-hash-a texts of different lengths still separate.
  fp.b = fnv1a(text, 0x9e3779b97f4a7c15ull ^ text.size(), 0x100000001b3ull);
  return fp;
}

Canonical canonicalize(const alloc::Problem& problem,
                       alloc::Objective objective) {
  Canonical c;
  const int num_tasks = static_cast<int>(problem.tasks.tasks.size());
  const int num_media = static_cast<int>(problem.arch.media.size());

  // --- Task permutation. ------------------------------------------------
  std::vector<int> task_order(static_cast<std::size_t>(num_tasks));
  std::iota(task_order.begin(), task_order.end(), 0);
  std::stable_sort(task_order.begin(), task_order.end(), [&](int x, int y) {
    return task_key(problem.tasks.tasks[static_cast<std::size_t>(x)]) <
           task_key(problem.tasks.tasks[static_cast<std::size_t>(y)]);
  });
  c.task_perm.assign(static_cast<std::size_t>(num_tasks), 0);
  for (int ci = 0; ci < num_tasks; ++ci) {
    c.task_perm[static_cast<std::size_t>(task_order[static_cast<std::size_t>(
        ci)])] = ci;
  }

  // --- Media permutation (+ per-medium ECU position permutation). -------
  std::vector<int> media_order(static_cast<std::size_t>(num_media));
  std::iota(media_order.begin(), media_order.end(), 0);
  std::vector<std::string> media_keys;
  media_keys.reserve(static_cast<std::size_t>(num_media));
  for (const rt::Medium& m : problem.arch.media) {
    media_keys.push_back(medium_key(m));
  }
  std::stable_sort(media_order.begin(), media_order.end(), [&](int x, int y) {
    return media_keys[static_cast<std::size_t>(x)] <
           media_keys[static_cast<std::size_t>(y)];
  });
  c.media_perm.assign(static_cast<std::size_t>(num_media), 0);
  for (int ck = 0; ck < num_media; ++ck) {
    c.media_perm[static_cast<std::size_t>(media_order[static_cast<std::size_t>(
        ck)])] = ck;
  }
  c.ecu_pos_perm.resize(static_cast<std::size_t>(num_media));
  for (int k = 0; k < num_media; ++k) {
    const auto& ecus = problem.arch.media[static_cast<std::size_t>(k)].ecus;
    std::vector<int> pos(ecus.size());
    std::iota(pos.begin(), pos.end(), 0);
    std::stable_sort(pos.begin(), pos.end(), [&](int x, int y) {
      return ecus[static_cast<std::size_t>(x)] <
             ecus[static_cast<std::size_t>(y)];
    });
    auto& perm = c.ecu_pos_perm[static_cast<std::size_t>(k)];
    perm.assign(ecus.size(), 0);
    for (std::size_t cp = 0; cp < pos.size(); ++cp) {
      perm[static_cast<std::size_t>(pos[cp])] = static_cast<int>(cp);
    }
  }

  // --- Canonical architecture. ------------------------------------------
  c.problem.arch = problem.arch;
  c.problem.arch.media.clear();
  for (const int k : media_order) {
    rt::Medium m = problem.arch.media[static_cast<std::size_t>(k)];
    std::sort(m.ecus.begin(), m.ecus.end());
    c.problem.arch.media.push_back(std::move(m));
  }

  // --- Canonical task set (remapped targets/separations, sorted). -------
  // Per original task: message original-index -> sorted position, needed
  // for the flattened global message id permutation below.
  std::vector<std::vector<int>> msg_pos_perm(
      static_cast<std::size_t>(num_tasks));
  c.problem.tasks.tasks.clear();
  c.problem.tasks.tasks.reserve(static_cast<std::size_t>(num_tasks));
  for (const int orig : task_order) {
    rt::Task t = problem.tasks.tasks[static_cast<std::size_t>(orig)];
    for (int& s : t.separated_from) {
      s = c.task_perm[static_cast<std::size_t>(s)];
    }
    std::sort(t.separated_from.begin(), t.separated_from.end());
    for (rt::Message& m : t.messages) {
      m.target_task = c.task_perm[static_cast<std::size_t>(m.target_task)];
    }
    std::vector<int> mpos(t.messages.size());
    std::iota(mpos.begin(), mpos.end(), 0);
    std::stable_sort(mpos.begin(), mpos.end(), [&](int x, int y) {
      const rt::Message& mx = t.messages[static_cast<std::size_t>(x)];
      const rt::Message& my = t.messages[static_cast<std::size_t>(y)];
      return std::tie(mx.target_task, mx.size_bytes, mx.deadline,
                      mx.release_jitter) <
             std::tie(my.target_task, my.size_bytes, my.deadline,
                      my.release_jitter);
    });
    std::vector<rt::Message> sorted;
    sorted.reserve(t.messages.size());
    auto& perm = msg_pos_perm[static_cast<std::size_t>(orig)];
    perm.assign(t.messages.size(), 0);
    for (std::size_t cp = 0; cp < mpos.size(); ++cp) {
      sorted.push_back(t.messages[static_cast<std::size_t>(mpos[cp])]);
      perm[static_cast<std::size_t>(mpos[cp])] = static_cast<int>(cp);
    }
    t.messages = std::move(sorted);
    c.problem.tasks.tasks.push_back(std::move(t));
  }

  // --- Global message id permutation. -----------------------------------
  // Flattened ids walk tasks in declaration order; recompute both bases.
  std::vector<int> canon_base(static_cast<std::size_t>(num_tasks) + 1, 0);
  for (int ci = 0; ci < num_tasks; ++ci) {
    canon_base[static_cast<std::size_t>(ci) + 1] =
        canon_base[static_cast<std::size_t>(ci)] +
        static_cast<int>(
            c.problem.tasks.tasks[static_cast<std::size_t>(ci)].messages
                .size());
  }
  for (int i = 0; i < num_tasks; ++i) {
    const int ci = c.task_perm[static_cast<std::size_t>(i)];
    const auto& msgs = problem.tasks.tasks[static_cast<std::size_t>(i)].messages;
    for (std::size_t j = 0; j < msgs.size(); ++j) {
      c.msg_perm.push_back(canon_base[static_cast<std::size_t>(ci)] +
                           msg_pos_perm[static_cast<std::size_t>(i)][j]);
    }
  }

  // --- Objective + fingerprint. -----------------------------------------
  c.objective = objective;
  if (objective.medium >= 0 && objective.medium < num_media) {
    c.objective.medium =
        c.media_perm[static_cast<std::size_t>(objective.medium)];
  }
  std::ostringstream os;
  alloc::write_problem(os, c.problem);
  os << "objective " << c.objective.describe() << "\n";
  c.text = os.str();
  c.key = fingerprint_text(c.text);
  return c;
}

rt::Allocation restore_allocation(const Canonical& canon,
                                  const rt::Allocation& ca) {
  rt::Allocation out;
  const std::size_t num_tasks = canon.task_perm.size();
  const std::size_t num_media = canon.media_perm.size();

  if (!ca.task_ecu.empty()) {
    out.task_ecu.resize(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i) {
      out.task_ecu[i] = ca.task_ecu[static_cast<std::size_t>(canon.task_perm[i])];
    }
  }
  if (!ca.task_prio.empty()) {
    out.task_prio.resize(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i) {
      out.task_prio[i] =
          ca.task_prio[static_cast<std::size_t>(canon.task_perm[i])];
    }
  }
  // Canonical medium index -> original medium index.
  std::vector<int> inv_media(num_media, 0);
  for (std::size_t k = 0; k < num_media; ++k) {
    inv_media[static_cast<std::size_t>(canon.media_perm[k])] =
        static_cast<int>(k);
  }
  if (!ca.msg_route.empty()) {
    out.msg_route.resize(canon.msg_perm.size());
    out.msg_local_deadline.resize(canon.msg_perm.size());
    for (std::size_t g = 0; g < canon.msg_perm.size(); ++g) {
      const std::size_t cg = static_cast<std::size_t>(canon.msg_perm[g]);
      std::vector<int> route = ca.msg_route[cg];
      for (int& k : route) k = inv_media[static_cast<std::size_t>(k)];
      out.msg_route[g] = std::move(route);
      if (cg < ca.msg_local_deadline.size()) {
        out.msg_local_deadline[g] = ca.msg_local_deadline[cg];
      }
    }
  }
  if (!ca.slots.empty()) {
    out.slots.resize(num_media);
    for (std::size_t k = 0; k < num_media; ++k) {
      const auto& canon_slots =
          ca.slots[static_cast<std::size_t>(canon.media_perm[k])];
      const auto& perm = canon.ecu_pos_perm[k];
      out.slots[k].resize(perm.size());
      for (std::size_t p = 0; p < perm.size(); ++p) {
        out.slots[k][p] = canon_slots[static_cast<std::size_t>(perm[p])];
      }
    }
  }
  return out;
}

rt::Allocation canonical_allocation(const Canonical& canon,
                                    const rt::Allocation& oa) {
  rt::Allocation out;
  const std::size_t num_tasks = canon.task_perm.size();
  const std::size_t num_media = canon.media_perm.size();

  if (!oa.task_ecu.empty()) {
    out.task_ecu.resize(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i) {
      out.task_ecu[static_cast<std::size_t>(canon.task_perm[i])] =
          oa.task_ecu[i];
    }
  }
  if (!oa.task_prio.empty()) {
    out.task_prio.resize(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i) {
      out.task_prio[static_cast<std::size_t>(canon.task_perm[i])] =
          oa.task_prio[i];
    }
  }
  if (!oa.msg_route.empty()) {
    out.msg_route.resize(canon.msg_perm.size());
    out.msg_local_deadline.resize(canon.msg_perm.size());
    for (std::size_t g = 0; g < canon.msg_perm.size(); ++g) {
      const std::size_t cg = static_cast<std::size_t>(canon.msg_perm[g]);
      std::vector<int> route = oa.msg_route[g];
      for (int& k : route) {
        k = canon.media_perm[static_cast<std::size_t>(k)];
      }
      out.msg_route[cg] = std::move(route);
      if (g < oa.msg_local_deadline.size()) {
        out.msg_local_deadline[cg] = oa.msg_local_deadline[g];
      }
    }
  }
  if (!oa.slots.empty()) {
    out.slots.resize(num_media);
    for (std::size_t k = 0; k < num_media; ++k) {
      const auto& perm = canon.ecu_pos_perm[k];
      auto& canon_slots =
          out.slots[static_cast<std::size_t>(canon.media_perm[k])];
      canon_slots.resize(perm.size());
      for (std::size_t p = 0; p < perm.size(); ++p) {
        canon_slots[static_cast<std::size_t>(perm[p])] = oa.slots[k][p];
      }
    }
  }
  return out;
}

}  // namespace optalloc::svc
